/**
 * @file
 * The prepared-workload image cache must be invisible in every result:
 * suite aggregates, failure lists and sweep CSV/JSON are bit-identical
 * with the cache on or off at any worker count. The cache itself must
 * deduplicate builds (hit/miss accounting), cache failures, and — the
 * sharp edge — hand out copy-on-write decode pages, so self-modifying
 * runs sharing one cached image can never contaminate each other.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "explore/explore.hh"
#include "isa/encode.hh"
#include "memory/main_memory.hh"
#include "sim/machine.hh"
#include "workload/prepared.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::workload;

namespace
{

/** A fresh cache per test: the global one is warm from other tests. */
PreparedCache &
freshCache()
{
    static PreparedCache cache;
    cache.clear();
    return cache;
}

} // namespace

TEST(PreparedCache, DeduplicatesBuildsAndCountsHits)
{
    auto &cache = freshCache();
    const Workload w = pascalWorkloads().front();
    const reorg::ReorgConfig rc{};

    const auto a = cache.get(w, rc, false);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Same key: the same immutable object, not a rebuild.
    const auto b = cache.get(w, rc, false);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Any config difference is a different key.
    reorg::ReorgConfig other = rc;
    other.slots = 1;
    const auto c = cache.get(w, other, false);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().entries, 2u);

    // So is profiling, which changes the reorganizer's input.
    const auto d = cache.get(w, rc, true);
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(cache.stats().misses, 3u);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PreparedCache, CachedPreparationMatchesAFreshOne)
{
    auto &cache = freshCache();
    const Workload w = pascalWorkloads().front();
    const auto cached = cache.get(w, {}, false);
    const auto fresh = prepareWorkload(w, {}, false);
    ASSERT_EQ(cached->image.sections.size(),
              fresh->image.sections.size());
    EXPECT_EQ(cached->image.entry, fresh->image.entry);
    for (std::size_t s = 0; s < fresh->image.sections.size(); ++s)
        EXPECT_EQ(cached->image.sections[s].words,
                  fresh->image.sections[s].words);
    EXPECT_EQ(cached->decoded.size(), fresh->decoded.size());
}

TEST(PreparedCache, BuildFailuresAreCachedAndRethrown)
{
    auto &cache = freshCache();
    Workload broken;
    broken.name = "zz_noasm";
    broken.source = "        .text\n_start: frobnicate r1, r2\n";
    EXPECT_THROW(cache.get(broken, {}, false), SimError);
    // The failure is cached: the second request rethrows from the
    // entry instead of rebuilding.
    EXPECT_THROW(cache.get(broken, {}, false), SimError);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PreparedCache, FingerprintSeparatesConfigsAndSources)
{
    reorg::ReorgConfig a{};
    reorg::ReorgConfig b = a;
    EXPECT_EQ(reorgFingerprint(a), reorgFingerprint(b));
    b.slots = a.slots + 1;
    EXPECT_NE(reorgFingerprint(a), reorgFingerprint(b));
    reorg::ReorgConfig c{};
    c.profile[0x100] = 0.25;
    EXPECT_NE(reorgFingerprint(a), reorgFingerprint(c));
    reorg::ReorgConfig d{};
    d.profile[0x100] = 0.75;
    EXPECT_NE(reorgFingerprint(c), reorgFingerprint(d));

    EXPECT_NE(sourceFingerprint("addi r1, r0, 1"),
              sourceFingerprint("addi r1, r0, 2"));
}

TEST(PreparedCache, CacheOnAndOffAggregatesAreIdenticalAcrossJobs)
{
    // The determinism contract from the issue: cache on vs off, at
    // jobs 1/2/8, all six runs bit-identical. The global cache starts
    // cold here, so the first cached run also covers concurrent
    // first-touch misses under the worker pool.
    PreparedCache::global().clear();
    const auto suite = fpWorkloads();
    SuiteResult ref;
    bool first = true;
    for (const bool cached : {true, false}) {
        for (const unsigned jobs : {1u, 2u, 8u}) {
            SuiteRunOptions opts;
            opts.jobs = jobs;
            opts.preparedCache = cached;
            const auto r = runSuite(suite, opts);
            EXPECT_EQ(r.stats.failures, 0u);
            if (first) {
                ref = r;
                first = false;
                continue;
            }
            EXPECT_TRUE(r.stats == ref.stats)
                << "cache=" << cached << " jobs=" << jobs;
            EXPECT_TRUE(r.failures == ref.failures);
        }
    }
    EXPECT_GT(PreparedCache::global().stats().hits, 0u);
}

TEST(PreparedCache, SweepOutputsAreByteIdenticalCacheOnAndOff)
{
    // The same guarantee one level up: an explore sweep's CSV and JSON
    // emissions must be string-identical with the cache bypassed.
    const auto sweep = [](bool cached, unsigned jobs) {
        explore::SweepConfig cfg;
        cfg.suite = "fp";
        cfg.grid.axes.push_back({"icache.missPenalty", {"2", "3"}});
        cfg.grid.axes.push_back({"icache.fetchWords", {"1", "2"}});
        cfg.runner.preparedCache = cached;
        cfg.runner.jobs = jobs;
        const auto res = explore::runSweep(cfg);
        std::ostringstream csv, json;
        explore::writeCsv(csv, res);
        explore::writeJson(json, res);
        return std::pair<std::string, std::string>{csv.str(),
                                                   json.str()};
    };
    const auto on = sweep(true, 8);
    const auto off = sweep(false, 2);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
}

namespace
{

/**
 * Self-modifying program in delayed (pipeline) semantics: patches an
 * instruction word it has already executed — so the shared predecode
 * holds its decode — then re-executes it, self-checking r10 == 6.
 * Assembled directly (no reorganization): what's under test is decode-
 * page sharing, and this source is already schedule-correct.
 */
const char *const smcSource = R"(
        .data
ptrs:   .word patch, donor
        .text
_start: addi r10, r0, 0
        addi r9, r0, 2          ; two passes over the patch site
        la   r1, ptrs
        ld   r2, 0(r1)          ; &patch
        ld   r3, 1(r1)          ; &donor
        nop                     ; load-delay slot for r3
        ld   r4, 0(r3)          ; donor encoding: addi r10, r10, 5
loop:
patch:  addi r10, r10, 1        ; pass 1: +1.  pass 2 (patched): +5
        st   r4, 0(r2)          ; rewrite the already-fetched word
        nop
        nop
        nop
        nop
        addi r9, r9, -1
        bnz  r9, loop
        nop
        nop
        addi r11, r0, 6         ; 1 + 5
        beq  r10, r11, ok
        nop
        nop
        fail
ok:     halt
donor:  addi r10, r10, 5        ; never executed in place; data donor
)";

/** Run @p prog on a machine sharing @p snap; true iff self-check. */
bool
runShared(const assembler::Program &prog,
          const memory::DecodedImage::Snapshot &snap)
{
    sim::Machine machine{sim::MachineConfig{}};
    machine.load(prog, &snap);
    const auto r = machine.run();
    return r.halted() && machine.cpu().gpr(10) == 6;
}

} // namespace

TEST(PreparedCache, ConcurrentSmcRunsFromOneSnapshotStayIndependent)
{
    // Two runs race over the same shared decode pages; each patches
    // its own text. Copy-on-write must keep them (and any later run)
    // fully independent — a leaked patched decode would make the
    // second pass add 5 twice and trip the self-check.
    const auto prog = assembler::assemble(smcSource, "smc.s");
    const auto snap = memory::DecodedImage::snapshotProgram(prog);

    bool ok[2] = {false, false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t)
        threads.emplace_back(
            [&, t] { ok[t] = runShared(prog, snap); });
    for (auto &t : threads)
        t.join();
    EXPECT_TRUE(ok[0]);
    EXPECT_TRUE(ok[1]);

    // A third, later run must still see the pristine decode.
    EXPECT_TRUE(runShared(prog, snap));

    // And the snapshot itself still holds the original decode of the
    // patch site (addi r10, r10, 1), not the donor's +5.
    const addr_t patch = prog.symbol("patch");
    const auto key = memory::physKey(AddressSpace::User, patch);
    const auto it = snap.find(key / memory::DecodedImage::pageWords);
    ASSERT_NE(it, snap.end());
    const auto &page = *it->second;
    const auto idx = key % memory::DecodedImage::pageWords;
    ASSERT_TRUE(page.present[idx]);
    EXPECT_EQ(page.slot[idx].inst.imm, 1);
}

TEST(DecodedImage, AdoptedPagesAreCopyOnWrite)
{
    // Unit-level version of the same property: two memories adopt one
    // snapshot; a store through one re-decodes privately and leaves
    // the other memory and the snapshot untouched.
    assembler::Program p;
    assembler::Section text;
    text.name = ".text";
    text.space = AddressSpace::User;
    text.isText = true;
    text.base = 0x1000;
    text.words = {isa::encodeImm(isa::ImmOp::Addi, 0, 3, 1)};
    text.slots = {0};
    p.sections.push_back(std::move(text));
    p.entry = 0x1000;

    const auto snap = memory::DecodedImage::snapshotProgram(p);
    memory::MainMemory m1, m2;
    m1.loadProgram(p, &snap);
    m2.loadProgram(p, &snap);
    EXPECT_EQ(m1.fetchDecoded(AddressSpace::User, 0x1000).imm, 1);
    EXPECT_EQ(m2.fetchDecoded(AddressSpace::User, 0x1000).imm, 1);

    m1.write(AddressSpace::User, 0x1000,
             isa::encodeImm(isa::ImmOp::Addi, 0, 4, 9));
    EXPECT_EQ(m1.fetchDecoded(AddressSpace::User, 0x1000).imm, 9);
    EXPECT_EQ(m2.fetchDecoded(AddressSpace::User, 0x1000).imm, 1);

    const auto key = memory::physKey(AddressSpace::User, 0x1000);
    const auto &page =
        *snap.at(key / memory::DecodedImage::pageWords);
    const auto idx = key % memory::DecodedImage::pageWords;
    ASSERT_TRUE(page.present[idx]);
    EXPECT_EQ(page.slot[idx].inst.imm, 1);
}
