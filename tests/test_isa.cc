/** @file Encode/decode round trips and instruction classification. */

#include <random>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

using namespace mipsx;
using namespace mipsx::isa;

TEST(IsaEncode, MemRoundTrip)
{
    const word_t w = encodeMem(MemOp::Ld, 3, 7, -42);
    const Instruction in = decode(w);
    EXPECT_EQ(in.fmt, Format::Mem);
    EXPECT_EQ(in.memOp, MemOp::Ld);
    EXPECT_EQ(in.rs1, 3);
    EXPECT_EQ(in.rd, 7);
    EXPECT_EQ(in.imm, -42);
    EXPECT_TRUE(in.isGprLoad());
    EXPECT_TRUE(in.accessesMemory());
    EXPECT_FALSE(in.isCoproc());
}

TEST(IsaEncode, StoreUsesDataRegister)
{
    const Instruction in = decode(encodeMem(MemOp::St, 4, 9, 100));
    EXPECT_EQ(in.rs2, 9);
    EXPECT_EQ(in.destReg(), 0);
    EXPECT_TRUE(in.isStore());
    const auto src = in.srcRegs();
    EXPECT_TRUE(src.contains(4));
    EXPECT_TRUE(src.contains(9));
}

TEST(IsaEncode, OffsetRangeChecked)
{
    EXPECT_NO_THROW(encodeMem(MemOp::Ld, 0, 1, 65535));
    EXPECT_NO_THROW(encodeMem(MemOp::Ld, 0, 1, -65536));
    EXPECT_THROW(encodeMem(MemOp::Ld, 0, 1, 65536), SimError);
    EXPECT_THROW(encodeMem(MemOp::Ld, 0, 1, -65537), SimError);
}

TEST(IsaEncode, BranchRoundTrip)
{
    const word_t w =
        encodeBranch(BranchCond::Lt, SquashType::SquashNotTaken, 5, 6, -9);
    const Instruction in = decode(w);
    EXPECT_EQ(in.fmt, Format::Branch);
    EXPECT_EQ(in.cond, BranchCond::Lt);
    EXPECT_EQ(in.squash, SquashType::SquashNotTaken);
    EXPECT_EQ(in.rs1, 5);
    EXPECT_EQ(in.rs2, 6);
    EXPECT_EQ(in.imm, -9);
    EXPECT_TRUE(in.isBranch());
    EXPECT_TRUE(in.isControl());
    EXPECT_FALSE(in.writesGpr());
}

TEST(IsaEncode, ComputeRoundTrip)
{
    const Instruction in = decode(encodeCompute(ComputeOp::Xor, 1, 2, 3));
    EXPECT_EQ(in.fmt, Format::Compute);
    EXPECT_EQ(in.compOp, ComputeOp::Xor);
    EXPECT_EQ(in.rs1, 1);
    EXPECT_EQ(in.rs2, 2);
    EXPECT_EQ(in.destReg(), 3);
}

TEST(IsaEncode, ShiftCarriesAmountInAux)
{
    const Instruction in = decode(encodeShift(ComputeOp::Sra, 8, 9, 31));
    EXPECT_EQ(in.compOp, ComputeOp::Sra);
    EXPECT_EQ(in.aux, 31);
    EXPECT_EQ(in.srcRegs().count, 1u); // shifts read only rs1
}

TEST(IsaEncode, NopIsCanonical)
{
    EXPECT_EQ(encodeNop(), nopWord);
    EXPECT_EQ(encodeCompute(ComputeOp::Add, 0, 0, 0), nopWord);
    EXPECT_TRUE(decode(nopWord).isNop());
}

TEST(IsaEncode, JumpAndLink)
{
    const Instruction in = decode(encodeJump(ImmOp::Jal, 31, 1000));
    EXPECT_TRUE(in.isJump());
    EXPECT_EQ(in.destReg(), 31);
    EXPECT_EQ(in.imm, 1000);
}

TEST(IsaEncode, TrapCarriesCode)
{
    const Instruction in = decode(encodeTrap(trapCodeHalt));
    EXPECT_TRUE(in.isTrap());
    EXPECT_TRUE(in.isControl());
    EXPECT_EQ(in.uimm, trapCodeHalt);
}

TEST(IsaEncode, CoprocessorFields)
{
    const Instruction in = decode(encodeCop(MemOp::Aluc, 5, 0x123, 0));
    EXPECT_TRUE(in.isCoproc());
    EXPECT_EQ(in.copNum(), 5u);
    EXPECT_EQ(in.copOp(), 0x123u);
    EXPECT_FALSE(in.accessesMemory());

    const Instruction fr = decode(encodeCop(MemOp::Movfrc, 2, 7, 12));
    EXPECT_EQ(fr.destReg(), 12);
    EXPECT_TRUE(fr.isGprLoad());

    const Instruction to = decode(encodeCop(MemOp::Movtoc, 2, 7, 12));
    EXPECT_EQ(to.rs2, 12);
    EXPECT_TRUE(to.isStore());
}

TEST(IsaEncode, LdfStfAreCoprocessorOneWithMemoryAccess)
{
    const Instruction lf = decode(encodeMem(MemOp::Ldf, 4, 17, 8));
    EXPECT_TRUE(lf.isCoproc());
    EXPECT_TRUE(lf.accessesMemory());
    EXPECT_EQ(lf.copNum(), 1u);
    EXPECT_EQ(lf.aux, 17); // FPU register number
    EXPECT_EQ(lf.destReg(), 0); // does not write a GPR

    const Instruction sf = decode(encodeMem(MemOp::Stf, 4, 17, 8));
    EXPECT_TRUE(sf.isStore());
    EXPECT_EQ(sf.srcRegs().count, 1u); // only the base register
}

TEST(IsaEncode, MovSpecial)
{
    const Instruction fr =
        decode(encodeMovSpecial(ComputeOp::Movfrs, SpecialReg::Psw, 4));
    EXPECT_EQ(fr.destReg(), 4);
    EXPECT_EQ(fr.aux, 0);

    const Instruction to =
        decode(encodeMovSpecial(ComputeOp::Movtos, SpecialReg::Md, 4));
    EXPECT_EQ(to.rs1, 4);
    EXPECT_TRUE(to.writesMd());
    EXPECT_TRUE(to.writesSpecial());
    EXPECT_EQ(to.destReg(), 0);
}

TEST(IsaDecode, ReservedEncodingsAreInvalid)
{
    // Reserved compute opcode 63.
    word_t w = 0x80000000u | (63u << 24);
    EXPECT_FALSE(decode(w).valid);
    // Reserved branch condition 7.
    w = 0x40000000u | (7u << 27);
    EXPECT_FALSE(decode(w).valid);
    // Reserved squash type 3.
    w = 0x40000000u | (3u << 25);
    EXPECT_FALSE(decode(w).valid);
}

TEST(IsaDecode, MstepDstepTouchMd)
{
    const Instruction m = decode(encodeCompute(ComputeOp::Mstep, 1, 2, 3));
    EXPECT_TRUE(m.readsMd());
    EXPECT_TRUE(m.writesMd());
}

// Property: encode -> decode -> re-encode is the identity for a large
// random sample of well-formed instructions.
class EncodeDecodeProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(EncodeDecodeProperty, RandomMemRoundTrip)
{
    std::mt19937 rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const auto op = static_cast<MemOp>(rng() % 8);
        const unsigned rs1 = rng() % 32;
        const unsigned rsd = rng() % 32;
        const auto off = static_cast<std::int32_t>(
            static_cast<std::int64_t>(rng() % 131072) - 65536);
        const word_t w = encodeMem(op, rs1, rsd, off);
        const Instruction in = decode(w);
        EXPECT_EQ(in.raw, w);
        EXPECT_EQ(in.memOp, op);
        EXPECT_EQ(in.rs1, rs1);
        EXPECT_EQ(in.imm, off);
    }
}

TEST_P(EncodeDecodeProperty, RandomBranchRoundTrip)
{
    std::mt19937 rng(GetParam() * 7 + 1);
    for (int i = 0; i < 500; ++i) {
        const auto cond = static_cast<BranchCond>(rng() % 7);
        const auto sq = static_cast<SquashType>(rng() % 3);
        const unsigned rs1 = rng() % 32, rs2 = rng() % 32;
        const auto disp = static_cast<std::int32_t>(
            static_cast<std::int64_t>(rng() % 32768) - 16384);
        const Instruction in = decode(encodeBranch(cond, sq, rs1, rs2,
                                                   disp));
        EXPECT_EQ(in.cond, cond);
        EXPECT_EQ(in.squash, sq);
        EXPECT_EQ(in.imm, disp);
    }
}

TEST_P(EncodeDecodeProperty, RandomComputeRoundTrip)
{
    std::mt19937 rng(GetParam() * 13 + 5);
    for (int i = 0; i < 500; ++i) {
        const auto op = static_cast<ComputeOp>(rng() % 12); // not mov*
        const unsigned rs1 = rng() % 32, rs2 = rng() % 32, rd = rng() % 32;
        const unsigned aux = rng() % 32;
        const Instruction in =
            decode(encodeCompute(op, rs1, rs2, rd, aux));
        EXPECT_EQ(in.compOp, op);
        EXPECT_EQ(in.rs1, rs1);
        EXPECT_EQ(in.rs2, rs2);
        EXPECT_EQ(in.rd, rd);
        EXPECT_EQ(in.aux, aux);
        EXPECT_TRUE(in.valid);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeProperty,
                         ::testing::Values(1u, 2u, 3u, 42u));

TEST(Disasm, RendersRepresentativeInstructions)
{
    EXPECT_EQ(disassemble(encodeNop()), "nop");
    EXPECT_EQ(disassemble(encodeMem(MemOp::Ld, 29, 4, 12)),
              "ld r4, 12(sp)");
    EXPECT_EQ(disassemble(encodeCompute(ComputeOp::Add, 1, 2, 3)),
              "add r3, r1, r2");
    EXPECT_EQ(disassemble(encodeBranch(BranchCond::Eq,
                                       SquashType::SquashNotTaken, 1, 2,
                                       5),
                          100, true),
              "beq.sq r1, r2, 0x6a");
    EXPECT_EQ(disassemble(encodeTrap(trapCodeHalt)), "trap 0x1ffff");
    EXPECT_EQ(disassemble(encodeJpc()), "jpc");
    EXPECT_EQ(disassemble(encodeMovSpecial(ComputeOp::Movfrs,
                                           SpecialReg::PswOld, 7)),
              "movfrs r7, pswold");
}

TEST(IsaEncode, ImmediateSignExtensionBoundaries)
{
    // The MX32 memory/immediate formats carry a 17-bit signed field and
    // the branch format a 15-bit one (DESIGN.md "Instruction formats").
    // The decoder's sign extension and the encoder's range check must
    // agree exactly at the boundaries: -2^16 / -2^14 are the most
    // negative representable values and round-trip; +2^16 / +2^14 are
    // one past the top and must be rejected, never silently wrapped.
    for (const std::int32_t v : {-65536, -65535, -1, 0, 1, 65535}) {
        EXPECT_EQ(decode(encodeMem(MemOp::Ld, 1, 2, v)).imm, v) << v;
        EXPECT_EQ(decode(encodeImm(ImmOp::Addi, 1, 2, v)).imm, v) << v;
    }
    EXPECT_THROW(encodeMem(MemOp::Ld, 1, 2, 65536), SimError);
    EXPECT_THROW(encodeMem(MemOp::Ld, 1, 2, -65537), SimError);
    EXPECT_THROW(encodeImm(ImmOp::Addi, 1, 2, 65536), SimError);
    EXPECT_THROW(encodeImm(ImmOp::Addi, 1, 2, -65537), SimError);

    for (const std::int32_t v : {-16384, -16383, -1, 0, 1, 16383}) {
        const Instruction in = decode(encodeBranch(
            BranchCond::Eq, SquashType::NoSquash, 1, 2, v));
        EXPECT_EQ(in.imm, v) << v;
    }
    EXPECT_THROW(encodeBranch(BranchCond::Eq, SquashType::NoSquash, 1, 2,
                              16384),
                 SimError);
    EXPECT_THROW(encodeBranch(BranchCond::Eq, SquashType::NoSquash, 1, 2,
                              -16385),
                 SimError);
}

TEST(Disasm, NegativeBoundaryImmediatesRenderExactly)
{
    // encode -> decode -> disassemble must show the architectural value
    // of a boundary immediate, not its unsigned field encoding.
    const auto mem = disassemble(encodeMem(MemOp::Ld, 1, 2, -65536), 0,
                                 true);
    EXPECT_NE(mem.find("-65536"), std::string::npos) << mem;
    const auto imm = disassemble(encodeImm(ImmOp::Addi, 1, 2, -65536), 0,
                                 true);
    EXPECT_NE(imm.find("-65536"), std::string::npos) << imm;
}
