/**
 * @file
 * The superblock engine is a pure speedup: decode-time block discovery
 * must stop exactly at control transfers, page boundaries, the length
 * cap, cold words and the fetch-ahead margin; invalidation must track
 * DecodedImage invalidation exactly (direct stores, reloads, and
 * copy-on-write clones of shared snapshot pages); and the block-mode
 * ISS must be architecturally indistinguishable from the stepping
 * reference over a large fuzz sweep, including interrupt delivery and
 * the ISS-powered fast-forward handoff into the pipeline.
 */

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "coproc/counter_cop.hh"
#include "coproc/fpu.hh"
#include "fuzz/generator.hh"
#include "isa/encode.hh"
#include "isa/isa.hh"
#include "memory/decoded_image.hh"
#include "memory/main_memory.hh"
#include "sim/machine.hh"

#include "helpers.hh"

using namespace mipsx;
using memory::DecodedImage;

namespace
{

word_t aluWord()
{
    return isa::encodeCompute(isa::ComputeOp::Add, 1, 2, 3);
}

word_t branchWord()
{
    return isa::encodeBranch(isa::BranchCond::Eq, isa::SquashType::NoSquash,
                             1, 2, 8);
}

/** Decode @p words into @p img at consecutive keys starting at @p key. */
void
fill(DecodedImage &img, std::uint64_t key, const std::vector<word_t> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i) {
        const word_t w = words[i];
        img.fetch(key + i, [w] { return w; });
    }
}

unsigned
blockAt(DecodedImage &img, std::uint64_t key)
{
    const isa::Instruction *insts = nullptr;
    std::shared_ptr<const DecodedImage::Page> hold;
    return img.fetchBlock(key, insts, hold);
}

} // namespace

TEST(SuperblockDiscovery, EndsAtControlTransfer)
{
    DecodedImage img;
    fill(img, 100, {aluWord(), aluWord(), branchWord(), aluWord()});
    EXPECT_EQ(blockAt(img, 100), 2u); // two adds, branch excluded
    EXPECT_EQ(blockAt(img, 101), 1u);
    EXPECT_EQ(blockAt(img, 102), 0u); // a branch cannot start a block
    EXPECT_EQ(blockAt(img, 103), 1u); // next word is cold
}

TEST(SuperblockDiscovery, ColdWordsFormNoBlock)
{
    DecodedImage img;
    EXPECT_EQ(blockAt(img, 0), 0u); // nothing decoded at all
    fill(img, 10, {aluWord()});
    EXPECT_EQ(blockAt(img, 11), 0u); // present word, cold neighbour key
}

TEST(SuperblockDiscovery, CappedAtMaxBlockWords)
{
    DecodedImage img;
    std::vector<word_t> run(DecodedImage::maxBlockWords + 50, aluWord());
    fill(img, 0, run);
    EXPECT_EQ(blockAt(img, 0), DecodedImage::maxBlockWords);
    // A start past the cap still sees the full remaining run.
    EXPECT_EQ(blockAt(img, DecodedImage::maxBlockWords), 50u);
}

TEST(SuperblockDiscovery, StopsAtPageBoundary)
{
    DecodedImage img;
    const std::uint64_t edge = DecodedImage::pageWords;
    fill(img, edge - 4, std::vector<word_t>(8, aluWord()));
    EXPECT_EQ(blockAt(img, edge - 4), 4u); // never chains across pages
    EXPECT_EQ(blockAt(img, edge), 4u);
}

TEST(SuperblockDiscovery, SnapshotMarginIsNotChainable)
{
    // Text ends with straight-line words the program never reaches; the
    // snapshot predecodes a fetch-ahead margin of nop decodes past the
    // end of text, and a block starting in real text must stop exactly
    // at the text end instead of chaining into the margin (decode(0) is
    // itself a block-safe add, so only the chainable[] marking stops
    // it).
    const auto prog = test::asmOrDie("        .text\n"
                                     "_start: halt\n"
                                     "        add r1, r2, r3\n"
                                     "        add r4, r5, r6\n"
                                     "        add r7, r8, r9\n");
    const auto snap = DecodedImage::snapshotProgram(prog);
    DecodedImage img;
    img.adopt(snap);
    const std::uint64_t base =
        memory::physKey(prog.entrySpace, prog.entry);
    EXPECT_EQ(blockAt(img, base), 0u);     // halt cannot start a block
    EXPECT_EQ(blockAt(img, base + 1), 3u); // ends at end of text
    EXPECT_EQ(blockAt(img, base + 3), 1u);
    // The margin words themselves are decoded (that is their point) but
    // can never start a block.
    for (std::uint64_t a = base + 4; a < base + 4 + 8; ++a)
        EXPECT_EQ(blockAt(img, a), 0u) << "margin word " << (a - base);
}

namespace
{

/** A straight-line workload whose text layout the SMC tests control. */
const char *straightLineSource = "        .text\n"
                                 "_start: addi r1, r0, 1\n"
                                 "        addi r2, r0, 2\n"
                                 "        add  r3, r1, r2\n"
                                 "        add  r4, r3, r2\n"
                                 "        add  r5, r4, r3\n"
                                 "        add  r6, r5, r4\n"
                                 "        halt\n";

unsigned
memBlockAt(memory::MainMemory &mem, AddressSpace space, addr_t addr)
{
    const isa::Instruction *insts = nullptr;
    std::shared_ptr<const DecodedImage::Page> hold;
    return mem.fetchBlock(space, addr, insts, hold);
}

} // namespace

TEST(SuperblockInvalidation, StoreInsidePredecodedTextShortensBlock)
{
    const auto prog = test::asmOrDie(straightLineSource);
    memory::MainMemory mem;
    mem.loadProgram(prog);
    const auto space = prog.entrySpace;
    EXPECT_EQ(memBlockAt(mem, space, prog.entry), 6u);

    const auto gen0 = mem.decodeGeneration();
    mem.write(space, prog.entry + 2, branchWord());
    EXPECT_GT(mem.decodeGeneration(), gen0);
    // The stored word's decode is dropped, so discovery stops there.
    EXPECT_EQ(memBlockAt(mem, space, prog.entry), 2u);
    // Refetching decodes the new encoding: a branch, so the block stays
    // short — and the words beyond it form their own block again.
    mem.fetchDecoded(space, prog.entry + 2);
    EXPECT_EQ(memBlockAt(mem, space, prog.entry), 2u);
    EXPECT_EQ(memBlockAt(mem, space, prog.entry + 3), 3u);
}

TEST(SuperblockInvalidation, DataStoresDoNotInvalidate)
{
    const auto prog = test::asmOrDie(straightLineSource);
    memory::MainMemory mem;
    mem.loadProgram(prog);
    const auto gen0 = mem.decodeGeneration();
    mem.write(prog.entrySpace, 0x40000, 0xdeadbeef); // plain data
    EXPECT_EQ(mem.decodeGeneration(), gen0);
    EXPECT_EQ(memBlockAt(mem, prog.entrySpace, prog.entry), 6u);
}

TEST(SuperblockInvalidation, ReloadInvalidatesAndRedecodes)
{
    const auto prog = test::asmOrDie(straightLineSource);
    memory::MainMemory mem;
    mem.loadProgram(prog);
    const auto gen0 = mem.decodeGeneration();
    mem.loadProgram(prog); // the loader's writes invalidate, then decode
    EXPECT_GT(mem.decodeGeneration(), gen0);
    EXPECT_EQ(memBlockAt(mem, prog.entrySpace, prog.entry), 6u);
}

TEST(SuperblockInvalidation, CowCloneKeepsRunsIndependent)
{
    // Two runs adopt the same shared snapshot; SMC in one must clone
    // its page copy-on-write and leave the other run's blocks (and the
    // snapshot itself) untouched.
    const auto prog = test::asmOrDie(straightLineSource);
    const auto snap = DecodedImage::snapshotProgram(prog);
    memory::MainMemory a, b;
    a.loadProgram(prog, &snap);
    b.loadProgram(prog, &snap);
    const auto space = prog.entrySpace;
    EXPECT_EQ(memBlockAt(a, space, prog.entry), 6u);
    EXPECT_EQ(memBlockAt(b, space, prog.entry), 6u);

    a.write(space, prog.entry + 3, branchWord());
    EXPECT_EQ(memBlockAt(a, space, prog.entry), 3u);
    EXPECT_EQ(memBlockAt(b, space, prog.entry), 6u);

    // A third adoption of the same snapshot still sees the full block:
    // the shared pages were never written through.
    memory::MainMemory c;
    c.loadProgram(prog, &snap);
    EXPECT_EQ(memBlockAt(c, space, prog.entry), 6u);
}

namespace
{

/** Final architectural state of one ISS run under @p exec. */
struct IssFinal
{
    sim::IssStop reason = sim::IssStop::Running;
    std::array<word_t, numGprs> gprs{};
    word_t md = 0;
    word_t pswBits = 0;
    sim::IssStats stats;
    std::map<std::uint64_t, word_t> memWords;
};

bool
sameStats(const sim::IssStats &x, const sim::IssStats &y)
{
    return x.steps == y.steps && x.branches == y.branches &&
        x.branchesTaken == y.branchesTaken && x.jumps == y.jumps &&
        x.loads == y.loads && x.stores == y.stores &&
        x.coprocOps == y.coprocOps && x.traps == y.traps &&
        x.exceptions == y.exceptions && x.interrupts == y.interrupts;
}

IssFinal
runWithExec(const assembler::Program &prog, sim::IssExec exec,
            sim::IssMode mode)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = mode;
    cfg.exec = exec;
    cfg.maxSteps = 60'000;
    sim::Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    IssFinal out;
    out.reason = iss.run();
    for (unsigned r = 0; r < numGprs; ++r)
        out.gprs[r] = iss.gpr(r);
    out.md = iss.md();
    out.pswBits = iss.psw().bits();
    out.stats = iss.stats();
    out.memWords = mem.snapshot();
    return out;
}

} // namespace

TEST(SuperblockDifferential, BlockAndStepAgreeOn1000FuzzSeeds)
{
    // The differential the engine is judged by: the same generated
    // program (branches, loads, stores, self-modifying code, squash
    // variants), run once through the superblock loop and once through
    // the stepping reference, must finish in the same state with the
    // same statistics. 1000 seeds in delayed mode (the cosim
    // semantics), a slice in sequential mode too.
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        fuzz::GeneratorConfig gc;
        gc.seed = seed;
        const auto prog = fuzz::generate(gc);
        const auto b =
            runWithExec(prog, sim::IssExec::Block, sim::IssMode::Delayed);
        const auto s =
            runWithExec(prog, sim::IssExec::Step, sim::IssMode::Delayed);
        ASSERT_EQ(b.reason, s.reason) << "seed " << seed;
        ASSERT_TRUE(sameStats(b.stats, s.stats)) << "seed " << seed;
        ASSERT_EQ(b.gprs, s.gprs) << "seed " << seed;
        ASSERT_EQ(b.md, s.md) << "seed " << seed;
        ASSERT_EQ(b.pswBits, s.pswBits) << "seed " << seed;
        ASSERT_EQ(b.memWords, s.memWords) << "seed " << seed;
        if (seed <= 100) {
            const auto c = runWithExec(prog, sim::IssExec::Block,
                                       sim::IssMode::Sequential);
            const auto d = runWithExec(prog, sim::IssExec::Step,
                                       sim::IssMode::Sequential);
            ASSERT_EQ(c.reason, d.reason) << "seed " << seed;
            ASSERT_TRUE(sameStats(c.stats, d.stats)) << "seed " << seed;
            ASSERT_EQ(c.gprs, d.gprs) << "seed " << seed;
            ASSERT_EQ(c.memWords, d.memWords) << "seed " << seed;
        }
    }
}

namespace
{

/**
 * A loop whose decrement and compare sit before the branch and whose
 * delay slots do useful straight-line work, so the source runs
 * correctly under both sequential and delayed semantics.
 */
const char *loopSource = "        .text\n"
                         "_start: addi r1, r0, 40\n"
                         "        addi r2, r0, 3\n"
                         "loop:   add  r2, r2, r1\n"
                         "        xor  r3, r2, r1\n"
                         "        sub  r4, r3, r1\n"
                         "        or   r5, r4, r2\n"
                         "        and  r6, r5, r3\n"
                         "        addi r1, r1, -1\n"
                         "        bnz  r1, loop\n"
                         "        add  r7, r6, r4\n"
                         "        xor  r8, r7, r5\n"
                         "        halt\n";

struct IntrRun
{
    IssFinal fin;
    std::uint64_t requestStep = 0;
    bool requested = false;
};

IntrRun
runWithInterrupt(const assembler::Program &prog, sim::IssExec exec,
                 unsigned atBranch)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    cfg.exec = exec;
    cfg.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie;
    cfg.maxSteps = 60'000;
    sim::Iss iss(cfg, mem);
    iss.reset(prog.entry);
    IntrRun out;
    unsigned branches = 0;
    // Branches end superblocks, so the hook fires at the same
    // architectural points in both exec modes — the only way a test can
    // raise the line "mid-run" deterministically.
    iss.setBranchHook([&](const sim::BranchEvent &) {
        if (++branches == atBranch) {
            iss.requestInterrupt();
            out.requestStep = iss.stats().steps;
            out.requested = true;
        }
    });
    if (atBranch == 0)
        iss.requestInterrupt();
    out.fin.reason = iss.run();
    for (unsigned r = 0; r < numGprs; ++r)
        out.fin.gprs[r] = iss.gpr(r);
    out.fin.md = iss.md();
    out.fin.pswBits = iss.psw().bits();
    out.fin.stats = iss.stats();
    return out;
}

} // namespace

TEST(SuperblockInterrupts, RequestBeforeRunDeliversBeforeFirstInstruction)
{
    // Both run loops sample the interrupt line before executing
    // anything; with no handler loaded at the vector, delivery stops
    // the run with zero instructions executed.
    const auto prog = test::asmOrDie(loopSource);
    for (const auto exec : {sim::IssExec::Step, sim::IssExec::Block}) {
        const auto r = runWithInterrupt(prog, exec, 0);
        EXPECT_EQ(r.fin.reason, sim::IssStop::UnhandledException);
        EXPECT_EQ(r.fin.stats.steps, 0u);
        EXPECT_EQ(r.fin.stats.interrupts, 1u);
        EXPECT_EQ(r.fin.stats.exceptions, 1u);
    }
}

TEST(SuperblockInterrupts, DeliveryMatchesStepModeAndIsPrompt)
{
    const auto prog = test::asmOrDie(loopSource);
    for (const unsigned atBranch : {1u, 3u, 17u}) {
        const auto b =
            runWithInterrupt(prog, sim::IssExec::Block, atBranch);
        const auto s =
            runWithInterrupt(prog, sim::IssExec::Step, atBranch);
        ASSERT_TRUE(b.requested);
        ASSERT_TRUE(s.requested);
        // Delivery is at the identical instruction in both modes...
        EXPECT_EQ(b.fin.reason, sim::IssStop::UnhandledException);
        EXPECT_EQ(s.fin.reason, b.fin.reason);
        EXPECT_EQ(b.fin.stats.interrupts, 1u);
        EXPECT_TRUE(sameStats(b.fin.stats, s.fin.stats));
        EXPECT_EQ(b.fin.gprs, s.fin.gprs);
        EXPECT_EQ(b.fin.pswBits, s.fin.pswBits);
        EXPECT_EQ(b.requestStep, s.requestStep);
        // ...and the latency from request to delivery is bounded by the
        // superblock length cap (plus the branch shadow in flight when
        // the hook fired), the block loop's sampling guarantee.
        ASSERT_GE(b.fin.stats.steps, b.requestStep);
        EXPECT_LE(b.fin.stats.steps - b.requestStep,
                  DecodedImage::maxBlockWords + 4);
    }
}

namespace
{

struct MachineFinal
{
    core::StopReason reason = core::StopReason::Running;
    std::array<word_t, numGprs> gprs{};
    std::map<std::uint64_t, word_t> memWords;
    cycle_t cycles = 0;
    sim::FastForwardInfo ff;
};

MachineFinal
runMachine(const assembler::Program &prog, const sim::MachineConfig &cfg)
{
    sim::Machine m(cfg);
    m.load(prog);
    const auto res = m.run();
    MachineFinal out;
    out.reason = res.reason;
    for (unsigned r = 0; r < numGprs; ++r)
        out.gprs[r] = m.cpu().gpr(r);
    out.memWords = m.memory().snapshot();
    out.cycles = res.cycles;
    out.ff = m.fastForwarded();
    return out;
}

} // namespace

TEST(FastForward, HandoffMatchesFullRunOnLoopWorkload)
{
    const auto prog = test::asmOrDie(loopSource);
    const auto full = runMachine(prog, {});
    ASSERT_EQ(full.reason, core::StopReason::Halt);
    EXPECT_FALSE(full.ff.ran);

    sim::MachineConfig cfg;
    cfg.fastForward.instructions = 150;
    const auto ff = runMachine(prog, cfg);
    EXPECT_TRUE(ff.ff.ran);
    EXPECT_GE(ff.ff.issSteps, 150u);
    EXPECT_EQ(ff.reason, full.reason);
    EXPECT_EQ(ff.gprs, full.gprs);
    EXPECT_EQ(ff.memWords, full.memWords);
    // The cycle count covers only the cycle-accurate region.
    EXPECT_LT(ff.cycles, full.cycles);
}

TEST(FastForward, OvershootRunsTheIssToTheStopAndAgrees)
{
    // A checkpoint past the program's end: the ISS halts first, the
    // pipeline re-executes the stopping instruction and owns the
    // result.
    const auto prog = test::asmOrDie(loopSource);
    const auto full = runMachine(prog, {});
    sim::MachineConfig cfg;
    cfg.fastForward.instructions = 10'000'000;
    const auto ff = runMachine(prog, cfg);
    EXPECT_TRUE(ff.ff.ran);
    EXPECT_EQ(ff.ff.issStop, sim::IssStop::Halt);
    EXPECT_EQ(ff.reason, core::StopReason::Halt);
    EXPECT_EQ(ff.gprs, full.gprs);
    EXPECT_EQ(ff.memWords, full.memWords);
}

TEST(FastForward, PcCheckpointStopsExactlyAtTheAddress)
{
    const auto prog = test::asmOrDie(loopSource);
    const auto full = runMachine(prog, {});
    sim::MachineConfig cfg;
    cfg.fastForward.hasPc = true;
    cfg.fastForward.pc = prog.entry + 5; // inside the first block
    const auto ff = runMachine(prog, cfg);
    EXPECT_TRUE(ff.ff.ran);
    EXPECT_EQ(ff.ff.issSteps, 5u);
    EXPECT_EQ(ff.ff.handoffPc, prog.entry + 5);
    EXPECT_EQ(ff.reason, full.reason);
    EXPECT_EQ(ff.gprs, full.gprs);
    EXPECT_EQ(ff.memWords, full.memWords);
}

TEST(FastForward, AgreesWithFullRunOn40FuzzSeeds)
{
    // Generated programs bring branches, loads/stores and SMC into the
    // fast-forwarded region; the architectural result must not depend
    // on where the ISS→pipeline handoff lands.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::GeneratorConfig gc;
        gc.seed = seed;
        const auto prog = fuzz::generate(gc);
        const auto full = runMachine(prog, {});
        sim::MachineConfig cfg;
        cfg.fastForward.instructions = 50;
        const auto ff = runMachine(prog, cfg);
        ASSERT_TRUE(ff.ff.ran) << "seed " << seed;
        ASSERT_EQ(ff.reason, full.reason) << "seed " << seed;
        ASSERT_EQ(ff.gprs, full.gprs) << "seed " << seed;
        ASSERT_EQ(ff.memWords, full.memWords) << "seed " << seed;
    }
}
