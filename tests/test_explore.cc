/**
 * @file
 * Tests for the design-space exploration engine: grid expansion and
 * validation, the sweep-spec JSON reader, parameter application error
 * paths, the machine-configuration validators behind them, and the
 * engine's central determinism contract — a sweep's CSV and JSON
 * outputs are bit-identical for any worker count and across runs.
 */

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "core/cpu.hh"
#include "explore/explore.hh"
#include "explore/json.hh"
#include "memory/ecache.hh"
#include "memory/icache.hh"
#include "sim/machine.hh"

using namespace mipsx;
using namespace mipsx::explore;

// ---------------------------------------------------------------------
// Grid expansion.

TEST(Grid, EmptyGridIsOneBasePoint)
{
    GridSpec g;
    EXPECT_EQ(g.points(), 1u);
    const auto pts = expandGrid(g);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_TRUE(pts[0].bindings.empty());
}

TEST(Grid, ExpandsRowMajorLastAxisFastest)
{
    GridSpec g;
    g.axes = {{"icache.fetchWords", {"1", "2"}},
              {"icache.missPenalty", {"1", "2", "3"}}};
    EXPECT_EQ(g.points(), 6u);
    const auto pts = expandGrid(g);
    ASSERT_EQ(pts.size(), 6u);
    // The last axis (missPenalty) varies fastest — odometer order.
    const char *want[][2] = {{"1", "1"}, {"1", "2"}, {"1", "3"},
                             {"2", "1"}, {"2", "2"}, {"2", "3"}};
    for (std::size_t i = 0; i < 6; ++i) {
        ASSERT_EQ(pts[i].bindings.size(), 2u);
        EXPECT_EQ(pts[i].bindings[0].first, "icache.fetchWords");
        EXPECT_EQ(pts[i].bindings[0].second, want[i][0]);
        EXPECT_EQ(pts[i].bindings[1].first, "icache.missPenalty");
        EXPECT_EQ(pts[i].bindings[1].second, want[i][1]);
    }
}

TEST(Grid, ValueOf)
{
    GridPoint p;
    p.bindings = {{"a", "1"}, {"b", "2"}};
    ASSERT_NE(p.valueOf("a"), nullptr);
    EXPECT_EQ(*p.valueOf("a"), "1");
    EXPECT_EQ(p.valueOf("zzz"), nullptr);
}

TEST(Grid, ValidateRejectsUnknownParam)
{
    GridSpec g;
    g.axes = {{"icache.nonsense", {"1"}}};
    EXPECT_THROW(g.validate(), SimError);
}

TEST(Grid, ValidateRejectsZeroDepthAxis)
{
    // An axis with no values would silently expand to an empty sweep.
    GridSpec g;
    g.axes = {{"icache.sets", {}}};
    EXPECT_THROW(g.validate(), SimError);
    EXPECT_EQ(g.points(), 0u);
}

TEST(Grid, ValidateRejectsDuplicateAxis)
{
    GridSpec g;
    g.axes = {{"icache.sets", {"4"}}, {"icache.sets", {"8"}}};
    EXPECT_THROW(g.validate(), SimError);
}

TEST(Grid, KnownParams)
{
    EXPECT_TRUE(isKnownParam("icache.geometry"));
    EXPECT_TRUE(isKnownParam("branch.scheme"));
    EXPECT_TRUE(isKnownParam("predecode"));
    EXPECT_TRUE(isKnownParam("energy.icacheRead"));
    EXPECT_TRUE(isKnownParam("energy.icacheReadPerKword"));
    EXPECT_TRUE(isKnownParam("energy.ecacheReadPerKword"));
    EXPECT_TRUE(isKnownParam("energy.memCycle"));
    EXPECT_TRUE(isKnownParam("energy.cycleStatic"));
    EXPECT_FALSE(isKnownParam("energy.total")); // a metric, not a knob
    EXPECT_FALSE(isKnownParam("icache"));
    EXPECT_FALSE(isKnownParam(""));
    EXPECT_FALSE(knownParams().empty());
}

// ---------------------------------------------------------------------
// Parameter application: values are validated eagerly, before any
// workload runs, so a typo fails the sweep up front.

TEST(ApplyParam, AppliesValues)
{
    workload::SuiteRunOptions o;
    applyParam(o, "icache.geometry", "8x4x16");
    EXPECT_EQ(o.machine.cpu.icache.sets, 8u);
    EXPECT_EQ(o.machine.cpu.icache.ways, 4u);
    EXPECT_EQ(o.machine.cpu.icache.blockWords, 16u);

    applyParam(o, "branch.slots", "1");
    EXPECT_EQ(o.reorg.slots, 1u);
    EXPECT_EQ(o.machine.cpu.branchDelay, 1u);

    applyParam(o, "branch.scheme", "always-squash");
    EXPECT_EQ(o.reorg.scheme, reorg::BranchScheme::AlwaysSquash);

    applyParam(o, "icache.repl", "fifo");
    EXPECT_EQ(o.machine.cpu.icache.repl, memory::IReplPolicy::Fifo);

    applyParam(o, "energy.icacheRead", "2.5");
    EXPECT_DOUBLE_EQ(o.machine.cpu.energy.icacheRead, 2.5);
    applyParam(o, "energy.icacheReadPerKword", "0");
    EXPECT_DOUBLE_EQ(o.machine.cpu.energy.icacheReadPerKword, 0.0);
    applyParam(o, "energy.memCycle", "75");
    EXPECT_DOUBLE_EQ(o.machine.cpu.energy.memCycle, 75.0);
}

TEST(ApplyParam, RejectsBadValues)
{
    workload::SuiteRunOptions o;
    EXPECT_THROW(applyParam(o, "no.such.param", "1"), SimError);
    EXPECT_THROW(applyParam(o, "icache.sets", "3"), SimError);    // !pow2
    EXPECT_THROW(applyParam(o, "icache.sets", "0"), SimError);
    EXPECT_THROW(applyParam(o, "icache.ways", "0"), SimError);
    EXPECT_THROW(applyParam(o, "icache.ways", "eight"), SimError);
    EXPECT_THROW(applyParam(o, "icache.fetchWords", "3"), SimError);
    EXPECT_THROW(applyParam(o, "icache.repl", "plru"), SimError);
    EXPECT_THROW(applyParam(o, "icache.geometry", "4x8"), SimError);
    EXPECT_THROW(applyParam(o, "branch.slots", "3"), SimError);
    EXPECT_THROW(applyParam(o, "branch.scheme", "sometimes"), SimError);
    EXPECT_THROW(applyParam(o, "branch.profile", "maybe"), SimError);
    // Energy costs validate eagerly too: finite and non-negative.
    EXPECT_THROW(applyParam(o, "energy.icacheRead", "-1"), SimError);
    EXPECT_THROW(applyParam(o, "energy.icacheRead", "abc"), SimError);
    EXPECT_THROW(applyParam(o, "energy.icacheRead", "nan"), SimError);
    EXPECT_THROW(applyParam(o, "energy.memCycle", "inf"), SimError);
    EXPECT_THROW(applyParam(o, "energy.cycleStatic", ""), SimError);
}

// ---------------------------------------------------------------------
// Construction-time configuration validation (the machinery applyParam
// leans on — a config assembled by hand fails just as early).

TEST(ConfigValidate, ICacheGeometry)
{
    memory::ICacheConfig c;
    EXPECT_NO_THROW(c.validate()); // the paper's design is valid

    c = {}; c.ways = 0;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.sets = 3;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.sets = 0;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.blockWords = 0;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.blockWords = 12;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.fetchWords = 0;
    EXPECT_THROW(memory::ICache{c}, SimError);
    c = {}; c.fetchWords = 3;
    EXPECT_THROW(memory::ICache{c}, SimError);
}

TEST(ConfigValidate, ECacheGeometry)
{
    memory::ECacheConfig c;
    EXPECT_NO_THROW(c.validate());

    c = {}; c.sizeWords = 3000;
    EXPECT_THROW(memory::ECache{c}, SimError);
    c = {}; c.lineWords = 3;
    EXPECT_THROW(memory::ECache{c}, SimError);
}

TEST(ConfigValidate, MachineConfig)
{
    sim::MachineConfig c;
    EXPECT_NO_THROW(c.validate());

    c = {}; c.cpu.branchDelay = 0;
    EXPECT_THROW(c.validate(), SimError);
    c = {}; c.cpu.branchDelay = 3;
    EXPECT_THROW(c.validate(), SimError);
    c = {}; c.cpu.maxCycles = 0;
    EXPECT_THROW(c.validate(), SimError);
    c = {}; c.cpu.icache.sets = 5;
    EXPECT_THROW(c.validate(), SimError);
}

// ---------------------------------------------------------------------
// The sweep-spec JSON reader.

TEST(Json, ScalarsKeepTheirSourceForm)
{
    const auto j = Json::parse(R"({"a": 1, "b": 2.50, "c": "x",
                                   "d": true, "e": false})");
    ASSERT_TRUE(j.isObject());
    // Numbers keep their lexeme: 2.50 stays "2.50", not "2.5".
    EXPECT_EQ(j.find("a")->scalarString(), "1");
    EXPECT_EQ(j.find("b")->scalarString(), "2.50");
    EXPECT_EQ(j.find("c")->scalarString(), "x");
    // Booleans become the "1"/"0" the boolean grid parameters accept.
    EXPECT_EQ(j.find("d")->scalarString(), "1");
    EXPECT_EQ(j.find("e")->scalarString(), "0");
    EXPECT_EQ(j.find("zzz"), nullptr);
}

TEST(Json, ObjectsKeepMemberOrder)
{
    const auto j = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
    const auto &m = j.object();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].first, "z");
    EXPECT_EQ(m[1].first, "a");
    EXPECT_EQ(m[2].first, "m");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse(""), SimError);
    EXPECT_THROW(Json::parse("{"), SimError);
    EXPECT_THROW(Json::parse("[1,]"), SimError);
    EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), SimError);
    EXPECT_THROW(Json::parse("{\"a\": 1, \"a\": 2}"), SimError);
    EXPECT_THROW(Json::parse("nope"), SimError);
}

TEST(SweepFromJson, ParsesSuiteBaseAndAxes)
{
    const auto cfg = sweepFromJson(R"({
        "suite": "big-code",
        "base": {"reorg.paperFaithful": false},
        "axes": {"icache.fetchWords": [1, 2],
                 "icache.missPenalty": 3}
    })");
    EXPECT_EQ(cfg.suite, "big-code");
    ASSERT_EQ(cfg.base.size(), 1u);
    EXPECT_EQ(cfg.base[0].first, "reorg.paperFaithful");
    EXPECT_EQ(cfg.base[0].second, "0");
    ASSERT_EQ(cfg.grid.axes.size(), 2u);
    EXPECT_EQ(cfg.grid.axes[0].param, "icache.fetchWords");
    EXPECT_EQ(cfg.grid.axes[0].values,
              (std::vector<std::string>{"1", "2"}));
    // A bare scalar is a one-value axis.
    EXPECT_EQ(cfg.grid.axes[1].values,
              (std::vector<std::string>{"3"}));
}

TEST(SweepFromJson, RejectsBadSpecs)
{
    EXPECT_THROW(sweepFromJson(R"({"axes": {}})"), SimError);
    EXPECT_THROW(sweepFromJson(R"({"suite": "tiny",
                                   "axes": {"predecode": [0, 1]}})"),
                 SimError); // unknown suite
    EXPECT_THROW(sweepFromJson(R"({"axes": {"no.such": [1]}})"),
                 SimError);
    EXPECT_THROW(sweepFromJson(R"({"axes": {"icache.sets": []}})"),
                 SimError); // zero-depth axis
    EXPECT_THROW(sweepFromJson(R"({"base": {"icache.sets": 3},
                                   "axes": {"predecode": [0, 1]}})"),
                 SimError); // bad base value, caught at parse time
    EXPECT_THROW(sweepFromJson(R"({"axis": {"predecode": [0, 1]}})"),
                 SimError); // unknown top-level key ("axes" misspelled)
}

TEST(SuiteByName, Names)
{
    EXPECT_FALSE(suiteByName("full").empty());
    EXPECT_FALSE(suiteByName("big-code").empty());
    EXPECT_THROW(suiteByName("everything"), SimError);
    EXPECT_THROW(suiteByName(""), SimError);
}

// ---------------------------------------------------------------------
// Running sweeps.

namespace
{

/** A 2x2 sweep over a two-workload slice — cheap enough to run often. */
SweepConfig
tinyConfig()
{
    SweepConfig cfg;
    cfg.grid.axes = {{"icache.missPenalty", {"2", "3"}},
                     {"icache.fetchWords", {"1", "2"}}};
    return cfg;
}

std::vector<workload::Workload>
tinySuite()
{
    auto ws = workload::fpWorkloads();
    ws.resize(2);
    return ws;
}

} // namespace

TEST(RunSweep, PointsCarryBindingsAndMetrics)
{
    const auto r = runSweep(tinyConfig(), tinySuite());
    EXPECT_EQ(r.workloads, 2u);
    ASSERT_EQ(r.points.size(), 4u);
    EXPECT_EQ(r.totalFailures(), 0u);
    for (const auto &p : r.points) {
        EXPECT_EQ(p.point.bindings.size(), 2u);
        EXPECT_GT(p.stats.committed, 0u);
        // The metrics snapshot mirrors the aggregate.
        const auto rows = p.metrics.formatted();
        EXPECT_FALSE(rows.empty());
    }
    // find() pulls a named row out.
    const auto *p = r.find({{"icache.missPenalty", "3"},
                            {"icache.fetchWords", "1"}});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(r.find({{"icache.missPenalty", "4"}}), nullptr);
    // A higher miss penalty can only cost cycles.
    const auto *cheap = r.find({{"icache.missPenalty", "2"},
                                {"icache.fetchWords", "1"}});
    ASSERT_NE(cheap, nullptr);
    EXPECT_GE(p->stats.cycles, cheap->stats.cycles);
}

TEST(RunSweep, BadPointFailsBeforeAnythingRuns)
{
    SweepConfig cfg;
    cfg.grid.axes = {{"icache.sets", {"4", "5"}}}; // 5 is not pow2
    unsigned calls = 0;
    const auto progress = [&](std::size_t, std::size_t,
                              const SweepPointResult &) { ++calls; };
    EXPECT_THROW(runSweep(cfg, tinySuite(), progress), SimError);
    EXPECT_EQ(calls, 0u); // validation precedes simulation
}

TEST(RunSweep, BadBaseBindingFails)
{
    auto cfg = tinyConfig();
    cfg.base = {{"branch.scheme", "bogus"}};
    EXPECT_THROW(runSweep(cfg, tinySuite()), SimError);
}

TEST(WriteCsv, HeaderAndShape)
{
    const auto r = runSweep(tinyConfig(), tinySuite());
    std::ostringstream os;
    writeCsv(os, r);
    const auto text = os.str();
    std::istringstream is(text);
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header,
              "point,icache.missPenalty,icache.fetchWords,metric,value");
    std::size_t rows = 0;
    std::string line;
    while (std::getline(is, line))
        ++rows;
    // One row per point x metric, the same metric set at every point.
    ASSERT_EQ(r.points.size(), 4u);
    const std::size_t metrics = r.points[0].metrics.formatted().size();
    EXPECT_EQ(rows, 4u * metrics);
    EXPECT_NE(text.find("suite.cpi"), std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism: the sweep's CSV and JSON are bit-identical for any
// worker count (MIPSX_BENCH_JOBS 1 / 2 / 8) and across repeated runs.
// This is the property scripts/tier1.sh smoke-checks and every golden
// test relies on.

namespace
{

struct SweepOutputs
{
    std::string csv, json;
    bool operator==(const SweepOutputs &) const = default;
};

SweepOutputs
renderTinySweep()
{
    auto cfg = tinyConfig();
    cfg.runner.jobs = 0; // defer to MIPSX_BENCH_JOBS
    const auto r = runSweep(cfg, tinySuite());
    std::ostringstream csv, json;
    writeCsv(csv, r);
    writeJson(json, r);
    return {csv.str(), json.str()};
}

} // namespace

TEST(Determinism, OutputsIdenticalAcrossJobCountsAndRuns)
{
    SweepOutputs baseline;
    bool first = true;
    for (const char *jobs : {"1", "2", "8", "2"}) {
        ASSERT_EQ(setenv("MIPSX_BENCH_JOBS", jobs, 1), 0);
        const auto out = renderTinySweep();
        if (first) {
            baseline = out;
            first = false;
        } else {
            EXPECT_EQ(out.csv, baseline.csv) << "jobs=" << jobs;
            EXPECT_EQ(out.json, baseline.json) << "jobs=" << jobs;
        }
    }
    unsetenv("MIPSX_BENCH_JOBS");
    // And nothing host-dependent leaks into the outputs.
    EXPECT_EQ(baseline.json.find("seconds"), std::string::npos);
    EXPECT_EQ(baseline.json.find("jobs"), std::string::npos);
    // Every row carries the energy model's keys under the v2 schema.
    EXPECT_NE(baseline.json.find("mipsx-explore-v2"), std::string::npos);
    EXPECT_NE(baseline.json.find("energy.total"), std::string::npos);
    EXPECT_NE(baseline.csv.find("energy.edp"), std::string::npos);
}
