/**
 * @file
 * The parallel suite runner must be invisible in the results: the
 * aggregated SuiteStats and the failure list are bit-identical for any
 * worker count (the EXPERIMENTS tables depend on it), and the predecode
 * fast path never changes an aggregate either.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "workload/prepared.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::workload;

namespace
{

SuiteResult
runWith(const std::vector<Workload> &ws, unsigned jobs,
        bool predecode = true)
{
    SuiteRunOptions opts;
    opts.jobs = jobs;
    opts.predecode = predecode;
    return runSuite(ws, opts);
}

} // namespace

TEST(SuiteRunner, WorkerCountDoesNotChangeTheAggregate)
{
    const auto suite = fullSuite();
    const auto serial = runWith(suite, 1);
    EXPECT_EQ(serial.stats.workloads, suite.size());
    EXPECT_EQ(serial.stats.failures, 0u);
    ASSERT_TRUE(serial.failures.empty());
    for (const unsigned jobs : {2u, 4u, 8u}) {
        const auto par = runWith(suite, jobs);
        EXPECT_EQ(par.timing.jobs, jobs);
        EXPECT_TRUE(par.stats == serial.stats)
            << "aggregate differs at jobs=" << jobs;
        EXPECT_TRUE(par.failures == serial.failures);
    }
}

TEST(SuiteRunner, SharedPreparedCacheUnderTheWorkerPool)
{
    // This binary is the one the ThreadSanitizer stage runs, so this
    // test is the race detector for the prepared cache: a cold cache
    // hammered by 8 workers (concurrent same-key first touches resolve
    // through one shared future), then a warm pass sharing the cached
    // images and decode snapshots across all workers at once.
    PreparedCache::global().clear();
    const auto suite = fullSuite();
    SuiteRunOptions opts;
    opts.jobs = 8;
    const auto cold = runSuite(suite, opts);
    EXPECT_EQ(cold.stats.failures, 0u);
    const auto coldStats = PreparedCache::global().stats();
    EXPECT_EQ(coldStats.misses, suite.size());
    const auto warm = runSuite(suite, opts);
    EXPECT_TRUE(warm.stats == cold.stats);
    EXPECT_GE(PreparedCache::global().stats().hits, suite.size());
    // The serial uncached run is the reference the shared runs must
    // reproduce exactly.
    SuiteRunOptions uncached;
    uncached.jobs = 1;
    uncached.preparedCache = false;
    EXPECT_TRUE(runSuite(suite, uncached).stats == cold.stats);
}

TEST(SuiteRunner, PredecodeDoesNotChangeTheAggregate)
{
    const auto suite = fullSuite();
    const auto fast = runWith(suite, 2, true);
    const auto slow = runWith(suite, 2, false);
    EXPECT_TRUE(fast.stats == slow.stats);
    EXPECT_TRUE(fast.failures == slow.failures);
}

TEST(SuiteRunner, FailuresAreCollectedDeterministically)
{
    // A suite with two crafted failures around a healthy workload: one
    // that trips its self-check (fail trap) and one the assembler
    // rejects. Every worker count must report the same records, sorted
    // by suite position, and still aggregate the healthy run.
    std::vector<Workload> suite;
    Workload bad;
    bad.name = "zz_selfcheck";
    bad.source = "        .text\n_start: fail\n";
    suite.push_back(bad);
    suite.push_back(pascalWorkloads().front());
    Workload broken;
    broken.name = "aa_noasm";
    broken.source = "        .text\n_start: frobnicate r1, r2\n";
    suite.push_back(broken);

    const auto serial = runWith(suite, 1);
    // Only the healthy run is counted: `workloads` is the denominator
    // of successful runs, failures contribute nothing but their tick.
    EXPECT_EQ(serial.stats.workloads, 1u);
    EXPECT_EQ(serial.stats.failures, 2u);
    ASSERT_EQ(serial.failures.size(), 2u);
    EXPECT_EQ(serial.failures[0].index, 0u);
    EXPECT_EQ(serial.failures[0].name, "zz_selfcheck");
    EXPECT_FALSE(serial.failures[0].reason.empty());
    EXPECT_EQ(serial.failures[1].index, 2u);
    EXPECT_EQ(serial.failures[1].name, "aa_noasm");
    EXPECT_FALSE(serial.failures[1].error.empty());

    for (const unsigned jobs : {2u, 3u, 8u}) {
        const auto par = runWith(suite, jobs);
        EXPECT_TRUE(par.stats == serial.stats);
        EXPECT_TRUE(par.failures == serial.failures)
            << "failure records differ at jobs=" << jobs;
    }
}

TEST(SuiteRunner, FailingWorkloadDoesNotSkewTheAggregate)
{
    // Regression: a workload that dies mid-run used to tick `workloads`
    // (and, with a partial copy, could leak its cycle/cache counts)
    // into the aggregate, skewing every per-instruction ratio. A suite
    // with one failure injected must aggregate exactly like the same
    // suite without it — apart from the failure tick — at any worker
    // count, including the MIPSX_BENCH_JOBS default path.
    std::vector<Workload> healthy{pascalWorkloads().front(),
                                  pascalWorkloads().back()};
    std::vector<Workload> poisoned = healthy;
    Workload dying;
    dying.name = "mm_dies";
    // Runs a few hundred instructions first so a partial-stats leak
    // would be visible in the cycle counts, then trips the fail trap.
    dying.source = "        .text\n"
                   "_start: addi r1, r0, 300\n"
                   "loop:   addi r1, r1, -1\n"
                   "        bnz  r1, loop\n"
                   "        nop\n"
                   "        nop\n"
                   "        fail\n";
    poisoned.insert(poisoned.begin() + 1, dying);

    const auto clean = runWith(healthy, 1);
    ASSERT_EQ(clean.stats.failures, 0u);
    for (const unsigned jobs : {1u, 2u, 4u}) {
        auto r = runWith(poisoned, jobs);
        EXPECT_EQ(r.stats.failures, 1u) << "jobs=" << jobs;
        ASSERT_EQ(r.failures.size(), 1u);
        EXPECT_EQ(r.failures[0].name, "mm_dies");
        r.stats.failures = 0;
        EXPECT_TRUE(r.stats == clean.stats)
            << "failing workload leaked into the aggregate at jobs="
            << jobs;
    }

    ::setenv("MIPSX_BENCH_JOBS", "3", 1);
    auto r = runWith(poisoned, 0); // 0 = defaultSuiteJobs() -> env
    ::unsetenv("MIPSX_BENCH_JOBS");
    EXPECT_EQ(r.timing.jobs, 3u);
    r.stats.failures = 0;
    EXPECT_TRUE(r.stats == clean.stats);
}

TEST(SuiteRunner, JobsClampToSuiteSizeAndEnvOverrides)
{
    // More workers than workloads degrades gracefully.
    const auto tiny = std::vector<Workload>{pascalWorkloads().front()};
    const auto r = runWith(tiny, 64);
    EXPECT_EQ(r.timing.jobs, 1u);
    EXPECT_EQ(r.stats.workloads, 1u);

    // MIPSX_BENCH_JOBS drives the default job count.
    ::setenv("MIPSX_BENCH_JOBS", "3", 1);
    EXPECT_EQ(defaultSuiteJobs(), 3u);
    ::setenv("MIPSX_BENCH_JOBS", "garbage", 1);
    EXPECT_GE(defaultSuiteJobs(), 1u);
    ::unsetenv("MIPSX_BENCH_JOBS");
    EXPECT_GE(defaultSuiteJobs(), 1u);
}
