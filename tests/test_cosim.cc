/**
 * @file
 * Lockstep co-simulation: the pipeline's retire stream must match the
 * delayed-semantics ISS instruction by instruction (same PCs in the
 * same order, same squash decisions) on reorganized programs — a much
 * stronger check than comparing final state.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "isa/disasm.hh"
#include "reorg/scheduler.hh"
#include "trace/export.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;

namespace
{

struct Step
{
    addr_t pc = 0;
    bool squashed = false;
    word_t raw = 0;    ///< diagnostic only, not compared
    cycle_t cycle = 0; ///< retire cycle (pipeline side only)

    bool
    operator==(const Step &o) const
    {
        return pc == o.pc && squashed == o.squashed;
    }
};

std::vector<Step>
issStream(const assembler::Program &prog, std::size_t limit)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    sim::Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    std::vector<Step> out;
    while (!iss.stopped() && out.size() < limit) {
        out.push_back({iss.pc(), iss.nextIsSquashed(),
                       mem.read(AddressSpace::User, iss.pc()), 0});
        iss.step();
    }
    // The final trap retires on the pipeline too but stops the ISS
    // before stepping past it; keep streams comparable by including it.
    return out;
}

std::vector<Step>
pipeStream(const assembler::Program &prog, std::size_t limit)
{
    sim::Machine machine{sim::MachineConfig{}};
    machine.load(prog);
    std::vector<Step> out;
    machine.cpu().setRetireHook(
        [&out, limit](const core::Cpu::RetireEvent &ev) {
            if (out.size() < limit)
                out.push_back({ev.pc, ev.squashed, ev.raw, ev.cycle});
        });
    machine.run();
    return out;
}

std::string
stepLine(const Step &s)
{
    return strformat("pc=%05x  %-30s%s", s.pc,
                     isa::disassemble(s.raw, s.pc, true).c_str(),
                     s.squashed ? "  [squashed]" : "");
}

/**
 * Empty when the streams agree over their common prefix; otherwise a
 * report naming the first diverging retire on both sides, followed by
 * the pipeline's trace-event tail up to that retire — the re-run stops
 * at the diverging instruction's cycle so the ring holds the events
 * that *led to* the divergence, with disassembly, not the end of run.
 */
std::string
divergenceReport(const assembler::Program &prog,
                 const std::vector<Step> &iss,
                 const std::vector<Step> &pipe, const std::string &what)
{
    const std::size_t n = std::min(iss.size(), pipe.size());
    std::size_t i = 0;
    while (i < n && iss[i] == pipe[i])
        ++i;
    if (i == n)
        return {};

    sim::MachineConfig cfg;
    cfg.traceDepth = 48;
    cfg.cpu.maxCycles = pipe[i].cycle + 1;
    sim::Machine machine{cfg};
    machine.load(prog);
    machine.run();

    std::ostringstream os;
    os << what << ": retire streams diverge at step " << i << "\n"
       << "  iss      : " << stepLine(iss[i]) << "\n"
       << "  pipeline : " << stepLine(pipe[i]) << "\n"
       << "  pipeline events leading up to the divergence:\n";
    for (const auto &e : machine.trace().events())
        os << "    " << trace::formatEvent(e) << "\n";
    return os.str();
}

} // namespace

TEST(Cosim, RetireStreamsMatchInstructionByInstruction)
{
    // Every workload in the suite, under every branch scheme, lockstep
    // for its first 12k retires.
    for (const auto &w : workload::fullSuite()) {
        const auto prog = asmOrDie(w.source);
        for (int sch = 0; sch < 3; ++sch) {
            reorg::ReorgConfig rc;
            rc.scheme = static_cast<reorg::BranchScheme>(sch);
            rc.paperFaithful = false;
            const auto sched = reorg::reorganize(prog, rc, nullptr);

            constexpr std::size_t limit = 12000;
            const auto a = issStream(sched, limit);
            const auto b = pipeStream(sched, limit);
            ASSERT_GT(std::min(a.size(), b.size()), 100u) << w.name;
            const auto report = divergenceReport(
                sched, a, b, w.name + "/" + std::to_string(sch));
            ASSERT_TRUE(report.empty()) << report;
        }
    }
}

namespace
{

/**
 * Self-modifying code: the program patches an instruction word it has
 * already executed (so the predecoded store has cached its decode) and
 * a word sitting in a branch-delay shadow, then runs both again. The
 * branch is never taken so the shadow word executes under sequential
 * semantics too, keeping all three models comparable. Written with
 * explicit delay-slot nops; runs unreorganized.
 */
const char *const smcSource = R"(
        .data
ptrs:   .word patch, donor, shadow
        .text
_start: addi r10, r0, 0
        addi r9, r0, 2          ; two passes over the patch site
        la   r1, ptrs
        ld   r2, 0(r1)          ; &patch
        ld   r3, 1(r1)          ; &donor
        nop                     ; load-delay slot for r3
        ld   r4, 0(r3)          ; donor encoding: addi r10, r10, 5
loop:
patch:  addi r10, r10, 1        ; pass 1: +1.  pass 2 (patched): +5
        st   r4, 0(r2)          ; rewrite the already-fetched word
        nop
        nop
        nop
        nop
        addi r9, r9, -1
        bnz  r9, loop
        nop
        nop
        ; r10 == 6
        ld   r5, 2(r1)          ; &shadow
        addi r7, r0, 2          ; two passes over the branch shadow
sloop:  bne  r0, r0, never      ; never taken
shadow: addi r10, r10, 2        ; delay slot.  pass 1: +2, pass 2: +5
        nop                     ; second delay slot
        st   r4, 0(r5)          ; rewrite the delay-slot word
        nop
        nop
        nop
        nop
        addi r7, r7, -1
        bnz  r7, sloop
        nop
        nop
never:  addi r11, r0, 13        ; 1 + 5 + 2 + 5
        beq  r10, r11, ok
        nop
        nop
        fail
ok:     halt
donor:  addi r10, r10, 5        ; never executed in place; data donor
)";

} // namespace

TEST(Cosim, SelfModifyingCodeInvalidatesPredecodedWords)
{
    const auto prog = asmOrDie(smcSource);

    const auto seq = runSequential(prog);
    ASSERT_EQ(seq.reason, sim::IssStop::Halt);
    EXPECT_EQ(seq.gpr(10), 13u);

    const auto del = runDelayed(prog);
    ASSERT_EQ(del.reason, sim::IssStop::Halt);
    EXPECT_EQ(del.gpr(10), 13u);

    const auto pipe = runPipelineProg(prog);
    ASSERT_TRUE(pipe.result.halted());
    EXPECT_EQ(pipe.gpr(10), 13u);

    // And with the predecode fast path off, the pipeline must agree —
    // the store invalidation is what keeps the fast path exact.
    sim::Machine slow{sim::MachineConfig{}};
    slow.memory().setPredecodeEnabled(false);
    slow.load(prog);
    const auto r = slow.run();
    ASSERT_TRUE(r.halted());
    EXPECT_EQ(slow.cpu().gpr(10), 13u);
    EXPECT_EQ(r.instructions, pipe.result.instructions);
}

TEST(Cosim, SelfModifyingCodeRetireStreamsMatch)
{
    const auto prog = asmOrDie(smcSource);
    constexpr std::size_t limit = 4096;
    const auto a = issStream(prog, limit);
    const auto b = pipeStream(prog, limit);
    ASSERT_GT(std::min(a.size(), b.size()), 20u);
    const auto report = divergenceReport(prog, a, b, "smc");
    ASSERT_TRUE(report.empty()) << report;
}

TEST(Cosim, DivergenceReporterNamesTheDivergingInstruction)
{
    // Force a mismatch: the two sides run programs that differ in one
    // branch condition, so their retire streams split right after the
    // delay slots. The report must identify the step, both sides'
    // instructions by disassembly, and carry the pipeline's event tail.
    const char *const fmt = R"(
_start: addi r1, r0, 1
        %s   r0, r0, skip
        nop
        nop
        addi r2, r0, 9
skip:   halt
)";
    const auto pipeProg = asmOrDie(strformat(fmt, "beq"));
    const auto issProg = asmOrDie(strformat(fmt, "bne"));

    const auto a = issStream(issProg, 64);
    const auto b = pipeStream(pipeProg, 64);
    const auto report = divergenceReport(pipeProg, a, b, "forced");
    ASSERT_FALSE(report.empty());
    EXPECT_NE(report.find("diverge"), std::string::npos) << report;
    // The ISS side retires "addi r2, r0, 9" where the pipeline (taken
    // branch) retires the halt trap; both must be named.
    EXPECT_NE(report.find("addi"), std::string::npos) << report;
    EXPECT_NE(report.find("iss      :"), std::string::npos) << report;
    EXPECT_NE(report.find("pipeline :"), std::string::npos) << report;
    EXPECT_NE(report.find("retire"), std::string::npos) << report;
}
