/**
 * @file
 * Lockstep co-simulation: the pipeline's retire stream must match the
 * delayed-semantics ISS instruction by instruction (same PCs in the
 * same order, same squash decisions) on reorganized programs — a much
 * stronger check than comparing final state.
 */

#include <vector>

#include <gtest/gtest.h>

#include "helpers.hh"
#include "reorg/scheduler.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;

namespace
{

struct Step
{
    addr_t pc;
    bool squashed;
    bool operator==(const Step &o) const = default;
};

std::vector<Step>
issStream(const assembler::Program &prog, std::size_t limit)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    sim::Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    std::vector<Step> out;
    while (!iss.stopped() && out.size() < limit) {
        out.push_back({iss.pc(), iss.nextIsSquashed()});
        iss.step();
    }
    // The final trap retires on the pipeline too but stops the ISS
    // before stepping past it; keep streams comparable by including it.
    return out;
}

std::vector<Step>
pipeStream(const assembler::Program &prog, std::size_t limit)
{
    sim::Machine machine{sim::MachineConfig{}};
    machine.load(prog);
    std::vector<Step> out;
    machine.cpu().setRetireHook(
        [&out, limit](const core::Cpu::RetireEvent &ev) {
            if (out.size() < limit)
                out.push_back({ev.pc, ev.squashed});
        });
    machine.run();
    return out;
}

} // namespace

TEST(Cosim, RetireStreamsMatchInstructionByInstruction)
{
    // Every workload in the suite, under every branch scheme, lockstep
    // for its first 12k retires.
    for (const auto &w : workload::fullSuite()) {
        const auto prog = asmOrDie(w.source);
        for (int sch = 0; sch < 3; ++sch) {
            reorg::ReorgConfig rc;
            rc.scheme = static_cast<reorg::BranchScheme>(sch);
            rc.paperFaithful = false;
            const auto sched = reorg::reorganize(prog, rc, nullptr);

            constexpr std::size_t limit = 12000;
            const auto a = issStream(sched, limit);
            const auto b = pipeStream(sched, limit);
            const auto n = std::min(a.size(), b.size());
            ASSERT_GT(n, 100u) << w.name;
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(a[i].pc, b[i].pc)
                    << w.name << "/" << sch << " diverges at step " << i;
                ASSERT_EQ(a[i].squashed, b[i].squashed)
                    << w.name << "/" << sch << " squash mismatch at "
                    << "step " << i << " pc=" << a[i].pc;
            }
        }
    }
}
