/**
 * @file
 * Smaller unit suites: the statistics/table utilities, the
 * disassembler/assembler round trip, text-pointer relocations and the
 * schedule verifier.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "reorg/cfg.hh"
#include "reorg/scheduler.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

TEST(Stats, CounterAndRatio)
{
    stats::Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    EXPECT_DOUBLE_EQ(stats::ratio(c.value(), 10), 0.5);
    EXPECT_DOUBLE_EQ(stats::ratio(1, 0), 0.0); // safe
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramMeanAndClamp)
{
    stats::Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(9); // clamps into bucket 3
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 3) / 4.0);
}

TEST(Stats, GroupDumpAndLookup)
{
    stats::Group g("icache");
    g.set("miss_ratio", 0.12);
    EXPECT_TRUE(g.has("miss_ratio"));
    EXPECT_DOUBLE_EQ(g.get("miss_ratio"), 0.12);
    EXPECT_THROW(g.get("nope"), SimError);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("icache.miss_ratio"), std::string::npos);
}

TEST(Stats, TableRejectsRaggedRows)
{
    stats::Table t("t", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), SimError);
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("x"), std::string::npos);
    EXPECT_EQ(stats::Table::num(1.2345, 2), "1.23");
    EXPECT_EQ(stats::Table::pct(0.5), "50.0%");
}

// ---------------------------------------------------------------------
// disassemble -> reassemble round trip
// ---------------------------------------------------------------------

TEST(Disasm, RoundTripsEverySuiteInstruction)
{
    // Every instruction in every (scheduled) workload must disassemble
    // to text the assembler accepts and re-encode to the same word.
    const auto suite = workload::fullSuite();
    std::set<word_t> seen;
    unsigned checked = 0;
    for (const auto &w : suite) {
        const auto prog = asmOrDie(w.source);
        const auto sched = reorg::reorganize(prog, {}, nullptr);
        for (const auto &sec : sched.sections) {
            if (!sec.isText)
                continue;
            for (std::size_t i = 0; i < sec.words.size(); ++i) {
                const word_t word = sec.words[i];
                if (!seen.insert(word).second)
                    continue;
                const auto in = isa::decode(word);
                // PC-relative operands need the assembler's label
                // machinery; round-trip the others.
                if (in.isBranch() || in.isJump() || !in.valid)
                    continue;
                const std::string text = isa::disassemble(word);
                const auto re = asmOrDie("        " + text + "\n");
                ASSERT_EQ(re.text().words.size(), 1u) << text;
                EXPECT_EQ(re.text().words[0], word)
                    << text << " in " << w.name;
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 300u);
}

TEST(Disasm, BranchesRenderResolvableTargets)
{
    const auto p = asmOrDie(R"(
l:      beq r1, r2, l
        jmp l
        halt
)");
    const auto &t = p.text();
    EXPECT_EQ(isa::disassemble(t.words[0], t.base, true),
              strformat("beq r1, r2, 0x%x", t.base));
    EXPECT_EQ(isa::disassemble(t.words[1], t.base + 1, true),
              strformat("jmp 0x%x", t.base));
}

// ---------------------------------------------------------------------
// text-pointer relocations
// ---------------------------------------------------------------------

TEST(Relocation, DataCodePointersFollowTheRelayout)
{
    const auto p = asmOrDie(R"(
        .data
fnptr:  .word fn
        .text
_start: ld   r9, fnptr
        nop
        jalr ra, 0(r9)
        addi r2, r2, 100
        halt
fn:     addi r2, r0, 5
        ret
)");
    ASSERT_EQ(p.textRefs.size(), 1u);
    const auto q = reorg::reorganize(p, {}, nullptr);
    // The data word must now hold fn's *new* address.
    const auto &data = q.sections[0];
    EXPECT_EQ(data.words[0], q.symbol("fn"));
    EXPECT_NE(q.symbol("fn"), p.symbol("fn")); // layout really moved

    auto r = runDelayed(q);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(2), 105u);
}

TEST(Relocation, LoadImmediateOfTextLabelIsDiagnosed)
{
    EXPECT_THROW(asmOrDie(R"(
_start: la r1, _start
        halt
)"), SimError);
}

TEST(Relocation, DataLabelsAreFineAsImmediates)
{
    EXPECT_NO_THROW(asmOrDie(R"(
        .data
v:      .word 1
        .text
_start: la r1, v
        halt
)"));
}

// ---------------------------------------------------------------------
// the schedule verifier
// ---------------------------------------------------------------------

TEST(VerifySchedule, AcceptsEverySuiteSchedule)
{
    // reorganize() runs verifySchedule internally and throws on any
    // violation; schedule the whole suite under every scheme to prove
    // the postcondition holds broadly.
    for (const auto &w : workload::fullSuite()) {
        const auto prog = asmOrDie(w.source);
        for (int sch = 0; sch < 3; ++sch) {
            reorg::ReorgConfig rc;
            rc.scheme = static_cast<reorg::BranchScheme>(sch);
            rc.paperFaithful = false;
            EXPECT_NO_THROW(reorg::reorganize(prog, rc, nullptr))
                << w.name;
        }
    }
}

TEST(VerifySchedule, CountsInjectedHazards)
{
    // Hand-build a CFG with a load feeding its neighbour and a
    // mis-shaped slot region; the verifier must flag both.
    const auto p = asmOrDie(R"(
        .data
v:      .word 9
        .text
_start: ld   r1, v
        add  r2, r1, r1
        bnz  r2, _start
        halt
)");
    reorg::Cfg cfg = reorg::Cfg::build(p.text());
    // Unscheduled: the load-use hazard exists and branches have no
    // slot regions yet.
    EXPECT_GT(reorg::verifySchedule(cfg, 2), 0u);
}
