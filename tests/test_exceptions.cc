/**
 * @file
 * Pipeline exception-handling tests: the paper's halt-the-pipeline model,
 * the frozen PC chain, PSW/PSWold, and the restart sequence of three
 * special jumps (jpc) that reload the pipe.
 */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace mipsx;
using namespace mipsx::test;

namespace
{

/**
 * The canonical handler: counts exceptions in system memory, optionally
 * marks the faulting instruction's chain entry (pchain1) with the squash
 * bit so it re-executes as a no-op, restores the PSW and restarts with
 * three jpc jumps. Hand-scheduled for the 2-delay-slot pipeline.
 */
const char *kSkipHandler = R"(
        .systext 0
handler:
        ld     r20, hcount(r0)
        nop                      ; load delay
        addi   r20, r20, 1
        st     r20, hcount(r0)
        movfrs r21, pchain1      ; the faulting instruction's entry
        li     r22, 0x80000000   ; the squash flag (bit 31)
        or     r21, r21, r22
        movtos pchain1, r21      ; commits 4 cycles later; jpc1 pops
        movfrs r23, pswold       ;   chain0 the same cycle it commits
        movtos psw, r23          ; commits exactly when the first user
        jpc                      ;   word is fetched again
        jpc
        jpc
        .sysdata 0x4000
hcount: .word 0
)";

const char *kCountHandler = R"(
        .systext 0
handler:
        ld     r20, hcount(r0)
        nop
        addi   r20, r20, 1
        st     r20, hcount(r0)
        movfrs r23, pswold
        movtos psw, r23
        jpc
        jpc
        jpc
        .sysdata 0x4000
hcount: .word 0
)";

} // namespace

TEST(Exceptions, UnhandledExceptionStopsWithDiagnostic)
{
    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ovfe;
    auto r = runPipeline(R"(
        li  r1, 0x7fffffff
        add r2, r1, r1
        halt
)", cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::UnhandledException);
}

TEST(Exceptions, OverflowTrapSkipsAndResumes)
{
    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ovfe;
    auto r = runPipeline(std::string(kSkipHandler) + R"(
        .text
_start: li   r1, 0x7fffffff
        addi r2, r0, 5
        add  r3, r1, r1     ; overflows; handler squash-skips it
        addi r4, r2, 1
        halt
)", cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(3), 0u) << "faulting add must not commit";
    EXPECT_EQ(r.gpr(4), 6u) << "execution must resume correctly";
    EXPECT_EQ(r.word(0x4000, AddressSpace::System), 1u);
    EXPECT_EQ(r.stats().exceptions, 1u);
}

TEST(Exceptions, TrapInstructionActsAsSyscall)
{
    auto r = runPipeline(std::string(kSkipHandler) + R"(
        .text
_start: addi r1, r0, 3
        trap 42             ; handler counts it and skips it
        addi r2, r1, 1
        trap 42
        addi r3, r2, 1
        halt
)");
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(2), 4u);
    EXPECT_EQ(r.gpr(3), 5u);
    EXPECT_EQ(r.word(0x4000, AddressSpace::System), 2u);
    EXPECT_EQ(r.stats().exceptions, 2u);
}

TEST(Exceptions, PswCauseBitsRecorded)
{
    // Stop inside the handler (trap the handler's own first fetch is not
    // possible; instead run a handler that just halts) and check cause.
    auto r = runPipeline(R"(
        .systext 0
handler: movfrs r9, psw
        movfrs r10, pswold
        halt
        .text
_start: trap 9
        nop
        halt
)");
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_TRUE(r.gpr(9) & isa::psw_bits::cTrap);
    EXPECT_TRUE(r.gpr(9) & isa::psw_bits::mode) << "system mode";
    EXPECT_FALSE(r.gpr(9) & isa::psw_bits::ie) << "interrupts off";
    EXPECT_FALSE(r.gpr(9) & isa::psw_bits::shiftEn) << "chain frozen";
    EXPECT_TRUE(r.gpr(10) & isa::psw_bits::shiftEn) << "old PSW saved";
}

TEST(Exceptions, InterruptResumesTransparently)
{
    // Deliver one interrupt mid-loop; the loop's result must be exact.
    const std::string src = std::string(kCountHandler) + R"(
        .text
_start: addi r1, r0, 50
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        nop
        nop
        halt
)";
    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie;
    PipelineRun r;
    r.prog = asmOrDie(src);
    r.machine = std::make_unique<sim::Machine>(cfg);
    r.machine->load(r.prog);
    auto &cpu = r.machine->cpu();
    cpu.reset(r.prog.entry);
    cpu.setGpr(isa::reg::sp, 0x70000);
    bool raised = false;
    while (!cpu.stopped()) {
        if (!raised && cpu.stats().cycles > 60) {
            cpu.raiseInterrupt();
            raised = true;
        }
        cpu.step();
    }
    EXPECT_EQ(cpu.stopReason(), core::StopReason::Halt);
    EXPECT_EQ(cpu.gpr(2), 50u * 51u / 2u);
    EXPECT_EQ(r.machine->readWord(AddressSpace::System, 0x4000), 1u);
    EXPECT_EQ(cpu.stats().interrupts, 1u);
}

TEST(Exceptions, NmiTakenWhileInterruptsMasked)
{
    const std::string src = std::string(kCountHandler) + R"(
        .text
_start: addi r1, r0, 30
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        nop
        nop
        halt
)";
    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn; // ie = 0
    PipelineRun r;
    r.prog = asmOrDie(src);
    r.machine = std::make_unique<sim::Machine>(cfg);
    r.machine->load(r.prog);
    auto &cpu = r.machine->cpu();
    cpu.reset(r.prog.entry);
    bool raised = false;
    while (!cpu.stopped()) {
        if (!raised && cpu.stats().cycles > 40) {
            cpu.raiseNmi();
            raised = true;
        }
        cpu.step();
    }
    EXPECT_EQ(cpu.stopReason(), core::StopReason::Halt);
    EXPECT_EQ(cpu.gpr(2), 30u * 31u / 2u);
    EXPECT_TRUE(cpu.psw().bits() | isa::psw_bits::cNmi);
    EXPECT_EQ(cpu.stats().interrupts, 1u);
}

TEST(Exceptions, InterruptStormOverSquashingLoopIsTransparent)
{
    // The hard case: interrupts land while squashed slot instructions
    // are in flight. The chain's squash flags must keep the squashed
    // slots dead across the restart (bit-31 convention, DESIGN.md).
    const std::string src = std::string(kCountHandler) + R"(
        .text
_start: addi r1, r0, 40
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne.sq r1, r0, loop   ; squashes on exit
        add  r2, r2, r1       ; slot from the taken path
        nop
        addi r2, r2, 1000     ; runs once after loop exit
        halt
)";
    // Expected: sum over i=40..1 of (i + (i-1)) except the last
    // iteration squashes its slots... compute via the sequential ISS
    // reference below instead of by hand.
    const auto prog_ref = asmOrDie(src);
    auto ref = runDelayed(prog_ref); // delayed ISS = architectural truth
    ASSERT_EQ(ref.reason, sim::IssStop::Halt);
    const word_t expected = ref.gpr(2);

    for (const unsigned period : {23u, 37u, 53u}) {
        sim::MachineConfig cfg;
        cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie;
        PipelineRun r;
        r.prog = asmOrDie(src);
        r.machine = std::make_unique<sim::Machine>(cfg);
        r.machine->load(r.prog);
        auto &cpu = r.machine->cpu();
        cpu.reset(r.prog.entry);
        cycle_t last = 0;
        while (!cpu.stopped()) {
            if (cpu.stats().cycles >= last + period) {
                cpu.raiseInterrupt();
                last = cpu.stats().cycles;
            }
            cpu.step();
        }
        EXPECT_EQ(cpu.stopReason(), core::StopReason::Halt)
            << "period " << period;
        EXPECT_EQ(cpu.gpr(2), expected) << "period " << period;
        EXPECT_GT(cpu.stats().interrupts, 3u) << "period " << period;
    }
}

TEST(Exceptions, PrivilegeViolationFromUserMode)
{
    auto r2 = runPipeline(R"(
        .systext 0
handler: movfrs r9, psw
        halt
        .text
_start: movtos psw, r1
        halt
)");
    EXPECT_EQ(r2.result.reason, core::StopReason::Halt);
    EXPECT_TRUE(r2.gpr(9) & isa::psw_bits::cPriv);
}

TEST(Exceptions, ChainHoldsThreePcsAtEntry)
{
    // Handler inspects the frozen chain: the three entries must be the
    // consecutive PCs of the killed MEM/ALU/RF instructions, with the
    // trap itself in the middle (ALU) slot.
    auto r = runPipeline(R"(
        .systext 0
handler: movfrs r9, pchain0
        movfrs r10, pchain1
        movfrs r11, pchain2
        halt
        .text
_start: nop
        nop
        trap 1
        nop
        nop
        halt
)");
    const addr_t trap_pc = r.prog.entry + 2;
    EXPECT_EQ(r.gpr(10), trap_pc);
    EXPECT_EQ(r.gpr(9), trap_pc - 1);
    EXPECT_EQ(r.gpr(11), trap_pc + 1);
}

TEST(Exceptions, DataPageFaultRestartsTheMemoryInstruction)
{
    // The paper: "All instructions are restartable so MIPS-X will
    // support a dynamic, paged virtual memory system." A fault arrives
    // on a load's MEM cycle; the kernel (a soft-TLB-miss handler)
    // counts it and restarts; the load re-executes and succeeds.
    const std::string src = std::string(kCountHandler) + R"(
        .text
_start: addi r1, r0, 11
        la   r2, target
        ld   r3, 0(r2)       ; faults once, then restarts
        nop                  ; load delay (hand-scheduled test code)
        addi r4, r3, 1
        halt
        .data
target: .word 777
)";
    sim::MachineConfig cfg;
    PipelineRun r;
    r.prog = asmOrDie(src);
    r.machine = std::make_unique<sim::Machine>(cfg);
    r.machine->load(r.prog);
    auto &cpu = r.machine->cpu();
    // Arm the fault on the target word.
    auto cc = cpu.config();
    (void)cc;
    // Configs are taken at construction; rebuild the machine with the
    // fault armed instead.
    sim::MachineConfig armed;
    armed.cpu.pageFaultArmed = true;
    armed.cpu.pageFaultSpace = AddressSpace::User;
    armed.cpu.pageFaultAddr = r.prog.symbol("target");
    r.machine = std::make_unique<sim::Machine>(armed);
    r.machine->load(r.prog);
    r.result = r.machine->run();

    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(3), 777u) << "the restarted load must succeed";
    EXPECT_EQ(r.gpr(4), 778u);
    EXPECT_EQ(r.word(0x4000, AddressSpace::System), 1u)
        << "exactly one fault serviced";
    EXPECT_EQ(r.stats().exceptions, 1u);
}

TEST(Exceptions, PageFaultOnStoreIsAlsoRestartable)
{
    const std::string src = std::string(kCountHandler) + R"(
        .text
_start: addi r1, r0, 55
        la   r2, slot
        st   r1, 0(r2)       ; faults once, restarts, then lands
        ld   r3, 0(r2)
        nop
        addi r4, r3, 1
        halt
        .data
slot:   .space 1
)";
    const auto prog = asmOrDie(src);
    sim::MachineConfig armed;
    armed.cpu.pageFaultArmed = true;
    armed.cpu.pageFaultAddr = prog.symbol("slot");
    auto r = runPipelineProg(prog, armed);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.word(prog.symbol("slot")), 55u);
    EXPECT_EQ(r.gpr(4), 56u);
    EXPECT_EQ(r.stats().exceptions, 1u);
    EXPECT_TRUE(r.machine->cpu().psw().bits() | isa::psw_bits::cPage);
}
