/**
 * @file
 * The scheduler semantic-preservation gate.
 *
 * 1000 fuzz-generated sequential-semantics programs; for each, every
 * scheduling backend (heuristic, list, optimal) must produce a program
 * that passes the delayed-ISS-vs-pipeline cosim AND reproduces the
 * sequential ISS's data memory exactly (the register/MD/FPU state is
 * made observable through the generator's store-dump epilogue). This
 * is the same check `mipsx-fuzz --sched-check` runs as its fourth leg.
 */

#include <gtest/gtest.h>

#include "fuzz/schedcheck.hh"
#include "fuzz/session.hh"

using namespace mipsx;
using namespace mipsx::fuzz;

TEST(SchedSemantics, ThousandProgramGateAllBackendsMatch)
{
    FuzzOptions opts;
    opts.seed = 7;
    opts.runs = 1000;
    opts.schedCheck = true;
    opts.reproDir.clear();
    const auto r = runFuzz(opts);
    for (const auto &d : r.divergences)
        ADD_FAILURE() << "divergence at run " << d.runIndex << ":\n"
                      << d.reproText;
    EXPECT_EQ(r.schedChecks, 1000u);
    EXPECT_EQ(r.schedMatches, 1000u);
    EXPECT_EQ(r.schedInconclusive, 0u);
}

TEST(SchedSemantics, DirectCheckIsDeterministic)
{
    const SchedCheckOptions opts;
    for (const std::uint64_t seed : {deriveSeed(3, 0), deriveSeed(3, 1),
                                     deriveSeed(3, 2)}) {
        const auto a = runSchedCheck(seed, opts);
        const auto b = runSchedCheck(seed, opts);
        EXPECT_EQ(a.outcome, CosimOutcome::Match);
        EXPECT_EQ(b.outcome, a.outcome);
        EXPECT_EQ(b.retires, a.retires);
        EXPECT_EQ(b.report, a.report);
        EXPECT_GT(a.retires, 0u);
    }
}

TEST(SchedSemantics, ResultIsIdenticalAcrossWorkerCounts)
{
    FuzzOptions opts;
    opts.seed = 9;
    opts.runs = 200;
    opts.schedCheck = true;
    opts.reproDir.clear();
    opts.jobs = 1;
    const auto serial = runFuzz(opts);
    opts.jobs = 4;
    const auto parallel = runFuzz(opts);
    EXPECT_EQ(serial.schedChecks, parallel.schedChecks);
    EXPECT_EQ(serial.schedMatches, parallel.schedMatches);
    EXPECT_EQ(serial.schedInconclusive, parallel.schedInconclusive);
    EXPECT_EQ(serial.retires, parallel.retires);
    ASSERT_EQ(serial.divergences.size(), parallel.divergences.size());
    for (std::size_t i = 0; i < serial.divergences.size(); ++i)
        EXPECT_EQ(serial.divergences[i].reproText,
                  parallel.divergences[i].reproText);
}

TEST(SchedSemantics, MisconfiguredSlotCountIsCaughtAndNamed)
{
    // Schedule for one delay slot but execute with two: the gate must
    // flag it (this is the planted-bug sanity check for the leg — a
    // check that cannot fail proves nothing).
    SchedCheckOptions opts;
    opts.reorg.slots = 1;
    unsigned caught = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto r = runSchedCheck(deriveSeed(11, i), opts);
        if (r.outcome != CosimOutcome::Divergence)
            continue;
        ++caught;
        EXPECT_NE(r.report.find("scheduler"), std::string::npos)
            << r.report;
        EXPECT_FALSE(r.reproText.empty());
    }
    EXPECT_GT(caught, 0u);
}
