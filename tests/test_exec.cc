/** @file Execution-semantics tests: ALU, funnel shifter, MD steps. */

#include <random>

#include <gtest/gtest.h>

#include "core/exec.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"

using namespace mipsx;
using namespace mipsx::core;
using namespace mipsx::isa;

namespace
{

Instruction
mk(ComputeOp op, unsigned aux = 0)
{
    return decode(encodeCompute(op, 1, 2, 3, aux));
}

word_t
run(ComputeOp op, word_t a, word_t b, unsigned aux = 0)
{
    return executeCompute(mk(op, aux), a, b, 0).value;
}

} // namespace

TEST(Alu, AddSubOverflowDetection)
{
    EXPECT_FALSE(addOverflow(1, 2).overflow);
    EXPECT_TRUE(addOverflow(0x7fffffffu, 1).overflow);
    EXPECT_TRUE(addOverflow(0x80000000u, 0x80000000u).overflow);
    EXPECT_FALSE(addOverflow(0x80000000u, 0x7fffffffu).overflow);

    EXPECT_FALSE(subOverflow(5, 3).overflow);
    EXPECT_TRUE(subOverflow(0x80000000u, 1).overflow);
    EXPECT_TRUE(subOverflow(0x7fffffffu, 0xffffffffu).overflow);
    EXPECT_FALSE(subOverflow(0, 0).overflow);
}

TEST(Alu, Logic)
{
    EXPECT_EQ(run(ComputeOp::And, 0xff00ff00u, 0x0ff00ff0u), 0x0f000f00u);
    EXPECT_EQ(run(ComputeOp::Or, 0xff00ff00u, 0x0ff00ff0u), 0xfff0fff0u);
    EXPECT_EQ(run(ComputeOp::Xor, 0xffffffffu, 0x0f0f0f0fu), 0xf0f0f0f0u);
    EXPECT_EQ(run(ComputeOp::Bic, 0xffffffffu, 0x0f0f0f0fu), 0xf0f0f0f0u);
}

TEST(FunnelShifter, ExtractsAcrossTheBoundary)
{
    EXPECT_EQ(funnelShift(0x12345678u, 0x9abcdef0u, 0), 0x9abcdef0u);
    EXPECT_EQ(funnelShift(0x12345678u, 0x9abcdef0u, 16), 0x56789abcu);
    EXPECT_EQ(funnelShift(0x12345678u, 0x9abcdef0u, 4), 0x89abcdefu);
}

TEST(FunnelShifter, ImplementsAllShifts)
{
    for (unsigned n = 0; n < 32; ++n) {
        const word_t v = 0x9abcdef1u;
        EXPECT_EQ(run(ComputeOp::Sll, v, 0, n), v << n) << n;
        EXPECT_EQ(run(ComputeOp::Srl, v, 0, n), v >> n) << n;
        EXPECT_EQ(run(ComputeOp::Sra, v, 0, n),
                  static_cast<word_t>(static_cast<sword_t>(v) >> n))
            << n;
    }
}

namespace
{

/** Multiply via 32 msteps, as the reorganized code sequence would. */
word_t
multiplyViaSteps(word_t a, word_t b)
{
    word_t md = a; // multiplier in MD
    word_t acc = 0;
    for (int i = 0; i < 32; ++i) {
        const auto r = mstep(acc, b, md);
        acc = r.value;
        md = r.md;
    }
    return acc;
}

/** Unsigned divide via 32 dsteps: returns {quotient, remainder}. */
std::pair<word_t, word_t>
divideViaSteps(word_t dividend, word_t divisor)
{
    word_t md = dividend;
    word_t acc = 0;
    for (int i = 0; i < 32; ++i) {
        const auto r = dstep(acc, divisor, md);
        acc = r.value;
        md = r.md;
    }
    return {md, acc};
}

} // namespace

TEST(MdSteps, MultiplyMatchesNative)
{
    EXPECT_EQ(multiplyViaSteps(0, 5), 0u);
    EXPECT_EQ(multiplyViaSteps(7, 6), 42u);
    EXPECT_EQ(multiplyViaSteps(0xffffffffu, 0xffffffffu), 1u);
    EXPECT_EQ(multiplyViaSteps(12345, 6789), 12345u * 6789u);
}

TEST(MdSteps, DivideMatchesNative)
{
    auto [q, r] = divideViaSteps(100, 7);
    EXPECT_EQ(q, 14u);
    EXPECT_EQ(r, 2u);
    std::tie(q, r) = divideViaSteps(0xffffffffu, 10);
    EXPECT_EQ(q, 0xffffffffu / 10);
    EXPECT_EQ(r, 0xffffffffu % 10);
}

TEST(MdSteps, DivideByZeroLeavesAllOnesQuotient)
{
    // d == 0 never subtracts, so the quotient bits stay 0 and the
    // remainder accumulates the dividend (defined, non-trapping).
    auto [q, r] = divideViaSteps(5, 0);
    EXPECT_EQ(q, 0u);
    EXPECT_EQ(r, 5u);
}

class MdStepProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(MdStepProperty, MultiplyAgreesWithHardwareMultiplier)
{
    std::mt19937 rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const word_t a = rng();
        const word_t b = rng();
        EXPECT_EQ(multiplyViaSteps(a, b), a * b) << a << " * " << b;
    }
}

TEST_P(MdStepProperty, DivideAgreesWithHardwareDivider)
{
    std::mt19937 rng(GetParam() + 1000);
    for (int i = 0; i < 2000; ++i) {
        const word_t a = rng();
        const word_t b = rng() % 65536 + 1;
        auto [q, r] = divideViaSteps(a, b);
        EXPECT_EQ(q, a / b);
        EXPECT_EQ(r, a % b);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdStepProperty,
                         ::testing::Values(11u, 22u, 33u));

TEST(BranchCond, AllConditions)
{
    EXPECT_TRUE(branchTaken(BranchCond::Eq, 5, 5));
    EXPECT_FALSE(branchTaken(BranchCond::Eq, 5, 6));
    EXPECT_TRUE(branchTaken(BranchCond::Ne, 5, 6));
    EXPECT_TRUE(branchTaken(BranchCond::Lt, 0xffffffffu, 0)); // -1 < 0
    EXPECT_FALSE(branchTaken(BranchCond::Lo, 0xffffffffu, 0)); // unsigned
    EXPECT_TRUE(branchTaken(BranchCond::Ge, 0, 0xffffffffu));
    EXPECT_TRUE(branchTaken(BranchCond::Hs, 0xffffffffu, 1));
    EXPECT_TRUE(branchTaken(BranchCond::T, 0, 1));
}
