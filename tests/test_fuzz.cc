/**
 * @file
 * The differential fuzzer's own test suite: generator validity (every
 * emitted program decodes, disassembles, encoder-round-trips and
 * terminates under the ISS within budget), clean cosim across the
 * machine-config points the nightly job sweeps, the planted-bug shrink
 * guarantee, and the session's bit-determinism across worker counts.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "explore/grid.hh"
#include "fuzz/cosim.hh"
#include "fuzz/generator.hh"
#include "fuzz/session.hh"
#include "fuzz/shrink.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"

using namespace mipsx;
using namespace mipsx::fuzz;

namespace
{

assembler::Program
genSeed(std::uint64_t seed, unsigned max_insns = 192)
{
    GeneratorConfig gc;
    gc.seed = seed;
    gc.maxInsns = max_insns;
    return generate(gc);
}

/** Cosim options with the planted branch-delay bug (1 vs the real 2). */
CosimOptions
plantedBug()
{
    CosimOptions co;
    co.issBranchDelayOverride = 1;
    return co;
}

/** First seed whose program diverges under @p co; dies after @p tries. */
std::uint64_t
firstDivergingSeed(const CosimOptions &co, std::uint64_t tries)
{
    for (std::uint64_t seed = 1; seed <= tries; ++seed) {
        if (runCosim(genSeed(seed), co).outcome ==
            CosimOutcome::Divergence) {
            return seed;
        }
    }
    ADD_FAILURE() << "no diverging seed in " << tries << " tries";
    return 0;
}

} // namespace

TEST(FuzzGenerator, EveryProgramDecodesDisassemblesAndRoundTrips)
{
    // The 1000-seed validity sweep from the issue: every emitted word
    // is a valid encoding, renders, and survives decode -> reencode.
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        const auto prog = genSeed(seed);
        ASSERT_GE(prog.sections.size(), 2u) << seed;
        for (const word_t w : prog.text().words) {
            const auto in = isa::decode(w);
            ASSERT_TRUE(in.valid)
                << strformat("seed %llu: word %08x",
                             (unsigned long long)seed, w);
            EXPECT_FALSE(isa::disassemble(in, 0, false).empty());
            EXPECT_EQ(isa::reencode(in), w)
                << strformat("seed %llu: word %08x",
                             (unsigned long long)seed, w);
        }
    }
}

TEST(FuzzGenerator, EveryProgramTerminatesUnderTheIssWithinBudget)
{
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        const auto prog = genSeed(seed);
        memory::MainMemory mem;
        sim::IssConfig cfg;
        cfg.mode = sim::IssMode::Delayed;
        cfg.maxSteps = 50'000;
        const auto r = sim::runIss(prog, mem, cfg);
        ASSERT_EQ(r.reason, sim::IssStop::Halt)
            << "seed " << seed << ": stop "
            << static_cast<int>(r.reason) << " after " << r.stats.steps
            << " steps";
    }
}

TEST(FuzzGenerator, DeterministicAndSeedSensitive)
{
    const auto a = genSeed(7);
    const auto b = genSeed(7);
    EXPECT_EQ(a.text().words, b.text().words);
    EXPECT_EQ(a.sections[1].words, b.sections[1].words);
    const auto c = genSeed(8);
    EXPECT_NE(a.text().words, c.text().words);
}

TEST(FuzzGenerator, WeightsParseFormatRoundTripAndValidate)
{
    const GenWeights def{};
    EXPECT_EQ(parseWeights(formatWeights(def)), def);
    const auto w = parseWeights("alu=1,smc=0,squash=25");
    EXPECT_EQ(w.alu, 1u);
    EXPECT_EQ(w.smc, 0u);
    EXPECT_EQ(w.squash, 25u);
    EXPECT_EQ(w.mem, def.mem); // unmentioned keys keep defaults
    EXPECT_THROW(parseWeights("bogus=3"), SimError);
    EXPECT_THROW(parseWeights("alu"), SimError);
    EXPECT_THROW(parseWeights("alu=x"), SimError);
    EXPECT_THROW(parseWeights("squash=200"), SimError);

    // Disabled classes stay disabled: no branches or loops means no
    // Branch-format words at all.
    GeneratorConfig gc;
    gc.seed = 3;
    gc.weights = parseWeights("branch=0,loop=0,jump=0,smc=0");
    const auto prog = generate(gc);
    for (const word_t w : prog.text().words)
        EXPECT_NE(isa::decode(w).fmt, isa::Format::Branch);
}

TEST(FuzzGenerator, DerivedSeedsAreOrderFreeAndDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(deriveSeed(99, i));
    EXPECT_EQ(seen.size(), 1000u);
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
}

TEST(FuzzCosim, CleanOnTheNightlyConfigPoints)
{
    // The three machine points the nightly fuzz job sweeps: the design
    // point, one delay slot without squash, and a direct-mapped icache.
    struct Point
    {
        const char *param;
        const char *value;
    };
    const std::vector<std::vector<Point>> points = {
        {},
        {{"branch.slots", "1"}},
        {{"icache.geometry", "32x1x16"}},
    };
    for (std::size_t p = 0; p < points.size(); ++p) {
        workload::SuiteRunOptions sro;
        for (const auto &kv : points[p])
            explore::applyParam(sro, kv.param, kv.value);
        CosimOptions co;
        co.machine = sro.machine;
        co.predecode = sro.predecode;
        for (std::uint64_t seed = 1; seed <= 60; ++seed) {
            const auto res = runCosim(genSeed(seed), co);
            ASSERT_EQ(res.outcome, CosimOutcome::Match)
                << "point " << p << " seed " << seed << ":\n"
                << res.report;
            EXPECT_GT(res.retires, 40u);
        }
    }
}

TEST(FuzzCosim, PlantedBranchDelayBugIsDetectedAndReported)
{
    const auto co = plantedBug();
    const auto seed = firstDivergingSeed(co, 20);
    ASSERT_NE(seed, 0u);
    const auto res = runCosim(genSeed(seed), co);
    ASSERT_EQ(res.outcome, CosimOutcome::Divergence);
    // The report names both sides' instructions like the cosim test's.
    EXPECT_NE(res.report.find("iss      :"), std::string::npos);
    EXPECT_NE(res.report.find("pipeline :"), std::string::npos);
}

TEST(FuzzShrink, PlantedBugShrinksToAtMostEightInstructions)
{
    ShrinkOptions so;
    so.cosim = plantedBug();
    const auto seed = firstDivergingSeed(so.cosim, 20);
    ASSERT_NE(seed, 0u);
    const auto prog = genSeed(seed);
    const auto before = nonNopTextWords(prog);
    const auto res = shrink(prog, so);
    EXPECT_GT(res.iterations, 1u);
    EXPECT_LT(res.kept, before);
    EXPECT_LE(res.kept, 8u) << res.kept << " instructions survived";
    // The reproducer still diverges, and a fresh cosim agrees.
    EXPECT_EQ(res.divergence.outcome, CosimOutcome::Divergence);
    EXPECT_EQ(runCosim(res.program, so.cosim).outcome,
              CosimOutcome::Divergence);
    // Addresses were preserved: same text length, words nop'd in place.
    EXPECT_EQ(res.program.text().words.size(), prog.text().words.size());
}

TEST(FuzzShrink, RefusesAPassingProgram)
{
    ShrinkOptions so;
    EXPECT_THROW(shrink(genSeed(1), so), SimError);
}

TEST(FuzzSession, BitDeterministicAcrossWorkerCounts)
{
    // With the planted bug the session finds real divergences; the
    // result — counts, order, and every .repro byte — must not depend
    // on the worker count (the acceptance criterion behind
    // MIPSX_BENCH_JOBS independence).
    FuzzOptions base;
    base.seed = 5;
    base.runs = 24;
    base.maxInsns = 96;
    base.cosim = plantedBug();
    base.shrinkMaxAttempts = 800;

    auto a = base;
    a.jobs = 1;
    auto b = base;
    b.jobs = 7;
    const auto ra = runFuzz(a);
    const auto rb = runFuzz(b);

    EXPECT_GT(ra.divergences.size(), 0u);
    ASSERT_EQ(ra.divergences.size(), rb.divergences.size());
    EXPECT_EQ(ra.matches, rb.matches);
    EXPECT_EQ(ra.inconclusive, rb.inconclusive);
    EXPECT_EQ(ra.retires, rb.retires);
    EXPECT_EQ(ra.shrinkIterations, rb.shrinkIterations);
    for (std::size_t i = 0; i < ra.divergences.size(); ++i) {
        EXPECT_EQ(ra.divergences[i].runIndex, rb.divergences[i].runIndex);
        EXPECT_EQ(ra.divergences[i].runSeed, rb.divergences[i].runSeed);
        ASSERT_EQ(ra.divergences[i].reproText,
                  rb.divergences[i].reproText)
            << "divergence " << i;
    }

    // The .repro format carries the seed, the mix and the disassembly.
    const auto &text = ra.divergences[0].reproText;
    EXPECT_NE(text.find("# session-seed: 5"), std::string::npos);
    EXPECT_NE(text.find("# run-seed: 0x"), std::string::npos);
    EXPECT_NE(text.find("# weights: "), std::string::npos);
    EXPECT_NE(text.find("# divergence:"), std::string::npos);
    EXPECT_NE(text.find("trap"), std::string::npos); // the final halt

    // And the metrics surface through the registry under "fuzz.".
    trace::MetricsRegistry m;
    ra.collectMetrics(m);
    EXPECT_EQ(m.get("fuzz.programs"), 24.0);
    EXPECT_EQ(m.get("fuzz.divergences"),
              static_cast<double>(ra.divergences.size()));
    EXPECT_GT(m.get("fuzz.shrink_iterations"), 0.0);
}

TEST(FuzzSession, ReproFilesLandOnDiskWithTheReportedBytes)
{
    FuzzOptions opts;
    opts.seed = 5;
    opts.runs = 6;
    opts.maxInsns = 96;
    opts.cosim = plantedBug();
    opts.shrinkMaxAttempts = 400;
    opts.reproDir = ::testing::TempDir();
    const auto r = runFuzz(opts);
    ASSERT_GT(r.divergences.size(), 0u);
    for (const auto &d : r.divergences) {
        ASSERT_FALSE(d.reproPath.empty());
        std::ifstream in(d.reproPath, std::ios::binary);
        ASSERT_TRUE(in.good()) << d.reproPath;
        std::ostringstream bytes;
        bytes << in.rdbuf();
        EXPECT_EQ(bytes.str(), d.reproText) << d.reproPath;
        std::remove(d.reproPath.c_str());
    }
}

TEST(FuzzSession, CleanSessionReportsNoDivergences)
{
    FuzzOptions opts;
    opts.seed = 11;
    opts.runs = 50;
    const auto r = runFuzz(opts);
    EXPECT_EQ(r.programs, 50u);
    EXPECT_EQ(r.matches, 50u);
    EXPECT_TRUE(r.divergences.empty());
    EXPECT_EQ(r.inconclusive, 0u);
    EXPECT_GT(r.retires, 1000u);
}

TEST(FuzzGenerator, SelfModifyingStoresActuallyFire)
{
    // At least some seeds must exercise the predecode-invalidation
    // path: running with predecode on vs off must agree (it does, per
    // the cosim tests) *and* the generated text must contain stores
    // through the text base register. Structural check: some program
    // in the first 50 seeds stores with base r27.
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 50 && !found; ++seed) {
        const auto prog = genSeed(seed);
        for (const word_t w : prog.text().words) {
            const auto in = isa::decode(w);
            if (in.fmt == isa::Format::Mem &&
                in.memOp == isa::MemOp::St && in.rs1 == 27) {
                found = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found) << "no SMC store in 50 seeds";
}
