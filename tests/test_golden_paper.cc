/**
 * @file
 * Golden reproduction of the paper's tradeoff tables through the
 * design-space exploration engine.
 *
 * Two layers of assertion:
 *
 *  1. *Ordering* — the qualitative claims of the paper (squashing beats
 *     no-squash, optional squashing beats always-squash, one delay slot
 *     beats two, the double fetch almost halves the miss ratio) must
 *     hold exactly. These never have tolerances.
 *
 *  2. *Values* — each cell is pinned to the value this simulator
 *     produced when the studies were first brought up, with a small
 *     tolerance for intentional workload/toolchain evolution. A failure
 *     here means the performance model changed; either fix the
 *     regression or re-baseline deliberately and note it in CHANGES.md.
 *
 * The sweeps are exactly the grids the benches and EXPERIMENTS.md
 * describe, so these tests also pin the engine end to end: grid
 * expansion, parameter application, the deterministic suite runner and
 * the aggregate arithmetic.
 */

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "explore/explore.hh"

using namespace mipsx;
using namespace mipsx::explore;

namespace
{

const workload::SuiteStats &
statsAt(const SweepResult &r,
        const std::vector<std::pair<std::string, std::string>> &bindings)
{
    const auto *p = r.find(bindings);
    if (!p)
        throw SimError("golden test: grid point missing");
    EXPECT_EQ(p->stats.failures, 0u);
    return p->stats;
}

/** The Table 1 sweep: slots x scheme x profiling over the full suite. */
const SweepResult &
table1Sweep()
{
    static const SweepResult r = [] {
        SweepConfig cfg;
        cfg.suite = "full";
        // always-squash needs both squash directions (the paper's
        // scheme), which the paper-faithful reorganizer restriction
        // disables.
        cfg.base = {{"reorg.paperFaithful", "0"}};
        cfg.grid.axes = {
            {"branch.slots", {"2", "1"}},
            {"branch.scheme",
             {"no-squash", "always-squash", "squash-optional"}},
            {"branch.profile", {"0", "1"}},
        };
        return runSweep(cfg);
    }();
    return r;
}

double
cyclesPerBranch(const char *slots, const char *scheme, const char *prof)
{
    return statsAt(table1Sweep(), {{"branch.slots", slots},
                                   {"branch.scheme", scheme},
                                   {"branch.profile", prof}})
        .cyclesPerBranch();
}

/** The double-fetch sweep over the large-code programs. */
const SweepResult &
doubleFetchSweep()
{
    static const SweepResult r = [] {
        SweepConfig cfg;
        cfg.suite = "big-code";
        cfg.grid.axes = {{"icache.fetchWords", {"1", "2"}}};
        return runSweep(cfg);
    }();
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Table 1: "Average Cycles per Branch Instruction for Various Branch
// Schemes" (paper: 2.0 / 1.5 / 1.3 with two delay slots, 1.4 / 1.3 /
// 1.1 with one, static prediction).

TEST(GoldenTable1, SchemeOrdering)
{
    for (const char *slots : {"2", "1"}) {
        for (const char *prof : {"0", "1"}) {
            const double ns = cyclesPerBranch(slots, "no-squash", prof);
            const double as =
                cyclesPerBranch(slots, "always-squash", prof);
            const double so =
                cyclesPerBranch(slots, "squash-optional", prof);
            // Squashing beats no-squash; making the squash optional
            // (the MIPS-X design) beats squashing every branch.
            EXPECT_LT(as, ns) << slots << "-slot, profile=" << prof;
            EXPECT_LT(so, as) << slots << "-slot, profile=" << prof;
        }
    }
}

TEST(GoldenTable1, OneSlotBeatsTwo)
{
    // The paper's Table 1 column comparison: fewer delay slots cost
    // fewer cycles per branch under every scheme (the 2-slot pipeline
    // was chosen for cycle-time reasons, not branch cost).
    for (const char *scheme :
         {"no-squash", "always-squash", "squash-optional"}) {
        for (const char *prof : {"0", "1"}) {
            EXPECT_LT(cyclesPerBranch("1", scheme, prof),
                      cyclesPerBranch("2", scheme, prof))
                << scheme << ", profile=" << prof;
        }
    }
}

TEST(GoldenTable1, ProfilingHelpsSquashSchemes)
{
    // Profiled prediction can only improve slot filling for the
    // squashing schemes; no-squash does not predict, so it is
    // essentially unchanged.
    EXPECT_LT(cyclesPerBranch("2", "always-squash", "1"),
              cyclesPerBranch("2", "always-squash", "0"));
    EXPECT_LT(cyclesPerBranch("2", "squash-optional", "1"),
              cyclesPerBranch("2", "squash-optional", "0"));
    EXPECT_NEAR(cyclesPerBranch("2", "no-squash", "1"),
                cyclesPerBranch("2", "no-squash", "0"), 0.01);
}

TEST(GoldenTable1, PinnedValues)
{
    // Golden values measured from this simulator's workload suite
    // (paper's Table 1 in parentheses). The simulator tracks the
    // paper's ordering and spacing, not its absolute numbers — its
    // benchmark set is long gone.
    const struct
    {
        const char *slots, *scheme, *prof;
        double golden;
    } rows[] = {
        {"2", "no-squash", "0", 2.404},       // (2.0)
        {"2", "always-squash", "0", 2.026},   // (1.5)
        {"2", "squash-optional", "0", 1.954}, // (1.3)
        {"1", "no-squash", "0", 1.613},       // (1.4)
        {"1", "always-squash", "0", 1.395},   // (1.3)
        {"1", "squash-optional", "0", 1.365}, // (1.1)
        // Profiled squash-optional is the paper's refined 1.27 result.
        {"2", "squash-optional", "1", 1.798},
        {"1", "squash-optional", "1", 1.294},
    };
    for (const auto &row : rows)
        EXPECT_NEAR(cyclesPerBranch(row.slots, row.scheme, row.prof),
                    row.golden, 0.05)
            << row.slots << "-slot " << row.scheme
            << " profile=" << row.prof;
}

// ---------------------------------------------------------------------
// The instruction cache headline numbers ("The Instruction Cache"):
// one-word fetch-back misses "over 20%"; fetching back two words
// "almost halves the miss ratio"; the final design sees a 12% miss
// rate and an average instruction fetch of 1.24 cycles.

TEST(GoldenICache, SingleFetchMissesOverTwentyPercent)
{
    const auto &one =
        statsAt(doubleFetchSweep(), {{"icache.fetchWords", "1"}});
    EXPECT_GT(one.icacheMissRatio(), 0.20);
    EXPECT_NEAR(one.icacheMissRatio(), 0.238, 0.03); // measured golden
}

TEST(GoldenICache, DoubleFetchAlmostHalvesTheMissRatio)
{
    const auto &one =
        statsAt(doubleFetchSweep(), {{"icache.fetchWords", "1"}});
    const auto &two =
        statsAt(doubleFetchSweep(), {{"icache.fetchWords", "2"}});
    EXPECT_LT(two.icacheMissRatio(), 0.65 * one.icacheMissRatio());
}

TEST(GoldenICache, DesignPointHeadlineNumbers)
{
    // The shipped geometry (4 sets x 8 ways x 16-word blocks, 2-cycle
    // miss, double fetch) on the large-code programs. Paper: "a miss
    // rate of 12%" and "an average instruction fetch takes 1.24
    // cycles"; this workload suite measures 12.5% and 1.249.
    const auto &design =
        statsAt(doubleFetchSweep(), {{"icache.fetchWords", "2"}});
    EXPECT_NEAR(design.icacheMissRatio(), 0.12, 0.02);
    EXPECT_NEAR(design.avgFetchCost(), 1.24, 0.03);
}

TEST(GoldenICache, TwoCycleMissBeatsSmallBlocksAtThreeCycles)
{
    // The paper's service-time argument: tags in the datapath force
    // 16-word blocks but buy a 2-cycle miss; small blocks with the tag
    // store out of the datapath (3-cycle miss) lose despite their
    // lower miss ratio.
    SweepConfig cfg;
    cfg.suite = "big-code";
    cfg.grid.axes = {{"icache.geometry", {"16x8x4", "4x8x16"}},
                     {"icache.missPenalty", {"2", "3"}}};
    const auto r = runSweep(cfg);
    const auto &design = statsAt(r, {{"icache.geometry", "4x8x16"},
                                     {"icache.missPenalty", "2"}});
    const auto &farTags = statsAt(r, {{"icache.geometry", "16x8x4"},
                                      {"icache.missPenalty", "3"}});
    // The block sizes are nearly tied on miss ratio (the sub-block
    // scheme fills word by word, so block size barely changes what is
    // resident; this suite measures 12.5% vs 13.5%, the small blocks
    // in fact slightly *worse* because the second fetched-back word
    // crosses a small block's boundary more often and is dropped)...
    EXPECT_NEAR(farTags.icacheMissRatio(), design.icacheMissRatio(),
                0.02);
    // ...so the extra miss cycle decides it, by a wide margin
    // (measured 1.249 vs 1.405 cycles per fetch).
    EXPECT_LT(design.avgFetchCost() + 0.1, farTags.avgFetchCost());
}

// ---------------------------------------------------------------------
// Scheduler-quality goldens. Table 1 above is pinned under the default
// (heuristic) backend — the DAG refactor must not move those cells at
// all — and each scheduling backend gets its own pinned slot-fill /
// no-op-fraction goldens here.

#include "assembler/assembler.hh"
#include "workload/workload.hh"

namespace
{

const SweepResult &
schedulerSweep()
{
    static const SweepResult r = [] {
        SweepConfig cfg;
        cfg.suite = "full";
        cfg.grid.axes = {
            {"reorg.scheduler", {"heuristic", "list", "optimal"}}};
        return runSweep(cfg);
    }();
    return r;
}

/** Aggregate static reorganizer stats over the workload suite. */
reorg::ReorgStats
staticStatsFor(reorg::SchedulerKind kind)
{
    reorg::ReorgConfig rc;
    rc.scheduler = kind;
    reorg::ReorgStats agg;
    for (const auto &w : workload::fullSuite()) {
        const auto p = assembler::assemble(w.source, w.name);
        reorg::ReorgStats st;
        reorg::reorganize(p, rc, &st);
        agg.slotsTotal += st.slotsTotal;
        agg.slotsNop += st.slotsNop;
        agg.loadHazards += st.loadHazards;
        agg.loadNops += st.loadNops;
        agg.dagBlocks += st.dagBlocks;
        agg.dagOptimalExact += st.dagOptimalExact;
        agg.dagOptimalFallback += st.dagOptimalFallback;
    }
    return agg;
}

} // namespace

TEST(GoldenScheduler, HeuristicAxisPointEqualsTheDefaultSweep)
{
    // Behavior preservation, exactly: selecting the heuristic backend
    // through the explore axis must reproduce the default full-suite
    // run bit for bit (every counter, not just the headline numbers).
    SweepConfig cfg;
    cfg.suite = "full";
    const auto base = runSweep(cfg);
    const auto &def = statsAt(base, {});
    const auto &h =
        statsAt(schedulerSweep(), {{"reorg.scheduler", "heuristic"}});
    EXPECT_EQ(h, def);
}

TEST(GoldenScheduler, PinnedDynamicNoopFractions)
{
    const struct
    {
        const char *sched;
        double golden;
    } rows[] = {
        {"heuristic", 0.1346},
        {"list", 0.1345},
        {"optimal", 0.1345},
    };
    for (const auto &row : rows) {
        const auto &s =
            statsAt(schedulerSweep(), {{"reorg.scheduler", row.sched}});
        EXPECT_NEAR(s.noopFraction(), row.golden, 0.01) << row.sched;
    }
}

TEST(GoldenScheduler, PinnedStaticSlotFillAndLoadNops)
{
    // Static scheduling is deterministic, so these pins are exact.
    // Branch-slot filling is shared by every backend (same slotsNop);
    // the backends differ in the load no-ops their body schedules
    // leave behind, and the oracle-backed backend must be the floor.
    const struct
    {
        reorg::SchedulerKind kind;
        std::uint64_t slotsNop;
        std::uint64_t loadNops;
    } rows[] = {
        {reorg::SchedulerKind::Heuristic, 209, 47},
        {reorg::SchedulerKind::List, 209, 46},
        {reorg::SchedulerKind::Optimal, 209, 46},
    };
    std::uint64_t optimalNops = 0, heuristicNops = 0, listNops = 0;
    for (const auto &row : rows) {
        const auto st = staticStatsFor(row.kind);
        EXPECT_EQ(st.slotsNop, row.slotsNop)
            << reorg::schedulerKindName(row.kind);
        EXPECT_EQ(st.loadNops, row.loadNops)
            << reorg::schedulerKindName(row.kind);
        EXPECT_GT(st.slotFillRatio(), 0.0);
        if (row.kind == reorg::SchedulerKind::Heuristic) {
            EXPECT_EQ(st.dagBlocks, 0u);
            heuristicNops = st.loadNops;
        } else {
            EXPECT_GT(st.dagBlocks, 0u);
            if (row.kind == reorg::SchedulerKind::Optimal) {
                EXPECT_GT(st.dagOptimalExact, 0u);
                optimalNops = st.loadNops;
            } else {
                listNops = st.loadNops;
            }
        }
    }
    // The suite's blocks are nearly all within the oracle's exhaustive
    // range, so the optimal backend cannot emit more load no-ops than
    // either rival.
    EXPECT_LE(optimalNops, heuristicNops);
    EXPECT_LE(optimalNops, listNops);
}
