/**
 * @file
 * Code reorganizer tests: CFG construction, slot filling per scheme,
 * load-delay scheduling, and the central correctness property —
 * Sequential(P) == Delayed(reorganize(P)) == Pipeline(reorganize(P)).
 */

#include <random>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "reorg/cfg.hh"
#include "isa/decode.hh"
#include "reorg/predictor.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::test;
using namespace mipsx::reorg;
using assembler::SlotKind;

namespace
{

std::vector<addr_t>
textSymbols(const assembler::Program &p)
{
    std::vector<addr_t> out;
    const auto &t = p.text();
    for (const auto &[name, addr] : p.symbols)
        if (addr >= t.base && addr < t.end())
            out.push_back(addr);
    return out;
}

} // namespace

TEST(Cfg, SplitsAtBranchesAndTargets)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 1
        addi r2, r0, 2
loop:   add  r3, r1, r2
        bne  r3, r0, loop
        addi r4, r0, 4
        halt
)");
    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    // Blocks: [addi,addi] [add,bne] [addi] [halt]... halt is a trap
    // terminator ending its block.
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[0].body.size(), 2u);
    EXPECT_FALSE(cfg.blocks()[0].hasTerm());
    EXPECT_EQ(cfg.blocks()[1].body.size(), 1u);
    ASSERT_TRUE(cfg.blocks()[1].hasTerm());
    EXPECT_EQ(cfg.blocks()[1].targetBlock, 1);
    EXPECT_EQ(cfg.blocks()[1].fallBlock, 2);
    ASSERT_TRUE(cfg.blocks()[2].hasTerm());
    EXPECT_TRUE(cfg.blocks()[2].term->inst.isTrap());
}

TEST(Cfg, PredecessorCounts)
{
    const auto p = asmOrDie(R"(
_start: bz  r1, over
        addi r2, r0, 1
over:   halt
)");
    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[0].preds, ~0u);   // entry
    EXPECT_EQ(cfg.blocks()[1].preds, 1u);    // fall only
    EXPECT_EQ(cfg.blocks()[2].preds, ~0u);   // labelled
}

TEST(Cfg, EmitRoundTripsUnmodifiedCode)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 10
l:      addi r1, r1, -1
        bnz  r1, l
        halt
)");
    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    auto sec = cfg.emit(p.text(), p.text().base, nullptr);
    ASSERT_EQ(sec.words.size(), p.text().words.size());
    for (std::size_t i = 0; i < sec.words.size(); ++i)
        EXPECT_EQ(sec.words[i], p.text().words[i]) << i;
}

TEST(Reorg, InsertsNopsAfterBranchesWhenNothingFits)
{
    // The branch's operands are produced immediately before it and the
    // target head consumes them, so nothing can hoist or fill; both
    // slots become no-ops.
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 1
        bz   r1, out
        addi r1, r1, 2
out:    add  r2, r1, r1
        halt
)");
    ReorgConfig cfg;
    cfg.scheme = BranchScheme::NoSquash;
    ReorgStats st;
    const auto q = reorganize(p, cfg, &st);
    // bz reads r1 defined by the addi directly above: no hoist. The
    // scheduler may still place the target's head (add r2,r1,r1) in a
    // slot because r2 is dead on the fall path ("no effect if the
    // branch goes the wrong way"), so at least one slot is a no-op.
    EXPECT_GE(st.slotsNop, 1u);
    EXPECT_LE(st.slotsNop, 2u);
    auto r = runDelayed(q);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(2), 6u); // 1+2 doubled
}

TEST(Reorg, HoistsIndependentWork)
{
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 1
        addi r5, r0, 50    ; independent of the branch
        addi r6, r0, 60    ; independent of the branch
        bz   r1, out
        addi r7, r0, 70
out:    halt
)");
    ReorgConfig cfg;
    cfg.scheme = BranchScheme::NoSquash;
    ReorgStats st;
    const auto q = reorganize(p, cfg, &st);
    EXPECT_EQ(st.slotsHoisted, 2u);
    EXPECT_EQ(st.slotsNop, 0u);
    auto r = runDelayed(q);
    EXPECT_EQ(r.gpr(5), 50u);
    EXPECT_EQ(r.gpr(6), 60u);
    EXPECT_EQ(r.gpr(7), 70u); // branch not taken (r1 == 1)
}

TEST(Reorg, FillsFromTargetWithSquash)
{
    // A backward loop branch: squash-optional fills from the target
    // (the loop head) and marks the branch squash-if-not-taken.
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 5
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bnz  r1, loop
        halt
)");
    ReorgConfig cfg;
    cfg.scheme = BranchScheme::SquashOptional;
    ReorgStats st;
    const auto q = reorganize(p, cfg, &st);
    EXPECT_GT(st.slotsFromTarget, 0u);
    // Either the squashing fill or the (equally scored) no-squash
    // wrong-path fill may win the tie; both draw from the target.
    EXPECT_GT(st.chosenSquashNotTaken + st.chosenNoSquash, 0u);
    auto r = runDelayed(q);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(2), 15u);

    // And on the pipeline, with exact squash accounting.
    auto pr = runPipelineProg(q);
    EXPECT_EQ(pr.result.reason, core::StopReason::Halt);
    EXPECT_EQ(pr.gpr(2), 15u);
    EXPECT_EQ(pr.stats().hazardViolations, 0u);
}

TEST(Reorg, LoadDelayFilledByReordering)
{
    const auto p = asmOrDie(R"(
        .data
v:      .word 11
w:      .word 22
        .text
_start: ld   r1, v
        add  r2, r1, r1     ; hazard: reads r1 right after the load
        addi r3, r0, 3      ; independent; should move into the shadow
        halt
)");
    ReorgStats st;
    const auto q = reorganize(p, {}, &st);
    EXPECT_EQ(st.loadHazards, 1u);
    EXPECT_EQ(st.loadReordered, 1u);
    EXPECT_EQ(st.loadNops, 0u);
    auto r = runDelayed(q);
    EXPECT_EQ(r.gpr(2), 22u);
    EXPECT_EQ(r.gpr(3), 3u);
}

TEST(Reorg, LoadDelayFilledByNop)
{
    const auto p = asmOrDie(R"(
        .data
v:      .word 11
        .text
_start: ld   r1, v
        add  r2, r1, r1
        halt
)");
    ReorgStats st;
    const auto q = reorganize(p, {}, &st);
    EXPECT_EQ(st.loadNops, 1u);
    auto r = runDelayed(q);
    EXPECT_EQ(r.gpr(2), 22u);

    auto pr = runPipelineProg(q);
    EXPECT_EQ(pr.gpr(2), 22u);
    EXPECT_EQ(pr.stats().hazardViolations, 0u);
    EXPECT_EQ(pr.stats().nopsForLoadDelay, 1u);
}

TEST(Reorg, LoadFeedingBranchGetsSlot)
{
    const auto p = asmOrDie(R"(
        .data
v:      .word 1
res:    .word 123
        .text
_start: ld   r1, v
        bnz  r1, out
        addi r2, r0, 2
        st   r2, res
out:    halt
)");
    const auto q = reorganize(p, {}, nullptr);
    auto r = runDelayed(q);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.word(p.symbol("res")), 123u); // taken: store skipped
}

TEST(Reorg, SymbolsAndEntryRemapped)
{
    const auto p = asmOrDie(R"(
        .data
v:      .word 1
        .text
        nop
_start: addi r1, r0, 7
        bz   r0, fin
        addi r1, r1, 1
fin:    halt
)");
    const auto q = reorganize(p, {}, nullptr);
    // _start must still point at the addi instruction.
    const auto &sec = q.text();
    const word_t w = sec.words[q.symbol("_start") - sec.base];
    EXPECT_EQ(isa::decode(w).imm, 7);
    EXPECT_EQ(q.entry, q.symbol("_start"));
    // Data symbols unchanged.
    EXPECT_EQ(q.symbol("v"), p.symbol("v"));
}

TEST(Reorg, TrapTerminatorsGetNoSlots)
{
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 1
        halt
)");
    const auto q = reorganize(p, {}, nullptr);
    EXPECT_EQ(q.text().words.size(), 2u);
}

TEST(Reorg, VerifyScheduleCleanAcrossSchemes)
{
    const auto p = asmOrDie(R"(
        .data
a:      .word 5, 4, 3, 2, 1
s:      .space 1
        .text
_start: la   r10, a
        addi r1, r0, 5
        addi r2, r0, 0
loop:   ld   r3, 0(r10)
        add  r2, r2, r3
        addi r10, r10, 1
        addi r1, r1, -1
        bnz  r1, loop
        st   r2, s
        halt
)");
    for (const auto scheme :
         {BranchScheme::NoSquash, BranchScheme::AlwaysSquash,
          BranchScheme::SquashOptional}) {
        for (const unsigned slots : {1u, 2u}) {
            ReorgConfig cfg;
            cfg.scheme = scheme;
            cfg.slots = slots;
            cfg.paperFaithful = false;
            const auto q = reorganize(p, cfg, nullptr);
            Cfg check = Cfg::build(q.text(), textSymbols(q));
            // The emitted code is already scheduled; rebuilt CFG has
            // slot instructions inside the blocks, so only run the
            // functional equivalence here.
            (void)check;
            auto r = runDelayed(q, slots);
            EXPECT_EQ(r.reason, sim::IssStop::Halt)
                << branchSchemeName(scheme) << "/" << slots;
            EXPECT_EQ(r.word(q.symbol("s")), 15u)
                << branchSchemeName(scheme) << "/" << slots;
        }
    }
}

// ---------------------------------------------------------------------
// The central equivalence property, on randomized programs.
// ---------------------------------------------------------------------

namespace
{

/** Generate a random but terminating sequential program. */
std::string
randomProgram(std::mt19937 &rng)
{
    auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };
    auto reg = [&]() { return 2 + pick(10); }; // r2..r11

    std::string s = "        .data\narr:    .space 80\n        .text\n";
    s += "_start: li r1, 60\n";
    s += "        la r20, arr\n";

    auto body = [&](int len) {
        std::string b;
        for (int i = 0; i < len; ++i) {
            switch (pick(8)) {
              case 0:
                b += strformat("        add r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
              case 1:
                b += strformat("        sub r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
              case 2:
                b += strformat("        xor r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
              case 3:
                b += strformat("        addi r%d, r%d, %d\n", reg(),
                               reg(), pick(100) - 50);
                break;
              case 4:
                b += strformat("        sll r%d, r%d, %d\n", reg(),
                               reg(), pick(5));
                break;
              case 5:
                b += strformat("        ld r%d, %d(r20)\n", reg(),
                               pick(64));
                break;
              case 6:
                b += strformat("        st r%d, %d(r20)\n", reg(),
                               pick(64));
                break;
              case 7:
                b += strformat("        and r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
            }
        }
        return b;
    };

    s += "loop:\n";
    s += body(3 + pick(5));
    static const char *conds[] = {"beq", "bne", "blt", "bge"};
    s += strformat("        %s r%d, r%d, skip%s\n", conds[pick(4)], reg(),
                   reg(), "1");
    s += body(2 + pick(4));
    s += "skip1:\n";
    s += body(2 + pick(4));
    s += strformat("        %s r%d, r%d, skip2\n", conds[pick(4)], reg(),
                   reg());
    s += body(1 + pick(3));
    s += "skip2:\n";
    s += "        addi r1, r1, -1\n";
    s += "        bnz r1, loop\n";
    s += body(2 + pick(3));
    // Dump every working register: this makes them live at program
    // exit, so the scheduler's wrong-path fills may not clobber them
    // (dead registers are legitimately allowed to differ).
    for (int r = 2; r <= 11; ++r)
        s += strformat("        st r%d, %d(r20)\n", r, 64 + r);
    s += "        halt\n";
    return s;
}

} // namespace

class ReorgEquivalence : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ReorgEquivalence, SequentialEqualsReorganizedOnAllMachines)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 6; ++trial) {
        const std::string src = randomProgram(rng);
        const auto p = asmOrDie(src);

        auto seq = runSequential(p);
        ASSERT_EQ(seq.reason, sim::IssStop::Halt) << src;

        for (const auto scheme :
             {BranchScheme::NoSquash, BranchScheme::AlwaysSquash,
              BranchScheme::SquashOptional}) {
            for (const unsigned slots : {1u, 2u}) {
                ReorgConfig cfg;
                cfg.scheme = scheme;
                cfg.slots = slots;
                cfg.paperFaithful = false;
                const auto q = reorganize(p, cfg, nullptr);

                // Delayed-semantics ISS.
                auto del = runDelayed(q, slots);
                ASSERT_EQ(del.reason, sim::IssStop::Halt);
                for (unsigned r = 2; r <= 11; ++r) {
                    ASSERT_EQ(del.word(p.symbol("arr") + 64 + r),
                              seq.word(p.symbol("arr") + 64 + r))
                        << "iss r" << r << " scheme "
                        << branchSchemeName(scheme) << " slots " << slots
                        << "\n" << src;
                }
                for (addr_t a = 0; a < 64; ++a) {
                    ASSERT_EQ(del.word(p.symbol("arr") + a),
                              seq.word(p.symbol("arr") + a))
                        << "mem+" << a;
                }

                // Cycle-accurate pipeline.
                sim::MachineConfig mc;
                mc.cpu.branchDelay = slots;
                auto pipe = runPipelineProg(q, mc);
                ASSERT_EQ(pipe.result.reason, core::StopReason::Halt);
                EXPECT_EQ(pipe.stats().hazardViolations, 0u)
                    << branchSchemeName(scheme) << "/" << slots << "\n"
                    << src;
                for (unsigned r = 2; r <= 11; ++r) {
                    ASSERT_EQ(pipe.word(p.symbol("arr") + 64 + r),
                              seq.word(p.symbol("arr") + 64 + r))
                        << "pipe r" << r << " scheme "
                        << branchSchemeName(scheme) << " slots " << slots
                        << "\n" << src;
                }
                for (addr_t a = 0; a < 64; ++a) {
                    ASSERT_EQ(pipe.word(p.symbol("arr") + a),
                              seq.word(p.symbol("arr") + a))
                        << "pipe mem+" << a;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorgEquivalence,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(Predictor, BranchCacheBasics)
{
    BranchCacheModel bc(16);
    sim::BranchEvent ev;
    ev.conditional = true;
    ev.pc = 100;
    ev.target = 90;
    ev.taken = true;
    for (int i = 0; i < 10; ++i)
        bc.record(ev);
    EXPECT_GT(bc.accuracy(), 0.8);
    EXPECT_GT(bc.hitRate(), 0.8);
}

TEST(Predictor, StaticModels)
{
    AlwaysTakenModel at;
    BackwardTakenModel bt;
    sim::BranchEvent back{100, 90, true, true};
    sim::BranchEvent fwd{100, 110, true, false};
    for (int i = 0; i < 5; ++i) {
        at.record(back);
        at.record(fwd);
        bt.record(back);
        bt.record(fwd);
    }
    EXPECT_NEAR(at.accuracy(), 0.5, 1e-9);
    EXPECT_NEAR(bt.accuracy(), 1.0, 1e-9);
}

TEST(Predictor, ProfileBeatsHeuristicOnAdversarialBranch)
{
    // A forward branch that is almost always taken.
    BackwardTakenModel heur;
    ProfileModel prof;
    sim::BranchEvent ev{100, 200, true, true};
    for (int i = 0; i < 20; ++i)
        prof.addProfile(ev);
    for (int i = 0; i < 20; ++i) {
        heur.record(ev);
        prof.record(ev);
    }
    EXPECT_LT(heur.accuracy(), 0.1);
    EXPECT_GT(prof.accuracy(), 0.9);
}

TEST(Reorg, EdgeCasePrograms)
{
    // Only a halt.
    {
        const auto q = reorganize(asmOrDie("_start: halt\n"), {}, nullptr);
        auto r = runDelayed(q);
        EXPECT_EQ(r.reason, sim::IssStop::Halt);
    }
    // A single unconditional self-contained jump chain.
    {
        const auto q = reorganize(asmOrDie(R"(
_start: jmp a
a:      jmp b
b:      halt
)"), {}, nullptr);
        auto r = runDelayed(q);
        EXPECT_EQ(r.reason, sim::IssStop::Halt);
    }
    // A branch whose target is its own fall-through.
    {
        const auto q = reorganize(asmOrDie(R"(
_start: addi r1, r0, 1
        beq  r1, r1, next
next:   addi r2, r0, 2
        halt
)"), {}, nullptr);
        auto r = runDelayed(q);
        EXPECT_EQ(r.reason, sim::IssStop::Halt);
        EXPECT_EQ(r.gpr(2), 2u);
    }
    // An empty infinite-loop-free block chain with back-to-back labels.
    {
        const auto q = reorganize(asmOrDie(R"(
_start:
l1:
l2:     addi r1, r0, 9
        halt
)"), {}, nullptr);
        auto r = runDelayed(q);
        EXPECT_EQ(r.gpr(1), 9u);
    }
    // Data-only program: assembles, nothing to reorganize.
    {
        const auto p = asmOrDie(".data\nx: .word 1\n");
        EXPECT_NO_THROW(reorganize(p, {}, nullptr));
    }
}

TEST(Reorg, JpcInUserTextIsRejected)
{
    const auto p = asmOrDie("_start: jpc\n        halt\n");
    EXPECT_THROW(reorganize(p, {}, nullptr), SimError);
}

TEST(Reorg, SlotCountOneAndTwoProduceDifferentLayouts)
{
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 3
loop:   addi r1, r1, -1
        bnz  r1, loop
        halt
)");
    reorg::ReorgConfig one;
    one.slots = 1;
    const auto q1 = reorganize(p, one, nullptr);
    const auto q2 = reorganize(p, {}, nullptr);
    EXPECT_LT(q1.textSize(), q2.textSize());
}

// ---------------------------------------------------------------------
// CFG edge cases: empty-body blocks, back-to-back branches, fallthrough
// chains, and a block ending exactly at a decoded-image page boundary.

TEST(Cfg, BackToBackBranchesMakeEmptyBodyBlocks)
{
    // The store keeps r4 live into the join, so no backend may fill a
    // slot with the fall-path addi (it would be observable).
    const auto p = asmOrDie(R"(
        .data
res:    .word 7
        .text
_start: addi r1, r0, 1
        bnz  r1, a
a:      bz   r2, b
        addi r4, r0, 98
b:      st   r4, res
        halt
)");
    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    ASSERT_EQ(cfg.blocks().size(), 4u);
    // The second branch is its own block with an empty body: the first
    // branch both targets and falls into it.
    EXPECT_TRUE(cfg.blocks()[1].body.empty());
    ASSERT_TRUE(cfg.blocks()[1].hasTerm());
    EXPECT_EQ(cfg.blocks()[0].targetBlock, 1);
    EXPECT_EQ(cfg.blocks()[0].fallBlock, 1);
    EXPECT_EQ(cfg.blocks()[1].targetBlock, 3);
    EXPECT_EQ(cfg.blocks()[1].fallBlock, 2);

    // Every scheme x scheduler combination must still verify and
    // preserve the path (r2 == 0 takes the bz, skipping the addi).
    for (const auto scheme : {BranchScheme::NoSquash,
                              BranchScheme::AlwaysSquash,
                              BranchScheme::SquashOptional}) {
        for (const auto kind : {SchedulerKind::Heuristic,
                                SchedulerKind::List,
                                SchedulerKind::Optimal}) {
            ReorgConfig rc;
            rc.scheme = scheme;
            rc.scheduler = kind;
            rc.paperFaithful = false;
            const auto q = reorganize(p, rc, nullptr);
            auto r = runDelayed(q);
            ASSERT_EQ(r.reason, sim::IssStop::Halt)
                << branchSchemeName(scheme);
            EXPECT_EQ(r.gpr(1), 1u);
            EXPECT_EQ(r.word(p.symbol("res")), 0u)
                << branchSchemeName(scheme);
            auto pr = runPipelineProg(q);
            EXPECT_EQ(pr.word(p.symbol("res")), 0u);
            EXPECT_EQ(pr.stats().hazardViolations, 0u);
        }
    }
}

TEST(Cfg, FallthroughChainsSplitByLabels)
{
    const auto p = asmOrDie(R"(
_start: addi r1, r0, 1
l1:     addi r2, r0, 2
l2:     addi r3, r0, 3
l3:     halt
)");
    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    ASSERT_EQ(cfg.blocks().size(), 4u);
    for (int b = 0; b < 3; ++b) {
        EXPECT_EQ(cfg.blocks()[b].body.size(), 1u);
        EXPECT_FALSE(cfg.blocks()[b].hasTerm());
        EXPECT_EQ(cfg.blocks()[b].fallBlock, b + 1);
        EXPECT_EQ(cfg.blocks()[b].preds, ~0u); // labelled or entry
    }
    // landingNode walks the fallthrough chain: skipping past a
    // one-instruction block lands in the next, and skipping the whole
    // chain lands on the final terminator.
    EXPECT_EQ(cfg.landingNode(0, 0), cfg.blocks()[0].body[0].id);
    EXPECT_EQ(cfg.landingNode(0, 1), cfg.blocks()[1].body[0].id);
    EXPECT_EQ(cfg.landingNode(0, 3), cfg.blocks()[3].term->id);
    EXPECT_EQ(cfg.landingNode(1, 1), cfg.blocks()[2].body[0].id);

    // The chain re-emits byte-identically when nothing is scheduled.
    const auto out = cfg.emit(p.text(), p.text().base, nullptr);
    EXPECT_EQ(out.words, p.text().words);

    const auto q = reorganize(p, {}, nullptr);
    auto r = runDelayed(q);
    EXPECT_EQ(r.gpr(1), 1u);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
}

TEST(Cfg, BlockEndingExactlyAtAPageBoundary)
{
    // The text base (0x4000) is page-aligned for the decoded image
    // (2048 words per page), so a branch at text index 2047 is the
    // last word of its page and its block ends exactly on the
    // boundary, with the branch target in the next page.
    std::string src = "_start: addi r1, r0, 1\n";
    for (unsigned i = 0; i < 2046; ++i)
        src += "        addi r3, r3, 1\n";
    src += "        bnz  r1, over\n"
           "        addi r4, r0, 4\n"
           "over:   halt\n";
    const auto p = asmOrDie(src);
    ASSERT_EQ(p.text().words.size(), 2050u);

    Cfg cfg = Cfg::build(p.text(), textSymbols(p));
    ASSERT_GE(cfg.blocks().size(), 3u);
    const auto &first = cfg.blocks()[0];
    ASSERT_TRUE(first.hasTerm());
    EXPECT_EQ(first.term->origAddr, p.text().base + 2047u);
    EXPECT_EQ((first.term->origAddr + 1) % 2048u, 0u);

    for (const auto kind : {SchedulerKind::Heuristic,
                            SchedulerKind::List,
                            SchedulerKind::Optimal}) {
        ReorgConfig rc;
        rc.scheduler = kind;
        const auto q = reorganize(p, rc, nullptr);
        auto r = runDelayed(q);
        ASSERT_EQ(r.reason, sim::IssStop::Halt);
        EXPECT_EQ(r.gpr(3), 2046u);
        EXPECT_EQ(r.gpr(4), 0u); // the branch was taken
        auto pr = runPipelineProg(q);
        EXPECT_EQ(pr.gpr(3), 2046u);
        EXPECT_EQ(pr.stats().hazardViolations, 0u);
    }
}

TEST(Cfg, EmptyTextSectionBuildsAnEmptyCfg)
{
    assembler::Section text;
    text.isText = true;
    text.base = 0x4000;
    const Cfg cfg = Cfg::build(text, {});
    EXPECT_TRUE(cfg.blocks().empty());
    EXPECT_EQ(cfg.size(), 0u);
}
