/** @file Functional-simulator tests (sequential and delayed modes). */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace mipsx;
using namespace mipsx::test;

TEST(IssSequential, ArithmeticAndHalt)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 21
        add  r2, r1, r1
        sub  r3, r2, r1
        halt
)");
    auto r = runSequential(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(1), 21u);
    EXPECT_EQ(r.gpr(2), 42u);
    EXPECT_EQ(r.gpr(3), 21u);
    EXPECT_EQ(r.iss->stats().steps, 4u);
}

TEST(IssSequential, LoadsAndStores)
{
    const auto p = asmOrDie(R"(
        .data
src:    .word 0x1234
dst:    .space 1
        .text
        ld  r1, src
        st  r1, dst
        halt
)");
    auto r = runSequential(p);
    EXPECT_EQ(r.word(p.symbol("dst")), 0x1234u);
}

TEST(IssSequential, LoopComputesSum)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 10    ; i = 10
        addi r2, r0, 0     ; sum = 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
)");
    auto r = runSequential(p);
    EXPECT_EQ(r.gpr(2), 55u);
}

TEST(IssSequential, CallAndReturn)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 5
        call double
        add  r3, r2, r0
        halt
double: add r2, r1, r1
        ret
)");
    auto r = runSequential(p);
    EXPECT_EQ(r.gpr(3), 10u);
}

TEST(IssSequential, LiBuildsFullConstants)
{
    const auto p = asmOrDie("li r1, 0x89abcdef\n li r2, -123456789\nhalt\n");
    auto r = runSequential(p);
    EXPECT_EQ(r.gpr(1), 0x89abcdefu);
    EXPECT_EQ(r.gpr(2), static_cast<word_t>(-123456789));
}

TEST(IssSequential, MultiplyMacro)
{
    // 32 msteps compute r3 = r1 * r2.
    std::string src = R"(
        addi r1, r0, 1234
        addi r2, r0, 567
        movtos md, r1
        add r3, r0, r0
)";
    for (int i = 0; i < 32; ++i)
        src += "        mstep r3, r3, r2\n";
    src += "        halt\n";
    auto r = runSequential(asmOrDie(src));
    EXPECT_EQ(r.gpr(3), 1234u * 567u);
}

TEST(IssSequential, FailTrapReported)
{
    auto r = runSequential(asmOrDie("fail\n"));
    EXPECT_EQ(r.reason, sim::IssStop::Fail);
}

TEST(IssSequential, OverflowTrapsWhenEnabled)
{
    // Run in user mode with the overflow-trap mask already set (as an OS
    // would arrange before dispatching a user process). No handler is
    // loaded, so the exception is reported as unhandled.
    const auto p = asmOrDie(R"(
        li  r2, 0x7fffffff
        add r3, r2, r2     ; signed overflow
        halt
)");
    sim::IssConfig cfg;
    cfg.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ovfe;
    auto r = runSequential(p, cfg);
    EXPECT_EQ(r.reason, sim::IssStop::UnhandledException);
    EXPECT_TRUE(r.iss->psw().bits() & isa::psw_bits::cOvf);
}

TEST(IssSequential, OverflowIgnoredWhenMasked)
{
    const auto p = asmOrDie(R"(
        li  r2, 0x7fffffff
        add r3, r2, r2
        halt
)");
    auto r = runSequential(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(3), 0xfffffffeu);
}

TEST(IssSequential, PrivilegeViolationIsException)
{
    // movtos psw from user mode must raise an (unhandled) exception.
    auto r = runSequential(asmOrDie("movtos psw, r1\nhalt\n"));
    EXPECT_EQ(r.reason, sim::IssStop::UnhandledException);
    EXPECT_EQ(r.iss->stats().exceptions, 1u);
    EXPECT_TRUE(r.iss->psw().bits() & isa::psw_bits::cPriv);
}

TEST(IssSequential, TrapWithHandlerRestarts)
{
    // System-space program: trap 5 vectors to the handler at 0, which
    // skips the trap by bumping the saved chain entry, then returns.
    const auto prog = asmOrDie(R"(
        .systext 0
handler:
        movfrs r10, pchain0
        addi   r10, r10, 1
        movtos pchain0, r10
        addi   r11, r11, 1
        jpc
        .org 0x100
_start: addi r1, r0, 7
        trap 5
        addi r1, r1, 1
        halt
)");
    auto r = runSequential(prog);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(1), 8u);
    EXPECT_EQ(r.gpr(11), 1u);
}

TEST(IssDelayed, BranchDelaySlotsExecute)
{
    // Delayed semantics: the two instructions after a taken branch
    // execute before the target.
    const auto p = asmOrDie(R"(
        addi r1, r0, 1
        b    target
        addi r2, r0, 2   ; slot 1: executes
        addi r3, r0, 3   ; slot 2: executes
        addi r4, r0, 4   ; skipped by the branch
target: halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    EXPECT_EQ(r.gpr(4), 0u);
}

TEST(IssDelayed, SquashIfNotTakenSquashesOnFallThrough)
{
    const auto p = asmOrDie(R"(
        addi r1, r0, 1
        beq.sq r1, r0, target  ; predicts taken but falls through
        addi r2, r0, 2         ; squashed
        addi r3, r0, 3         ; squashed
        addi r4, r0, 4
target: halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.gpr(2), 0u);
    EXPECT_EQ(r.gpr(3), 0u);
    EXPECT_EQ(r.gpr(4), 4u);
}

TEST(IssDelayed, SquashIfNotTakenExecutesWhenTaken)
{
    const auto p = asmOrDie(R"(
        beq.sq r0, r0, target
        addi r2, r0, 2         ; slot: executes (taken)
        addi r3, r0, 3         ; slot: executes
        addi r4, r0, 4         ; skipped
target: halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    EXPECT_EQ(r.gpr(4), 0u);
}

TEST(IssDelayed, LoadDelaySlotSeesOldValue)
{
    const auto p = asmOrDie(R"(
        .data
v:      .word 99
        .text
        addi r1, r0, 5
        ld   r1, v
        add  r2, r1, r0   ; reads the OLD r1 (5)
        add  r3, r1, r0   ; reads the loaded value (99)
        halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.gpr(2), 5u);
    EXPECT_EQ(r.gpr(3), 99u);
    EXPECT_EQ(r.gpr(1), 99u);
}

TEST(IssDelayed, JalLinksPastTheDelaySlots)
{
    const auto p = asmOrDie(R"(
_start: jal ra, func    ; at base+0; link must be base+3
        nop
        nop
        addi r5, r5, 1  ; return lands here
        halt
func:   addi r6, r0, 9
        ret
        nop
        nop
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(5), 1u);
    EXPECT_EQ(r.gpr(6), 9u);
}

TEST(IssDelayed, OneSlotMachine)
{
    const auto p = asmOrDie(R"(
        b target
        addi r2, r0, 2   ; single slot executes
        addi r3, r0, 3   ; skipped
target: halt
)");
    auto r = runDelayed(p, 1);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 0u);
}

TEST(IssDelayed, OverlappingJumpsInterleaveLikeTheRestartSequence)
{
    // Three consecutive unconditional branches: each redirects exactly
    // one fetch slot, two cycles after itself — the mechanism the
    // three-jump exception return exploits. Expected execution order:
    // j1 j2 j3 t1 t2 t3 (then sequentially after t3).
    const auto p = asmOrDie(R"(
_start: b t1
        b t2
        b t3
        fail            ; never reached
t1:     addi r1, r0, 1
t2:     addi r2, r0, 2
t3:     addi r3, r0, 3
        addi r4, r0, 4  ; sequential continuation after t3
        halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(1), 1u);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    EXPECT_EQ(r.gpr(4), 4u);
    // Each target executes exactly once; the dynamic stream is
    // j1 j2 j3 t1 t2 t3 addi4 halt = 8 steps.
    EXPECT_EQ(r.iss->stats().steps, 8u);
}

TEST(IssDelayed, JumpInDelaySlotRedirectsAfterItsOwnSlots)
{
    // A taken branch whose first slot contains another jump: the second
    // jump's redirect lands one fetch after the first one's.
    const auto p = asmOrDie(R"(
_start: b a
        b b
        addi r1, r0, 1   ; slot 2 of the first branch: executes
a:      addi r2, r0, 2   ; first redirect lands here (one instruction)
b:      addi r3, r0, 3   ; second redirect lands here
        halt
)");
    auto r = runDelayed(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt);
    EXPECT_EQ(r.gpr(1), 1u);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    // Stream: b-a, b-b, addi1, addi2(a), addi3(b), halt = 6 steps.
    EXPECT_EQ(r.iss->stats().steps, 6u);
}

TEST(IssDelayed, PipelineAgreesOnOverlappingJumps)
{
    // The same programs on the cycle-accurate pipeline, lockstep.
    const char *src = R"(
_start: b t1
        b t2
        b t3
        fail
t1:     addi r1, r0, 1
t2:     addi r2, r0, 2
t3:     addi r3, r0, 3
        addi r4, r0, 4
        halt
)";
    const auto p = asmOrDie(src);
    auto iss = runDelayed(p);
    auto pipe = runPipelineProg(p);
    EXPECT_EQ(pipe.result.reason, core::StopReason::Halt);
    for (unsigned r = 1; r <= 4; ++r)
        EXPECT_EQ(pipe.gpr(r), iss.gpr(r)) << "r" << r;
    EXPECT_EQ(pipe.stats().committed, iss.iss->stats().steps);
}
