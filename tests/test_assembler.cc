/** @file Assembler tests: syntax, layout, symbols, diagnostics. */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

using namespace mipsx;
using namespace mipsx::assembler;
using namespace mipsx::isa;

TEST(Assembler, MinimalProgram)
{
    const auto p = assemble("start: add r1, r2, r3\n halt\n");
    ASSERT_EQ(p.sections.size(), 1u);
    const auto &t = p.text();
    EXPECT_EQ(t.base, defaultTextBase);
    ASSERT_EQ(t.words.size(), 2u);
    EXPECT_EQ(t.words[0], encodeCompute(ComputeOp::Add, 2, 3, 1));
    EXPECT_EQ(t.words[1], encodeTrap(trapCodeHalt));
    EXPECT_EQ(p.entry, defaultTextBase);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const auto p = assemble("; leading comment\n\n"
                            "  nop  # trailing\n"
                            "  halt\n");
    EXPECT_EQ(p.text().words.size(), 2u);
}

TEST(Assembler, LabelsAndBranches)
{
    const auto p = assemble(R"(
start:  addi r1, r0, 10
loop:   addi r1, r1, -1
        bne  r1, r0, loop
        halt
)");
    const auto &t = p.text();
    ASSERT_EQ(t.words.size(), 4u);
    const Instruction br = decode(t.words[2]);
    EXPECT_EQ(br.cond, BranchCond::Ne);
    // loop is at base+1; branch at base+2; disp = 1 - (2+1) = -2.
    EXPECT_EQ(br.imm, -2);
    EXPECT_EQ(p.symbol("loop"), defaultTextBase + 1);
}

TEST(Assembler, SquashSuffixes)
{
    const auto p = assemble(R"(
l:      beq.sq  r1, r2, l
        beq.sqn r1, r2, l
        beq     r1, r2, l
        halt
)");
    EXPECT_EQ(decode(p.text().words[0]).squash,
              SquashType::SquashNotTaken);
    EXPECT_EQ(decode(p.text().words[1]).squash, SquashType::SquashTaken);
    EXPECT_EQ(decode(p.text().words[2]).squash, SquashType::NoSquash);
}

TEST(Assembler, MemoryOperandForms)
{
    const auto p = assemble(R"(
        .data
val:    .word 7
        .text
        ld  r1, 8(sp)
        ld  r2, val
        ld  r3, val(r4)
        ld  r4, val+1
        st  r1, -4(fp)
        halt
)");
    const auto &t = p.text();
    const addr_t val = p.symbol("val");
    EXPECT_EQ(val, defaultDataBase);
    EXPECT_EQ(t.words[0], encodeMem(MemOp::Ld, reg::sp, 1, 8));
    EXPECT_EQ(t.words[1],
              encodeMem(MemOp::Ld, 0, 2, static_cast<std::int32_t>(val)));
    EXPECT_EQ(t.words[2],
              encodeMem(MemOp::Ld, 4, 3, static_cast<std::int32_t>(val)));
    EXPECT_EQ(t.words[3],
              encodeMem(MemOp::Ld, 0, 4,
                        static_cast<std::int32_t>(val + 1)));
    EXPECT_EQ(t.words[4], encodeMem(MemOp::St, reg::fp, 1, -4));
}

TEST(Assembler, LiExpandsToTwoWords)
{
    const auto p = assemble("li r1, 0xdeadbeef\n halt\n");
    const auto &t = p.text();
    ASSERT_EQ(t.words.size(), 3u);
    // Verify reconstruction: (hi << 15) + lo == value.
    const Instruction hi = decode(t.words[0]);
    const Instruction lo = decode(t.words[1]);
    EXPECT_EQ(hi.immOp, ImmOp::Lih);
    EXPECT_EQ(lo.immOp, ImmOp::Addi);
    const word_t v = (static_cast<word_t>(hi.imm) << 15) +
        static_cast<word_t>(lo.imm);
    EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(Assembler, LiNegativeAndSmall)
{
    for (const long long value :
         {0LL, -1LL, 42LL, -65536LL, 0x7fffffffLL, -0x80000000LL}) {
        const auto p = assemble("li r1, " + std::to_string(value) +
                                "\n halt\n");
        const Instruction hi = decode(p.text().words[0]);
        const Instruction lo = decode(p.text().words[1]);
        const word_t v = (static_cast<word_t>(hi.imm) << 15) +
            static_cast<word_t>(lo.imm);
        EXPECT_EQ(v, static_cast<word_t>(value)) << value;
    }
}

TEST(Assembler, PseudoOps)
{
    const auto p = assemble(R"(
        nop
        mov r1, r2
        neg r3, r4
        bz  r1, out
        bnz r1, out
        b   out
out:    call out
        ret
        fail
        halt
)");
    const auto &t = p.text();
    EXPECT_EQ(t.words[0], nopWord);
    EXPECT_EQ(t.words[1], encodeCompute(ComputeOp::Add, 2, 0, 1));
    EXPECT_EQ(t.words[2], encodeCompute(ComputeOp::Sub, 0, 4, 3));
    EXPECT_EQ(decode(t.words[3]).cond, BranchCond::Eq);
    EXPECT_EQ(decode(t.words[4]).cond, BranchCond::Ne);
    EXPECT_EQ(decode(t.words[5]).cond, BranchCond::T);
    EXPECT_EQ(decode(t.words[6]).immOp, ImmOp::Jal);
    EXPECT_EQ(decode(t.words[6]).destReg(), reg::ra);
    EXPECT_EQ(t.words[7], encodeJumpReg(ImmOp::Jr, reg::ra, 0, 0));
    EXPECT_EQ(t.words[8], encodeTrap(trapCodeFail));
}

TEST(Assembler, DataDirectives)
{
    const auto p = assemble(R"(
        .data
a:      .word 1, 2, 3
b:      .space 4
c:      .word 0xffffffff
        .text
        halt
)");
    const auto &d = p.sections[0];
    ASSERT_EQ(d.words.size(), 8u);
    EXPECT_EQ(d.words[0], 1u);
    EXPECT_EQ(d.words[2], 3u);
    EXPECT_EQ(d.words[3], 0u);
    EXPECT_EQ(d.words[7], 0xffffffffu);
    EXPECT_EQ(p.symbol("b"), p.symbol("a") + 3);
    EXPECT_EQ(p.symbol("c"), p.symbol("a") + 7);
}

TEST(Assembler, EquAndExpressions)
{
    const auto p = assemble(R"(
        .equ N, 10
        .equ M, N+5
        addi r1, r0, N
        addi r2, r0, M
        addi r3, r0, M-N
        halt
)");
    EXPECT_EQ(decode(p.text().words[0]).imm, 10);
    EXPECT_EQ(decode(p.text().words[1]).imm, 15);
    EXPECT_EQ(decode(p.text().words[2]).imm, 5);
}

TEST(Assembler, AlignPadsText)
{
    const auto p = assemble(R"(
        nop
        .align 16
target: halt
)");
    EXPECT_EQ(p.symbol("target") % 16, 0u);
    // Padding in text is no-ops.
    EXPECT_EQ(p.text().words[1], nopWord);
}

TEST(Assembler, SystemTextSection)
{
    const auto p = assemble(R"(
        .systext
handler: jpc
        .text
_start: halt
)");
    ASSERT_EQ(p.sections.size(), 2u);
    EXPECT_EQ(p.sections[0].space, AddressSpace::System);
    EXPECT_EQ(p.sections[0].base, exceptionVector);
    EXPECT_EQ(p.entrySpace, AddressSpace::User);
    EXPECT_EQ(p.entry, p.symbol("_start"));
}

TEST(Assembler, SectionsResumeAfterSwitch)
{
    const auto p = assemble(R"(
        .text
        nop
        .data
x:      .word 1
        .text
second: halt
)");
    EXPECT_EQ(p.symbol("second"), defaultTextBase + 1);
    EXPECT_EQ(p.text().words.size(), 2u);
}

TEST(Assembler, CoprocessorSyntax)
{
    const auto p = assemble(R"(
        aluc   c2, 0x3ff
        movfrc r5, c2, 1
        movtoc c2, 0, r6
        ldf    f3, 0(r1)
        stf    f3, 4(r1)
        halt
)");
    const auto &t = p.text();
    EXPECT_EQ(decode(t.words[0]).copNum(), 2u);
    EXPECT_EQ(decode(t.words[0]).copOp(), 0x3ffu);
    EXPECT_EQ(decode(t.words[1]).destReg(), 5);
    EXPECT_EQ(decode(t.words[2]).rs2, 6);
    EXPECT_EQ(decode(t.words[3]).aux, 3);
    EXPECT_EQ(decode(t.words[4]).memOp, MemOp::Stf);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus r1\n", "file.s");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("file.s:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Assembler, ErrorOnRedefinedSymbol)
{
    EXPECT_THROW(assemble("a: nop\na: nop\n"), SimError);
}

TEST(Assembler, ErrorOnUndefinedSymbol)
{
    EXPECT_THROW(assemble("b missing\n"), SimError);
}

TEST(Assembler, ErrorOnRangeViolations)
{
    EXPECT_THROW(assemble("addi r1, r0, 200000\n"), SimError);
    EXPECT_THROW(assemble("sll r1, r2, 32\n"), SimError);
    EXPECT_THROW(assemble("ld r1, 70000(r0)\n"), SimError);
}

TEST(Assembler, ErrorOnDataInstructions)
{
    EXPECT_THROW(assemble(".data\nadd r1, r2, r3\n"), SimError);
}

TEST(Assembler, MovtosMovfrsSyntax)
{
    const auto p = assemble(R"(
        movfrs r1, psw
        movtos md, r2
        movfrs r3, pchain1
        halt
)");
    const auto &t = p.text();
    EXPECT_EQ(t.words[0],
              encodeMovSpecial(ComputeOp::Movfrs, SpecialReg::Psw, 1));
    EXPECT_EQ(t.words[1],
              encodeMovSpecial(ComputeOp::Movtos, SpecialReg::Md, 2));
    EXPECT_EQ(t.words[2],
              encodeMovSpecial(ComputeOp::Movfrs, SpecialReg::PcChain1,
                               3));
}

TEST(Assembler, DisassembleRoundTripOnProgram)
{
    // Every assembled word must disassemble to something (and no word in
    // a simple program may decode as invalid).
    const auto p = assemble(R"(
        li   r1, 123456
        addi r2, r1, 1
        sub  r3, r2, r1
loop:   bne  r3, r0, loop
        jmp  end
end:    halt
)");
    for (const auto w : p.text().words) {
        EXPECT_TRUE(isa::decode(w).valid);
        EXPECT_FALSE(isa::disassemble(w).empty());
    }
}

TEST(Assembler, ReptExpandsBlocks)
{
    const auto p = assemble(R"(
        .rept 3
        addi r1, r1, 1
        .endr
        halt
)");
    ASSERT_EQ(p.text().words.size(), 4u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(p.text().words[i], encodeImm(ImmOp::Addi, 1, 1, 1));
}

TEST(Assembler, ReptNests)
{
    const auto p = assemble(R"(
        .rept 2
        nop
        .rept 3
        addi r2, r2, 1
        .endr
        .endr
        halt
)");
    // 2 * (1 nop + 3 addi) + halt = 9 words.
    ASSERT_EQ(p.text().words.size(), 9u);
    EXPECT_EQ(p.text().words[0], nopWord);
    EXPECT_EQ(p.text().words[4], nopWord);
}

TEST(Assembler, ReptZeroEmitsNothing)
{
    const auto p = assemble(R"(
        .rept 0
        fail
        .endr
        halt
)");
    EXPECT_EQ(p.text().words.size(), 1u);
}

TEST(Assembler, ReptDiagnostics)
{
    EXPECT_THROW(assemble(".rept 2\nnop\n"), SimError);   // no .endr
    EXPECT_THROW(assemble(".endr\n"), SimError);          // stray .endr
    EXPECT_THROW(assemble(".rept -1\nnop\n.endr\n"), SimError);
}

TEST(Assembler, ReptMultiplySequence)
{
    // The 32-step multiply, the .rept way.
    const auto p = assemble(R"(
_start: addi r1, r0, 77
        addi r2, r0, 991
        movtos md, r1
        add  r3, r0, r0
        .rept 32
        mstep r3, r3, r2
        .endr
        halt
)");
    EXPECT_EQ(p.text().words.size(), 4u + 32u + 1u);
}
