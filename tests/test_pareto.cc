/**
 * @file
 * Tests for the search-engine layer on top of the sweep runner: the
 * energy cost model's closed form, Pareto-frontier extraction and knee
 * detection, adaptive refinement's determinism across worker counts,
 * and shard/merge byte-identity with an unsharded run.
 */

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "core/cpu.hh"
#include "explore/explore.hh"
#include "explore/pareto.hh"
#include "stats/energy.hh"

using namespace mipsx;
using namespace mipsx::explore;

// ---------------------------------------------------------------------
// The energy model's closed form.

TEST(Energy, ClosedFormMatchesHandMath)
{
    stats::EnergyCosts c;
    c.icacheRead = 1.0;
    c.icacheReadPerKword = 0.5;
    c.icacheMiss = 2.0;
    c.icacheRefillWord = 4.0;
    c.ecacheRead = 12.0;
    c.ecacheReadPerKword = 0.0;
    c.ecacheMiss = 24.0;
    c.memCycle = 50.0;
    c.cycleStatic = 0.5;

    stats::EnergyCounts n;
    n.cycles = 1000;
    n.committed = 800;
    n.icacheAccesses = 900;
    n.icacheMisses = 30;
    n.icacheRefillWords = 60;
    n.ecacheAccesses = 200;
    n.ecacheMisses = 10;
    n.memTrafficCycles = 40;
    n.icacheSizeWords = 2048; // 2 Kwords -> +1.0 per icache access
    n.ecacheSizeWords = 0;

    const auto e = stats::computeEnergy(c, n);
    EXPECT_DOUBLE_EQ(e.icache, 900 * (1.0 + 1.0) + 30 * 2.0 + 60 * 4.0);
    EXPECT_DOUBLE_EQ(e.ecache, 200 * 12.0 + 10 * 24.0);
    EXPECT_DOUBLE_EQ(e.memory, 40 * 50.0);
    EXPECT_DOUBLE_EQ(e.staticCost, 1000 * 0.5);
    EXPECT_DOUBLE_EQ(e.total,
                     e.icache + e.ecache + e.memory + e.staticCost);
    EXPECT_DOUBLE_EQ(e.perInstruction(n.committed), e.total / 800.0);
    EXPECT_DOUBLE_EQ(e.energyDelay(n.cycles), e.total * 1000.0);
    EXPECT_DOUBLE_EQ(e.perInstruction(0), 0.0);
}

TEST(Energy, ValidateRejectsBadCosts)
{
    stats::EnergyCosts c;
    EXPECT_NO_THROW(c.validate()); // the defaults are a valid table

    c = {};
    c.icacheRead = -1.0;
    EXPECT_THROW(c.validate(), SimError);
    c = {};
    c.memCycle = std::numeric_limits<double>::infinity();
    EXPECT_THROW(c.validate(), SimError);
    c = {};
    c.cycleStatic = std::nan("");
    EXPECT_THROW(c.validate(), SimError);

    // CpuConfig::validate() runs the table's check, so a hand-built
    // machine with a bad cost fails at construction time too.
    core::CpuConfig cpu;
    cpu.energy.ecacheMiss = -5.0;
    EXPECT_THROW(cpu.validate(), SimError);
}

// ---------------------------------------------------------------------
// Pareto frontier and knee.

TEST(Pareto, ParseObjective)
{
    EXPECT_EQ(parseObjective("suite.cycles").metric, "suite.cycles");
    EXPECT_TRUE(parseObjective("suite.cycles").minimize);
    EXPECT_TRUE(parseObjective("a.b:min").minimize);
    EXPECT_FALSE(parseObjective("a.b:max").minimize);
    EXPECT_EQ(parseObjective("a.b:max").metric, "a.b");
    EXPECT_THROW(parseObjective("a.b:down"), SimError);
    EXPECT_THROW(parseObjective(""), SimError);
    EXPECT_THROW(parseObjective(":min"), SimError);
}

TEST(Pareto, RemovesDominatedPoints)
{
    // (1,5) and (5,1) trade off; (3,3) sits on neither side's shadow;
    // (4,4) is dominated by (3,3); (6,6) by everything.
    const std::vector<ParetoPoint> pts = {
        {0, 4, 4}, {1, 1, 5}, {2, 5, 1}, {3, 3, 3}, {4, 6, 6}};
    const auto f = paretoFrontier(pts, true, true);
    ASSERT_EQ(f.size(), 3u);
    // Sorted by ascending x.
    EXPECT_EQ(f[0].index, 1u);
    EXPECT_EQ(f[1].index, 3u);
    EXPECT_EQ(f[2].index, 2u);
}

TEST(Pareto, WeakDominationRemovesEqualOnOneAxis)
{
    // (2,3) dominates (2,4): equal x, strictly better y.
    const std::vector<ParetoPoint> pts = {{0, 2, 4}, {1, 2, 3}};
    const auto f = paretoFrontier(pts, true, true);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0].index, 1u);
}

TEST(Pareto, ExactTiesAreAllKept)
{
    // Distinct configurations with identical costs are all reported.
    const std::vector<ParetoPoint> pts = {{0, 2, 2}, {1, 2, 2}, {2, 9, 9}};
    const auto f = paretoFrontier(pts, true, true);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0].index, 0u); // ties ordered by index
    EXPECT_EQ(f[1].index, 1u);
}

TEST(Pareto, MaximizeDirections)
{
    // Maximizing both flips domination: (5,5) dominates everything.
    const std::vector<ParetoPoint> pts = {{0, 1, 1}, {1, 5, 5}, {2, 3, 6}};
    const auto f = paretoFrontier(pts, false, false);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0].index, 2u); // still sorted by ascending x
    EXPECT_EQ(f[1].index, 1u);

    // Mixed: minimize x, maximize y.
    const std::vector<ParetoPoint> mixed = {{0, 1, 1}, {1, 2, 5}, {2, 3, 4}};
    const auto g = paretoFrontier(mixed, true, false);
    ASSERT_EQ(g.size(), 2u);
    EXPECT_EQ(g[0].index, 0u);
    EXPECT_EQ(g[1].index, 1u);
}

TEST(Pareto, KneeIsMaxDistanceFromChord)
{
    // A convex frontier: the middle point (1,1) is far from the
    // (0,10)-(10,0) chord; (6,2) is closer to it.
    const std::vector<ParetoPoint> f = {
        {0, 0, 10}, {1, 1, 1}, {2, 6, 0.5}, {3, 10, 0}};
    EXPECT_EQ(kneePosition(f), 1u);
}

TEST(Pareto, KneeDegenerateCases)
{
    EXPECT_THROW(kneePosition({}), SimError);
    EXPECT_EQ(kneePosition({{0, 1, 1}}), 0u);
    EXPECT_EQ(kneePosition({{0, 1, 2}, {1, 2, 1}}), 0u);
    // A frontier flat in y: the fallback distance still picks a point
    // deterministically.
    const std::vector<ParetoPoint> flat = {{0, 0, 1}, {1, 5, 1}, {2, 9, 1}};
    EXPECT_EQ(kneePosition(flat), 2u);
}

// ---------------------------------------------------------------------
// Sweeps: energy keys, annotation, refinement, sharding.

namespace
{

std::vector<workload::Workload>
tinySuite()
{
    auto ws = workload::fpWorkloads();
    ws.resize(2);
    return ws;
}

SweepConfig
tinyConfig()
{
    SweepConfig cfg;
    cfg.grid.axes = {{"icache.missPenalty", {"2", "3"}},
                     {"icache.fetchWords", {"1", "2"}}};
    return cfg;
}

std::string
renderJson(const SweepResult &r)
{
    std::ostringstream os;
    writeJson(os, r);
    return os.str();
}

std::string
renderCsv(const SweepResult &r)
{
    std::ostringstream os;
    writeCsv(os, r);
    return os.str();
}

} // namespace

TEST(SweepEnergy, EveryPointCarriesEnergyKeys)
{
    const auto r = runSweep(tinyConfig(), tinySuite());
    ASSERT_EQ(r.points.size(), 4u);
    for (const auto &p : r.points) {
        EXPECT_TRUE(p.metrics.has("energy.total"));
        EXPECT_TRUE(p.metrics.has("energy.icache"));
        EXPECT_TRUE(p.metrics.has("energy.per_instruction"));
        EXPECT_TRUE(p.metrics.has("energy.edp"));
        EXPECT_GT(p.metrics.get("energy.total"), 0.0);
        // The snapshot prices the point's own aggregate exactly.
        const auto e = stats::computeEnergy({}, p.stats.energyCounts());
        EXPECT_DOUBLE_EQ(p.metrics.get("energy.total"), e.total);
    }
}

TEST(SweepEnergy, CostTableIsSweepable)
{
    SweepConfig cfg;
    cfg.grid.axes = {{"energy.cycleStatic", {"0", "100"}}};
    const auto r = runSweep(cfg, tinySuite());
    ASSERT_EQ(r.points.size(), 2u);
    // Same run, different pricing: cycles identical, energy not.
    EXPECT_EQ(r.points[0].stats.cycles, r.points[1].stats.cycles);
    EXPECT_LT(r.points[0].metrics.get("energy.total"),
              r.points[1].metrics.get("energy.total"));
}

TEST(AnnotatePareto, FrontierOverSweepMetrics)
{
    auto r = runSweep(tinyConfig(), tinySuite());
    annotatePareto(r, parseObjective("suite.cycles:min"),
                   parseObjective("energy.total:min"));
    ASSERT_TRUE(r.pareto.present);
    EXPECT_FALSE(r.pareto.frontier.empty());
    // The knee is one of the frontier's points.
    bool kneeOnFrontier = false;
    for (const auto i : r.pareto.frontier)
        kneeOnFrontier |= i == r.pareto.knee;
    EXPECT_TRUE(kneeOnFrontier);
    // The annotation lands in the JSON; an unannotated sweep's doesn't.
    EXPECT_NE(renderJson(r).find("\"pareto\""), std::string::npos);
    const auto plain = runSweep(tinyConfig(), tinySuite());
    EXPECT_EQ(renderJson(plain).find("\"pareto\""), std::string::npos);

    EXPECT_THROW(annotatePareto(r, parseObjective("no.such.metric"),
                                parseObjective("energy.total")),
                 SimError);
}

TEST(AdaptiveSweep, RefinesAndIsDeterministicAcrossJobCounts)
{
    SweepConfig cfg;
    cfg.grid.axes = {{"icache.missPenalty", {"1", "16"}}};
    cfg.runner.jobs = 0; // defer to MIPSX_BENCH_JOBS
    AdaptiveOptions ad;
    ad.x = parseObjective("suite.cycles:min");
    ad.y = parseObjective("energy.total:min");
    ad.pointBudget = 5;

    std::string baseline;
    for (const char *jobs : {"1", "4", "1"}) {
        ASSERT_EQ(setenv("MIPSX_BENCH_JOBS", jobs, 1), 0);
        const auto r = runAdaptiveSweep(cfg, tinySuite(), ad);
        EXPECT_EQ(r.points.size(), 5u);
        EXPECT_TRUE(r.pareto.present);
        // Refined points bisect between the coarse values, carry the
        // refined flag and extend the global index space.
        for (std::size_t i = 0; i < r.points.size(); ++i) {
            EXPECT_EQ(r.points[i].index, i);
            EXPECT_EQ(r.points[i].refined, i >= 2);
            EXPECT_TRUE(r.points[i].metrics.has("energy.total"));
        }
        const auto out = renderJson(r) + renderCsv(r);
        if (baseline.empty())
            baseline = out;
        else
            EXPECT_EQ(out, baseline) << "jobs=" << jobs;
    }
    unsetenv("MIPSX_BENCH_JOBS");
    EXPECT_NE(baseline.find("\"refined\": true"), std::string::npos);
}

TEST(AdaptiveSweep, BudgetAtGridSizeDegeneratesToPlainSweep)
{
    auto cfg = tinyConfig();
    AdaptiveOptions ad;
    ad.pointBudget = 4; // == grid size: no refinement rounds
    const auto r = runAdaptiveSweep(cfg, tinySuite(), ad);
    EXPECT_EQ(r.points.size(), 4u);
    for (const auto &p : r.points)
        EXPECT_FALSE(p.refined);
    EXPECT_TRUE(r.pareto.present); // still annotated

    cfg.shardCount = 2;
    EXPECT_THROW(runAdaptiveSweep(cfg, tinySuite(), ad), SimError);
}

TEST(Shards, MergeIsByteIdenticalToUnsharded)
{
    const auto whole = runSweep(tinyConfig(), tinySuite());

    std::vector<SweepResult> parts;
    for (unsigned s = 0; s < 2; ++s) {
        auto cfg = tinyConfig();
        cfg.shardIndex = s;
        cfg.shardCount = 2;
        auto r = runSweep(cfg, tinySuite());
        EXPECT_EQ(r.points.size(), 2u);
        // A shard's own output records which slice it is...
        EXPECT_NE(renderJson(r).find("\"shard\""), std::string::npos);
        // ...and round-trips through its JSON byte-identically.
        auto parsed = sweepResultFromJson(renderJson(r));
        EXPECT_EQ(renderJson(parsed), renderJson(r));
        parts.push_back(std::move(parsed));
    }

    const auto merged = mergeShards(std::move(parts));
    EXPECT_EQ(renderJson(merged), renderJson(whole));
    EXPECT_EQ(renderCsv(merged), renderCsv(whole));
}

TEST(Shards, ValidationAndMergeErrors)
{
    auto cfg = tinyConfig();
    cfg.shardIndex = 2;
    cfg.shardCount = 2;
    EXPECT_THROW(runSweep(cfg, tinySuite()), SimError);
    cfg.shardIndex = 0;
    cfg.shardCount = 0;
    EXPECT_THROW(runSweep(cfg, tinySuite()), SimError);

    // A bad axis value fails every shard up front, even when the bad
    // point belongs to the other shard.
    SweepConfig bad;
    bad.grid.axes = {{"icache.missPenalty", {"2", "abc"}}};
    bad.shardIndex = 0;
    bad.shardCount = 2;
    EXPECT_THROW(runSweep(bad, tinySuite()), SimError);

    EXPECT_THROW(mergeShards({}), SimError);

    auto half = [&](unsigned s) {
        auto c = tinyConfig();
        c.shardIndex = s;
        c.shardCount = 2;
        return runSweep(c, tinySuite());
    };
    // Missing a shard.
    EXPECT_THROW(mergeShards({half(0)}), SimError);
    // The same shard twice.
    EXPECT_THROW(mergeShards({half(0), half(0)}), SimError);
    // Shards of different sweeps.
    auto other = half(1);
    other.suite = "big-code";
    EXPECT_THROW(mergeShards({half(0), std::move(other)}), SimError);
}

TEST(SweepResultJson, RejectsForeignDocuments)
{
    EXPECT_THROW(sweepResultFromJson("[]"), SimError);
    EXPECT_THROW(sweepResultFromJson("{\"schema\": \"bogus\"}"),
                 SimError);
    EXPECT_THROW(sweepResultFromJson("{\"suite\": \"fp\"}"), SimError);
    EXPECT_THROW(sweepResultFromJson("{nope"), SimError);
}
