/**
 * @file
 * Tests for the BENCH_*.json trend comparator behind mipsx-trend: flat
 * metric parsing, direction inference, threshold classification, the
 * gating rules CI relies on, and both report writers.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "explore/json.hh"
#include "explore/trend.hh"

using namespace mipsx;
using namespace mipsx::explore;

namespace
{

FlatMetrics
flat(const std::string &name,
     std::vector<std::pair<std::string, double>> entries)
{
    FlatMetrics m;
    m.name = name;
    m.entries = std::move(entries);
    return m;
}

std::string
markdown(const TrendReport &r)
{
    std::ostringstream os;
    writeTrendMarkdown(os, r);
    return os.str();
}

} // namespace

TEST(FlatMetricsJson, ParsesNumbersSkipsStrings)
{
    const auto m = flatMetricsFromJson(
        "bench",
        "{\"suite.cycles\": 1200, \"suite.cpi\": 1.5,"
        " \"schema\": \"mipsx-bench-v1\", \"ok\": true}");
    EXPECT_EQ(m.name, "bench");
    ASSERT_EQ(m.entries.size(), 3u); // the string is skipped
    EXPECT_EQ(m.entries[0].first, "suite.cycles");
    EXPECT_DOUBLE_EQ(*m.find("suite.cycles"), 1200.0);
    EXPECT_DOUBLE_EQ(*m.find("ok"), 1.0); // booleans count as 0/1
    EXPECT_EQ(m.find("nope"), nullptr);

    EXPECT_THROW(flatMetricsFromJson("x", "[1, 2]"), SimError);
    EXPECT_THROW(flatMetricsFromJson("x", "{broken"), SimError);
    EXPECT_THROW(flatMetricsFromJsonFile("/no/such/file.json"), SimError);
}

TEST(Trend, DirectionInference)
{
    EXPECT_TRUE(higherIsBetter("timing.instr_per_host_second"));
    EXPECT_TRUE(higherIsBetter("fill_rate"));
    EXPECT_TRUE(higherIsBetter("reorg.speedup"));
    EXPECT_FALSE(higherIsBetter("suite.cycles"));
    EXPECT_FALSE(higherIsBetter("energy.total"));
    EXPECT_FALSE(higherIsBetter("suite.cpi"));
}

TEST(Trend, ClassifiesAgainstThreshold)
{
    const auto base = flat("base", {{"suite.cycles", 1000},
                                    {"suite.cpi", 1.50},
                                    {"timing.instr_per_host_second", 100}});
    const auto cur = flat("cur", {{"suite.cycles", 1010},  // +1%: ok
                                  {"suite.cpi", 1.80},     // +20%: worse
                                  {"timing.instr_per_host_second", 150}});
    const auto r = trendCompare({base, cur}, {/*thresholdPct=*/2.0, {}});
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0].status, TrendStatus::Ok);
    EXPECT_EQ(r.rows[1].status, TrendStatus::Regressed);
    EXPECT_NEAR(r.rows[1].deltaPct, 20.0, 1e-9);
    // Throughput rose 50%: higher is better, so that's an improvement.
    EXPECT_EQ(r.rows[2].status, TrendStatus::Improved);
    EXPECT_TRUE(r.rows[2].higherBetter);
    // Nothing gated: a regressed row doesn't fail the report.
    EXPECT_FALSE(r.regressed());
}

TEST(Trend, GatedRegressionFailsReport)
{
    const auto base = flat("base", {{"suite.cycles", 1000}});
    const auto worse = flat("cur", {{"suite.cycles", 1100}});
    const auto same = flat("cur", {{"suite.cycles", 1001}});

    TrendOptions gate;
    gate.gates = {"suite.cycles"};
    EXPECT_TRUE(trendCompare({base, worse}, gate).regressed());
    EXPECT_FALSE(trendCompare({base, same}, gate).regressed());
    // A gated *improvement* passes.
    const auto better = flat("cur", {{"suite.cycles", 900}});
    EXPECT_FALSE(trendCompare({base, better}, gate).regressed());
    // A looser threshold forgives the same movement.
    TrendOptions loose = gate;
    loose.thresholdPct = 15.0;
    EXPECT_FALSE(trendCompare({base, worse}, loose).regressed());
}

TEST(Trend, MissingGatedKeyFailsMisspelledGateThrows)
{
    const auto base = flat("base", {{"suite.cycles", 1000},
                                    {"suite.cpi", 1.5}});
    const auto cur = flat("cur", {{"suite.cycles", 1000}});

    // Gated key vanished from the current run: regressed, and named.
    TrendOptions gate;
    gate.gates = {"suite.cpi"};
    const auto r = trendCompare({base, cur}, gate);
    EXPECT_TRUE(r.regressed());
    ASSERT_EQ(r.missingGates.size(), 1u);
    EXPECT_EQ(r.missingGates[0], "suite.cpi");

    // A gate neither file knows is a typo, not a pass.
    TrendOptions typo;
    typo.gates = {"suite.cylces"};
    EXPECT_THROW(trendCompare({base, cur}, typo), SimError);

    // Fewer than two runs cannot trend.
    EXPECT_THROW(trendCompare({base}, {}), SimError);
    EXPECT_THROW(trendCompare({}, {}), SimError);
}

TEST(Trend, ZeroBaselineYieldsInfiniteDelta)
{
    const auto base = flat("base", {{"suite.failures", 0}});
    const auto cur = flat("cur", {{"suite.failures", 2}});
    TrendOptions gate;
    gate.gates = {"suite.failures"};
    const auto r = trendCompare({base, cur}, gate);
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_TRUE(std::isinf(r.rows[0].deltaPct));
    EXPECT_GT(r.rows[0].deltaPct, 0);
    EXPECT_EQ(r.rows[0].status, TrendStatus::Regressed);
    EXPECT_TRUE(r.regressed());
}

TEST(Trend, ThreeWayKeepsEveryColumnDeltaIsFirstToLast)
{
    const auto a = flat("a", {{"k", 100}});
    const auto b = flat("b", {{"k", 500}});
    const auto c = flat("c", {{"k", 104}});
    const auto r = trendCompare({a, b, c}, {});
    ASSERT_EQ(r.names.size(), 3u);
    ASSERT_EQ(r.rows[0].values.size(), 3u);
    EXPECT_DOUBLE_EQ(r.rows[0].values[1], 500.0);
    // The wild middle run doesn't matter: delta is first -> last.
    EXPECT_NEAR(r.rows[0].deltaPct, 4.0, 1e-9);
}

TEST(TrendWriters, MarkdownShape)
{
    const auto base = flat("base", {{"suite.cycles", 1000},
                                    {"energy.total", 50}});
    const auto cur = flat("cur", {{"suite.cycles", 1100},
                                  {"energy.total", 50}});
    TrendOptions gate;
    gate.gates = {"suite.cycles"};
    const auto bad = trendCompare({base, cur}, gate);
    const auto md = markdown(bad);
    EXPECT_NE(md.find("# mipsx-trend: base -> cur"), std::string::npos);
    EXPECT_NE(md.find("| `suite.cycles` (gated) |"), std::string::npos);
    EXPECT_NE(md.find("REGRESSED"), std::string::npos);

    const auto ok = trendCompare(
        {base, flat("cur", {{"suite.cycles", 1000}, {"energy.total", 50}})},
        gate);
    EXPECT_NE(markdown(ok).find("no gated regression"), std::string::npos);
    EXPECT_EQ(markdown(ok).find("REGRESSED"), std::string::npos);
}

TEST(TrendWriters, JsonShapeRoundTrips)
{
    const auto base = flat("base", {{"suite.cycles", 1000}});
    const auto cur = flat("cur", {{"suite.cycles", 1100}});
    TrendOptions gate;
    gate.gates = {"suite.cycles"};
    std::ostringstream os;
    writeTrendJson(os, trendCompare({base, cur}, gate));

    // The writer's output is valid JSON with the documented shape.
    const auto doc = Json::parse(os.str());
    EXPECT_EQ(doc.find("schema")->str(), "mipsx-trend-v1");
    EXPECT_EQ(doc.find("regressed")->boolean(), true);
    ASSERT_NE(doc.find("rows"), nullptr);
    EXPECT_EQ(doc.find("rows")->array().size(), 1u);
}
