/**
 * @file
 * The batch simulation service: request parsing, structured error
 * replies, per-job cycle caps and isolation, fast-forward edge
 * values, reply-stream determinism across worker counts, and metric
 * parity with a direct Machine run of the same program/config.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "reorg/scheduler.hh"
#include "serve/serve.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "workload/prepared.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::serve;

namespace
{

/** A two-instruction success. */
const char *kHaltProgram = "        .text\n"
                           "_start: add r1, r0, r0\n"
                           "        halt\n";

/** Spins forever: only the cycle cap can stop it. */
const char *kSpinProgram = "        .text\n"
                           "_start: add r1, r0, r0\n"
                           "loop:   beq r0, r0, loop\n";

/** Trips its own self-check trap. */
const char *kFailProgram = "        .text\n"
                           "_start: fail\n";

JobRequest
runReq(const std::string &id, const char *program)
{
    JobRequest req;
    req.op = Op::Run;
    req.id = id;
    req.program = program;
    return req;
}

// --- request parsing ----------------------------------------------------

TEST(ServeParse, AcceptsFullRunRequest)
{
    const auto req = parseJobRequest(
        "{\"op\":\"run\",\"id\":\"j1\",\"program\":\"halt\","
        "\"config\":{\"icache.fetchWords\":2,\"predecode\":true},"
        "\"max_cycles\":5000,\"fast_forward\":7}");
    EXPECT_EQ(req.op, Op::Run);
    EXPECT_EQ(req.id, "j1");
    EXPECT_EQ(req.program, "halt");
    ASSERT_EQ(req.config.size(), 2u);
    EXPECT_EQ(req.config[0].first, "icache.fetchWords");
    EXPECT_EQ(req.config[0].second, "2");
    EXPECT_EQ(req.config[1].second, "1"); // booleans canonicalize
    EXPECT_EQ(req.maxCycles, 5000u);
    EXPECT_EQ(req.fastForward, 7u);
}

TEST(ServeParse, NumericIdsAreEchoedAsStrings)
{
    EXPECT_EQ(parseJobRequest("{\"op\":\"ping\",\"id\":17}").id, "17");
}

TEST(ServeParse, RejectsMalformedRequests)
{
    // Not JSON at all.
    EXPECT_THROW(parseJobRequest("nope"), SimError);
    // An array, not an object.
    EXPECT_THROW(parseJobRequest("[1,2]"), SimError);
    // Missing op.
    EXPECT_THROW(parseJobRequest("{\"id\":\"x\"}"), SimError);
    // Unknown op.
    EXPECT_THROW(parseJobRequest("{\"op\":\"frobnicate\"}"), SimError);
    // Unknown key (strict: a typo must not silently change the job).
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"run\",\"program\":\"halt\","
                        "\"max_cycle\":5}"),
        SimError);
    // Zero or both sources.
    EXPECT_THROW(parseJobRequest("{\"op\":\"run\"}"), SimError);
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"run\",\"program\":\"halt\","
                        "\"workload\":\"fib\"}"),
        SimError);
    // Bad field types.
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"run\",\"program\":\"halt\","
                        "\"max_cycles\":\"many\"}"),
        SimError);
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"run\",\"program\":\"halt\","
                        "\"max_cycles\":-1}"),
        SimError);
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"run\",\"program\":\"halt\","
                        "\"config\":[1]}"),
        SimError);
    // Run-only keys on other ops.
    EXPECT_THROW(
        parseJobRequest("{\"op\":\"ping\",\"program\":\"halt\"}"),
        SimError);
}

// --- single-job execution ----------------------------------------------

TEST(ServeJob, InlineProgramRunsAndPasses)
{
    const JobOutcome out = runJob(runReq("a", kHaltProgram), {});
    ASSERT_TRUE(out.ok) << out.errorMessage;
    EXPECT_TRUE(out.passed);
    EXPECT_NE(out.resultJson.find("\"stop\":\"halt\""),
              std::string::npos);
    EXPECT_NE(out.resultJson.find("\"cpu0.pipeline.cycles\": "),
              std::string::npos);
}

TEST(ServeJob, CycleCapReturnsFailurePayloadNotError)
{
    JobRequest req = runReq("cap", kSpinProgram);
    req.maxCycles = 500;
    const JobOutcome out = runJob(req, {});
    ASSERT_TRUE(out.ok) << out.errorMessage;
    EXPECT_FALSE(out.passed);
    EXPECT_NE(out.resultJson.find("\"stop\":\"max-cycles\""),
              std::string::npos);
}

TEST(ServeJob, JobMayLowerButNotRaiseTheServerCap)
{
    ServeConfig config;
    config.maxCycles = 300;
    JobRequest req = runReq("cap", kSpinProgram);
    req.maxCycles = 100'000'000;
    const JobOutcome out = runJob(req, config);
    ASSERT_TRUE(out.ok);
    // The spin would run 100M cycles if the request could override
    // the server's cap; the reply must show the clamped budget.
    EXPECT_NE(out.resultJson.find("\"cycles\":3"), std::string::npos)
        << out.resultJson;
}

TEST(ServeJob, FailTrapIsAFailurePayload)
{
    const JobOutcome out = runJob(runReq("f", kFailProgram), {});
    ASSERT_TRUE(out.ok);
    EXPECT_FALSE(out.passed);
    EXPECT_NE(out.resultJson.find("\"stop\":\"fail\""),
              std::string::npos);
}

TEST(ServeJob, ToolchainErrorsAreStructured)
{
    const JobOutcome out =
        runJob(runReq("bad", "_start: frobnicate r1, r2\n"), {});
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.errorCode, "toolchain");
    EXPECT_FALSE(out.errorMessage.empty());
}

TEST(ServeJob, UnknownWorkloadAndBadConfigAreStructured)
{
    JobRequest req;
    req.op = Op::Run;
    req.workload = "no-such-workload";
    EXPECT_EQ(runJob(req, {}).errorCode, "request");

    JobRequest bad = runReq("c", kHaltProgram);
    bad.config.emplace_back("icache.lines", "7"); // not a power of two
    const JobOutcome out = runJob(bad, {});
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.errorCode, "config");
}

TEST(ServeJob, MissingFileIsIoError)
{
    JobRequest req;
    req.op = Op::Run;
    req.file = "/nonexistent/path.s";
    EXPECT_EQ(runJob(req, {}).errorCode, "io");
}

TEST(ServeJob, SuiteJobAggregates)
{
    JobRequest req;
    req.op = Op::Suite;
    req.suite = "fp";
    const JobOutcome out = runJob(req, {});
    ASSERT_TRUE(out.ok) << out.errorMessage;
    EXPECT_TRUE(out.passed);
    EXPECT_NE(out.resultJson.find("\"failures\":0"),
              std::string::npos);
    EXPECT_NE(out.resultJson.find("\"suite.cpi\": "),
              std::string::npos);
}

// --- fast-forward edges -------------------------------------------------

TEST(ServeJob, FastForwardZeroIsIdenticalToNoFastForward)
{
    JobRequest plain = runReq("p", kHaltProgram);
    JobRequest ffZero = runReq("p", kHaltProgram);
    ffZero.fastForward = 0;
    EXPECT_EQ(runJob(plain, {}).resultJson,
              runJob(ffZero, {}).resultJson);
}

TEST(ServeJob, FastForwardPastEndOfProgramStillPasses)
{
    JobRequest req = runReq("ff", kHaltProgram);
    req.fastForward = 1'000'000; // far past the program's ~2 steps
    const JobOutcome out = runJob(req, {});
    ASSERT_TRUE(out.ok) << out.errorMessage;
    EXPECT_TRUE(out.passed);
    // The ISS ran to the halt; the pipeline re-executes it, so the
    // reply reports the fast-forward phase and a tiny pipeline run.
    EXPECT_NE(out.resultJson.find("\"fast_forward_steps\":"),
              std::string::npos);
    EXPECT_NE(out.resultJson.find("\"stop\":\"halt\""),
              std::string::npos);
}

// --- metric parity with a direct run -----------------------------------

TEST(ServeJob, MetricsMatchADirectMachineRun)
{
    // The same config mipsx-run uses for examples/asm/*.s runs.
    const auto prog =
        assembler::assemble(kHaltProgram, "inline.s");
    sim::MachineConfig cfg;
    cfg.attachCounterCop = true;
    sim::Machine machine(cfg);
    reorg::ReorgStats st;
    const auto scheduled = reorg::reorganize(prog, {}, &st);
    machine.load(scheduled);
    const auto result = machine.run();
    ASSERT_TRUE(result.halted());

    const JobOutcome out = runJob(runReq("m", kHaltProgram), {});
    ASSERT_TRUE(out.ok);
    const std::string cycles = strformat(
        "\"cpu0.pipeline.cycles\": %llu",
        static_cast<unsigned long long>(machine.cpu().stats().cycles));
    const std::string instrs =
        strformat("\"cpu0.pipeline.instructions\": %llu",
                  static_cast<unsigned long long>(
                      machine.cpu().stats().committed));
    EXPECT_NE(out.resultJson.find(cycles), std::string::npos)
        << out.resultJson;
    EXPECT_NE(out.resultJson.find(instrs), std::string::npos)
        << out.resultJson;
}

// --- the server: queueing, isolation, determinism ----------------------

std::string
runBatch(const std::string &batch, unsigned workers)
{
    std::istringstream in(batch);
    std::ostringstream out;
    ServeConfig config;
    config.workers = workers;
    EXPECT_EQ(runStdioServer(in, out, config), 0);
    return out.str();
}

TEST(ServeServer, BadJobDoesNotAffectLaterJobs)
{
    const std::string batch =
        "{\"op\":\"run\",\"id\":\"spin\",\"program\":\"_start: beq "
        "r0, r0, _start\\n\",\"max_cycles\":200}\n"
        "this line is not json\n"
        "{\"op\":\"run\",\"id\":\"after\",\"program\":\"_start: "
        "halt\\n\"}\n";
    const std::string replies = runBatch(batch, 2);
    std::istringstream lines(replies);
    std::string l0, l1, l2;
    ASSERT_TRUE(std::getline(lines, l0));
    ASSERT_TRUE(std::getline(lines, l1));
    ASSERT_TRUE(std::getline(lines, l2));
    // Submission order is reply order.
    EXPECT_NE(l0.find("\"id\":\"spin\""), std::string::npos);
    EXPECT_NE(l0.find("\"stop\":\"max-cycles\""), std::string::npos);
    EXPECT_NE(l1.find("\"code\":\"parse\""), std::string::npos);
    EXPECT_NE(l1.find("\"id\":null"), std::string::npos);
    EXPECT_NE(l2.find("\"id\":\"after\""), std::string::npos);
    EXPECT_NE(l2.find("\"passed\":true"), std::string::npos);
}

TEST(ServeServer, ShutdownRepliesLastAfterDraining)
{
    const std::string batch =
        "{\"op\":\"run\",\"id\":\"j\",\"program\":\"_start: "
        "halt\\n\"}\n"
        "{\"op\":\"shutdown\",\"id\":\"bye\"}\n"
        "{\"op\":\"run\",\"id\":\"ignored\",\"program\":\"_start: "
        "halt\\n\"}\n";
    const std::string replies = runBatch(batch, 2);
    std::istringstream lines(replies);
    std::string l0, l1, extra;
    ASSERT_TRUE(std::getline(lines, l0));
    ASSERT_TRUE(std::getline(lines, l1));
    EXPECT_FALSE(std::getline(lines, extra)) << extra;
    EXPECT_NE(l0.find("\"id\":\"j\""), std::string::npos);
    EXPECT_NE(l1.find("\"shutdown\":true"), std::string::npos);
}

TEST(ServeServer, ReplyStreamIsByteIdenticalAcrossWorkerCounts)
{
    std::string batch;
    for (int i = 0; i < 12; ++i) {
        batch += strformat(
            "{\"op\":\"run\",\"id\":\"j%d\",\"program\":\"_start: "
            "add r1, r0, r0\\n        halt\\n\"}\n",
            i);
        if (i % 3 == 0)
            batch += strformat("{\"op\":\"ping\",\"id\":\"p%d\"}\n", i);
    }
    batch += "{\"op\":\"run\",\"id\":\"w\",\"workload\":\"fib\"}\n";
    batch += "{\"op\":\"suite\",\"id\":\"s\",\"suite\":\"fp\"}\n";
    const std::string one = runBatch(batch, 1);
    const std::string four = runBatch(batch, 4);
    EXPECT_EQ(one, four);
    EXPECT_FALSE(one.empty());
}

TEST(ServeServer, StatsCountersAddUp)
{
    ServeConfig config;
    config.workers = 2;
    Server server(config);
    for (int i = 0; i < 6; ++i)
        server.submit(runReq(strformat("j%d", i), kHaltProgram), {});
    JobRequest bad = runReq("bad", "_start: bogus\n");
    server.submit(std::move(bad), {});
    JobRequest spin = runReq("spin", kSpinProgram);
    spin.maxCycles = 200;
    server.submit(std::move(spin), {});
    server.drain();

    const ServeStats st = server.stats();
    EXPECT_EQ(st.submitted, 8u);
    EXPECT_EQ(st.completed, 8u);
    EXPECT_EQ(st.errors, 1u);
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.queueDepth, 0u);
    EXPECT_GE(st.queuePeak, 1u);
    // Six identical programs share one PreparedCache entry.
    EXPECT_GE(st.cacheHits, 5u);
    EXPECT_LE(st.p50Ms, st.p99Ms);
    EXPECT_LE(st.p99Ms, st.maxMs);

    trace::MetricsRegistry m;
    collectMetrics(st, m);
    EXPECT_EQ(m.get("serve.completed"), 8.0);
    EXPECT_EQ(m.get("serve.errors"), 1.0);
}

TEST(ServeServer, JobsAreIsolated)
{
    // A self-modifying or failing job must not contaminate a
    // concurrent identical-source job: COW snapshots isolate decode
    // pages, fresh Machines isolate memory.
    ServeConfig config;
    config.workers = 4;
    Server server(config);
    std::mutex mu;
    std::vector<std::pair<std::string, bool>> done;
    for (int i = 0; i < 16; ++i) {
        const bool spin = i % 2;
        JobRequest req =
            runReq(strformat("j%d", i), spin ? kSpinProgram
                                             : kHaltProgram);
        if (spin)
            req.maxCycles = 300;
        server.submit(std::move(req),
                      [&mu, &done, spin](std::uint64_t,
                                         const JobOutcome &o) {
                          const std::lock_guard<std::mutex> lock(mu);
                          done.emplace_back(o.resultJson, spin);
                      });
    }
    server.drain();
    ASSERT_EQ(done.size(), 16u);
    for (const auto &[json, spin] : done) {
        if (spin)
            EXPECT_NE(json.find("\"stop\":\"max-cycles\""),
                      std::string::npos);
        else
            EXPECT_NE(json.find("\"passed\":true"),
                      std::string::npos);
    }
}

TEST(ServeFormat, JsonQuoteEscapesControlCharacters)
{
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(jsonQuote(std::string("a\x01z", 3)), "\"a\\u0001z\"");
}

} // namespace
