/**
 * @file
 * The parallel interval engine's one non-negotiable property is
 * determinism: with a full warm-up the stitched counters must equal the
 * monolithic run's bit for bit on every suite program, and the whole
 * result must be byte-identical at any jobs count. The rest of the file
 * covers the engine's edges — runs too short to split, boundary hints
 * that are wildly wrong, commit cuts landing in branch delay slots,
 * self-modifying text crossing a checkpoint, non-halting plans — plus
 * the Machine-level warm-up gate and retire cut the engine is built on,
 * and the scaled workloads' self-checks and dynamic-size hints.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/grid.hh"
#include "sim/interval.hh"
#include "trace/metrics.hh"
#include "workload/prepared.hh"
#include "workload/suite_runner.hh"
#include "workload/wl_util.hh"
#include "workload/workload.hh"

#include "helpers.hh"

using namespace mipsx;

namespace
{

struct Mono
{
    workload::PreparedPtr prep;
    core::RunResult result;
    sim::MachineCounters counters;
    std::uint64_t committed = 0;
};

/** Monolithic reference run of a prepared workload. */
Mono
runMono(const workload::Workload &w, const sim::MachineConfig &cfg = {})
{
    Mono r;
    r.prep = workload::prepareWorkload(w, {}, false);
    sim::Machine m(cfg);
    m.load(r.prep->image, &r.prep->decoded);
    r.result = m.run();
    r.counters = m.counters();
    r.committed = m.cpu().stats().committed;
    return r;
}

sim::IntervalResult
runIv(const Mono &mono, const sim::MachineConfig &cfg,
      const sim::IntervalConfig &ic)
{
    return sim::runIntervals(mono.prep->image, cfg, ic,
                             &mono.prep->decoded);
}

/** A full warm-up: every piece replays from instruction 0. */
constexpr std::uint64_t fullWarmup = 1ull << 40;

} // namespace

TEST(MachineGate, WarmupBaselineAndSteadyCounters)
{
    const char *src = R"(
_start: addi r2, r0, 0
        addi r3, r0, 50
loop:   addi r2, r2, 1
        addi r3, r3, -1
        bnz  r3, loop
        nop
        nop
        halt
)";
    sim::MachineConfig cfg;
    cfg.warmupInstructions = 40;
    auto r = test::runPipeline(src, cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    ASSERT_TRUE(r.machine->warmup().ran);
    const auto &base = r.machine->warmup().baseline;
    EXPECT_EQ(base.pipeline.committed, 40u);
    const auto steady = r.machine->steadyCounters();
    EXPECT_EQ(steady.pipeline.committed,
              r.machine->cpu().stats().committed - 40);
    // steady + baseline == totals, field for field.
    auto sum = base;
    sim::accumulateCounters(sum, steady);
    EXPECT_EQ(sum, r.machine->counters());
}

TEST(MachineGate, CommitLimitCutsAtExactRetireCount)
{
    const char *src = R"(
_start: addi r3, r0, 1000
loop:   addi r3, r3, -1
        bnz  r3, loop
        nop
        nop
        halt
)";
    sim::MachineConfig cfg;
    cfg.maxCommitted = 123;
    auto r = test::runPipeline(src, cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::CommitLimit);
    EXPECT_EQ(r.machine->cpu().stats().committed, 123u);
    // The CPU was paused, not stopped: the machine can keep stepping.
    EXPECT_FALSE(r.machine->cpu().stopped());
}

TEST(MachineGate, RunHaltingInsideWarmupReturnsCleanly)
{
    const char *src = R"(
_start: addi r2, r0, 7
        halt
)";
    sim::MachineConfig cfg;
    cfg.warmupInstructions = 1000;
    auto r = test::runPipeline(src, cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_TRUE(r.machine->warmup().ran);
    EXPECT_EQ(r.machine->steadyCounters().pipeline.committed, 0u);
}

TEST(Interval, FullWarmupIsBitIdenticalAcrossSuite)
{
    // The telescoping identity: with every checkpoint at instruction 0,
    // each piece replays a prefix of the monolithic run, so baseline
    // and cut snapshots land at identical points of the identical step
    // sequence and the stitched sums equal the monolithic totals — for
    // every counter, on every suite program.
    for (const auto &w : workload::fullSuite()) {
        SCOPED_TRACE(w.name);
        const Mono mono = runMono(w);
        ASSERT_EQ(mono.result.reason, core::StopReason::Halt);

        sim::IntervalConfig ic;
        ic.intervals = 4;
        ic.warmup = fullWarmup;
        ic.jobs = 2;
        const auto r = runIv(mono, {}, ic);
        ASSERT_TRUE(r.intervalRan) << r.fallback;
        EXPECT_TRUE(r.exact);
        EXPECT_TRUE(r.passed);
        EXPECT_EQ(r.stitched, mono.counters);
        EXPECT_EQ(r.estimated, mono.counters);
        EXPECT_EQ(r.result.cycles, mono.result.cycles);
        EXPECT_EQ(r.planInstructions, mono.committed);
    }
}

TEST(Interval, ResultIsByteIdenticalAcrossJobsCounts)
{
    // Exact mode and sampled mode, jobs 1 vs 2 vs 8: the plan is
    // serial, workers own distinct result slots, and the stitch walks
    // them in interval order — the jobs knob must change nothing.
    const auto w =
        workload::scaledPointerChase("chase_jobs", 1u << 12, 20000, 42);
    const Mono mono = runMono(w);
    ASSERT_EQ(mono.result.reason, core::StopReason::Halt);

    for (const std::uint64_t sample : {std::uint64_t{0},
                                       std::uint64_t{1500}}) {
        SCOPED_TRACE(sample ? "sampled" : "exact");
        sim::IntervalConfig ic;
        ic.intervals = 6;
        ic.warmup = 800;
        ic.sample = sample;
        ic.jobs = 1;
        const auto r1 = runIv(mono, {}, ic);
        ic.jobs = 2;
        const auto r2 = runIv(mono, {}, ic);
        ic.jobs = 8;
        const auto r8 = runIv(mono, {}, ic);
        ASSERT_TRUE(r1.intervalRan) << r1.fallback;
        EXPECT_TRUE(r1.passed);
        EXPECT_EQ(r1.pieces, r2.pieces);
        EXPECT_EQ(r1.pieces, r8.pieces);
        EXPECT_EQ(r1.stitched, r2.stitched);
        EXPECT_EQ(r1.stitched, r8.stitched);
        EXPECT_EQ(r1.estimated, r2.estimated);
        EXPECT_EQ(r1.estimated, r8.estimated);
        EXPECT_EQ(r1.result.cycles, r8.result.cycles);
    }
}

TEST(Interval, TooShortARunFallsBackToMonolithic)
{
    workload::Workload w;
    w.name = "tiny";
    w.source = R"(
        .data
result: .space 1
exp:    .word 3
        .text
_start: addi r2, r0, 3
        st   r2, result
)" + workload::checkRegion("result", "exp", 1);
    const Mono mono = runMono(w);
    sim::IntervalConfig ic;
    ic.intervals = 16;
    const auto r = runIv(mono, {}, ic);
    EXPECT_FALSE(r.intervalRan);
    EXPECT_FALSE(r.fallback.empty());
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.stitched, mono.counters);
    EXPECT_EQ(r.result.cycles, mono.result.cycles);
}

TEST(Interval, WildSizeHintsOnlySkewIntervalSizes)
{
    const auto w = workload::bigCodeWorkloads().front();
    const Mono mono = runMono(w);
    ASSERT_EQ(mono.result.reason, core::StopReason::Halt);

    // 100x too large: every boundary past the halt is planned away and
    // the one surviving piece still tiles the run. 10x too small: the
    // final piece absorbs the unplanned tail. Both stay exact.
    for (const std::uint64_t hint :
         {mono.committed * 100, mono.committed / 10}) {
        SCOPED_TRACE(hint);
        sim::IntervalConfig ic;
        ic.intervals = 4;
        ic.warmup = fullWarmup;
        ic.totalHint = hint;
        const auto r = runIv(mono, {}, ic);
        ASSERT_TRUE(r.intervalRan) << r.fallback;
        EXPECT_TRUE(r.exact);
        EXPECT_EQ(r.stitched, mono.counters);
        EXPECT_EQ(r.planInstructions, mono.committed);
    }
}

TEST(Interval, CutsLandingInDelaySlotsStillTile)
{
    // A branch every third instruction: once the reorganizer lays this
    // out for the pipeline, 7 intervals over ~800 dynamic instructions
    // put several commit cuts on branches and inside their delay
    // slots. The cut is a retire count, not a fetch boundary, so
    // tiling must be unaffected.
    const char *src = R"(
        .data
result: .space 1
exp:    .word 201
        .text
_start: addi r2, r0, 0
        addi r3, r0, 200
loop:   addi r2, r2, 1
        addi r3, r3, -1
        bnz  r3, loop
        addi r2, r2, 1
        st   r2, result
)";
    workload::Workload w;
    w.name = "branchy";
    w.source = std::string(src) + workload::checkRegion("result", "exp", 1);
    const Mono mono = runMono(w);
    ASSERT_EQ(mono.result.reason, core::StopReason::Halt);

    sim::IntervalConfig ic;
    ic.intervals = 7;
    ic.warmup = fullWarmup;
    const auto r = runIv(mono, {}, ic);
    ASSERT_TRUE(r.intervalRan) << r.fallback;
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.stitched, mono.counters);
}

TEST(Interval, SelfModifyingTextCrossesCheckpointsSafely)
{
    // Delayed-semantics self-modifying program (from the prepared-cache
    // tests): a checkpoint's memory clone carries the patched words but
    // drops every derived decode, so each piece re-decodes what the
    // text really says at its handoff.
    const char *src = R"(
        .data
ptrs:   .word patch, donor
        .text
_start: addi r10, r0, 0
        addi r9, r0, 2
        la   r1, ptrs
        ld   r2, 0(r1)
        ld   r3, 1(r1)
        nop
        ld   r4, 0(r3)
loop:
patch:  addi r10, r10, 1
        st   r4, 0(r2)
        nop
        nop
        nop
        nop
        addi r9, r9, -1
        bnz  r9, loop
        nop
        nop
        addi r11, r0, 6
        beq  r10, r11, ok
        nop
        nop
        fail
ok:     halt
donor:  addi r10, r10, 5
)";
    const auto prog = test::asmOrDie(src);
    sim::Machine m{sim::MachineConfig{}};
    m.load(prog);
    const auto monoRes = m.run();
    ASSERT_EQ(monoRes.reason, core::StopReason::Halt);
    const auto monoCounters = m.counters();

    sim::IntervalConfig ic;
    ic.intervals = 2;
    ic.warmup = fullWarmup;
    const auto r = sim::runIntervals(prog, {}, ic);
    ASSERT_TRUE(r.intervalRan) << r.fallback;
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.stitched, monoCounters);

    // Partial warm-up: the second piece seeds from mid-loop state —
    // patched or not per the architectural truth at that instruction —
    // and the self-check still reaches halt.
    sim::IntervalConfig part;
    part.intervals = 2;
    part.warmup = 4;
    const auto rp = sim::runIntervals(prog, {}, part);
    ASSERT_TRUE(rp.intervalRan) << rp.fallback;
    EXPECT_TRUE(rp.passed);
    EXPECT_EQ(rp.planInstructions, m.cpu().stats().committed);
}

TEST(Interval, NonHaltingPlanFallsBackToMonolithic)
{
    const char *src = R"(
_start: addi r2, r0, 1
loop:   addi r2, r2, 1
        b    loop
        nop
)";
    const auto prog = test::asmOrDie(src);
    sim::MachineConfig cfg;
    cfg.cpu.maxCycles = 20000;
    sim::Machine m(cfg);
    m.load(prog);
    const auto monoRes = m.run();
    ASSERT_EQ(monoRes.reason, core::StopReason::MaxCycles);

    sim::IntervalConfig ic;
    ic.intervals = 4;
    const auto r = sim::runIntervals(prog, cfg, ic);
    EXPECT_FALSE(r.intervalRan);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.result.reason, monoRes.reason);
}

TEST(Interval, MetricsExportIsPrefixedAndDeterministic)
{
    const auto w = workload::bigCodeWorkloads().front();
    const Mono mono = runMono(w);
    sim::IntervalConfig ic;
    ic.intervals = 4;
    ic.warmup = fullWarmup;
    const auto r = runIv(mono, {}, ic);
    ASSERT_TRUE(r.intervalRan) << r.fallback;

    trace::MetricsRegistry m;
    sim::collectMetrics(r, m);
    EXPECT_EQ(m.get("interval.exact"), 1.0);
    EXPECT_EQ(m.get("interval.passed"), 1.0);
    EXPECT_EQ(m.get("interval.cycles"),
              static_cast<double>(mono.result.cycles));
    EXPECT_EQ(m.get("interval.committed"),
              static_cast<double>(mono.committed));
    EXPECT_EQ(m.get("interval.est_cycles"),
              static_cast<double>(mono.result.cycles));
}

TEST(Scaled, WorkloadsSelfCheckAndEstimateTheirSize)
{
    for (const auto &w : workload::scaledWorkloads()) {
        SCOPED_TRACE(w.name);
        ASSERT_GT(w.dynamicEstimate, 1'000'000u);
        const auto prep = workload::prepareWorkload(w, {}, false);
        memory::MainMemory mem;
        sim::IssConfig ic;
        ic.mode = sim::IssMode::Delayed;
        ic.exec = sim::IssExec::Block;
        const auto r = sim::runIss(prep->image, mem, ic);
        EXPECT_EQ(r.reason, sim::IssStop::Halt);
        // The hint guides interval placement only, but a hint off by
        // more than ~25% means a generator's loop math went stale.
        const double ratio = static_cast<double>(w.dynamicEstimate) /
            static_cast<double>(r.stats.steps);
        EXPECT_GT(ratio, 0.75) << r.stats.steps;
        EXPECT_LT(ratio, 1.25) << r.stats.steps;
    }
}

TEST(Scaled, SampledIntervalsEstimateWithinTolerance)
{
    // The acceptance-style check at test scale: a read-modify-write
    // sweep whose footprint is 8x the (shrunk) e-cache, so the
    // monolithic steady state misses as hard as a cold sampled window
    // does, and whose stores dirty every touched line, so a short
    // warm-up reproduces the steady state's write-back traffic too.
    // The phase hint keeps the init loop's timing out of the sweep
    // intervals' extrapolation. bench_bigwork runs the full-size
    // version of this configuration against the 1%-error acceptance
    // bar; at this scale the bound is a little looser.
    const auto w = workload::scaledLoopNest("loopnest_sampled",
                                            1u << 15, 8, 9);
    sim::MachineConfig mc;
    mc.cpu.ecache.sizeWords = 4096;
    const Mono mono = runMono(w, mc);
    ASSERT_EQ(mono.result.reason, core::StopReason::Halt);

    sim::IntervalConfig ic;
    ic.intervals = 12;
    ic.warmup = 12000;
    ic.sample = 16000;
    ic.jobs = 2;
    ic.totalHint = w.dynamicEstimate;
    ic.phases = w.dynamicPhases;
    const auto r = runIv(mono, mc, ic);
    ASSERT_TRUE(r.intervalRan) << r.fallback;
    EXPECT_TRUE(r.passed);
    EXPECT_FALSE(r.exact);

    const double cycErr =
        (static_cast<double>(r.estimated.pipeline.cycles) -
         static_cast<double>(mono.result.cycles)) /
        static_cast<double>(mono.result.cycles);
    EXPECT_LT(std::abs(cycErr), 0.05) << r.estimated.pipeline.cycles;
    const double instErr =
        (static_cast<double>(r.estimated.pipeline.committed) -
         static_cast<double>(mono.committed)) /
        static_cast<double>(mono.committed);
    EXPECT_LT(std::abs(instErr), 0.01) << r.estimated.pipeline.committed;
}

TEST(SuiteWiring, IntervalRouteMatchesPlainSuiteStats)
{
    // machine.intervals > 1 routes the suite runner through the
    // interval engine; with a full warm-up the aggregate must equal
    // the plain runner's bit for bit, with the replayed prefixes
    // accounted under the separate warmup fields.
    const auto ws = workload::pascalWorkloads();
    workload::SuiteRunOptions plain;
    const auto a = workload::runSuite(ws, plain);
    ASSERT_EQ(a.stats.failures, 0u);
    EXPECT_EQ(a.stats.warmupInstructions, 0u);

    workload::SuiteRunOptions iv;
    iv.machine.intervals = 3;
    iv.machine.warmupInstructions = fullWarmup;
    auto b = workload::runSuite(ws, iv);
    EXPECT_EQ(b.stats.failures, 0u);
    EXPECT_GT(b.stats.warmupInstructions, 0u);
    EXPECT_GT(b.stats.warmupCycles, 0u);
    b.stats.warmupInstructions = 0;
    b.stats.warmupCycles = 0;
    EXPECT_EQ(a.stats, b.stats);
}

TEST(SuiteWiring, WarmupGateMovesCountersToWarmupKeys)
{
    // A plain (monolithic) run with a warm-up gate: the headline
    // counters shrink by exactly what the warmup fields pick up.
    const std::vector<workload::Workload> ws = {
        workload::pascalWorkloads().at(0)};
    workload::SuiteRunOptions plain;
    const auto a = workload::runSuite(ws, plain);
    ASSERT_EQ(a.stats.failures, 0u);

    workload::SuiteRunOptions gated;
    gated.machine.warmupInstructions = 100;
    const auto b = workload::runSuite(ws, gated);
    ASSERT_EQ(b.stats.failures, 0u);
    EXPECT_EQ(b.stats.warmupInstructions, 100u);
    EXPECT_GT(b.stats.warmupCycles, 0u);
    EXPECT_EQ(b.stats.committed + b.stats.warmupInstructions,
              a.stats.committed);
    EXPECT_EQ(b.stats.cycles + b.stats.warmupCycles, a.stats.cycles);

    trace::MetricsRegistry m;
    workload::collectMetrics(b.stats, m);
    EXPECT_EQ(m.get("suite.warmup.instructions"), 100.0);
    EXPECT_GT(m.get("suite.warmup.cycles"), 0.0);
}

TEST(SuiteWiring, MpRouteRunsEveryCpuAndAggregates)
{
    // mp.machines > 1: every CPU executes the same self-checking
    // program in lockstep over *shared* data — the CPUs race on the
    // workload's arrays (coherently and deterministically), so the
    // aggregate instruction count grows with the CPU count without
    // scaling exactly. What must hold: everyone still self-checks
    // clean, `cycles` stays the global count, and the whole aggregate
    // reproduces bit for bit run over run.
    const std::vector<workload::Workload> ws = {
        workload::pascalWorkloads().at(0)};
    workload::SuiteRunOptions plain;
    const auto a = workload::runSuite(ws, plain);
    ASSERT_EQ(a.stats.failures, 0u);

    workload::SuiteRunOptions mp;
    mp.mpMachines = 2;
    const auto b = workload::runSuite(ws, mp);
    ASSERT_EQ(b.stats.failures, 0u);
    EXPECT_GT(b.stats.committed, a.stats.committed);
    EXPECT_GE(b.stats.cycles, a.stats.cycles);
    const auto c = workload::runSuite(ws, mp);
    EXPECT_EQ(b.stats, c.stats);
}

TEST(SuiteWiring, ExploreParamsBindIntervalAndMpKnobs)
{
    workload::SuiteRunOptions o;
    explore::applyParam(o, "machine.intervals", "8");
    explore::applyParam(o, "machine.warmup", "12000");
    explore::applyParam(o, "machine.sample", "16000");
    explore::applyParam(o, "mp.machines", "4");
    explore::applyParam(o, "mp.stackSpacing", "4096");
    EXPECT_EQ(o.machine.intervals, 8u);
    EXPECT_EQ(o.machine.warmupInstructions, 12000u);
    EXPECT_EQ(o.machine.sampleWindow, 16000u);
    EXPECT_EQ(o.mpMachines, 4u);
    EXPECT_EQ(o.mpStackSpacing, 4096u);
    EXPECT_TRUE(explore::isKnownParam("machine.intervals"));
    EXPECT_TRUE(explore::isKnownParam("mp.machines"));
}
