/**
 * @file
 * Shared-memory multiprocessor tests: the bus arbiter, snooping
 * invalidation, the lockstep machine, and the parallel workloads across
 * CPU counts (including the paper's 6-10 target).
 */

#include <gtest/gtest.h>

#include "common/sim_error.hh"

#include "helpers.hh"
#include "memory/bus.hh"
#include "mp/multi_machine.hh"
#include "reorg/scheduler.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;

TEST(BusArbiter, SerializesOverlappingTransactions)
{
    memory::BusArbiter bus;
    EXPECT_EQ(bus.acquire(100, 10), 0u);  // bus free
    EXPECT_EQ(bus.acquire(105, 10), 5u);  // must wait until 110
    EXPECT_EQ(bus.acquire(200, 10), 0u);  // free again
    EXPECT_EQ(bus.transactions(), 3u);
    EXPECT_EQ(bus.waitCycles(), 5u);
    EXPECT_EQ(bus.busyCycles(), 30u);
}

TEST(CoherenceHub, InvalidatesOtherCaches)
{
    memory::ECache a, b;
    memory::CoherenceHub hub;
    hub.attach(&a);
    hub.attach(&b);
    a.access(100, false);
    b.access(100, false);
    EXPECT_TRUE(b.access(100, false).hit);
    hub.writeBroadcast(&a, 100); // a stores; b must drop the line
    EXPECT_FALSE(b.access(100, false).hit);
    EXPECT_TRUE(a.access(100, false).hit); // writer keeps its copy
    EXPECT_EQ(hub.invalidations(), 1u);
    EXPECT_EQ(b.invalidationsReceived(), 1u);
}

TEST(MultiMachine, SingleCpuMatchesMachine)
{
    // A uniprocessor MultiMachine must agree with the plain Machine.
    const auto w = workload::pascalWorkloads().front();
    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    sim::Machine single{sim::MachineConfig{}};
    single.load(sched);
    const auto r1 = single.run();

    mp::MultiMachineConfig mc;
    mc.cpus = 1;
    mp::MultiMachine multi(mc);
    multi.load(sched);
    const auto r2 = multi.run();

    ASSERT_TRUE(r1.halted());
    ASSERT_TRUE(r2.allHalted);
    EXPECT_EQ(r2.instructions, r1.instructions);
    // Cycle counts may differ slightly: the multiprocessor routes every
    // main-memory access through the bus arbiter.
    EXPECT_NEAR(double(r2.cycles), double(r1.cycles),
                0.02 * double(r1.cycles));
}

class ParallelWorkloads
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{};

TEST_P(ParallelWorkloads, CorrectAcrossCpuCounts)
{
    const auto ws = workload::parallelWorkloads();
    const auto &w = ws.at(static_cast<std::size_t>(
        std::get<0>(GetParam())));
    const unsigned cpus = std::get<1>(GetParam());

    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    mp::MultiMachineConfig mc;
    mc.cpus = cpus;
    mp::MultiMachine machine(mc);
    machine.load(sched);
    const auto r = machine.run();

    EXPECT_TRUE(r.allHalted) << w.name << " on " << cpus << " cpus";
    EXPECT_EQ(machine.readWord(AddressSpace::User,
                               sched.symbol("total")),
              machine.readWord(AddressSpace::User, sched.symbol("exp")))
        << w.name << " on " << cpus << " cpus";
    if (cpus > 1) {
        EXPECT_GT(r.invalidations, 0u) << "snooping must have fired";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelWorkloads,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1u, 2u, 3u, 4u, 8u, 10u)),
    [](const ::testing::TestParamInfo<std::tuple<int, unsigned>> &info) {
        return strformat("w%d_cpus%u", std::get<0>(info.param),
                         std::get<1>(info.param));
    });

TEST(MultiMachine, ParallelismActuallyHelps)
{
    const auto w = workload::parallelWorkloads().at(1); // compute-bound
    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    auto cyclesFor = [&sched](unsigned cpus) {
        mp::MultiMachineConfig mc;
        mc.cpus = cpus;
        mp::MultiMachine machine(mc);
        machine.load(sched);
        const auto r = machine.run();
        EXPECT_TRUE(r.allHalted);
        return r.cycles;
    };
    const auto c1 = cyclesFor(1);
    const auto c4 = cyclesFor(4);
    const auto c8 = cyclesFor(8);
    EXPECT_LT(double(c4), 0.4 * double(c1)); // >2.5x on 4 CPUs
    EXPECT_LT(c8, c4);
}

TEST(MultiMachine, BusContentionGrowsWithCpus)
{
    const auto w = workload::parallelWorkloads().at(0); // memory-bound
    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    auto waitFor = [&sched](unsigned cpus) {
        mp::MultiMachineConfig mc;
        mc.cpus = cpus;
        mp::MultiMachine machine(mc);
        machine.load(sched);
        const auto r = machine.run();
        EXPECT_TRUE(r.allHalted);
        return r.busWaitCycles;
    };
    EXPECT_GT(waitFor(8), waitFor(2));
}
