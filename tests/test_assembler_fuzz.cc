/**
 * @file
 * Assembler robustness fuzzing: arbitrary byte soup and mutated valid
 * programs must either assemble or raise SimError with a location —
 * never crash, hang or silently mis-assemble.
 */

#include <random>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "workload/workload.hh"

using namespace mipsx;

namespace
{

/** Assemble and classify the outcome. */
enum class Outcome { Ok, Diagnosed };

Outcome
tryAssemble(const std::string &src)
{
    try {
        const auto p = assembler::assemble(src, "fuzz.s");
        (void)p;
        return Outcome::Ok;
    } catch (const SimError &e) {
        // Diagnostics must carry the file name (and thus a location).
        EXPECT_NE(std::string(e.what()).find("fuzz.s"),
                  std::string::npos)
            << e.what();
        return Outcome::Diagnosed;
    }
}

} // namespace

class AssemblerFuzz : public ::testing::TestWithParam<unsigned>
{};

TEST_P(AssemblerFuzz, RandomTokenSoupNeverCrashes)
{
    std::mt19937 rng(GetParam());
    static const char *words[] = {
        "add",  "ld",   "st",   "beq",  "jmp",  "jal",  "trap", "li",
        "r1",   "r31",  "r99",  "sp",   "ra",   "f2",   "c3",   "md",
        "psw",  ".text", ".data", ".word", ".space", ".equ", ".org",
        "label", "0x10", "42",  "-7",   "65536", ",",   "(",    ")",
        ":",    "+",    "-",    "nop",  "halt", "movfrs", "mstep",
    };
    for (int trial = 0; trial < 300; ++trial) {
        std::string src;
        const int lines = 1 + static_cast<int>(rng() % 8);
        for (int l = 0; l < lines; ++l) {
            const int toks = static_cast<int>(rng() % 6);
            for (int t = 0; t < toks; ++t) {
                src += words[rng() % (sizeof(words) / sizeof(*words))];
                src += rng() % 4 ? " " : "";
            }
            src += "\n";
        }
        tryAssemble(src); // must not crash or hang
    }
}

TEST_P(AssemblerFuzz, MutatedValidProgramsAreHandled)
{
    // Take a real workload source and flip characters; every mutation
    // must assemble cleanly or be diagnosed.
    const auto base = workload::pascalWorkloads().front().source;
    std::mt19937 rng(GetParam() * 31 + 7);
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ,():.+-#;\n";
    for (int trial = 0; trial < 120; ++trial) {
        std::string src = base;
        const int flips = 1 + static_cast<int>(rng() % 4);
        for (int f = 0; f < flips; ++f) {
            const auto pos = rng() % src.size();
            src[pos] = alphabet[rng() % (sizeof(alphabet) - 1)];
        }
        tryAssemble(src);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Values(5u, 55u, 555u));
