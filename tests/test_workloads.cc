/**
 * @file
 * Workload-suite tests: every benchmark self-checks on the sequential
 * ISS, and its reorganized form self-checks on the delayed ISS and the
 * cycle-accurate pipeline (with hazard detection on). Also validates the
 * CISC reference twins and the synthetic trace generator.
 */

#include <set>

#include <gtest/gtest.h>

#include "helpers.hh"
#include "reorg/scheduler.hh"
#include "workload/cisc_ref.hh"
#include "workload/trace_gen.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;
using namespace mipsx::workload;

class WorkloadSuite : public ::testing::TestWithParam<Workload>
{};

TEST_P(WorkloadSuite, PassesOnSequentialIss)
{
    const auto &w = GetParam();
    const auto p = asmOrDie(w.source);
    auto r = runSequential(p);
    EXPECT_EQ(r.reason, sim::IssStop::Halt) << w.name;
}

TEST_P(WorkloadSuite, PassesReorganizedOnDelayedIss)
{
    const auto &w = GetParam();
    const auto p = asmOrDie(w.source);
    for (const auto scheme :
         {reorg::BranchScheme::NoSquash,
          reorg::BranchScheme::AlwaysSquash,
          reorg::BranchScheme::SquashOptional}) {
        reorg::ReorgConfig cfg;
        cfg.scheme = scheme;
        cfg.paperFaithful = false;
        const auto q = reorg::reorganize(p, cfg, nullptr);
        auto r = runDelayed(q);
        EXPECT_EQ(r.reason, sim::IssStop::Halt)
            << w.name << " / " << reorg::branchSchemeName(scheme);
    }
}

TEST_P(WorkloadSuite, PassesReorganizedOnPipeline)
{
    const auto &w = GetParam();
    const auto run = runWorkload(w);
    EXPECT_TRUE(run.passed) << w.name << " stopped with "
                            << core::stopReasonName(run.reason);
    EXPECT_EQ(run.pipeline.hazardViolations, 0u) << w.name;
    EXPECT_GT(run.pipeline.committed, 100u) << w.name;
    EXPECT_GE(run.pipeline.cpi(), 1.0) << w.name;
}

TEST_P(WorkloadSuite, OneSlotMachineAlsoPasses)
{
    const auto &w = GetParam();
    reorg::ReorgConfig rc;
    rc.slots = 1;
    sim::MachineConfig mc;
    mc.cpu.branchDelay = 1;
    const auto run = runWorkload(w, mc, rc);
    EXPECT_TRUE(run.passed) << w.name;
    EXPECT_EQ(run.pipeline.hazardViolations, 0u) << w.name;
}

namespace
{
std::string
workloadName(const ::testing::TestParamInfo<Workload> &info)
{
    return info.param.name;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadSuite,
                         ::testing::ValuesIn(fullSuite()), workloadName);

TEST(WorkloadMeta, SuiteShape)
{
    const auto all = fullSuite();
    EXPECT_GE(all.size(), 18u);
    std::set<std::string> names;
    unsigned pascal = 0, lisp = 0, fp = 0;
    for (const auto &w : all) {
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate " << w.name;
        EXPECT_FALSE(w.description.empty());
        switch (w.family) {
          case Family::Pascal:
            ++pascal;
            break;
          case Family::Lisp:
            ++lisp;
            break;
          case Family::Fp:
            ++fp;
            break;
        }
    }
    EXPECT_GE(pascal, 8u);
    EXPECT_GE(lisp, 5u);
    EXPECT_GE(fp, 3u);
}

TEST(WorkloadMeta, ProfilesCoverBranches)
{
    const auto all = pascalWorkloads();
    const auto prof = collectProfile(all.front());
    EXPECT_GT(prof.size(), 0u);
    for (const auto &[pc, p] : prof) {
        (void)pc;
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(WorkloadMeta, LispFamilyHasMoreLoadInterlocks)
{
    // The paper's observation: Lisp code has a higher no-op fraction
    // because of load-load chains and extra jumps.
    auto noopFrac = [](const std::vector<Workload> &ws) {
        std::uint64_t nops = 0, committed = 0;
        for (const auto &w : ws) {
            const auto run = runWorkload(w);
            nops += run.pipeline.committedNops +
                run.pipeline.squashed;
            committed += run.pipeline.committed;
        }
        return static_cast<double>(nops) / committed;
    };
    const double lisp = noopFrac(lispWorkloads());
    const double pascal = noopFrac(pascalWorkloads());
    EXPECT_GT(lisp, pascal);
}

TEST(CiscRef, BenchmarksProduceExpectedResults)
{
    for (const auto &bm : ciscBenchmarks()) {
        CiscVm vm;
        for (const auto &[a, v] : bm.init)
            vm.poke(a, v);
        const auto r = vm.run(bm.program);
        EXPECT_TRUE(r.halted) << bm.name;
        EXPECT_EQ(vm.peek(bm.resultAddr), bm.expected) << bm.name;
        EXPECT_GT(r.instructions, 50u) << bm.name;
    }
}

TEST(CiscRef, PathLengthShorterThanRisc)
{
    // The headline claim: the RISC executes more instructions (roughly
    // 1.1x - 1.8x across the Stanford/Berkeley compiler range).
    const auto suite = fullSuite();
    for (const auto &bm : ciscBenchmarks()) {
        CiscVm vm;
        for (const auto &[a, v] : bm.init)
            vm.poke(a, v);
        const auto cisc = vm.run(bm.program);

        const Workload *w = nullptr;
        for (const auto &cand : suite)
            if (cand.name == bm.name)
                w = &cand;
        ASSERT_NE(w, nullptr) << bm.name;
        const auto p = asmOrDie(w->source);
        auto r = runSequential(p);
        ASSERT_EQ(r.reason, sim::IssStop::Halt);
        const double ratio = static_cast<double>(r.iss->stats().steps) /
            static_cast<double>(cisc.instructions);
        EXPECT_GT(ratio, 1.0) << bm.name;
        EXPECT_LT(ratio, 3.0) << bm.name;
    }
}

TEST(TraceGen, LocalityKnobsWork)
{
    TraceConfig tight;
    tight.hotWords = 1024;
    tight.sequential = 0.9;
    TraceConfig loose;
    loose.hotWords = 512 * 1024;
    loose.sequential = 0.2;
    loose.hotBias = 0.2;

    auto distinct = [](const TraceConfig &cfg) {
        TraceGenerator gen(cfg);
        std::set<addr_t> pages;
        for (int i = 0; i < 50000; ++i)
            pages.insert(gen.next().addr / 64);
        return pages.size();
    };
    EXPECT_LT(distinct(tight), distinct(loose));
}

TEST(TraceGen, WriteFractionRespected)
{
    TraceGenerator gen(TraceConfig{});
    unsigned writes = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        if (gen.next().write)
            ++writes;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.16, 0.02);
}
