/**
 * @file
 * Exception-transparency fuzzing: random reorganized programs run on
 * the pipeline under periodic interrupt storms, and their results must
 * be bit-identical to an undisturbed sequential-ISS run. This sweeps the
 * whole exception surface — arbitrary pipeline states at interrupt
 * time, squashed slots in flight (the chain squash-flag convention),
 * restarts landing mid-block — across many programs at once.
 */

#include <random>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::test;

namespace
{

const char *kHandler = R"(
        .systext 0
handler:
        ld     r19, hcount(r0)
        nop
        addi   r19, r19, 1
        st     r19, hcount(r0)
        movfrs r18, pswold
        movtos psw, r18
        jpc
        jpc
        jpc
        .sysdata 0x4000
hcount: .word 0
)";

/** Random programs over r2..r11 with loops, calls and memory traffic;
 *  r18/r19 belong to the handler. */
std::string
randomProgram(std::mt19937 &rng)
{
    auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };
    auto reg = [&]() { return 2 + pick(10); };
    std::string s = std::string(kHandler) +
        "        .data\narr:    .space 96\n        .text\n";

    // A leaf function the main loop calls.
    s += "func:   add  r6, r2, r3\n"
         "        xor  r7, r6, r2\n"
         "        st   r6, 90(r20)\n"
         "        ret\n";
    s += "_start: li r1, 40\n        la r20, arr\n";
    auto body = [&](int len) {
        std::string b;
        for (int i = 0; i < len; ++i) {
            switch (pick(7)) {
              case 0:
                b += strformat("        add r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
              case 1:
                b += strformat("        sub r%d, r%d, r%d\n", reg(),
                               reg(), reg());
                break;
              case 2:
                b += strformat("        addi r%d, r%d, %d\n", reg(),
                               reg(), pick(100) - 50);
                break;
              case 3:
                b += strformat("        ld r%d, %d(r20)\n", reg(),
                               pick(64));
                break;
              case 4:
                b += strformat("        st r%d, %d(r20)\n", reg(),
                               pick(64));
                break;
              case 5:
                b += "        call func\n";
                break;
              default:
                b += strformat("        sll r%d, r%d, %d\n", reg(),
                               reg(), pick(4));
                break;
            }
        }
        return b;
    };
    static const char *conds[] = {"beq", "bne", "blt", "bge"};
    s += "loop:\n" + body(3 + pick(4));
    s += strformat("        %s r%d, r%d, skip1\n", conds[pick(4)], reg(),
                   reg());
    s += body(2 + pick(3));
    s += "skip1:\n" + body(2 + pick(3));
    s += "        addi r1, r1, -1\n        bnz r1, loop\n";
    for (int r = 2; r <= 11; ++r)
        s += strformat("        st r%d, %d(r20)\n", r, 80 + r);
    s += "        halt\n";
    return s;
}

} // namespace

class InterruptFuzz : public ::testing::TestWithParam<unsigned>
{};

TEST_P(InterruptFuzz, StormsAreTransparentOnRandomPrograms)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 8; ++trial) {
        const std::string src = randomProgram(rng);
        const auto prog = asmOrDie(src);

        // Reference: undisturbed sequential execution.
        auto seq = runSequential(prog);
        ASSERT_EQ(seq.reason, sim::IssStop::Halt) << src;

        const auto sched = reorg::reorganize(prog, {}, nullptr);
        for (const unsigned period : {19u, 31u, 47u, 101u}) {
            sim::MachineConfig cfg;
            cfg.cpu.initialPsw =
                isa::psw_bits::shiftEn | isa::psw_bits::ie;
            sim::Machine machine(cfg);
            machine.load(sched);
            auto &cpu = machine.cpu();
            cpu.reset(sched.entry);
            cpu.setGpr(isa::reg::sp, 0x70000);
            cycle_t last = 0;
            while (!cpu.stopped()) {
                if (cpu.stats().cycles >= last + period) {
                    cpu.raiseInterrupt();
                    last = cpu.stats().cycles;
                }
                cpu.step();
            }
            ASSERT_EQ(cpu.stopReason(), core::StopReason::Halt)
                << "period " << period << "\n" << src;
            ASSERT_GT(cpu.stats().interrupts, 0u);
            for (addr_t a = 0; a < 96; ++a) {
                ASSERT_EQ(machine.readWord(AddressSpace::User,
                                           prog.symbol("arr") + a),
                          seq.word(prog.symbol("arr") + a))
                    << "mem+" << a << " period " << period << "\n"
                    << src;
            }
            ASSERT_EQ(machine.readWord(AddressSpace::System, 0x4000),
                      cpu.stats().interrupts);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterruptFuzz,
                         ::testing::Values(13u, 31013u, 9173u));
