/**
 * @file
 * Shared helpers for the test suite: assemble-and-run on the ISS and on
 * the pipeline machine.
 */

#ifndef MIPSX_TESTS_HELPERS_HH
#define MIPSX_TESTS_HELPERS_HH

#include <string>

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "memory/main_memory.hh"
#include "sim/machine.hh"

namespace mipsx::test
{

/** Assemble or die with the assembler's diagnostic. */
inline assembler::Program
asmOrDie(const std::string &src)
{
    return assembler::assemble(src, "test.s");
}

/** Run a program on the sequential ISS; returns the ISS for inspection. */
struct IssRun
{
    memory::MainMemory mem;
    std::unique_ptr<sim::Iss> iss;
    sim::IssStop reason;

    word_t gpr(unsigned r) const { return iss->gpr(r); }
    word_t
    word(addr_t a, AddressSpace s = AddressSpace::User) const
    {
        return mem.read(s, a);
    }
};

inline IssRun
runSequential(const assembler::Program &prog, sim::IssConfig cfg = {})
{
    IssRun r;
    r.mem.loadProgram(prog);
    if (prog.entrySpace == AddressSpace::System)
        cfg.initialPsw |= isa::psw_bits::mode;
    r.iss = std::make_unique<sim::Iss>(cfg, r.mem);
    r.iss->attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    r.iss->reset(prog.entry);
    r.iss->setGpr(isa::reg::sp, 0x70000);
    r.reason = r.iss->run();
    return r;
}

inline IssRun
runDelayed(const assembler::Program &prog, unsigned delay = 2)
{
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    cfg.branchDelay = delay;
    return runSequential(prog, cfg);
}

/** Assemble source and run it on the pipeline machine. */
struct PipelineRun
{
    std::unique_ptr<sim::Machine> machine;
    assembler::Program prog;
    core::RunResult result;

    word_t gpr(unsigned r) const { return machine->cpu().gpr(r); }
    word_t
    word(addr_t a, AddressSpace s = AddressSpace::User) const
    {
        return machine->readWord(s, a);
    }
    const core::PipelineStats &stats() const
    {
        return machine->cpu().stats();
    }
};

inline PipelineRun
runPipeline(const std::string &src, sim::MachineConfig cfg = {})
{
    PipelineRun r;
    r.prog = asmOrDie(src);
    r.machine = std::make_unique<sim::Machine>(cfg);
    r.machine->load(r.prog);
    r.result = r.machine->run();
    return r;
}

inline PipelineRun
runPipelineProg(const assembler::Program &prog, sim::MachineConfig cfg = {})
{
    PipelineRun r;
    r.prog = prog;
    r.machine = std::make_unique<sim::Machine>(cfg);
    r.machine->load(r.prog);
    r.result = r.machine->run();
    return r;
}

} // namespace mipsx::test

#endif // MIPSX_TESTS_HELPERS_HH
