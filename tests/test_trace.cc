/**
 * @file
 * The trace/metrics subsystem: ring-buffer semantics, pipeline event
 * emission, the Chrome trace_event exporter, and the MetricsRegistry —
 * including the determinism guarantees the parallel suite runner and
 * the cosim divergence reporter build on.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::test;
using trace::Event;
using trace::EventKind;

namespace
{

Event
ev(cycle_t cycle, EventKind kind = EventKind::Fetch)
{
    Event e;
    e.cycle = cycle;
    e.kind = kind;
    return e;
}

const char *const tinyProgram = R"(
_start: addi r1, r0, 5
loop:   addi r1, r1, -1
        bnz  r1, loop
        nop
        nop
        halt
)";

std::vector<Event>
runTraced(const char *src, std::size_t depth)
{
    sim::MachineConfig cfg;
    cfg.traceDepth = depth;
    sim::Machine machine{cfg};
    machine.load(asmOrDie(src));
    EXPECT_TRUE(machine.run().halted());
    return machine.trace().events();
}

std::size_t
countKind(const std::vector<Event> &es, EventKind k)
{
    return static_cast<std::size_t>(std::count_if(
        es.begin(), es.end(),
        [k](const Event &e) { return e.kind == k; }));
}

} // namespace

TEST(TraceBuffer, RingKeepsTheTailAndCountsDrops)
{
    trace::TraceBuffer buf(4);
    EXPECT_TRUE(buf.enabled());
    for (cycle_t c = 0; c < 6; ++c)
        buf.record(ev(c));
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 2u);
    EXPECT_EQ(buf.recorded(), 6u);

    const auto es = buf.events();
    ASSERT_EQ(es.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(es[i].cycle, i + 2) << "oldest-first order";

    const auto tail = buf.lastEvents(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].cycle, 4u);
    EXPECT_EQ(tail[1].cycle, 5u);
    // Asking for more than held returns everything.
    EXPECT_EQ(buf.lastEvents(100).size(), 4u);

    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_EQ(buf.capacity(), 4u);
}

TEST(TraceBuffer, ZeroCapacityIsDisabledAndRecordsNothing)
{
    trace::TraceBuffer buf;
    EXPECT_FALSE(buf.enabled());
    buf.record(ev(1));
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.recorded(), 0u);
    EXPECT_TRUE(buf.events().empty());

    buf.setCapacity(2);
    EXPECT_TRUE(buf.enabled());
    buf.setCapacity(0);
    EXPECT_FALSE(buf.enabled());
}

TEST(Trace, PipelineEmitsTheExpectedEventMix)
{
    const auto es = runTraced(tinyProgram, 4096);
    ASSERT_FALSE(es.empty());

    // Every committed instruction retires exactly one Retire event.
    sim::Machine plain{sim::MachineConfig{}};
    plain.load(asmOrDie(tinyProgram));
    ASSERT_TRUE(plain.run().halted());
    EXPECT_EQ(countKind(es, EventKind::Retire),
              plain.cpu().stats().committed);

    // A cold icache on a loop: fetches, misses and their refills.
    EXPECT_GT(countKind(es, EventKind::Fetch), 0u);
    EXPECT_GT(countKind(es, EventKind::IMiss), 0u);
    EXPECT_GT(countKind(es, EventKind::IRefill), 0u);
    EXPECT_GT(countKind(es, EventKind::Issue), 0u);
    // Every stall is attributed: one Stall per IMiss or late Ecache miss.
    EXPECT_EQ(countKind(es, EventKind::Stall),
              countKind(es, EventKind::IMiss) +
                  countKind(es, EventKind::EMissLate));

    // Events are recorded in nondecreasing cycle order.
    for (std::size_t i = 1; i < es.size(); ++i)
        EXPECT_LE(es[i - 1].cycle, es[i].cycle);

    // The taken bnz squashes nothing (plain branch, slots execute) but
    // retire events carry the squash flag; none here are squashed.
    for (const auto &e : es) {
        if (e.kind == EventKind::Retire) {
            EXPECT_TRUE(e.hasInst);
        }
    }
}

TEST(Trace, TracingDoesNotChangeTheSimulation)
{
    sim::MachineConfig plain;
    sim::Machine a{plain};
    a.load(asmOrDie(tinyProgram));
    const auto ra = a.run();

    sim::MachineConfig traced;
    traced.traceDepth = 64; // deliberately small: drops must be benign
    sim::Machine b{traced};
    b.load(asmOrDie(tinyProgram));
    const auto rb = b.run();

    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(a.cpu().stats().squashed, b.cpu().stats().squashed);
    EXPECT_EQ(a.cpu().icache().misses(), b.cpu().icache().misses());
}

TEST(Trace, IdenticalRunsProduceIdenticalEventStreams)
{
    const auto a = runTraced(tinyProgram, 4096);
    const auto b = runTraced(tinyProgram, 4096);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].raw, b[i].raw);
        EXPECT_EQ(a[i].arg, b[i].arg);
    }
}

TEST(Trace, MachineRunClearsTheBufferBetweenRuns)
{
    sim::MachineConfig cfg;
    cfg.traceDepth = 4096;
    sim::Machine machine{cfg};
    machine.load(asmOrDie(tinyProgram));
    ASSERT_TRUE(machine.run().halted());
    const auto committed = machine.cpu().stats().committed;
    EXPECT_EQ(countKind(machine.trace().events(), EventKind::Retire),
              committed);
    // A second run retires the same instructions (the caches stay warm,
    // so *miss* events differ) — its retire events must replace the
    // first run's, not pile on top of them.
    ASSERT_TRUE(machine.run().halted());
    EXPECT_EQ(machine.cpu().stats().committed, committed);
    EXPECT_EQ(countKind(machine.trace().events(), EventKind::Retire),
              committed)
        << "second run appended to the first run's events";
}

TEST(Trace, ChromeExportIsStructurallyValidJson)
{
    const auto es = runTraced(tinyProgram, 4096);
    std::ostringstream os;
    trace::writeChromeTrace(os, es);
    const auto json = os.str();

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos)
        << "process/thread metadata records";
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos)
        << "instant events";
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
        << "duration events for stalls";
    EXPECT_NE(json.find("\"name\":\"retire\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // Balanced and properly terminated.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);
    // One record per event plus the metadata lines.
    EXPECT_GE(static_cast<std::size_t>(
                  std::count(json.begin(), json.end(), '\n')),
              es.size());
}

TEST(Trace, FormatEventDisassemblesInstructions)
{
    const auto es = runTraced(tinyProgram, 4096);
    bool sawRetireDisasm = false;
    for (const auto &e : es) {
        const auto line = trace::formatEvent(e);
        EXPECT_NE(line.find(trace::eventKindName(e.kind)),
                  std::string::npos);
        if (e.kind == EventKind::Retire &&
            line.find("addi") != std::string::npos)
            sawRetireDisasm = true;
    }
    EXPECT_TRUE(sawRetireDisasm);
}

TEST(Metrics, SetGetMergeAndTypes)
{
    trace::MetricsRegistry m;
    EXPECT_FALSE(m.has("a"));
    EXPECT_EQ(m.get("a"), 0.0);
    m.set("a", std::uint64_t{3});
    m.set("b", 0.5);
    EXPECT_TRUE(m.has("a"));
    EXPECT_EQ(m.get("a"), 3.0);
    EXPECT_EQ(m.get("b"), 0.5);
    m.set("a", std::uint64_t{7}); // overwrite, no duplicate entry
    EXPECT_EQ(m.get("a"), 7.0);
    ASSERT_EQ(m.names().size(), 2u);
    EXPECT_EQ(m.names()[0], "a");
    EXPECT_EQ(m.names()[1], "b");

    trace::MetricsRegistry other;
    other.set("a", std::uint64_t{5});
    other.set("b", 1.5);
    other.set("c", std::uint64_t{1});
    m.merge(other);
    EXPECT_EQ(m.get("a"), 12.0);
    EXPECT_EQ(m.get("b"), 2.0);
    EXPECT_EQ(m.get("c"), 1.0);
}

TEST(Metrics, JsonExportQuotesAndTypes)
{
    trace::MetricsRegistry m;
    m.set("pipeline.cycles", std::uint64_t{12345});
    m.set("pipeline.cpi", 1.25);
    std::ostringstream os;
    m.writeJson(os);
    const auto json = os.str();
    EXPECT_NE(json.find("\"pipeline.cycles\": 12345"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"pipeline.cpi\": 1.25"), std::string::npos)
        << json;
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, CpuCollectMatchesItsStats)
{
    sim::MachineConfig cfg;
    cfg.traceDepth = 256;
    sim::Machine machine{cfg};
    machine.load(asmOrDie(tinyProgram));
    ASSERT_TRUE(machine.run().halted());

    trace::MetricsRegistry m;
    machine.cpu().collectMetrics(m);
    const auto &s = machine.cpu().stats();
    EXPECT_EQ(m.get("cpu0.pipeline.cycles"), double(s.cycles));
    EXPECT_EQ(m.get("cpu0.pipeline.instructions"), double(s.committed));
    EXPECT_EQ(m.get("cpu0.pipeline.branches"), double(s.branches));
    EXPECT_EQ(m.get("cpu0.icache.accesses"),
              double(machine.cpu().icache().accesses()));
    EXPECT_EQ(m.get("cpu0.icache.misses"),
              double(machine.cpu().icache().misses()));
    EXPECT_EQ(m.get("cpu0.pipeline.cpi"),
              double(s.cycles) / double(s.committed));
    EXPECT_EQ(m.get("cpu0.trace.recorded"),
              double(machine.trace().recorded()));
}

TEST(Metrics, SuiteCollectExportsAggregatesAndRatios)
{
    const std::vector<workload::Workload> suite{
        workload::pascalWorkloads().front()};
    const auto r = workload::runSuite(suite, {});
    ASSERT_EQ(r.stats.failures, 0u);

    trace::MetricsRegistry m;
    workload::collectMetrics(r.stats, m);
    EXPECT_EQ(m.get("suite.workloads"), 1.0);
    EXPECT_EQ(m.get("suite.cycles"), double(r.stats.cycles));
    EXPECT_EQ(m.get("suite.cpi"), r.stats.cpi());
    EXPECT_EQ(m.get("suite.icache_miss_ratio"),
              r.stats.icacheMissRatio());
}
