/**
 * @file
 * The threaded-dispatch execute paths are pure refactors: the exec
 * dispatch tables must agree with the reference switches on every
 * opcode and operand pattern, the ISS handler table must be total over
 * everything isa::decode() can produce, and the Switch and Threaded
 * ISS dispatch mechanisms must be indistinguishable over a large fuzz
 * sweep — architectural state, statistics and stop reason alike.
 */

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "coproc/counter_cop.hh"
#include "coproc/fpu.hh"
#include "core/exec.hh"
#include "fuzz/cosim.hh"
#include "fuzz/generator.hh"
#include "isa/decode.hh"
#include "isa/encode.hh"
#include "isa/isa.hh"
#include "memory/main_memory.hh"
#include "sim/machine.hh"

using namespace mipsx;
using namespace mipsx::core;

namespace
{

/** Operand values that hit the interesting edges plus random fill. */
std::vector<word_t>
operandPool()
{
    std::vector<word_t> pool{0u,          1u,          0x7fffffffu,
                             0x80000000u, 0xffffffffu, 0x55555555u,
                             0xaaaaaaaau, 2u,          0x12345678u};
    std::mt19937 rng(20260806);
    for (int i = 0; i < 24; ++i)
        pool.push_back(rng());
    return pool;
}

void
expectSameCompute(const isa::Instruction &in, word_t a, word_t b,
                  word_t md)
{
    const ComputeResult t = executeCompute(in, a, b, md);
    const ComputeResult r = executeComputeRef(in, a, b, md);
    ASSERT_EQ(t.value, r.value)
        << "op " << static_cast<int>(in.compOp) << " a=" << a
        << " b=" << b << " md=" << md;
    ASSERT_EQ(t.md, r.md);
    ASSERT_EQ(t.writesMd, r.writesMd);
    ASSERT_EQ(t.overflow, r.overflow);
}

} // namespace

TEST(ExecDispatch, ComputeTableMatchesReferenceSwitch)
{
    const auto pool = operandPool();
    const std::vector<isa::ComputeOp> regOps = {
        isa::ComputeOp::Add,   isa::ComputeOp::Sub,
        isa::ComputeOp::And,   isa::ComputeOp::Or,
        isa::ComputeOp::Xor,   isa::ComputeOp::Bic,
        isa::ComputeOp::Mstep, isa::ComputeOp::Dstep,
    };
    for (const auto op : regOps) {
        const auto in = isa::decode(isa::encodeCompute(op, 1, 2, 3));
        ASSERT_TRUE(in.valid);
        for (const word_t a : pool)
            for (const word_t b : pool)
                expectSameCompute(in, a, b, a ^ b);
    }
    // Shifts and the funnel shift carry the amount in the aux field, so
    // every amount is its own decoded instruction.
    for (unsigned amount = 0; amount < 32; ++amount) {
        for (const auto op : {isa::ComputeOp::Sll, isa::ComputeOp::Srl,
                              isa::ComputeOp::Sra}) {
            const auto in =
                isa::decode(isa::encodeShift(op, 1, 3, amount));
            ASSERT_TRUE(in.valid);
            for (const word_t a : pool)
                expectSameCompute(in, a, 0, 0);
        }
        const auto fsh = isa::decode(
            isa::encodeCompute(isa::ComputeOp::Fsh, 1, 2, 3, amount));
        ASSERT_TRUE(fsh.valid);
        for (const word_t a : pool)
            expectSameCompute(fsh, a, ~a, 0);
    }
}

TEST(ExecDispatch, BranchTableMatchesReferenceSwitch)
{
    const auto pool = operandPool();
    for (unsigned c = 0; c <= static_cast<unsigned>(isa::BranchCond::T);
         ++c) {
        const auto cond = static_cast<isa::BranchCond>(c);
        for (const word_t a : pool)
            for (const word_t b : pool)
                ASSERT_EQ(branchTaken(cond, a, b),
                          branchTakenRef(cond, a, b))
                    << "cond " << c << " a=" << a << " b=" << b;
    }
}

TEST(ExecDispatch, HandlerlessSlotsAreExactlyTheReservedOnes)
{
    // movfrs/movtos touch machine state the caller owns; everything
    // from 14 up is a reserved encoding. Both must stay null so the
    // cold-path diagnostics keep firing.
    for (unsigned op = 0; op < 64; ++op) {
        const bool expectHandler =
            op <= static_cast<unsigned>(isa::ComputeOp::Dstep);
        EXPECT_EQ(computeDispatch[op] != nullptr, expectHandler)
            << "compute op " << op;
    }
    EXPECT_NE(computeDispatch[static_cast<unsigned>(isa::ComputeOp::Add)],
              nullptr);
    EXPECT_EQ(
        computeDispatch[static_cast<unsigned>(isa::ComputeOp::Movfrs)],
        nullptr);
    EXPECT_EQ(
        computeDispatch[static_cast<unsigned>(isa::ComputeOp::Movtos)],
        nullptr);
    EXPECT_EQ(branchCondDispatch[7], nullptr); // reserved condition
}

TEST(IssDispatchTable, CompleteOverEveryEncoderProducedOp)
{
    // One representative encoding per opcode of every format; each must
    // decode, survive reencode, and land on a non-null ISS handler.
    std::vector<word_t> words;
    for (const auto op : {isa::ComputeOp::Add, isa::ComputeOp::Sub,
                          isa::ComputeOp::And, isa::ComputeOp::Or,
                          isa::ComputeOp::Xor, isa::ComputeOp::Bic,
                          isa::ComputeOp::Mstep, isa::ComputeOp::Dstep})
        words.push_back(isa::encodeCompute(op, 1, 2, 3));
    for (const auto op : {isa::ComputeOp::Sll, isa::ComputeOp::Srl,
                          isa::ComputeOp::Sra})
        words.push_back(isa::encodeShift(op, 1, 3, 7));
    words.push_back(isa::encodeCompute(isa::ComputeOp::Fsh, 1, 2, 3, 9));
    words.push_back(isa::encodeMovSpecial(isa::ComputeOp::Movfrs,
                                          isa::SpecialReg::Psw, 4));
    words.push_back(isa::encodeMovSpecial(isa::ComputeOp::Movtos,
                                          isa::SpecialReg::Psw, 4));
    words.push_back(isa::encodeImm(isa::ImmOp::Addi, 1, 2, -5));
    words.push_back(isa::encodeImm(isa::ImmOp::Lih, 0, 2, 0x1234));
    words.push_back(isa::encodeJump(isa::ImmOp::Jmp, 0, 16));
    words.push_back(isa::encodeJump(isa::ImmOp::Jal, 1, 16));
    words.push_back(isa::encodeJumpReg(isa::ImmOp::Jr, 2, 0, 0));
    words.push_back(isa::encodeJumpReg(isa::ImmOp::Jalr, 2, 1, 0));
    words.push_back(isa::encodeJpc());
    words.push_back(isa::encodeTrap(3));
    for (const auto op : {isa::MemOp::Ld, isa::MemOp::St, isa::MemOp::Ldf,
                          isa::MemOp::Stf, isa::MemOp::Ldt})
        words.push_back(isa::encodeMem(op, 1, 2, 4));
    words.push_back(isa::encodeCop(isa::MemOp::Aluc, 1, 0, 0));
    for (const auto op : {isa::MemOp::Movfrc, isa::MemOp::Movtoc})
        words.push_back(isa::encodeCop(op, 1, 0, 2));
    words.push_back(isa::encodeBranch(isa::BranchCond::Eq,
                                      isa::SquashType::NoSquash, 1, 2, 8));

    for (const word_t w : words) {
        const auto in = isa::decode(w);
        ASSERT_TRUE(in.valid) << strformat("word %08x", w);
        EXPECT_EQ(isa::reencode(in), w);
        EXPECT_LT(in.op, isa::opCount);
        EXPECT_TRUE(sim::Iss::hasHandler(in.op))
            << strformat("word %08x op %u", w, in.op);
    }
}

TEST(IssDispatchTable, CompleteOverRandomDecodeSpace)
{
    // Any 32-bit word that decodes as valid — not just what the
    // encoders emit — must map to a handled op index. Invalid decodes
    // must map to the (handled, but never dispatched) invalid slot.
    std::mt19937 rng(0xd15a);
    for (int i = 0; i < 200'000; ++i) {
        const auto in = isa::decode(rng());
        ASSERT_LT(in.op, isa::opCount);
        ASSERT_TRUE(sim::Iss::hasHandler(in.op));
        if (!in.valid) {
            ASSERT_EQ(in.op, isa::opInvalid);
        }
    }
}

namespace
{

/** Final architectural state of one ISS run under @p dispatch. */
struct IssFinal
{
    sim::IssStop reason = sim::IssStop::Running;
    std::array<word_t, numGprs> gprs{};
    word_t md = 0;
    std::uint64_t steps = 0;
    std::map<std::uint64_t, word_t> memWords;
};

IssFinal
runWithDispatch(const assembler::Program &prog, sim::IssDispatch dispatch,
                sim::IssMode mode)
{
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = mode;
    cfg.dispatch = dispatch;
    cfg.maxSteps = 60'000;
    sim::Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    IssFinal out;
    out.reason = iss.run();
    for (unsigned r = 0; r < numGprs; ++r)
        out.gprs[r] = iss.gpr(r);
    out.md = iss.md();
    out.steps = iss.stats().steps;
    out.memWords = mem.snapshot();
    return out;
}

} // namespace

TEST(IssDispatchDifferential, SwitchAndThreadedAgreeOn1000FuzzSeeds)
{
    // The differential the refactor is judged by: the same generated
    // program, stepped once through the handler table and once through
    // the reference switch, must finish in the same state. 1000 seeds
    // in delayed mode (the semantics the cosim uses), a slice of them
    // in sequential mode too.
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        fuzz::GeneratorConfig gc;
        gc.seed = seed;
        const auto prog = fuzz::generate(gc);
        const auto a =
            runWithDispatch(prog, sim::IssDispatch::Threaded,
                            sim::IssMode::Delayed);
        const auto b = runWithDispatch(prog, sim::IssDispatch::Switch,
                                       sim::IssMode::Delayed);
        ASSERT_EQ(a.reason, b.reason) << "seed " << seed;
        ASSERT_EQ(a.steps, b.steps) << "seed " << seed;
        ASSERT_EQ(a.gprs, b.gprs) << "seed " << seed;
        ASSERT_EQ(a.md, b.md) << "seed " << seed;
        ASSERT_EQ(a.memWords, b.memWords) << "seed " << seed;
        if (seed <= 100) {
            const auto c =
                runWithDispatch(prog, sim::IssDispatch::Threaded,
                                sim::IssMode::Sequential);
            const auto d =
                runWithDispatch(prog, sim::IssDispatch::Switch,
                                sim::IssMode::Sequential);
            ASSERT_EQ(c.reason, d.reason) << "seed " << seed;
            ASSERT_EQ(c.gprs, d.gprs) << "seed " << seed;
            ASSERT_EQ(c.memWords, d.memWords) << "seed " << seed;
        }
    }
}

TEST(IssDispatchDifferential, CosimStaysCleanUnderSwitchDispatch)
{
    // The cosim option plumbs through: a golden side running the
    // reference switch must still match the pipeline.
    fuzz::CosimOptions co;
    co.issDispatch = sim::IssDispatch::Switch;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        fuzz::GeneratorConfig gc;
        gc.seed = seed;
        const auto res = fuzz::runCosim(fuzz::generate(gc), co);
        ASSERT_EQ(res.outcome, fuzz::CosimOutcome::Match)
            << "seed " << seed << ":\n"
            << res.report;
    }
}
