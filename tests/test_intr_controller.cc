/**
 * @file
 * The external interrupt-control unit: unit behaviour, and full-system
 * dispatch — a hand-scheduled kernel reads-and-ACKs lines over the
 * coprocessor interface while a user loop runs.
 */

#include <gtest/gtest.h>

#include "coproc/intr_controller.hh"
#include "helpers.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::test;
using coproc::IntrController;

TEST(IntrController, PostAndAck)
{
    unsigned raises = 0;
    IntrController ic([&raises] { ++raises; });
    EXPECT_FALSE(ic.anyPending());
    ic.post(3);
    EXPECT_TRUE(ic.anyPending());
    EXPECT_EQ(raises, 1u);
    EXPECT_EQ(ic.movfrc(0), 1u << 3);           // read pending
    EXPECT_EQ(ic.movfrc(1u << 10), 3u);         // read-and-ACK
    EXPECT_FALSE(ic.anyPending());
    EXPECT_EQ(ic.movfrc(1u << 10), IntrController::noLine);
}

TEST(IntrController, HighestLineWinsAndReRaises)
{
    unsigned raises = 0;
    IntrController ic([&raises] { ++raises; });
    ic.post(2);
    ic.post(9);
    EXPECT_EQ(ic.movfrc(1u << 10), 9u); // highest first
    EXPECT_GE(raises, 3u);              // re-raised: line 2 still queued
    EXPECT_EQ(ic.movfrc(1u << 10), 2u);
}

TEST(IntrController, MaskBlocksLines)
{
    unsigned raises = 0;
    IntrController ic([&raises] { ++raises; });
    ic.movtoc(0, ~(1u << 5)); // mask line 5 off
    ic.post(5);
    EXPECT_EQ(raises, 0u);
    EXPECT_FALSE(ic.anyPending());
    EXPECT_EQ(ic.movfrc(1u << 10), IntrController::noLine);
    ic.movtoc(0, 0xffffffffu);
    EXPECT_TRUE(ic.anyPending());
    EXPECT_EQ(ic.movfrc(1u << 10), 5u);
}

TEST(IntrController, AluCanAckWithoutReading)
{
    IntrController ic;
    ic.post(4);
    ic.aluc((2u << 10) | 4);
    EXPECT_FALSE(ic.anyPending());
}

TEST(IntrController, FullSystemDispatch)
{
    // Kernel: read-and-ACK the controller (coprocessor 3) and count
    // per-line services in system memory. Hand-scheduled delayed code.
    const char *src = R"(
        .systext 0
kentry: movfrc r20, c3, 0x400   ; read-and-ACK (FpuMov-style op 1<<10)
        nop                      ; coprocessor load delay
        li     r21, 0x3fff
        beq    r20, r21, spur
        nop
        nop
        la     r22, counts
        add    r22, r22, r20
        ld     r23, 0(r22)
        nop
        addi   r23, r23, 1
        st     r23, 0(r22)
spur:   movfrs r23, pswold
        movtos psw, r23
        jpc
        jpc
        jpc
        .sysdata 0x4100
counts: .space 14
        .text
_start: addi r1, r0, 400
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bnz  r1, loop
        halt
)";
    const auto prog = asmOrDie(src);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    sim::MachineConfig cfg;
    cfg.cpu.initialPsw = isa::psw_bits::shiftEn | isa::psw_bits::ie;
    sim::Machine machine(cfg);
    machine.load(sched);
    auto &cpu = machine.cpu();
    auto ctrl = std::make_unique<IntrController>(
        [&cpu] { cpu.raiseInterrupt(); });
    auto *ctrlp = ctrl.get();
    cpu.attachCoprocessor(3, std::move(ctrl));

    cpu.reset(sched.entry);
    while (!cpu.stopped()) {
        const auto c = cpu.stats().cycles;
        if (c == 101)
            ctrlp->post(3);
        if (c == 301)
            ctrlp->post(7);
        if (c == 501)
            ctrlp->post(3);
        cpu.step();
    }
    EXPECT_EQ(cpu.stopReason(), core::StopReason::Halt);
    EXPECT_EQ(cpu.gpr(2), 400u * 401u / 2u);
    EXPECT_EQ(machine.readWord(AddressSpace::System, 0x4100 + 3), 2u);
    EXPECT_EQ(machine.readWord(AddressSpace::System, 0x4100 + 7), 1u);
    EXPECT_EQ(cpu.stats().interrupts, 3u);
}
