/** @file Unit tests for the bit-field helpers. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"

using namespace mipsx;

TEST(Bitfield, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeefu, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeefu, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeefu, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xffffffffu, 31, 0), 0xffffffffu);
    EXPECT_EQ(bits(0x0u, 31, 0), 0x0u);
}

TEST(Bitfield, SingleBit)
{
    EXPECT_EQ(bit(0x80000000u, 31), 1u);
    EXPECT_EQ(bit(0x80000000u, 30), 0u);
    EXPECT_EQ(bit(0x1u, 0), 1u);
}

TEST(Bitfield, InsertBitsRoundTrips)
{
    const std::uint32_t w = insertBits(0, 16, 0, 0x1ffff);
    EXPECT_EQ(bits(w, 16, 0), 0x1ffffu);
    EXPECT_EQ(bits(w, 31, 17), 0u);

    std::uint32_t v = 0xffffffffu;
    v = insertBits(v, 15, 8, 0x00);
    EXPECT_EQ(v, 0xffff00ffu);
}

TEST(Bitfield, InsertBitsMasksField)
{
    // Excess high bits of the field must not leak.
    EXPECT_EQ(insertBits(0, 3, 0, 0xffu), 0xfu);
}

TEST(Bitfield, SextSignExtends)
{
    EXPECT_EQ(sext(0x1ffff, 17), -1);
    EXPECT_EQ(sext(0x0ffff, 17), 0xffff);
    EXPECT_EQ(sext(0x10000, 17), -65536);
    EXPECT_EQ(sext(0x7fff, 15), -1);
    EXPECT_EQ(sext(0x3fff, 15), 0x3fff);
    EXPECT_EQ(sext(0xffffffffu, 32), -1);
}

TEST(Bitfield, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(65535, 17));
    EXPECT_TRUE(fitsSigned(-65536, 17));
    EXPECT_FALSE(fitsSigned(65536, 17));
    EXPECT_FALSE(fitsSigned(-65537, 17));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(Bitfield, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(0x1ffff, 17));
    EXPECT_FALSE(fitsUnsigned(0x20000, 17));
}

TEST(Bitfield, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(512), 9u);
}

TEST(Bitfield, SextInsertRoundTripProperty)
{
    // For every width and a spread of values: insert then sign-extend
    // recovers the original signed value.
    for (unsigned width = 2; width <= 17; ++width) {
        const std::int32_t lim = 1 << (width - 1);
        for (std::int32_t v : {-lim, -1, 0, 1, lim - 1}) {
            const auto w = insertBits(0, width - 1, 0,
                                      static_cast<std::uint32_t>(v));
            EXPECT_EQ(sext(w, width), v) << "width=" << width;
        }
    }
}
