/**
 * @file
 * The hardened input edges: strict numeric flag parsing (common/cli)
 * and the JSON parser's escape handling + line/column diagnostics.
 * These are the layers the serve daemon exposes to arbitrary client
 * bytes, so every rejection path is pinned here.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/sim_error.hh"
#include "explore/json.hh"

using namespace mipsx;

namespace
{

TEST(CliParse, AcceptsPlainNumbers)
{
    EXPECT_EQ(cli::parseU64("--n", "0"), 0u);
    EXPECT_EQ(cli::parseU64("--n", "123"), 123u);
    EXPECT_EQ(cli::parseU64("--n", "18446744073709551615"),
              18446744073709551615ull);
    EXPECT_EQ(cli::parseUnsigned("--n", "42"), 42u);
}

TEST(CliParse, RejectsJunk)
{
    EXPECT_THROW(cli::parseU64("--runs", "abc"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", ""), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "12x"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "x12"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "1.5"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", " 5"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "5 "), cli::UsageError);
}

TEST(CliParse, RejectsSigns)
{
    // strtoull would happily wrap "-1" to 2^64-1; the helper must not.
    EXPECT_THROW(cli::parseU64("--runs", "-1"), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "+5"), cli::UsageError);
}

TEST(CliParse, RejectsOverflow)
{
    EXPECT_THROW(cli::parseU64("--runs", "18446744073709551616"),
                 cli::UsageError);
    EXPECT_THROW(cli::parseU64("--runs", "999999999999999999999999"),
                 cli::UsageError);
}

TEST(CliParse, EnforcesRange)
{
    EXPECT_EQ(cli::parseU64("--n", "16", 16, 100), 16u);
    EXPECT_EQ(cli::parseU64("--n", "100", 16, 100), 100u);
    EXPECT_THROW(cli::parseU64("--n", "15", 16, 100), cli::UsageError);
    EXPECT_THROW(cli::parseU64("--n", "101", 16, 100), cli::UsageError);
    try {
        cli::parseU64("--slots", "7", 1, 2);
        FAIL() << "expected UsageError";
    } catch (const cli::UsageError &e) {
        EXPECT_NE(std::string(e.what()).find("--slots"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1..2"),
                  std::string::npos);
    }
}

TEST(CliParse, AddressesTakeHexOctalDecimal)
{
    EXPECT_EQ(cli::parseAddr("--pc", "0x1F"), 0x1Fu);
    EXPECT_EQ(cli::parseAddr("--pc", "017"), 15u);
    EXPECT_EQ(cli::parseAddr("--pc", "31"), 31u);
    EXPECT_THROW(cli::parseAddr("--pc", "0xZZ"), cli::UsageError);
    EXPECT_THROW(cli::parseAddr("--pc", "4294967296"),
                 cli::UsageError);
}

TEST(CliParse, UsageErrorIsNotSimError)
{
    // Tools map UsageError to exit 2 and SimError to exit 1; the
    // types must stay distinct for that to work.
    try {
        cli::parseU64("--n", "junk");
        FAIL() << "expected UsageError";
    } catch (const SimError &) {
        FAIL() << "UsageError must not derive from SimError";
    } catch (const cli::UsageError &) {
    }
}

// --- JSON string escapes ------------------------------------------------

std::string
parsedString(const std::string &doc)
{
    return explore::Json::parse(doc).str();
}

TEST(JsonEscapes, SimpleEscapesStillWork)
{
    EXPECT_EQ(parsedString("\"a\\n\\tb\\\\\\\"\""), "a\n\tb\\\"");
}

TEST(JsonEscapes, UnicodeBasicPlane)
{
    EXPECT_EQ(parsedString("\"\\u0041\""), "A");
    EXPECT_EQ(parsedString("\"\\u00e9\""), "\xc3\xa9");   // é
    EXPECT_EQ(parsedString("\"\\u20AC\""), "\xe2\x82\xac"); // €
    EXPECT_EQ(parsedString("\"\\u0000x\""), std::string("\0x", 2));
}

TEST(JsonEscapes, SurrogatePairs)
{
    EXPECT_EQ(parsedString("\"\\ud83d\\ude00\""),
              "\xf0\x9f\x98\x80"); // 😀
}

TEST(JsonEscapes, LoneSurrogatesAreHardErrors)
{
    EXPECT_THROW(parsedString("\"\\ud83d\""), SimError);
    EXPECT_THROW(parsedString("\"\\ud83dx\""), SimError);
    EXPECT_THROW(parsedString("\"\\ude00\""), SimError);
    EXPECT_THROW(parsedString("\"\\ud83d\\u0041\""), SimError);
}

TEST(JsonEscapes, MalformedUnicodeEscapes)
{
    EXPECT_THROW(parsedString("\"\\u12\""), SimError);
    EXPECT_THROW(parsedString("\"\\u12g4\""), SimError);
    EXPECT_THROW(parsedString("\"\\u\""), SimError);
}

TEST(JsonEscapes, UnknownEscapesAreHardErrors)
{
    try {
        parsedString("\"\\x41\"");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("unsupported escape"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("line 1"),
                  std::string::npos);
    }
}

TEST(JsonErrors, ReportLineAndColumn)
{
    // The bad escape sits on line 3.
    const std::string doc = "{\n  \"a\": 1,\n  \"b\": \"\\q\"\n}";
    try {
        explore::Json::parse(doc);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("column"), std::string::npos) << what;
    }
}

TEST(JsonErrors, StructuralErrorsKeepContext)
{
    try {
        explore::Json::parse("{\"a\": [1,\n 2\n");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
