/** @file Cycle-accurate pipeline tests: bypass, delays, squash, caches. */

#include <gtest/gtest.h>

#include "helpers.hh"

using namespace mipsx;
using namespace mipsx::test;

TEST(Pipeline, StraightLineArithmeticWithBypass)
{
    // Back-to-back dependent computes exercise the distance-1 bypass.
    auto r = runPipeline(R"(
        addi r1, r0, 3
        add  r2, r1, r1   ; needs r1 via bypass
        add  r3, r2, r1   ; needs r2 via bypass, r1 via regfile
        add  r4, r3, r2
        halt
)");
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(1), 3u);
    EXPECT_EQ(r.gpr(2), 6u);
    EXPECT_EQ(r.gpr(3), 9u);
    EXPECT_EQ(r.gpr(4), 15u);
    EXPECT_EQ(r.stats().hazardViolations, 0u);
}

TEST(Pipeline, LoadDelaySlotSeesOldValue)
{
    auto r = runPipeline(R"(
        .data
v:      .word 99
        .text
        addi r1, r0, 5
        ld   r1, v
        add  r2, r1, r0   ; load delay: old r1
        add  r3, r1, r0   ; new r1
        halt
)");
    EXPECT_EQ(r.gpr(2), 5u);
    EXPECT_EQ(r.gpr(3), 99u);
    EXPECT_EQ(r.stats().hazardViolations, 1u);
}

TEST(Pipeline, LoadWithScheduledSlotHasNoHazard)
{
    auto r = runPipeline(R"(
        .data
v:      .word 99
        .text
        ld   r1, v
        nop
        add  r3, r1, r0
        halt
)");
    EXPECT_EQ(r.gpr(3), 99u);
    EXPECT_EQ(r.stats().hazardViolations, 0u);
}

TEST(Pipeline, StoreDataBypassesFromDistanceOne)
{
    auto r = runPipeline(R"(
        .data
out:    .space 1
        .text
        addi r1, r0, 7
        st   r1, out      ; store data resolved at ALU via bypass
        halt
)");
    EXPECT_EQ(r.word(r.prog.symbol("out")), 7u);
}

TEST(Pipeline, BranchHasTwoDelaySlots)
{
    auto r = runPipeline(R"(
        b    target
        addi r2, r0, 2   ; slot 1 executes
        addi r3, r0, 3   ; slot 2 executes
        addi r4, r0, 4   ; not reached
target: halt
)");
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    EXPECT_EQ(r.gpr(4), 0u);
}

TEST(Pipeline, SquashingBranchKillsSlotsOnWrongDirection)
{
    auto r = runPipeline(R"(
        addi r1, r0, 1
        beq.sq r1, r0, target  ; predicted taken, falls through
        addi r2, r0, 2         ; squashed
        addi r3, r0, 3         ; squashed
        addi r4, r0, 4
target: halt
)");
    EXPECT_EQ(r.gpr(2), 0u);
    EXPECT_EQ(r.gpr(3), 0u);
    EXPECT_EQ(r.gpr(4), 4u);
    EXPECT_EQ(r.stats().squashed, 2u);
    EXPECT_EQ(r.stats().branchSquashTriggers, 1u);
}

TEST(Pipeline, SquashTakenVariant)
{
    auto r = runPipeline(R"(
        beq.sqn r0, r0, target ; predicted NOT taken, but taken: squash
        addi r2, r0, 2         ; squashed
        addi r3, r0, 3         ; squashed
        addi r4, r0, 4         ; skipped (branch taken)
target: halt
)");
    EXPECT_EQ(r.gpr(2), 0u);
    EXPECT_EQ(r.gpr(3), 0u);
    EXPECT_EQ(r.gpr(4), 0u);
    EXPECT_EQ(r.stats().squashed, 2u);
}

TEST(Pipeline, NoSquashSlotsAlwaysExecute)
{
    auto r = runPipeline(R"(
        addi r1, r0, 1
        beq  r1, r0, target    ; not taken, no squash
        addi r2, r0, 2         ; executes
        addi r3, r0, 3         ; executes
        addi r4, r0, 4
target: halt
)");
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 3u);
    EXPECT_EQ(r.gpr(4), 4u);
    EXPECT_EQ(r.stats().squashed, 0u);
}

TEST(Pipeline, LoopMatchesIss)
{
    const std::string src = R"(
        addi r1, r0, 20
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        nop
        nop
        halt
)";
    auto r = runPipeline(src);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(2), 210u);
    // 20 iterations: branch resolved 20 times, taken 19.
    EXPECT_EQ(r.stats().branches, 20u);
    EXPECT_EQ(r.stats().branchesTaken, 19u);
}

TEST(Pipeline, JalLinkValueIsPcPlus3)
{
    auto r = runPipeline(R"(
_start: jal ra, func
        nop
        nop
        addi r5, r5, 1
        halt
func:   movfrs r6, md    ; arbitrary
        ret
        nop
        nop
)");
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(5), 1u);
    EXPECT_EQ(r.gpr(31), r.prog.entry + 3);
}

TEST(Pipeline, CyclesReflectPipelineFill)
{
    // N straight-line instructions, no misses beyond the cold Icache
    // fill: cycles = N + pipeline drain + stalls. With the Icache off we
    // can count exactly: every fetch costs 1 + missPenalty (+ Ecache).
    sim::MachineConfig cfg;
    cfg.cpu.icache.enabled = true;
    auto r = runPipeline("nop\nnop\nnop\nhalt\n", cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.stats().committed, 4u);
    EXPECT_GT(r.stats().cycles, 4u); // fill + cold misses
}

TEST(Pipeline, IcacheDoubleFetchHalvesColdMisses)
{
    // A long straight-line program: with the double fetch, cold misses
    // touch every other word.
    std::string src;
    for (int i = 0; i < 64; ++i)
        src += "addi r1, r1, 1\n";
    src += "halt\n";

    sim::MachineConfig two;
    auto r2 = runPipelineProg(asmOrDie(src), two);

    sim::MachineConfig one;
    one.cpu.icache.fetchWords = 1;
    auto r1 = runPipelineProg(asmOrDie(src), one);

    EXPECT_EQ(r2.gpr(1), 64u);
    EXPECT_EQ(r1.gpr(1), 64u);
    EXPECT_NEAR(
        static_cast<double>(r1.machine->cpu().icache().misses()),
        2.0 * r2.machine->cpu().icache().misses(), 2.0);
    EXPECT_LT(r2.stats().cycles, r1.stats().cycles);
}

TEST(Pipeline, IcacheDisabledStillCorrect)
{
    sim::MachineConfig cfg;
    cfg.cpu.icache.enabled = false;
    auto r = runPipeline(R"(
        addi r1, r0, 10
        add  r2, r1, r1
        halt
)", cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(2), 20u);
    EXPECT_EQ(r.machine->cpu().icache().misses(),
              r.machine->cpu().icache().accesses());
}

TEST(Pipeline, EcacheLateMissStallsPipeline)
{
    // Two configurations differing only in Ecache miss penalty: the
    // slower one must take more cycles for a load-heavy program.
    const std::string src = R"(
        .data
a:      .word 1, 2, 3, 4, 5, 6, 7, 8
        .text
        la   r1, a
        ld   r2, 0(r1)
        ld   r3, 1(r1)
        ld   r4, 2(r1)
        ld   r5, 3(r1)
        halt
)";
    sim::MachineConfig fast;
    fast.cpu.ecache.missPenalty = 4;
    sim::MachineConfig slow;
    slow.cpu.ecache.missPenalty = 40;
    auto rf = runPipelineProg(asmOrDie(src), fast);
    auto rs = runPipelineProg(asmOrDie(src), slow);
    EXPECT_EQ(rf.gpr(5), 4u);
    EXPECT_EQ(rs.gpr(5), 4u);
    EXPECT_LT(rf.stats().cycles, rs.stats().cycles);
}

TEST(Pipeline, MdRegisterMultiplySequence)
{
    std::string src = R"(
        addi r1, r0, 3000
        addi r2, r0, 4321
        movtos md, r1
        add r3, r0, r0
)";
    for (int i = 0; i < 32; ++i)
        src += "        mstep r3, r3, r2\n";
    src += "        halt\n";
    auto r = runPipeline(src);
    EXPECT_EQ(r.gpr(3), 3000u * 4321u);
}

TEST(Pipeline, CoprocessorCounterRoundTrip)
{
    sim::MachineConfig cfg;
    cfg.attachCounterCop = true;
    auto r = runPipeline(R"(
        aluc   c2, 0x005      ; reset to 5
        aluc   c2, 0x403      ; add 3  (opcode 1 << 10 | 3)
        movfrc r1, c2, 0
        nop                   ; movfrc has a load delay
        add    r2, r1, r0
        addi   r3, r0, 77
        movtoc c2, 0, r3
        movfrc r4, c2, 0
        nop
        add    r5, r4, r0
        halt
)", cfg);
    EXPECT_EQ(r.gpr(2), 8u);
    EXPECT_EQ(r.gpr(5), 77u);
}

TEST(Pipeline, FpuThroughLdfStf)
{
    auto r = runPipeline(R"(
        .data
x:      .word 0x40400000   ; 3.0f
y:      .word 0x40a00000   ; 5.0f
out:    .space 1
        .text
        ldf f1, x
        ldf f2, y
        aluc c1, 0x0041     ; fadd f2, f1  (op 0, fd=2, fs=1)
        stf f2, out
        halt
)");
    EXPECT_EQ(r.word(r.prog.symbol("out")), 0x41000000u); // 8.0f
}

TEST(Pipeline, DelayOneMachineResolvesAtRf)
{
    sim::MachineConfig cfg;
    cfg.cpu.branchDelay = 1;
    auto r = runPipeline(R"(
        b target
        addi r2, r0, 2   ; the single slot executes
        addi r3, r0, 3   ; must be skipped
target: halt
)", cfg);
    EXPECT_EQ(r.result.reason, core::StopReason::Halt);
    EXPECT_EQ(r.gpr(2), 2u);
    EXPECT_EQ(r.gpr(3), 0u);
}

TEST(Pipeline, DelayOneLoop)
{
    sim::MachineConfig cfg;
    cfg.cpu.branchDelay = 1;
    auto r = runPipeline(R"(
        addi r1, r0, 10
        addi r2, r0, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        nop
        halt
)", cfg);
    EXPECT_EQ(r.gpr(2), 55u);
}

TEST(Pipeline, SquashFsmOccupancy)
{
    auto r = runPipeline(R"(
        addi r1, r0, 1
        beq.sq r1, r0, t   ; squashes
        nop
        nop
t:      halt
)");
    const auto &fsm = r.machine->cpu().squashFsm();
    EXPECT_GE(fsm.occupancy(core::SquashState::BranchSquash), 1u);
    EXPECT_GT(fsm.occupancy(core::SquashState::Run), 0u);
}

TEST(Pipeline, MissFsmOccupancyTracksStalls)
{
    auto r = runPipeline("nop\nnop\nhalt\n");
    const auto &fsm = r.machine->cpu().missFsm();
    EXPECT_GT(fsm.occupancy(core::MissState::IMiss) +
                  fsm.occupancy(core::MissState::EMiss),
              0u);
    EXPECT_EQ(fsm.occupancy(core::MissState::Run) +
                  fsm.occupancy(core::MissState::IMiss) +
                  fsm.occupancy(core::MissState::EMiss),
              r.stats().cycles);
}

TEST(Pipeline, InvalidInstructionStops)
{
    auto r = runPipeline(".word 0xbf000000\nhalt\n");
    // fmt=Compute(10).. opcode 63 -> invalid
    EXPECT_EQ(r.result.reason, core::StopReason::InvalidInstruction);
}

TEST(Pipeline, FailTrapReported)
{
    auto r = runPipeline("addi r1, r0, 1\nfail\n");
    EXPECT_EQ(r.result.reason, core::StopReason::Fail);
    EXPECT_EQ(r.gpr(1), 1u);
}
