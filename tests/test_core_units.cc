/**
 * @file
 * Direct unit tests for the small core components: PSW, PC chain, the
 * two control FSMs — plus the tick()/step() equivalence that the
 * multiprocessor's lockstep interleaving depends on.
 */

#include <gtest/gtest.h>

#include "core/miss_fsm.hh"
#include "core/pc_unit.hh"
#include "core/psw.hh"
#include "core/squash_fsm.hh"
#include "helpers.hh"
#include "mp/multi_machine.hh"
#include "reorg/scheduler.hh"
#include "workload/workload.hh"

using namespace mipsx;
using namespace mipsx::core;
using namespace mipsx::test;

// ---------------------------------------------------------------------
// Psw
// ---------------------------------------------------------------------

TEST(PswUnit, BitAccessors)
{
    Psw p(isa::psw_bits::mode | isa::psw_bits::ie |
          isa::psw_bits::shiftEn);
    EXPECT_TRUE(p.systemMode());
    EXPECT_TRUE(p.interruptsEnabled());
    EXPECT_FALSE(p.overflowTrapEnabled());
    EXPECT_TRUE(p.shiftEnabled());
    EXPECT_EQ(p.space(), AddressSpace::System);
    EXPECT_EQ(Psw(0).space(), AddressSpace::User);
}

TEST(PswUnit, ExceptionEntryState)
{
    // User mode, interrupts on, overflow trap on, shifting on.
    const Psw user(isa::psw_bits::ie | isa::psw_bits::ovfe |
                   isa::psw_bits::shiftEn);
    const Psw entry = Psw::exceptionEntry(user, isa::psw_bits::cTrap);
    EXPECT_TRUE(entry.systemMode()) << "exception enters system mode";
    EXPECT_FALSE(entry.interruptsEnabled()) << "interrupts turned off";
    EXPECT_FALSE(entry.shiftEnabled()) << "the PC chain freezes";
    EXPECT_TRUE(entry.overflowTrapEnabled()) << "ovfe is preserved";
    EXPECT_TRUE(entry.bits() & isa::psw_bits::cTrap);
}

// ---------------------------------------------------------------------
// PcChain
// ---------------------------------------------------------------------

TEST(PcChainUnit, ShiftPopAndEntries)
{
    PcChain c;
    c.shift(PcChain::makeEntry(10, false), PcChain::makeEntry(11, true),
            PcChain::makeEntry(12, false));
    EXPECT_EQ(PcChain::entryPc(c.read(0)), 10u);
    EXPECT_TRUE(PcChain::entrySquashed(c.read(1)));
    EXPECT_FALSE(PcChain::entrySquashed(c.read(2)));

    EXPECT_EQ(PcChain::entryPc(c.pop()), 10u);
    EXPECT_EQ(PcChain::entryPc(c.pop()), 11u);
    EXPECT_EQ(PcChain::entryPc(c.pop()), 12u);
    EXPECT_EQ(c.read(0), 0u) << "consumed entries drain to zero";
}

TEST(PcChainUnit, WriteIsHandlerVisible)
{
    PcChain c;
    c.write(1, PcChain::makeEntry(99, true));
    EXPECT_EQ(PcChain::entryPc(c.read(1)), 99u);
    EXPECT_TRUE(PcChain::entrySquashed(c.read(1)));
}

// ---------------------------------------------------------------------
// The FSMs
// ---------------------------------------------------------------------

TEST(SquashFsmUnit, TransitionsAndOutputs)
{
    SquashFsm fsm;
    auto out = fsm.tick(false, false);
    EXPECT_EQ(fsm.state(), SquashState::Run);
    EXPECT_FALSE(out.squashIfRf);
    EXPECT_FALSE(out.killAluMem);

    out = fsm.tick(true, false); // a mispredicted squashing branch
    EXPECT_EQ(fsm.state(), SquashState::BranchSquash);
    EXPECT_TRUE(out.squashIfRf);
    EXPECT_FALSE(out.killAluMem);

    out = fsm.tick(false, true); // an exception
    EXPECT_EQ(fsm.state(), SquashState::Exception);
    EXPECT_TRUE(out.squashIfRf);
    EXPECT_TRUE(out.killAluMem);

    // Exception wins when both fire (the paper's "single extra input").
    out = fsm.tick(true, true);
    EXPECT_EQ(fsm.state(), SquashState::Exception);

    EXPECT_EQ(fsm.occupancy(SquashState::Run), 1u);
    EXPECT_EQ(fsm.occupancy(SquashState::BranchSquash), 1u);
    EXPECT_EQ(fsm.occupancy(SquashState::Exception), 2u);
    fsm.reset();
    EXPECT_EQ(fsm.occupancy(SquashState::Exception), 0u);
}

TEST(CacheMissFsmUnit, StallAccounting)
{
    CacheMissFsm fsm;
    EXPECT_FALSE(fsm.stalled());
    fsm.noteRun();
    fsm.startIMiss(2);
    EXPECT_TRUE(fsm.stalled());
    EXPECT_EQ(fsm.state(), MissState::IMiss);
    fsm.tick();
    fsm.startEMiss(3); // a refill that misses the Ecache extends it
    EXPECT_EQ(fsm.state(), MissState::EMiss);
    unsigned stalls = 0;
    while (fsm.stalled()) {
        fsm.tick();
        ++stalls;
    }
    EXPECT_EQ(stalls, 4u); // 1 remaining IMiss + 3 EMiss
    EXPECT_EQ(fsm.state(), MissState::Run);
    EXPECT_EQ(fsm.occupancy(MissState::Run), 1u);
    EXPECT_EQ(fsm.occupancy(MissState::IMiss) +
                  fsm.occupancy(MissState::EMiss),
              5u);
}

// ---------------------------------------------------------------------
// tick() == step()
// ---------------------------------------------------------------------

TEST(TickStep, CycleGranularExecutionIsIdentical)
{
    // The multiprocessor interleaves CPUs with tick(); a single CPU
    // driven by tick() must match one driven by step() exactly.
    const auto w = workload::pascalWorkloads().at(2); // matmul
    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);

    sim::Machine a{sim::MachineConfig{}};
    a.load(sched);
    a.cpu().reset(sched.entry);
    a.cpu().setGpr(isa::reg::sp, 0x70000);
    while (!a.cpu().stopped())
        a.cpu().step();

    sim::Machine b{sim::MachineConfig{}};
    b.load(sched);
    b.cpu().reset(sched.entry);
    b.cpu().setGpr(isa::reg::sp, 0x70000);
    while (!b.cpu().stopped())
        b.cpu().tick();

    EXPECT_EQ(a.cpu().stopReason(), core::StopReason::Halt);
    EXPECT_EQ(b.cpu().stopReason(), core::StopReason::Halt);
    EXPECT_EQ(a.cpu().stats().cycles, b.cpu().stats().cycles);
    EXPECT_EQ(a.cpu().stats().committed, b.cpu().stats().committed);
    for (unsigned r = 1; r < 32; ++r)
        EXPECT_EQ(a.cpu().gpr(r), b.cpu().gpr(r)) << "r" << r;
}

TEST(TickStep, MultiMachineIsDeterministic)
{
    const auto w = workload::parallelWorkloads().at(0);
    const auto prog = asmOrDie(w.source);
    const auto sched = reorg::reorganize(prog, {}, nullptr);
    auto once = [&sched]() {
        mp::MultiMachineConfig mc;
        mc.cpus = 4;
        mp::MultiMachine m(mc);
        m.load(sched);
        const auto r = m.run();
        EXPECT_TRUE(r.allHalted);
        return std::tuple(r.cycles, r.instructions, r.busWaitCycles,
                          r.invalidations);
    };
    EXPECT_EQ(once(), once());
}
