/**
 * @file
 * Reorganizer equivalence fuzzing over call-heavy programs (jal/jr,
 * skip-branches inside procedures, conditional call sites). This is the
 * program shape that exposed the skip-region relocation bug: an
 * instruction copied into a branch's delay slots must never also be
 * hoisted into its own block's slots, or the retargeted path runs it
 * twice. Covers the paper-faithful and extended squash-type matrices.
 */

#include <random>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::test;
using namespace mipsx::reorg;

namespace
{

std::string
randomCallProgram(std::mt19937 &rng)
{
    auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };
    unsigned uniq = 0;
    auto body = [&](int len) {
        std::string b;
        for (int i = 0; i < len; ++i) {
            switch (pick(6)) {
              case 0:
                b += strformat("        addi r2, r2, %d\n",
                               pick(60000) - 30000);
                break;
              case 1:
                b += strformat("        li   r3, 0x%08x\n"
                               "        xor  r2, r2, r3\n",
                               static_cast<unsigned>(rng()));
                break;
              case 2:
                b += strformat("        sll  r3, r2, %d\n"
                               "        add  r2, r2, r3\n",
                               1 + pick(7));
                break;
              case 3:
                b += strformat("        srl  r3, r2, %d\n"
                               "        xor  r2, r2, r3\n",
                               1 + pick(15));
                break;
              case 4: {
                const unsigned u = uniq++;
                b += strformat("        bge  r2, r0, bsk%u\n"
                               "        addi r2, r2, %d\nbsk%u:\n",
                               u, pick(2000) - 1000, u);
                break;
              }
              default:
                b += strformat("        addi r4, r2, %d\n"
                               "        xor  r5, r4, r2\n",
                               pick(100));
                break;
            }
        }
        return b;
    };

    const int nf = 2 + pick(3);
    std::string funcs;
    for (int f = 0; f < nf; ++f) {
        funcs += strformat("func%d:\n", f) + body(3 + pick(6)) +
            "        ret\n";
    }
    std::string s = "        .data\nresult: .space 1\n        .text\n";
    s += funcs;
    s += "_start: li r2, 0x1234\n"
         "        addi r21, r0, 1\n"
         "        addi r20, r0, 6\n"
         "mainloop:\n";
    for (int f = 0; f < nf; ++f) {
        if (f % 3 == 2) {
            s += strformat("        and r3, r20, r21\n"
                           "        bnz r3, csk%d\n"
                           "        call func%d\ncsk%d:\n",
                           f, f, f);
        } else {
            s += strformat("        call func%d\n", f);
        }
    }
    s += "        addi r20, r20, -1\n"
         "        bnz r20, mainloop\n"
         "        st r2, result\n"
         "        halt\n";
    return s;
}

} // namespace

class ReorgCallFuzz : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ReorgCallFuzz, CallHeavyProgramsSurviveEverySchedule)
{
    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        const std::string src = randomCallProgram(rng);
        const auto p = asmOrDie(src);
        auto seq = runSequential(p);
        ASSERT_EQ(seq.reason, sim::IssStop::Halt);
        const word_t expected = seq.word(p.symbol("result"));

        for (int sch = 0; sch < 3; ++sch) {
            for (int pf = 0; pf < 2; ++pf) {
                for (unsigned slots = 1; slots <= 2; ++slots) {
                    ReorgConfig rc;
                    rc.scheme = static_cast<BranchScheme>(sch);
                    rc.paperFaithful = pf != 0;
                    rc.slots = slots;
                    const auto q = reorganize(p, rc, nullptr);
                    auto del = runDelayed(q, slots);
                    ASSERT_EQ(del.reason, sim::IssStop::Halt)
                        << "sch=" << sch << " pf=" << pf << " slots="
                        << slots << "\n" << src;
                    ASSERT_EQ(del.word(q.symbol("result")), expected)
                        << "sch=" << sch << " pf=" << pf << " slots="
                        << slots << "\n" << src;

                    sim::MachineConfig mc;
                    mc.cpu.branchDelay = slots;
                    auto pipe = runPipelineProg(q, mc);
                    ASSERT_EQ(pipe.result.reason, core::StopReason::Halt);
                    ASSERT_EQ(pipe.word(q.symbol("result")), expected)
                        << "pipe sch=" << sch << " pf=" << pf
                        << " slots=" << slots << "\n" << src;
                    ASSERT_EQ(pipe.stats().hazardViolations, 0u);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorgCallFuzz,
                         ::testing::Values(1u, 77u, 991u));
