/**
 * @file
 * Dependence-DAG IR and scheduling-backend tests.
 *
 * Three layers:
 *
 *  1. The DAG itself — edge kinds on hand-built bodies, fences around
 *     pinned/immovable nodes, the validOrder/scheduleCost model.
 *  2. The backends through the public Dag API — list schedules are
 *     valid and deterministic for every priority; the branch-and-bound
 *     oracle matches an independent brute-force minimum.
 *  3. The oracle bound, differentially — over exhaustively enumerated
 *     template sequences and fuzz-sampled straight-line bodies (<= 12
 *     nodes), optimal cost <= original cost and optimal cost <= list
 *     cost for every priority. Violations dump the DAG in DOT form.
 *
 * Plus end-to-end: single-block programs reorganized under each
 * SchedulerKind preserve semantics, and the heuristic/list backends
 * never beat the oracle on emitted load no-ops.
 */

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "helpers.hh"
#include "isa/decode.hh"
#include "reorg/dag.hh"
#include "reorg/scheduler.hh"

using namespace mipsx;
using namespace mipsx::test;
using namespace mipsx::reorg;

namespace
{

/**
 * Assemble a straight-line body (data labels v/w/x in scope) and
 * return it as decoded InstrNodes, dropping the trailing halt.
 */
std::vector<InstrNode>
bodyOf(const std::string &body_src)
{
    const auto p = asmOrDie(std::string(R"(
        .data
v:      .word 11
w:      .word 22
x:      .word 33
        .text
_start:
)") + body_src + "\n        halt\n");
    const auto &t = p.text();
    std::vector<InstrNode> body;
    for (std::size_t i = 0; i + 1 < t.words.size(); ++i) {
        InstrNode n;
        n.id = static_cast<NodeId>(i);
        n.inst = isa::decode(t.words[i]);
        n.origAddr = t.base + static_cast<addr_t>(i);
        body.push_back(n);
    }
    return body;
}

bool
hasEdge(const Dag &d, unsigned from, unsigned to, DepKind kind)
{
    for (const auto &e : d.edges())
        if (e.from == from && e.to == to && e.kind == kind)
            return true;
    return false;
}

bool
hasAnyEdge(const Dag &d, unsigned from, unsigned to)
{
    for (const auto &e : d.edges())
        if (e.from == from && e.to == to)
            return true;
    return false;
}

/** Brute-force minimum scheduleCost over every valid permutation. */
unsigned
bruteForceMinCost(const Dag &dag)
{
    const unsigned n = dag.size();
    std::vector<unsigned> perm(n);
    for (unsigned i = 0; i < n; ++i)
        perm[i] = i;
    unsigned best = ~0u;
    do {
        if (dag.validOrder(perm))
            best = std::min(best, dag.scheduleCost(perm));
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
}

constexpr SchedPriority kPriorities[] = {SchedPriority::CriticalPath,
                                         SchedPriority::Slack,
                                         SchedPriority::RegPressure};

/**
 * Check the oracle bound on one body: optimal <= original, and
 * optimal <= list for every priority. Dumps DOT on violation.
 */
void
expectOracleBound(const std::vector<InstrNode> &body, std::uint32_t exit_uses,
                  const std::string &what)
{
    Dag dag = Dag::build(body);
    dag.setExitUses(exit_uses);
    const auto opt = scheduleOptimal(dag);
    ASSERT_TRUE(dag.validOrder(opt)) << what << "\n" << dag.dot(what);
    const unsigned opt_cost = dag.scheduleCost(opt);
    EXPECT_LE(opt_cost, dag.originalCost())
        << what << "\n" << dag.dot(what);
    for (const auto pr : kPriorities) {
        const auto list = scheduleList(dag, pr);
        ASSERT_TRUE(dag.validOrder(list))
            << what << " (" << schedPriorityName(pr) << ")\n"
            << dag.dot(what);
        EXPECT_LE(opt_cost, dag.scheduleCost(list))
            << what << " (" << schedPriorityName(pr) << ")\n"
            << dag.dot(what);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Layer 1: the DAG itself
// ---------------------------------------------------------------------

TEST(Dag, EdgeKindsOnAHandBuiltBody)
{
    const auto body = bodyOf(R"(
        ld   r1, v
        add  r2, r1, r1
        addi r1, r0, 5
        st   r2, w
        ld   r3, w
)");
    ASSERT_EQ(body.size(), 5u);
    const Dag dag = Dag::build(body);
    EXPECT_TRUE(hasEdge(dag, 0, 1, DepKind::Raw));  // r1: ld -> add
    EXPECT_TRUE(hasEdge(dag, 0, 2, DepKind::Waw));  // r1 redefined
    EXPECT_TRUE(hasEdge(dag, 1, 2, DepKind::War));  // read r1 then write
    EXPECT_TRUE(hasEdge(dag, 1, 3, DepKind::Raw));  // r2: add -> st
    EXPECT_TRUE(hasEdge(dag, 0, 3, DepKind::Mem));  // ld vs st
    EXPECT_TRUE(hasEdge(dag, 3, 4, DepKind::Mem));  // st vs ld
    // Loads commute: no edge between the two loads, and the addi is
    // independent of both memory ops it does not touch.
    EXPECT_FALSE(hasAnyEdge(dag, 0, 4));
    EXPECT_FALSE(hasAnyEdge(dag, 2, 3));
    EXPECT_FALSE(hasAnyEdge(dag, 2, 4));
}

TEST(Dag, PinnedLandingNodeIsAFullFence)
{
    const auto body = bodyOf(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
)");
    const Dag dag = Dag::build(body, {0, 1, 0});
    EXPECT_TRUE(hasEdge(dag, 0, 1, DepKind::Order));
    EXPECT_TRUE(hasEdge(dag, 1, 2, DepKind::Order));
    EXPECT_FALSE(dag.validOrder({1, 0, 2})); // crosses the fence
    EXPECT_FALSE(dag.validOrder({0, 2, 1}));
    EXPECT_TRUE(dag.validOrder({0, 1, 2}));
    // Without the pin the three are mutually independent.
    const Dag free = Dag::build(body);
    EXPECT_TRUE(free.validOrder({2, 0, 1}));
}

TEST(Dag, PswMoveIsImmovableButMdMoveIsNot)
{
    const auto body = bodyOf(R"(
        addi r1, r0, 1
        movtos psw, r0
        addi r2, r0, 2
)");
    const Dag dag = Dag::build(body);
    EXPECT_TRUE(hasEdge(dag, 0, 1, DepKind::Order));
    EXPECT_TRUE(hasEdge(dag, 1, 2, DepKind::Order));

    const auto md = bodyOf(R"(
        movtos md, r1
        addi   r2, r0, 2
        movfrs r3, md
)");
    const Dag mdag = Dag::build(md);
    // The MD moves are ordinary dataflow (Raw through MD), and the
    // unrelated addi may move around them.
    EXPECT_TRUE(hasEdge(mdag, 0, 2, DepKind::Raw));
    EXPECT_TRUE(mdag.validOrder({1, 0, 2}));
    EXPECT_TRUE(mdag.validOrder({0, 2, 1}));
}

TEST(Dag, CostModelCountsLoadUseAndExitNops)
{
    const auto body = bodyOf(R"(
        ld   r1, v
        add  r2, r1, r1
        addi r3, r0, 3
)");
    Dag dag = Dag::build(body);
    // Identity: the add reads r1 right in the shadow -> one no-op.
    EXPECT_EQ(dag.originalCost(), 4u);
    // Filling the shadow with the independent addi removes it.
    EXPECT_TRUE(dag.validOrder({0, 2, 1}));
    EXPECT_EQ(dag.scheduleCost({0, 2, 1}), 3u);
    EXPECT_FALSE(dag.validOrder({1, 0, 2})); // Raw violated
    EXPECT_FALSE(dag.validOrder({0, 1}));    // not a permutation

    // A load scheduled last whose destination the exit reads costs one
    // no-op too; any other final node avoids it.
    const auto tail = bodyOf(R"(
        addi r3, r0, 3
        ld   r1, v
)");
    Dag exit_dag = Dag::build(tail);
    exit_dag.setExitUses(1u << 1);
    EXPECT_TRUE(exit_dag.exitHazard(1));
    EXPECT_FALSE(exit_dag.exitHazard(0));
    EXPECT_EQ(exit_dag.originalCost(), 3u);
    EXPECT_EQ(exit_dag.scheduleCost({1, 0}), 2u);
}

TEST(Dag, CriticalPathsWeightLoadConsumers)
{
    const auto body = bodyOf(R"(
        ld   r1, v
        add  r2, r1, r1
        addi r3, r0, 3
)");
    const Dag dag = Dag::build(body);
    const auto cp = dag.criticalPaths();
    ASSERT_EQ(cp.size(), 3u);
    EXPECT_EQ(cp[0], 3u); // load: 2-cycle edge to its consumer + 1
    EXPECT_EQ(cp[1], 1u);
    EXPECT_EQ(cp[2], 1u);
    EXPECT_TRUE(dag.loadHazard(0, 1));
    EXPECT_FALSE(dag.loadHazard(0, 2));
    EXPECT_EQ(dag.latency(0, 1), 2u);
    EXPECT_EQ(dag.latency(0, 2), 1u);
}

// ---------------------------------------------------------------------
// Layer 2: the backends through the public API
// ---------------------------------------------------------------------

TEST(ListScheduler, ValidDeterministicAndFillsTheShadow)
{
    const auto body = bodyOf(R"(
        ld   r1, v
        add  r2, r1, r1
        addi r3, r0, 3
        ld   r4, w
        add  r5, r4, r4
)");
    const Dag dag = Dag::build(body);
    for (const auto pr : kPriorities) {
        const auto order = scheduleList(dag, pr);
        ASSERT_TRUE(dag.validOrder(order)) << schedPriorityName(pr);
        EXPECT_EQ(order, scheduleList(dag, pr)) << "non-deterministic";
        EXPECT_LE(dag.scheduleCost(order), dag.originalCost())
            << schedPriorityName(pr);
    }
    // The latency-aware priorities have enough independent work here
    // to hide both load shadows entirely (register-pressure trades
    // that for live-range length, so it only gets the bound above).
    for (const auto pr :
         {SchedPriority::CriticalPath, SchedPriority::Slack}) {
        EXPECT_EQ(dag.scheduleCost(scheduleList(dag, pr)), dag.size())
            << schedPriorityName(pr);
    }
}

TEST(OptimalScheduler, MatchesBruteForceOnSmallBlocks)
{
    const char *bodies[] = {
        // Two hazards, one filler: only one no-op is removable.
        "ld r1, v\n add r2, r1, r1\n ld r3, w\n add r4, r3, r3\n"
        " addi r5, r0, 5\n",
        // A WAW/War tangle.
        "ld r1, v\n addi r1, r1, 1\n st r1, w\n ld r2, w\n"
        " add r3, r2, r1\n",
        // Nothing to do: already hazard-free.
        "addi r1, r0, 1\n addi r2, r0, 2\n addi r3, r0, 3\n",
    };
    for (const char *src : bodies) {
        const auto body = bodyOf(src);
        Dag dag = Dag::build(body);
        const auto opt = scheduleOptimal(dag);
        ASSERT_TRUE(dag.validOrder(opt)) << src;
        EXPECT_EQ(dag.scheduleCost(opt), bruteForceMinCost(dag)) << src;
        EXPECT_EQ(opt, scheduleOptimal(dag)) << "non-deterministic";
    }
}

TEST(OptimalScheduler, SeedPrimesTheBoundAndIsNeverWorse)
{
    const auto body = bodyOf(R"(
        ld   r1, v
        add  r2, r1, r1
        addi r3, r0, 3
)");
    const Dag dag = Dag::build(body);
    for (const auto pr : kPriorities) {
        const auto seed = scheduleList(dag, pr);
        const auto opt = scheduleOptimal(dag, seed);
        ASSERT_TRUE(dag.validOrder(opt));
        EXPECT_LE(dag.scheduleCost(opt), dag.scheduleCost(seed));
    }
}

// ---------------------------------------------------------------------
// Layer 3: the oracle bound, differentially
// ---------------------------------------------------------------------

TEST(OracleBound, ExhaustiveTemplateSequences)
{
    // Every sequence of length 1..4 over these templates (and thus
    // every combination of Raw/War/Waw/Mem structure they can form).
    const std::vector<std::string> templates = {
        "ld   r1, v",
        "add  r2, r1, r1",
        "addi r1, r0, 7",
        "st   r2, w",
        "ld   r3, w",
        "add  r4, r3, r2",
    };
    std::vector<unsigned> pick;
    unsigned checked = 0;
    const auto expand = [&](const auto &self, unsigned depth) -> void {
        if (!pick.empty()) {
            std::string src, what;
            for (const unsigned t : pick) {
                src += templates[t] + "\n";
                what += (what.empty() ? "" : "; ") + templates[t];
            }
            expectOracleBound(bodyOf(src), 0, what);
            ++checked;
        }
        if (depth == 4)
            return;
        for (unsigned t = 0; t < templates.size(); ++t) {
            pick.push_back(t);
            self(self, depth + 1);
            pick.pop_back();
        }
    };
    expand(expand, 0);
    // 6 + 6^2 + 6^3 + 6^4
    EXPECT_EQ(checked, 1554u);
}

TEST(OracleBound, FuzzSampledBodiesUpToTwelveNodes)
{
    std::mt19937 rng(0xda65eedu);
    const auto reg = [&](unsigned lo, unsigned hi) {
        return std::uniform_int_distribution<unsigned>(lo, hi)(rng);
    };
    const char *labels[] = {"v", "w", "x"};
    for (unsigned iter = 0; iter < 150; ++iter) {
        const unsigned len = 2 + reg(0, 10); // 2..12 nodes
        std::string src;
        for (unsigned i = 0; i < len; ++i) {
            switch (reg(0, 4)) {
              case 0:
                src += strformat("ld r%u, %s\n", reg(1, 6),
                                 labels[reg(0, 2)]);
                break;
              case 1:
                src += strformat("st r%u, %s\n", reg(1, 6),
                                 labels[reg(0, 2)]);
                break;
              case 2:
                src += strformat("add r%u, r%u, r%u\n", reg(1, 6),
                                 reg(1, 6), reg(1, 6));
                break;
              case 3:
                src += strformat("addi r%u, r%u, %u\n", reg(1, 6),
                                 reg(1, 6), reg(0, 100));
                break;
              default:
                src += strformat("sub r%u, r%u, r%u\n", reg(1, 6),
                                 reg(1, 6), reg(1, 6));
                break;
            }
        }
        // Random exit-reader mask over the same register pool.
        std::uint32_t exit_uses = 0;
        for (unsigned r = 1; r <= 6; ++r)
            if (reg(0, 1))
                exit_uses |= 1u << r;
        expectOracleBound(bodyOf(src), exit_uses,
                          strformat("fuzz body %u:\n%s", iter,
                                    src.c_str()));
    }
}

// ---------------------------------------------------------------------
// End to end: reorganize() under each backend
// ---------------------------------------------------------------------

namespace
{

struct BackendRun
{
    ReorgStats stats;
    assembler::Program prog;
};

BackendRun
runBackend(const assembler::Program &p, SchedulerKind kind)
{
    ReorgConfig rc;
    rc.scheduler = kind;
    BackendRun r;
    r.prog = reorganize(p, rc, &r.stats);
    return r;
}

} // namespace

TEST(SchedulerEndToEnd, BackendsPreserveSemanticsAndRespectTheOracle)
{
    // Single-block straight-line programs (<= 12 body nodes), so the
    // oracle solves them exactly and the static no-op counts are
    // directly comparable.
    const char *programs[] = {
        // Load-use chains with fillable independent work.
        R"(
        .data
a:      .word 5
b:      .word 7
        .text
_start: ld   r1, a
        add  r2, r1, r1
        ld   r3, b
        add  r4, r3, r3
        addi r5, r0, 50
        addi r6, r0, 60
        st   r2, a
        st   r4, b
        halt
)",
        // A lone load-use pair: the no-op is unavoidable for every
        // backend, so all three tie at one.
        R"(
        .data
p:      .word 21
        .text
_start: ld   r1, p
        add  r2, r1, r1
        halt
)",
    };
    for (const char *src : programs) {
        SCOPED_TRACE(src);
        assembler::Program p;
        try {
            p = asmOrDie(src);
        } catch (const SimError &e) {
            FAIL() << e.what();
        }
        const auto seq = runSequential(p);
        ASSERT_EQ(seq.reason, sim::IssStop::Halt);

        const auto heur = runBackend(p, SchedulerKind::Heuristic);
        const auto list = runBackend(p, SchedulerKind::List);
        const auto opt = runBackend(p, SchedulerKind::Optimal);

        // The oracle is a lower bound on emitted load no-ops.
        EXPECT_GE(heur.stats.loadNops, opt.stats.loadNops);
        EXPECT_GE(list.stats.loadNops, opt.stats.loadNops);

        // Backend accounting: only the DAG backends schedule blocks
        // through the DAG, and these blocks are small enough for the
        // exact search.
        EXPECT_EQ(heur.stats.dagBlocks, 0u);
        EXPECT_GT(list.stats.dagBlocks, 0u);
        EXPECT_GT(opt.stats.dagBlocks, 0u);
        EXPECT_GT(opt.stats.dagOptimalExact, 0u);
        EXPECT_EQ(opt.stats.dagOptimalFallback, 0u);

        // Straight-line code has no branch slots, so every GPR write
        // survives reordering: full register-state equivalence holds.
        for (const auto *run : {&heur, &list, &opt}) {
            const auto got = runDelayed(run->prog);
            ASSERT_EQ(got.reason, sim::IssStop::Halt);
            for (unsigned r = 1; r < 31; ++r)
                EXPECT_EQ(got.gpr(r), seq.gpr(r)) << "r" << r;
            auto pr = runPipelineProg(run->prog);
            EXPECT_EQ(pr.result.reason, core::StopReason::Halt);
            EXPECT_EQ(pr.stats().hazardViolations, 0u);
        }
    }
}

TEST(SchedulerEndToEnd, OptimalFallsBackOnOversizedBlocks)
{
    // 16 chained loads/adds in one block: beyond optimalMaxNodes=12,
    // so the Optimal backend must fall back to list scheduling (and
    // still verify + run correctly).
    std::string src = "        .data\nq:      .word 3\n        .text\n"
                      "_start: ld   r1, q\n";
    for (unsigned i = 2; i <= 16; ++i)
        src += strformat("        addi r%u, r%u, 1\n", (i % 6) + 1,
                         ((i - 1) % 6) + 1);
    src += "        halt\n";
    const auto p = asmOrDie(src);
    ReorgConfig rc;
    rc.scheduler = SchedulerKind::Optimal;
    ReorgStats st;
    const auto q = reorganize(p, rc, &st);
    EXPECT_GT(st.dagOptimalFallback, 0u);
    const auto seq = runSequential(p);
    const auto got = runDelayed(q);
    ASSERT_EQ(got.reason, sim::IssStop::Halt);
    for (unsigned r = 1; r < 31; ++r)
        EXPECT_EQ(got.gpr(r), seq.gpr(r)) << "r" << r;

    // Raising the cap back above the block size restores exact search.
    rc.optimalMaxNodes = 20;
    ReorgStats exact;
    reorganize(p, rc, &exact);
    EXPECT_EQ(exact.dagOptimalFallback, 0u);
    EXPECT_GT(exact.dagOptimalExact, 0u);
}
