/** @file Main memory, I-cache and E-cache unit tests. */

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "memory/ecache.hh"
#include "memory/icache.hh"
#include "isa/encode.hh"
#include "memory/main_memory.hh"

using namespace mipsx;
using namespace mipsx::memory;

// ---------------------------------------------------------------------
// MainMemory
// ---------------------------------------------------------------------

TEST(MainMemory, ZeroFillAndReadBack)
{
    MainMemory m;
    EXPECT_EQ(m.read(AddressSpace::User, 1234), 0u);
    m.write(AddressSpace::User, 1234, 0xabcdu);
    EXPECT_EQ(m.read(AddressSpace::User, 1234), 0xabcdu);
}

TEST(MainMemory, SpacesAreDisjoint)
{
    MainMemory m;
    m.write(AddressSpace::User, 100, 1);
    m.write(AddressSpace::System, 100, 2);
    EXPECT_EQ(m.read(AddressSpace::User, 100), 1u);
    EXPECT_EQ(m.read(AddressSpace::System, 100), 2u);
}

TEST(MainMemory, SnapshotListsNonZeroWords)
{
    MainMemory m;
    m.write(AddressSpace::User, 5, 7);
    m.write(AddressSpace::System, 9, 8);
    m.write(AddressSpace::User, 6, 0); // zero: not in snapshot
    const auto s = m.snapshot();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.at(physKey(AddressSpace::User, 5)), 7u);
    EXPECT_EQ(s.at(physKey(AddressSpace::System, 9)), 8u);
}

// ---------------------------------------------------------------------
// ICache
// ---------------------------------------------------------------------

namespace
{

ICacheConfig
smallIc()
{
    return ICacheConfig{}; // the paper's 4x8x16 design
}

} // namespace

TEST(ICache, FirstFetchMissesThenHits)
{
    ICache ic(smallIc());
    auto r = ic.fetch(AddressSpace::User, 100);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.stallCycles, 2u);
    r = ic.fetch(AddressSpace::User, 100);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(ic.accesses(), 2u);
    EXPECT_EQ(ic.misses(), 1u);
}

TEST(ICache, DoubleFetchValidatesTheNextWord)
{
    ICache ic(smallIc());
    auto r = ic.fetch(AddressSpace::User, 100);
    EXPECT_FALSE(r.hit);
    ASSERT_EQ(r.numRefills, 2u);
    EXPECT_EQ(r.refillKeys[0], physKey(AddressSpace::User, 100));
    EXPECT_EQ(r.refillKeys[1], physKey(AddressSpace::User, 101));
    EXPECT_TRUE(ic.fetch(AddressSpace::User, 101).hit);
}

TEST(ICache, SingleFetchLeavesNextWordInvalid)
{
    auto cfg = smallIc();
    cfg.fetchWords = 1;
    ICache ic(cfg);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 100).hit);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 101).hit);
}

TEST(ICache, SubBlockMissWithinValidTag)
{
    ICache ic(smallIc());
    ic.fetch(AddressSpace::User, 0); // allocates block 0, words 0..1 valid
    auto r = ic.fetch(AddressSpace::User, 5); // same block, invalid word
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(ic.tagMisses(), 1u);
    EXPECT_EQ(ic.subBlockMisses(), 1u);
}

TEST(ICache, CrossBlockSecondWordDroppedByDefault)
{
    ICache ic(smallIc()); // blockWords = 16
    // Word 15 is the last of its block; word 16 is in the next block.
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 15).hit);
    // The second fetched word (16) was not written (tag absent).
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 16).hit);
}

TEST(ICache, CrossBlockSecondWordAllocatesWhenConfigured)
{
    auto cfg = smallIc();
    cfg.allocCrossBlock = true;
    ICache ic(cfg);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 15).hit);
    EXPECT_TRUE(ic.fetch(AddressSpace::User, 16).hit);
}

TEST(ICache, TagReplacementInvalidatesAllSubBlocks)
{
    // 4 sets x 8 ways x 16 words: addresses that differ by
    // sets*blockWords*k map to the same set with different tags.
    ICache ic(smallIc());
    const unsigned stride = 4 * 16; // one set apart
    // Fill all 8 ways of set 0.
    for (unsigned w = 0; w < 8; ++w)
        ic.fetch(AddressSpace::User, w * stride);
    // A ninth tag evicts the LRU way (tag 0).
    ic.fetch(AddressSpace::User, 8 * stride);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 0).hit);
}

TEST(ICache, LruKeepsRecentlyUsedWays)
{
    ICache ic(smallIc());
    const unsigned stride = 4 * 16;
    for (unsigned w = 0; w < 8; ++w)
        ic.fetch(AddressSpace::User, w * stride);
    // Touch tag 0 so tag 1 becomes LRU.
    ic.fetch(AddressSpace::User, 0);
    ic.fetch(AddressSpace::User, 8 * stride); // evicts tag 1
    EXPECT_TRUE(ic.fetch(AddressSpace::User, 0).hit);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 1 * stride).hit);
}

TEST(ICache, DisabledCacheAlwaysMisses)
{
    auto cfg = smallIc();
    cfg.enabled = false;
    ICache ic(cfg);
    for (int i = 0; i < 3; ++i) {
        auto r = ic.fetch(AddressSpace::User, 7);
        EXPECT_FALSE(r.hit);
        EXPECT_EQ(r.numRefills, 1u);
    }
    EXPECT_EQ(ic.misses(), 3u);
}

TEST(ICache, NonCacheableFetchNeverFills)
{
    ICache ic(smallIc());
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 7, false).hit);
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 7, false).hit);
    // A cacheable fetch of the same word still misses (nothing filled).
    EXPECT_FALSE(ic.fetch(AddressSpace::User, 7, true).hit);
    EXPECT_TRUE(ic.fetch(AddressSpace::User, 7, true).hit);
}

TEST(ICache, SpacesDoNotAlias)
{
    ICache ic(smallIc());
    ic.fetch(AddressSpace::User, 50);
    EXPECT_FALSE(ic.fetch(AddressSpace::System, 50).hit);
}

TEST(ICache, MissPenaltyConfigurable)
{
    auto cfg = smallIc();
    cfg.missPenalty = 3;
    ICache ic(cfg);
    EXPECT_EQ(ic.fetch(AddressSpace::User, 0).stallCycles, 3u);
}

TEST(ICache, AvgFetchCostFormula)
{
    ICache ic(smallIc());
    ic.fetch(AddressSpace::User, 0);  // miss (2 stall)
    ic.fetch(AddressSpace::User, 0);  // hit
    ic.fetch(AddressSpace::User, 1);  // hit (double fetch)
    ic.fetch(AddressSpace::User, 2);  // miss
    // 4 accesses, 4 stall cycles -> 2.0 average... no: 1 + 4/4 = 2.0
    EXPECT_DOUBLE_EQ(ic.avgFetchCost(), 2.0);
    EXPECT_DOUBLE_EQ(ic.missRatio(), 0.5);
}

// Property: valid bits never claim words that were not fetched.
class ICacheRandomProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ICacheRandomProperty, HitsOnlyAfterFill)
{
    std::mt19937 rng(GetParam());
    ICache ic(smallIc());
    std::set<std::uint64_t> filled;
    for (int i = 0; i < 20000; ++i) {
        const addr_t a = rng() % 4096;
        const auto key = physKey(AddressSpace::User, a);
        const auto r = ic.fetch(AddressSpace::User, a);
        if (r.hit) {
            // Hit implies the word was fetched into the cache before.
            EXPECT_TRUE(filled.count(key)) << "addr " << a;
        } else {
            for (unsigned j = 0; j < r.numRefills; ++j)
                filled.insert(r.refillKeys[j]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ICacheRandomProperty,
                         ::testing::Values(3u, 5u, 7u));

// ---------------------------------------------------------------------
// ECache
// ---------------------------------------------------------------------

TEST(ECache, MissThenHit)
{
    ECache ec;
    auto r = ec.access(100, false);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.stallCycles, ec.config().missPenalty);
    EXPECT_TRUE(ec.access(100, false).hit);
    EXPECT_TRUE(ec.access(101, false).hit); // same 4-word line
    EXPECT_FALSE(ec.access(104, false).hit);
}

TEST(ECache, DirtyVictimPaysWriteback)
{
    ECacheConfig cfg;
    cfg.sizeWords = 64;
    cfg.lineWords = 4;
    cfg.ways = 1;
    ECache ec(cfg);
    ec.access(0, true); // dirty line at set 0
    auto r = ec.access(64, false); // same set, clean fill evicting dirty
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.stallCycles, cfg.missPenalty + cfg.writebackPenalty);
    EXPECT_EQ(ec.writebacks(), 1u);
}

TEST(ECache, CleanVictimNoWriteback)
{
    ECacheConfig cfg;
    cfg.sizeWords = 64;
    ECache ec(cfg);
    ec.access(0, false);
    auto r = ec.access(64, false);
    EXPECT_EQ(r.stallCycles, cfg.missPenalty);
}

TEST(ECache, SetAssociativeLru)
{
    ECacheConfig cfg;
    cfg.sizeWords = 32;
    cfg.lineWords = 4;
    cfg.ways = 2; // 4 sets
    ECache ec(cfg);
    ec.access(0, false);   // set 0, tag 0
    ec.access(16, false);  // set 0, tag 1
    ec.access(0, false);   // touch tag 0
    ec.access(32, false);  // set 0, tag 2 -> evicts tag 1
    EXPECT_TRUE(ec.access(0, false).hit);
    EXPECT_FALSE(ec.access(16, false).hit);
}

TEST(ECache, DisabledAlwaysMisses)
{
    ECacheConfig cfg;
    cfg.enabled = false;
    ECache ec(cfg);
    EXPECT_FALSE(ec.access(5, false).hit);
    EXPECT_FALSE(ec.access(5, false).hit);
}

TEST(ECache, StatsAccumulate)
{
    ECache ec;
    ec.access(0, false);
    ec.access(1, false);
    ec.access(1000, true);
    EXPECT_EQ(ec.accesses(), 3u);
    EXPECT_EQ(ec.misses(), 2u);
    EXPECT_NEAR(ec.missRatio(), 2.0 / 3.0, 1e-12);
    ec.clearStats();
    EXPECT_EQ(ec.accesses(), 0u);
}

TEST(ECache, WriteThroughSendsEveryStoreToMemory)
{
    memory::ECacheConfig cfg;
    cfg.writeThrough = true;
    memory::ECache ec(cfg);
    ec.access(100, false); // fill the line
    const auto before = ec.memoryTrafficCycles();
    for (int i = 0; i < 10; ++i) {
        const auto r = ec.access(100, true);
        EXPECT_TRUE(r.hit);
        EXPECT_EQ(r.stallCycles, 0u) << "buffered: no processor stall";
        EXPECT_EQ(r.busCycles, cfg.writeBusCycles);
    }
    EXPECT_EQ(ec.memoryTrafficCycles() - before,
              10u * cfg.writeBusCycles);
    EXPECT_EQ(ec.writebacks(), 0u) << "write-through never copies back";
}

TEST(ECache, WriteThroughStoreMissDoesNotAllocate)
{
    memory::ECacheConfig cfg;
    cfg.writeThrough = true;
    memory::ECache ec(cfg);
    const auto r = ec.access(500, true);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.stallCycles, 0u);
    // The line was not allocated: the next read still misses.
    EXPECT_FALSE(ec.access(500, false).hit);
}

TEST(ECache, CopyBackTrafficBeatsWriteThroughOnStoreHeavyStreams)
{
    // Smith's point 1: "Copy-back almost always results in less main
    // memory traffic since write-through requires a main memory access
    // on every store."
    auto traffic = [](bool wt) {
        memory::ECacheConfig cfg;
        cfg.writeThrough = wt;
        memory::ECache ec(cfg);
        // A hot 64-word region, 30% stores.
        for (int i = 0; i < 30000; ++i) {
            const std::uint64_t a = (i * 17) % 64;
            ec.access(a, i % 10 < 3);
        }
        return ec.memoryTrafficCycles();
    };
    EXPECT_LT(traffic(false), traffic(true) / 4);
}

// ---------------------------------------------------------------------
// DecodedImage (via MainMemory::fetchDecoded)
// ---------------------------------------------------------------------

TEST(DecodedImage, FetchDecodesOnceAndCaches)
{
    MainMemory m;
    const word_t w = isa::encodeImm(isa::ImmOp::Addi, 0, 7, 42);
    m.write(AddressSpace::User, 0x1000, w);
    const isa::Instruction &a = m.fetchDecoded(AddressSpace::User, 0x1000);
    EXPECT_EQ(a.imm, 42);
    EXPECT_EQ(a.destReg(), 7u);
    // A second fetch returns the same cached record.
    const isa::Instruction &b = m.fetchDecoded(AddressSpace::User, 0x1000);
    EXPECT_EQ(&a, &b);
}

TEST(DecodedImage, StoreInvalidatesTheCachedDecode)
{
    MainMemory m;
    m.write(AddressSpace::User, 0x2000,
            isa::encodeImm(isa::ImmOp::Addi, 0, 3, 1));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x2000).imm, 1);
    // Overwrite the word: the next fetch must see the new encoding.
    m.write(AddressSpace::User, 0x2000,
            isa::encodeImm(isa::ImmOp::Addi, 0, 4, 9));
    const auto &in = m.fetchDecoded(AddressSpace::User, 0x2000);
    EXPECT_EQ(in.imm, 9);
    EXPECT_EQ(in.destReg(), 4u);
}

TEST(DecodedImage, SpacesDoNotAlias)
{
    MainMemory m;
    m.write(AddressSpace::User, 0x30,
            isa::encodeImm(isa::ImmOp::Addi, 0, 1, 11));
    m.write(AddressSpace::System, 0x30,
            isa::encodeImm(isa::ImmOp::Addi, 0, 2, 22));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x30).imm, 11);
    EXPECT_EQ(m.fetchDecoded(AddressSpace::System, 0x30).imm, 22);
    // Invalidating one space's word leaves the other's decode alone.
    m.write(AddressSpace::User, 0x30,
            isa::encodeImm(isa::ImmOp::Addi, 0, 1, 33));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x30).imm, 33);
    EXPECT_EQ(m.fetchDecoded(AddressSpace::System, 0x30).imm, 22);
}

TEST(DecodedImage, DisabledModeDecodesEveryFetch)
{
    MainMemory m;
    m.setPredecodeEnabled(false);
    EXPECT_FALSE(m.predecodeEnabled());
    m.write(AddressSpace::User, 0x40,
            isa::encodeImm(isa::ImmOp::Addi, 0, 5, 5));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x40).imm, 5);
    m.write(AddressSpace::User, 0x40,
            isa::encodeImm(isa::ImmOp::Addi, 0, 5, 6));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x40).imm, 6);
    // Re-enabling drops any stale state and decodes fresh.
    m.setPredecodeEnabled(true);
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x40).imm, 6);
}

TEST(DecodedImage, ClassificationMatchesAFreshDecode)
{
    // The cached dest/cls bits must agree with what classify() computes
    // on a fresh decode for a store and a load.
    MainMemory m;
    m.write(AddressSpace::User, 0x50, isa::encodeMem(isa::MemOp::St, 1, 2, 3));
    m.write(AddressSpace::User, 0x51, isa::encodeMem(isa::MemOp::Ld, 1, 2, 3));
    const auto &st = m.fetchDecoded(AddressSpace::User, 0x50);
    EXPECT_TRUE(st.isStore());
    EXPECT_TRUE(st.accessesMemory());
    EXPECT_FALSE(st.isGprLoad());
    const auto &ld = m.fetchDecoded(AddressSpace::User, 0x51);
    EXPECT_TRUE(ld.isGprLoad());
    EXPECT_TRUE(ld.accessesMemory());
    EXPECT_EQ(ld.destReg(), 2u);
}

TEST(ICache, DoubleFetchDoesNotWrapIntoTheOtherSpace)
{
    // Regression: a physKey is (space << 32) | addr, so the double
    // fetch's bare key+1 at the last word of a space carried into the
    // space bits and touched word 0 of the *other* space.
    ICache ic(smallIc());
    // Park the aliased block — user word 0's block — in the cache with
    // its word 0 still invalid (fetching word 1 validates words 1/2).
    auto r = ic.fetch(AddressSpace::User, 1);
    EXPECT_FALSE(r.hit);
    // Miss at the very last word of the system space: there is no next
    // instruction, so only one word may be fetched back ...
    r = ic.fetch(AddressSpace::System, 0xffffffffu);
    EXPECT_FALSE(r.hit);
    ASSERT_EQ(r.numRefills, 1u);
    EXPECT_EQ(r.refillKeys[0],
              physKey(AddressSpace::System, 0xffffffffu));
    // ... and the aliased user word must not have been validated.
    r = ic.fetch(AddressSpace::User, 0);
    EXPECT_FALSE(r.hit) << "double fetch wrapped into the other space";
}

TEST(ICache, DoubleFetchStillWorksJustBeforeTheSpaceBoundary)
{
    // One word earlier the double fetch is legal and must still reach
    // the boundary word itself.
    ICache ic(smallIc());
    auto r = ic.fetch(AddressSpace::System, 0xfffffffeu);
    EXPECT_FALSE(r.hit);
    ASSERT_EQ(r.numRefills, 2u);
    EXPECT_EQ(r.refillKeys[1],
              physKey(AddressSpace::System, 0xffffffffu));
    EXPECT_TRUE(ic.fetch(AddressSpace::System, 0xffffffffu).hit);
}

namespace
{

assembler::Program
imageWith(word_t w, addr_t base, AddressSpace space = AddressSpace::User)
{
    assembler::Program p;
    assembler::Section text;
    text.name = ".text";
    text.space = space;
    text.isText = true;
    text.base = base;
    text.words = {w};
    text.slots = {0};
    p.sections.push_back(std::move(text));
    p.entry = base;
    return p;
}

} // namespace

TEST(DecodedImage, LoadProgramInvalidatesStaleDecodes)
{
    // Every loader write must behave like a store: reloading a new
    // image over an old one may not leave the old decodes behind.
    MainMemory m;
    m.loadProgram(imageWith(isa::encodeImm(isa::ImmOp::Addi, 0, 3, 1),
                            0x1000));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x1000).imm, 1);

    m.loadProgram(imageWith(isa::encodeImm(isa::ImmOp::Addi, 0, 4, 9),
                            0x1000));
    const auto &in = m.fetchDecoded(AddressSpace::User, 0x1000);
    EXPECT_EQ(in.imm, 9);
    EXPECT_EQ(in.destReg(), 4u);
}

TEST(DecodedImage, LoadProgramPredecodesUpFrontAndStaysExact)
{
    // The up-front predecode must agree with a decode-on-fetch of the
    // same word, and a later plain write over the predecoded word must
    // invalidate it too (the assembler image path and the store path
    // share one invalidation mechanism).
    MainMemory fast;
    MainMemory slow;
    slow.setPredecodeEnabled(false);
    const word_t w = isa::encodeMem(isa::MemOp::Ld, 1, 2, 3);
    fast.loadProgram(imageWith(w, 0x2000));
    slow.loadProgram(imageWith(w, 0x2000));
    EXPECT_EQ(fast.fetchDecoded(AddressSpace::User, 0x2000).imm,
              slow.fetchDecoded(AddressSpace::User, 0x2000).imm);
    EXPECT_TRUE(fast.fetchDecoded(AddressSpace::User, 0x2000).isGprLoad());

    fast.write(AddressSpace::User, 0x2000,
               isa::encodeImm(isa::ImmOp::Addi, 0, 7, 42));
    EXPECT_EQ(fast.fetchDecoded(AddressSpace::User, 0x2000).imm, 42);
    EXPECT_FALSE(fast.fetchDecoded(AddressSpace::User, 0x2000).isGprLoad());
}

TEST(DecodedImage, LoadProgramInvalidatesAcrossSpacesIndependently)
{
    MainMemory m;
    m.loadProgram(imageWith(isa::encodeImm(isa::ImmOp::Addi, 0, 1, 11),
                            0x80, AddressSpace::User));
    m.loadProgram(imageWith(isa::encodeImm(isa::ImmOp::Addi, 0, 2, 22),
                            0x80, AddressSpace::System));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x80).imm, 11);
    EXPECT_EQ(m.fetchDecoded(AddressSpace::System, 0x80).imm, 22);
    // Reloading one space leaves the other's decode alone.
    m.loadProgram(imageWith(isa::encodeImm(isa::ImmOp::Addi, 0, 1, 33),
                            0x80, AddressSpace::User));
    EXPECT_EQ(m.fetchDecoded(AddressSpace::User, 0x80).imm, 33);
    EXPECT_EQ(m.fetchDecoded(AddressSpace::System, 0x80).imm, 22);
}
