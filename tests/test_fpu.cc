/** @file FPU coprocessor model tests. */

#include <cmath>

#include <gtest/gtest.h>

#include "coproc/counter_cop.hh"
#include "coproc/fpu.hh"

using namespace mipsx;
using namespace mipsx::coproc;

TEST(Fpu, Arithmetic)
{
    Fpu f;
    f.setRegFloat(1, 2.5f);
    f.setRegFloat(2, 4.0f);
    f.aluc(fpuAluOp(FpuOp::Fmov, 3, 1)); // f3 = 2.5
    f.aluc(fpuAluOp(FpuOp::Fadd, 3, 2)); // f3 += 4.0
    EXPECT_FLOAT_EQ(f.regFloat(3), 6.5f);
    f.aluc(fpuAluOp(FpuOp::Fmul, 3, 2)); // f3 *= 4.0
    EXPECT_FLOAT_EQ(f.regFloat(3), 26.0f);
    f.aluc(fpuAluOp(FpuOp::Fsub, 3, 1)); // f3 -= 2.5
    EXPECT_FLOAT_EQ(f.regFloat(3), 23.5f);
    f.aluc(fpuAluOp(FpuOp::Fdiv, 3, 2)); // f3 /= 4.0
    EXPECT_FLOAT_EQ(f.regFloat(3), 5.875f);
}

TEST(Fpu, NegAbs)
{
    Fpu f;
    f.setRegFloat(1, -3.5f);
    f.aluc(fpuAluOp(FpuOp::Fabs, 2, 1));
    EXPECT_FLOAT_EQ(f.regFloat(2), 3.5f);
    f.aluc(fpuAluOp(FpuOp::Fneg, 3, 2));
    EXPECT_FLOAT_EQ(f.regFloat(3), -3.5f);
}

TEST(Fpu, IntFloatConversion)
{
    Fpu f;
    f.setRegBits(1, static_cast<word_t>(-42));
    f.aluc(fpuAluOp(FpuOp::CvtSW, 2, 1));
    EXPECT_FLOAT_EQ(f.regFloat(2), -42.0f);
    f.setRegFloat(3, 7.6f);
    f.aluc(fpuAluOp(FpuOp::CvtWS, 4, 3));
    EXPECT_EQ(static_cast<std::int32_t>(f.regBits(4)), 8);
}

TEST(Fpu, ComparesSetCondition)
{
    Fpu f;
    f.setRegFloat(1, 1.0f);
    f.setRegFloat(2, 2.0f);
    f.aluc(fpuAluOp(FpuOp::CmpLt, 1, 2));
    EXPECT_TRUE(f.condition());
    f.aluc(fpuAluOp(FpuOp::CmpLt, 2, 1));
    EXPECT_FALSE(f.condition());
    f.aluc(fpuAluOp(FpuOp::CmpEq, 1, 1));
    EXPECT_TRUE(f.condition());
    f.aluc(fpuAluOp(FpuOp::CmpLe, 2, 1));
    EXPECT_FALSE(f.condition());
}

TEST(Fpu, MovfrcMovtocRegisterAndStatus)
{
    Fpu f;
    f.movtoc(fpuRegOp(7), 0x40490fdbu); // pi bits
    EXPECT_NEAR(f.regFloat(7), 3.14159265f, 1e-6);
    EXPECT_EQ(f.movfrc(fpuRegOp(7)), 0x40490fdbu);
    f.setRegFloat(0, 0.0f);
    f.aluc(fpuAluOp(FpuOp::CmpEq, 0, 0));
    EXPECT_EQ(f.movfrc(fpuStatusOp()), 1u);
}

TEST(Fpu, DirectMemoryPath)
{
    Fpu f;
    f.loadDirect(9, 0x3f800000u); // 1.0f
    EXPECT_FLOAT_EQ(f.regFloat(9), 1.0f);
    EXPECT_EQ(f.storeDirect(9), 0x3f800000u);
}

TEST(CounterCop, CountsAndConditions)
{
    CounterCop c;
    c.aluc((0u << 10) | 5); // reset to 5
    EXPECT_EQ(c.counter(), 5u);
    c.aluc((1u << 10) | 3); // add 3
    EXPECT_EQ(c.counter(), 8u);
    c.aluc((2u << 10) | 8); // threshold 8
    EXPECT_TRUE(c.condition());
    EXPECT_EQ(c.movfrc(0), 8u);
    EXPECT_EQ(c.movfrc(1u << 10), 1u);
    c.movtoc(0, 100);
    EXPECT_EQ(c.counter(), 100u);
}
