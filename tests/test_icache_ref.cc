/**
 * @file
 * Differential test: the timing ICache against a naive functional
 * reference model.
 *
 * The production ICache earns its speed with a last-block fetch
 * shortcut, shift/mask address splitting and pointer-stable block
 * storage. The reference below has none of that: it is a direct
 * transliteration of the cache's *specification* — per-set way lists
 * searched linearly, division-free only by accident, no fast path.
 * Every fetch must produce an identical IFetchResult (hit/miss, stall
 * cycles, and the exact refill-word list) from both models, across
 * randomized geometries, replacement policies, fetch-back widths and
 * address streams. Any divergence means one of the two models
 * mis-implements the sub-block scheme the paper describes.
 */

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "memory/icache.hh"
#include "memory/main_memory.hh"

using namespace mipsx;
using memory::ICache;
using memory::ICacheConfig;
using memory::IFetchResult;
using memory::IReplPolicy;

namespace
{

/**
 * The reference model. State and transitions mirror the documented
 * behaviour word for word:
 *
 *  - one use clock, incremented at the start of every fetch;
 *  - a hit requires a way with a matching tag AND the word's valid bit;
 *    it bumps the block's lastUse;
 *  - a miss stalls for missPenalty and refills the missed word, plus —
 *    with the double fetch — the next word of the same address space;
 *  - the second word allocates a block only when it lands in the missed
 *    word's block or allocCrossBlock is set;
 *  - a new tag invalidates every word of the block (sub-block scheme);
 *  - victims: any invalid way first (lowest index), else LRU / FIFO by
 *    strict-minimum scan, or the xorshift32 sequence for Random;
 *  - a disabled cache (or non-cacheable fetch) always misses, refills
 *    one word over the data bus, and writes nothing into the array.
 */
class RefICache
{
  public:
    explicit RefICache(const ICacheConfig &cfg) : cfg_(cfg)
    {
        ways_.assign(cfg_.sets, std::vector<Way>(cfg_.ways));
        for (auto &set : ways_)
            for (auto &w : set)
                w.valid.assign(cfg_.blockWords, false);
    }

    IFetchResult
    fetch(AddressSpace space, addr_t pc, bool cacheable)
    {
        ++clock_;
        const std::uint64_t key = memory::physKey(space, pc);
        const std::uint64_t blockAddr = key / cfg_.blockWords;
        const unsigned offset = unsigned(key % cfg_.blockWords);
        const unsigned set = unsigned(blockAddr % cfg_.sets);
        const std::uint64_t tag = blockAddr / cfg_.sets;

        IFetchResult res;
        if (cfg_.enabled && cacheable) {
            if (Way *w = lookup(set, tag); w && w->valid[offset]) {
                w->lastUse = clock_;
                return res; // hit
            }
        }

        res.hit = false;
        res.stallCycles = cfg_.missPenalty;
        res.numRefills = 1;
        res.refillKeys[0] = key;
        if (!cfg_.enabled || !cacheable)
            return res; // instruction-register path: no array write

        fill(key, true);
        if (cfg_.fetchWords == 2 &&
            (key & 0xffffffffull) != 0xffffffffull) {
            const std::uint64_t next = key + 1;
            res.refillKeys[res.numRefills++] = next;
            const bool sameBlock = next / cfg_.blockWords == blockAddr;
            fill(next, sameBlock || cfg_.allocCrossBlock);
        }
        return res;
    }

  private:
    struct Way
    {
        bool anyValid = false;
        std::uint64_t tag = 0;
        std::vector<bool> valid;
        std::uint64_t lastUse = 0;
        std::uint64_t allocTime = 0;
    };

    Way *
    lookup(unsigned set, std::uint64_t tag)
    {
        for (auto &w : ways_[set])
            if (w.anyValid && w.tag == tag)
                return &w;
        return nullptr;
    }

    unsigned
    victim(unsigned set)
    {
        const auto &ws = ways_[set];
        for (unsigned i = 0; i < ws.size(); ++i)
            if (!ws[i].anyValid)
                return i;
        switch (cfg_.repl) {
          case IReplPolicy::Lru: {
            unsigned v = 0;
            for (unsigned i = 1; i < ws.size(); ++i)
                if (ws[i].lastUse < ws[v].lastUse)
                    v = i;
            return v;
          }
          case IReplPolicy::Fifo: {
            unsigned v = 0;
            for (unsigned i = 1; i < ws.size(); ++i)
                if (ws[i].allocTime < ws[v].allocTime)
                    v = i;
            return v;
          }
          case IReplPolicy::Random:
            rng_ ^= rng_ << 13;
            rng_ ^= rng_ >> 17;
            rng_ ^= rng_ << 5;
            return rng_ % cfg_.ways;
        }
        return 0;
    }

    void
    fill(std::uint64_t key, bool mayAllocate)
    {
        const std::uint64_t blockAddr = key / cfg_.blockWords;
        const unsigned offset = unsigned(key % cfg_.blockWords);
        const unsigned set = unsigned(blockAddr % cfg_.sets);
        const std::uint64_t tag = blockAddr / cfg_.sets;

        Way *w = lookup(set, tag);
        if (!w) {
            if (!mayAllocate)
                return;
            w = &ways_[set][victim(set)];
            w->anyValid = true;
            w->tag = tag;
            w->valid.assign(cfg_.blockWords, false);
            w->allocTime = clock_;
        }
        w->valid[offset] = true;
        w->lastUse = clock_;
    }

    ICacheConfig cfg_;
    std::vector<std::vector<Way>> ways_;
    std::uint64_t clock_ = 0;
    // Random replacement replays the production model's fixed-seed
    // xorshift32, so even that policy diffs deterministically.
    std::uint32_t rng_ = 0x2545f491;
};

/** One access of a generated stream. */
struct Access
{
    AddressSpace space;
    addr_t pc;
    bool cacheable;
};

/**
 * A stream mixing the shapes real fetch streams have: sequential runs
 * (the fast path), short loops (hits and LRU traffic), far jumps
 * (conflict misses in a tiny cache), a sprinkle of system-space and
 * non-cacheable fetches, and runs at the very top of the address space
 * (the double-fetch wrap guard).
 */
std::vector<Access>
makeStream(std::mt19937 &rng, std::size_t n)
{
    std::vector<Access> out;
    out.reserve(n);
    // A small region so tiny geometries see plenty of conflicts.
    std::uniform_int_distribution<addr_t> region(0, 1024);
    std::uniform_int_distribution<int> kind(0, 99);
    std::uniform_int_distribution<int> runLen(1, 40);
    addr_t pc = region(rng);
    AddressSpace space = AddressSpace::User;
    while (out.size() < n) {
        const int k = kind(rng);
        if (k < 50) { // sequential run
            for (int i = runLen(rng); i-- && out.size() < n; ++pc)
                out.push_back({space, pc, true});
        } else if (k < 75) { // loop: revisit a recent window twice
            const addr_t top = pc;
            const addr_t lo = top > 24u ? top - 24u : 0u;
            for (int pass = 0; pass < 2; ++pass)
                for (addr_t a = lo; a <= top && out.size() < n; ++a)
                    out.push_back({space, a, true});
        } else if (k < 90) { // far jump
            pc = region(rng);
            out.push_back({space, pc, true});
        } else if (k < 94) { // space switch
            space = space == AddressSpace::User ? AddressSpace::System
                                                : AddressSpace::User;
            out.push_back({space, pc, true});
        } else if (k < 97) { // non-cacheable (coprocessor IR path)
            out.push_back({space, pc, false});
        } else { // top of the address space: the wrap guard
            for (addr_t a = 0xfffffff8u; a != 0 && out.size() < n; ++a)
                out.push_back({space, a, true});
        }
    }
    return out;
}

void
diffOneConfig(const ICacheConfig &cfg, std::mt19937 &rng, std::size_t n)
{
    ICache dut(cfg);
    RefICache ref(cfg);
    const auto stream = makeStream(rng, n);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto &a = stream[i];
        const IFetchResult got = dut.fetch(a.space, a.pc, a.cacheable);
        const IFetchResult want = ref.fetch(a.space, a.pc, a.cacheable);
        ASSERT_EQ(got.hit, want.hit)
            << "access " << i << " pc=0x" << std::hex << a.pc
            << " sets=" << std::dec << cfg.sets << " ways=" << cfg.ways
            << " block=" << cfg.blockWords;
        ASSERT_EQ(got.stallCycles, want.stallCycles) << "access " << i;
        ASSERT_EQ(got.numRefills, want.numRefills) << "access " << i;
        for (unsigned w = 0; w < want.numRefills; ++w)
            ASSERT_EQ(got.refillKeys[w], want.refillKeys[w])
                << "access " << i << " refill " << w;
    }
}

} // namespace

TEST(ICacheDiff, PaperGeometry)
{
    std::mt19937 rng(0xC0FFEE);
    diffOneConfig(ICacheConfig{}, rng, 20000);
}

TEST(ICacheDiff, RandomizedGeometries)
{
    std::mt19937 rng(12345);
    const unsigned setsChoices[] = {1, 2, 4, 8};
    const unsigned waysChoices[] = {1, 2, 3, 8};
    const unsigned blockChoices[] = {1, 2, 4, 16};
    const IReplPolicy repls[] = {IReplPolicy::Lru, IReplPolicy::Fifo,
                                 IReplPolicy::Random};
    std::uniform_int_distribution<int> pick4(0, 3);
    std::uniform_int_distribution<int> pick3(0, 2);
    std::uniform_int_distribution<int> coin(0, 1);

    for (int trial = 0; trial < 60; ++trial) {
        ICacheConfig cfg;
        cfg.sets = setsChoices[pick4(rng)];
        cfg.ways = waysChoices[pick4(rng)];
        cfg.blockWords = blockChoices[pick4(rng)];
        cfg.missPenalty = 1 + unsigned(pick3(rng));
        cfg.fetchWords = 1 + unsigned(coin(rng));
        cfg.allocCrossBlock = coin(rng) != 0;
        cfg.repl = repls[pick3(rng)];
        SCOPED_TRACE(::testing::Message()
                     << "trial " << trial << ": " << cfg.sets << "x"
                     << cfg.ways << "x" << cfg.blockWords << " fetch="
                     << cfg.fetchWords << " cross="
                     << cfg.allocCrossBlock << " repl="
                     << int(cfg.repl));
        diffOneConfig(cfg, rng, 4000);
    }
}

TEST(ICacheDiff, DisabledCacheAlwaysMissesAndNeverFills)
{
    ICacheConfig cfg;
    cfg.enabled = false;
    std::mt19937 rng(7);
    diffOneConfig(cfg, rng, 3000);

    // Directly: every access misses with one bus refill.
    ICache c(cfg);
    for (addr_t pc = 0; pc < 64; ++pc) {
        const auto r = c.fetch(AddressSpace::User, pc);
        EXPECT_FALSE(r.hit);
        EXPECT_EQ(r.numRefills, 1u);
    }
    EXPECT_EQ(c.misses(), 64u);
}

TEST(ICacheDiff, CrossBlockSecondWordPolicy)
{
    // Deterministic corner: a miss on a block's last word. The second
    // fetched-back word falls in the NEXT block; without
    // allocCrossBlock it must not allocate, with it it must.
    for (const bool cross : {false, true}) {
        ICacheConfig cfg;
        cfg.allocCrossBlock = cross;
        ICache c(cfg);
        const addr_t lastWord = cfg.blockWords - 1;
        auto r = c.fetch(AddressSpace::User, lastWord);
        EXPECT_FALSE(r.hit);
        ASSERT_EQ(r.numRefills, 2u);
        EXPECT_EQ(r.refillKeys[1],
                  memory::physKey(AddressSpace::User, lastWord + 1));
        // Was word blockWords (first of block 1) actually cached?
        r = c.fetch(AddressSpace::User, lastWord + 1);
        EXPECT_EQ(r.hit, cross);
    }
}

TEST(ICacheDiff, NoDoubleFetchPastEndOfSpace)
{
    // The wrap guard: at 0xffffffff there is no next instruction, and
    // key+1 would alias word 0 of the other address space.
    ICacheConfig cfg;
    ICache c(cfg);
    const auto r = c.fetch(AddressSpace::User, 0xffffffffu);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.numRefills, 1u);
    EXPECT_EQ(r.refillKeys[0],
              memory::physKey(AddressSpace::User, 0xffffffffu));
}
