/**
 * @file
 * Bit-field extraction and insertion helpers used by the instruction
 * encoder/decoder and the cache index/tag arithmetic.
 */

#ifndef MIPSX_COMMON_BITFIELD_HH
#define MIPSX_COMMON_BITFIELD_HH

#include <cassert>
#include <cstdint>

namespace mipsx
{

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) of @p value, right-justified.
 */
constexpr std::uint32_t
bits(std::uint32_t value, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 32);
    const std::uint32_t width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/** Extract the single bit @p pos of @p value. */
constexpr std::uint32_t
bit(std::uint32_t value, unsigned pos)
{
    assert(pos < 32);
    return (value >> pos) & 1u;
}

/**
 * Return @p base with bits [hi:lo] replaced by the low bits of @p field.
 */
constexpr std::uint32_t
insertBits(std::uint32_t base, unsigned hi, unsigned lo, std::uint32_t field)
{
    assert(hi >= lo && hi < 32);
    const std::uint32_t width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/**
 * Sign-extend the low @p width bits of @p value to a signed 32-bit integer.
 */
constexpr std::int32_t
sext(std::uint32_t value, unsigned width)
{
    assert(width >= 1 && width <= 32);
    if (width == 32)
        return static_cast<std::int32_t>(value);
    const std::uint32_t sign = 1u << (width - 1);
    const std::uint32_t mask = (1u << width) - 1u;
    value &= mask;
    return static_cast<std::int32_t>((value ^ sign) - sign);
}

/** True if @p value fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(std::int64_t value, unsigned width)
{
    assert(width >= 1 && width <= 32);
    const std::int64_t lim = std::int64_t{1} << (width - 1);
    return value >= -lim && value < lim;
}

/** True if @p value fits in an unsigned field of @p width bits. */
constexpr bool
fitsUnsigned(std::uint64_t value, unsigned width)
{
    assert(width >= 1 && width <= 32);
    return width >= 64 || value < (std::uint64_t{1} << width);
}

/** True if @p value is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer base-2 logarithm of a power of two. */
constexpr unsigned
log2i(std::uint64_t value)
{
    assert(isPowerOf2(value));
    unsigned r = 0;
    while (value > 1) {
        value >>= 1;
        ++r;
    }
    return r;
}

} // namespace mipsx

#endif // MIPSX_COMMON_BITFIELD_HH
