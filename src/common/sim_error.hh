/**
 * @file
 * Error reporting for the simulator.
 *
 * Following the gem5 convention: SimError (fatal) is raised for conditions
 * that are the *user's* fault — bad configuration, malformed assembly,
 * ill-formed programs. Internal invariant violations use assert/panic.
 */

#ifndef MIPSX_COMMON_SIM_ERROR_HH
#define MIPSX_COMMON_SIM_ERROR_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace mipsx
{

/** Exception thrown for user-level errors (bad input, bad config). */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** printf-style formatting into a std::string. */
inline std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

/** Raise a SimError with a printf-style message. */
[[noreturn]] inline void
fatal(const std::string &message)
{
    throw SimError(message);
}

} // namespace mipsx

#endif // MIPSX_COMMON_SIM_ERROR_HH
