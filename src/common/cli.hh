/**
 * @file
 * Strict numeric parsing for command-line flag values.
 *
 * The tools used to feed flag values straight into std::stoull and
 * friends, which throw std::invalid_argument / std::out_of_range on
 * junk ("--runs=abc") or overflow — exceptions no top-level handler
 * caught, so a typo killed the process with an unhandled-exception
 * abort instead of a usage message. These helpers accept a value only
 * when the whole string is a number inside the stated range, and
 * report violations as UsageError, which every tool's main() turns
 * into a clean diagnostic and exit status 2 (the usage-error exit, as
 * distinct from 1 = the run itself failed).
 */

#ifndef MIPSX_COMMON_CLI_HH
#define MIPSX_COMMON_CLI_HH

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/sim_error.hh"

namespace mipsx::cli
{

/** A malformed command line: caught in main(), reported, exit 2. */
class UsageError : public std::runtime_error
{
  public:
    explicit UsageError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Raise a UsageError with a printf-style message. */
[[noreturn]] inline void
usageError(const std::string &message)
{
    throw UsageError(message);
}

/**
 * Parse @p value as an unsigned integer in [@p min, @p max]. @p base
 * 10 for plain decimal flags; 0 enables the strtoull prefix rules
 * (0x... hex, 0... octal) for address-valued flags. The whole string
 * must be consumed: empty values, leading signs, trailing junk and
 * out-of-range magnitudes all raise UsageError naming @p flag.
 */
inline std::uint64_t
parseU64(const char *flag, const std::string &value,
         std::uint64_t min = 0,
         std::uint64_t max = std::numeric_limits<std::uint64_t>::max(),
         int base = 10)
{
    // strtoull accepts leading whitespace and a sign (negatives wrap
    // modulo 2^64); neither is a sane flag value, so reject up front.
    if (value.empty() ||
        std::isspace(static_cast<unsigned char>(value[0])) ||
        value[0] == '-' || value[0] == '+')
        usageError(strformat("%s: want a number, got '%s'", flag,
                             value.c_str()));
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, base);
    if (end != value.c_str() + value.size() || end == value.c_str())
        usageError(strformat("%s: want a number, got '%s'", flag,
                             value.c_str()));
    if (errno == ERANGE || v < min || v > max) {
        if (min != 0 ||
            max != std::numeric_limits<std::uint64_t>::max())
            usageError(strformat(
                "%s: value '%s' out of range (want %llu..%llu)", flag,
                value.c_str(), static_cast<unsigned long long>(min),
                static_cast<unsigned long long>(max)));
        usageError(strformat("%s: value '%s' out of range", flag,
                             value.c_str()));
    }
    return static_cast<std::uint64_t>(v);
}

/** parseU64 narrowed to unsigned (the thread/slot-count flags). */
inline unsigned
parseUnsigned(const char *flag, const std::string &value,
              unsigned min = 0,
              unsigned max = std::numeric_limits<unsigned>::max())
{
    return static_cast<unsigned>(parseU64(flag, value, min, max));
}

/**
 * Parse @p value as a finite double at or above @p min. The whole
 * string must be consumed; junk, infinities, NaN and undershoot raise
 * UsageError naming @p flag.
 */
inline double
parseDouble(const char *flag, const std::string &value, double min)
{
    if (value.empty() ||
        std::isspace(static_cast<unsigned char>(value[0])))
        usageError(strformat("%s: want a number, got '%s'", flag,
                             value.c_str()));
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || end == value.c_str() ||
        errno == ERANGE || v != v || v - v != 0)
        usageError(strformat("%s: want a number, got '%s'", flag,
                             value.c_str()));
    if (v < min)
        usageError(strformat("%s: value '%s' below the minimum %g",
                             flag, value.c_str(), min));
    return v;
}

/** An address-valued flag: hex (0x...), octal (0...) or decimal. */
inline std::uint32_t
parseAddr(const char *flag, const std::string &value)
{
    return static_cast<std::uint32_t>(parseU64(
        flag, value, 0, std::numeric_limits<std::uint32_t>::max(), 0));
}

} // namespace mipsx::cli

#endif // MIPSX_COMMON_CLI_HH
