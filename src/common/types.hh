/**
 * @file
 * Fundamental simulator-wide types for the MIPS-X reproduction.
 *
 * MIPS-X is a word-addressed 32-bit machine: every address names a 32-bit
 * word. The processor provides two operating modes, system and user, that
 * execute in *separate address spaces* (paper, "MIPS-X Architecture"), so an
 * address is always qualified by the space it refers to.
 */

#ifndef MIPSX_COMMON_TYPES_HH
#define MIPSX_COMMON_TYPES_HH

#include <cstdint>

namespace mipsx
{

/** A 32-bit machine word (register contents, memory contents). */
using word_t = std::uint32_t;

/** Signed view of a machine word, for arithmetic interpretation. */
using sword_t = std::int32_t;

/** A word address. MIPS-X addresses 32-bit words, not bytes. */
using addr_t = std::uint32_t;

/** A simulated cycle count. */
using cycle_t = std::uint64_t;

/**
 * The two architectural address spaces. The current PSW mode selects which
 * space instruction fetches and data references use.
 */
enum class AddressSpace : std::uint8_t
{
    System = 0,
    User = 1,
};

/** Number of general purpose registers (r0 is hardwired to zero). */
inline constexpr unsigned numGprs = 32;

/** The exception vector: address zero in system space. */
inline constexpr addr_t exceptionVector = 0;

/** Depth of the PC chain saved across exceptions (IF/RF/ALU stage PCs). */
inline constexpr unsigned pcChainDepth = 3;

} // namespace mipsx

#endif // MIPSX_COMMON_TYPES_HH
