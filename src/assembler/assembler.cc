#include "assembler/assembler.hh"

#include <cctype>
#include <functional>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bitfield.hh"
#include "common/sim_error.hh"
#include "isa/encode.hh"
#include "isa/isa.hh"

namespace mipsx::assembler
{

namespace
{

using namespace mipsx::isa;

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

struct Token
{
    enum Kind { Ident, Number, Punct, End } kind = End;
    std::string text;   // Ident / Punct
    std::int64_t value = 0; // Number
};

/** Split one logical line (comments already stripped) into tokens. */
std::vector<Token>
tokenize(const std::string &line, unsigned lineno, const std::string &file)
{
    std::vector<Token> out;
    std::size_t i = 0;
    const auto n = line.size();
    while (i < n) {
        const char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.') {
            std::size_t j = i + 1;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(line[j])) ||
                    line[j] == '_' || line[j] == '.')) {
                ++j;
            }
            out.push_back({Token::Ident, line.substr(i, j - i), 0});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            char *end = nullptr;
            const long long v = std::strtoll(line.c_str() + i, &end, 0);
            out.push_back({Token::Number, "", v});
            i = static_cast<std::size_t>(end - line.c_str());
            continue;
        }
        if (std::string("(),:+-").find(c) != std::string::npos) {
            out.push_back({Token::Punct, std::string(1, c), 0});
            ++i;
            continue;
        }
        fatal(strformat("%s:%u: unexpected character '%c'", file.c_str(),
                        lineno, c));
    }
    out.push_back({Token::End, "", 0});
    return out;
}

// ---------------------------------------------------------------------
// Parsed statements (pass 1 keeps them for pass 2)
// ---------------------------------------------------------------------

struct Statement
{
    unsigned lineno = 0;
    std::string mnemonic;        // lowercased instruction or directive
    std::vector<Token> operands; // tokens after the mnemonic
    std::size_t section = 0;     // index into program sections
    addr_t addr = 0;             // assigned location
    unsigned size = 0;           // words
};

/** State shared between the two passes. */
class Assembler
{
  public:
    Assembler(const std::string &source, std::string name)
        : file_(std::move(name)), source_(source)
    {}

    Program run();

  private:
    // pass 1
    void parseLine(const std::string &line, unsigned lineno);
    void defineLabel(const std::string &label, unsigned lineno);
    unsigned statementSize(const Statement &st) const;
    void switchSection(const std::string &which, addr_t base, bool has_base,
                       unsigned lineno);

    // pass 2
    void encodeStatement(const Statement &st);
    word_t encodeInstr(const Statement &st);

    // operand parsing helpers (operate on a token cursor)
    struct Cursor
    {
        const std::vector<Token> *toks;
        std::size_t pos = 0;
        const Token &peek() const { return (*toks)[pos]; }
        const Token &next() { return (*toks)[pos++]; }
        bool atEnd() const { return peek().kind == Token::End; }
    };

    [[noreturn]] void err(unsigned lineno, const std::string &msg) const;
    void expectPunct(Cursor &c, const char *p, unsigned lineno) const;
    bool tryPunct(Cursor &c, const char *p) const;
    unsigned parseReg(Cursor &c, unsigned lineno) const;
    unsigned parseFpuReg(Cursor &c, unsigned lineno) const;
    unsigned parseCopNum(Cursor &c, unsigned lineno) const;
    std::int64_t parseExpr(Cursor &c, unsigned lineno) const;
    std::optional<std::int64_t> lookup(const std::string &sym) const;
    /** True if @p value falls inside a text section (pass 2 only). */
    bool isTextAddress(std::int64_t value) const;
    /** offset(base) | expr | expr(base); returns {offset, base}. */
    std::pair<std::int64_t, unsigned> parseAddress(Cursor &c,
                                                   unsigned lineno) const;
    std::int32_t branchDisp(std::int64_t target, addr_t pc,
                            unsigned lineno) const;

    Section &cur() { return prog_.sections[curSection_]; }
    addr_t &loc() { return sectionLoc_[curSection_]; }

    std::string file_;
    const std::string &source_;
    Program prog_;
    std::size_t curSection_ = 0;
    std::vector<addr_t> sectionLoc_; // per-section location counters
    std::vector<Statement> statements_;
    std::map<std::string, std::int64_t> equs_;
    bool pass2_ = false;
    mutable bool exprUsedLabel_ = false;
};

void
Assembler::err(unsigned lineno, const std::string &msg) const
{
    fatal(strformat("%s:%u: %s", file_.c_str(), lineno, msg.c_str()));
}

// Registered register names.
std::optional<unsigned>
regNumber(const std::string &name)
{
    if (name == "zero")
        return 0u;
    if (name == "sp")
        return reg::sp;
    if (name == "fp")
        return reg::fp;
    if (name == "ra")
        return reg::ra;
    if (name.size() >= 2 && name[0] == 'r' &&
        std::isdigit(static_cast<unsigned char>(name[1]))) {
        char *end = nullptr;
        const long v = std::strtol(name.c_str() + 1, &end, 10);
        if (*end == '\0' && v >= 0 && v < static_cast<long>(numGprs))
            return static_cast<unsigned>(v);
    }
    return std::nullopt;
}

std::optional<SpecialReg>
specialRegNumber(const std::string &name)
{
    if (name == "psw")
        return SpecialReg::Psw;
    if (name == "pswold")
        return SpecialReg::PswOld;
    if (name == "md")
        return SpecialReg::Md;
    if (name == "pchain0")
        return SpecialReg::PcChain0;
    if (name == "pchain1")
        return SpecialReg::PcChain1;
    if (name == "pchain2")
        return SpecialReg::PcChain2;
    return std::nullopt;
}

unsigned
Assembler::parseReg(Cursor &c, unsigned lineno) const
{
    const Token &t = c.next();
    if (t.kind == Token::Ident) {
        if (auto r = regNumber(t.text))
            return *r;
    }
    err(lineno, strformat("expected a register, got '%s'", t.text.c_str()));
}

unsigned
Assembler::parseFpuReg(Cursor &c, unsigned lineno) const
{
    const Token &t = c.next();
    if (t.kind == Token::Ident && t.text.size() >= 2 && t.text[0] == 'f') {
        char *end = nullptr;
        const long v = std::strtol(t.text.c_str() + 1, &end, 10);
        if (*end == '\0' && v >= 0 && v < 32)
            return static_cast<unsigned>(v);
    }
    err(lineno, "expected an FPU register (f0..f31)");
}

unsigned
Assembler::parseCopNum(Cursor &c, unsigned lineno) const
{
    const Token &t = c.next();
    if (t.kind == Token::Ident && t.text.size() == 2 && t.text[0] == 'c' &&
        t.text[1] >= '1' && t.text[1] <= '7') {
        return static_cast<unsigned>(t.text[1] - '0');
    }
    err(lineno, "expected a coprocessor number (c1..c7)");
}

std::optional<std::int64_t>
Assembler::lookup(const std::string &sym) const
{
    if (auto it = equs_.find(sym); it != equs_.end())
        return it->second;
    if (auto it = prog_.symbols.find(sym); it != prog_.symbols.end()) {
        exprUsedLabel_ = true;
        return static_cast<std::int64_t>(it->second);
    }
    return std::nullopt;
}

std::int64_t
Assembler::parseExpr(Cursor &c, unsigned lineno) const
{
    std::int64_t value = 0;
    bool neg = false;
    if (tryPunct(c, "-"))
        neg = true;
    else
        (void)tryPunct(c, "+");

    const Token &t = c.next();
    if (t.kind == Token::Number) {
        value = t.value;
    } else if (t.kind == Token::Ident) {
        auto v = lookup(t.text);
        if (!v) {
            if (pass2_)
                err(lineno, strformat("undefined symbol '%s'",
                                      t.text.c_str()));
            value = 0; // pass 1: size does not depend on the value
        } else {
            value = *v;
        }
    } else {
        err(lineno, "expected an expression");
    }
    if (neg)
        value = -value;

    while (c.peek().kind == Token::Punct &&
           (c.peek().text == "+" || c.peek().text == "-")) {
        const bool minus = c.next().text == "-";
        const Token &u = c.next();
        std::int64_t rhs = 0;
        if (u.kind == Token::Number) {
            rhs = u.value;
        } else if (u.kind == Token::Ident) {
            auto v = lookup(u.text);
            if (!v && pass2_)
                err(lineno, strformat("undefined symbol '%s'",
                                      u.text.c_str()));
            rhs = v.value_or(0);
        } else {
            err(lineno, "expected a term after +/-");
        }
        value += minus ? -rhs : rhs;
    }
    return value;
}

void
Assembler::expectPunct(Cursor &c, const char *p, unsigned lineno) const
{
    const Token &t = c.next();
    if (t.kind != Token::Punct || t.text != p)
        err(lineno, strformat("expected '%s'", p));
}

bool
Assembler::tryPunct(Cursor &c, const char *p) const
{
    if (c.peek().kind == Token::Punct && c.peek().text == p) {
        c.next();
        return true;
    }
    return false;
}

std::pair<std::int64_t, unsigned>
Assembler::parseAddress(Cursor &c, unsigned lineno) const
{
    std::int64_t offset = 0;
    // Either "(rb)" immediately, or an expression, optionally "(rb)".
    if (!(c.peek().kind == Token::Punct && c.peek().text == "("))
        offset = parseExpr(c, lineno);
    unsigned base = 0;
    if (tryPunct(c, "(")) {
        base = parseReg(c, lineno);
        expectPunct(c, ")", lineno);
    }
    return {offset, base};
}

std::int32_t
Assembler::branchDisp(std::int64_t target, addr_t pc, unsigned lineno) const
{
    const std::int64_t disp =
        target - (static_cast<std::int64_t>(pc) + 1);
    if (!pass2_)
        return 0;
    if (!fitsSigned(disp, 17))
        err(lineno, "branch/jump target out of range");
    return static_cast<std::int32_t>(disp);
}

// ---------------------------------------------------------------------
// Pass 1
// ---------------------------------------------------------------------

bool
Assembler::isTextAddress(std::int64_t value) const
{
    for (std::size_t i = 0; i < prog_.sections.size(); ++i) {
        const auto &sec = prog_.sections[i];
        if (!sec.isText)
            continue;
        const auto lo = static_cast<std::int64_t>(sec.base);
        const auto hi = lo + static_cast<std::int64_t>(sectionLoc_[i]);
        if (value >= lo && value < hi)
            return true;
    }
    return false;
}

void
Assembler::switchSection(const std::string &which, addr_t base,
                         bool has_base, unsigned lineno)
{
    // Reuse an existing section of the same name, else create one.
    for (std::size_t i = 0; i < prog_.sections.size(); ++i) {
        if (prog_.sections[i].name == which) {
            if (has_base)
                err(lineno, "section base may only be set once");
            curSection_ = i;
            return;
        }
    }
    Section s;
    s.name = which;
    if (which == ".text") {
        s.space = AddressSpace::User;
        s.isText = true;
        s.base = has_base ? base : defaultTextBase;
    } else if (which == ".data") {
        s.space = AddressSpace::User;
        s.base = has_base ? base : defaultDataBase;
    } else if (which == ".systext") {
        s.space = AddressSpace::System;
        s.isText = true;
        s.base = has_base ? base : exceptionVector;
    } else if (which == ".sysdata") {
        s.space = AddressSpace::System;
        s.base = has_base ? base : 0x4000;
    } else {
        err(lineno, strformat("unknown section '%s'", which.c_str()));
    }
    prog_.sections.push_back(std::move(s));
    sectionLoc_.push_back(0);
    curSection_ = prog_.sections.size() - 1;
}

void
Assembler::defineLabel(const std::string &label, unsigned lineno)
{
    if (prog_.symbols.count(label) || equs_.count(label))
        err(lineno, strformat("symbol '%s' redefined", label.c_str()));
    prog_.symbols[label] = cur().base + loc();
}

unsigned
Assembler::statementSize(const Statement &st) const
{
    const auto &m = st.mnemonic;
    if (m == ".word") {
        // count expressions: count commas + 1 (expressions are non-empty)
        unsigned n = 1;
        for (const auto &t : st.operands)
            if (t.kind == Token::Punct && t.text == ",")
                ++n;
        return n;
    }
    if (m == ".space") {
        Cursor c{&st.operands, 0};
        const auto n = parseExpr(c, st.lineno);
        if (n < 0)
            err(st.lineno, ".space size must be non-negative");
        return static_cast<unsigned>(n);
    }
    if (m == "li" || m == "la")
        return 2;
    return 1;
}

void
Assembler::parseLine(const std::string &raw_line, unsigned lineno)
{
    // Strip comments.
    std::string line = raw_line;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#') {
            line.resize(i);
            break;
        }
    }

    auto toks = tokenize(line, lineno, file_);

    std::size_t pos = 0;
    // Labels: IDENT ':'
    while (toks[pos].kind == Token::Ident &&
           toks[pos + 1].kind == Token::Punct && toks[pos + 1].text == ":") {
        if (prog_.sections.empty())
            switchSection(".text", 0, false, lineno);
        defineLabel(toks[pos].text, lineno);
        pos += 2;
    }
    if (toks[pos].kind == Token::End)
        return;
    if (toks[pos].kind != Token::Ident)
        err(lineno, "expected a mnemonic or directive");

    Statement st;
    st.lineno = lineno;
    st.mnemonic = toks[pos].text;
    for (auto &ch : st.mnemonic)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    st.operands.assign(toks.begin() + static_cast<long>(pos) + 1,
                       toks.end());

    // Section and symbol directives are handled immediately.
    const auto &m = st.mnemonic;
    if (m == ".text" || m == ".data" || m == ".systext" || m == ".sysdata") {
        bool has_base = false;
        addr_t base = 0;
        Cursor c{&st.operands, 0};
        if (!c.atEnd()) {
            base = static_cast<addr_t>(parseExpr(c, lineno));
            has_base = true;
        }
        switchSection(m, base, has_base, lineno);
        return;
    }
    if (m == ".equ" || m == ".set") {
        Cursor c{&st.operands, 0};
        const Token &nameTok = c.next();
        if (nameTok.kind != Token::Ident)
            err(lineno, ".equ needs a symbol name");
        expectPunct(c, ",", lineno);
        const auto v = parseExpr(c, lineno);
        if (prog_.symbols.count(nameTok.text) || equs_.count(nameTok.text))
            err(lineno, strformat("symbol '%s' redefined",
                                  nameTok.text.c_str()));
        equs_[nameTok.text] = v;
        return;
    }
    if (prog_.sections.empty())
        switchSection(".text", 0, false, lineno);

    if (m == ".org") {
        Cursor c{&st.operands, 0};
        const auto target = parseExpr(c, lineno);
        const auto want = static_cast<std::int64_t>(cur().base) +
            static_cast<std::int64_t>(loc());
        if (target < want)
            err(lineno, ".org cannot move backwards");
        st.section = curSection_;
        st.addr = cur().base + loc();
        st.size = static_cast<unsigned>(target - want);
        st.mnemonic = ".space"; // pad identically to .space
        st.operands.clear();
        Token n;
        n.kind = Token::Number;
        n.value = st.size;
        st.operands.push_back(n);
        st.operands.push_back({Token::End, "", 0});
        loc() += st.size;
        statements_.push_back(std::move(st));
        return;
    }
    if (m == ".align") {
        Cursor c{&st.operands, 0};
        const auto align = parseExpr(c, lineno);
        if (align <= 0 || !isPowerOf2(static_cast<std::uint64_t>(align)))
            err(lineno, ".align needs a positive power of two");
        const addr_t here = cur().base + loc();
        const addr_t mask = static_cast<addr_t>(align) - 1;
        const unsigned pad =
            static_cast<unsigned>(((here + mask) & ~mask) - here);
        st.section = curSection_;
        st.addr = here;
        st.size = pad;
        st.mnemonic = ".space";
        st.operands.clear();
        Token n;
        n.kind = Token::Number;
        n.value = pad;
        st.operands.push_back(n);
        st.operands.push_back({Token::End, "", 0});
        loc() += pad;
        statements_.push_back(std::move(st));
        return;
    }

    st.section = curSection_;
    st.addr = cur().base + loc();
    st.size = statementSize(st);
    if (!cur().isText && m != ".word" && m != ".space")
        err(lineno, "instructions are only allowed in text sections");
    loc() += st.size;
    statements_.push_back(std::move(st));
}

// ---------------------------------------------------------------------
// Pass 2
// ---------------------------------------------------------------------

void
Assembler::encodeStatement(const Statement &st)
{
    Section &sec = prog_.sections[st.section];
    auto emit = [&sec, &st, this](word_t w) {
        const auto idx = (st.addr - sec.base) +
            static_cast<addr_t>(sec.words.size() -
                                sec.words.size()); // appended in order
        (void)idx;
        sec.words.push_back(w);
        if (sec.isText)
            sec.slots.push_back(0);
        if (sec.words.size() > (1u << 26))
            err(st.lineno, "section too large");
    };

    const auto &m = st.mnemonic;
    Cursor c{&st.operands, 0};

    if (m == ".word") {
        while (true) {
            exprUsedLabel_ = false;
            const auto v = parseExpr(c, st.lineno);
            if (exprUsedLabel_ && isTextAddress(v)) {
                // A code pointer: the reorganizer must remap it after
                // relaying out the text.
                prog_.textRefs.push_back(
                    {st.section,
                     static_cast<addr_t>(sec.words.size())});
            }
            emit(static_cast<word_t>(static_cast<std::uint64_t>(v)));
            if (!tryPunct(c, ","))
                break;
        }
        return;
    }
    if (m == ".space") {
        const auto n = parseExpr(c, st.lineno);
        for (std::int64_t i = 0; i < n; ++i)
            emit(sec.isText ? encodeNop() : 0u);
        return;
    }

    // li / la expand to two instructions.
    if (m == "li" || m == "la") {
        const unsigned rd = parseReg(c, st.lineno);
        expectPunct(c, ",", st.lineno);
        exprUsedLabel_ = false;
        const auto v64 = parseExpr(c, st.lineno);
        if (exprUsedLabel_ && isTextAddress(v64)) {
            err(st.lineno,
                "text addresses cannot be loaded as immediates (the "
                "reorganizer relays out code); keep the pointer in a "
                "data word (.word label) and load it");
        }
        const auto v = static_cast<std::int32_t>(v64);
        const std::int32_t hi = v >> 15;
        const std::int32_t lo = v & 0x7fff;
        emit(encodeImm(ImmOp::Lih, 0, rd, hi));
        emit(encodeImm(ImmOp::Addi, rd, rd, lo));
        return;
    }

    emit(encodeInstr(st));
}

word_t
Assembler::encodeInstr(const Statement &st)
{
    const auto &m = st.mnemonic;
    const unsigned lineno = st.lineno;
    Cursor c{&st.operands, 0};

    // ---- pseudo-ops ----
    if (m == "nop")
        return encodeNop();
    if (m == "halt")
        return encodeTrap(trapCodeHalt);
    if (m == "fail")
        return encodeTrap(trapCodeFail);
    if (m == "ret")
        return encodeJumpReg(ImmOp::Jr, reg::ra, 0, 0);
    if (m == "mov") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        return encodeCompute(ComputeOp::Add, rs, 0, rd);
    }
    if (m == "neg") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        return encodeCompute(ComputeOp::Sub, 0, rs, rd);
    }
    if (m == "call") {
        const auto target = parseExpr(c, lineno);
        return encodeJump(ImmOp::Jal, reg::ra,
                          branchDisp(target, st.addr, lineno));
    }

    // ---- branches (with optional .sq / .sqn suffix) ----
    {
        std::string stem = m;
        SquashType sq = SquashType::NoSquash;
        if (stem.size() > 4 && stem.ends_with(".sqn")) {
            sq = SquashType::SquashTaken;
            stem = stem.substr(0, stem.size() - 4);
        } else if (stem.size() > 3 && stem.ends_with(".sq")) {
            sq = SquashType::SquashNotTaken;
            stem = stem.substr(0, stem.size() - 3);
        }
        std::optional<BranchCond> cond;
        if (stem == "beq")
            cond = BranchCond::Eq;
        else if (stem == "bne")
            cond = BranchCond::Ne;
        else if (stem == "blt")
            cond = BranchCond::Lt;
        else if (stem == "bge")
            cond = BranchCond::Ge;
        else if (stem == "bhs")
            cond = BranchCond::Hs;
        else if (stem == "blo")
            cond = BranchCond::Lo;
        else if (stem == "bt" || stem == "b")
            cond = BranchCond::T;

        if (cond) {
            unsigned rs1 = 0, rs2 = 0;
            if (stem != "bt" && stem != "b") {
                rs1 = parseReg(c, lineno);
                expectPunct(c, ",", lineno);
                rs2 = parseReg(c, lineno);
                expectPunct(c, ",", lineno);
            }
            const auto target = parseExpr(c, lineno);
            const auto disp = branchDisp(target, st.addr, lineno);
            if (pass2_ && !fitsSigned(disp, 15))
                err(lineno, "branch target out of range");
            return encodeBranch(*cond, sq, rs1, rs2, disp);
        }
        if (stem == "bz" || stem == "bnz") {
            const unsigned rs = parseReg(c, lineno);
            expectPunct(c, ",", lineno);
            const auto target = parseExpr(c, lineno);
            const auto disp = branchDisp(target, st.addr, lineno);
            if (pass2_ && !fitsSigned(disp, 15))
                err(lineno, "branch target out of range");
            return encodeBranch(stem == "bz" ? BranchCond::Eq
                                             : BranchCond::Ne,
                                sq, rs, 0, disp);
        }
    }

    // ---- memory ----
    if (m == "ld" || m == "ldt" || m == "st") {
        const unsigned rsd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto [off, base] = parseAddress(c, lineno);
        if (pass2_ && !fitsSigned(off, 17))
            err(lineno, "memory offset out of range");
        const MemOp op = m == "ld" ? MemOp::Ld
            : m == "ldt" ? MemOp::Ldt : MemOp::St;
        return encodeMem(op, base, rsd,
                         static_cast<std::int32_t>(pass2_ ? off : 0));
    }
    if (m == "ldf" || m == "stf") {
        const unsigned freg = parseFpuReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto [off, base] = parseAddress(c, lineno);
        if (pass2_ && !fitsSigned(off, 17))
            err(lineno, "memory offset out of range");
        return encodeMem(m == "ldf" ? MemOp::Ldf : MemOp::Stf, base, freg,
                         static_cast<std::int32_t>(pass2_ ? off : 0));
    }
    if (m == "aluc") {
        const unsigned cop = parseCopNum(c, lineno);
        expectPunct(c, ",", lineno);
        const auto op = parseExpr(c, lineno);
        return encodeCop(MemOp::Aluc, cop,
                         static_cast<std::uint32_t>(op), 0);
    }
    if (m == "movfrc") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned cop = parseCopNum(c, lineno);
        expectPunct(c, ",", lineno);
        const auto op = parseExpr(c, lineno);
        return encodeCop(MemOp::Movfrc, cop,
                         static_cast<std::uint32_t>(op), rd);
    }
    if (m == "movtoc") {
        const unsigned cop = parseCopNum(c, lineno);
        expectPunct(c, ",", lineno);
        const auto op = parseExpr(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        return encodeCop(MemOp::Movtoc, cop,
                         static_cast<std::uint32_t>(op), rs);
    }

    // ---- compute ----
    {
        std::optional<ComputeOp> op;
        if (m == "add")
            op = ComputeOp::Add;
        else if (m == "sub")
            op = ComputeOp::Sub;
        else if (m == "and")
            op = ComputeOp::And;
        else if (m == "or")
            op = ComputeOp::Or;
        else if (m == "xor")
            op = ComputeOp::Xor;
        else if (m == "bic")
            op = ComputeOp::Bic;
        else if (m == "mstep")
            op = ComputeOp::Mstep;
        else if (m == "dstep")
            op = ComputeOp::Dstep;
        if (op) {
            const unsigned rd = parseReg(c, lineno);
            expectPunct(c, ",", lineno);
            const unsigned rs1 = parseReg(c, lineno);
            expectPunct(c, ",", lineno);
            const unsigned rs2 = parseReg(c, lineno);
            return encodeCompute(*op, rs1, rs2, rd);
        }
    }
    if (m == "sll" || m == "srl" || m == "sra") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto amount = parseExpr(c, lineno);
        if (amount < 0 || amount >= 32)
            err(lineno, "shift amount out of range");
        const ComputeOp op = m == "sll" ? ComputeOp::Sll
            : m == "srl" ? ComputeOp::Srl : ComputeOp::Sra;
        return encodeShift(op, rs, rd, static_cast<unsigned>(amount));
    }
    if (m == "fsh") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs1 = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs2 = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto amount = parseExpr(c, lineno);
        if (amount < 0 || amount >= 32)
            err(lineno, "funnel shift amount out of range");
        return encodeCompute(ComputeOp::Fsh, rs1, rs2, rd,
                             static_cast<unsigned>(amount));
    }
    if (m == "movfrs") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const Token &t = c.next();
        auto sr = t.kind == Token::Ident ? specialRegNumber(t.text)
                                         : std::nullopt;
        if (!sr)
            err(lineno, "expected a special register name");
        return encodeMovSpecial(ComputeOp::Movfrs, *sr, rd);
    }
    if (m == "movtos") {
        const Token &t = c.next();
        auto sr = t.kind == Token::Ident ? specialRegNumber(t.text)
                                         : std::nullopt;
        if (!sr)
            err(lineno, "expected a special register name");
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        return encodeMovSpecial(ComputeOp::Movtos, *sr, rs);
    }

    // ---- immediate / jumps ----
    if (m == "addi") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const unsigned rs = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto v = parseExpr(c, lineno);
        if (pass2_ && !fitsSigned(v, 17))
            err(lineno, "immediate out of range");
        return encodeImm(ImmOp::Addi, rs, rd,
                         static_cast<std::int32_t>(pass2_ ? v : 0));
    }
    if (m == "lih") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto v = parseExpr(c, lineno);
        if (pass2_ && !fitsSigned(v, 17))
            err(lineno, "immediate out of range");
        return encodeImm(ImmOp::Lih, 0, rd,
                         static_cast<std::int32_t>(pass2_ ? v : 0));
    }
    if (m == "jmp") {
        const auto target = parseExpr(c, lineno);
        return encodeJump(ImmOp::Jmp, 0, branchDisp(target, st.addr,
                                                    lineno));
    }
    if (m == "jal") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto target = parseExpr(c, lineno);
        return encodeJump(ImmOp::Jal, rd, branchDisp(target, st.addr,
                                                     lineno));
    }
    if (m == "jr") {
        const auto [off, base] = parseAddress(c, lineno);
        if (pass2_ && !fitsSigned(off, 17))
            err(lineno, "jump offset out of range");
        return encodeJumpReg(ImmOp::Jr, base, 0,
                             static_cast<std::int32_t>(pass2_ ? off : 0));
    }
    if (m == "jalr") {
        const unsigned rd = parseReg(c, lineno);
        expectPunct(c, ",", lineno);
        const auto [off, base] = parseAddress(c, lineno);
        if (pass2_ && !fitsSigned(off, 17))
            err(lineno, "jump offset out of range");
        return encodeJumpReg(ImmOp::Jalr, base, rd,
                             static_cast<std::int32_t>(pass2_ ? off : 0));
    }
    if (m == "jpc")
        return encodeJpc();
    if (m == "trap") {
        const auto code = parseExpr(c, lineno);
        if (code < 0 || !fitsUnsigned(static_cast<std::uint64_t>(code), 17))
            err(lineno, "trap code out of range");
        return encodeTrap(static_cast<std::uint32_t>(code));
    }

    err(lineno, strformat("unknown mnemonic '%s'", m.c_str()));
}

Program
Assembler::run()
{
    // Pass 0: expand .rept/.endr blocks textually (nesting allowed).
    // Line numbers are preserved by attributing every expanded copy to
    // the .rept line's neighbourhood.
    struct NumberedLine
    {
        std::string text;
        unsigned lineno;
    };
    std::vector<NumberedLine> lines;
    {
        std::vector<NumberedLine> raw;
        std::istringstream is(source_);
        std::string line;
        unsigned lineno = 0;
        while (std::getline(is, line))
            raw.push_back({line, ++lineno});

        std::function<void(std::size_t, std::size_t, unsigned)> expand =
            [&](std::size_t lo, std::size_t hi, unsigned times) {
                for (unsigned rep = 0; rep < times; ++rep) {
                    for (std::size_t i = lo; i < hi; ++i) {
                        std::string text = raw[i].text;
                        for (std::size_t c = 0; c < text.size(); ++c) {
                            if (text[c] == ';' || text[c] == '#') {
                                text.resize(c);
                                break;
                            }
                        }
                        std::istringstream ls(text);
                        std::string first;
                        ls >> first;
                        for (auto &ch : first)
                            ch = static_cast<char>(
                                std::tolower(
                                    static_cast<unsigned char>(ch)));
                        if (first == ".rept") {
                            long n = 0;
                            if (!(ls >> n) || n < 0 || n > 100000) {
                                fatal(strformat(
                                    "%s:%u: bad .rept count",
                                    file_.c_str(), raw[i].lineno));
                            }
                            // Find the matching .endr.
                            std::size_t depth = 1, j = i + 1;
                            for (; j < hi; ++j) {
                                std::istringstream js(raw[j].text);
                                std::string w;
                                js >> w;
                                for (auto &ch : w)
                                    ch = static_cast<char>(std::tolower(
                                        static_cast<unsigned char>(ch)));
                                if (w == ".rept")
                                    ++depth;
                                else if (w == ".endr" && --depth == 0)
                                    break;
                            }
                            if (j >= hi) {
                                fatal(strformat(
                                    "%s:%u: .rept without .endr",
                                    file_.c_str(), raw[i].lineno));
                            }
                            expand(i + 1, j,
                                   static_cast<unsigned>(n));
                            i = j; // skip past .endr
                        } else if (first == ".endr") {
                            fatal(strformat(
                                "%s:%u: .endr without .rept",
                                file_.c_str(), raw[i].lineno));
                        } else {
                            lines.push_back(raw[i]);
                        }
                    }
                }
            };
        expand(0, raw.size(), 1);
    }

    // Pass 1: parse and lay out.
    for (const auto &nl : lines)
        parseLine(nl.text, nl.lineno);

    // Pass 2: encode.
    pass2_ = true;
    for (const auto &st : statements_) {
        Section &sec = prog_.sections[st.section];
        const auto expected = st.addr - sec.base;
        if (sec.words.size() != expected) {
            err(st.lineno, strformat("internal layout mismatch "
                                     "(%zu vs %u words)",
                                     sec.words.size(), expected));
        }
        encodeStatement(st);
        if (sec.words.size() != expected + st.size)
            err(st.lineno, "internal size mismatch");
    }

    // Entry point: "_start" or "start" if defined, else first text word.
    const bool hasText = [this] {
        for (const auto &sec : prog_.sections)
            if (sec.isText)
                return true;
        return false;
    }();
    if (auto it = prog_.symbols.find("_start"); it != prog_.symbols.end())
        prog_.entry = it->second;
    else if (auto it2 = prog_.symbols.find("start");
             it2 != prog_.symbols.end())
        prog_.entry = it2->second;
    else if (hasText)
        prog_.entry = prog_.text().base;
    for (const auto &s : prog_.sections) {
        if (s.isText && prog_.entry >= s.base && prog_.entry < s.end()) {
            prog_.entrySpace = s.space;
            break;
        }
    }
    return std::move(prog_);
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Assembler as(source, name);
    return as.run();
}

} // namespace mipsx::assembler
