/**
 * @file
 * A two-pass assembler for the MX32 instruction set.
 *
 * Syntax overview (full grammar in the implementation):
 *
 *     ; comment            # comment
 *     .text [base]         start/continue the user text section
 *     .data [base]         start/continue the user data section
 *     .systext [base]      system-space text (exception handlers; base 0)
 *     .sysdata [base]      system-space data
 *     .org ADDR            advance the location counter (pads)
 *     .word E, E, ...      literal data words
 *     .space N             N zero words
 *     .equ NAME, E         define an absolute symbol
 *     .align N             pad to an N-word boundary (N a power of two)
 *
 *     label:  add  r1, r2, r3
 *             addi r1, r2, -7
 *             ld   r4, 12(sp)        ; also: ld r4, symbol / symbol(rb)
 *             st   r4, 12(sp)
 *             beq  r1, r2, label     ; beq.sq / beq.sqn squash variants
 *             jal  ra, func          ; pseudo: call func
 *             jr   0(ra)             ; pseudo: ret
 *             ldf  f2, 0(r5)         ; stf, aluc c2,0x12, movfrc, movtoc
 *             movfrs r1, psw         ; movtos psw, r1
 *
 * Pseudo-ops: nop, mov, neg, li (2 words: lih+addi), la, b, bz, bnz,
 * call, ret, halt, fail.
 *
 * The assembler emits *sequential semantics* code: no delay slots. The
 * code reorganizer (src/reorg) lowers the program to the pipelined
 * machine's delayed-branch / load-delay form, exactly as the MIPS-X
 * software system did.
 */

#ifndef MIPSX_ASSEMBLER_ASSEMBLER_HH
#define MIPSX_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "assembler/program.hh"

namespace mipsx::assembler
{

/** Default base of the user text section (word address). */
inline constexpr addr_t defaultTextBase = 0x1000;

/** Default base of the user data section (word address). */
inline constexpr addr_t defaultDataBase = 0x4000;

/**
 * Assemble @p source into a program image.
 *
 * @param source The assembly text.
 * @param name A name used in diagnostics.
 * @return The assembled program.
 * @throws SimError on any syntax or range error, with line information.
 */
Program assemble(const std::string &source,
                 const std::string &name = "<asm>");

} // namespace mipsx::assembler

#endif // MIPSX_ASSEMBLER_ASSEMBLER_HH
