#include "assembler/program.hh"

#include "common/sim_error.hh"

namespace mipsx::assembler
{

addr_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal(strformat("program has no symbol '%s'", name.c_str()));
    return it->second;
}

const Section &
Program::text() const
{
    for (const auto &s : sections)
        if (s.isText)
            return s;
    fatal("program has no text section");
}

Section &
Program::text()
{
    for (auto &s : sections)
        if (s.isText)
            return s;
    fatal("program has no text section");
}

const Section *
Program::sectionAt(AddressSpace space, addr_t addr) const
{
    for (const auto &s : sections) {
        if (s.space == space && addr >= s.base && addr < s.end())
            return &s;
    }
    return nullptr;
}

std::size_t
Program::textSize() const
{
    std::size_t n = 0;
    for (const auto &s : sections)
        if (s.isText)
            n += s.words.size();
    return n;
}

} // namespace mipsx::assembler
