/**
 * @file
 * Program images: the output of the assembler, the input/output of the
 * code reorganizer, and the thing the machine loads into memory.
 */

#ifndef MIPSX_ASSEMBLER_PROGRAM_HH
#define MIPSX_ASSEMBLER_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mipsx::assembler
{

/**
 * Provenance of an instruction with respect to pipeline-constraint
 * scheduling. The reorganizer tags every instruction it places in a branch
 * or load delay slot so the simulator can attribute wasted cycles the way
 * the paper's Table 1 does ("any no-op instructions in the branch delay
 * slots are attributed to the cost of the branch").
 */
enum class SlotKind : std::uint8_t
{
    None = 0,        ///< not a delay-slot instruction
    BrNop = 1,       ///< branch slot filled with a no-op
    BrHoisted = 2,   ///< branch slot: hoisted from above; always useful
    BrFromTarget = 3, ///< branch slot from the taken path
    BrFromFall = 4,  ///< branch slot from the fall-through path
    LoadNop = 5,     ///< no-op inserted to satisfy the load delay
};

/** A contiguous run of words destined for one address range. */
struct Section
{
    std::string name;
    AddressSpace space = AddressSpace::User;
    addr_t base = 0;
    bool isText = false;
    std::vector<word_t> words;

    /** Parallel to @ref words for text sections; SlotKind per word. */
    std::vector<std::uint8_t> slots;

    addr_t end() const { return base + static_cast<addr_t>(words.size()); }

    SlotKind
    slotAt(addr_t addr) const
    {
        const auto idx = addr - base;
        if (idx < slots.size())
            return static_cast<SlotKind>(slots[idx]);
        return SlotKind::None;
    }
};

/**
 * A data word that holds the address of a text location (a function
 * pointer or jump-table entry). The code reorganizer remaps these when
 * it relays out the text. The assembler records one for every .word
 * whose expression uses a label and resolves into a text section.
 */
struct TextRef
{
    std::size_t section = 0; ///< index of the *data* section
    addr_t offset = 0;       ///< word offset within it
};

/** A fully assembled (and possibly reorganized) program. */
struct Program
{
    std::vector<Section> sections;
    std::map<std::string, addr_t> symbols;
    std::vector<TextRef> textRefs;
    addr_t entry = 0;
    AddressSpace entrySpace = AddressSpace::User;

    /** Look up a symbol; throws SimError if missing. */
    addr_t symbol(const std::string &name) const;

    /** The first text section; throws if there is none. */
    const Section &text() const;
    Section &text();

    /** Find the section containing @p addr in @p space, or nullptr. */
    const Section *sectionAt(AddressSpace space, addr_t addr) const;

    /** Total instruction words across all text sections. */
    std::size_t textSize() const;
};

} // namespace mipsx::assembler

#endif // MIPSX_ASSEMBLER_PROGRAM_HH
