/**
 * @file
 * Machine composition: main memory + pipelined CPU + coprocessors, with
 * program loading and convenient run/inspect helpers. This is the main
 * entry point of the library's public API for running workloads on the
 * cycle-accurate model.
 */

#ifndef MIPSX_SIM_MACHINE_HH
#define MIPSX_SIM_MACHINE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "core/cpu.hh"
#include "coproc/fpu.hh"
#include "memory/main_memory.hh"
#include "sim/iss.hh"
#include "trace/trace.hh"

namespace mipsx::sim
{

/** Machine-level configuration. */
struct MachineConfig
{
    core::CpuConfig cpu{};
    bool attachFpu = true;
    bool attachCounterCop = false;
    /** Initial stack pointer (r29) in the entry address space. */
    addr_t stackTop = 0x70000;
    /**
     * Depth of the per-machine event-trace ring buffer; 0 (the
     * default) disables tracing entirely — the CPU's trace pointer
     * stays null, so the hot path pays nothing. Each Machine owns its
     * own buffer, keeping the parallel suite runner deterministic.
     */
    std::size_t traceDepth = 0;

    /**
     * ISS-powered fast-forward: run the functional simulator (in its
     * superblock mode) on the machine's own memory up to a checkpoint —
     * @p instructions executed, or the next visit of @p pc — then
     * transfer the architectural state (GPRs, MD, PSW/PSWold, PC chain,
     * coprocessor state) into a freshly reset pipeline and go
     * cycle-accurate from there. Skips the simulation cost of warm-up
     * phases the study doesn't measure. Two caveats, both inherent:
     * the pipeline's caches start cold at the handoff (the ISS models
     * no timing), and cycle counts measure only the cycle-accurate
     * region. Architectural results are unchanged — the handoff happens
     * at a clean boundary (Iss::runUntil), and the ISS is the golden
     * model the pipeline is cross-checked against.
     */
    struct FastForward
    {
        std::uint64_t instructions = 0; ///< 0 = no step checkpoint
        bool hasPc = false;
        addr_t pc = 0; ///< used when hasPc
        bool enabled() const { return instructions != 0 || hasPc; }
    };
    FastForward fastForward{};

    /**
     * Run the first @p warmupInstructions retired instructions —
     * counted from the pipeline handoff, i.e. after any fast-forward
     * phase or checkpoint seed — with statistics gated off: run()
     * snapshots every counter at the gate (Machine::warmup) and
     * steadyCounters() reports totals minus that baseline. Caches and
     * branch state arrive warm at the gate while the measured window
     * excludes the warm-up itself. 0 disables the gate (the baseline
     * stays zero, so steadyCounters() == counters() bit for bit).
     */
    std::uint64_t warmupInstructions = 0;

    /**
     * Stop with StopReason::CommitLimit once this many instructions
     * (again counted from the handoff) have retired; 0 = run to halt.
     * The cut is exact: at most one instruction retires per cycle, so
     * the pipeline pauses at precisely this retire count — which is
     * how the interval engine makes adjacent interval windows tile
     * the monolithic run without gaps or overlaps.
     */
    std::uint64_t maxCommitted = 0;

    /**
     * Parallel interval simulation (sim/interval.hh): split the run
     * into this many instruction-count intervals. Plain Machine::run()
     * ignores the field — the suite runner, mipsx-run and mipsx-serve
     * route runs with intervals > 1 through sim::runIntervals, which
     * consumes it (together with warmupInstructions as the
     * per-interval warm-up length and sampleWindow below).
     */
    unsigned intervals = 1;

    /**
     * Sampled interval simulation: measure only the first this-many
     * retired instructions of each interval window and extrapolate the
     * rest (sim/interval.hh). 0 = exact tiling — every instruction is
     * simulated cycle-accurately exactly once. Ignored by plain run().
     */
    std::uint64_t sampleWindow = 0;

    /**
     * Reject ill-formed configurations with a SimError before any
     * component is built (delegates to CpuConfig::validate). The
     * Machine constructor calls this.
     */
    void validate() const { cpu.validate(); }
};

/** What the fast-forward phase of a run did (Machine::fastForwarded). */
struct FastForwardInfo
{
    bool ran = false;           ///< a fast-forward phase executed
    std::uint64_t issSteps = 0; ///< instructions the ISS executed
    IssStop issStop = IssStop::Running; ///< Running = checkpoint reached
    addr_t handoffPc = 0;       ///< where the pipeline took over
};

/**
 * Every counter one run accumulates: the pipeline statistics plus the
 * cache timing-model counters. One value type so the warm-up gate can
 * snapshot, subtract and compare them wholesale.
 */
struct MachineCounters
{
    core::PipelineStats pipeline;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t icacheRefillWords = 0;
    std::uint64_t icacheStalls = 0;
    std::uint64_t ecacheAccesses = 0;
    std::uint64_t ecacheMisses = 0;
    std::uint64_t ecacheWritebacks = 0;
    std::uint64_t ecacheMemCycles = 0; ///< memory-bus traffic cycles
    std::uint64_t ecacheStalls = 0;

    bool operator==(const MachineCounters &) const = default;
};

/** Field-wise a - b (a must dominate b: a later snapshot of the run). */
MachineCounters subtractCounters(const MachineCounters &a,
                                 const MachineCounters &b);
/** Field-wise accumulation (interval stitching). */
void accumulateCounters(MachineCounters &into, const MachineCounters &d);

/** What the warm-up gate of the last run() excluded (Machine::warmup). */
struct WarmupInfo
{
    bool ran = false;         ///< a warm-up gate was applied
    MachineCounters baseline; ///< every counter at the stats gate
};

/**
 * A mid-run architectural snapshot: everything needed to resume
 * execution at dynamic instruction @p steps on a fresh machine —
 * registers, coprocessor state, and a deep copy of memory as of that
 * instruction. Produced by the interval planner's single ISS pass
 * (sim/interval.cc) and consumed by Machine::seedCheckpoint. The
 * boundary is architecturally clean (Iss::runUntil), so seeding a
 * pipeline from it reproduces exactly the execution a fast-forward
 * handoff at the same instruction would.
 */
struct Checkpoint
{
    std::uint64_t steps = 0; ///< dynamic instructions retired before here
    addr_t pc = 0;
    std::vector<word_t> gprs;    ///< numGprs entries (index 0 unused)
    word_t md = 0;
    word_t psw = 0;
    word_t pswOld = 0;
    std::vector<word_t> pcChain; ///< pcChainDepth entries
    bool hasFpu = false;
    std::array<word_t, 32> fpuRegs{};
    bool fpuCondition = false;
    bool hasCounterCop = false;
    word_t copCounter = 0;
    word_t copThreshold = 0;
    memory::MainMemory memory;   ///< deep image copy (cloneImage)
};

/** A complete pipelined MIPS-X system. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /**
     * Load a program image; remembers it for slot annotations. An
     * optional predecode snapshot of exactly @p prog (the prepared-
     * workload fast path) is adopted copy-on-write instead of decoding
     * the text from scratch.
     */
    void load(const assembler::Program &prog,
              const memory::DecodedImage::Snapshot *decoded = nullptr);

    /**
     * Seed this machine from a mid-run checkpoint instead of a cold
     * start: adopts the checkpoint's memory image immediately, and the
     * next run() starts the pipeline from the checkpoint's
     * architectural state (no reset-to-entry, no fast-forward phase —
     * mutually exclusive with MachineConfig::fastForward). @p prog is
     * the program the checkpoint was taken from, kept for slot
     * annotations and symbol reads. One-shot: the adopted memory is
     * mutated by the run, so call run() once per seeding.
     */
    void seedCheckpoint(const assembler::Program &prog, Checkpoint &&cp);

    /** Reset and run the loaded program to completion. */
    core::RunResult run();

    /** The fast-forward phase of the last run() (ran=false if none). */
    const FastForwardInfo &fastForwarded() const { return ff_; }

    /** The warm-up gate of the last run() (ran=false if none). */
    const WarmupInfo &warmup() const { return warmup_; }

    /** Every counter accumulated so far (pipeline + cache models). */
    MachineCounters counters() const;

    /**
     * counters() minus the warm-up baseline: the steady-state window
     * the run measured. Without a warm-up gate the baseline is zero,
     * so this equals counters() bit for bit.
     */
    MachineCounters steadyCounters() const;

    core::Cpu &cpu() { return *cpu_; }
    const core::Cpu &cpu() const { return *cpu_; }
    memory::MainMemory &memory() { return mem_; }
    const assembler::Program &program() const { return *prog_; }

    /** The attached FPU (requires attachFpu). */
    coproc::Fpu &fpu();

    /** The event-trace ring (empty unless MachineConfig::traceDepth). */
    const trace::TraceBuffer &trace() const { return trace_; }
    trace::TraceBuffer &trace() { return trace_; }

    /** Read one memory word (post-run result checking). */
    word_t
    readWord(AddressSpace space, addr_t addr) const
    {
        return mem_.read(space, addr);
    }

    /** Read the word at @p symbol + @p offset in the user space. */
    word_t readSymbol(const std::string &symbol, addr_t offset = 0) const;

  private:
    /**
     * The fast-forward phase: ISS-execute to the configured checkpoint
     * on this machine's memory, then seed the (already reset) pipeline
     * with the ISS's architectural state. Returns a RunResult when the
     * ISS ended the run outright (unhandled exception — re-execution
     * from the vectored state would double-fault), otherwise the
     * pipeline continues from the handoff point.
     */
    std::optional<core::RunResult> fastForwardPhase();

    /** Apply the seeded checkpoint's register state to a reset CPU. */
    void applySeed();

    MachineConfig config_;
    memory::MainMemory mem_;
    trace::TraceBuffer trace_;
    std::unique_ptr<core::Cpu> cpu_;
    const assembler::Program *prog_ = nullptr;
    coproc::Fpu *fpu_ = nullptr;
    FastForwardInfo ff_;
    WarmupInfo warmup_;
    std::optional<Checkpoint> seed_; ///< memory already moved out
};

/** Result of a functional (ISS) run. */
struct IssRunResult
{
    IssStop reason = IssStop::Running;
    IssStats stats;
};

/**
 * Run @p prog on a fresh functional simulator over @p mem.
 * @p stack_top initialises r29.
 */
IssRunResult runIss(const assembler::Program &prog,
                    memory::MainMemory &mem, const IssConfig &config = {},
                    addr_t stack_top = 0x70000);

} // namespace mipsx::sim

#endif // MIPSX_SIM_MACHINE_HH
