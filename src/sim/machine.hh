/**
 * @file
 * Machine composition: main memory + pipelined CPU + coprocessors, with
 * program loading and convenient run/inspect helpers. This is the main
 * entry point of the library's public API for running workloads on the
 * cycle-accurate model.
 */

#ifndef MIPSX_SIM_MACHINE_HH
#define MIPSX_SIM_MACHINE_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "assembler/program.hh"
#include "core/cpu.hh"
#include "coproc/fpu.hh"
#include "memory/main_memory.hh"
#include "sim/iss.hh"
#include "trace/trace.hh"

namespace mipsx::sim
{

/** Machine-level configuration. */
struct MachineConfig
{
    core::CpuConfig cpu{};
    bool attachFpu = true;
    bool attachCounterCop = false;
    /** Initial stack pointer (r29) in the entry address space. */
    addr_t stackTop = 0x70000;
    /**
     * Depth of the per-machine event-trace ring buffer; 0 (the
     * default) disables tracing entirely — the CPU's trace pointer
     * stays null, so the hot path pays nothing. Each Machine owns its
     * own buffer, keeping the parallel suite runner deterministic.
     */
    std::size_t traceDepth = 0;

    /**
     * ISS-powered fast-forward: run the functional simulator (in its
     * superblock mode) on the machine's own memory up to a checkpoint —
     * @p instructions executed, or the next visit of @p pc — then
     * transfer the architectural state (GPRs, MD, PSW/PSWold, PC chain,
     * coprocessor state) into a freshly reset pipeline and go
     * cycle-accurate from there. Skips the simulation cost of warm-up
     * phases the study doesn't measure. Two caveats, both inherent:
     * the pipeline's caches start cold at the handoff (the ISS models
     * no timing), and cycle counts measure only the cycle-accurate
     * region. Architectural results are unchanged — the handoff happens
     * at a clean boundary (Iss::runUntil), and the ISS is the golden
     * model the pipeline is cross-checked against.
     */
    struct FastForward
    {
        std::uint64_t instructions = 0; ///< 0 = no step checkpoint
        bool hasPc = false;
        addr_t pc = 0; ///< used when hasPc
        bool enabled() const { return instructions != 0 || hasPc; }
    };
    FastForward fastForward{};

    /**
     * Reject ill-formed configurations with a SimError before any
     * component is built (delegates to CpuConfig::validate). The
     * Machine constructor calls this.
     */
    void validate() const { cpu.validate(); }
};

/** What the fast-forward phase of a run did (Machine::fastForwarded). */
struct FastForwardInfo
{
    bool ran = false;           ///< a fast-forward phase executed
    std::uint64_t issSteps = 0; ///< instructions the ISS executed
    IssStop issStop = IssStop::Running; ///< Running = checkpoint reached
    addr_t handoffPc = 0;       ///< where the pipeline took over
};

/** A complete pipelined MIPS-X system. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});

    /**
     * Load a program image; remembers it for slot annotations. An
     * optional predecode snapshot of exactly @p prog (the prepared-
     * workload fast path) is adopted copy-on-write instead of decoding
     * the text from scratch.
     */
    void load(const assembler::Program &prog,
              const memory::DecodedImage::Snapshot *decoded = nullptr);

    /** Reset and run the loaded program to completion. */
    core::RunResult run();

    /** The fast-forward phase of the last run() (ran=false if none). */
    const FastForwardInfo &fastForwarded() const { return ff_; }

    core::Cpu &cpu() { return *cpu_; }
    const core::Cpu &cpu() const { return *cpu_; }
    memory::MainMemory &memory() { return mem_; }
    const assembler::Program &program() const { return *prog_; }

    /** The attached FPU (requires attachFpu). */
    coproc::Fpu &fpu();

    /** The event-trace ring (empty unless MachineConfig::traceDepth). */
    const trace::TraceBuffer &trace() const { return trace_; }
    trace::TraceBuffer &trace() { return trace_; }

    /** Read one memory word (post-run result checking). */
    word_t
    readWord(AddressSpace space, addr_t addr) const
    {
        return mem_.read(space, addr);
    }

    /** Read the word at @p symbol + @p offset in the user space. */
    word_t readSymbol(const std::string &symbol, addr_t offset = 0) const;

  private:
    /**
     * The fast-forward phase: ISS-execute to the configured checkpoint
     * on this machine's memory, then seed the (already reset) pipeline
     * with the ISS's architectural state. Returns a RunResult when the
     * ISS ended the run outright (unhandled exception — re-execution
     * from the vectored state would double-fault), otherwise the
     * pipeline continues from the handoff point.
     */
    std::optional<core::RunResult> fastForwardPhase();

    MachineConfig config_;
    memory::MainMemory mem_;
    trace::TraceBuffer trace_;
    std::unique_ptr<core::Cpu> cpu_;
    const assembler::Program *prog_ = nullptr;
    coproc::Fpu *fpu_ = nullptr;
    FastForwardInfo ff_;
};

/** Result of a functional (ISS) run. */
struct IssRunResult
{
    IssStop reason = IssStop::Running;
    IssStats stats;
};

/**
 * Run @p prog on a fresh functional simulator over @p mem.
 * @p stack_top initialises r29.
 */
IssRunResult runIss(const assembler::Program &prog,
                    memory::MainMemory &mem, const IssConfig &config = {},
                    addr_t stack_top = 0x70000);

} // namespace mipsx::sim

#endif // MIPSX_SIM_MACHINE_HH
