#include "sim/interval.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "coproc/counter_cop.hh"
#include "coproc/fpu.hh"
#include "isa/isa.hh"
#include "trace/metrics.hh"

namespace mipsx::sim
{

namespace
{

const char *
issStopName(IssStop st)
{
    switch (st) {
      case IssStop::Running: return "running";
      case IssStop::Halt: return "halt";
      case IssStop::Fail: return "fail";
      case IssStop::MaxSteps: return "max-steps";
      case IssStop::InvalidInstruction: return "invalid-instruction";
      case IssStop::UnhandledException: return "unhandled-exception";
    }
    return "?";
}

/**
 * The planning ISS mirrors Machine::fastForwardPhase exactly: same
 * mode, same initial PSW/stack, same coprocessors, block execution.
 * Its maxSteps is the pipeline's cycle budget — the pipeline retires
 * at most one instruction per cycle, so any run it could finish takes
 * at most that many ISS steps.
 */
IssConfig
planIssConfig(const MachineConfig &cfg, const assembler::Program &prog)
{
    IssConfig ic;
    ic.mode = IssMode::Delayed;
    ic.branchDelay = cfg.cpu.branchDelay;
    ic.exec = IssExec::Block;
    ic.initialPsw = cfg.cpu.initialPsw;
    if (prog.entrySpace == AddressSpace::System)
        ic.initialPsw |= isa::psw_bits::mode;
    ic.maxSteps = cfg.cpu.maxCycles;
    return ic;
}

void
attachPlanCops(Iss &iss, const MachineConfig &cfg)
{
    if (cfg.attachFpu)
        iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    if (cfg.attachCounterCop)
        iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
}

/** Snapshot the full architectural state at the ISS's current step. */
Checkpoint
capture(const Iss &iss, const memory::MainMemory &mem,
        const MachineConfig &cfg)
{
    Checkpoint cp;
    cp.steps = iss.stats().steps;
    cp.pc = iss.pc();
    cp.gprs.resize(numGprs, 0);
    for (unsigned r = 1; r < numGprs; ++r)
        cp.gprs[r] = iss.gpr(r);
    cp.md = iss.md();
    cp.psw = iss.psw().bits();
    cp.pswOld = iss.pswOld().bits();
    cp.pcChain.resize(pcChainDepth, 0);
    for (unsigned i = 0; i < pcChainDepth; ++i)
        cp.pcChain[i] = iss.pcChain().read(i);
    if (cfg.attachFpu) {
        cp.hasFpu = true;
        const auto &src =
            static_cast<const coproc::Fpu &>(iss.coprocessor(1));
        for (unsigned r = 0; r < 32; ++r)
            cp.fpuRegs[r] = src.regBits(r);
        cp.fpuCondition = src.condition();
    }
    if (cfg.attachCounterCop) {
        cp.hasCounterCop = true;
        const auto &src =
            static_cast<const coproc::CounterCop &>(iss.coprocessor(2));
        cp.copCounter = src.counter();
        cp.copThreshold = src.threshold();
    }
    cp.memory = mem.cloneImage();
    return cp;
}

/** Round-to-nearest v * num / den without intermediate overflow. */
std::uint64_t
scaleCount(std::uint64_t v, std::uint64_t num, std::uint64_t den)
{
    if (!den || !v)
        return 0;
    const auto wide = static_cast<unsigned __int128>(v) * num + den / 2;
    return static_cast<std::uint64_t>(wide / den);
}

/** Every counter of @p c scaled by num/den (window -> interval). */
MachineCounters
scaleCounters(const MachineCounters &c, std::uint64_t num,
              std::uint64_t den)
{
    MachineCounters s;
    const auto f = [&](std::uint64_t v) { return scaleCount(v, num, den); };
    s.pipeline.cycles = f(c.pipeline.cycles);
    s.pipeline.committed = f(c.pipeline.committed);
    s.pipeline.committedNops = f(c.pipeline.committedNops);
    s.pipeline.nopsInBranchSlots = f(c.pipeline.nopsInBranchSlots);
    s.pipeline.nopsForLoadDelay = f(c.pipeline.nopsForLoadDelay);
    s.pipeline.squashed = f(c.pipeline.squashed);
    s.pipeline.branches = f(c.pipeline.branches);
    s.pipeline.branchesTaken = f(c.pipeline.branchesTaken);
    s.pipeline.branchSquashTriggers = f(c.pipeline.branchSquashTriggers);
    s.pipeline.branchWastedSlots = f(c.pipeline.branchWastedSlots);
    s.pipeline.jumps = f(c.pipeline.jumps);
    s.pipeline.jumpWastedSlots = f(c.pipeline.jumpWastedSlots);
    s.pipeline.traps = f(c.pipeline.traps);
    s.pipeline.exceptions = f(c.pipeline.exceptions);
    s.pipeline.interrupts = f(c.pipeline.interrupts);
    s.pipeline.hazardViolations = f(c.pipeline.hazardViolations);
    s.icacheAccesses = f(c.icacheAccesses);
    s.icacheMisses = f(c.icacheMisses);
    s.icacheRefillWords = f(c.icacheRefillWords);
    s.icacheStalls = f(c.icacheStalls);
    s.ecacheAccesses = f(c.ecacheAccesses);
    s.ecacheMisses = f(c.ecacheMisses);
    s.ecacheWritebacks = f(c.ecacheWritebacks);
    s.ecacheMemCycles = f(c.ecacheMemCycles);
    s.ecacheStalls = f(c.ecacheStalls);
    return s;
}

/** One interval's marching orders (checkpoint + window geometry). */
struct PieceSpec
{
    std::uint64_t handoff = 0; ///< checkpoint step (clean boundary)
    std::uint64_t gateRel = 0; ///< warm-up commits before the gate
    std::uint64_t cutRel = 0;  ///< retire cut past the handoff (0 = halt)
    std::uint64_t length = 0;  ///< nominal interval length
    Checkpoint cp;
};

/**
 * The fallback (and <= 1 interval) path: one plain Machine run,
 * reported as a single piece so callers see one result shape. This
 * reproduces exactly what a non-interval run would have produced.
 */
IntervalResult
runMonolithic(const assembler::Program &prog, const MachineConfig &cfg,
              const IntervalConfig &ic,
              const memory::DecodedImage::Snapshot *decoded,
              std::string why)
{
    IntervalResult out;
    out.fallback = std::move(why);
    MachineConfig mc = cfg;
    mc.intervals = 1;
    Machine m(mc);
    m.memory().setPredecodeEnabled(ic.predecode);
    m.load(prog, ic.predecode ? decoded : nullptr);
    out.result = m.run();
    out.passed = out.result.halted();

    IntervalPiece p;
    p.handoff = m.fastForwarded().ran ? m.fastForwarded().issSteps : 0;
    p.begin = p.handoff + m.warmup().baseline.pipeline.committed;
    p.end = p.handoff + m.cpu().stats().committed;
    p.length = p.end - p.begin;
    p.reason = out.result.reason;
    p.warmup = m.warmup().baseline;
    p.steady = m.steadyCounters();
    out.stitched = p.steady;
    out.estimated = p.steady;
    out.planInstructions = p.end;
    out.planIssInstructions = p.handoff;
    out.warmupInstructions = p.handoff + (p.begin - p.handoff);
    out.warmupCycles = p.warmup.pipeline.cycles;
    out.exact = out.passed && !m.fastForwarded().ran && !m.warmup().ran &&
        !cfg.maxCommitted;
    out.pieces.push_back(std::move(p));
    return out;
}

} // namespace

IntervalResult
runIntervals(const assembler::Program &prog, const MachineConfig &cfg,
             const IntervalConfig &ic,
             const memory::DecodedImage::Snapshot *decoded)
{
    const unsigned want = std::max(1u, ic.intervals);
    if (want <= 1)
        return runMonolithic(prog, cfg, ic, decoded, "single interval");

    std::uint64_t planIss = 0;

    // How long is the run? The generator's hint if it gave one, else a
    // whole-run ISS pass. Only boundary placement depends on this.
    std::uint64_t total = ic.totalHint;
    if (!total) {
        memory::MainMemory mem;
        mem.loadProgram(prog, decoded);
        Iss iss(planIssConfig(cfg, prog), mem);
        attachPlanCops(iss, cfg);
        iss.reset(prog.entry);
        iss.setGpr(isa::reg::sp, cfg.stackTop);
        const IssStop st = iss.run();
        planIss += iss.stats().steps;
        if (st != IssStop::Halt && st != IssStop::Fail) {
            return runMonolithic(
                prog, cfg, ic, decoded,
                std::string("plan: ISS stopped with ") + issStopName(st));
        }
        total = iss.stats().steps;
    }
    if (total < 2 * static_cast<std::uint64_t>(want)) {
        return runMonolithic(prog, cfg, ic, decoded,
                             "plan: run too short to split");
    }

    // Interval boundaries: equal instruction-count splits of [0, total),
    // plus every phase hint, so no interval straddles a behaviour shift.
    std::vector<std::uint64_t> bounds;
    bounds.reserve(want - 1 + ic.phases.size());
    for (unsigned i = 1; i < want; ++i)
        bounds.push_back(total / want * i + total % want * i / want);
    for (const std::uint64_t ph : ic.phases)
        bounds.push_back(ph);
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    std::erase_if(bounds,
                  [&](std::uint64_t b) { return b == 0 || b >= total; });

    // Checkpoint pass: ONE continuous ISS run over its own memory,
    // pausing at every interval's warm-up start (a clean boundary at
    // or just past begin - warmup) to snapshot registers + memory.
    // Serial and jobs-independent by construction.
    std::vector<PieceSpec> specs;
    specs.reserve(bounds.size() + 1);
    {
        memory::MainMemory mem;
        mem.loadProgram(prog, decoded);
        Iss iss(planIssConfig(cfg, prog), mem);
        attachPlanCops(iss, cfg);
        iss.reset(prog.entry);
        iss.setGpr(isa::reg::sp, cfg.stackTop);

        const std::size_t count = bounds.size() + 1;
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t begin = i == 0 ? 0 : bounds[i - 1];
            const std::uint64_t end = i + 1 < count ? bounds[i] : total;
            const std::uint64_t target =
                begin > ic.warmup ? begin - ic.warmup : 0;
            if (target > iss.stats().steps) {
                IssCheckpoint cp;
                cp.steps = target;
                if (iss.runUntil(cp) != IssStop::Running)
                    break; // the run really ends before this piece
            }
            const std::uint64_t handoff = iss.stats().steps;
            if (handoff >= end)
                continue; // warm-up drain overshot the whole interval
            PieceSpec sp;
            sp.handoff = handoff;
            sp.length = end - begin;
            const std::uint64_t gate = std::max(begin, handoff);
            sp.gateRel = gate - handoff;
            std::uint64_t cut = end; // exact tiling: the next window
            if (ic.sample)
                cut = std::min(gate + ic.sample, end);
            const bool toHalt = i + 1 == count && !ic.sample;
            sp.cutRel = toHalt ? 0 : cut - handoff;
            sp.cp = capture(iss, mem, cfg);
            specs.push_back(std::move(sp));
        }
        planIss += iss.stats().steps;
    }
    if (specs.empty()) {
        return runMonolithic(prog, cfg, ic, decoded,
                             "plan: no viable intervals");
    }

    // Simulate the pieces cycle-accurately — independent machines, one
    // result slot each, merged in interval order after the join.
    std::vector<IntervalPiece> pieces(specs.size());
    auto runPiece = [&](std::size_t i) {
        PieceSpec &sp = specs[i];
        MachineConfig mc = cfg;
        mc.intervals = 1;
        mc.fastForward = {};
        mc.warmupInstructions = sp.gateRel;
        mc.maxCommitted = sp.cutRel;
        Machine m(mc);
        m.seedCheckpoint(prog, std::move(sp.cp));
        m.memory().setPredecodeEnabled(ic.predecode);
        const core::RunResult r = m.run();
        IntervalPiece &p = pieces[i];
        p.index = static_cast<unsigned>(i);
        p.handoff = sp.handoff;
        p.begin = sp.handoff + m.warmup().baseline.pipeline.committed;
        p.end = sp.handoff + m.cpu().stats().committed;
        p.length = sp.length;
        p.reason = r.reason;
        p.warmup = m.warmup().baseline;
        p.steady = m.steadyCounters();
    };
    const unsigned hw = std::thread::hardware_concurrency();
    unsigned jobs = ic.jobs ? ic.jobs : (hw ? hw : 1);
    jobs = std::min<unsigned>(std::max(jobs, 1u),
                              static_cast<unsigned>(specs.size()));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runPiece(i);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (std::size_t i = next.fetch_add(1); i < specs.size();
                 i = next.fetch_add(1))
                runPiece(i);
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    // Stitch in interval order (deterministic for any jobs count).
    IntervalResult out;
    out.intervalRan = true;
    out.planIssInstructions = planIss;
    out.pieces = std::move(pieces);
    bool contiguous = out.pieces.front().begin == 0;
    bool cleanPieces = true;
    for (std::size_t i = 0; i < out.pieces.size(); ++i) {
        const IntervalPiece &p = out.pieces[i];
        accumulateCounters(out.stitched, p.steady);
        const std::uint64_t window = p.end - p.begin;
        accumulateCounters(
            out.estimated,
            window == p.length ? p.steady
                               : scaleCounters(p.steady, p.length, window));
        out.warmupInstructions += p.begin - p.handoff;
        out.warmupCycles += p.warmup.pipeline.cycles;
        if (i + 1 < out.pieces.size() &&
            p.end != out.pieces[i + 1].begin)
            contiguous = false;
        if (p.reason != core::StopReason::Halt &&
            p.reason != core::StopReason::CommitLimit)
            cleanPieces = false;
    }
    const IntervalPiece &last = out.pieces.back();
    const bool finished = last.reason == core::StopReason::Halt ||
        last.reason == core::StopReason::Fail;
    out.exact = !ic.sample && contiguous && finished;
    out.planInstructions = finished ? last.end : total;
    out.result.reason = last.reason;
    out.result.cycles = out.stitched.pipeline.cycles;
    out.result.instructions = out.stitched.pipeline.committed;
    out.passed = ic.sample
        ? cleanPieces
        : last.reason == core::StopReason::Halt;
    return out;
}

void
collectMetrics(const IntervalResult &r, trace::MetricsRegistry &m,
               const std::string &prefix)
{
    const std::string p = prefix + ".";
    m.set(p + "intervals",
          static_cast<std::uint64_t>(r.pieces.size()));
    m.set(p + "fallback", static_cast<std::uint64_t>(r.intervalRan ? 0 : 1));
    m.set(p + "exact", static_cast<std::uint64_t>(r.exact ? 1 : 0));
    m.set(p + "passed", static_cast<std::uint64_t>(r.passed ? 1 : 0));
    m.set(p + "plan_instructions", r.planInstructions);
    m.set(p + "plan_iss_instructions", r.planIssInstructions);
    m.set(p + "warmup_instructions", r.warmupInstructions);
    m.set(p + "warmup_cycles", r.warmupCycles);

    const auto counters = [&](const char *tag, const MachineCounters &c) {
        const std::string q = p + tag;
        m.set(q + "cycles", c.pipeline.cycles);
        m.set(q + "committed", c.pipeline.committed);
        m.set(q + "committed_nops", c.pipeline.committedNops);
        m.set(q + "squashed", c.pipeline.squashed);
        m.set(q + "branches", c.pipeline.branches);
        m.set(q + "branches_taken", c.pipeline.branchesTaken);
        m.set(q + "jumps", c.pipeline.jumps);
        m.set(q + "icache_accesses", c.icacheAccesses);
        m.set(q + "icache_misses", c.icacheMisses);
        m.set(q + "icache_stalls", c.icacheStalls);
        m.set(q + "ecache_accesses", c.ecacheAccesses);
        m.set(q + "ecache_misses", c.ecacheMisses);
        m.set(q + "ecache_stalls", c.ecacheStalls);
        m.set(q + "cpi", c.pipeline.cpi());
    };
    counters("", r.stitched);
    counters("est_", r.estimated);
}

} // namespace mipsx::sim
