/**
 * @file
 * Parallel interval simulation: checkpointed cycle-accurate runs.
 *
 * A monolithic cycle-accurate run is serial by nature — every cycle
 * depends on the last. This engine splits the run into N
 * instruction-count intervals instead: a single functional (ISS,
 * superblock mode) planning pass over the program snapshots the full
 * architectural state — registers, coprocessors, and a deep copy of
 * memory — at each interval's warm-up start, and each interval is then
 * simulated cycle-accurately on its own Machine, independently of the
 * others, on a worker pool. A configurable warm-up prefix re-primes the
 * caches and branch state before each interval's stats gate opens
 * (Machine::warmupInstructions), and the cut between adjacent windows
 * is an exact retire count (Machine::maxCommitted), so with
 * sampleWindow = 0 the per-interval windows tile the monolithic run
 * without gaps or overlaps: stitching the per-interval counters in
 * interval order reproduces the run's aggregate statistics exactly —
 * not sampled — and byte-identically at any jobs count (the plan is
 * computed serially; workers write only their own slots).
 *
 * With sampleWindow > 0 only the first sampleWindow retired
 * instructions of each window are simulated cycle-accurately and the
 * interval's counters are extrapolated to its nominal length — the
 * classic sampled-simulation tradeoff. That mode is what makes a
 * multi-million-instruction run *cheaper* than monolithic even on one
 * core: the planning ISS runs ~10x faster than the pipeline, and only
 * a fraction of the instructions pay cycle-accurate cost. Still
 * deterministic and jobs-independent, but estimated, not exact.
 */

#ifndef MIPSX_SIM_INTERVAL_HH
#define MIPSX_SIM_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "memory/decoded_image.hh"
#include "sim/machine.hh"

namespace mipsx::trace
{
class MetricsRegistry;
} // namespace mipsx::trace

namespace mipsx::sim
{

/** How to split and simulate one run (see file header). */
struct IntervalConfig
{
    /** Interval count; <= 1 degrades to a monolithic run. */
    unsigned intervals = 2;
    /**
     * Warm-up prefix: each interval's checkpoint is taken this many
     * instructions *before* the interval's window so the pipeline
     * re-primes caches and branch state cycle-accurately before the
     * stats gate opens. 0 = cold-start windows. A warm-up at least as
     * long as every interval's start covers the full prior history —
     * every piece then replays from instruction 0 and the stitched
     * counters equal the monolithic run's bit for bit.
     */
    std::uint64_t warmup = 0;
    /** Measured window per interval; 0 = the whole interval (exact). */
    std::uint64_t sample = 0;
    /** Worker threads over intervals; 0 = hardware concurrency. */
    unsigned jobs = 1;
    /** Predecode inside the per-interval machines (suite default). */
    bool predecode = true;
    /**
     * Expected dynamic instruction count. When nonzero the planner
     * places interval boundaries from the hint and skips the
     * whole-run ISS counting pass (the scaled workload generators know
     * their dynamic size). Only boundary *placement* uses it — an
     * inaccurate hint skews interval sizes, never correctness: the
     * final piece always runs to the real halt.
     */
    std::uint64_t totalHint = 0;
    /**
     * Dynamic-instruction indices where the program's behaviour shifts
     * (e.g. the end of a data-initialization loop). Each becomes an
     * extra interval boundary, so no sampled window extrapolates one
     * phase's timing across another — the dominant sampling error for
     * phase-structured programs. Hints like totalHint: they move
     * boundaries, never correctness.
     */
    std::vector<std::uint64_t> phases;
};

/** One interval's outcome. */
struct IntervalPiece
{
    unsigned index = 0;
    std::uint64_t handoff = 0; ///< checkpoint instruction (clean boundary)
    std::uint64_t begin = 0;   ///< window start (stats gate), absolute
    std::uint64_t end = 0;     ///< one past the window's last instruction
    std::uint64_t length = 0;  ///< nominal interval length (extrapolation)
    core::StopReason reason = core::StopReason::Running;
    MachineCounters warmup; ///< counters the warm-up spent (excluded)
    MachineCounters steady; ///< the window's stitched contribution

    bool operator==(const IntervalPiece &) const = default;
};

/** A stitched interval run (or the monolithic fallback). */
struct IntervalResult
{
    bool intervalRan = false; ///< false = monolithic fallback
    std::string fallback;     ///< why, when !intervalRan
    /** Dynamic instructions of the whole run (actual when it halted). */
    std::uint64_t planInstructions = 0;
    /** ISS instructions the planning/checkpoint passes executed. */
    std::uint64_t planIssInstructions = 0;
    /**
     * Stitched verdict: the final piece's stop reason with the
     * stitched cycle/instruction totals.
     */
    core::RunResult result;
    bool passed = false;
    /**
     * True when the measured windows tile the whole run exactly once
     * (contiguous, starting at 0, ending at the real halt): the
     * stitched counters are then exact aggregates, not estimates.
     */
    bool exact = false;
    std::vector<IntervalPiece> pieces;
    /** Sum of the measured windows, in interval order. */
    MachineCounters stitched;
    /**
     * Windows extrapolated to their nominal interval lengths — the
     * whole-run estimate in sampled mode; equals stitched when exact.
     */
    MachineCounters estimated;
    std::uint64_t warmupInstructions = 0; ///< warm-up commits, all pieces
    std::uint64_t warmupCycles = 0;       ///< warm-up cycles, all pieces
};

/**
 * Split, simulate and stitch (see file header). Falls back to one
 * monolithic run — reproducing plain Machine behaviour exactly — when
 * the run cannot be split: fewer than two intervals requested, the
 * planning ISS did not reach a clean halt/fail, or the run is too
 * short. @p decoded is the optional prepared predecode snapshot of
 * exactly @p prog.
 */
IntervalResult
runIntervals(const assembler::Program &prog, const MachineConfig &cfg,
             const IntervalConfig &ic,
             const memory::DecodedImage::Snapshot *decoded = nullptr);

/**
 * Export the stitched aggregates, the whole-run estimate and the
 * warm-up/plan accounting into @p m under "<prefix>.". Deterministic
 * for any jobs count.
 */
void collectMetrics(const IntervalResult &r, trace::MetricsRegistry &m,
                    const std::string &prefix = "interval");

} // namespace mipsx::sim

#endif // MIPSX_SIM_INTERVAL_HH
