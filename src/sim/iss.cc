#include "sim/iss.hh"

#include "common/sim_error.hh"
#include "core/exec.hh"
#include "trace/metrics.hh"

namespace mipsx::sim
{

using isa::ComputeOp;
using isa::Format;
using isa::ImmOp;
using isa::MemOp;
using isa::SpecialReg;
namespace psw_bits = isa::psw_bits;

Iss::Iss(const IssConfig &config, memory::MainMemory &mem)
    : config_(config), ram_(mem)
{
    if (config_.branchDelay < 1 || config_.branchDelay > 2)
        fatal("Iss: branchDelay must be 1 or 2");
}

void
Iss::attachCoprocessor(unsigned num,
                       std::unique_ptr<coproc::Coprocessor> cop)
{
    cops_.attach(num, std::move(cop));
}

void
Iss::reset(addr_t entry)
{
    regs_.fill(0);
    md_ = 0;
    psw_ = core::Psw(config_.initialPsw);
    pswOld_ = core::Psw(0);
    chain_ = core::PcChain{};
    pc_ = entry;
    redirects_.clear();
    skip_ = 0;
    stalePending_ = false;
    intrPending_ = false;
    blockHold_.reset();
    stop_ = IssStop::Running;
    stats_ = IssStats{};
}

void
Iss::setGpr(unsigned r, word_t v)
{
    if (r != 0)
        regs_.at(r) = v;
}

word_t
Iss::readReg(unsigned r) const
{
    if (r == 0)
        return 0;
    return regs_[r];
}

void
Iss::writeReg(unsigned r, word_t v)
{
    if (r != 0)
        regs_[r] = v;
}

void
Iss::takeException(word_t cause)
{
    ++stats_.exceptions;
    if (trace_)
        trace_->record({stats_.steps, pc_, 0, cause,
                        trace::EventKind::Exception, psw_.space(),
                        false});
    // Sequential semantics: the faulting instruction's address fills the
    // oldest chain slot; a single jpc restarts it.
    chain_.write(0, core::PcChain::makeEntry(pc_, false));
    chain_.write(1, 0);
    chain_.write(2, 0);
    pswOld_ = psw_;
    psw_ = core::Psw::exceptionEntry(psw_, cause);
    pc_ = exceptionVector;
    redirects_.clear();
    skip_ = 0;
    stalePending_ = false;
    if (ram_.read(AddressSpace::System, exceptionVector) == 0)
        stop_ = IssStop::UnhandledException;
}

void
Iss::scheduleRedirect(addr_t target)
{
    if (config_.mode == IssMode::Sequential) {
        pc_ = target;
        return;
    }
    redirects_.push_back({config_.branchDelay + 1, target});
}

void
Iss::emitBranch(addr_t pc, addr_t target, bool cond, bool taken)
{
    if (branchHook_)
        branchHook_({pc, target, cond, taken});
}

IssStop
Iss::run()
{
    // Block mode hands the whole run to the superblock loop — except
    // under tracing, which needs the per-step Retire records only the
    // stepping path emits. That fallback is part of the contract: a
    // traced run is bit-identical in either exec mode.
    if (config_.exec == IssExec::Block && !trace_)
        return runBlocks(nullptr);
    // Resolve the trace hook once, out here: the untraced loop runs the
    // Traced=false instantiation of stepImpl, which contains no trace
    // code at all — not even a null-pointer test per step.
    if (trace_) {
        while (!stopped())
            stepImpl<true>();
    } else {
        while (!stopped())
            stepImpl<false>();
    }
    return stop_;
}

bool
Iss::atCheckpoint(const IssCheckpoint &cp) const
{
    // Only a clean boundary counts: redirects, squashes and load-delay
    // staleness are loop-internal bookkeeping that a state handoff
    // cannot represent, so the run continues (a handful of steps at
    // most, barring back-to-back control transfers) until they drain.
    if (!redirects_.empty() || skip_ != 0 || stalePending_)
        return false;
    if (cp.hasPc && pc_ == cp.pc)
        return true;
    return cp.steps != 0 && stats_.steps >= cp.steps;
}

IssStop
Iss::runUntil(const IssCheckpoint &cp)
{
    if (config_.exec == IssExec::Block && !trace_)
        return runBlocks(&cp);
    while (!stopped() && !atCheckpoint(cp))
        step();
    return stop_;
}

void
Iss::collectMetrics(trace::MetricsRegistry &m) const
{
    m.set("iss.steps", stats_.steps);
    m.set("iss.branches", stats_.branches);
    m.set("iss.branches_taken", stats_.branchesTaken);
    m.set("iss.jumps", stats_.jumps);
    m.set("iss.loads", stats_.loads);
    m.set("iss.stores", stats_.stores);
    m.set("iss.coproc_ops", stats_.coprocOps);
    m.set("iss.traps", stats_.traps);
    m.set("iss.exceptions", stats_.exceptions);
    m.set("iss.interrupts", stats_.interrupts);
}

/** Per-step context shared between the dispatch paths and the epilogue. */
struct Iss::StepCtx
{
    addr_t pc = 0;  ///< address of the executing instruction
    AddressSpace space = AddressSpace::User;
    word_t a = 0;   ///< R[rs1], load-delay staleness applied
    word_t b = 0;   ///< R[rs2], load-delay staleness applied
    bool user = false;
    bool redirectedSeq = false; ///< sequential mode changed pc_ directly
    bool done = false; ///< exception/stop consumed the PC update
};

/**
 * The semantic-op handlers: one static function per Instruction::op
 * slot, each the body of one case of the switch they replaced. The
 * threaded path reaches them through stepTable in a single indexed
 * call; the Switch reference path reaches the same functions through
 * Iss::stepOps, so the two dispatch mechanisms cannot drift apart —
 * only the table's keying is new, and the differential test covers it.
 */
struct IssOps
{
    using Ctx = Iss::StepCtx;
    using StepFn = void (*)(Iss &, const isa::Instruction &, Ctx &);

    static addr_t
    memAddr(word_t base, const isa::Instruction &in)
    {
        return static_cast<addr_t>(static_cast<std::int64_t>(base) +
                                   in.imm);
    }

    static void
    compute(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        const core::ComputeResult r =
            core::executeCompute(in, c.a, c.b, s.md_);
        if (r.overflow && s.psw_.overflowTrapEnabled()) {
            s.takeException(psw_bits::cOvf);
            c.done = true;
            return;
        }
        s.writeReg(in.rd, r.value);
        if (r.writesMd)
            s.md_ = r.md;
    }

    /**
     * Per-opcode compute handler for the threaded table. The flat op
     * index already names the ALU operation, so each table slot gets
     * the semantics inlined via computeFor<Op> — no second dispatch
     * through computeDispatch, and the overflow/MD epilogue folds away
     * for opcodes that can produce neither. The generic compute()
     * above stays as the Switch reference path, which keeps the
     * dispatch-table route independently exercised.
     */
    template <ComputeOp Op>
    static void
    computeOp(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        const core::ComputeResult r =
            core::computeFor<Op>(in, c.a, c.b, s.md_);
        if (r.overflow && s.psw_.overflowTrapEnabled()) {
            s.takeException(psw_bits::cOvf);
            c.done = true;
            return;
        }
        s.writeReg(in.rd, r.value);
        if (r.writesMd)
            s.md_ = r.md;
    }

    static void
    movfrs(Iss &s, const isa::Instruction &in, Ctx &)
    {
        switch (static_cast<SpecialReg>(in.aux)) {
          case SpecialReg::Psw:
            s.writeReg(in.rd, s.psw_.bits());
            break;
          case SpecialReg::PswOld:
            s.writeReg(in.rd, s.pswOld_.bits());
            break;
          case SpecialReg::Md:
            s.writeReg(in.rd, s.md_);
            break;
          case SpecialReg::PcChain0:
          case SpecialReg::PcChain1:
          case SpecialReg::PcChain2:
            s.writeReg(in.rd,
                       s.chain_.read(in.aux - static_cast<unsigned>(
                           SpecialReg::PcChain0)));
            break;
        }
    }

    static void
    movtos(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        const auto sreg = static_cast<SpecialReg>(in.aux);
        if (sreg != SpecialReg::Md && c.user) {
            s.takeException(psw_bits::cPriv);
            c.done = true;
            return;
        }
        switch (sreg) {
          case SpecialReg::Md:
            s.md_ = c.a;
            break;
          case SpecialReg::Psw:
            s.psw_.setBits(c.a);
            break;
          case SpecialReg::PswOld:
            break; // hardware-loaded only
          case SpecialReg::PcChain0:
          case SpecialReg::PcChain1:
          case SpecialReg::PcChain2:
            s.chain_.write(in.aux - static_cast<unsigned>(
                               SpecialReg::PcChain0),
                           c.a);
            break;
        }
    }

    static void
    addi(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        const auto r =
            core::addOverflow(c.a, static_cast<word_t>(in.imm));
        if (r.overflow && s.psw_.overflowTrapEnabled()) {
            s.takeException(psw_bits::cOvf);
            c.done = true;
            return;
        }
        s.writeReg(in.rd, r.value);
    }

    static void
    lih(Iss &s, const isa::Instruction &in, Ctx &)
    {
        s.writeReg(in.rd, static_cast<word_t>(in.imm) << 15);
    }

    static void
    jumpTo(Iss &s, const isa::Instruction &in, Ctx &c, addr_t target,
           bool link)
    {
        ++s.stats_.jumps;
        s.emitBranch(c.pc, target, false, true);
        if (link) {
            const unsigned delay = s.config_.mode == IssMode::Delayed
                ? s.config_.branchDelay
                : 0;
            s.writeReg(in.rd, c.pc + 1 + delay);
        }
        s.scheduleRedirect(target);
        c.redirectedSeq = s.config_.mode == IssMode::Sequential;
    }

    static void
    jmp(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        jumpTo(s, in, c,
               static_cast<addr_t>(static_cast<std::int64_t>(c.pc) + 1 +
                                   in.imm),
               false);
    }

    static void
    jal(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        jumpTo(s, in, c,
               static_cast<addr_t>(static_cast<std::int64_t>(c.pc) + 1 +
                                   in.imm),
               true);
    }

    static void
    jr(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        jumpTo(s, in, c, memAddr(c.a, in), false);
    }

    static void
    jalr(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        jumpTo(s, in, c, memAddr(c.a, in), true);
    }

    static void
    jpc(Iss &s, const isa::Instruction &, Ctx &c)
    {
        if (c.user) {
            s.takeException(psw_bits::cPriv);
            c.done = true;
            return;
        }
        const word_t entry = s.chain_.pop();
        const addr_t target = core::PcChain::entryPc(entry);
        if (s.config_.mode == IssMode::Sequential) {
            s.pc_ = target;
            c.redirectedSeq = true;
        } else {
            s.redirects_.push_back({s.config_.branchDelay + 1, target});
            // A squashed entry re-executes as a no-op: skip the single
            // instruction the redirect injects.
            if (core::PcChain::entrySquashed(entry))
                s.redirects_.back().target |= core::chainSquashBit;
        }
    }

    static void
    trap(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.traps;
        c.done = true;
        if (in.uimm == isa::trapCodeHalt) {
            s.stop_ = IssStop::Halt;
            return;
        }
        if (in.uimm == isa::trapCodeFail) {
            s.stop_ = IssStop::Fail;
            return;
        }
        s.takeException(psw_bits::cTrap);
    }

    static void
    ld(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.loads;
        const word_t old = s.readReg(in.rd);
        const word_t v = s.ram_.read(c.space, memAddr(c.a, in));
        s.writeReg(in.rd, v);
        if (s.config_.mode == IssMode::Delayed && in.rd != 0) {
            s.stalePending_ = true;
            s.staleReg_ = in.rd;
            s.staleValue_ = old;
        }
    }

    static void
    st(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.stores;
        s.ram_.write(c.space, memAddr(c.a, in), c.b);
    }

    static void
    ldf(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.loads;
        ++s.stats_.coprocOps;
        s.cops_.at(1).loadDirect(in.aux,
                                 s.ram_.read(c.space, memAddr(c.a, in)));
    }

    static void
    stf(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.stores;
        ++s.stats_.coprocOps;
        s.ram_.write(c.space, memAddr(c.a, in),
                     s.cops_.at(1).storeDirect(in.aux));
    }

    static void
    aluc(Iss &s, const isa::Instruction &in, Ctx &)
    {
        ++s.stats_.coprocOps;
        s.cops_.at(in.copNum()).aluc(in.copOp());
    }

    static void
    movfrc(Iss &s, const isa::Instruction &in, Ctx &)
    {
        ++s.stats_.coprocOps;
        const word_t old = s.readReg(in.rd);
        s.writeReg(in.rd, s.cops_.at(in.copNum()).movfrc(in.copOp()));
        if (s.config_.mode == IssMode::Delayed && in.rd != 0) {
            s.stalePending_ = true;
            s.staleReg_ = in.rd;
            s.staleValue_ = old;
        }
    }

    static void
    movtoc(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        ++s.stats_.coprocOps;
        s.cops_.at(in.copNum()).movtoc(in.copOp(), c.b);
    }

    static void
    branch(Iss &s, const isa::Instruction &in, Ctx &c)
    {
        const bool taken = core::branchTakenInline(in.cond, c.a, c.b);
        ++s.stats_.branches;
        if (taken)
            ++s.stats_.branchesTaken;
        const addr_t target = static_cast<addr_t>(
            static_cast<std::int64_t>(c.pc) + 1 + in.imm);
        s.emitBranch(c.pc, target, true, taken);
        if (s.config_.mode == IssMode::Sequential) {
            if (taken) {
                s.pc_ = target;
                c.redirectedSeq = true;
            }
        } else {
            if (taken)
                s.redirects_.push_back(
                    {s.config_.branchDelay + 1, target});
            const bool squash =
                (in.squash == isa::SquashType::SquashNotTaken &&
                 !taken) ||
                (in.squash == isa::SquashType::SquashTaken && taken);
            if (squash)
                s.skip_ = s.config_.branchDelay;
        }
    }

    static void
    invalid(Iss &s, const isa::Instruction &, Ctx &c)
    {
        // Unreachable through step() (validity is checked before
        // dispatch) but present so the table is total over op indices.
        s.stop_ = IssStop::InvalidInstruction;
        c.done = true;
    }
};

namespace
{

using StepFn = IssOps::StepFn;

constexpr std::array<StepFn, isa::opCount>
buildStepTable()
{
    std::array<StepFn, isa::opCount> t{};
    const auto alu = [&t](ComputeOp op, StepFn fn) {
        t[static_cast<std::size_t>(op)] = fn;
    };
    alu(ComputeOp::Add, IssOps::computeOp<ComputeOp::Add>);
    alu(ComputeOp::Sub, IssOps::computeOp<ComputeOp::Sub>);
    alu(ComputeOp::And, IssOps::computeOp<ComputeOp::And>);
    alu(ComputeOp::Or, IssOps::computeOp<ComputeOp::Or>);
    alu(ComputeOp::Xor, IssOps::computeOp<ComputeOp::Xor>);
    alu(ComputeOp::Bic, IssOps::computeOp<ComputeOp::Bic>);
    alu(ComputeOp::Sll, IssOps::computeOp<ComputeOp::Sll>);
    alu(ComputeOp::Srl, IssOps::computeOp<ComputeOp::Srl>);
    alu(ComputeOp::Sra, IssOps::computeOp<ComputeOp::Sra>);
    alu(ComputeOp::Fsh, IssOps::computeOp<ComputeOp::Fsh>);
    alu(ComputeOp::Mstep, IssOps::computeOp<ComputeOp::Mstep>);
    alu(ComputeOp::Dstep, IssOps::computeOp<ComputeOp::Dstep>);
    t[static_cast<std::size_t>(ComputeOp::Movfrs)] = IssOps::movfrs;
    t[static_cast<std::size_t>(ComputeOp::Movtos)] = IssOps::movtos;
    const auto imm = [&t](ImmOp op) -> StepFn & {
        return t[isa::opImmBase + static_cast<std::size_t>(op)];
    };
    imm(ImmOp::Addi) = IssOps::addi;
    imm(ImmOp::Lih) = IssOps::lih;
    imm(ImmOp::Jmp) = IssOps::jmp;
    imm(ImmOp::Jal) = IssOps::jal;
    imm(ImmOp::Jr) = IssOps::jr;
    imm(ImmOp::Jalr) = IssOps::jalr;
    imm(ImmOp::Jpc) = IssOps::jpc;
    imm(ImmOp::Trap) = IssOps::trap;
    const auto mem = [&t](MemOp op) -> StepFn & {
        return t[isa::opMemBase + static_cast<std::size_t>(op)];
    };
    mem(MemOp::Ld) = IssOps::ld;
    mem(MemOp::Ldt) = IssOps::ld;
    mem(MemOp::St) = IssOps::st;
    mem(MemOp::Ldf) = IssOps::ldf;
    mem(MemOp::Stf) = IssOps::stf;
    mem(MemOp::Aluc) = IssOps::aluc;
    mem(MemOp::Movfrc) = IssOps::movfrc;
    mem(MemOp::Movtoc) = IssOps::movtoc;
    t[isa::opBranch] = IssOps::branch;
    t[isa::opInvalid] = IssOps::invalid;
    return t;
}

constexpr std::array<StepFn, isa::opCount> stepTable = buildStepTable();

} // namespace

bool
Iss::hasHandler(std::uint8_t op)
{
    return op < isa::opCount && stepTable[op] != nullptr;
}

void
Iss::stepOps(const isa::Instruction &in, StepCtx &ctx)
{
    switch (in.fmt) {
      case Format::Compute:
        switch (in.compOp) {
          case ComputeOp::Movfrs:
            IssOps::movfrs(*this, in, ctx);
            break;
          case ComputeOp::Movtos:
            IssOps::movtos(*this, in, ctx);
            break;
          default:
            IssOps::compute(*this, in, ctx);
            break;
        }
        break;
      case Format::Imm:
        switch (in.immOp) {
          case ImmOp::Addi:
            IssOps::addi(*this, in, ctx);
            break;
          case ImmOp::Lih:
            IssOps::lih(*this, in, ctx);
            break;
          case ImmOp::Jmp:
            IssOps::jmp(*this, in, ctx);
            break;
          case ImmOp::Jal:
            IssOps::jal(*this, in, ctx);
            break;
          case ImmOp::Jr:
            IssOps::jr(*this, in, ctx);
            break;
          case ImmOp::Jalr:
            IssOps::jalr(*this, in, ctx);
            break;
          case ImmOp::Jpc:
            IssOps::jpc(*this, in, ctx);
            break;
          case ImmOp::Trap:
            IssOps::trap(*this, in, ctx);
            break;
        }
        break;
      case Format::Mem:
        switch (in.memOp) {
          case MemOp::Ld:
          case MemOp::Ldt:
            IssOps::ld(*this, in, ctx);
            break;
          case MemOp::St:
            IssOps::st(*this, in, ctx);
            break;
          case MemOp::Ldf:
            IssOps::ldf(*this, in, ctx);
            break;
          case MemOp::Stf:
            IssOps::stf(*this, in, ctx);
            break;
          case MemOp::Aluc:
            IssOps::aluc(*this, in, ctx);
            break;
          case MemOp::Movfrc:
            IssOps::movfrc(*this, in, ctx);
            break;
          case MemOp::Movtoc:
            IssOps::movtoc(*this, in, ctx);
            break;
        }
        break;
      case Format::Branch:
        IssOps::branch(*this, in, ctx);
        break;
    }
}

template <bool Traced>
void
Iss::stepImpl()
{
    if (stopped())
        return;
    if (stats_.steps >= config_.maxSteps) {
        stop_ = IssStop::MaxSteps;
        return;
    }
    // External interrupt: delivered between instructions, but only at a
    // clean boundary (no redirects or squashes in flight) — the same
    // gate the pipeline's latches_known() delivery applies, and the
    // same boundary the block loop samples, so the delivery point is
    // identical in both exec modes.
    if (intrPending_ && psw_.interruptsEnabled() && redirects_.empty() &&
        skip_ == 0) {
        intrPending_ = false;
        ++stats_.interrupts;
        takeException(psw_bits::cIntr);
        return;
    }

    const addr_t cur = pc_;
    const AddressSpace space = psw_.space();
    // Copy, not reference: a store executed below may invalidate the
    // predecoded entry for this very word.
    const isa::Instruction in = ram_.fetchDecoded(space, cur);
    ++stats_.steps;

    // Load-delay staleness (delayed mode): the previous instruction's
    // load result is invisible to this instruction only.
    const bool stale_active = stalePending_;
    const unsigned stale_reg = staleReg_;
    const word_t stale_value = staleValue_;
    stalePending_ = false;

    const bool squashed = skip_ > 0;
    if (skip_ > 0)
        --skip_;
    if constexpr (Traced)
        trace_->record({stats_.steps, cur, in.raw,
                        squashed ? 1u : 0u, trace::EventKind::Retire,
                        space, true});

    StepCtx ctx;
    ctx.pc = cur;
    ctx.space = space;

    if (!squashed) {
        if (!in.valid) {
            stop_ = IssStop::InvalidInstruction;
            return;
        }
        ctx.user = !psw_.systemMode();
        auto read = [&](unsigned r) -> word_t {
            if (r == 0)
                return 0;
            if (stale_active && r == stale_reg)
                return stale_value;
            return regs_[r];
        };
        ctx.a = read(in.rs1);
        ctx.b = read(in.rs2);

        if (config_.dispatch == IssDispatch::Threaded)
            stepTable[in.op](*this, in, ctx);
        else
            stepOps(in, ctx);

        if (ctx.done || stopped())
            return;
    }

    // Advance the PC.
    if (config_.mode == IssMode::Sequential) {
        if (!ctx.redirectedSeq)
            pc_ = cur + 1;
        return;
    }

    addr_t next = cur + 1;
    for (auto it = redirects_.begin(); it != redirects_.end();) {
        if (--it->remaining == 0) {
            next = core::PcChain::entryPc(it->target);
            if (core::PcChain::entrySquashed(it->target))
                skip_ = skip_ > 1 ? skip_ : 1;
            it = redirects_.erase(it);
        } else {
            ++it;
        }
    }
    pc_ = next;
}

void
Iss::step()
{
    if (trace_)
        stepImpl<true>();
    else
        stepImpl<false>();
}

/**
 * Execute @p n chained instructions from the cached decodes at @p insts
 * (a superblock: runBlocks established pc_ is at its first word, no
 * redirects or squashes are in flight, and every op is block-safe).
 * The per-step checks stepImpl pays — stop/budget tests, the squash
 * path, fetch, validity — are gone; what remains per instruction is
 * the load-delay bookkeeping, operand reads and one indirect call.
 *
 * Exceptions (overflow traps) abort the block through ctx.done with
 * pc_ already vectored; a store that invalidates predecoded text
 * (observed through the decode generation) aborts it after the store's
 * own PC advance, so the stale decodes after it are never executed.
 */
void
Iss::executeBlock(const isa::Instruction *insts, unsigned n)
{
    // Hoisted once per block: in-block ops cannot write the PSW, so
    // the address space and privilege level are loop constants.
    const AddressSpace space = psw_.space();
    const bool user = !psw_.systemMode();
    const std::uint64_t gen = ram_.decodeGeneration();
    const addr_t pc0 = pc_;
    unsigned k = 0;
    for (; k < n; ++k) {
        const isa::Instruction &in = insts[k];
        StepCtx ctx;
        ctx.pc = pc0 + k;
        ctx.space = space;
        ctx.user = user;
        // regs_[0] is invariantly zero and a load never marks r0 stale,
        // so the r == 0 special case of readReg() folds into the plain
        // array read on both legs. Staleness is rare (only the
        // instruction after an in-block load), so the common arm skips
        // the compares and the flag store entirely.
        if (stalePending_) {
            stalePending_ = false;
            ctx.a = in.rs1 == staleReg_ ? staleValue_ : regs_[in.rs1];
            ctx.b = in.rs2 == staleReg_ ? staleValue_ : regs_[in.rs2];
        } else {
            ctx.a = regs_[in.rs1];
            ctx.b = regs_[in.rs2];
        }
        // Dispatch over the block-safe subset by inline switch, calling
        // the *same* handler functions the step path's table points at
        // — the compiler inlines them here (ctx lives in registers, no
        // call/return per instruction), while the semantics stay the
        // single shared definition, so the two loops cannot drift.
        // pc_ is materialized only where a handler can consume it (the
        // overflow-trapping arithmetic arms call takeException, which
        // reads pc_); every other arm leaves it to the loop exits. The
        // default arm covers nothing discovery admits (opBlockSafe is
        // the block-building filter) but keeps the loop total over op
        // indices.
        switch (in.op) {
          case static_cast<std::size_t>(ComputeOp::Add):
            pc_ = pc0 + k;
            IssOps::computeOp<ComputeOp::Add>(*this, in, ctx);
            break;
          case static_cast<std::size_t>(ComputeOp::Sub):
            pc_ = pc0 + k;
            IssOps::computeOp<ComputeOp::Sub>(*this, in, ctx);
            break;
#define MIPSX_BLOCK_ALU(OP)                                                \
  case static_cast<std::size_t>(ComputeOp::OP):                            \
    IssOps::computeOp<ComputeOp::OP>(*this, in, ctx);                      \
    break;
            MIPSX_BLOCK_ALU(And)
            MIPSX_BLOCK_ALU(Or)
            MIPSX_BLOCK_ALU(Xor)
            MIPSX_BLOCK_ALU(Bic)
            MIPSX_BLOCK_ALU(Sll)
            MIPSX_BLOCK_ALU(Srl)
            MIPSX_BLOCK_ALU(Sra)
            MIPSX_BLOCK_ALU(Fsh)
            MIPSX_BLOCK_ALU(Mstep)
            MIPSX_BLOCK_ALU(Dstep)
#undef MIPSX_BLOCK_ALU
          case static_cast<std::size_t>(ComputeOp::Movfrs):
            IssOps::movfrs(*this, in, ctx);
            break;
          case isa::opImmBase + static_cast<std::size_t>(ImmOp::Addi):
            pc_ = pc0 + k;
            IssOps::addi(*this, in, ctx);
            break;
          case isa::opImmBase + static_cast<std::size_t>(ImmOp::Lih):
            IssOps::lih(*this, in, ctx);
            break;
          case isa::opMemBase + static_cast<std::size_t>(MemOp::Ld):
          case isa::opMemBase + static_cast<std::size_t>(MemOp::Ldt):
            IssOps::ld(*this, in, ctx);
            break;
          case isa::opMemBase + static_cast<std::size_t>(MemOp::St):
            IssOps::st(*this, in, ctx);
            if (ram_.decodeGeneration() != gen) {
                // SMC hit predecoded text: the rest of the block's
                // decodes may be stale. The store itself completed.
                stats_.steps += k + 1;
                pc_ = pc0 + k + 1;
                return;
            }
            break;
          default:
            pc_ = pc0 + k;
            stepTable[in.op](*this, in, ctx);
            break;
        }
        if (ctx.done || stop_ != IssStop::Running) {
            // Exception/stop consumed the PC update; the aborting
            // instruction still counts as executed (as in stepImpl).
            stats_.steps += k + 1;
            return;
        }
    }
    stats_.steps += n;
    pc_ = pc0 + n;
}

IssStop
Iss::runBlocks(const IssCheckpoint *cp)
{
    const isa::Instruction *insts = nullptr;
    for (;;) {
        if (stopped())
            return stop_;
        if (cp && atCheckpoint(*cp))
            return stop_; // Running: the checkpoint won
        if (stats_.steps >= config_.maxSteps) {
            stop_ = IssStop::MaxSteps;
            return stop_;
        }
        // The boundary checks stepImpl runs per instruction, hoisted
        // here to once per block (same order, same gates).
        if (intrPending_ && psw_.interruptsEnabled() &&
            redirects_.empty() && skip_ == 0) {
            intrPending_ = false;
            ++stats_.interrupts;
            takeException(psw_bits::cIntr);
            continue;
        }
        // Delay slots or squashes in flight: their per-step redirect
        // bookkeeping lives in stepImpl, so run them there.
        if (!redirects_.empty() || skip_ != 0) {
            stepImpl<false>();
            continue;
        }
        unsigned n = ram_.fetchBlock(psw_.space(), pc_, insts, blockHold_);
        if (n != 0) {
            // Clamp to the step budget and to the caller's checkpoint
            // so a block never overshoots either.
            const std::uint64_t budget = config_.maxSteps - stats_.steps;
            if (budget < n)
                n = static_cast<unsigned>(budget);
            if (cp) {
                if (cp->steps != 0 && cp->steps > stats_.steps) {
                    const std::uint64_t left = cp->steps - stats_.steps;
                    if (left < n)
                        n = static_cast<unsigned>(left);
                }
                if (cp->hasPc && cp->pc > pc_ && cp->pc - pc_ < n)
                    n = cp->pc - pc_;
            }
        }
        if (n == 0) {
            // Cold decode, a block-ending op, or a checkpoint zero
            // instructions away from a non-clean boundary: one step of
            // the reference path handles all of them (and re-decodes
            // the word, making the next visit block-eligible).
            stepImpl<false>();
            continue;
        }
        executeBlock(insts, n);
    }
}

} // namespace mipsx::sim
