#include "sim/iss.hh"

#include "common/sim_error.hh"
#include "core/exec.hh"
#include "trace/metrics.hh"

namespace mipsx::sim
{

using isa::ComputeOp;
using isa::Format;
using isa::ImmOp;
using isa::MemOp;
using isa::SpecialReg;
namespace psw_bits = isa::psw_bits;

Iss::Iss(const IssConfig &config, memory::MainMemory &mem)
    : config_(config), ram_(mem)
{
    if (config_.branchDelay < 1 || config_.branchDelay > 2)
        fatal("Iss: branchDelay must be 1 or 2");
}

void
Iss::attachCoprocessor(unsigned num,
                       std::unique_ptr<coproc::Coprocessor> cop)
{
    cops_.attach(num, std::move(cop));
}

void
Iss::reset(addr_t entry)
{
    regs_.fill(0);
    md_ = 0;
    psw_ = core::Psw(config_.initialPsw);
    pswOld_ = core::Psw(0);
    chain_ = core::PcChain{};
    pc_ = entry;
    redirects_.clear();
    skip_ = 0;
    stalePending_ = false;
    stop_ = IssStop::Running;
    stats_ = IssStats{};
}

void
Iss::setGpr(unsigned r, word_t v)
{
    if (r != 0)
        regs_.at(r) = v;
}

word_t
Iss::readReg(unsigned r) const
{
    if (r == 0)
        return 0;
    return regs_[r];
}

void
Iss::writeReg(unsigned r, word_t v)
{
    if (r != 0)
        regs_[r] = v;
}

void
Iss::takeException(word_t cause)
{
    ++stats_.exceptions;
    if (trace_)
        trace_->record({stats_.steps, pc_, 0, cause,
                        trace::EventKind::Exception, psw_.space(),
                        false});
    // Sequential semantics: the faulting instruction's address fills the
    // oldest chain slot; a single jpc restarts it.
    chain_.write(0, core::PcChain::makeEntry(pc_, false));
    chain_.write(1, 0);
    chain_.write(2, 0);
    pswOld_ = psw_;
    psw_ = core::Psw::exceptionEntry(psw_, cause);
    pc_ = exceptionVector;
    redirects_.clear();
    skip_ = 0;
    stalePending_ = false;
    if (ram_.read(AddressSpace::System, exceptionVector) == 0)
        stop_ = IssStop::UnhandledException;
}

void
Iss::scheduleRedirect(addr_t target)
{
    if (config_.mode == IssMode::Sequential) {
        pc_ = target;
        return;
    }
    redirects_.push_back({config_.branchDelay + 1, target});
}

void
Iss::emitBranch(addr_t pc, addr_t target, bool cond, bool taken)
{
    if (branchHook_)
        branchHook_({pc, target, cond, taken});
}

IssStop
Iss::run()
{
    while (!stopped())
        step();
    return stop_;
}

void
Iss::collectMetrics(trace::MetricsRegistry &m) const
{
    m.set("iss.steps", stats_.steps);
    m.set("iss.branches", stats_.branches);
    m.set("iss.branches_taken", stats_.branchesTaken);
    m.set("iss.jumps", stats_.jumps);
    m.set("iss.loads", stats_.loads);
    m.set("iss.stores", stats_.stores);
    m.set("iss.coproc_ops", stats_.coprocOps);
    m.set("iss.traps", stats_.traps);
    m.set("iss.exceptions", stats_.exceptions);
}

void
Iss::step()
{
    if (stopped())
        return;
    if (stats_.steps >= config_.maxSteps) {
        stop_ = IssStop::MaxSteps;
        return;
    }

    const addr_t cur = pc_;
    const AddressSpace space = psw_.space();
    // Copy, not reference: a store executed below may invalidate the
    // predecoded entry for this very word.
    const isa::Instruction in = ram_.fetchDecoded(space, cur);
    ++stats_.steps;

    // Load-delay staleness (delayed mode): the previous instruction's
    // load result is invisible to this instruction only.
    const bool stale_active = stalePending_;
    const unsigned stale_reg = staleReg_;
    const word_t stale_value = staleValue_;
    stalePending_ = false;

    auto read = [&](unsigned r) -> word_t {
        if (r == 0)
            return 0;
        if (stale_active && r == stale_reg)
            return stale_value;
        return regs_[r];
    };

    const bool squashed = skip_ > 0;
    if (skip_ > 0)
        --skip_;
    if (trace_)
        trace_->record({stats_.steps, cur, in.raw,
                        squashed ? 1u : 0u, trace::EventKind::Retire,
                        space, true});

    bool redirected_seq = false; // sequential mode changed pc_ directly

    if (!squashed) {
        if (!in.valid) {
            stop_ = IssStop::InvalidInstruction;
            return;
        }
        const bool user = !psw_.systemMode();
        const word_t a = read(in.rs1);
        const word_t b = read(in.rs2);

        switch (in.fmt) {
          case Format::Compute:
            switch (in.compOp) {
              case ComputeOp::Movfrs:
                switch (static_cast<SpecialReg>(in.aux)) {
                  case SpecialReg::Psw:
                    writeReg(in.rd, psw_.bits());
                    break;
                  case SpecialReg::PswOld:
                    writeReg(in.rd, pswOld_.bits());
                    break;
                  case SpecialReg::Md:
                    writeReg(in.rd, md_);
                    break;
                  case SpecialReg::PcChain0:
                  case SpecialReg::PcChain1:
                  case SpecialReg::PcChain2:
                    writeReg(in.rd,
                             chain_.read(in.aux - static_cast<unsigned>(
                                 SpecialReg::PcChain0)));
                    break;
                }
                break;
              case ComputeOp::Movtos: {
                const auto sreg = static_cast<SpecialReg>(in.aux);
                if (sreg != SpecialReg::Md && user) {
                    takeException(psw_bits::cPriv);
                    return;
                }
                switch (sreg) {
                  case SpecialReg::Md:
                    md_ = a;
                    break;
                  case SpecialReg::Psw:
                    psw_.setBits(a);
                    break;
                  case SpecialReg::PswOld:
                    break; // hardware-loaded only
                  case SpecialReg::PcChain0:
                  case SpecialReg::PcChain1:
                  case SpecialReg::PcChain2:
                    chain_.write(in.aux - static_cast<unsigned>(
                                     SpecialReg::PcChain0),
                                 a);
                    break;
                }
                break;
              }
              default: {
                const core::ComputeResult r =
                    core::executeCompute(in, a, b, md_);
                if (r.overflow && psw_.overflowTrapEnabled()) {
                    takeException(psw_bits::cOvf);
                    return;
                }
                writeReg(in.rd, r.value);
                if (r.writesMd)
                    md_ = r.md;
                break;
              }
            }
            break;

          case Format::Imm:
            switch (in.immOp) {
              case ImmOp::Addi: {
                const auto r =
                    core::addOverflow(a, static_cast<word_t>(in.imm));
                if (r.overflow && psw_.overflowTrapEnabled()) {
                    takeException(psw_bits::cOvf);
                    return;
                }
                writeReg(in.rd, r.value);
                break;
              }
              case ImmOp::Lih:
                writeReg(in.rd, static_cast<word_t>(in.imm) << 15);
                break;
              case ImmOp::Jmp:
              case ImmOp::Jal: {
                const addr_t target = static_cast<addr_t>(
                    static_cast<std::int64_t>(cur) + 1 + in.imm);
                ++stats_.jumps;
                emitBranch(cur, target, false, true);
                if (in.immOp == ImmOp::Jal) {
                    const unsigned delay =
                        config_.mode == IssMode::Delayed
                            ? config_.branchDelay
                            : 0;
                    writeReg(in.rd, cur + 1 + delay);
                }
                scheduleRedirect(target);
                redirected_seq = config_.mode == IssMode::Sequential;
                break;
              }
              case ImmOp::Jr:
              case ImmOp::Jalr: {
                const addr_t target = static_cast<addr_t>(
                    static_cast<std::int64_t>(a) + in.imm);
                ++stats_.jumps;
                emitBranch(cur, target, false, true);
                if (in.immOp == ImmOp::Jalr) {
                    const unsigned delay =
                        config_.mode == IssMode::Delayed
                            ? config_.branchDelay
                            : 0;
                    writeReg(in.rd, cur + 1 + delay);
                }
                scheduleRedirect(target);
                redirected_seq = config_.mode == IssMode::Sequential;
                break;
              }
              case ImmOp::Jpc: {
                if (user) {
                    takeException(psw_bits::cPriv);
                    return;
                }
                const word_t entry = chain_.pop();
                const addr_t target = core::PcChain::entryPc(entry);
                if (config_.mode == IssMode::Sequential) {
                    pc_ = target;
                    redirected_seq = true;
                } else {
                    redirects_.push_back(
                        {config_.branchDelay + 1, target});
                    // A squashed entry re-executes as a no-op: skip the
                    // single instruction the redirect injects.
                    if (core::PcChain::entrySquashed(entry))
                        redirects_.back().target |= core::chainSquashBit;
                }
                break;
              }
              case ImmOp::Trap:
                ++stats_.traps;
                if (in.uimm == isa::trapCodeHalt) {
                    stop_ = IssStop::Halt;
                    return;
                }
                if (in.uimm == isa::trapCodeFail) {
                    stop_ = IssStop::Fail;
                    return;
                }
                takeException(psw_bits::cTrap);
                return;
            }
            break;

          case Format::Mem: {
            const addr_t addr = static_cast<addr_t>(
                static_cast<std::int64_t>(a) + in.imm);
            switch (in.memOp) {
              case MemOp::Ld:
              case MemOp::Ldt: {
                ++stats_.loads;
                const word_t old = readReg(in.rd);
                const word_t v = ram_.read(space, addr);
                writeReg(in.rd, v);
                if (config_.mode == IssMode::Delayed && in.rd != 0) {
                    stalePending_ = true;
                    staleReg_ = in.rd;
                    staleValue_ = old;
                }
                break;
              }
              case MemOp::St:
                ++stats_.stores;
                ram_.write(space, addr, b);
                break;
              case MemOp::Ldf:
                ++stats_.loads;
                ++stats_.coprocOps;
                cops_.at(1).loadDirect(in.aux, ram_.read(space, addr));
                break;
              case MemOp::Stf:
                ++stats_.stores;
                ++stats_.coprocOps;
                ram_.write(space, addr, cops_.at(1).storeDirect(in.aux));
                break;
              case MemOp::Aluc:
                ++stats_.coprocOps;
                cops_.at(in.copNum()).aluc(in.copOp());
                break;
              case MemOp::Movfrc: {
                ++stats_.coprocOps;
                const word_t old = readReg(in.rd);
                writeReg(in.rd, cops_.at(in.copNum()).movfrc(in.copOp()));
                if (config_.mode == IssMode::Delayed && in.rd != 0) {
                    stalePending_ = true;
                    staleReg_ = in.rd;
                    staleValue_ = old;
                }
                break;
              }
              case MemOp::Movtoc:
                ++stats_.coprocOps;
                cops_.at(in.copNum()).movtoc(in.copOp(), b);
                break;
            }
            break;
          }

          case Format::Branch: {
            const bool taken = core::branchTaken(in.cond, a, b);
            ++stats_.branches;
            if (taken)
                ++stats_.branchesTaken;
            const addr_t target = static_cast<addr_t>(
                static_cast<std::int64_t>(cur) + 1 + in.imm);
            emitBranch(cur, target, true, taken);
            if (config_.mode == IssMode::Sequential) {
                if (taken) {
                    pc_ = target;
                    redirected_seq = true;
                }
            } else {
                if (taken)
                    redirects_.push_back({config_.branchDelay + 1, target});
                const bool squash =
                    (in.squash == isa::SquashType::SquashNotTaken &&
                     !taken) ||
                    (in.squash == isa::SquashType::SquashTaken && taken);
                if (squash)
                    skip_ = config_.branchDelay;
            }
            break;
          }
        }
    }

    if (stopped())
        return;

    // Advance the PC.
    if (config_.mode == IssMode::Sequential) {
        if (!redirected_seq)
            pc_ = cur + 1;
        return;
    }

    addr_t next = cur + 1;
    for (auto it = redirects_.begin(); it != redirects_.end();) {
        if (--it->remaining == 0) {
            next = core::PcChain::entryPc(it->target);
            if (core::PcChain::entrySquashed(it->target))
                skip_ = skip_ > 1 ? skip_ : 1;
            it = redirects_.erase(it);
        } else {
            ++it;
        }
    }
    pc_ = next;
}

} // namespace mipsx::sim
