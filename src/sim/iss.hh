/**
 * @file
 * The instruction-level (functional) simulator — the golden model.
 *
 * The MIPS-X software system was built around an instruction-level
 * simulator written before the detailed design ("By January 1985 ... we
 * had written an instruction level simulator for the machine"); this class
 * plays the same role here. It has two execution semantics:
 *
 *  - Sequential: branches take effect immediately and loads complete
 *    immediately. This is the semantics of the assembler's output, used
 *    to validate workloads *before* the code reorganizer runs.
 *
 *  - Delayed: the architectural semantics of the pipelined machine — a
 *    branch delay of two (or one) with squashing, and a load delay of one
 *    (the instruction after a load reads the old register value). Used to
 *    cross-check the cycle-accurate pipeline model instruction by
 *    instruction.
 *
 * The code reorganizer's correctness statement is exactly: for every
 * program P, Sequential(P) and Delayed(reorganize(P)) — and the pipeline
 * model running reorganize(P) — produce the same architectural results.
 */

#ifndef MIPSX_SIM_ISS_HH
#define MIPSX_SIM_ISS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "assembler/program.hh"
#include "common/types.hh"
#include "coproc/coprocessor.hh"
#include "core/pc_unit.hh"
#include "core/psw.hh"
#include "isa/instruction.hh"
#include "memory/main_memory.hh"
#include "trace/trace.hh"

namespace mipsx::trace
{
class MetricsRegistry;
} // namespace mipsx::trace

namespace mipsx::sim
{

/** Execution semantics for the ISS. */
enum class IssMode : std::uint8_t
{
    Sequential,
    Delayed,
};

/**
 * How the execute loop finds an instruction's semantics: Threaded is a
 * single indexed call through a handler table keyed by the predecoded
 * Instruction::op; Switch is the original nested format/opcode switch,
 * kept as the reference path for differential testing.
 */
enum class IssDispatch : std::uint8_t
{
    Threaded,
    Switch,
};

/**
 * How the run loop advances: Step executes one instruction per
 * iteration (the reference path); Block executes whole predecoded
 * superblocks (DecodedImage::fetchBlock) with the stop/interrupt/
 * checkpoint checks hoisted to block boundaries, falling back to
 * stepping for delay slots in flight, traced runs, cold decodes and
 * blocks invalidated under self-modifying code. The two must be
 * architecturally indistinguishable — the block-vs-step differential
 * test and the fuzzer's --iss-mode=both leg enforce it.
 */
enum class IssExec : std::uint8_t
{
    Step,
    Block,
};

/** ISS configuration. */
struct IssConfig
{
    IssMode mode = IssMode::Sequential;
    unsigned branchDelay = 2; ///< used in Delayed mode
    std::uint64_t maxSteps = 500'000'000;
    word_t initialPsw = isa::psw_bits::shiftEn;
    IssDispatch dispatch = IssDispatch::Threaded;
    IssExec exec = IssExec::Step;
};

/**
 * A stopping point for Iss::runUntil (the fast-forward handoff): at
 * least @p steps instructions executed, or the next visit of @p pc.
 * The ISS continues to a *clean boundary* past the checkpoint — no
 * redirects in flight, no pending squash, no load-delay staleness — so
 * the architectural state it hands over is fully described by
 * (registers, PSW/PSWold, PC chain, PC).
 */
struct IssCheckpoint
{
    std::uint64_t steps = 0; ///< 0 = no instruction-count checkpoint
    bool hasPc = false;
    addr_t pc = 0;
};

/** Why the ISS stopped. */
enum class IssStop : std::uint8_t
{
    Running = 0,
    Halt,
    Fail,
    MaxSteps,
    InvalidInstruction,
    UnhandledException,
};

/** A resolved control-transfer event (for the branch-prediction study). */
struct BranchEvent
{
    addr_t pc = 0;
    addr_t target = 0;
    bool conditional = false;
    bool taken = false;
};

/** Functional simulator statistics. */
struct IssStats
{
    std::uint64_t steps = 0; ///< instructions executed (incl. skipped)
    std::uint64_t branches = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t jumps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t coprocOps = 0;
    std::uint64_t traps = 0;
    std::uint64_t exceptions = 0;
    std::uint64_t interrupts = 0; ///< external interrupts delivered
};

/** The functional simulator. */
class Iss
{
  public:
    Iss(const IssConfig &config, memory::MainMemory &mem);

    void attachCoprocessor(unsigned num,
                           std::unique_ptr<coproc::Coprocessor> cop);
    coproc::Coprocessor &coprocessor(unsigned num) const
    {
        return cops_.at(num);
    }

    void reset(addr_t entry);

    /** Run until halt/fail or a stop condition; returns the reason. */
    IssStop run();

    /**
     * Run until halt/fail/stop or until @p cp is reached at a clean
     * boundary; returns IssStop::Running when the checkpoint won.
     */
    IssStop runUntil(const IssCheckpoint &cp);

    /** Execute one instruction. */
    void step();

    /**
     * Raise the external interrupt line (the functional twin of
     * Cpu::raiseInterrupt). The interrupt stays pending until the PSW
     * has interrupts enabled and no delayed-control bookkeeping is in
     * flight, then vectors through takeException with cause cIntr. The
     * stepping loop samples the line before every instruction; the
     * block loop samples it at block boundaries only, so delivery
     * latency is bounded by the block length cap
     * (memory::DecodedImage::maxBlockWords).
     */
    void requestInterrupt() { intrPending_ = true; }
    bool interruptPending() const { return intrPending_; }

    bool stopped() const { return stop_ != IssStop::Running; }
    IssStop stopReason() const { return stop_; }

    word_t gpr(unsigned r) const { return regs_.at(r); }
    /** Delayed mode: true if the next instruction is squashed. */
    bool nextIsSquashed() const { return skip_ > 0; }
    void setGpr(unsigned r, word_t v);
    word_t md() const { return md_; }
    const core::Psw &psw() const { return psw_; }
    const core::Psw &pswOld() const { return pswOld_; }
    const core::PcChain &pcChain() const { return chain_; }
    addr_t pc() const { return pc_; }
    const IssStats &stats() const { return stats_; }

    /** Observe every resolved branch/jump. */
    void setBranchHook(std::function<void(const BranchEvent &)> hook)
    {
        branchHook_ = std::move(hook);
    }

    /**
     * Attach (or detach, with nullptr) an event trace buffer: each
     * step records a Retire event (cycle = step count), exceptions an
     * Exception event — the functional twin of the pipeline's trace,
     * which the cosim divergence reporter prints side by side.
     */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    /** Export the ISS statistics into @p m under "iss.". */
    void collectMetrics(trace::MetricsRegistry &m) const;

    /**
     * True if the threaded-dispatch table has a handler for semantic-op
     * index @p op (every op a valid decode can produce must have one;
     * the completeness test enforces this against isa::decode()).
     */
    static bool hasHandler(std::uint8_t op);

  private:
    struct StepCtx;
    friend struct IssOps;

    /**
     * One instruction, with the trace hook resolved at compile time:
     * the Traced=false instantiation contains no trace code at all, so
     * the tracing-off run loop pays nothing per step.
     */
    template <bool Traced> void stepImpl();

    /** The original nested switch (IssDispatch::Switch reference path). */
    void stepOps(const isa::Instruction &in, StepCtx &ctx);

    /** The superblock run loop (IssExec::Block, untraced). */
    IssStop runBlocks(const IssCheckpoint *cp);
    /** Execute @p n chained instructions starting at pc_. */
    void executeBlock(const isa::Instruction *insts, unsigned n);
    bool atCheckpoint(const IssCheckpoint &cp) const;

    word_t readReg(unsigned r) const;
    void writeReg(unsigned r, word_t v);
    void takeException(word_t cause);
    void scheduleRedirect(addr_t target);
    void emitBranch(addr_t pc, addr_t target, bool cond, bool taken);

    IssConfig config_;
    memory::MainMemory &ram_;
    coproc::CoprocessorSet cops_;

    std::array<word_t, numGprs> regs_{};
    word_t md_ = 0;
    core::Psw psw_;
    core::Psw pswOld_;
    core::PcChain chain_;
    addr_t pc_ = 0;

    // Delayed-mode machinery.
    struct Redirect
    {
        unsigned remaining;
        addr_t target;
    };
    std::vector<Redirect> redirects_;
    unsigned skip_ = 0; ///< remaining squashed instructions
    bool stalePending_ = false;
    unsigned staleReg_ = 0;
    word_t staleValue_ = 0;
    bool intrPending_ = false; ///< external interrupt line raised

    /**
     * Keeps the page the current/last superblock executes from alive:
     * an in-block store may clone the page copy-on-write underneath
     * the executor (detected via the decode generation), but the
     * decodes it already points at must outlive the block.
     */
    std::shared_ptr<const memory::DecodedImage::Page> blockHold_;

    IssStop stop_ = IssStop::Running;
    IssStats stats_;
    std::function<void(const BranchEvent &)> branchHook_;
    trace::TraceBuffer *trace_ = nullptr; ///< null = tracing disabled
};

} // namespace mipsx::sim

#endif // MIPSX_SIM_ISS_HH
