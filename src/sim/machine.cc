#include "sim/machine.hh"

#include "common/sim_error.hh"
#include "coproc/counter_cop.hh"
#include "isa/isa.hh"

namespace mipsx::sim
{

namespace
{

core::PipelineStats
subtractStats(const core::PipelineStats &a, const core::PipelineStats &b)
{
    core::PipelineStats d;
    d.cycles = a.cycles - b.cycles;
    d.committed = a.committed - b.committed;
    d.committedNops = a.committedNops - b.committedNops;
    d.nopsInBranchSlots = a.nopsInBranchSlots - b.nopsInBranchSlots;
    d.nopsForLoadDelay = a.nopsForLoadDelay - b.nopsForLoadDelay;
    d.squashed = a.squashed - b.squashed;
    d.branches = a.branches - b.branches;
    d.branchesTaken = a.branchesTaken - b.branchesTaken;
    d.branchSquashTriggers =
        a.branchSquashTriggers - b.branchSquashTriggers;
    d.branchWastedSlots = a.branchWastedSlots - b.branchWastedSlots;
    d.jumps = a.jumps - b.jumps;
    d.jumpWastedSlots = a.jumpWastedSlots - b.jumpWastedSlots;
    d.traps = a.traps - b.traps;
    d.exceptions = a.exceptions - b.exceptions;
    d.interrupts = a.interrupts - b.interrupts;
    d.hazardViolations = a.hazardViolations - b.hazardViolations;
    return d;
}

void
accumulateStats(core::PipelineStats &into, const core::PipelineStats &d)
{
    into.cycles += d.cycles;
    into.committed += d.committed;
    into.committedNops += d.committedNops;
    into.nopsInBranchSlots += d.nopsInBranchSlots;
    into.nopsForLoadDelay += d.nopsForLoadDelay;
    into.squashed += d.squashed;
    into.branches += d.branches;
    into.branchesTaken += d.branchesTaken;
    into.branchSquashTriggers += d.branchSquashTriggers;
    into.branchWastedSlots += d.branchWastedSlots;
    into.jumps += d.jumps;
    into.jumpWastedSlots += d.jumpWastedSlots;
    into.traps += d.traps;
    into.exceptions += d.exceptions;
    into.interrupts += d.interrupts;
    into.hazardViolations += d.hazardViolations;
}

} // namespace

MachineCounters
subtractCounters(const MachineCounters &a, const MachineCounters &b)
{
    MachineCounters d;
    d.pipeline = subtractStats(a.pipeline, b.pipeline);
    d.icacheAccesses = a.icacheAccesses - b.icacheAccesses;
    d.icacheMisses = a.icacheMisses - b.icacheMisses;
    d.icacheRefillWords = a.icacheRefillWords - b.icacheRefillWords;
    d.icacheStalls = a.icacheStalls - b.icacheStalls;
    d.ecacheAccesses = a.ecacheAccesses - b.ecacheAccesses;
    d.ecacheMisses = a.ecacheMisses - b.ecacheMisses;
    d.ecacheWritebacks = a.ecacheWritebacks - b.ecacheWritebacks;
    d.ecacheMemCycles = a.ecacheMemCycles - b.ecacheMemCycles;
    d.ecacheStalls = a.ecacheStalls - b.ecacheStalls;
    return d;
}

void
accumulateCounters(MachineCounters &into, const MachineCounters &d)
{
    accumulateStats(into.pipeline, d.pipeline);
    into.icacheAccesses += d.icacheAccesses;
    into.icacheMisses += d.icacheMisses;
    into.icacheRefillWords += d.icacheRefillWords;
    into.icacheStalls += d.icacheStalls;
    into.ecacheAccesses += d.ecacheAccesses;
    into.ecacheMisses += d.ecacheMisses;
    into.ecacheWritebacks += d.ecacheWritebacks;
    into.ecacheMemCycles += d.ecacheMemCycles;
    into.ecacheStalls += d.ecacheStalls;
}

Machine::Machine(const MachineConfig &config) : config_(config)
{
    config_.validate();
    cpu_ = std::make_unique<core::Cpu>(config_.cpu, mem_);
    if (config_.traceDepth) {
        trace_.setCapacity(config_.traceDepth);
        cpu_->setTrace(&trace_);
    }
    if (config_.attachFpu) {
        auto fpu = std::make_unique<coproc::Fpu>();
        fpu_ = fpu.get();
        cpu_->attachCoprocessor(1, std::move(fpu));
    }
    if (config_.attachCounterCop)
        cpu_->attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
}

void
Machine::load(const assembler::Program &prog,
              const memory::DecodedImage::Snapshot *decoded)
{
    mem_.loadProgram(prog, decoded);
    prog_ = &prog;
    cpu_->setProgram(prog_);
}

void
Machine::seedCheckpoint(const assembler::Program &prog, Checkpoint &&cp)
{
    mem_ = std::move(cp.memory);
    prog_ = &prog;
    cpu_->setProgram(prog_);
    seed_ = std::move(cp);
}

void
Machine::applySeed()
{
    const Checkpoint &cp = *seed_;
    cpu_->reset(cp.pc);
    for (unsigned r = 1; r < numGprs; ++r)
        cpu_->setGpr(r, cp.gprs[r]);
    cpu_->setMd(cp.md);
    cpu_->setPsw(cp.psw);
    cpu_->setPswOld(cp.pswOld);
    for (unsigned i = 0; i < pcChainDepth; ++i)
        cpu_->setPcChainEntry(i, cp.pcChain[i]);
    if (cp.hasFpu && fpu_) {
        for (unsigned r = 0; r < 32; ++r)
            fpu_->setRegBits(r, cp.fpuRegs[r]);
        fpu_->setCondition(cp.fpuCondition);
    }
    if (cp.hasCounterCop && config_.attachCounterCop) {
        auto &dst =
            static_cast<coproc::CounterCop &>(cpu_->coprocessor(2));
        dst.setCounter(cp.copCounter);
        dst.setThreshold(cp.copThreshold);
    }
}

MachineCounters
Machine::counters() const
{
    MachineCounters c;
    c.pipeline = cpu_->stats();
    c.icacheAccesses = cpu_->icache().accesses();
    c.icacheMisses = cpu_->icache().misses();
    c.icacheRefillWords = cpu_->icache().refillWords();
    c.icacheStalls = cpu_->icache().stallCycles();
    c.ecacheAccesses = cpu_->ecache().accesses();
    c.ecacheMisses = cpu_->ecache().misses();
    c.ecacheWritebacks = cpu_->ecache().writebacks();
    c.ecacheMemCycles = cpu_->ecache().memoryTrafficCycles();
    c.ecacheStalls = cpu_->ecache().stallCycles();
    return c;
}

MachineCounters
Machine::steadyCounters() const
{
    return subtractCounters(counters(), warmup_.baseline);
}

core::RunResult
Machine::run()
{
    if (!prog_)
        fatal("Machine::run: no program loaded");
    trace_.clear();
    ff_ = {};
    warmup_ = {};
    if (seed_) {
        applySeed();
    } else if (config_.fastForward.enabled()) {
        if (auto early = fastForwardPhase())
            return *early;
    } else {
        cpu_->reset(prog_->entry);
        if (prog_->entrySpace == AddressSpace::System) {
            cpu_->setPsw(cpu_->psw().bits() | isa::psw_bits::mode);
        }
        cpu_->setGpr(isa::reg::sp, config_.stackTop);
    }
    if (config_.warmupInstructions) {
        // Warm-up phase: caches, branch state and the pipeline itself
        // accumulate normally; the gate just snapshots the counters so
        // steadyCounters() measures only what follows. The pause is
        // between steps — the subsequent run continues the identical
        // step sequence an ungated run would have executed.
        cpu_->runUntilCommitted(config_.warmupInstructions);
        warmup_.ran = true;
        warmup_.baseline = counters();
        if (cpu_->stopped()) {
            core::RunResult r;
            r.reason = cpu_->stopReason();
            r.cycles = cpu_->stats().cycles;
            r.instructions = cpu_->stats().committed;
            return r;
        }
    }
    if (config_.maxCommitted) {
        core::RunResult r = cpu_->runUntilCommitted(config_.maxCommitted);
        if (r.reason == core::StopReason::Running)
            r.reason = core::StopReason::CommitLimit;
        return r;
    }
    return cpu_->run();
}

std::optional<core::RunResult>
Machine::fastForwardPhase()
{
    // The ISS runs on the machine's own memory (already loaded), so its
    // stores are exactly the stores the pipeline would have done — the
    // handoff transfers registers only. It must start from the same
    // architectural initial state Cpu::reset establishes below.
    IssConfig cfg;
    cfg.mode = IssMode::Delayed;
    cfg.branchDelay = config_.cpu.branchDelay;
    cfg.exec = IssExec::Block;
    cfg.initialPsw = config_.cpu.initialPsw;
    if (prog_->entrySpace == AddressSpace::System)
        cfg.initialPsw |= isa::psw_bits::mode;
    Iss iss(cfg, mem_);
    if (config_.attachFpu)
        iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    if (config_.attachCounterCop)
        iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
    iss.reset(prog_->entry);
    iss.setGpr(isa::reg::sp, config_.stackTop);

    IssCheckpoint cp;
    cp.steps = config_.fastForward.instructions;
    cp.hasPc = config_.fastForward.hasPc;
    cp.pc = config_.fastForward.pc;
    const IssStop st = iss.runUntil(cp);

    ff_.ran = true;
    ff_.issSteps = iss.stats().steps;
    ff_.issStop = st;
    ff_.handoffPc = iss.pc();

    // The ISS already vectored through an exception nothing handles;
    // replaying from the vectored state would just fault again.
    if (st == IssStop::UnhandledException) {
        core::RunResult r;
        r.reason = core::StopReason::UnhandledException;
        return r;
    }

    // Any other early stop (halt/fail/invalid before the checkpoint)
    // left pc_ at the stopping instruction: hand over anyway and let
    // the pipeline re-execute it, so the RunResult is the pipeline's
    // own verdict either way.
    cpu_->reset(iss.pc());
    for (unsigned r = 1; r < numGprs; ++r)
        cpu_->setGpr(r, iss.gpr(r));
    cpu_->setMd(iss.md());
    cpu_->setPsw(iss.psw().bits());
    cpu_->setPswOld(iss.pswOld().bits());
    for (unsigned i = 0; i < pcChainDepth; ++i)
        cpu_->setPcChainEntry(i, iss.pcChain().read(i));
    if (config_.attachFpu) {
        const auto &src =
            static_cast<const coproc::Fpu &>(iss.coprocessor(1));
        for (unsigned r = 0; r < 32; ++r)
            fpu_->setRegBits(r, src.regBits(r));
        fpu_->setCondition(src.condition());
    }
    if (config_.attachCounterCop) {
        const auto &src =
            static_cast<const coproc::CounterCop &>(iss.coprocessor(2));
        auto &dst =
            static_cast<coproc::CounterCop &>(cpu_->coprocessor(2));
        dst.setCounter(src.counter());
        dst.setThreshold(src.threshold());
    }
    return std::nullopt;
}

coproc::Fpu &
Machine::fpu()
{
    if (!fpu_)
        fatal("Machine: no FPU attached");
    return *fpu_;
}

word_t
Machine::readSymbol(const std::string &symbol, addr_t offset) const
{
    if (!prog_)
        fatal("Machine::readSymbol: no program loaded");
    return mem_.read(AddressSpace::User, prog_->symbol(symbol) + offset);
}

IssRunResult
runIss(const assembler::Program &prog, memory::MainMemory &mem,
       const IssConfig &config, addr_t stack_top)
{
    mem.loadProgram(prog);
    IssConfig cfg = config;
    if (prog.entrySpace == AddressSpace::System)
        cfg.initialPsw |= isa::psw_bits::mode;
    Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, stack_top);
    IssRunResult r;
    r.reason = iss.run();
    r.stats = iss.stats();
    return r;
}

} // namespace mipsx::sim
