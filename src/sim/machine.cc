#include "sim/machine.hh"

#include "common/sim_error.hh"
#include "coproc/counter_cop.hh"
#include "isa/isa.hh"

namespace mipsx::sim
{

Machine::Machine(const MachineConfig &config) : config_(config)
{
    config_.validate();
    cpu_ = std::make_unique<core::Cpu>(config_.cpu, mem_);
    if (config_.traceDepth) {
        trace_.setCapacity(config_.traceDepth);
        cpu_->setTrace(&trace_);
    }
    if (config_.attachFpu) {
        auto fpu = std::make_unique<coproc::Fpu>();
        fpu_ = fpu.get();
        cpu_->attachCoprocessor(1, std::move(fpu));
    }
    if (config_.attachCounterCop)
        cpu_->attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
}

void
Machine::load(const assembler::Program &prog,
              const memory::DecodedImage::Snapshot *decoded)
{
    mem_.loadProgram(prog, decoded);
    prog_ = &prog;
    cpu_->setProgram(prog_);
}

core::RunResult
Machine::run()
{
    if (!prog_)
        fatal("Machine::run: no program loaded");
    trace_.clear();
    cpu_->reset(prog_->entry);
    if (prog_->entrySpace == AddressSpace::System) {
        cpu_->setPsw(cpu_->psw().bits() | isa::psw_bits::mode);
    }
    cpu_->setGpr(isa::reg::sp, config_.stackTop);
    return cpu_->run();
}

coproc::Fpu &
Machine::fpu()
{
    if (!fpu_)
        fatal("Machine: no FPU attached");
    return *fpu_;
}

word_t
Machine::readSymbol(const std::string &symbol, addr_t offset) const
{
    if (!prog_)
        fatal("Machine::readSymbol: no program loaded");
    return mem_.read(AddressSpace::User, prog_->symbol(symbol) + offset);
}

IssRunResult
runIss(const assembler::Program &prog, memory::MainMemory &mem,
       const IssConfig &config, addr_t stack_top)
{
    mem.loadProgram(prog);
    IssConfig cfg = config;
    if (prog.entrySpace == AddressSpace::System)
        cfg.initialPsw |= isa::psw_bits::mode;
    Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.attachCoprocessor(2, std::make_unique<coproc::CounterCop>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, stack_top);
    IssRunResult r;
    r.reason = iss.run();
    r.stats = iss.stats();
    return r;
}

} // namespace mipsx::sim
