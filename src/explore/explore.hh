/**
 * @file
 * The design-space exploration engine.
 *
 * runSweep() expands a GridSpec to its cartesian point set, runs the
 * selected workload suite at every point through the deterministic
 * parallel suite runner, and snapshots each point's aggregate into a
 * MetricsRegistry. The emitters write the whole sweep as long-form CSV
 * (one row per point x metric — the shape plotting tools melt into
 * anyway) and as nested JSON (grid spec + per-point suite aggregate).
 *
 * Both outputs are bit-identical for any worker count and across
 * repeated runs: every number in them descends from the suite runner's
 * deterministic integer aggregate, and nothing host-dependent (timing,
 * job counts) is emitted. The golden-reproduction tests and
 * scripts/tier1.sh rely on this.
 */

#ifndef MIPSX_EXPLORE_EXPLORE_HH
#define MIPSX_EXPLORE_EXPLORE_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/grid.hh"
#include "explore/pareto.hh"
#include "trace/metrics.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

namespace mipsx::explore
{

/** Everything one sweep needs. */
struct SweepConfig
{
    GridSpec grid;
    /** Suite name: full | big-code | pascal | lisp | fp. */
    std::string suite = "full";
    /**
     * Fixed (param, value) bindings applied to every point before its
     * axis bindings — the non-swept part of the spec ("base" in a grid
     * file). Echoed into the JSON output for reproducibility.
     */
    std::vector<std::pair<std::string, std::string>> base;
    /** Runner options under the bindings (jobs, predecode, ...). */
    workload::SuiteRunOptions runner{};
    /**
     * Shard selection: run only the grid points whose global index is
     * congruent to shardIndex modulo shardCount. Every shard still
     * validates the whole grid, and each point keeps its global index,
     * so mergeShards() over all N shard outputs reproduces the
     * unsharded sweep byte for byte.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

/** One grid point's run: its bindings and the suite aggregate. */
struct SweepPointResult
{
    /** Global point index: grid expansion order, refinements after. */
    std::size_t index = 0;
    /** True when adaptive refinement added this point (not the grid). */
    bool refined = false;
    GridPoint point;
    workload::SuiteStats stats;
    /** The "suite.*" snapshot of @ref stats (counts plus ratios). */
    trace::MetricsRegistry metrics;
    std::vector<workload::SuiteFailure> failures;
};

/**
 * A Pareto-frontier annotation over a sweep's points (absent until
 * annotatePareto() runs). Indices are global point indices.
 */
struct ParetoAnnotation
{
    bool present = false;
    MetricObjective x, y;
    std::vector<std::size_t> frontier; ///< ascending x, then y, then index
    std::size_t knee = 0;              ///< global index of the knee point
};

/** A completed sweep. */
struct SweepResult
{
    GridSpec grid;
    std::string suite;
    std::vector<std::pair<std::string, std::string>> base;
    unsigned workloads = 0; ///< workloads run per point
    unsigned shardIndex = 0;
    unsigned shardCount = 1; ///< 1 for an unsharded (or merged) sweep
    std::vector<SweepPointResult> points;
    ParetoAnnotation pareto;

    unsigned totalFailures() const;

    /**
     * The first point whose bindings include every given (param,
     * value) pair, or nullptr. Lets thin bench wrappers pull named
     * rows out of a sweep.
     */
    const SweepPointResult *
    find(const std::vector<std::pair<std::string, std::string>> &bindings)
        const;
};

/** Resolve a suite name; throws SimError for unknown names. */
std::vector<workload::Workload> suiteByName(const std::string &name);
/** The names suiteByName() accepts. */
const std::vector<std::string> &suiteNames();

/** Called after each point completes (progress reporting). */
using PointCallback = std::function<void(
    std::size_t index, std::size_t total, const SweepPointResult &)>;

/**
 * Run the sweep over an explicit workload list (tests use slices).
 * Validates the grid and every point's bindings before running
 * anything, so a bad spec costs zero simulated cycles.
 */
SweepResult runSweep(const SweepConfig &config,
                     const std::vector<workload::Workload> &suite,
                     const PointCallback &progress = {});

/** Run the sweep over config.suite resolved by suiteByName(). */
SweepResult runSweep(const SweepConfig &config,
                     const PointCallback &progress = {});

/** Knobs for the adaptive (knee-refining) search. */
struct AdaptiveOptions
{
    /** Objectives the frontier is extracted over. */
    MetricObjective x{"suite.cycles", true};
    MetricObjective y{"energy.total", true};
    /**
     * Total point budget, coarse grid included. A budget at or below
     * the grid size degenerates to a plain sweep.
     */
    std::size_t pointBudget = 0;
};

/**
 * Coarse-grid sweep followed by knee refinement: extract the Pareto
 * frontier over the two objectives, locate its knee, and bisect the
 * knee's numeric axes against their nearest evaluated neighbours until
 * the point budget is spent or no new candidate exists. Candidates are
 * proposed and evaluated in a fixed order derived only from the
 * deterministic metrics, so the result is identical for every worker
 * count. The returned sweep carries the final Pareto annotation.
 * Incompatible with sharding (throws SimError when shardCount > 1).
 */
SweepResult runAdaptiveSweep(const SweepConfig &config,
                             const std::vector<workload::Workload> &suite,
                             const AdaptiveOptions &adaptive,
                             const PointCallback &progress = {});
SweepResult runAdaptiveSweep(const SweepConfig &config,
                             const AdaptiveOptions &adaptive,
                             const PointCallback &progress = {});

/**
 * Annotate @p r with the Pareto frontier and knee over two metric
 * objectives. Points with failures are excluded from the frontier (a
 * partial aggregate is not a design point). Throws SimError when the
 * sweep is empty, when every point failed, or when a surviving point
 * lacks one of the metrics.
 */
void annotatePareto(SweepResult &r, const MetricObjective &x,
                    const MetricObjective &y);

/**
 * Long-form CSV: header "point,<axis params...>,metric,value", one row
 * per point x metric. Cells are quoted only when they need it.
 */
void writeCsv(std::ostream &os, const SweepResult &r);

/**
 * Nested JSON: schema tag, suite, base bindings, the grid spec, and
 * per point its bindings, failure names and metrics snapshot.
 */
void writeJson(std::ostream &os, const SweepResult &r);

/** File variants; false (with a stderr note) on open failure. */
bool writeCsvFile(const std::string &path, const SweepResult &r);
bool writeJsonFile(const std::string &path, const SweepResult &r);

/**
 * Parse a sweep spec from JSON text:
 *
 *     {
 *       "suite": "big-code",              // optional, default "full"
 *       "base":  { "reorg.paperFaithful": false },   // optional
 *       "axes":  { "icache.fetchWords": [1, 2],
 *                  "icache.missPenalty": [1, 2, 3] } // required
 *     }
 *
 * Axis order in the file is sweep order. Scalars may be numbers,
 * strings or booleans; they become grid value strings verbatim.
 */
SweepConfig sweepFromJson(const std::string &text);
/** sweepFromJson over a file's contents; throws SimError on IO. */
SweepConfig sweepFromJsonFile(const std::string &path);

/**
 * Parse a writeJson() document (schema "mipsx-explore-v2") back into a
 * SweepResult. Metric values round-trip exactly: integer lexemes
 * reload as integers, reals re-parse to the identical double (%.17g is
 * a lossless encoding), so re-emitting the parsed result reproduces
 * the input byte for byte. Only what the JSON carries is restored —
 * per-point SuiteStats are not (the failure *count* is).
 */
SweepResult sweepResultFromJson(const std::string &text);
/** sweepResultFromJson over a file's contents; throws SimError on IO. */
SweepResult sweepResultFromJsonFile(const std::string &path);

/**
 * Merge the outputs of a sharded sweep back into the unsharded result.
 * Expects exactly one shard output for each index 0..N-1 of a common
 * shard count N (any input order), with identical grid, suite, base
 * and workload count; throws SimError otherwise. The merged result has
 * shardCount 1 and its points in global index order, so writing it
 * produces byte-identical CSV/JSON to a run without --shard.
 */
SweepResult mergeShards(std::vector<SweepResult> shards);

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_EXPLORE_HH
