/**
 * @file
 * The design-space exploration engine.
 *
 * runSweep() expands a GridSpec to its cartesian point set, runs the
 * selected workload suite at every point through the deterministic
 * parallel suite runner, and snapshots each point's aggregate into a
 * MetricsRegistry. The emitters write the whole sweep as long-form CSV
 * (one row per point x metric — the shape plotting tools melt into
 * anyway) and as nested JSON (grid spec + per-point suite aggregate).
 *
 * Both outputs are bit-identical for any worker count and across
 * repeated runs: every number in them descends from the suite runner's
 * deterministic integer aggregate, and nothing host-dependent (timing,
 * job counts) is emitted. The golden-reproduction tests and
 * scripts/tier1.sh rely on this.
 */

#ifndef MIPSX_EXPLORE_EXPLORE_HH
#define MIPSX_EXPLORE_EXPLORE_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/grid.hh"
#include "trace/metrics.hh"
#include "workload/suite_runner.hh"
#include "workload/workload.hh"

namespace mipsx::explore
{

/** Everything one sweep needs. */
struct SweepConfig
{
    GridSpec grid;
    /** Suite name: full | big-code | pascal | lisp | fp. */
    std::string suite = "full";
    /**
     * Fixed (param, value) bindings applied to every point before its
     * axis bindings — the non-swept part of the spec ("base" in a grid
     * file). Echoed into the JSON output for reproducibility.
     */
    std::vector<std::pair<std::string, std::string>> base;
    /** Runner options under the bindings (jobs, predecode, ...). */
    workload::SuiteRunOptions runner{};
};

/** One grid point's run: its bindings and the suite aggregate. */
struct SweepPointResult
{
    GridPoint point;
    workload::SuiteStats stats;
    /** The "suite.*" snapshot of @ref stats (counts plus ratios). */
    trace::MetricsRegistry metrics;
    std::vector<workload::SuiteFailure> failures;
};

/** A completed sweep. */
struct SweepResult
{
    GridSpec grid;
    std::string suite;
    std::vector<std::pair<std::string, std::string>> base;
    unsigned workloads = 0; ///< workloads run per point
    std::vector<SweepPointResult> points;

    unsigned totalFailures() const;

    /**
     * The first point whose bindings include every given (param,
     * value) pair, or nullptr. Lets thin bench wrappers pull named
     * rows out of a sweep.
     */
    const SweepPointResult *
    find(const std::vector<std::pair<std::string, std::string>> &bindings)
        const;
};

/** Resolve a suite name; throws SimError for unknown names. */
std::vector<workload::Workload> suiteByName(const std::string &name);
/** The names suiteByName() accepts. */
const std::vector<std::string> &suiteNames();

/** Called after each point completes (progress reporting). */
using PointCallback = std::function<void(
    std::size_t index, std::size_t total, const SweepPointResult &)>;

/**
 * Run the sweep over an explicit workload list (tests use slices).
 * Validates the grid and every point's bindings before running
 * anything, so a bad spec costs zero simulated cycles.
 */
SweepResult runSweep(const SweepConfig &config,
                     const std::vector<workload::Workload> &suite,
                     const PointCallback &progress = {});

/** Run the sweep over config.suite resolved by suiteByName(). */
SweepResult runSweep(const SweepConfig &config,
                     const PointCallback &progress = {});

/**
 * Long-form CSV: header "point,<axis params...>,metric,value", one row
 * per point x metric. Cells are quoted only when they need it.
 */
void writeCsv(std::ostream &os, const SweepResult &r);

/**
 * Nested JSON: schema tag, suite, base bindings, the grid spec, and
 * per point its bindings, failure names and metrics snapshot.
 */
void writeJson(std::ostream &os, const SweepResult &r);

/** File variants; false (with a stderr note) on open failure. */
bool writeCsvFile(const std::string &path, const SweepResult &r);
bool writeJsonFile(const std::string &path, const SweepResult &r);

/**
 * Parse a sweep spec from JSON text:
 *
 *     {
 *       "suite": "big-code",              // optional, default "full"
 *       "base":  { "reorg.paperFaithful": false },   // optional
 *       "axes":  { "icache.fetchWords": [1, 2],
 *                  "icache.missPenalty": [1, 2, 3] } // required
 *     }
 *
 * Axis order in the file is sweep order. Scalars may be numbers,
 * strings or booleans; they become grid value strings verbatim.
 */
SweepConfig sweepFromJson(const std::string &text);
/** sweepFromJson over a file's contents; throws SimError on IO. */
SweepConfig sweepFromJsonFile(const std::string &path);

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_EXPLORE_HH
