#include "explore/trend.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/sim_error.hh"
#include "explore/json.hh"

namespace mipsx::explore
{

const double *
FlatMetrics::find(const std::string &key) const
{
    for (const auto &[k, v] : entries)
        if (k == key)
            return &v;
    return nullptr;
}

FlatMetrics
flatMetricsFromJson(const std::string &name, const std::string &text)
{
    const Json doc = Json::parse(text);
    if (!doc.isObject())
        fatal(strformat("trend: %s is not a flat JSON object",
                        name.c_str()));
    FlatMetrics fm;
    fm.name = name;
    for (const auto &[key, value] : doc.object()) {
        switch (value.kind()) {
        case Json::Kind::Number:
            fm.entries.emplace_back(key, value.number());
            break;
        case Json::Kind::Bool:
            fm.entries.emplace_back(key, value.boolean() ? 1.0 : 0.0);
            break;
        default:
            break; // string annotations and the like: not metrics
        }
    }
    return fm;
}

FlatMetrics
flatMetricsFromJsonFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(strformat("trend: cannot open '%s'", path.c_str()));
    std::stringstream ss;
    ss << f.rdbuf();
    const auto slash = path.find_last_of('/');
    return flatMetricsFromJson(
        slash == std::string::npos ? path : path.substr(slash + 1),
        ss.str());
}

bool
higherIsBetter(const std::string &key)
{
    // Throughput-style names win; everything else (cycles, seconds,
    // ratios, fractions, energy, misses) is a cost.
    static const char *const patterns[] = {
        "per_second", "per_sec",   "per_host_second", "speedup",
        "throughput", "fill_rate", "instr_per",
    };
    for (const char *p : patterns)
        if (key.find(p) != std::string::npos)
            return true;
    return false;
}

const char *
trendStatusName(TrendStatus s)
{
    switch (s) {
    case TrendStatus::Ok:
        return "ok";
    case TrendStatus::Improved:
        return "improved";
    case TrendStatus::Regressed:
        return "REGRESSED";
    }
    return "?";
}

bool
TrendReport::regressed() const
{
    if (!missingGates.empty())
        return true;
    for (const auto &row : rows)
        if (row.gated && row.status == TrendStatus::Regressed)
            return true;
    return false;
}

TrendReport
trendCompare(const std::vector<FlatMetrics> &runs,
             const TrendOptions &opts)
{
    if (runs.size() < 2)
        fatal("trend: need at least two files (baseline and current)");
    if (!(opts.thresholdPct >= 0) || !std::isfinite(opts.thresholdPct))
        fatal(strformat("trend: threshold must be a finite non-negative "
                        "percentage (got %g)",
                        opts.thresholdPct));

    TrendReport rep;
    rep.thresholdPct = opts.thresholdPct;
    for (const auto &r : runs)
        rep.names.push_back(r.name);

    // Row order: the baseline's keys, then keys first seen later, in
    // encounter order — deterministic regardless of set contents.
    std::vector<std::string> keys;
    for (const auto &r : runs)
        for (const auto &[k, v] : r.entries)
            if (std::find(keys.begin(), keys.end(), k) == keys.end())
                keys.push_back(k);

    const auto gated = [&](const std::string &key) {
        return std::find(opts.gates.begin(), opts.gates.end(), key) !=
               opts.gates.end();
    };

    for (const auto &key : keys) {
        TrendRow row;
        row.key = key;
        row.higherBetter = higherIsBetter(key);
        row.gated = gated(key);
        for (const auto &r : runs) {
            const double *v = r.find(key);
            row.present.push_back(v != nullptr);
            row.values.push_back(v ? *v : 0.0);
        }
        row.comparable = row.present.front() && row.present.back();
        if (row.comparable) {
            const double first = row.values.front();
            const double last = row.values.back();
            if (first != 0) {
                row.deltaPct = 100.0 * (last - first) / std::fabs(first);
            } else if (last != 0) {
                row.deltaPct = last > 0
                    ? std::numeric_limits<double>::infinity()
                    : -std::numeric_limits<double>::infinity();
            }
            const double good =
                row.higherBetter ? row.deltaPct : -row.deltaPct;
            if (good > opts.thresholdPct)
                row.status = TrendStatus::Improved;
            else if (good < -opts.thresholdPct)
                row.status = TrendStatus::Regressed;
        }
        rep.rows.push_back(std::move(row));
    }

    for (const auto &g : opts.gates) {
        const bool inFirst = runs.front().find(g) != nullptr;
        const bool inLast = runs.back().find(g) != nullptr;
        if (!inFirst && !inLast)
            fatal(strformat("trend: gated key '%s' exists in neither "
                            "the baseline nor the current file (typo?)",
                            g.c_str()));
        if (!inFirst || !inLast)
            rep.missingGates.push_back(g);
    }
    return rep;
}

namespace
{

std::string
fmtValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtDelta(const TrendRow &row)
{
    if (!row.comparable)
        return "n/a";
    if (std::isinf(row.deltaPct))
        return row.deltaPct > 0 ? "+inf" : "-inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", row.deltaPct);
    return buf;
}

std::string
mdEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '|' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void
writeTrendMarkdown(std::ostream &os, const TrendReport &r)
{
    os << "# mipsx-trend: " << mdEscape(r.names.front()) << " -> "
       << mdEscape(r.names.back()) << "\n\n";
    std::size_t ngates = 0;
    for (const auto &row : r.rows)
        ngates += row.gated;
    os << "Threshold: " << fmtValue(r.thresholdPct) << "% on " << ngates
       << " gated key(s); everything else is report-only.\n\n";
    if (!r.missingGates.empty()) {
        for (const auto &g : r.missingGates)
            os << "**MISSING GATED KEY:** `" << g << "`\n";
        os << "\n";
    }

    os << "| key |";
    for (const auto &n : r.names)
        os << ' ' << mdEscape(n) << " |";
    os << " delta | direction | status |\n";
    os << "|---|";
    for (std::size_t i = 0; i < r.names.size(); ++i)
        os << "---:|";
    os << "---:|---|---|\n";
    for (const auto &row : r.rows) {
        os << "| `" << mdEscape(row.key) << (row.gated ? "` (gated) |"
                                                       : "` |");
        for (std::size_t i = 0; i < row.values.size(); ++i) {
            if (row.present[i])
                os << ' ' << fmtValue(row.values[i]) << " |";
            else
                os << " - |";
        }
        os << ' ' << fmtDelta(row) << " | "
           << (row.higherBetter ? "higher" : "lower") << " | "
           << trendStatusName(row.status) << " |\n";
    }
    os << "\nResult: "
       << (r.regressed() ? "**REGRESSED**" : "no gated regression")
       << "\n";
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void
jsonNumber(std::ostream &os, double v)
{
    if (std::isinf(v) || std::isnan(v)) {
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
writeTrendJson(std::ostream &os, const TrendReport &r)
{
    os << "{\n  \"schema\": \"mipsx-trend-v1\",\n";
    os << "  \"threshold_pct\": ";
    jsonNumber(os, r.thresholdPct);
    os << ",\n  \"names\": [";
    for (std::size_t i = 0; i < r.names.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(r.names[i]) << '"';
    os << "],\n  \"regressed\": " << (r.regressed() ? "true" : "false")
       << ",\n  \"missing_gated\": [";
    for (std::size_t i = 0; i < r.missingGates.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(r.missingGates[i])
           << '"';
    os << "],\n  \"rows\": [\n";
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
        const auto &row = r.rows[i];
        os << "    {\"key\": \"" << jsonEscape(row.key)
           << "\", \"values\": [";
        for (std::size_t v = 0; v < row.values.size(); ++v) {
            os << (v ? ", " : "");
            if (row.present[v])
                jsonNumber(os, row.values[v]);
            else
                os << "null";
        }
        os << "], \"delta_pct\": ";
        if (row.comparable)
            jsonNumber(os, row.deltaPct);
        else
            os << "null";
        os << ", \"higher_better\": "
           << (row.higherBetter ? "true" : "false") << ", \"gated\": "
           << (row.gated ? "true" : "false") << ", \"status\": \""
           << trendStatusName(row.status) << "\"}"
           << (i + 1 < r.rows.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace mipsx::explore
