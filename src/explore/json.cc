#include "explore/json.hh"

#include <cctype>
#include <cstdlib>

#include "common/sim_error.hh"

namespace mipsx::explore
{

bool
Json::boolean() const
{
    if (kind_ != Kind::Bool)
        fatal("json: value is not a boolean");
    return bool_;
}

double
Json::number() const
{
    if (kind_ != Kind::Number)
        fatal("json: value is not a number");
    return num_;
}

const std::string &
Json::str() const
{
    if (kind_ != Kind::String)
        fatal("json: value is not a string");
    return text_;
}

const std::vector<Json> &
Json::array() const
{
    if (kind_ != Kind::Array)
        fatal("json: value is not an array");
    return elems_;
}

const std::vector<std::pair<std::string, Json>> &
Json::object() const
{
    if (kind_ != Kind::Object)
        fatal("json: value is not an object");
    return members_;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : object())
        if (k == key)
            return &v;
    return nullptr;
}

std::string
Json::scalarString() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? "1" : "0";
      case Kind::Number: return text_;
      case Kind::String: return text_;
      default: fatal("json: value is not a scalar");
    }
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    /**
     * Report @p what with line:column context. Grid files are written
     * by hand and job requests arrive over a wire, so "line 3 column
     * 17" beats a byte offset; the offset is kept for single-line
     * documents fed from tests and pipes.
     */
    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal(strformat("json: %s at line %zu column %zu (offset %zu)",
                        what.c_str(), line, col, pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strformat("expected '%c'", c));
        ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    value()
    {
        const char c = peek();
        switch (c) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return stringValue();
          case 't':
          case 'f':
          case 'n': {
            Json v;
            if (literal("true")) {
                v.kind_ = Json::Kind::Bool;
                v.bool_ = true;
            } else if (literal("false")) {
                v.kind_ = Json::Kind::Bool;
                v.bool_ = false;
            } else if (literal("null")) {
                v.kind_ = Json::Kind::Null;
            } else {
                fail("unknown literal");
            }
            return v;
          }
          default: return numberValue();
        }
    }

    Json
    objectValue()
    {
        expect('{');
        Json v;
        v.kind_ = Json::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const Json key = stringValue();
            expect(':');
            for (const auto &[k, old] : v.members_)
                if (k == key.text_)
                    fail(strformat("duplicate key \"%s\"",
                                   key.text_.c_str()));
            v.members_.emplace_back(key.text_, value());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Json
    arrayValue()
    {
        expect('[');
        Json v;
        v.kind_ = Json::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.elems_.push_back(value());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    stringValue()
    {
        expect('"');
        Json v;
        v.kind_ = Json::Kind::String;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text_ += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char e = text_[pos_++];
            switch (e) {
              case '"': v.text_ += '"'; break;
              case '\\': v.text_ += '\\'; break;
              case '/': v.text_ += '/'; break;
              case 'n': v.text_ += '\n'; break;
              case 't': v.text_ += '\t'; break;
              case 'r': v.text_ += '\r'; break;
              case 'b': v.text_ += '\b'; break;
              case 'f': v.text_ += '\f'; break;
              case 'u': v.text_ += unicodeEscape(); break;
              default:
                // Anything else is a hard error, never a silent
                // pass-through: the serve job API feeds attacker-ish
                // input (arbitrary program text) through this parser,
                // and mangling an escape would corrupt the program
                // rather than reject the request.
                fail(strformat("unsupported escape '\\%c'", e));
            }
        }
        fail("unterminated string");
    }

    /** The four hex digits of a \uXXXX escape (pos_ is past the 'u'). */
    unsigned
    hexQuad()
    {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("truncated \\u escape");
            const char c = text_[pos_];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                fail(strformat("bad hex digit '%c' in \\u escape", c));
            cp = cp * 16 + digit;
            ++pos_;
        }
        return cp;
    }

    /**
     * Decode one \uXXXX escape (pos_ is past the 'u'), combining a
     * surrogate pair into its supplementary code point, and return the
     * UTF-8 encoding. Lone or out-of-order surrogates are parse
     * errors — there is no sensible byte sequence to substitute.
     */
    std::string
    unicodeEscape()
    {
        unsigned cp = hexQuad();
        if (cp >= 0xDC00 && cp <= 0xDFFF)
            fail("unpaired low surrogate in \\u escape");
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.compare(pos_, 2, "\\u") != 0)
                fail("unpaired high surrogate in \\u escape");
            pos_ += 2;
            const unsigned lo = hexQuad();
            if (lo < 0xDC00 || lo > 0xDFFF)
                fail("invalid low surrogate in \\u escape");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        }
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    Json
    numberValue()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eatDigits();
        }
        if (!digits)
            fail("invalid number");
        Json v;
        v.kind_ = Json::Kind::Number;
        v.text_ = text_.substr(start, pos_ - start);
        v.num_ = std::strtod(v.text_.c_str(), nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
Json::parse(const std::string &text)
{
    JsonParser p(text);
    return p.parse();
}

} // namespace mipsx::explore
