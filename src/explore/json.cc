#include "explore/json.hh"

#include <cctype>
#include <cstdlib>

#include "common/sim_error.hh"

namespace mipsx::explore
{

bool
Json::boolean() const
{
    if (kind_ != Kind::Bool)
        fatal("json: value is not a boolean");
    return bool_;
}

double
Json::number() const
{
    if (kind_ != Kind::Number)
        fatal("json: value is not a number");
    return num_;
}

const std::string &
Json::str() const
{
    if (kind_ != Kind::String)
        fatal("json: value is not a string");
    return text_;
}

const std::vector<Json> &
Json::array() const
{
    if (kind_ != Kind::Array)
        fatal("json: value is not an array");
    return elems_;
}

const std::vector<std::pair<std::string, Json>> &
Json::object() const
{
    if (kind_ != Kind::Object)
        fatal("json: value is not an object");
    return members_;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : object())
        if (k == key)
            return &v;
    return nullptr;
}

std::string
Json::scalarString() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? "1" : "0";
      case Kind::Number: return text_;
      case Kind::String: return text_;
      default: fatal("json: value is not a scalar");
    }
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal(strformat("json: %s at offset %zu", what.c_str(), pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strformat("expected '%c'", c));
        ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    value()
    {
        const char c = peek();
        switch (c) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return stringValue();
          case 't':
          case 'f':
          case 'n': {
            Json v;
            if (literal("true")) {
                v.kind_ = Json::Kind::Bool;
                v.bool_ = true;
            } else if (literal("false")) {
                v.kind_ = Json::Kind::Bool;
                v.bool_ = false;
            } else if (literal("null")) {
                v.kind_ = Json::Kind::Null;
            } else {
                fail("unknown literal");
            }
            return v;
          }
          default: return numberValue();
        }
    }

    Json
    objectValue()
    {
        expect('{');
        Json v;
        v.kind_ = Json::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const Json key = stringValue();
            expect(':');
            for (const auto &[k, old] : v.members_)
                if (k == key.text_)
                    fail(strformat("duplicate key \"%s\"",
                                   key.text_.c_str()));
            v.members_.emplace_back(key.text_, value());
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Json
    arrayValue()
    {
        expect('[');
        Json v;
        v.kind_ = Json::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.elems_.push_back(value());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    stringValue()
    {
        expect('"');
        Json v;
        v.kind_ = Json::Kind::String;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text_ += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char e = text_[pos_++];
            switch (e) {
              case '"': v.text_ += '"'; break;
              case '\\': v.text_ += '\\'; break;
              case '/': v.text_ += '/'; break;
              case 'n': v.text_ += '\n'; break;
              case 't': v.text_ += '\t'; break;
              case 'r': v.text_ += '\r'; break;
              case 'b': v.text_ += '\b'; break;
              case 'f': v.text_ += '\f'; break;
              default:
                // \uXXXX and friends are not needed for grid specs.
                fail(strformat("unsupported escape '\\%c'", e));
            }
        }
        fail("unterminated string");
    }

    Json
    numberValue()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eatDigits();
        }
        if (!digits)
            fail("invalid number");
        Json v;
        v.kind_ = Json::Kind::Number;
        v.text_ = text_.substr(start, pos_ - start);
        v.num_ = std::strtod(v.text_.c_str(), nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
Json::parse(const std::string &text)
{
    JsonParser p(text);
    return p.parse();
}

} // namespace mipsx::explore
