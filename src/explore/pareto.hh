/**
 * @file
 * Pareto-frontier extraction and knee detection over sweep results.
 *
 * The paper's method is reading tradeoffs off design-point sweeps; once
 * a sweep reports more than one cost (cycles *and* energy), the
 * interesting points are the non-dominated ones and, of those, the knee
 * — the point where trading more of one metric stops buying much of the
 * other. Everything here is a pure function of the sweep's metric
 * values: no randomness, no host state, so annotated outputs stay
 * bit-identical across worker counts, shards and reruns.
 */

#ifndef MIPSX_EXPLORE_PARETO_HH
#define MIPSX_EXPLORE_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mipsx::explore
{

/** One optimisation objective: a metric name and a direction. */
struct MetricObjective
{
    std::string metric;
    bool minimize = true;
};

/**
 * Parse "metric", "metric:min" or "metric:max" (the --pareto CLI
 * forms); throws SimError on an empty name or unknown suffix.
 */
MetricObjective parseObjective(const std::string &spec);

/** One candidate design point: its index and objective values. */
struct ParetoPoint
{
    std::size_t index = 0; ///< caller's point index (sweep order)
    double x = 0;
    double y = 0;
};

/**
 * The non-dominated subset of @p pts under (minX, minY) directions.
 *
 * Domination is the standard weak form: a point is dominated when
 * another point is at least as good in both objectives and strictly
 * better in one. Exact ties (equal x *and* y) dominate nothing and
 * are all kept — distinct configurations with identical costs are
 * equally interesting to a designer.
 *
 * The frontier is returned sorted by ascending x, ties by ascending y,
 * then by ascending index — a deterministic order regardless of the
 * input's.
 */
std::vector<ParetoPoint> paretoFrontier(std::vector<ParetoPoint> pts,
                                        bool minX, bool minY);

/**
 * The knee of a frontier (as returned by paretoFrontier): the point
 * with the greatest perpendicular distance to the chord between the
 * frontier's endpoints, in endpoint-normalised coordinates. Ties (and
 * frontiers of fewer than three points) resolve to the lowest position;
 * returns the *position within @p frontier*, not a point index.
 * Throws SimError when the frontier is empty.
 */
std::size_t kneePosition(const std::vector<ParetoPoint> &frontier);

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_PARETO_HH
