#include "explore/grid.hh"

#include <cmath>
#include <cstdlib>

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::explore
{

namespace
{

[[noreturn]] void
badValue(const std::string &param, const std::string &value,
         const char *want)
{
    fatal(strformat("grid: parameter '%s': bad value '%s' (want %s)",
                    param.c_str(), value.c_str(), want));
}

unsigned
parseU(const std::string &param, const std::string &value)
{
    if (value.empty())
        badValue(param, value, "an unsigned integer");
    char *end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (*end != '\0' || value[0] == '-' || v > 0xfffffffful)
        badValue(param, value, "an unsigned integer");
    return static_cast<unsigned>(v);
}

unsigned
parsePow2(const std::string &param, const std::string &value)
{
    const unsigned v = parseU(param, value);
    if (!isPowerOf2(v))
        badValue(param, value, "a non-zero power of two");
    return v;
}

double
parseCost(const std::string &param, const std::string &value)
{
    if (value.empty())
        badValue(param, value, "a non-negative number");
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    // Reject trailing junk, NaN/inf spellings and negative costs: the
    // energy model prices events, and a negative or non-finite price
    // would silently corrupt every derived energy metric.
    if (*end != '\0' || !std::isfinite(v) || v < 0)
        badValue(param, value, "a non-negative number");
    return v;
}

bool
parseBool(const std::string &param, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "off" || value == "no")
        return false;
    badValue(param, value, "a boolean (0/1/true/false/on/off)");
}

using Applier = void (*)(workload::SuiteRunOptions &, const std::string &,
                         const std::string &);

struct Param
{
    ParamInfo info;
    Applier apply;
};

/*
 * The registry. Geometry parameters re-check the ICache/ECache
 * constructor rules so a bad grid value fails at applyParam() time
 * with the parameter named, instead of surfacing later as a
 * per-workload SimError swallowed into the suite failure list.
 */
const Param paramTable[] = {
    {{"icache.sets", "power of two",
      "instruction-cache rows (paper: 4)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) { o.machine.cpu.icache.sets = parsePow2(p, v); }},
    {{"icache.ways", "integer >= 1",
      "instruction-cache associativity (paper: 8)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned ways = parseU(p, v);
         if (ways == 0)
             badValue(p, v, "at least 1 way");
         o.machine.cpu.icache.ways = ways;
     }},
    {{"icache.blockWords", "power of two",
      "words per instruction-cache block (paper: 16)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.icache.blockWords = parsePow2(p, v);
     }},
    {{"icache.geometry", "SETSxWAYSxBLOCK, e.g. 4x8x16",
      "sets, ways and block words in one compound value, for sweeps "
      "that hold capacity constant while the shape varies"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const auto first = v.find('x');
         const auto second =
             first == std::string::npos ? first : v.find('x', first + 1);
         if (first == std::string::npos || second == std::string::npos ||
             v.find('x', second + 1) != std::string::npos)
             badValue(p, v, "SETSxWAYSxBLOCK");
         auto &ic = o.machine.cpu.icache;
         ic.sets = parsePow2(p, v.substr(0, first));
         const unsigned ways =
             parseU(p, v.substr(first + 1, second - first - 1));
         if (ways == 0)
             badValue(p, v, "at least 1 way");
         ic.ways = ways;
         ic.blockWords = parsePow2(p, v.substr(second + 1));
     }},
    {{"icache.missPenalty", "integer",
      "stall cycles per instruction-cache miss (paper: 2; 3 models the "
      "far-tag-store alternative)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.icache.missPenalty = parseU(p, v);
     }},
    {{"icache.fetchWords", "1 or 2",
      "words fetched back per miss (2 = the double fetch)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned w = parseU(p, v);
         if (w < 1 || w > 2)
             badValue(p, v, "1 or 2");
         o.machine.cpu.icache.fetchWords = w;
     }},
    {{"icache.allocCrossBlock", "boolean",
      "allocate the double-fetched word's block when it crosses a "
      "block boundary"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.icache.allocCrossBlock = parseBool(p, v);
     }},
    {{"icache.repl", "lru | fifo | random",
      "instruction-cache replacement policy"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         auto &r = o.machine.cpu.icache.repl;
         if (v == "lru")
             r = memory::IReplPolicy::Lru;
         else if (v == "fifo")
             r = memory::IReplPolicy::Fifo;
         else if (v == "random")
             r = memory::IReplPolicy::Random;
         else
             badValue(p, v, "lru, fifo or random");
     }},
    {{"icache.enabled", "boolean",
      "run with the instruction cache on or off (the instruction-"
      "register test feature)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.icache.enabled = parseBool(p, v);
     }},
    {{"ecache.sizeWords", "power of two",
      "external-cache capacity in words (paper: 64K)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.sizeWords = parsePow2(p, v);
     }},
    {{"ecache.lineWords", "power of two", "external-cache line words"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.lineWords = parsePow2(p, v);
     }},
    {{"ecache.ways", "integer >= 1", "external-cache associativity"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned ways = parseU(p, v);
         if (ways == 0)
             badValue(p, v, "at least 1 way");
         o.machine.cpu.ecache.ways = ways;
     }},
    {{"ecache.missPenalty", "integer",
      "main-memory latency: cycles the pipeline re-executes MEM while "
      "a miss is serviced"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.missPenalty = parseU(p, v);
     }},
    {{"ecache.writebackPenalty", "integer",
      "extra cycles to copy a dirty victim back to memory"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.writebackPenalty = parseU(p, v);
     }},
    {{"ecache.writeThrough", "boolean",
      "write-through with a buffered store path instead of copy-back"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.writeThrough = parseBool(p, v);
     }},
    {{"ecache.enabled", "boolean",
      "every access misses when off (no-Ecache ablation)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.ecache.enabled = parseBool(p, v);
     }},
    {{"branch.scheme", "no-squash | always-squash | squash-optional",
      "Table 1's branch scheme, applied by the reorganizer"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         auto &s = o.reorg.scheme;
         if (v == "no-squash")
             s = reorg::BranchScheme::NoSquash;
         else if (v == "always-squash")
             s = reorg::BranchScheme::AlwaysSquash;
         else if (v == "squash-optional")
             s = reorg::BranchScheme::SquashOptional;
         else
             badValue(p, v, "no-squash, always-squash or squash-optional");
     }},
    {{"branch.slots", "1 or 2",
      "branch delay slots; sets both the reorganizer's slot count and "
      "the pipeline's branch delay (1 models the quick compare)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned slots = parseU(p, v);
         if (slots < 1 || slots > 2)
             badValue(p, v, "1 or 2");
         o.reorg.slots = slots;
         o.machine.cpu.branchDelay = slots;
     }},
    {{"branch.profile", "boolean",
      "steer squash filling with a per-branch ISS profile (the paper's "
      "\"possibly with profiling\")"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) { o.useProfiles = parseBool(p, v); }},
    {{"branch.prediction", "backward-taken | always-taken",
      "static prediction heuristic when not profiling"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         if (v == "backward-taken")
             o.reorg.prediction = reorg::Prediction::BackwardTaken;
         else if (v == "always-taken")
             o.reorg.prediction = reorg::Prediction::AlwaysTaken;
         else
             badValue(p, v, "backward-taken or always-taken");
     }},
    {{"reorg.paperFaithful", "boolean",
      "restrict squashing to the directions the real chip encodes "
      "(Table 1's always-squash row needs this off)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.reorg.paperFaithful = parseBool(p, v);
     }},
    {{"reorg.fillLoadDelay", "boolean",
      "schedule the one-cycle load delay (off leaves explicit no-ops)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.reorg.fillLoadDelay = parseBool(p, v);
     }},
    {{"reorg.scheduler", "heuristic | list | optimal",
      "body-scheduling backend: the original pull/push heuristic, DAG "
      "list scheduling, or the branch-and-bound oracle for small blocks"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         auto &s = o.reorg.scheduler;
         if (v == "heuristic")
             s = reorg::SchedulerKind::Heuristic;
         else if (v == "list")
             s = reorg::SchedulerKind::List;
         else if (v == "optimal")
             s = reorg::SchedulerKind::Optimal;
         else
             badValue(p, v, "heuristic, list or optimal");
     }},
    {{"reorg.priority", "critical-path | slack | register-pressure",
      "ready-set priority function for the list scheduler"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         auto &pr = o.reorg.priority;
         if (v == "critical-path")
             pr = reorg::SchedPriority::CriticalPath;
         else if (v == "slack")
             pr = reorg::SchedPriority::Slack;
         else if (v == "register-pressure")
             pr = reorg::SchedPriority::RegPressure;
         else
             badValue(p, v, "critical-path, slack or register-pressure");
     }},
    {{"reorg.optimalMaxNodes", "integer",
      "largest block the optimal backend searches exhaustively before "
      "falling back to list scheduling"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.reorg.optimalMaxNodes = parseU(p, v);
     }},
    {{"energy.icacheRead", "non-negative number",
      "energy cost of one instruction-cache access (model unit)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.icacheRead = parseCost(p, v);
     }},
    {{"energy.icacheReadPerKword", "non-negative number",
      "capacity scaling of the icache read cost: extra energy per "
      "access per 1024 words of array"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.icacheReadPerKword = parseCost(p, v);
     }},
    {{"energy.icacheMiss", "non-negative number",
      "per-miss overhead energy in the instruction cache"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.icacheMiss = parseCost(p, v);
     }},
    {{"energy.icacheRefillWord", "non-negative number",
      "energy per word written into the array on a refill (the double "
      "fetch writes two)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.icacheRefillWord = parseCost(p, v);
     }},
    {{"energy.ecacheRead", "non-negative number",
      "energy cost of one external-cache access"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.ecacheRead = parseCost(p, v);
     }},
    {{"energy.ecacheReadPerKword", "non-negative number",
      "capacity scaling of the ecache read cost: extra energy per "
      "access per 1024 words of array"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.ecacheReadPerKword = parseCost(p, v);
     }},
    {{"energy.ecacheMiss", "non-negative number",
      "per-miss overhead energy in the external cache"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.ecacheMiss = parseCost(p, v);
     }},
    {{"energy.memCycle", "non-negative number",
      "energy per cycle of main-memory bus traffic (refills, "
      "write-throughs, copy-backs)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.memCycle = parseCost(p, v);
     }},
    {{"energy.cycleStatic", "non-negative number",
      "static (leakage/clock) energy per machine cycle"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.energy.cycleStatic = parseCost(p, v);
     }},
    {{"coproc.nonCachedFetch", "boolean",
      "the rejected coprocessor interface: coprocessor instructions "
      "always miss the instruction cache"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.cpu.coprocNonCachedFetch = parseBool(p, v);
     }},
    {{"predecode", "boolean",
      "decode each program word once at load time (perf baseline knob)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) { o.predecode = parseBool(p, v); }},
    {{"machine.fastForward", "instruction count (0 = off)",
      "ISS-execute the first N instructions of every workload, then go "
      "cycle-accurate (warm-up skipping; caches start cold at handoff)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.fastForward.instructions = parseU(p, v);
     }},
    {{"machine.intervals", "integer >= 1",
      "split every run into N checkpointed intervals simulated "
      "independently and stitched deterministically (1 = monolithic)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned n = parseU(p, v);
         if (n == 0)
             badValue(p, v, "at least 1 interval");
         o.machine.intervals = n;
     }},
    {{"machine.warmup", "instruction count (0 = off)",
      "warm-up prefix excluded from the stats: the gate of a plain "
      "run, or each interval's cache re-priming prefix"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.warmupInstructions = parseU(p, v);
     }},
    {{"machine.sample", "instruction count (0 = exact)",
      "cycle-accurate window per interval, extrapolated to the "
      "interval's length (sampled simulation; needs intervals > 1)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.machine.sampleWindow = parseU(p, v);
     }},
    {{"mp.machines", "integer >= 1",
      "run every workload on an N-CPU shared-memory multiprocessor in "
      "lockstep (1 = the uniprocessor Machine)"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         const unsigned n = parseU(p, v);
         if (n == 0 || n > 64)
             badValue(p, v, "1 to 64 CPUs");
         o.mpMachines = n;
     }},
    {{"mp.stackSpacing", "power of two",
      "words between per-CPU stacks in the multiprocessor convention"},
     [](workload::SuiteRunOptions &o, const std::string &p,
        const std::string &v) {
         o.mpStackSpacing = parsePow2(p, v);
     }},
};

const Param *
findParam(const std::string &name)
{
    for (const auto &p : paramTable)
        if (name == p.info.name)
            return &p;
    return nullptr;
}

} // namespace

std::size_t
GridSpec::points() const
{
    std::size_t n = 1;
    for (const auto &a : axes)
        n *= a.values.size();
    return n;
}

void
GridSpec::validate() const
{
    for (std::size_t i = 0; i < axes.size(); ++i) {
        const auto &a = axes[i];
        if (!isKnownParam(a.param))
            fatal(strformat("grid: unknown parameter '%s' (see "
                            "--list-params)",
                            a.param.c_str()));
        if (a.values.empty())
            fatal(strformat("grid: axis '%s' has no values (zero-depth "
                            "grid)",
                            a.param.c_str()));
        for (std::size_t j = 0; j < i; ++j)
            if (axes[j].param == a.param)
                fatal(strformat("grid: duplicate axis '%s'",
                                a.param.c_str()));
    }
}

const std::string *
GridPoint::valueOf(const std::string &param) const
{
    for (const auto &[p, v] : bindings)
        if (p == param)
            return &v;
    return nullptr;
}

std::vector<GridPoint>
expandGrid(const GridSpec &grid)
{
    grid.validate();
    std::vector<GridPoint> out;
    out.reserve(grid.points());
    std::vector<std::size_t> idx(grid.axes.size(), 0);
    for (;;) {
        GridPoint pt;
        pt.bindings.reserve(grid.axes.size());
        for (std::size_t a = 0; a < grid.axes.size(); ++a)
            pt.bindings.emplace_back(grid.axes[a].param,
                                     grid.axes[a].values[idx[a]]);
        out.push_back(std::move(pt));
        // Odometer increment, last axis fastest.
        std::size_t a = grid.axes.size();
        while (a > 0) {
            --a;
            if (++idx[a] < grid.axes[a].values.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return out;
        }
        if (grid.axes.empty())
            return out;
    }
}

const std::vector<ParamInfo> &
knownParams()
{
    static const std::vector<ParamInfo> infos = [] {
        std::vector<ParamInfo> v;
        for (const auto &p : paramTable)
            v.push_back(p.info);
        return v;
    }();
    return infos;
}

bool
isKnownParam(const std::string &param)
{
    return findParam(param) != nullptr;
}

void
applyParam(workload::SuiteRunOptions &opts, const std::string &param,
           const std::string &value)
{
    const Param *p = findParam(param);
    if (!p)
        fatal(strformat("grid: unknown parameter '%s' (see --list-params)",
                        param.c_str()));
    p->apply(opts, param, value);
}

void
applyPoint(workload::SuiteRunOptions &opts, const GridPoint &point)
{
    for (const auto &[param, value] : point.bindings)
        applyParam(opts, param, value);
}

} // namespace mipsx::explore
