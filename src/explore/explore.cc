#include "explore/explore.hh"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/sim_error.hh"
#include "explore/json.hh"

namespace mipsx::explore
{

unsigned
SweepResult::totalFailures() const
{
    unsigned n = 0;
    for (const auto &p : points)
        n += p.stats.failures;
    return n;
}

const SweepPointResult *
SweepResult::find(
    const std::vector<std::pair<std::string, std::string>> &bindings) const
{
    for (const auto &p : points) {
        bool all = true;
        for (const auto &[param, value] : bindings) {
            const std::string *bound = p.point.valueOf(param);
            if (!bound || *bound != value) {
                all = false;
                break;
            }
        }
        if (all)
            return &p;
    }
    return nullptr;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "full", "big-code", "pascal", "lisp", "fp"};
    return names;
}

std::vector<workload::Workload>
suiteByName(const std::string &name)
{
    if (name == "full")
        return workload::fullSuite();
    if (name == "big-code")
        return workload::bigCodeWorkloads();
    if (name == "pascal")
        return workload::pascalWorkloads();
    if (name == "lisp")
        return workload::lispWorkloads();
    if (name == "fp")
        return workload::fpWorkloads();
    fatal(strformat("explore: unknown suite '%s' (want full, big-code, "
                    "pascal, lisp or fp)",
                    name.c_str()));
}

SweepResult
runSweep(const SweepConfig &config,
         const std::vector<workload::Workload> &suite,
         const PointCallback &progress)
{
    config.grid.validate();
    const auto points = expandGrid(config.grid);

    // Validate every point's bindings (and the base bindings) before
    // simulating anything: a typo in value 7 of axis 3 must not cost a
    // partial sweep.
    for (const auto &pt : points) {
        workload::SuiteRunOptions probe = config.runner;
        for (const auto &[param, value] : config.base)
            applyParam(probe, param, value);
        applyPoint(probe, pt);
    }

    SweepResult res;
    res.grid = config.grid;
    res.suite = config.suite;
    res.base = config.base;
    res.workloads = static_cast<unsigned>(suite.size());
    res.points.reserve(points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        workload::SuiteRunOptions opts = config.runner;
        for (const auto &[param, value] : config.base)
            applyParam(opts, param, value);
        applyPoint(opts, points[i]);

        auto sr = workload::runSuite(suite, opts);
        SweepPointResult pr;
        pr.point = points[i];
        pr.stats = sr.stats;
        pr.failures = std::move(sr.failures);
        workload::collectMetrics(pr.stats, pr.metrics, "suite");
        if (progress)
            progress(i, points.size(), pr);
        res.points.push_back(std::move(pr));
    }
    return res;
}

SweepResult
runSweep(const SweepConfig &config, const PointCallback &progress)
{
    return runSweep(config, suiteByName(config.suite), progress);
}

namespace
{

/** Quote a CSV cell only when it contains a delimiter or quote. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

void
writeCsv(std::ostream &os, const SweepResult &r)
{
    os << "point";
    for (const auto &a : r.grid.axes)
        os << ',' << csvCell(a.param);
    os << ",metric,value\n";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const auto &p = r.points[i];
        std::string prefix = std::to_string(i);
        for (const auto &[param, value] : p.point.bindings) {
            prefix += ',';
            prefix += csvCell(value);
        }
        for (const auto &[name, value] : p.metrics.formatted())
            os << prefix << ',' << csvCell(name) << ',' << value << '\n';
    }
}

void
writeJson(std::ostream &os, const SweepResult &r)
{
    os << "{\n";
    os << "  \"schema\": \"mipsx-explore-v1\",\n";
    os << "  \"suite\": \"" << jsonEscape(r.suite) << "\",\n";
    os << "  \"workloads\": " << r.workloads << ",\n";
    os << "  \"base\": {";
    for (std::size_t i = 0; i < r.base.size(); ++i) {
        os << (i ? ", " : "") << '"' << jsonEscape(r.base[i].first)
           << "\": \"" << jsonEscape(r.base[i].second) << '"';
    }
    os << "},\n";
    os << "  \"grid\": {\"axes\": [";
    for (std::size_t a = 0; a < r.grid.axes.size(); ++a) {
        const auto &axis = r.grid.axes[a];
        os << (a ? ", " : "") << "{\"param\": \""
           << jsonEscape(axis.param) << "\", \"values\": [";
        for (std::size_t v = 0; v < axis.values.size(); ++v)
            os << (v ? ", " : "") << '"' << jsonEscape(axis.values[v])
               << '"';
        os << "]}";
    }
    os << "]},\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const auto &p = r.points[i];
        os << "    {\"bindings\": {";
        for (std::size_t b = 0; b < p.point.bindings.size(); ++b) {
            const auto &[param, value] = p.point.bindings[b];
            os << (b ? ", " : "") << '"' << jsonEscape(param)
               << "\": \"" << jsonEscape(value) << '"';
        }
        os << "},\n     \"failures\": [";
        for (std::size_t f = 0; f < p.failures.size(); ++f)
            os << (f ? ", " : "") << '"'
               << jsonEscape(p.failures[f].name) << '"';
        os << "],\n     \"metrics\": {";
        const auto rows = p.metrics.formatted();
        for (std::size_t m = 0; m < rows.size(); ++m) {
            os << (m ? ", " : "") << '"' << jsonEscape(rows[m].first)
               << "\": " << rows[m].second;
        }
        os << "}}" << (i + 1 < r.points.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

namespace
{

bool
writeFile(const std::string &path, const SweepResult &r,
          void (*writer)(std::ostream &, const SweepResult &))
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
        return false;
    }
    writer(f, r);
    return true;
}

} // namespace

bool
writeCsvFile(const std::string &path, const SweepResult &r)
{
    return writeFile(path, r, writeCsv);
}

bool
writeJsonFile(const std::string &path, const SweepResult &r)
{
    return writeFile(path, r, writeJson);
}

SweepConfig
sweepFromJson(const std::string &text)
{
    const Json doc = Json::parse(text);
    if (!doc.isObject())
        fatal("sweep spec: the document must be a JSON object");

    SweepConfig cfg;
    for (const auto &[key, value] : doc.object()) {
        if (key == "suite") {
            cfg.suite = value.str();
        } else if (key == "base") {
            for (const auto &[param, v] : value.object())
                cfg.base.emplace_back(param, v.scalarString());
        } else if (key == "axes") {
            for (const auto &[param, vals] : value.object()) {
                GridAxis axis;
                axis.param = param;
                if (vals.isArray()) {
                    for (const auto &v : vals.array())
                        axis.values.push_back(v.scalarString());
                } else {
                    // A bare scalar is a one-value axis.
                    axis.values.push_back(vals.scalarString());
                }
                cfg.grid.axes.push_back(std::move(axis));
            }
        } else {
            fatal(strformat("sweep spec: unknown key \"%s\" (want "
                            "suite, base or axes)",
                            key.c_str()));
        }
    }
    if (cfg.grid.axes.empty())
        fatal("sweep spec: no axes (zero-depth grid)");
    cfg.grid.validate();
    // Surface bad base bindings at parse time too.
    workload::SuiteRunOptions probe;
    for (const auto &[param, value] : cfg.base)
        applyParam(probe, param, value);
    suiteByName(cfg.suite);
    return cfg;
}

SweepConfig
sweepFromJsonFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(strformat("cannot open sweep spec '%s'", path.c_str()));
    std::stringstream ss;
    ss << f.rdbuf();
    return sweepFromJson(ss.str());
}

} // namespace mipsx::explore
