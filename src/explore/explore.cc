#include "explore/explore.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/sim_error.hh"
#include "explore/json.hh"

namespace mipsx::explore
{

unsigned
SweepResult::totalFailures() const
{
    unsigned n = 0;
    for (const auto &p : points)
        n += p.stats.failures;
    return n;
}

const SweepPointResult *
SweepResult::find(
    const std::vector<std::pair<std::string, std::string>> &bindings) const
{
    for (const auto &p : points) {
        bool all = true;
        for (const auto &[param, value] : bindings) {
            const std::string *bound = p.point.valueOf(param);
            if (!bound || *bound != value) {
                all = false;
                break;
            }
        }
        if (all)
            return &p;
    }
    return nullptr;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "full", "big-code", "pascal", "lisp", "fp", "scaled"};
    return names;
}

std::vector<workload::Workload>
suiteByName(const std::string &name)
{
    if (name == "full")
        return workload::fullSuite();
    if (name == "big-code")
        return workload::bigCodeWorkloads();
    if (name == "pascal")
        return workload::pascalWorkloads();
    if (name == "lisp")
        return workload::lispWorkloads();
    if (name == "fp")
        return workload::fpWorkloads();
    if (name == "scaled")
        return workload::scaledWorkloads();
    fatal(strformat("explore: unknown suite '%s' (want full, big-code, "
                    "pascal, lisp, fp or scaled)",
                    name.c_str()));
}

namespace
{

/**
 * Evaluate one point: base bindings, then the point's, then the suite,
 * then the metrics snapshot ("suite.*" counts/ratios plus the priced
 * "energy.*" breakdown — the cost table itself is sweepable, so it is
 * read *after* the bindings applied it).
 */
SweepPointResult
runPoint(const SweepConfig &config,
         const std::vector<workload::Workload> &suite,
         const GridPoint &point, std::size_t index, bool refined)
{
    workload::SuiteRunOptions opts = config.runner;
    for (const auto &[param, value] : config.base)
        applyParam(opts, param, value);
    applyPoint(opts, point);

    auto sr = workload::runSuite(suite, opts);
    SweepPointResult pr;
    pr.index = index;
    pr.refined = refined;
    pr.point = point;
    pr.stats = sr.stats;
    pr.failures = std::move(sr.failures);
    workload::collectMetrics(pr.stats, pr.metrics, "suite");
    workload::collectEnergy(pr.stats, opts.machine.cpu.energy,
                            pr.metrics, "energy");
    return pr;
}

} // namespace

SweepResult
runSweep(const SweepConfig &config,
         const std::vector<workload::Workload> &suite,
         const PointCallback &progress)
{
    config.grid.validate();
    if (config.shardCount < 1)
        fatal("explore: shard count must be at least 1");
    if (config.shardIndex >= config.shardCount)
        fatal(strformat("explore: shard index %u out of range for %u "
                        "shard(s)",
                        config.shardIndex, config.shardCount));
    const auto points = expandGrid(config.grid);

    // Validate every point's bindings (and the base bindings) before
    // running anything — including the points other shards own, so a
    // typo fails every shard of a split sweep identically and up front.
    for (const auto &pt : points) {
        workload::SuiteRunOptions probe = config.runner;
        for (const auto &[param, value] : config.base)
            applyParam(probe, param, value);
        applyPoint(probe, pt);
    }

    SweepResult res;
    res.grid = config.grid;
    res.suite = config.suite;
    res.base = config.base;
    res.workloads = static_cast<unsigned>(suite.size());
    res.shardIndex = config.shardIndex;
    res.shardCount = config.shardCount;

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i % config.shardCount != config.shardIndex)
            continue;
        auto pr = runPoint(config, suite, points[i], i, false);
        if (progress)
            progress(i, points.size(), pr);
        res.points.push_back(std::move(pr));
    }
    return res;
}

SweepResult
runSweep(const SweepConfig &config, const PointCallback &progress)
{
    return runSweep(config, suiteByName(config.suite), progress);
}

void
annotatePareto(SweepResult &r, const MetricObjective &x,
               const MetricObjective &y)
{
    if (r.points.empty())
        fatal("pareto: the sweep has no points");
    std::vector<ParetoPoint> pts;
    for (const auto &p : r.points) {
        // A point with failed workloads aggregates a different suite
        // than its neighbours; comparing it on the frontier would be
        // apples to oranges.
        if (p.stats.failures || !p.failures.empty())
            continue;
        for (const auto *o : {&x, &y}) {
            if (!p.metrics.has(o->metric))
                fatal(strformat("pareto: metric '%s' missing from sweep "
                                "point %zu",
                                o->metric.c_str(), p.index));
        }
        pts.push_back(
            {p.index, p.metrics.get(x.metric), p.metrics.get(y.metric)});
    }
    if (pts.empty())
        fatal("pareto: every sweep point failed");
    const auto front = paretoFrontier(std::move(pts), x.minimize,
                                      y.minimize);
    r.pareto.present = true;
    r.pareto.x = x;
    r.pareto.y = y;
    r.pareto.frontier.clear();
    for (const auto &f : front)
        r.pareto.frontier.push_back(f.index);
    r.pareto.knee = front[kneePosition(front)].index;
}

namespace
{

/** Parse a full base-10 unsigned integer; false on anything else. */
bool
parseUint(const std::string &s, unsigned long long &out)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && *end == '\0';
}

/** Canonical identity of a point's bindings (the evaluated-set key). */
std::string
bindingKey(const GridPoint &pt)
{
    std::string k;
    for (const auto &[param, value] : pt.bindings) {
        k += param;
        k += '=';
        k += value;
        k += ';';
    }
    return k;
}

/** Largest power of two at or below @p x (x must be nonzero). */
unsigned long long
floorPow2(unsigned long long x)
{
    while (x & (x - 1))
        x &= x - 1;
    return x;
}

} // namespace

SweepResult
runAdaptiveSweep(const SweepConfig &config,
                 const std::vector<workload::Workload> &suite,
                 const AdaptiveOptions &adaptive,
                 const PointCallback &progress)
{
    if (config.shardCount > 1)
        fatal("explore: adaptive refinement cannot be sharded (run the "
              "coarse sweep sharded, merge, then refine — or refine "
              "unsharded)");

    SweepResult res = runSweep(config, suite, progress);

    std::set<std::string> seen;
    for (const auto &p : res.points)
        seen.insert(bindingKey(p.point));

    const auto tryApply = [&](const GridPoint &pt) {
        try {
            workload::SuiteRunOptions probe = config.runner;
            for (const auto &[param, value] : config.base)
                applyParam(probe, param, value);
            applyPoint(probe, pt);
            return true;
        } catch (const SimError &) {
            return false;
        }
    };

    while (res.points.size() < adaptive.pointBudget) {
        annotatePareto(res, adaptive.x, adaptive.y);
        const SweepPointResult *knee = nullptr;
        for (const auto &p : res.points) {
            if (p.index == res.pareto.knee) {
                knee = &p;
                break;
            }
        }

        // Propose midpoints between the knee's value and its nearest
        // evaluated neighbours, one bracket per numeric axis. Axis
        // order and the lower-bracket-first rule fix the proposal
        // order, so the search is reproducible.
        std::vector<GridPoint> cands;
        for (const auto &axis : res.grid.axes) {
            const std::string *bound = knee->point.valueOf(axis.param);
            unsigned long long v = 0;
            if (!bound || !parseUint(*bound, v))
                continue; // non-numeric axis: nothing to bisect

            std::set<unsigned long long> values;
            for (const auto &p : res.points) {
                const std::string *s = p.point.valueOf(axis.param);
                unsigned long long u = 0;
                if (s && parseUint(*s, u))
                    values.insert(u);
            }

            const auto propose = [&](unsigned long long lo,
                                     unsigned long long hi) {
                const unsigned long long mid = lo + (hi - lo) / 2;
                // The raw midpoint first, then its power-of-two
                // neighbours for the geometry parameters that reject
                // everything else.
                for (unsigned long long cand :
                     {mid, mid ? floorPow2(mid) : 0ull,
                      mid ? floorPow2(mid) << 1 : 0ull}) {
                    if (cand <= lo || cand >= hi)
                        continue;
                    GridPoint pt = knee->point;
                    for (auto &[param, value] : pt.bindings)
                        if (param == axis.param)
                            value = std::to_string(cand);
                    if (seen.count(bindingKey(pt)) || !tryApply(pt))
                        continue;
                    seen.insert(bindingKey(pt));
                    cands.push_back(std::move(pt));
                    return;
                }
            };

            const auto it = values.find(v);
            if (it != values.end()) {
                if (it != values.begin())
                    propose(*std::prev(it), v);
                if (std::next(it) != values.end())
                    propose(v, *std::next(it));
            }
        }
        if (cands.empty())
            break;

        for (const auto &pt : cands) {
            if (res.points.size() >= adaptive.pointBudget)
                break;
            auto pr = runPoint(config, suite, pt, res.points.size(),
                               true);
            if (progress)
                progress(pr.index, adaptive.pointBudget, pr);
            res.points.push_back(std::move(pr));
        }
    }

    annotatePareto(res, adaptive.x, adaptive.y);
    return res;
}

SweepResult
runAdaptiveSweep(const SweepConfig &config, const AdaptiveOptions &adaptive,
                 const PointCallback &progress)
{
    return runAdaptiveSweep(config, suiteByName(config.suite), adaptive,
                            progress);
}

namespace
{

/** Quote a CSV cell only when it contains a delimiter or quote. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

void
writeCsv(std::ostream &os, const SweepResult &r)
{
    os << "point";
    for (const auto &a : r.grid.axes)
        os << ',' << csvCell(a.param);
    os << ",metric,value\n";
    for (const auto &p : r.points) {
        std::string prefix = std::to_string(p.index);
        for (const auto &[param, value] : p.point.bindings) {
            prefix += ',';
            prefix += csvCell(value);
        }
        for (const auto &[name, value] : p.metrics.formatted())
            os << prefix << ',' << csvCell(name) << ',' << value << '\n';
    }
}

void
writeJson(std::ostream &os, const SweepResult &r)
{
    os << "{\n";
    os << "  \"schema\": \"mipsx-explore-v2\",\n";
    os << "  \"suite\": \"" << jsonEscape(r.suite) << "\",\n";
    os << "  \"workloads\": " << r.workloads << ",\n";
    os << "  \"base\": {";
    for (std::size_t i = 0; i < r.base.size(); ++i) {
        os << (i ? ", " : "") << '"' << jsonEscape(r.base[i].first)
           << "\": \"" << jsonEscape(r.base[i].second) << '"';
    }
    os << "},\n";
    os << "  \"grid\": {\"axes\": [";
    for (std::size_t a = 0; a < r.grid.axes.size(); ++a) {
        const auto &axis = r.grid.axes[a];
        os << (a ? ", " : "") << "{\"param\": \""
           << jsonEscape(axis.param) << "\", \"values\": [";
        for (std::size_t v = 0; v < axis.values.size(); ++v)
            os << (v ? ", " : "") << '"' << jsonEscape(axis.values[v])
               << '"';
        os << "]}";
    }
    os << "]},\n";
    // The shard section appears only in a split run's output, so an
    // unsharded sweep and a merged one stay byte-identical.
    if (r.shardCount > 1) {
        os << "  \"shard\": {\"index\": " << r.shardIndex
           << ", \"count\": " << r.shardCount << "},\n";
    }
    if (r.pareto.present) {
        const auto obj = [](const MetricObjective &o) {
            return jsonEscape(o.metric) + (o.minimize ? ":min" : ":max");
        };
        os << "  \"pareto\": {\"x\": \"" << obj(r.pareto.x)
           << "\", \"y\": \"" << obj(r.pareto.y)
           << "\",\n             \"frontier\": [";
        for (std::size_t i = 0; i < r.pareto.frontier.size(); ++i)
            os << (i ? ", " : "") << r.pareto.frontier[i];
        os << "], \"knee\": " << r.pareto.knee << "},\n";
    }
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const auto &p = r.points[i];
        os << "    {\"point\": " << p.index << ", \"refined\": "
           << (p.refined ? "true" : "false") << ",\n     \"bindings\": {";
        for (std::size_t b = 0; b < p.point.bindings.size(); ++b) {
            const auto &[param, value] = p.point.bindings[b];
            os << (b ? ", " : "") << '"' << jsonEscape(param)
               << "\": \"" << jsonEscape(value) << '"';
        }
        os << "},\n     \"failures\": [";
        for (std::size_t f = 0; f < p.failures.size(); ++f)
            os << (f ? ", " : "") << '"'
               << jsonEscape(p.failures[f].name) << '"';
        os << "],\n     \"metrics\": {";
        const auto rows = p.metrics.formatted();
        for (std::size_t m = 0; m < rows.size(); ++m) {
            os << (m ? ", " : "") << '"' << jsonEscape(rows[m].first)
               << "\": " << rows[m].second;
        }
        os << "}}" << (i + 1 < r.points.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

namespace
{

bool
writeFile(const std::string &path, const SweepResult &r,
          void (*writer)(std::ostream &, const SweepResult &))
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
        return false;
    }
    writer(f, r);
    return true;
}

} // namespace

bool
writeCsvFile(const std::string &path, const SweepResult &r)
{
    return writeFile(path, r, writeCsv);
}

bool
writeJsonFile(const std::string &path, const SweepResult &r)
{
    return writeFile(path, r, writeJson);
}

SweepConfig
sweepFromJson(const std::string &text)
{
    const Json doc = Json::parse(text);
    if (!doc.isObject())
        fatal("sweep spec: the document must be a JSON object");

    SweepConfig cfg;
    for (const auto &[key, value] : doc.object()) {
        if (key == "suite") {
            cfg.suite = value.str();
        } else if (key == "base") {
            for (const auto &[param, v] : value.object())
                cfg.base.emplace_back(param, v.scalarString());
        } else if (key == "axes") {
            for (const auto &[param, vals] : value.object()) {
                GridAxis axis;
                axis.param = param;
                if (vals.isArray()) {
                    for (const auto &v : vals.array())
                        axis.values.push_back(v.scalarString());
                } else {
                    // A bare scalar is a one-value axis.
                    axis.values.push_back(vals.scalarString());
                }
                cfg.grid.axes.push_back(std::move(axis));
            }
        } else {
            fatal(strformat("sweep spec: unknown key \"%s\" (want "
                            "suite, base or axes)",
                            key.c_str()));
        }
    }
    if (cfg.grid.axes.empty())
        fatal("sweep spec: no axes (zero-depth grid)");
    cfg.grid.validate();
    // Surface bad base bindings at parse time too.
    workload::SuiteRunOptions probe;
    for (const auto &[param, value] : cfg.base)
        applyParam(probe, param, value);
    suiteByName(cfg.suite);
    return cfg;
}

SweepConfig
sweepFromJsonFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(strformat("cannot open sweep spec '%s'", path.c_str()));
    std::stringstream ss;
    ss << f.rdbuf();
    return sweepFromJson(ss.str());
}

namespace
{

/**
 * Reload one metric from its JSON lexeme, preserving the writer's
 * encoding: an all-digit lexeme was an integer metric (or a real that
 * %.17g printed integrally — re-printing the integer gives the same
 * bytes either way), anything else re-parses to the exact double the
 * %.17g round-trip guarantees.
 */
void
setMetricFromLexeme(trace::MetricsRegistry &m, const std::string &name,
                    const std::string &lex)
{
    if (!lex.empty() &&
        lex.find_first_not_of("0123456789") == std::string::npos) {
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(lex.c_str(), &end, 10);
        if (errno == 0 && *end == '\0') {
            m.set(name, static_cast<std::uint64_t>(v));
            return;
        }
    }
    m.set(name, std::strtod(lex.c_str(), nullptr));
}

const Json &
member(const Json &obj, const char *key, const char *what)
{
    const Json *j = obj.find(key);
    if (!j)
        fatal(strformat("sweep result: %s is missing \"%s\"", what, key));
    return *j;
}

} // namespace

SweepResult
sweepResultFromJson(const std::string &text)
{
    const Json doc = Json::parse(text);
    if (!doc.isObject())
        fatal("sweep result: the document must be a JSON object");
    const std::string &schema =
        member(doc, "schema", "the document").str();
    if (schema != "mipsx-explore-v2")
        fatal(strformat("sweep result: unsupported schema \"%s\" (this "
                        "reader understands mipsx-explore-v2)",
                        schema.c_str()));

    SweepResult r;
    r.suite = member(doc, "suite", "the document").str();
    r.workloads = static_cast<unsigned>(
        member(doc, "workloads", "the document").number());
    for (const auto &[param, v] :
         member(doc, "base", "the document").object())
        r.base.emplace_back(param, v.str());
    for (const auto &a :
         member(member(doc, "grid", "the document"), "axes", "the grid")
             .array()) {
        GridAxis axis;
        axis.param = member(a, "param", "a grid axis").str();
        for (const auto &v : member(a, "values", "a grid axis").array())
            axis.values.push_back(v.str());
        r.grid.axes.push_back(std::move(axis));
    }
    if (const Json *shard = doc.find("shard")) {
        r.shardIndex = static_cast<unsigned>(
            member(*shard, "index", "the shard section").number());
        r.shardCount = static_cast<unsigned>(
            member(*shard, "count", "the shard section").number());
        if (r.shardCount < 1 || r.shardIndex >= r.shardCount)
            fatal(strformat("sweep result: bad shard %u/%u",
                            r.shardIndex, r.shardCount));
    }
    if (const Json *pareto = doc.find("pareto")) {
        r.pareto.present = true;
        r.pareto.x = parseObjective(
            member(*pareto, "x", "the pareto section").str());
        r.pareto.y = parseObjective(
            member(*pareto, "y", "the pareto section").str());
        for (const auto &i :
             member(*pareto, "frontier", "the pareto section").array())
            r.pareto.frontier.push_back(
                static_cast<std::size_t>(i.number()));
        r.pareto.knee = static_cast<std::size_t>(
            member(*pareto, "knee", "the pareto section").number());
    }
    for (const auto &p : member(doc, "points", "the document").array()) {
        SweepPointResult pr;
        pr.index = static_cast<std::size_t>(
            member(p, "point", "a point").number());
        pr.refined = member(p, "refined", "a point").boolean();
        for (const auto &[param, v] :
             member(p, "bindings", "a point").object())
            pr.point.bindings.emplace_back(param, v.str());
        for (const auto &f : member(p, "failures", "a point").array()) {
            workload::SuiteFailure fail;
            fail.name = f.str();
            pr.failures.push_back(std::move(fail));
        }
        // The JSON carries names only; keep totalFailures() honest.
        pr.stats.failures = static_cast<unsigned>(pr.failures.size());
        for (const auto &[name, v] :
             member(p, "metrics", "a point").object())
            setMetricFromLexeme(pr.metrics, name, v.scalarString());
        r.points.push_back(std::move(pr));
    }
    return r;
}

SweepResult
sweepResultFromJsonFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(strformat("cannot open sweep result '%s'", path.c_str()));
    std::stringstream ss;
    ss << f.rdbuf();
    return sweepResultFromJson(ss.str());
}

SweepResult
mergeShards(std::vector<SweepResult> shards)
{
    if (shards.empty())
        fatal("merge: no shard outputs given");
    const unsigned n = shards.front().shardCount;
    if (shards.size() != n)
        fatal(strformat("merge: got %zu shard output(s) for a %u-way "
                        "split",
                        shards.size(), n));

    std::vector<char> have(n, 0);
    const SweepResult &ref = shards.front();
    for (const auto &s : shards) {
        if (s.shardCount != n)
            fatal(strformat("merge: mixed shard counts (%u vs %u)",
                            s.shardCount, n));
        if (have[s.shardIndex]++)
            fatal(strformat("merge: shard %u appears twice",
                            s.shardIndex));
        if (s.suite != ref.suite || s.workloads != ref.workloads ||
            s.base != ref.base)
            fatal("merge: shard outputs disagree on suite, workload "
                  "count or base bindings — not one sweep's shards");
        if (s.grid.axes.size() != ref.grid.axes.size())
            fatal("merge: shard outputs disagree on the grid");
        for (std::size_t a = 0; a < s.grid.axes.size(); ++a) {
            if (s.grid.axes[a].param != ref.grid.axes[a].param ||
                s.grid.axes[a].values != ref.grid.axes[a].values)
                fatal("merge: shard outputs disagree on the grid");
        }
    }

    SweepResult out;
    out.grid = ref.grid;
    out.suite = ref.suite;
    out.base = ref.base;
    out.workloads = ref.workloads;
    for (auto &s : shards) {
        for (auto &p : s.points) {
            if (p.index % n != s.shardIndex)
                fatal(strformat("merge: point %zu does not belong to "
                                "shard %u of %u",
                                p.index, s.shardIndex, n));
            out.points.push_back(std::move(p));
        }
    }
    const std::size_t total = out.grid.points();
    if (out.points.size() != total)
        fatal(strformat("merge: %zu point(s) for a %zu-point grid — a "
                        "shard output is truncated",
                        out.points.size(), total));
    std::sort(out.points.begin(), out.points.end(),
              [](const SweepPointResult &a, const SweepPointResult &b) {
                  return a.index < b.index;
              });
    for (std::size_t i = 0; i < out.points.size(); ++i) {
        if (out.points[i].index != i)
            fatal(strformat("merge: duplicate or missing point index "
                            "%zu", i));
    }
    return out;
}

} // namespace mipsx::explore
