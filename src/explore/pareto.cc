#include "explore/pareto.hh"

#include <algorithm>
#include <cmath>

#include "common/sim_error.hh"

namespace mipsx::explore
{

MetricObjective
parseObjective(const std::string &spec)
{
    MetricObjective o;
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos) {
        o.metric = spec;
    } else {
        o.metric = spec.substr(0, colon);
        const std::string dir = spec.substr(colon + 1);
        if (dir == "min")
            o.minimize = true;
        else if (dir == "max")
            o.minimize = false;
        else
            fatal(strformat("pareto: bad direction '%s' in '%s' (want "
                            "min or max)",
                            dir.c_str(), spec.c_str()));
    }
    if (o.metric.empty())
        fatal(strformat("pareto: empty metric name in '%s'",
                        spec.c_str()));
    return o;
}

namespace
{

/** a dominates b under minimisation of both coordinates. */
bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

} // namespace

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> pts, bool minX, bool minY)
{
    // Canonicalise to minimise-both, filter, then map back: one
    // domination rule instead of four.
    for (auto &p : pts) {
        if (!minX)
            p.x = -p.x;
        if (!minY)
            p.y = -p.y;
    }
    std::vector<ParetoPoint> front;
    for (const auto &cand : pts) {
        bool dominated = false;
        for (const auto &other : pts) {
            if (dominates(other, cand)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(cand);
    }
    for (auto &p : front) {
        if (!minX)
            p.x = -p.x;
        if (!minY)
            p.y = -p.y;
    }
    std::sort(front.begin(), front.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.x != b.x)
                      return a.x < b.x;
                  if (a.y != b.y)
                      return a.y < b.y;
                  return a.index < b.index;
              });
    return front;
}

std::size_t
kneePosition(const std::vector<ParetoPoint> &frontier)
{
    if (frontier.empty())
        fatal("pareto: knee of an empty frontier");
    if (frontier.size() < 3)
        return 0;

    // Normalise to the frontier's bounding box so the two metrics'
    // scales cannot drown each other, then take the point farthest from
    // the endpoint chord (the classic max-distance knee).
    const auto &a = frontier.front();
    const auto &b = frontier.back();
    const double dx = b.x - a.x;
    const double dy = b.y - a.y;
    const double sx = dx != 0 ? dx : 1.0;
    const double sy = dy != 0 ? dy : 1.0;

    std::size_t best = 0;
    double bestDist = -1.0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const double nx = (frontier[i].x - a.x) / sx;
        const double ny = (frontier[i].y - a.y) / sy;
        // Distance to the normalised chord (0,0)-(1,1) when both axes
        // span; degenerate chords fall back to distance from the
        // origin point.
        const double dist = (dx != 0 && dy != 0)
            ? std::fabs(nx - ny) / std::sqrt(2.0)
            : std::hypot(nx, ny);
        if (dist > bestDist + 1e-12) {
            bestDist = dist;
            best = i;
        }
    }
    return best;
}

} // namespace mipsx::explore
