/**
 * @file
 * Trend comparison over flat benchmark JSON files.
 *
 * The BENCH_*.json files the harnesses emit are flat objects of named
 * numbers. This module diffs a chronological sequence of them (baseline
 * first, current last), classifies every key's movement against a
 * percentage threshold, and renders the result as a markdown table or
 * JSON. A caller-chosen subset of keys is *gated*: a gated key that
 * worsens past the threshold — or disappears — marks the report
 * regressed, which mipsx-trend turns into a nonzero exit for CI.
 *
 * Direction is inferred per key: throughput-style names (per_second,
 * speedup, fill_rate, ...) are higher-is-better, everything else
 * (cycles, seconds, ratios, energy) lower-is-better.
 */

#ifndef MIPSX_EXPLORE_TREND_HH
#define MIPSX_EXPLORE_TREND_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace mipsx::explore
{

/** One flat benchmark document: numeric (key, value) in file order. */
struct FlatMetrics
{
    std::string name; ///< label for reports (usually the file stem)
    std::vector<std::pair<std::string, double>> entries;

    /** Value of @p key, or nullptr. */
    const double *find(const std::string &key) const;
};

/**
 * Parse a flat JSON object of metrics. Non-numeric members (the odd
 * string annotation) are skipped; booleans count as 0/1. Throws
 * SimError on malformed JSON or a non-object document.
 */
FlatMetrics flatMetricsFromJson(const std::string &name,
                                const std::string &text);
/** flatMetricsFromJson over a file; the label is the file's basename. */
FlatMetrics flatMetricsFromJsonFile(const std::string &path);

/** Whether a larger value of @p key is an improvement. */
bool higherIsBetter(const std::string &key);

/** How one key moved from the baseline to the current run. */
enum class TrendStatus : std::uint8_t
{
    Ok,       ///< within threshold (or not comparable both ends)
    Improved, ///< moved past the threshold in the good direction
    Regressed ///< moved past the threshold in the bad direction
};

const char *trendStatusName(TrendStatus s);

/** One key across every input file. */
struct TrendRow
{
    std::string key;
    std::vector<double> values; ///< one slot per input file
    std::vector<char> present;  ///< whether the file has the key
    /**
     * Signed percent change first -> last relative to |first|;
     * +/-infinity when the baseline is zero and the current is not.
     * Meaningful only when @ref comparable.
     */
    double deltaPct = 0;
    bool comparable = false; ///< present in both the first and last file
    bool higherBetter = false;
    bool gated = false;
    TrendStatus status = TrendStatus::Ok;
};

/** Comparison knobs. */
struct TrendOptions
{
    /** Percent movement beyond which a key counts as changed. */
    double thresholdPct = 2.0;
    /** Keys whose regression fails the report; empty = report-only. */
    std::vector<std::string> gates;
};

/** The full comparison result. */
struct TrendReport
{
    std::vector<std::string> names; ///< input labels, baseline first
    double thresholdPct = 2.0;
    std::vector<TrendRow> rows;
    /** Gated keys absent from the baseline or the current file. */
    std::vector<std::string> missingGates;

    /** True when any gated key regressed or went missing. */
    bool regressed() const;
};

/**
 * Compare @p runs (chronological, baseline first, current last; at
 * least two). Row order is the first file's key order, with keys new
 * in later files appended in encounter order. Throws SimError when
 * fewer than two runs are given or a gate names no known key in either
 * end (a misspelled gate must not silently pass).
 */
TrendReport trendCompare(const std::vector<FlatMetrics> &runs,
                         const TrendOptions &opts);

/** Render the report as a markdown table. */
void writeTrendMarkdown(std::ostream &os, const TrendReport &r);
/** Render the report as JSON (schema "mipsx-trend-v1"). */
void writeTrendJson(std::ostream &os, const TrendReport &r);

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_TREND_HH
