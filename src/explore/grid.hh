/**
 * @file
 * The declarative parameter grid behind the design-space explorer.
 *
 * A GridSpec names the swept parameters (axes) and the values each one
 * takes; expandGrid() produces the cartesian point set, and applyPoint()
 * lowers one point onto the SuiteRunOptions the deterministic suite
 * runner consumes. Every knob the paper's tradeoff studies turn is a
 * named parameter here — icache geometry, miss penalty, fetch-back
 * width and replacement policy; branch scheme, delay-slot count and
 * profiling; the external cache and its memory latencies — so the
 * studies (Table 1, the double-fetch and service-time figures) are
 * plain grid files instead of hand-rolled loops (the gem5
 * configuration-script idea applied to this simulator).
 *
 * All values are carried as strings: that keeps grid files, CLI flags,
 * CSV columns and JSON bindings one representation, with the per-
 * parameter parsers doing the validation at applyParam() time — a typo
 * fails the sweep up front, not as a mysterious per-workload failure
 * inside a worker thread.
 */

#ifndef MIPSX_EXPLORE_GRID_HH
#define MIPSX_EXPLORE_GRID_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "workload/suite_runner.hh"

namespace mipsx::explore
{

/** One swept parameter and the values it takes, in sweep order. */
struct GridAxis
{
    std::string param;
    std::vector<std::string> values;
};

/** A cartesian parameter grid. An empty grid is the single base point. */
struct GridSpec
{
    std::vector<GridAxis> axes;

    /** Number of points the grid expands to (1 for no axes). */
    std::size_t points() const;

    /**
     * Reject malformed grids up front: unknown parameter names,
     * duplicate axes, and zero-depth axes (an axis with no values
     * would silently expand to an empty sweep).
     */
    void validate() const;
};

/** One expanded point: a (param, value) binding per axis, axis order. */
struct GridPoint
{
    std::vector<std::pair<std::string, std::string>> bindings;

    /** Value bound for @p param, or nullptr when not an axis. */
    const std::string *valueOf(const std::string &param) const;
};

/**
 * Expand @p grid to its cartesian point set. The last axis varies
 * fastest, so points enumerate in row-major (odometer) order.
 */
std::vector<GridPoint> expandGrid(const GridSpec &grid);

/** One sweepable parameter, for --list-params and the docs. */
struct ParamInfo
{
    const char *name;
    const char *values; ///< accepted value forms, human-readable
    const char *doc;
};

/** Every parameter applyParam() accepts. */
const std::vector<ParamInfo> &knownParams();
bool isKnownParam(const std::string &param);

/**
 * Apply one (param, value) binding to @p opts. Throws SimError naming
 * the parameter for unknown names and unparseable or out-of-range
 * values (including the cache-geometry power-of-two rules, checked
 * here so errors surface before any workload runs).
 */
void applyParam(workload::SuiteRunOptions &opts, const std::string &param,
                const std::string &value);

/** Apply every binding of @p point in axis order. */
void applyPoint(workload::SuiteRunOptions &opts, const GridPoint &point);

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_GRID_HH
