/**
 * @file
 * A minimal JSON reader for the explore engine's grid-spec files.
 *
 * The writers elsewhere in the tree (trace/export, MetricsRegistry,
 * BenchJson) only ever *emit* JSON; sweep specs are the first input the
 * toolchain reads in JSON form, so this is a small self-contained
 * recursive-descent parser — objects keep member order (axis order is
 * meaningful in a grid), numbers keep their source lexeme so "1" round-
 * trips as "1" and not "1.000000" when a spec value becomes a grid
 * binding string.
 */

#ifndef MIPSX_EXPLORE_JSON_HH
#define MIPSX_EXPLORE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mipsx::explore
{

/** One parsed JSON value. Accessors throw SimError on kind mismatch. */
class Json
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parse one JSON document; throws SimError with line/column (and
     * byte offset) context on any malformation, unsupported string
     * escapes included.
     */
    static Json parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isScalar() const
    {
        return kind_ == Kind::Bool || kind_ == Kind::Number ||
               kind_ == Kind::String;
    }

    bool boolean() const;
    double number() const;
    const std::string &str() const;
    const std::vector<Json> &array() const;
    /** Object members in source order. */
    const std::vector<std::pair<std::string, Json>> &object() const;

    /** Member @p key of an object, or nullptr. */
    const Json *find(const std::string &key) const;

    /**
     * A scalar rendered as the grid's canonical string form: numbers
     * keep their source spelling, booleans become "1"/"0" (the form
     * the boolean grid parameters accept), strings pass through.
     */
    std::string scalarString() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string text_; ///< string value, or a number's source lexeme
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;

    friend class JsonParser;
};

} // namespace mipsx::explore

#endif // MIPSX_EXPLORE_JSON_HH
