#include "mp/multi_machine.hh"

#include "common/sim_error.hh"

namespace mipsx::mp
{

MultiMachine::MultiMachine(const MultiMachineConfig &config)
    : config_(config)
{
    if (config_.cpus == 0 || config_.cpus > 64)
        fatal("MultiMachine: cpu count out of range");
    for (unsigned i = 0; i < config_.cpus; ++i) {
        core::CpuConfig cc = config_.cpu;
        cc.cpuId = i;
        cc.bus = &bus_;
        cc.coherence = &hub_;
        cc.maxCycles = config_.maxCycles;
        auto cpu = std::make_unique<core::Cpu>(cc, mem_);
        if (config_.attachFpu)
            cpu->attachCoprocessor(1, std::make_unique<coproc::Fpu>());
        hub_.attach(&cpu->ecache());
        cpus_.push_back(std::move(cpu));
    }
}

void
MultiMachine::load(const assembler::Program &prog)
{
    mem_.loadProgram(prog);
    prog_ = &prog;
    for (auto &cpu : cpus_)
        cpu->setProgram(prog_);
}

void
MultiMachine::reset()
{
    if (!prog_)
        fatal("MultiMachine::reset: no program loaded");
    for (unsigned i = 0; i < cpus_.size(); ++i) {
        auto &cpu = *cpus_[i];
        cpu.reset(prog_->entry);
        cpu.setGpr(isa::reg::sp,
                   config_.stackTop - i * config_.stackSpacing);
        cpu.setGpr(convention::cpuIdReg, i);
        cpu.setGpr(convention::cpuCountReg,
                   static_cast<word_t>(cpus_.size()));
    }
}

MultiRunResult
MultiMachine::run()
{
    reset();
    MultiRunResult r;

    bool anyRunning = true;
    cycle_t global = 0;
    while (anyRunning && global < config_.maxCycles) {
        anyRunning = false;
        for (auto &cpu : cpus_) {
            if (!cpu->stopped()) {
                cpu->tick();
                anyRunning = anyRunning || !cpu->stopped();
            }
        }
        ++global;
    }

    r.allHalted = true;
    for (auto &cpu : cpus_) {
        if (cpu->stopReason() != core::StopReason::Halt)
            r.allHalted = false;
        r.instructions += cpu->stats().committed;
        if (cpu->stats().cycles > r.cycles)
            r.cycles = cpu->stats().cycles;
    }
    r.busTransactions = bus_.transactions();
    r.busWaitCycles = bus_.waitCycles();
    r.invalidations = hub_.invalidations();
    return r;
}

} // namespace mipsx::mp
