/**
 * @file
 * The shared-memory multiprocessor the MIPS-X project was building
 * toward: "to use 6-10 of these processors as the nodes in a shared
 * memory multiprocessor. The resulting machine would be about two orders
 * of magnitude more powerful than a VAX 11/780 minicomputer."
 *
 * N pipelined CPUs, each with its private on-chip I-cache and external
 * cache, share one main memory over a single arbitrated bus; the Ecaches
 * snoop stores and invalidate shared lines (memory/bus.hh). The CPUs run
 * in deterministic lockstep — one cycle per CPU per global cycle — which
 * also makes the memory model sequentially consistent: every store is
 * visible to every later load, so the era-appropriate flag/barrier
 * synchronization idioms work unmodified.
 *
 * Program convention: every CPU starts at the program's entry with
 *   r25 = its CPU id (0-based), r26 = the CPU count,
 *   sp  = stackTop - id * stackSpacing,
 * and runs until its own halt.
 */

#ifndef MIPSX_MP_MULTI_MACHINE_HH
#define MIPSX_MP_MULTI_MACHINE_HH

#include <memory>
#include <vector>

#include "assembler/program.hh"
#include "coproc/fpu.hh"
#include "core/cpu.hh"
#include "memory/bus.hh"
#include "memory/main_memory.hh"

namespace mipsx::mp
{

/** Registers carrying the topology into the program. */
namespace convention
{
inline constexpr unsigned cpuIdReg = 25;
inline constexpr unsigned cpuCountReg = 26;
} // namespace convention

/** Multiprocessor configuration. */
struct MultiMachineConfig
{
    unsigned cpus = 4;
    core::CpuConfig cpu{}; ///< per-CPU template (bus/id fields overwritten)
    bool attachFpu = true;
    addr_t stackTop = 0x70000;
    addr_t stackSpacing = 0x2000;
    cycle_t maxCycles = 200'000'000;
};

/** Result of a multiprocessor run. */
struct MultiRunResult
{
    bool allHalted = false;
    cycle_t cycles = 0; ///< global cycles until the last CPU halted
    std::uint64_t instructions = 0; ///< aggregate retired instructions
    std::uint64_t busTransactions = 0;
    std::uint64_t busWaitCycles = 0;
    std::uint64_t invalidations = 0;
};

/** The shared-memory multiprocessor. */
class MultiMachine
{
  public:
    explicit MultiMachine(const MultiMachineConfig &config);

    /** Load the (already reorganized) program all CPUs execute. */
    void load(const assembler::Program &prog);

    /** Reset every CPU to the entry point with the id convention. */
    void reset();

    /** Run until every CPU halts (or any stops abnormally). */
    MultiRunResult run();

    unsigned numCpus() const { return static_cast<unsigned>(cpus_.size()); }
    core::Cpu &cpu(unsigned i) { return *cpus_.at(i); }
    memory::MainMemory &memory() { return mem_; }
    const memory::BusArbiter &bus() const { return bus_; }
    const memory::CoherenceHub &coherence() const { return hub_; }

    word_t
    readWord(AddressSpace space, addr_t addr) const
    {
        return mem_.read(space, addr);
    }

  private:
    MultiMachineConfig config_;
    memory::MainMemory mem_;
    memory::BusArbiter bus_;
    memory::CoherenceHub hub_;
    std::vector<std::unique_ptr<core::Cpu>> cpus_;
    const assembler::Program *prog_ = nullptr;
};

} // namespace mipsx::mp

#endif // MIPSX_MP_MULTI_MACHINE_HH
