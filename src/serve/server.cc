/**
 * @file
 * The daemon core: job execution on the existing simulator stack, the
 * bounded-queue worker pool, and the stdio transport.
 *
 * Execution reuses exactly the pieces a direct mipsx-run invocation
 * uses — PreparedCache (COW snapshots give per-job isolation for
 * free), one fresh Machine per job, Cpu::collectMetrics as the result
 * payload — so a job's metrics are identical to running the same
 * program/config through mipsx-run, which the tier-1 serve smoke
 * diffs. The per-job "timeout" is the cycle cap: deterministic where a
 * wall clock is not, and exactly what MachineConfig already enforces.
 */

#include "serve/serve.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/sim_error.hh"
#include "explore/explore.hh"
#include "explore/grid.hh"
#include "sim/interval.hh"
#include "sim/machine.hh"
#include "workload/prepared.hh"
#include "workload/suite_runner.hh"

namespace mipsx::serve
{

namespace
{

/** "{\"a\": 1,\"b\": 2}" — writeJson's encoding, one line. */
std::string
compactMetricsJson(const trace::MetricsRegistry &m)
{
    const auto rows = m.formatted();
    std::string out = "{";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i)
            out += ',';
        out += jsonQuote(rows[i].first);
        out += ": ";
        out += rows[i].second;
    }
    out += "}";
    return out;
}

/** Suite workloads by name (what a {"workload":...} job draws from). */
const workload::Workload *
findWorkload(const std::string &name)
{
    static const std::vector<workload::Workload> all = [] {
        auto ws = workload::fullSuite();
        const auto scaled = workload::scaledWorkloads();
        ws.insert(ws.end(), scaled.begin(), scaled.end());
        return ws;
    }();
    for (const auto &w : all)
        if (w.name == name)
            return &w;
    return nullptr;
}

JobOutcome
errorOutcome(const char *code, const std::string &message)
{
    JobOutcome out;
    out.ok = false;
    out.errorCode = code;
    out.errorMessage = message;
    return out;
}

/**
 * Lower the request's config bindings + caps onto SuiteRunOptions.
 * Mirrors mipsx-run's machine setup (counter coprocessor attached) so
 * a serve job and a direct run produce identical metrics.
 */
workload::SuiteRunOptions
jobOptions(const JobRequest &req, const ServeConfig &config)
{
    workload::SuiteRunOptions point;
    point.preparedCache = config.preparedCache;
    for (const auto &[param, value] : req.config)
        explore::applyParam(point, param, value);
    point.machine.attachCounterCop = true;
    point.machine.cpu.maxCycles =
        req.maxCycles ? std::min<std::uint64_t>(req.maxCycles,
                                                config.maxCycles)
                      : config.maxCycles;
    if (req.fastForward)
        point.machine.fastForward.instructions = req.fastForward;
    return point;
}

JobOutcome
runOneProgram(const JobRequest &req, const ServeConfig &config)
{
    workload::SuiteRunOptions point;
    try {
        point = jobOptions(req, config);
    } catch (const SimError &e) {
        return errorOutcome("config", e.what());
    }

    workload::Workload w;
    if (!req.workload.empty()) {
        const workload::Workload *found = findWorkload(req.workload);
        if (!found)
            return errorOutcome(
                "request", strformat("unknown workload '%s'",
                                     req.workload.c_str()));
        w = *found;
    } else if (!req.file.empty()) {
        std::ifstream in(req.file);
        if (!in)
            return errorOutcome("io", strformat("cannot open '%s'",
                                                req.file.c_str()));
        std::stringstream ss;
        ss << in.rdbuf();
        w.name = req.file;
        w.source = ss.str();
    } else {
        w.name = "inline";
        w.source = req.program;
    }

    workload::PreparedPtr prep;
    try {
        prep = point.preparedCache
            ? workload::PreparedCache::global().get(w, point.reorg,
                                                    point.useProfiles)
            : workload::prepareWorkload(w, point.reorg,
                                        point.useProfiles);
    } catch (const SimError &e) {
        return errorOutcome("toolchain", e.what());
    }

    try {
        if (point.machine.intervals > 1) {
            // The interval engine (machine.intervals/.warmup/.sample
            // config params): checkpointed pieces on a one-worker pool
            // — the serve job queue is the parallel axis — with the
            // workload's own size/phase hints when it carries them.
            sim::IntervalConfig ic;
            ic.intervals = point.machine.intervals;
            ic.warmup = point.machine.warmupInstructions;
            ic.sample = point.machine.sampleWindow;
            ic.jobs = 1;
            ic.predecode = point.predecode;
            ic.totalHint = w.dynamicEstimate;
            ic.phases = w.dynamicPhases;
            const auto r = sim::runIntervals(
                prep->image, point.machine, ic,
                point.predecode ? &prep->decoded : nullptr);
            trace::MetricsRegistry m;
            sim::collectMetrics(r, m);
            JobOutcome out;
            out.ok = true;
            out.passed = r.passed;
            out.resultJson = strformat(
                "{\"stop\":%s,\"passed\":%s,\"cycles\":%llu,"
                "\"instructions\":%llu,\"interval\":{"
                "\"pieces\":%zu,\"exact\":%s,"
                "\"warmup_instructions\":%llu,"
                "\"warmup_cycles\":%llu},",
                jsonQuote(core::stopReasonName(r.result.reason)).c_str(),
                out.passed ? "true" : "false",
                static_cast<unsigned long long>(
                    r.estimated.pipeline.cycles),
                static_cast<unsigned long long>(
                    r.estimated.pipeline.committed),
                r.pieces.size(), r.exact ? "true" : "false",
                static_cast<unsigned long long>(r.warmupInstructions),
                static_cast<unsigned long long>(r.warmupCycles));
            out.resultJson += "\"metrics\":";
            out.resultJson += compactMetricsJson(m);
            out.resultJson += "}";
            return out;
        }
        sim::Machine machine(point.machine);
        machine.memory().setPredecodeEnabled(point.predecode);
        machine.load(prep->image,
                     point.predecode ? &prep->decoded : nullptr);
        const auto result = machine.run();

        trace::MetricsRegistry m;
        machine.cpu().collectMetrics(m);

        JobOutcome out;
        out.ok = true;
        out.passed = result.halted();
        out.resultJson = strformat(
            "{\"stop\":%s,\"passed\":%s,\"cycles\":%llu,"
            "\"instructions\":%llu,",
            jsonQuote(core::stopReasonName(result.reason)).c_str(),
            out.passed ? "true" : "false",
            static_cast<unsigned long long>(
                machine.cpu().stats().cycles),
            static_cast<unsigned long long>(
                machine.cpu().stats().committed));
        if (machine.fastForwarded().ran)
            out.resultJson += strformat(
                "\"fast_forward_steps\":%llu,",
                static_cast<unsigned long long>(
                    machine.fastForwarded().issSteps));
        if (machine.warmup().ran)
            out.resultJson += strformat(
                "\"warmup_instructions\":%llu,\"warmup_cycles\":%llu,",
                static_cast<unsigned long long>(
                    machine.warmup().baseline.pipeline.committed),
                static_cast<unsigned long long>(
                    machine.warmup().baseline.pipeline.cycles));
        out.resultJson += "\"metrics\":";
        out.resultJson += compactMetricsJson(m);
        out.resultJson += "}";
        return out;
    } catch (const std::exception &e) {
        // A run that throws (toolchain bug, invalid machine state) is
        // reported, never allowed to take the daemon down.
        return errorOutcome("internal", e.what());
    }
}

JobOutcome
runOneSuite(const JobRequest &req, const ServeConfig &config)
{
    std::vector<workload::Workload> suite;
    workload::SuiteRunOptions opts;
    try {
        suite = explore::suiteByName(req.suite.empty() ? "full"
                                                       : req.suite);
        opts = jobOptions(req, config);
    } catch (const SimError &e) {
        return errorOutcome("request", e.what());
    }
    opts.jobs = req.jobs;
    try {
        const auto res = workload::runSuite(suite, opts);
        trace::MetricsRegistry m;
        workload::collectMetrics(res.stats, m);
        workload::collectEnergy(res.stats, opts.machine.cpu.energy, m);

        JobOutcome out;
        out.ok = true;
        out.passed = res.stats.failures == 0;
        out.resultJson = strformat(
            "{\"workloads\":%u,\"failures\":%u,\"passed\":%s,",
            res.stats.workloads, res.stats.failures,
            out.passed ? "true" : "false");
        out.resultJson += "\"metrics\":";
        out.resultJson += compactMetricsJson(m);
        out.resultJson += "}";
        return out;
    } catch (const std::exception &e) {
        return errorOutcome("internal", e.what());
    }
}

} // namespace

void
collectMetrics(const ServeStats &s, trace::MetricsRegistry &m,
               const std::string &prefix)
{
    const std::string p = prefix + ".";
    m.set(p + "submitted", s.submitted);
    m.set(p + "completed", s.completed);
    m.set(p + "errors", s.errors);
    m.set(p + "failed", s.failed);
    m.set(p + "queue_depth", s.queueDepth);
    m.set(p + "queue_peak", s.queuePeak);
    m.set(p + "cache_hits", s.cacheHits);
    m.set(p + "cache_misses", s.cacheMisses);
    m.set(p + "latency_p50_ms", s.p50Ms);
    m.set(p + "latency_p90_ms", s.p90Ms);
    m.set(p + "latency_p99_ms", s.p99Ms);
    m.set(p + "latency_max_ms", s.maxMs);
}

JobOutcome
runJob(const JobRequest &req, const ServeConfig &config,
       const Server *server)
{
    switch (req.op) {
      case Op::Run: return runOneProgram(req, config);
      case Op::Suite: return runOneSuite(req, config);
      case Op::Ping: {
        JobOutcome out;
        out.ok = true;
        out.passed = true;
        out.resultJson = "{\"pong\":true}";
        return out;
      }
      case Op::Stats: {
        JobOutcome out;
        out.ok = true;
        out.passed = true;
        trace::MetricsRegistry m;
        collectMetrics(server ? server->stats() : ServeStats{}, m);
        out.resultJson = compactMetricsJson(m);
        return out;
      }
      case Op::Shutdown: {
        JobOutcome out;
        out.ok = true;
        out.passed = true;
        out.resultJson = "{\"shutdown\":true}";
        return out;
      }
    }
    return errorOutcome("internal", "unreachable op");
}

Server::Server(const ServeConfig &config) : config_(config)
{
    const auto cache = workload::PreparedCache::global().stats();
    cacheHits0_ = cache.hits;
    cacheMisses0_ = cache.misses;
    const unsigned n = config_.workers ? config_.workers
                                       : workload::defaultSuiteJobs();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Server::~Server()
{
    shutdown();
}

std::uint64_t
Server::submit(JobRequest req, Completion done)
{
    std::unique_lock<std::mutex> lock(mu_);
    cvSubmit_.wait(lock, [this] {
        return queue_.size() < config_.maxQueue || stopping_;
    });
    const std::uint64_t seq = nextSeq_++;
    ++stats_.submitted;
    if (stopping_) {
        // Late submission after shutdown: run inline rather than
        // silently dropping the job (the transports never do this,
        // but the API should not have a black hole).
        lock.unlock();
        const JobOutcome out = runJob(req, config_, this);
        if (done)
            done(seq, out);
        lock.lock();
        ++stats_.completed;
        if (!out.ok)
            ++stats_.errors;
        else if (!out.passed)
            ++stats_.failed;
        return seq;
    }
    Pending p;
    p.seq = seq;
    p.req = std::move(req);
    p.done = std::move(done);
    p.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(p));
    stats_.queuePeak =
        std::max<std::uint64_t>(stats_.queuePeak, queue_.size());
    cvWork_.notify_one();
    return seq;
}

void
Server::workerLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [this] {
                return !queue_.empty() || stopping_;
            });
            if (queue_.empty())
                return; // stopping, nothing left
            p = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
            cvSubmit_.notify_one();
        }
        const JobOutcome out = runJob(p.req, config_, this);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - p.enqueued)
                .count();
        if (p.done)
            p.done(p.seq, out);
        {
            std::unique_lock<std::mutex> lock(mu_);
            --inFlight_;
            ++stats_.completed;
            if (!out.ok)
                ++stats_.errors;
            else if (!out.passed)
                ++stats_.failed;
            latenciesMs_.push_back(ms);
            if (queue_.empty() && inFlight_ == 0)
                cvDrained_.notify_all();
        }
    }
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvDrained_.wait(lock,
                    [this] { return queue_.empty() && inFlight_ == 0; });
}

void
Server::shutdown()
{
    drain();
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cvWork_.notify_all();
    cvSubmit_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
}

ServeStats
Server::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    ServeStats s = stats_;
    s.queueDepth = queue_.size();
    const auto cache = workload::PreparedCache::global().stats();
    s.cacheHits = cache.hits - cacheHits0_;
    s.cacheMisses = cache.misses - cacheMisses0_;
    if (!latenciesMs_.empty()) {
        std::vector<double> sorted = latenciesMs_;
        std::sort(sorted.begin(), sorted.end());
        const auto at = [&](double q) {
            const std::size_t n = sorted.size();
            std::size_t i = static_cast<std::size_t>(q * double(n));
            return sorted[std::min(i, n - 1)];
        };
        s.p50Ms = at(0.50);
        s.p90Ms = at(0.90);
        s.p99Ms = at(0.99);
        s.maxMs = sorted.back();
    }
    return s;
}

int
runStdioServer(std::istream &in, std::ostream &out,
               const ServeConfig &config, ServeStats *statsOut)
{
    Server server(config);

    // Submission-order reply sequencer. Every non-blank request line
    // gets the next sequence number; a reply is held until all lower
    // sequence numbers have been emitted, so the reply stream is
    // byte-identical for any worker count.
    std::mutex emitMu;
    std::map<std::uint64_t, std::string> held;
    std::uint64_t nextEmit = 0;
    const auto emit = [&](std::uint64_t seq, std::string line) {
        const std::lock_guard<std::mutex> lock(emitMu);
        held.emplace(seq, std::move(line));
        while (true) {
            const auto it = held.find(nextEmit);
            if (it == held.end())
                break;
            out << it->second << '\n';
            out.flush();
            held.erase(it);
            ++nextEmit;
        }
    };

    std::uint64_t seq = 0;
    std::string line;
    bool shutdownSeen = false;
    std::string shutdownId;
    while (!shutdownSeen && std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const std::uint64_t mySeq = seq++;
        JobRequest req;
        try {
            req = parseJobRequest(line);
        } catch (const SimError &e) {
            JobOutcome bad;
            bad.ok = false;
            bad.errorCode = "parse";
            bad.errorMessage = e.what();
            emit(mySeq, formatReply("", mySeq, bad));
            continue;
        }
        if (req.op == Op::Shutdown) {
            // Stop reading; the reply goes out last, after the drain.
            shutdownSeen = true;
            shutdownId = req.id;
            server.drain();
            emit(mySeq,
                 formatReply(shutdownId, mySeq,
                             runJob(req, config, &server)));
            break;
        }
        const std::string id = req.id;
        server.submit(std::move(req),
                      [&emit, id, mySeq](std::uint64_t,
                                         const JobOutcome &o) {
                          emit(mySeq, formatReply(id, mySeq, o));
                      });
    }

    server.drain();
    if (statsOut)
        *statsOut = server.stats();
    server.shutdown();
    return 0;
}

} // namespace mipsx::serve
