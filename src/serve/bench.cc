/**
 * @file
 * The serve load generator (mipsx-serve --bench): drive thousands of
 * concurrent run-jobs through an in-process Server and record the
 * "millions of users" numbers — throughput (jobs/s, simulated
 * instructions/s) and queue latency percentiles — as
 * BENCH_serve.json. In-process rather than over a pipe so the numbers
 * measure the service core (queueing, cache sharing, worker
 * scheduling), not stdio formatting.
 */

#include "serve/serve.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/sim_error.hh"
#include "explore/explore.hh"
#include "workload/suite_runner.hh"

namespace mipsx::serve
{

int
runServeBench(const BenchOptions &opts)
{
    const auto suite = explore::suiteByName(opts.suite);
    if (suite.empty())
        fatal("serve bench: empty suite");

    ServeConfig sc = opts.server;
    Server server(sc);
    const unsigned workers =
        sc.workers ? sc.workers : workload::defaultSuiteJobs();

    std::atomic<std::uint64_t> issued{0};
    std::atomic<std::uint64_t> okJobs{0};
    std::atomic<std::uint64_t> passedJobs{0};
    std::atomic<std::uint64_t> simInstructions{0};

    // Clients draw jobs round-robin over the suite; every other job
    // adds a machine-config binding so the request mix is not
    // homogeneous (same prepared image, different machine).
    auto client = [&] {
        for (;;) {
            const std::uint64_t i = issued.fetch_add(1);
            if (i >= opts.jobs)
                return;
            JobRequest req;
            req.op = Op::Run;
            req.id = strformat("bench-%llu",
                               static_cast<unsigned long long>(i));
            req.workload = suite[i % suite.size()].name;
            if (i % 2)
                req.config.emplace_back("icache.fetchWords", "2");
            server.submit(
                std::move(req),
                [&](std::uint64_t, const JobOutcome &o) {
                    if (o.ok)
                        okJobs.fetch_add(1);
                    if (o.passed)
                        passedJobs.fetch_add(1);
                    // "\"instructions\":N," — cheap scrape instead of
                    // re-parsing the reply JSON.
                    const auto pos =
                        o.resultJson.find("\"instructions\":");
                    if (pos != std::string::npos)
                        simInstructions.fetch_add(std::strtoull(
                            o.resultJson.c_str() + pos + 15, nullptr,
                            10));
                });
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    const unsigned nclients = std::max(1u, opts.clients);
    clients.reserve(nclients);
    for (unsigned c = 0; c < nclients; ++c)
        clients.emplace_back(client);
    for (auto &c : clients)
        c.join();
    server.drain();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const ServeStats st = server.stats();
    const double jobsPerSecond =
        seconds > 0 ? double(st.completed) / seconds : 0.0;
    const double instrPerSecond =
        seconds > 0 ? double(simInstructions.load()) / seconds : 0.0;

    if (!opts.quiet) {
        std::printf("serve bench: %llu jobs (%u clients -> %u "
                    "workers, suite '%s') in %.3f s\n",
                    static_cast<unsigned long long>(st.completed),
                    nclients, workers, opts.suite.c_str(), seconds);
        std::printf("  throughput    %.0f jobs/s, %.1f M simulated "
                    "instr/s\n",
                    jobsPerSecond, instrPerSecond / 1e6);
        std::printf("  latency       p50 %.2f ms, p90 %.2f ms, p99 "
                    "%.2f ms, max %.2f ms\n",
                    st.p50Ms, st.p90Ms, st.p99Ms, st.maxMs);
        std::printf("  queue         peak %llu of %zu\n",
                    static_cast<unsigned long long>(st.queuePeak),
                    sc.maxQueue);
        std::printf("  cache         %llu hits, %llu misses\n",
                    static_cast<unsigned long long>(st.cacheHits),
                    static_cast<unsigned long long>(st.cacheMisses));
    }

    trace::MetricsRegistry m;
    m.set("serve.bench.jobs", st.completed);
    m.set("serve.bench.ok", okJobs.load());
    m.set("serve.bench.passed", passedJobs.load());
    m.set("serve.bench.clients", nclients);
    m.set("serve.bench.workers", workers);
    m.set("serve.bench.seconds", seconds);
    m.set("serve.bench.jobs_per_second", jobsPerSecond);
    m.set("serve.bench.sim_instructions", simInstructions.load());
    m.set("serve.bench.sim_instr_per_second", instrPerSecond);
    collectMetrics(st, m);
    if (!opts.out.empty()) {
        if (!m.writeJsonFile(opts.out))
            return 1;
        if (!opts.quiet)
            std::printf("wrote %s\n", opts.out.c_str());
    }

    return passedJobs.load() == opts.jobs ? 0 : 1;
}

} // namespace mipsx::serve
