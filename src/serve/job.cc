/**
 * @file
 * The serve protocol's parse and render layer: one request line in,
 * one reply line out. Parsing is strict — unknown ops and unknown
 * keys are errors, not warnings — because this is the edge where
 * arbitrary client bytes meet the simulator, and a silently ignored
 * typo ("max_cycle") would run the wrong experiment.
 */

#include "serve/serve.hh"

#include <cstdio>

#include "common/sim_error.hh"
#include "explore/json.hh"

namespace mipsx::serve
{

namespace
{

std::uint64_t
u64Field(const explore::Json &v, const char *key)
{
    if (v.kind() != explore::Json::Kind::Number)
        fatal(strformat("request: \"%s\" must be a number", key));
    const double d = v.number();
    if (d < 0 || d != d || d > 18446744073709549568.0 ||
        d != static_cast<double>(static_cast<std::uint64_t>(d)))
        fatal(strformat("request: \"%s\" must be a non-negative "
                        "integer",
                        key));
    return static_cast<std::uint64_t>(d);
}

} // namespace

JobRequest
parseJobRequest(const std::string &line)
{
    const explore::Json doc = explore::Json::parse(line);
    if (!doc.isObject())
        fatal("request: want one JSON object per line");

    JobRequest req;
    bool haveOp = false;
    for (const auto &[key, value] : doc.object()) {
        if (key == "op") {
            const std::string op = value.str();
            if (op == "run")
                req.op = Op::Run;
            else if (op == "suite")
                req.op = Op::Suite;
            else if (op == "ping")
                req.op = Op::Ping;
            else if (op == "stats")
                req.op = Op::Stats;
            else if (op == "shutdown")
                req.op = Op::Shutdown;
            else
                fatal(strformat("request: unknown op \"%s\"",
                                op.c_str()));
            haveOp = true;
        } else if (key == "id") {
            if (!value.isScalar())
                fatal("request: \"id\" must be a scalar");
            req.id = value.scalarString();
        } else if (key == "program") {
            req.program = value.str();
        } else if (key == "file") {
            req.file = value.str();
        } else if (key == "workload") {
            req.workload = value.str();
        } else if (key == "suite") {
            req.suite = value.str();
        } else if (key == "config") {
            if (!value.isObject())
                fatal("request: \"config\" must be an object");
            for (const auto &[param, val] : value.object()) {
                if (!val.isScalar())
                    fatal(strformat("request: config \"%s\" must be "
                                    "a scalar",
                                    param.c_str()));
                req.config.emplace_back(param, val.scalarString());
            }
        } else if (key == "max_cycles") {
            req.maxCycles = u64Field(value, "max_cycles");
            if (req.maxCycles == 0)
                fatal("request: \"max_cycles\" must be positive");
        } else if (key == "fast_forward") {
            req.fastForward = u64Field(value, "fast_forward");
        } else if (key == "jobs") {
            req.jobs = static_cast<unsigned>(u64Field(value, "jobs"));
        } else {
            fatal(strformat("request: unknown key \"%s\"",
                            key.c_str()));
        }
    }
    if (!haveOp)
        fatal("request: missing \"op\"");

    if (req.op == Op::Run) {
        const int sources = (req.program.empty() ? 0 : 1) +
                            (req.file.empty() ? 0 : 1) +
                            (req.workload.empty() ? 0 : 1);
        if (sources != 1)
            fatal("request: a run job needs exactly one of "
                  "\"program\", \"file\", \"workload\"");
    } else if (!req.program.empty() || !req.file.empty() ||
               !req.workload.empty()) {
        fatal("request: \"program\"/\"file\"/\"workload\" only apply "
              "to op \"run\"");
    }
    if (req.op != Op::Suite && !req.suite.empty())
        fatal("request: \"suite\" only applies to op \"suite\"");
    return req;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    out += '"';
    return out;
}

std::string
formatReply(const std::string &id, std::uint64_t seq,
            const JobOutcome &out)
{
    std::string line = "{\"id\":";
    line += id.empty() ? std::string("null") : jsonQuote(id);
    line += strformat(",\"seq\":%llu",
                      static_cast<unsigned long long>(seq));
    if (out.ok) {
        line += ",\"ok\":true,\"result\":";
        line += out.resultJson.empty() ? "{}" : out.resultJson;
    } else {
        line += ",\"ok\":false,\"error\":{\"code\":";
        line += jsonQuote(out.errorCode);
        line += ",\"message\":";
        line += jsonQuote(out.errorMessage);
        line += "}";
    }
    line += "}";
    return line;
}

} // namespace mipsx::serve
