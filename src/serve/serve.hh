/**
 * @file
 * mipsx-serve — batch simulation as a service.
 *
 * A persistent multi-threaded daemon wrapping the pieces the repo
 * already has: the content-addressed PreparedCache amortizes toolchain
 * work (assemble + reorganize + predecode) across requests, a worker
 * pool executes one Machine per job, and MetricsRegistry is the result
 * payload. The protocol is newline-delimited JSON over stdin/stdout
 * (one request object per line, one reply object per line), so the
 * daemon composes with pipes, sockets via socat, and test harnesses
 * alike.
 *
 * Requests ("op" selects the kind; "id" is echoed back verbatim):
 *
 *     {"op":"run","id":"j1","program":"<MX32 source>",
 *      "config":{"icache.missPenalty":2},"max_cycles":1000000,
 *      "fast_forward":0}
 *     {"op":"run","id":"j2","workload":"sort"}      // suite program
 *     {"op":"run","id":"j3","file":"examples/asm/gcd.s"}
 *     {"op":"suite","id":"s1","suite":"fp","config":{...}}
 *     {"op":"ping","id":"p1"}
 *     {"op":"stats","id":"st"}                      // serve.* counters
 *     {"op":"shutdown"}                             // drain, then exit
 *
 * Replies carry the id, a server-assigned sequence number, and either
 * a result or a structured error — never a dead process:
 *
 *     {"id":"j1","seq":0,"ok":true,"result":{"stop":"halt",
 *      "passed":true,"metrics":{...cpu0.* counters...}}}
 *     {"id":"j9","seq":1,"ok":false,
 *      "error":{"code":"config","message":"..."}}
 *
 * Error codes: "parse" (malformed JSON), "request" (bad or missing
 * fields), "config" (unknown/invalid machine parameter), "io" (a
 * "file" job's path), "toolchain" (assembler/reorganizer rejected the
 * program). A program that runs but stops badly (its own fail trap,
 * the cycle cap, an invalid instruction) is NOT an error: the reply is
 * ok:true with result.passed=false and result.stop naming the reason,
 * and later jobs are unaffected.
 *
 * Determinism: replies are emitted in submission order (a reorder
 * buffer holds results completed out of order), every field of a job
 * reply descends from the deterministic simulator, and host-dependent
 * numbers (latency, queue depth) only ever appear in "stats" replies
 * and the bench output. The same request batch therefore produces
 * byte-identical reply streams at any --jobs count — scripts/tier1.sh
 * diffs exactly that.
 *
 * Isolation: jobs share PreparedCache entries copy-on-write (a
 * self-modifying program clones its decode pages privately), and each
 * job gets a fresh Machine, so no request can observe another.
 */

#ifndef MIPSX_SERVE_SERVE_HH
#define MIPSX_SERVE_SERVE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "trace/metrics.hh"

namespace mipsx::serve
{

/** What a request asks for. */
enum class Op : std::uint8_t
{
    Run,      ///< one program on the cycle-accurate machine
    Suite,    ///< a whole named suite, aggregate payload
    Ping,     ///< liveness probe
    Stats,    ///< serve.* counters (host-dependent; not deterministic)
    Shutdown, ///< stop accepting, drain the queue, exit
};

/** One parsed request. */
struct JobRequest
{
    Op op = Op::Run;
    std::string id;       ///< echoed into the reply ("" -> null)
    std::string program;  ///< inline MX32 source ("run")
    std::string file;     ///< path to a .s file ("run")
    std::string workload; ///< suite workload name ("run")
    std::string suite;    ///< suite name ("suite"), default "full"
    /** (param, value) machine bindings, explore's parameter names. */
    std::vector<std::pair<std::string, std::string>> config;
    std::uint64_t maxCycles = 0;   ///< 0 = server default (clamped)
    std::uint64_t fastForward = 0; ///< ISS fast-forward checkpoint
    unsigned jobs = 0;             ///< suite-op worker count
};

/**
 * Parse one request line. Throws SimError (with the JSON parser's
 * line/column context where applicable) on malformed JSON, unknown
 * ops, unknown keys — strict by design, this is the service edge.
 */
JobRequest parseJobRequest(const std::string &line);

/** One finished job, rendered and ready to emit. */
struct JobOutcome
{
    bool ok = false;
    std::string errorCode;    ///< when !ok
    std::string errorMessage; ///< when !ok
    /** The reply's "result" object as compact JSON (when ok). */
    std::string resultJson;
    /** The program ran and halted through its own success check. */
    bool passed = false;
};

/** JSON string escaping for reply fields (control chars as \uXXXX). */
std::string jsonQuote(const std::string &s);

/** Render the full reply line (no trailing newline). */
std::string formatReply(const std::string &id, std::uint64_t seq,
                        const JobOutcome &out);

/** Server tuning. */
struct ServeConfig
{
    /** Worker threads; 0 = workload::defaultSuiteJobs(). */
    unsigned workers = 0;
    /** Submission blocks when this many jobs are queued (backpressure
     *  instead of an unbounded queue or a nondeterministic error). */
    std::size_t maxQueue = 1024;
    /** Cycle cap applied to every job; a job's own max_cycles may
     *  lower but never raise it. The cap is the per-job timeout: it is
     *  deterministic where a wall-clock timer would not be. */
    std::uint64_t maxCycles = 200'000'000;
    /** Serve prepared images from the process-wide PreparedCache. */
    bool preparedCache = true;
};

/** Service counters (the "stats" reply and the --metrics file). */
struct ServeStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0; ///< replies with ok:false
    std::uint64_t failed = 0; ///< ok:true but passed:false
    std::uint64_t queuePeak = 0;
    std::uint64_t queueDepth = 0; ///< at sampling time
    std::uint64_t cacheHits = 0;  ///< PreparedCache, process-wide
    std::uint64_t cacheMisses = 0;
    double p50Ms = 0, p90Ms = 0, p99Ms = 0, maxMs = 0;
};

/** Export @p s into @p m under "<prefix>.". */
void collectMetrics(const ServeStats &s, trace::MetricsRegistry &m,
                    const std::string &prefix = "serve");

/**
 * The daemon core: a bounded job queue feeding a worker pool, with a
 * completion callback per job. Transport-agnostic — the stdio loop and
 * the in-process bench driver both sit on top of this class.
 */
class Server
{
  public:
    /** Called on job completion, from a worker thread. */
    using Completion =
        std::function<void(std::uint64_t seq, const JobOutcome &)>;

    explicit Server(const ServeConfig &config = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Enqueue @p req; returns its sequence number (submission order).
     * Blocks while the queue is at ServeConfig::maxQueue. @p done runs
     * on the worker that executed the job.
     */
    std::uint64_t submit(JobRequest req, Completion done);

    /** Wait until every submitted job has completed. */
    void drain();

    /** drain(), then stop and join the workers. Idempotent. */
    void shutdown();

    ServeStats stats() const;
    const ServeConfig &config() const { return config_; }

  private:
    struct Pending
    {
        std::uint64_t seq = 0;
        JobRequest req;
        Completion done;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();

    ServeConfig config_;
    mutable std::mutex mu_;
    std::condition_variable cvSubmit_;  ///< queue has room
    std::condition_variable cvWork_;    ///< queue has work
    std::condition_variable cvDrained_; ///< everything completed
    std::deque<Pending> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t inFlight_ = 0;
    ServeStats stats_;
    std::vector<double> latenciesMs_;
    std::uint64_t cacheHits0_ = 0; ///< PreparedCache baseline at start
    std::uint64_t cacheMisses0_ = 0;
};

/**
 * Execute one request synchronously (the worker body; tests call it
 * directly). Never throws: every failure becomes a structured
 * JobOutcome. @p server supplies the stats for Op::Stats and may be
 * null for the pure-compute ops.
 */
JobOutcome runJob(const JobRequest &req, const ServeConfig &config,
                  const Server *server = nullptr);

/**
 * The stdio transport: read one request per line from @p in, emit one
 * reply per line to @p out (flushed per line, submission order), drain
 * on EOF or {"op":"shutdown"}. Malformed lines get error replies;
 * nothing kills the daemon but a closed input. Returns the exit
 * status (0), and the final counters through @p statsOut when set.
 */
int runStdioServer(std::istream &in, std::ostream &out,
                   const ServeConfig &config,
                   ServeStats *statsOut = nullptr);

/** Load-generator options (mipsx-serve --bench). */
struct BenchOptions
{
    std::uint64_t jobs = 1000;  ///< total jobs to push through
    unsigned clients = 4;       ///< concurrent submitting threads
    std::string suite = "full"; ///< workloads the jobs draw from
    ServeConfig server{};
    std::string out = "BENCH_serve.json";
    bool quiet = false;
};

/**
 * Drive @p opts.jobs run-jobs through an in-process Server from
 * concurrent client threads, print a summary, and write throughput +
 * latency percentiles (serve.bench.*) to @p opts.out. Returns 0 when
 * every job passed.
 */
int runServeBench(const BenchOptions &opts);

} // namespace mipsx::serve

#endif // MIPSX_SERVE_SERVE_HH
