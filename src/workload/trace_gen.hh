/**
 * @file
 * Synthetic address-trace generator for the external-cache study.
 *
 * The paper notes its benchmarks "fit entirely" in the 64K-word Ecache
 * and that ATUM traces (Agarwal/Sites/Horowitz) were used to derive the
 * Ecache effects. Those traces are not available; this generator
 * produces address streams with controllable spatial/temporal locality
 * (sequential runs, a hot working set, and occasional far jumps) so the
 * Ecache's miss/size/penalty behaviour can be swept (experiment E11).
 */

#ifndef MIPSX_WORKLOAD_TRACE_GEN_HH
#define MIPSX_WORKLOAD_TRACE_GEN_HH

#include <cstdint>

#include "common/types.hh"

namespace mipsx::workload
{

/** Locality knobs for the synthetic stream. */
struct TraceConfig
{
    /** Size of the frequently revisited region, in words. */
    addr_t hotWords = 16 * 1024;
    /** Total footprint, in words (cold region beyond the hot set). */
    addr_t footprintWords = 1024 * 1024;
    /** Probability of continuing the current sequential run. */
    double sequential = 0.75;
    /** Probability (of the non-sequential part) of staying hot. */
    double hotBias = 0.9;
    /** Fraction of references that are writes. */
    double writeFraction = 0.16; // the paper-era write mix
    std::uint32_t seed = 12345;
};

/** One generated reference. */
struct TraceRef
{
    addr_t addr = 0;
    bool write = false;
};

/** The generator: call next() repeatedly. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceConfig &config = {});

    TraceRef next();

  private:
    std::uint32_t rnd();
    double uniform();

    TraceConfig config_;
    std::uint64_t state_;
    addr_t pos_ = 0;
};

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_TRACE_GEN_HH
