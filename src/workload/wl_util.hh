/**
 * @file
 * Shared helpers for generating workload assembly: data emission, the
 * self-check epilogue, and a deterministic pseudo-random source.
 */

#ifndef MIPSX_WORKLOAD_WL_UTIL_HH
#define MIPSX_WORKLOAD_WL_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_error.hh"
#include "common/types.hh"

namespace mipsx::workload
{

/** Deterministic LCG so expected values are reproducible. */
class Lcg
{
  public:
    explicit Lcg(std::uint32_t seed) : state_(seed) {}

    std::uint32_t
    next()
    {
        state_ = state_ * 1664525u + 1013904223u;
        return state_ >> 8;
    }

    /** Uniform in [0, n). */
    std::uint32_t next(std::uint32_t n) { return next() % n; }

  private:
    std::uint32_t state_;
};

/** Emit "label: .word v0, v1, ..." lines (8 values per line). */
inline std::string
wordData(const std::string &label, const std::vector<std::int64_t> &values)
{
    std::string s = label + ":";
    if (values.empty())
        return s + " .space 0\n";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i % 8 == 0)
            s += (i == 0 ? " .word " : "\n        .word ");
        else
            s += ", ";
        s += strformat("%lld", static_cast<long long>(values[i]));
    }
    return s + "\n";
}

/** Emit raw 32-bit patterns (for float images). */
inline std::string
bitsData(const std::string &label, const std::vector<word_t> &values)
{
    std::string s = label + ":";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i % 8 == 0)
            s += (i == 0 ? " .word " : "\n        .word ");
        else
            s += ", ";
        s += strformat("0x%08x", values[i]);
    }
    return s + "\n";
}

/**
 * Self-check epilogue: compare @p n words at @p got against @p want;
 * halt on success, fail on the first mismatch. Clobbers r24..r28.
 */
inline std::string
checkRegion(const std::string &got, const std::string &want, unsigned n)
{
    return strformat(R"(
check:  la   r26, %s
        la   r27, %s
        addi r28, r0, %u
ckloop: ld   r24, 0(r26)
        ld   r25, 0(r27)
        bne  r24, r25, ckbad
        addi r26, r26, 1
        addi r27, r27, 1
        addi r28, r28, -1
        bnz  r28, ckloop
        halt
ckbad:  fail
)", got.c_str(), want.c_str(), n);
}

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_WL_UTIL_HH
