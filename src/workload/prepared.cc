#include "workload/prepared.hh"

#include <cstdio>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"

namespace mipsx::workload
{

PreparedPtr
prepareWorkload(const Workload &w, const reorg::ReorgConfig &rc,
                bool useProfiles)
{
    auto prep = std::make_shared<PreparedWorkload>();
    prep->name = w.name;
    reorg::ReorgConfig cfg = rc;
    if (useProfiles) {
        cfg.prediction = reorg::Prediction::Profile;
        cfg.profile = collectProfile(w);
    }
    const auto prog = assembler::assemble(w.source, w.name + ".s");
    prep->image = reorg::reorganize(prog, cfg, &prep->reorgStats);
    prep->decoded = memory::DecodedImage::snapshotProgram(prep->image);
    return prep;
}

std::uint64_t
sourceFingerprint(const std::string &source)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : source) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
reorgFingerprint(const reorg::ReorgConfig &rc)
{
    std::string fp;
    char buf[64];
    std::snprintf(buf, sizeof buf, "s%u/d%u/l%u/f%u/p%u/k%u/q%u/o%u",
                  static_cast<unsigned>(rc.scheme), rc.slots,
                  rc.fillLoadDelay ? 1u : 0u, rc.paperFaithful ? 1u : 0u,
                  static_cast<unsigned>(rc.prediction),
                  static_cast<unsigned>(rc.scheduler),
                  static_cast<unsigned>(rc.priority), rc.optimalMaxNodes);
    fp = buf;
    for (const auto &[addr, frac] : rc.profile) {
        // Hex-float so the serialization is exact and locale-free.
        std::snprintf(buf, sizeof buf, "/%x:%a", addr, frac);
        fp += buf;
    }
    return fp;
}

namespace
{

std::string
cacheKey(const Workload &w, const reorg::ReorgConfig &rc,
         bool useProfiles)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "|%016llx|%zu|%c|",
                  static_cast<unsigned long long>(
                      sourceFingerprint(w.source)),
                  w.source.size(), useProfiles ? 'P' : '-');
    return w.name + buf + reorgFingerprint(rc);
}

} // namespace

PreparedPtr
PreparedCache::get(const Workload &w, const reorg::ReorgConfig &rc,
                   bool useProfiles)
{
    const std::string key = cacheKey(w, rc, useProfiles);
    std::promise<PreparedPtr> promise;
    std::shared_future<PreparedPtr> fut;
    bool builder = false;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            fut = it->second;
        } else {
            ++misses_;
            fut = promise.get_future().share();
            entries_.emplace(key, fut);
            builder = true;
        }
    }
    if (builder) {
        // Build outside the lock: other keys prepare concurrently, and
        // same-key requesters block on the future, not the mutex.
        try {
            promise.set_value(prepareWorkload(w, rc, useProfiles));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return fut.get();
}

void
PreparedCache::clear()
{
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

PreparedCacheStats
PreparedCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, entries_.size()};
}

PreparedCache &
PreparedCache::global()
{
    static PreparedCache cache;
    return cache;
}

} // namespace mipsx::workload
