/**
 * @file
 * The Lisp-family workloads: cons-cell list and tree processing. The
 * paper attributes Lisp's higher no-op fraction (18.3% vs 15.6%) to "a
 * larger number of jumps and many load-load interlocks caused by chasing
 * car and cdr chains" — these programs are built around exactly those
 * patterns. A cons cell is two consecutive words: [car, cdr]; nil is 0.
 */

#include "workload/workload.hh"

#include <map>

#include "assembler/assembler.hh"
#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

/** Lay out a cons list of @p values in a data image; returns the image
 *  and the address-offsets used. Cell i is at heap + 2*i. */
std::vector<std::int64_t>
consList(const std::vector<std::int64_t> &values, addr_t heap_base)
{
    std::vector<std::int64_t> image;
    for (std::size_t i = 0; i < values.size(); ++i) {
        image.push_back(values[i]); // car
        const bool last = i + 1 == values.size();
        image.push_back(
            last ? 0
                 : static_cast<std::int64_t>(heap_base + 2 * (i + 1)));
    }
    return image;
}

Workload
listSum()
{
    constexpr unsigned n = 80;
    Lcg rng(41);
    std::vector<std::int64_t> values;
    std::int64_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        values.push_back(static_cast<std::int32_t>(rng.next(1000)) - 500);
        sum += values.back();
    }
    const addr_t heap = assembler::defaultDataBase;
    const auto image = consList(values, heap);

    Workload w;
    w.name = "listsum";
    w.family = Family::Lisp;
    w.description = "sum the cars of an 80-cell list (cdr chasing)";
    // The cdr chase is the canonical load-load interlock: the pointer
    // loaded by `ld r1, 1(r1)` feeds the very next iteration's loads.
    w.source = "        .data\n" + wordData("heap", image) +
        strformat(R"(
result: .space 1
exp:    .word %lld
        .text
_start: la   r1, heap         ; p
        add  r2, r0, r0       ; sum
sloop:  ld   r3, 0(r1)        ; car
        ld   r1, 1(r1)        ; p = cdr  (load feeds next load)
        add  r2, r2, r3
        bnz  r1, sloop
        st   r2, result
)", static_cast<long long>(sum)) + checkRegion("result", "exp", 1);
    return w;
}

Workload
listReverse()
{
    constexpr unsigned n = 50;
    Lcg rng(43);
    std::vector<std::int64_t> values;
    for (unsigned i = 0; i < n; ++i)
        values.push_back(rng.next(100000));
    const addr_t heap = assembler::defaultDataBase;
    const auto image = consList(values, heap);
    std::vector<std::int64_t> reversed(values.rbegin(), values.rend());

    Workload w;
    w.name = "listrev";
    w.family = Family::Lisp;
    w.description = "destructively reverse a 50-cell list, then walk it";
    w.source = "        .data\n" + wordData("heap", image) + strformat(R"(
out:    .space %u
)", n) + wordData("exp", reversed) + R"(
        .text
        ; reverse: prev=nil; while p: next=cdr(p); cdr(p)=prev;
        ;          prev=p; p=next
_start: la   r1, heap         ; p
        add  r2, r0, r0       ; prev
rloop:  bz   r1, rdone
        ld   r3, 1(r1)        ; next = cdr
        st   r2, 1(r1)        ; cdr = prev
        mov  r2, r1
        mov  r1, r3
        b    rloop
rdone:  la   r4, out          ; walk the reversed list (head = prev)
wloop:  bz   r2, check
        ld   r5, 0(r2)        ; car
        ld   r2, 1(r2)        ; cdr chase
        st   r5, 0(r4)
        addi r4, r4, 1
        b    wloop
)" + checkRegion("out", "exp", n);
    return w;
}

Workload
treeSort()
{
    constexpr unsigned n = 32;
    Lcg rng(47);
    std::vector<std::int64_t> keys;
    for (unsigned i = 0; i < n; ++i)
        keys.push_back(static_cast<std::int32_t>(rng.next(100000)) -
                       50000);
    auto sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    // Duplicate keys go left in both the model and the assembly.

    Workload w;
    w.name = "treesort";
    w.family = Family::Lisp;
    w.description =
        "binary-tree insertion of 32 keys + recursive in-order walk";
    // Node layout: [key, left, right], allocated by a bump pointer.
    w.source = "        .data\n" + wordData("keys", keys) + strformat(R"(
nodes:  .space %u
out:    .space %u
outp:   .space 1
)", 3 * n, n) + wordData("exp", sorted) + strformat(R"(
        .text
_start: la   r10, nodes       ; bump allocator
        la   r1, keys
        ld   r2, 0(r1)
        call alloc            ; root node in r3
        mov  r11, r3          ; root
        addi r12, r0, %u      ; remaining keys
        addi r1, r1, 1
insl:   ld   r2, 0(r1)
        mov  r4, r11          ; cursor
find:   ld   r5, 0(r4)        ; node key
        blt  r5, r2, goright
        ld   r6, 1(r4)        ; left child
        bz   r6, putleft
        mov  r4, r6
        b    find
goright: ld  r6, 2(r4)
        bz   r6, putright
        mov  r4, r6
        b    find
putleft: call alloc
        st   r3, 1(r4)
        b    inserted
putright: call alloc
        st   r3, 2(r4)
inserted:
        addi r1, r1, 1
        addi r12, r12, -1
        bnz  r12, insl
        ; in-order traversal
        la   r13, out
        st   r13, outp
        mov  r2, r11
        call walk
        b    check
        ; alloc: new node r3 with key r2, children nil
alloc:  mov  r3, r10
        st   r2, 0(r10)
        st   r0, 1(r10)
        st   r0, 2(r10)
        addi r10, r10, 3
        ret
        ; walk(node = r2): recursive in-order
walk:   bz   r2, wret
        addi sp, sp, -2
        st   ra, 0(sp)
        st   r2, 1(sp)
        ld   r2, 1(r2)        ; left
        call walk
        ld   r2, 1(sp)
        ld   r5, 0(r2)        ; key
        ld   r6, outp
        st   r5, 0(r6)
        addi r6, r6, 1
        st   r6, outp
        ld   r2, 2(r2)        ; right
        call walk
        ld   ra, 0(sp)
        addi sp, sp, 2
wret:   ret
)", n - 1) + checkRegion("out", "exp", n);
    return w;
}

Workload
assocLookup()
{
    constexpr unsigned entries = 24;
    constexpr unsigned queries = 100;
    Lcg rng(53);
    // Association list: [key, value, next]. Keys 0..23 shuffled-ish.
    std::vector<std::int64_t> keys, vals;
    for (unsigned i = 0; i < entries; ++i) {
        keys.push_back((i * 7 + 3) % entries);
        vals.push_back(rng.next(10000));
    }
    const addr_t heap = assembler::defaultDataBase;
    std::vector<std::int64_t> image;
    for (unsigned i = 0; i < entries; ++i) {
        image.push_back(keys[i]);
        image.push_back(vals[i]);
        image.push_back(i + 1 == entries
                            ? 0
                            : static_cast<std::int64_t>(heap + 3 * (i + 1)));
    }
    std::vector<std::int64_t> qs;
    std::int64_t expected = 0;
    for (unsigned q = 0; q < queries; ++q) {
        const std::int64_t key = rng.next(entries + 4); // a few misses
        qs.push_back(key);
        std::int64_t v = -1;
        for (unsigned i = 0; i < entries; ++i) {
            if (keys[i] == key) {
                v = vals[i];
                break;
            }
        }
        expected += v;
    }

    Workload w;
    w.name = "assoc";
    w.family = Family::Lisp;
    w.description = "100 association-list lookups over 24 entries";
    w.source = "        .data\n" + wordData("heap", image) +
        wordData("qs", qs) + strformat(R"(
result: .space 1
exp:    .word %lld
        .text
_start: la   r1, qs
        addi r2, r0, %u
        add  r3, r0, r0       ; sum
qloop:  ld   r4, 0(r1)        ; key
        la   r5, heap         ; p
aloop:  ld   r6, 0(r5)        ; entry key
        bne  r6, r4, anext
        ld   r7, 1(r5)        ; hit: value
        b    adone
anext:  ld   r5, 2(r5)        ; p = next (pointer chase)
        bnz  r5, aloop
        addi r7, r0, -1       ; miss
adone:  add  r3, r3, r7
        addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, qloop
        st   r3, result
)", static_cast<long long>(expected), queries) +
        checkRegion("result", "exp", 1);
    return w;
}

Workload
mapcar()
{
    constexpr unsigned n = 40;
    Lcg rng(59);
    std::vector<std::int64_t> values;
    for (unsigned i = 0; i < n; ++i)
        values.push_back(static_cast<std::int32_t>(rng.next(2000)) - 1000);
    const addr_t heap = assembler::defaultDataBase;
    const auto image = consList(values, heap);
    std::vector<std::int64_t> expected;
    for (auto v : values)
        expected.push_back(static_cast<std::int32_t>(
            static_cast<word_t>(v) * 2 + 1));

    Workload w;
    w.name = "mapcar";
    w.family = Family::Lisp;
    w.description =
        "map a function (via jalr) over a 40-cell list in place";
    w.source = "        .data\n" + wordData("heap", image) + strformat(R"(
out:    .space %u
fnptr:  .word fn              ; code pointer lives in data (relocated)
)", n) + wordData("exp", expected) + R"(
        .text
_start: ld   r9, fnptr        ; the function pointer
        la   r1, heap
        la   r4, out
maploop:
        bz   r1, check
        ld   r2, 0(r1)        ; car
        jalr ra, 0(r9)        ; r2 = fn(r2)
        st   r2, 0(r1)        ; set-car!
        st   r2, 0(r4)
        ld   r1, 1(r1)        ; cdr chase
        addi r4, r4, 1
        b    maploop
fn:     add  r2, r2, r2       ; 2x + 1
        addi r2, r2, 1
        ret
)" + checkRegion("out", "exp", n);
    return w;
}

Workload
nrev()
{
    // The classic Lisp benchmark: naive reverse via append (quadratic
    // pointer work), on a 24-cell list, with a free-list allocator.
    constexpr unsigned n = 24;
    std::vector<std::int64_t> values;
    for (unsigned i = 0; i < n; ++i)
        values.push_back(i + 1);
    const addr_t heap = assembler::defaultDataBase;
    const auto image = consList(values, heap);
    std::vector<std::int64_t> expected(values.rbegin(), values.rend());

    Workload w;
    w.name = "nrev";
    w.family = Family::Lisp;
    w.description = "naive reverse (append-based, quadratic) of 24 cells";
    w.source = "        .data\n" + wordData("heap", image) + strformat(R"(
cells:  .space %u
freep:  .space 1
out:    .space %u
)", 4 * n * n, n) + wordData("exp", expected) + R"(
        .text
_start: la   r2, cells
        st   r2, freep
        la   r2, heap
        call nrev
        mov  r2, r4           ; walk the result into out
        la   r6, out
wloop:  bz   r2, check
        ld   r7, 0(r2)
        ld   r2, 1(r2)
        st   r7, 0(r6)
        addi r6, r6, 1
        b    wloop
        ; cons(car=r2, cdr=r3) -> r4
cons:   ld   r4, freep
        st   r2, 0(r4)
        st   r3, 1(r4)
        addi r5, r4, 2
        st   r5, freep
        ret
        ; append(a=r2, b=r3) -> r4
append: bnz  r2, app1
        mov  r4, r3
        ret
app1:   addi sp, sp, -2
        st   ra, 0(sp)
        st   r2, 1(sp)
        ld   r2, 1(r2)
        call append
        ld   r2, 1(sp)
        ld   r2, 0(r2)
        mov  r3, r4
        call cons
        ld   ra, 0(sp)
        addi sp, sp, 2
        ret
        ; nrev(l=r2) -> r4
nrev:   bnz  r2, nr1
        add  r4, r0, r0
        ret
nr1:    addi sp, sp, -3
        st   ra, 0(sp)
        st   r2, 1(sp)
        ld   r2, 1(r2)
        call nrev             ; r4 = nrev(cdr l)
        st   r4, 2(sp)
        ld   r2, 1(sp)
        ld   r2, 0(r2)
        add  r3, r0, r0
        call cons             ; r4 = list(car l)
        mov  r3, r4
        ld   r2, 2(sp)        ; nrev(cdr l)
        call append
        ld   ra, 0(sp)
        addi sp, sp, 3
        ret
)" + checkRegion("out", "exp", n);
    return w;
}

Workload
tak()
{
    // The classic Gabriel benchmark: triple recursion, almost nothing
    // but calls, compares and jumps — the Lisp profile distilled.
    const auto takRef = [](auto &&self, int x, int y, int z) -> int {
        if (!(y < x))
            return z;
        return self(self, self(self, x - 1, y, z),
                    self(self, y - 1, z, x), self(self, z - 1, x, y));
    };
    const int expected = takRef(takRef, 12, 8, 4);

    Workload w;
    w.name = "tak";
    w.family = Family::Lisp;
    w.description = "tak(12, 8, 4): triple recursion, call/branch heavy";
    w.source = strformat(R"(
        .data
result: .space 1
exp:    .word %d
        .text
_start: addi r2, r0, 12
        addi r3, r0, 8
        addi r4, r0, 4
        call tak
        st   r2, result
        b    check
        ; tak(x=r2, y=r3, z=r4) -> r2
tak:    blt  r3, r2, takrec
        mov  r2, r4           ; not y < x: return z
        ret
takrec: addi sp, sp, -5
        st   ra, 0(sp)
        st   r2, 1(sp)        ; x
        st   r3, 2(sp)        ; y
        st   r4, 3(sp)        ; z
        addi r2, r2, -1       ; tak(x-1, y, z)
        call tak
        st   r2, 4(sp)        ; a
        ld   r3, 3(sp)        ; z
        ld   r2, 2(sp)        ; y
        ld   r4, 1(sp)        ; x
        addi r2, r2, -1       ; tak(y-1, z, x)
        call tak
        mov  r5, r2           ; b (caller-saved by convention below)
        ld   r2, 3(sp)        ; z
        ld   r3, 1(sp)        ; x
        ld   r4, 2(sp)        ; y
        addi r2, r2, -1       ; tak(z-1, x, y)
        st   r5, 2(sp)        ; spill b over the recursive call
        call tak
        mov  r4, r2           ; c
        ld   r2, 4(sp)        ; a
        ld   r3, 2(sp)        ; b
        call tak              ; tak(a, b, c)
        ld   ra, 0(sp)
        addi sp, sp, 5
        ret
)", expected) + checkRegion("result", "exp", 1);
    return w;
}

} // namespace

std::vector<Workload>
lispWorkloads()
{
    return {listSum(), listReverse(), treeSort(), assocLookup(), mapcar(),
            nrev(),    tak()};
}

} // namespace mipsx::workload
