/**
 * @file
 * Large-instruction-footprint workloads.
 *
 * The paper's benchmarks had static code sizes of 50-270 KBytes — vastly
 * bigger than the 512-word on-chip instruction cache — which is why its
 * miss ratios (>20% single-fetch, ~12% with the double fetch) are
 * capacity-driven. The small algorithmic workloads fit in the cache, so
 * this generator produces programs with the structure that yields such
 * ratios: a *hot core* of procedures called every iteration (it stays
 * cache-resident) plus *cold regions*, groups of procedures visited in
 * rotation so each visit refetches them — the phase behaviour of large
 * looping programs. The cold fraction of the dynamic instruction stream
 * sets the miss ratio. Every generated operation is mirrored in C++,
 * making the programs self-checking like the rest of the suite.
 */

#include "workload/workload.hh"

#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

/** One generated straight-line operation on the accumulator r2. */
struct Op
{
    unsigned kind;
    std::int32_t a;
    unsigned b;
};

/** Emit one function body; returns its op list for mirroring. */
std::vector<Op>
genFunc(std::string &text, Lcg &rng, unsigned &uniq, unsigned want)
{
    std::vector<Op> ops;
    unsigned emitted = 0;
    while (emitted < want) {
        const unsigned kind = rng.next(6);
        Op op{kind, 0, 0};
        switch (kind) {
          case 0:
            op.a = static_cast<std::int32_t>(rng.next(60000)) - 30000;
            text += strformat("        addi r2, r2, %d\n", op.a);
            emitted += 1;
            break;
          case 1:
            op.b = rng.next();
            text += strformat("        li   r3, 0x%08x\n", op.b);
            text += "        xor  r2, r2, r3\n";
            emitted += 3;
            break;
          case 2:
            op.b = 1 + rng.next(7);
            text += strformat("        sll  r3, r2, %u\n", op.b);
            text += "        add  r2, r2, r3\n";
            emitted += 2;
            break;
          case 3:
            op.b = 1 + rng.next(15);
            text += strformat("        srl  r3, r2, %u\n", op.b);
            text += "        xor  r2, r2, r3\n";
            emitted += 2;
            break;
          case 4:
            op.a = static_cast<std::int32_t>(rng.next(2000)) - 1000;
            text += strformat("        bge  r2, r0, bsk%u\n", uniq);
            text += strformat("        addi r2, r2, %d\n", op.a);
            text += strformat("bsk%u:\n", uniq);
            ++uniq;
            emitted += 2;
            break;
          default:
            op.a = static_cast<std::int32_t>(rng.next(100));
            text += strformat("        addi r4, r2, %d\n", op.a);
            text += "        xor  r5, r4, r2\n";
            emitted += 2;
            break;
        }
        ops.push_back(op);
    }
    return ops;
}

void
applyOps(word_t &v, const std::vector<Op> &ops)
{
    for (const auto &op : ops) {
        switch (op.kind) {
          case 0:
            v += static_cast<word_t>(op.a);
            break;
          case 1:
            v ^= op.b;
            break;
          case 2:
            v += v << op.b;
            break;
          case 3:
            v ^= v >> op.b;
            break;
          case 4:
            if (static_cast<sword_t>(v) < 0)
                v += static_cast<word_t>(op.a);
            break;
          default:
            break;
        }
    }
}

/**
 * Build one big-code workload.
 *
 * @param hot number of hot procedures (called every iteration)
 * @param cold_groups number of rotating cold groups (power of two)
 * @param cold_per number of procedures per cold group
 * @param iters main-loop iterations
 */
Workload
bigCode(const char *name, unsigned hot, unsigned cold_groups,
        unsigned cold_per, unsigned iters, std::uint32_t seed)
{
    Lcg rng(seed);
    unsigned uniq = 0;

    const unsigned total = hot + cold_groups * cold_per;
    std::string funcsText;
    std::vector<std::vector<Op>> funcOps(total);
    for (unsigned f = 0; f < total; ++f) {
        funcsText += strformat("func%u:\n", f);
        funcOps[f] = genFunc(funcsText, rng, uniq, 30 + rng.next(40));
        funcsText += "        ret\n";
    }
    // Function numbering: 0..hot-1 are hot; group g owns
    // hot + g*cold_per .. hot + (g+1)*cold_per - 1.

    // Mirror.
    word_t v = 0x1234u;
    for (unsigned iter = iters; iter >= 1; --iter) {
        for (unsigned f = 0; f < hot; ++f)
            applyOps(v, funcOps[f]);
        const unsigned g = iter & (cold_groups - 1);
        for (unsigned k = 0; k < cold_per; ++k)
            applyOps(v, funcOps[hot + g * cold_per + k]);
    }

    // Main loop: hot calls, then dispatch on iter mod cold_groups.
    std::string mainText = strformat(R"(
_start: li   r2, 0x1234
        addi r23, r0, %u      ; cold-group mask
        addi r20, r0, %u      ; iterations
mainloop:
)", cold_groups - 1, iters);
    for (unsigned f = 0; f < hot; ++f)
        mainText += strformat("        call func%u\n", f);
    mainText += "        and  r3, r20, r23\n";
    for (unsigned g = 0; g + 1 < cold_groups; ++g) {
        mainText += strformat("        addi r5, r0, %u\n", g);
        mainText += strformat("        beq  r3, r5, grp%u\n", g);
    }
    mainText += strformat("        b    grp%u\n", cold_groups - 1);
    for (unsigned g = 0; g < cold_groups; ++g) {
        mainText += strformat("grp%u:\n", g);
        for (unsigned k = 0; k < cold_per; ++k)
            mainText +=
                strformat("        call func%u\n", hot + g * cold_per + k);
        if (g + 1 < cold_groups)
            mainText += "        b    joinp\n";
    }
    mainText += R"(joinp:
        addi r20, r20, -1
        bnz  r20, mainloop
        st   r2, result
)";

    Workload w;
    w.name = name;
    w.family = Family::Pascal;
    w.description = strformat(
        "generated big code: %u hot + %ux%u rotating cold procedures",
        hot, cold_groups, cold_per);
    w.source = strformat(R"(
        .data
result: .space 1
exp:    .word %lld
        .text
)", static_cast<long long>(static_cast<std::int32_t>(v))) +
        funcsText + mainText + checkRegion("result", "exp", 1);
    return w;
}

} // namespace

std::vector<Workload>
bigCodeWorkloads()
{
    // Hot cores that stay resident plus rotating cold regions; the cold
    // fraction of the instruction stream sets the capacity-miss level,
    // spanning light, medium and heavy pressure (the paper's large
    // benchmarks averaged ~12% with the double fetch).
    return {
        bigCode("bigcode1", 5, 4, 1, 48, 101),
        bigCode("bigcode2", 4, 4, 1, 40, 202),
        bigCode("bigcode3", 3, 4, 3, 32, 303),
    };
}

} // namespace mipsx::workload
