/**
 * @file
 * Floating-point (coprocessor) workloads. These drive the address-line
 * coprocessor interface hard — ldf/stf direct memory access plus aluc
 * compute cycles — matching the "floating point intensive code" whose
 * traces forced the paper to re-examine the non-cached-coprocessor
 * scheme. Expected results are computed here with the same single-
 * precision operations in the same order as the FPU model executes, so
 * the checks compare bit patterns exactly.
 */

#include "workload/workload.hh"

#include <cstring>

#include "coproc/fpu.hh"
#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

word_t
bitsOf(float f)
{
    word_t w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

float
floatOf(word_t w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

/** Deterministic "nice" floats that exercise varied exponents. */
std::vector<word_t>
floatImage(Lcg &rng, unsigned n)
{
    std::vector<word_t> out;
    for (unsigned i = 0; i < n; ++i) {
        const float v =
            (static_cast<float>(rng.next(2000)) - 1000.0f) / 16.0f;
        out.push_back(bitsOf(v));
    }
    return out;
}

std::string
alucLine(coproc::FpuOp op, unsigned fd, unsigned fs)
{
    return strformat("        aluc c1, 0x%x\n",
                     coproc::fpuAluOp(op, fd, fs));
}

Workload
saxpy()
{
    constexpr unsigned n = 48;
    Lcg rng(61);
    const auto x = floatImage(rng, n);
    auto y = floatImage(rng, n);
    const float a = 2.5f;
    std::vector<word_t> expected;
    for (unsigned i = 0; i < n; ++i) {
        const float prod = floatOf(x[i]) * a;
        const float sum = prod + floatOf(y[i]);
        expected.push_back(bitsOf(sum));
    }

    Workload w;
    w.name = "saxpy";
    w.family = Family::Fp;
    w.description = "y = a*x + y over 48 singles via ldf/stf + aluc";
    w.source = "        .data\n" + bitsData("vx", x) + bitsData("vy", y) +
        strformat("va:     .word 0x%08x\n", bitsOf(a)) +
        bitsData("exp", expected) + strformat(R"(
        .text
_start: la   r1, vx
        la   r2, vy
        addi r3, r0, %u
        ldf  f1, va           ; a stays resident in f1
sloop:  ldf  f2, 0(r1)        ; x[i]
)", n) + alucLine(coproc::FpuOp::Fmul, 2, 1) /* f2 *= a */ + R"(
        ldf  f3, 0(r2)        ; y[i]
)" + alucLine(coproc::FpuOp::Fadd, 3, 2) /* f3 += f2 */ + R"(
        stf  f3, 0(r2)        ; y[i] = result
        addi r1, r1, 1
        addi r2, r2, 1
        addi r3, r3, -1
        bnz  r3, sloop
)" + checkRegion("vy", "exp", n);
    return w;
}

Workload
dotProduct()
{
    constexpr unsigned n = 64;
    Lcg rng(67);
    const auto x = floatImage(rng, n);
    const auto y = floatImage(rng, n);
    float acc = 0.0f;
    for (unsigned i = 0; i < n; ++i) {
        const float prod = floatOf(x[i]) * floatOf(y[i]);
        acc = acc + prod;
    }

    Workload w;
    w.name = "dot";
    w.family = Family::Fp;
    w.description = "dot product of two 64-element single vectors";
    w.source = "        .data\n" + bitsData("vx", x) + bitsData("vy", y) +
        strformat(R"(
result: .space 1
exp:    .word 0x%08x
zero:   .word 0
        .text
_start: la   r1, vx
        la   r2, vy
        addi r3, r0, %u
        ldf  f4, zero         ; acc = 0.0
dloop:  ldf  f2, 0(r1)
        ldf  f3, 0(r2)
)", acc == 0.0f ? 0u : bitsOf(acc), n) +
        alucLine(coproc::FpuOp::Fmul, 2, 3) /* f2 *= f3 */ +
        alucLine(coproc::FpuOp::Fadd, 4, 2) /* acc += f2 */ + R"(
        addi r1, r1, 1
        addi r2, r2, 1
        addi r3, r3, -1
        bnz  r3, dloop
        stf  f4, result
)" + checkRegion("result", "exp", 1);
    return w;
}

Workload
horner()
{
    constexpr unsigned degree = 8;
    constexpr unsigned points = 16;
    Lcg rng(71);
    const auto coeffs = floatImage(rng, degree + 1);
    const auto xs = floatImage(rng, points);
    std::vector<word_t> expected;
    for (unsigned p = 0; p < points; ++p) {
        float acc = floatOf(coeffs[0]);
        for (unsigned j = 1; j <= degree; ++j) {
            acc = acc * floatOf(xs[p]);
            acc = acc + floatOf(coeffs[j]);
        }
        expected.push_back(bitsOf(acc));
    }

    Workload w;
    w.name = "horner";
    w.family = Family::Fp;
    w.description =
        "degree-8 polynomial (Horner) at 16 points, results stored";
    w.source = "        .data\n" + bitsData("cf", coeffs) +
        bitsData("px", xs) + strformat(R"(
out:    .space %u
)", points) + bitsData("exp", expected) + strformat(R"(
        .text
_start: la   r1, px
        la   r4, out
        addi r5, r0, %u       ; points
ploop:  ldf  f1, 0(r1)        ; x
        ldf  f2, cf           ; acc = c[0]
        la   r2, cf+1
        addi r3, r0, %u       ; degree
hloop:  ldf  f3, 0(r2)
)", points, degree) + alucLine(coproc::FpuOp::Fmul, 2, 1) +
        alucLine(coproc::FpuOp::Fadd, 2, 3) + R"(
        addi r2, r2, 1
        addi r3, r3, -1
        bnz  r3, hloop
        stf  f2, 0(r4)
        addi r1, r1, 1
        addi r4, r4, 1
        addi r5, r5, -1
        bnz  r5, ploop
)" + checkRegion("out", "exp", points);
    return w;
}

Workload
fpCompare()
{
    // Exercise the final branch-on-coprocessor idiom: read the FPU
    // status register into a CPU register with movfrc and branch on it
    // (the paper removed coprocessor branch instructions in favour of
    // exactly this sequence).
    constexpr unsigned n = 40;
    Lcg rng(73);
    const auto x = floatImage(rng, n);
    unsigned count = 0;
    for (unsigned i = 0; i < n; ++i)
        if (floatOf(x[i]) < 0.0f)
            ++count;

    Workload w;
    w.name = "fpcompare";
    w.family = Family::Fp;
    w.description =
        "count negative singles via fpu compare + status read + branch";
    w.source = "        .data\n" + bitsData("vx", x) + strformat(R"(
result: .space 1
exp:    .word %u
zero:   .word 0
        .text
_start: la   r1, vx
        addi r2, r0, %u
        add  r3, r0, r0       ; count
        ldf  f2, zero
cloop:  ldf  f1, 0(r1)
)", count, n) + alucLine(coproc::FpuOp::CmpLt, 1, 2) /* f1 < 0.0 */ +
        strformat(R"(
        movfrc r4, c1, 0x%x   ; read the status register
        bz   r4, notneg
        addi r3, r3, 1
notneg: addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, cloop
        st   r3, result
)", coproc::fpuStatusOp()) + checkRegion("result", "exp", 1);
    return w;
}

} // namespace

std::vector<Workload>
fpWorkloads()
{
    return {saxpy(), dotProduct(), horner(), fpCompare()};
}

} // namespace mipsx::workload
