#include "workload/trace_gen.hh"

namespace mipsx::workload
{

TraceGenerator::TraceGenerator(const TraceConfig &config)
    : config_(config), state_(config.seed | 1u)
{
    pos_ = 0;
}

std::uint32_t
TraceGenerator::rnd()
{
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return static_cast<std::uint32_t>((state_ * 0x2545f4914f6cdd1dull) >>
                                      32);
}

double
TraceGenerator::uniform()
{
    return rnd() / 4294967296.0;
}

TraceRef
TraceGenerator::next()
{
    if (uniform() < config_.sequential) {
        ++pos_;
    } else if (uniform() < config_.hotBias) {
        pos_ = rnd() % config_.hotWords;
    } else {
        pos_ = rnd() % config_.footprintWords;
    }
    if (pos_ >= config_.footprintWords)
        pos_ = 0;

    TraceRef r;
    r.addr = pos_;
    r.write = uniform() < config_.writeFraction;
    return r;
}

} // namespace mipsx::workload
