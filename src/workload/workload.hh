/**
 * @file
 * The benchmark suite standing in for the paper's workloads.
 *
 * The paper evaluates MIPS-X with "large Pascal and Lisp benchmarks" plus
 * floating-point-intensive traces. Those programs (and the Stanford
 * compiler that produced them) are not available, so the suite provides
 * hand-written MX32 assembly programs with the same structural character:
 *
 *  - Pascal family: structured imperative code — sorts, matrix algebra,
 *    sieves, searching, hashing, recursion — moderate basic blocks and
 *    compare-driven branches;
 *  - Lisp family: list and tree processing — car/cdr pointer chasing
 *    (load-load interlock chains), recursion, and many jumps, the
 *    properties the paper blames for Lisp's higher no-op fraction;
 *  - FP family: coprocessor-1 workloads (saxpy, dot product, Horner
 *    polynomials) exercising ldf/stf and the address-line interface.
 *
 * Every program is *self-checking*: it computes its result, compares it
 * against expected values baked into the image, and executes `halt` on
 * success or `fail` on mismatch. A workload therefore validates itself on
 * every machine model it runs on.
 */

#ifndef MIPSX_WORKLOAD_WORKLOAD_HH
#define MIPSX_WORKLOAD_WORKLOAD_HH

#include <map>
#include <string>
#include <vector>

#include "core/cpu.hh"
#include "reorg/scheduler.hh"
#include "sim/machine.hh"

namespace mipsx::workload
{

/** Which paper workload family a benchmark models. */
enum class Family : std::uint8_t
{
    Pascal,
    Lisp,
    Fp,
};

const char *familyName(Family f);

/** One self-checking benchmark program. */
struct Workload
{
    std::string name;
    Family family = Family::Pascal;
    std::string description;
    std::string source; ///< sequential-semantics MX32 assembly
    /**
     * Expected dynamic instruction count, 0 when unknown. The scaled
     * generators compute it from their loop structure; the interval
     * engine uses it to place interval boundaries without a counting
     * pass. A hint, not a contract: it only skews interval sizes,
     * never results.
     */
    std::uint64_t dynamicEstimate = 0;
    /**
     * Dynamic-instruction indices where the program's behaviour shifts
     * (the end of an initialization loop, say). Forwarded to
     * IntervalConfig::phases so sampled intervals never extrapolate
     * one phase's timing across another. Hints, like dynamicEstimate.
     */
    std::vector<std::uint64_t> dynamicPhases;
};

/** The Pascal-like programs. */
std::vector<Workload> pascalWorkloads();
/** The Lisp-like programs. */
std::vector<Workload> lispWorkloads();
/** The floating-point (coprocessor) programs. */
std::vector<Workload> fpWorkloads();
/**
 * Generated large-text programs (several times the I-cache size),
 * standing in for the paper's 50-270 KByte benchmarks; these drive the
 * instruction-cache studies.
 */
std::vector<Workload> bigCodeWorkloads();
/** Everything, big-code programs included. */
std::vector<Workload> fullSuite();

/**
 * Shared-memory multiprocessor workloads (require the MultiMachine's
 * r25/r26 id/count convention; not part of fullSuite).
 */
std::vector<Workload> parallelWorkloads();

/**
 * Scalable cache-thrashing workloads (not part of fullSuite — they run
 * for millions of dynamic instructions, the regime the parallel
 * interval engine targets). Data footprints exceed the external cache,
 * so the miss behaviour is capacity-driven like the paper's large
 * benchmarks. Every workload fills in Workload::dynamicEstimate.
 */
std::vector<Workload> scaledWorkloads();

/**
 * The individual scaled generators, for custom sizes (bench_bigwork
 * builds a multi-million-instruction instance). @p footprint_words is
 * rounded up to a power of two. All are self-checking like the rest of
 * the suite.
 */
/** Strided read-modify-write sweeps over a large array. */
Workload scaledLoopNest(const char *name, std::uint32_t footprint_words,
                        unsigned passes, std::uint32_t seed);
/** Full-period pseudo-random pointer chase through a link table. */
Workload scaledPointerChase(const char *name, std::uint32_t footprint_words,
                            std::uint64_t steps, std::uint32_t seed);
/** Binary call tree touching a large array at every node. */
Workload scaledCallTree(const char *name, std::uint32_t footprint_words,
                        unsigned depth, unsigned repeats,
                        std::uint32_t seed);

/** Result of running one workload on the pipeline machine. */
struct WorkloadRun
{
    bool passed = false;
    core::StopReason reason = core::StopReason::Running;
    core::PipelineStats pipeline;
    double icacheMissRatio = 0;
    double icacheFetchCost = 0;
    double ecacheMissRatio = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t ecacheAccesses = 0;
    reorg::ReorgStats reorg;
};

/**
 * Assemble, validate on the sequential ISS, reorganize, and run on the
 * pipeline machine; throws SimError if the workload fails its own check
 * anywhere along the way.
 */
WorkloadRun runWorkload(const Workload &w,
                        const sim::MachineConfig &machine_cfg = {},
                        const reorg::ReorgConfig &reorg_cfg = {});

/**
 * Collect a per-branch taken-fraction profile by running the workload on
 * the sequential ISS (the paper's "static prediction ... possibly with
 * profiling").
 */
std::map<addr_t, double> collectProfile(const Workload &w);

/** Emit the 32-mstep multiply subroutine `mul32` (r2 *= r3, uses r4). */
std::string mul32Routine();

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_WORKLOAD_HH
