#include "workload/suite_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/sim_error.hh"
#include "mp/multi_machine.hh"
#include "sim/interval.hh"
#include "workload/prepared.hh"

namespace mipsx::workload
{

unsigned
defaultSuiteJobs()
{
    if (const char *env = std::getenv("MIPSX_BENCH_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace
{

/** One workload's contribution, kept in its suite slot until the merge. */
struct WorkloadOutcome
{
    SuiteStats stats;
    double prepareSeconds = 0; ///< host time obtaining the prepared image
    double runSeconds = 0;     ///< host time inside Machine::run()
    bool failed = false;
    SuiteFailure failure;
};

/** Copy a machine-counter snapshot into a workload's stats slot. */
void
fillCounters(SuiteStats &s, const sim::MachineCounters &c)
{
    s.cycles = c.pipeline.cycles;
    s.committed = c.pipeline.committed;
    s.committedNops = c.pipeline.committedNops;
    s.nopsInBranchSlots = c.pipeline.nopsInBranchSlots;
    s.nopsForLoadDelay = c.pipeline.nopsForLoadDelay;
    s.squashed = c.pipeline.squashed;
    s.branches = c.pipeline.branches;
    s.branchesTaken = c.pipeline.branchesTaken;
    s.branchWastedSlots = c.pipeline.branchWastedSlots;
    s.jumps = c.pipeline.jumps;
    s.jumpWastedSlots = c.pipeline.jumpWastedSlots;
    s.icacheAccesses = c.icacheAccesses;
    s.icacheMisses = c.icacheMisses;
    s.icacheRefillWords = c.icacheRefillWords;
    s.icacheStalls = c.icacheStalls;
    s.ecacheAccesses = c.ecacheAccesses;
    s.ecacheMisses = c.ecacheMisses;
    s.ecacheWritebacks = c.ecacheWritebacks;
    s.ecacheMemCycles = c.ecacheMemCycles;
    s.ecacheStalls = c.ecacheStalls;
}

/**
 * The N-CPU lockstep path (SuiteRunOptions::mpMachines > 1): every CPU
 * runs the same self-checking program; `cycles` stays the *global*
 * cycle count while the instruction and cache counters aggregate over
 * CPUs, so the suite CPI directly shows what bus contention costs.
 */
WorkloadOutcome
runOneMp(const Workload &w, unsigned index, const SuiteRunOptions &opts,
         const PreparedPtr &prep)
{
    WorkloadOutcome out;
    mp::MultiMachineConfig mc;
    mc.cpus = opts.mpMachines;
    mc.cpu = opts.machine.cpu;
    mc.stackSpacing = opts.mpStackSpacing;
    mc.maxCycles = opts.machine.cpu.maxCycles;
    mp::MultiMachine machine(mc);
    machine.memory().setPredecodeEnabled(opts.predecode);
    machine.load(prep->image);
    const auto run0 = std::chrono::steady_clock::now();
    const auto r = machine.run();
    out.runSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - run0)
                         .count();
    if (!r.allHalted) {
        out.stats.failures = 1;
        out.failed = true;
        out.failure = {index, w.name, "mp-not-halted", {}};
        return out;
    }
    out.stats.workloads = 1;
    out.stats.cycles = r.cycles;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        const auto &s = cpu.stats();
        out.stats.committed += s.committed;
        out.stats.committedNops += s.committedNops;
        out.stats.nopsInBranchSlots += s.nopsInBranchSlots;
        out.stats.nopsForLoadDelay += s.nopsForLoadDelay;
        out.stats.squashed += s.squashed;
        out.stats.branches += s.branches;
        out.stats.branchesTaken += s.branchesTaken;
        out.stats.branchWastedSlots += s.branchWastedSlots;
        out.stats.jumps += s.jumps;
        out.stats.jumpWastedSlots += s.jumpWastedSlots;
        out.stats.icacheAccesses += cpu.icache().accesses();
        out.stats.icacheMisses += cpu.icache().misses();
        out.stats.icacheRefillWords += cpu.icache().refillWords();
        out.stats.icacheStalls += cpu.icache().stallCycles();
        out.stats.ecacheAccesses += cpu.ecache().accesses();
        out.stats.ecacheMisses += cpu.ecache().misses();
        out.stats.ecacheWritebacks += cpu.ecache().writebacks();
        out.stats.ecacheMemCycles += cpu.ecache().memoryTrafficCycles();
        out.stats.ecacheStalls += cpu.ecache().stallCycles();
    }
    out.stats.icacheSizeWords = opts.machine.cpu.icache.totalWords();
    out.stats.ecacheSizeWords = opts.machine.cpu.ecache.sizeWords;
    return out;
}

/**
 * The interval path (machine.intervals > 1): checkpointed pieces with
 * the workload's own size/phase hints. The piece pool stays at one
 * worker — the suite pool over workloads is already the parallel axis
 * here, and nesting pools would oversubscribe.
 */
WorkloadOutcome
runOneIntervals(const Workload &w, unsigned index,
                const SuiteRunOptions &opts, const PreparedPtr &prep)
{
    WorkloadOutcome out;
    sim::IntervalConfig ic;
    ic.intervals = opts.machine.intervals;
    ic.warmup = opts.machine.warmupInstructions;
    ic.sample = opts.machine.sampleWindow;
    ic.jobs = 1;
    ic.predecode = opts.predecode;
    ic.totalHint = w.dynamicEstimate;
    ic.phases = w.dynamicPhases;
    const auto run0 = std::chrono::steady_clock::now();
    const auto r = sim::runIntervals(
        prep->image, opts.machine, ic,
        opts.predecode ? &prep->decoded : nullptr);
    out.runSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - run0)
                         .count();
    if (!r.passed) {
        out.stats.failures = 1;
        out.failed = true;
        out.failure = {index, w.name,
                       core::stopReasonName(r.result.reason), {}};
        return out;
    }
    out.stats.workloads = 1;
    // The whole-run estimate; equals the stitched exact aggregate
    // whenever the windows tile the run (sampleWindow == 0).
    fillCounters(out.stats, r.estimated);
    out.stats.icacheSizeWords = opts.machine.cpu.icache.totalWords();
    out.stats.ecacheSizeWords = opts.machine.cpu.ecache.sizeWords;
    out.stats.warmupInstructions = r.warmupInstructions;
    out.stats.warmupCycles = r.warmupCycles;
    return out;
}

WorkloadOutcome
runOne(const Workload &w, unsigned index, const SuiteRunOptions &opts)
{
    WorkloadOutcome out;
    try {
        const auto prep0 = std::chrono::steady_clock::now();
        const PreparedPtr prep = opts.preparedCache
            ? PreparedCache::global().get(w, opts.reorg, opts.useProfiles)
            : prepareWorkload(w, opts.reorg, opts.useProfiles);
        if (opts.mpMachines > 1 || opts.machine.intervals > 1) {
            out = opts.mpMachines > 1
                ? runOneMp(w, index, opts, prep)
                : runOneIntervals(w, index, opts, prep);
            out.prepareSeconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     prep0)
                                     .count() -
                out.runSeconds;
            return out;
        }
        sim::Machine machine(opts.machine);
        machine.memory().setPredecodeEnabled(opts.predecode);
        // The snapshot's pages are adopted copy-on-write, so a self-
        // modifying run clones privately and cannot touch the cache.
        machine.load(prep->image,
                     opts.predecode ? &prep->decoded : nullptr);
        const auto run0 = std::chrono::steady_clock::now();
        out.prepareSeconds =
            std::chrono::duration<double>(run0 - prep0).count();
        const auto result = machine.run();
        out.runSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - run0)
                             .count();

        if (result.reason != core::StopReason::Halt) {
            // A failing workload contributes nothing but the failure
            // tick: its partial cycle/cache counts would skew every
            // per-instruction ratio the tables derive from the
            // aggregate, and `workloads` stays the denominator of
            // successful runs only.
            out.stats.failures = 1;
            out.failed = true;
            out.failure = {index, w.name,
                           core::stopReasonName(result.reason), {}};
            return out;
        }

        out.stats.workloads = 1;
        // steadyCounters() == counters() bit for bit when no warm-up
        // gate is configured, so the no-gate aggregate is unchanged.
        fillCounters(out.stats, machine.steadyCounters());
        out.stats.icacheSizeWords = opts.machine.cpu.icache.totalWords();
        out.stats.ecacheSizeWords = opts.machine.cpu.ecache.sizeWords;
        if (machine.warmup().ran) {
            const auto &base = machine.warmup().baseline;
            out.stats.warmupInstructions = base.pipeline.committed;
            out.stats.warmupCycles = base.pipeline.cycles;
        }
        // ISS fast-forward steps are excluded instructions too.
        out.stats.warmupInstructions += machine.fastForwarded().issSteps;
    } catch (const std::exception &e) {
        out.stats = SuiteStats{};
        out.stats.failures = 1;
        out.failed = true;
        out.failure = {index, w.name, {}, e.what()};
    }
    return out;
}

void
merge(SuiteStats &agg, const SuiteStats &s)
{
    agg.workloads += s.workloads;
    agg.failures += s.failures;
    agg.cycles += s.cycles;
    agg.committed += s.committed;
    agg.committedNops += s.committedNops;
    agg.nopsInBranchSlots += s.nopsInBranchSlots;
    agg.nopsForLoadDelay += s.nopsForLoadDelay;
    agg.squashed += s.squashed;
    agg.branches += s.branches;
    agg.branchesTaken += s.branchesTaken;
    agg.branchWastedSlots += s.branchWastedSlots;
    agg.jumps += s.jumps;
    agg.jumpWastedSlots += s.jumpWastedSlots;
    agg.icacheAccesses += s.icacheAccesses;
    agg.icacheMisses += s.icacheMisses;
    agg.icacheRefillWords += s.icacheRefillWords;
    agg.icacheStalls += s.icacheStalls;
    agg.ecacheAccesses += s.ecacheAccesses;
    agg.ecacheMisses += s.ecacheMisses;
    agg.ecacheWritebacks += s.ecacheWritebacks;
    agg.ecacheMemCycles += s.ecacheMemCycles;
    agg.ecacheStalls += s.ecacheStalls;
    agg.icacheSizeWords = std::max(agg.icacheSizeWords, s.icacheSizeWords);
    agg.ecacheSizeWords = std::max(agg.ecacheSizeWords, s.ecacheSizeWords);
    agg.warmupInstructions += s.warmupInstructions;
    agg.warmupCycles += s.warmupCycles;
}

} // namespace

SuiteResult
runSuite(const std::vector<Workload> &ws, const SuiteRunOptions &opts)
{
    SuiteResult res;
    const unsigned want = opts.jobs ? opts.jobs : defaultSuiteJobs();
    const auto cap = ws.empty() ? 1u : static_cast<unsigned>(ws.size());
    const unsigned jobs = std::min(std::max(want, 1u), cap);
    res.timing.jobs = jobs;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<WorkloadOutcome> slots(ws.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < ws.size(); ++i)
            slots[i] = runOne(ws[i], static_cast<unsigned>(i), opts);
    } else {
        // Worker pool over an atomic index. Workers write only their own
        // slots; aggregation happens after the join, in suite order, so
        // the result cannot depend on scheduling.
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (std::size_t i = next.fetch_add(1); i < ws.size();
                 i = next.fetch_add(1)) {
                slots[i] = runOne(ws[i], static_cast<unsigned>(i), opts);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    for (auto &o : slots) {
        merge(res.stats, o.stats);
        res.timing.prepareSeconds += o.prepareSeconds;
        res.timing.simSeconds += o.runSeconds;
        if (o.failed)
            res.failures.push_back(std::move(o.failure));
    }
    res.timing.hostSeconds = dt.count();
    res.timing.simInstructions = res.stats.committed;
    return res;
}

void
collectMetrics(const SuiteStats &s, trace::MetricsRegistry &m,
               const std::string &prefix)
{
    const std::string p = prefix + ".";
    m.set(p + "workloads", s.workloads);
    m.set(p + "failures", s.failures);
    m.set(p + "cycles", s.cycles);
    m.set(p + "committed", s.committed);
    m.set(p + "committed_nops", s.committedNops);
    m.set(p + "nops_branch_slots", s.nopsInBranchSlots);
    m.set(p + "nops_load_delay", s.nopsForLoadDelay);
    m.set(p + "squashed", s.squashed);
    m.set(p + "branches", s.branches);
    m.set(p + "branches_taken", s.branchesTaken);
    m.set(p + "branch_wasted_slots", s.branchWastedSlots);
    m.set(p + "jumps", s.jumps);
    m.set(p + "jump_wasted_slots", s.jumpWastedSlots);
    m.set(p + "icache_accesses", s.icacheAccesses);
    m.set(p + "icache_misses", s.icacheMisses);
    m.set(p + "icache_refill_words", s.icacheRefillWords);
    m.set(p + "icache_stalls", s.icacheStalls);
    m.set(p + "ecache_accesses", s.ecacheAccesses);
    m.set(p + "ecache_misses", s.ecacheMisses);
    m.set(p + "ecache_writebacks", s.ecacheWritebacks);
    m.set(p + "ecache_memory_cycles", s.ecacheMemCycles);
    m.set(p + "ecache_stalls", s.ecacheStalls);
    m.set(p + "cpi", s.cpi());
    m.set(p + "noop_fraction", s.noopFraction());
    m.set(p + "cycles_per_branch", s.cyclesPerBranch());
    m.set(p + "cycles_per_control", s.cyclesPerControl());
    m.set(p + "icache_miss_ratio", s.icacheMissRatio());
    m.set(p + "avg_fetch_cost", s.avgFetchCost());
    m.set(p + "ecache_miss_ratio", s.ecacheMissRatio());
    // Gated-out work, kept apart from the headline counters so a
    // warm-up sweep can't be mistaken for a cycle-count change.
    m.set(p + "warmup.instructions", s.warmupInstructions);
    m.set(p + "warmup.cycles", s.warmupCycles);
}

void
collectTiming(const SuiteTiming &t, trace::MetricsRegistry &m,
              const std::string &prefix)
{
    const std::string p = prefix + ".";
    m.set(p + "host_seconds", t.hostSeconds);
    m.set(p + "prepare_seconds", t.prepareSeconds);
    m.set(p + "simulate_seconds", t.simSeconds);
    m.set(p + "sim_instructions", t.simInstructions);
    m.set(p + "jobs", t.jobs);
    m.set(p + "instr_per_host_second", t.instrPerHostSecond());
    m.set(p + "instr_per_sim_second", t.instrPerSimSecond());
}

void
collectEnergy(const SuiteStats &s, const stats::EnergyCosts &costs,
              trace::MetricsRegistry &m, const std::string &prefix)
{
    stats::collectEnergy(costs, s.energyCounts(), m, prefix);
}

} // namespace mipsx::workload
