/**
 * @file
 * Scalable cache-thrashing workloads for the interval engine.
 *
 * The rest of the suite runs tens of thousands of dynamic instructions —
 * the right size for cross-model studies, far too small for the
 * parallel interval engine's regime. These generators scale to millions
 * of dynamic instructions with *data* footprints larger than the
 * external cache (64K words direct-mapped by default), so their miss
 * behaviour is capacity-driven like the paper's large benchmarks:
 *
 *  - loop-nest: strided read-modify-write sweeps over a large array
 *    (structured imperative traversal, dirty lines, writebacks);
 *  - pointer-chase: a full-period LCG permutation chased through a
 *    link table (the Lisp car/cdr load-load interlock chain, with no
 *    spatial locality at all);
 *  - call-tree: binary recursion touching a hashed array slot at every
 *    node (call/return density plus scattered data traffic).
 *
 * Every program is self-checking against a C++ mirror of the exact
 * same arithmetic, and fills in Workload::dynamicEstimate from its
 * loop structure so the interval planner can place boundaries without
 * a counting pass.
 *
 * Footprints are capped at 2^18 words: the data section starts at
 * 0x4000 and the default stack top is 0x70000, so anything larger
 * would grow under the stack.
 */

#include "workload/workload.hh"

#include <cstdint>
#include <vector>

#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

/** Full-period LCG constants (Hull-Dobell for any power-of-two mod). */
constexpr std::uint32_t lcgMult = 1664525u;
constexpr std::uint32_t lcgAdd = 1013904223u;

/** Round up to a power of two, clamped to [2^10, 2^18] (see header). */
std::uint32_t
clampFootprint(std::uint32_t want)
{
    std::uint32_t f = 1u << 10;
    while (f < want && f < (1u << 18))
        f <<= 1;
    return f;
}

std::string
scaledSource(word_t expected, std::uint32_t footprint,
             const std::string &text)
{
    // result/exp come first: direct-address stores (st rX, result)
    // encode the address in the offset field, so these labels must
    // stay small; the big array goes last.
    return strformat(R"(
        .data
result: .space 1
exp:    .word %lld
arr:    .space %u
        .text
)",
                     static_cast<long long>(
                         static_cast<std::int32_t>(expected)),
                     footprint) +
        text + checkRegion("result", "exp", 1);
}

} // namespace

Workload
scaledLoopNest(const char *name, std::uint32_t footprint_words,
               unsigned passes, std::uint32_t seed)
{
    Lcg rng(seed);
    const std::uint32_t f = clampFootprint(footprint_words);
    const std::uint32_t mask = f - 1;
    // An odd stride is coprime with the power-of-two footprint, so one
    // pass touches every element exactly once — in an order that walks
    // the whole array, not a cache-sized slice of it.
    const std::uint32_t stride = (rng.next(f) | 1u) & mask;
    const word_t initSeed = rng.next();
    const word_t accSeed = rng.next();

    // Mirror.
    std::vector<word_t> arr(f);
    word_t v = initSeed;
    for (std::uint32_t i = 0; i < f; ++i) {
        arr[i] = v;
        v += lcgMult;
    }
    word_t acc = accSeed;
    for (unsigned p = 0; p < passes; ++p) {
        std::uint32_t idx = 0;
        for (std::uint32_t j = 0; j < f; ++j) {
            idx = (idx + stride) & mask;
            const word_t old = arr[idx];
            acc += old;
            arr[idx] = old ^ acc;
        }
    }

    const std::string text = strformat(R"(
_start: la   r21, arr
        li   r22, %u          ; index mask
        li   r23, %u          ; init-value step
        li   r3, %u           ; init value
        mov  r4, r21
        li   r5, %u           ; element count
init:   st   r3, 0(r4)
        add  r3, r3, r23
        addi r4, r4, 1
        addi r5, r5, -1
        bnz  r5, init
        li   r8, %u           ; sweep stride (odd)
        li   r20, %u          ; passes
        li   r2, %u           ; accumulator
pass:   addi r6, r0, 0        ; idx
        li   r7, %u
inner:  add  r6, r6, r8
        and  r6, r6, r22
        add  r9, r21, r6
        ld   r10, 0(r9)
        add  r2, r2, r10
        xor  r10, r10, r2
        st   r10, 0(r9)
        addi r7, r7, -1
        bnz  r7, inner
        addi r20, r20, -1
        bnz  r20, pass
        st   r2, result
)",
                                       mask, lcgMult, initSeed, f, stride,
                                       passes, accSeed, f);

    Workload w;
    w.name = name;
    w.family = Family::Pascal;
    w.description = strformat(
        "scaled loop nest: %u strided read-modify-write passes over "
        "%u words",
        passes, f);
    w.source = scaledSource(acc, f, text);
    // The reorganizer fills both delay slots of these tight loops from
    // the loop body, so the dynamic count is the raw body count: 5 per
    // init element, 9 per sweep element, plus pass/setup/check change.
    w.dynamicEstimate = 5ull * f +
        static_cast<std::uint64_t>(passes) * (9ull * f + 5) + 40;
    w.dynamicPhases = {5ull * f + 11}; // init loop ends, sweeps begin
    return w;
}

Workload
scaledPointerChase(const char *name, std::uint32_t footprint_words,
                   std::uint64_t steps, std::uint32_t seed)
{
    Lcg rng(seed);
    const std::uint32_t f = clampFootprint(footprint_words);
    const std::uint32_t mask = f - 1;
    const word_t accSeed = rng.next();
    // nxt[i] = (i*mult + add) mod f is a full-period LCG over the
    // power-of-two footprint (mult = 1 mod 4, add odd), i.e. a single
    // f-cycle permutation: the chase visits every element before it
    // repeats, with LCG-scattered addresses — no spatial locality.
    const std::uint32_t chase =
        steps > 0xffffffffull ? 0xffffffffu
                              : static_cast<std::uint32_t>(steps);

    // Mirror: nxt[cur] = lcg(cur), so the chase IS the LCG orbit.
    word_t acc = accSeed;
    word_t cur = 0;
    for (std::uint32_t k = 0; k < chase; ++k) {
        cur = (cur * lcgMult + lcgAdd) & mask;
        acc ^= cur;
    }

    const std::string text = strformat(R"(
_start: la   r21, arr
        li   r22, %u          ; index mask
        li   r23, %u          ; lcg multiplier (table step)
        li   r19, %u          ; lcg addend
        and  r3, r19, r22     ; nxt[0]
        mov  r4, r21
        li   r5, %u           ; element count
init:   st   r3, 0(r4)
        add  r3, r3, r23
        and  r3, r3, r22
        addi r4, r4, 1
        addi r5, r5, -1
        bnz  r5, init
        li   r20, %u          ; chase steps
        addi r6, r0, 0        ; cur
        li   r2, %u           ; accumulator
chase:  add  r7, r21, r6
        ld   r6, 0(r7)
        xor  r2, r2, r6
        addi r20, r20, -1
        bnz  r20, chase
        st   r2, result
)",
                                       mask, lcgMult, lcgAdd, f, chase,
                                       accSeed);

    Workload w;
    w.name = name;
    w.family = Family::Lisp;
    w.description = strformat(
        "scaled pointer chase: %u-step full-period permutation walk "
        "through %u words",
        chase, f);
    w.source = scaledSource(acc, f, text);
    // Filled delay slots again (see scaledLoopNest): 6 per init
    // element, 5 per chase step, plus setup and self-check.
    w.dynamicEstimate =
        6ull * f + 5ull * static_cast<std::uint64_t>(chase) + 35;
    w.dynamicPhases = {6ull * f + 17}; // table built, chase begins
    return w;
}

namespace
{

/** The call-tree node: mirrors the assembly's tree procedure exactly. */
void
treeNode(unsigned depth, word_t s, word_t mask, word_t &acc,
         std::vector<word_t> &arr)
{
    const word_t idx = (s ^ (s << 7) ^ (s >> 3)) & mask;
    const word_t old = arr[idx];
    acc += old;
    arr[idx] = old ^ acc;
    if (depth == 0)
        return;
    treeNode(depth - 1, s * 2 + 1, mask, acc, arr);
    treeNode(depth - 1, s * 2 + 2, mask, acc, arr);
}

} // namespace

Workload
scaledCallTree(const char *name, std::uint32_t footprint_words,
               unsigned depth, unsigned repeats, std::uint32_t seed)
{
    Lcg rng(seed);
    const std::uint32_t f = clampFootprint(footprint_words);
    const std::uint32_t mask = f - 1;
    const word_t initSeed = rng.next();
    if (depth > 24)
        depth = 24;
    if (repeats == 0)
        repeats = 1;

    // Mirror.
    std::vector<word_t> arr(f);
    word_t v = initSeed;
    for (std::uint32_t i = 0; i < f; ++i) {
        arr[i] = v;
        v += lcgMult;
    }
    word_t acc = 0;
    std::vector<word_t> roots(repeats);
    for (unsigned r = 0; r < repeats; ++r) {
        roots[r] = rng.next();
        treeNode(depth, roots[r], mask, acc, arr);
    }

    // Root dispatch: load each repeat's root state from a table.
    std::string text = strformat(R"(
_start: la   r21, arr
        li   r22, %u          ; index mask
        li   r23, %u          ; init-value step
        li   r3, %u           ; init value
        mov  r4, r21
        li   r5, %u           ; element count
init:   st   r3, 0(r4)
        add  r3, r3, r23
        addi r4, r4, 1
        addi r5, r5, -1
        bnz  r5, init
        addi r10, r0, 0       ; accumulator
        la   r17, roots
        li   r18, %u          ; repeats
rloop:  ld   r3, 0(r17)       ; root state
        addi r2, r0, %u       ; depth
        call tree
        addi r17, r17, 1
        addi r18, r18, -1
        bnz  r18, rloop
        st   r10, result
        b    check
tree:   sll  r5, r3, 7        ; idx = (s ^ s<<7 ^ s>>3) & mask
        xor  r5, r5, r3
        srl  r6, r3, 3
        xor  r5, r5, r6
        and  r5, r5, r22
        add  r5, r21, r5
        ld   r6, 0(r5)
        add  r10, r10, r6
        xor  r6, r6, r10
        st   r6, 0(r5)
        bz   r2, tleaf
        addi sp, sp, -3
        st   ra, 0(sp)
        st   r2, 1(sp)
        st   r3, 2(sp)
        addi r2, r2, -1
        sll  r3, r3, 1
        addi r3, r3, 1        ; left child: 2s+1
        call tree
        ld   r3, 2(sp)
        ld   r2, 1(sp)
        addi r2, r2, -1
        sll  r3, r3, 1
        addi r3, r3, 2        ; right child: 2s+2
        call tree
        ld   ra, 0(sp)
        addi sp, sp, 3
tleaf:  ret
)",
                                mask, lcgMult, initSeed, f, repeats, depth);

    std::vector<std::int64_t> rootWords(roots.begin(), roots.end());

    Workload w;
    w.name = name;
    w.family = Family::Lisp;
    w.description = strformat(
        "scaled call tree: %u repeats of depth-%u binary recursion over "
        "%u words",
        repeats, depth, f);
    w.source = strformat(R"(
        .data
result: .space 1
exp:    .word %lld
)",
                         static_cast<long long>(
                             static_cast<std::int32_t>(acc))) +
        wordData("roots", rootWords) +
        strformat("arr:    .space %u\n", f) + "        .text\n" + text +
        checkRegion("result", "exp", 1);
    // 5 per init element (slots filled, as in scaledLoopNest); the
    // recursion's call/ret slots mostly cannot be filled, so the node
    // costs are empirical: ~13 per leaf (11 of work + ret), ~34 per
    // internal node (work + two saved-frame recursions).
    const std::uint64_t leaves = 1ull << depth;
    const std::uint64_t internal = leaves - 1;
    w.dynamicEstimate = 5ull * f +
        static_cast<std::uint64_t>(repeats) *
            (13 * leaves + 34 * internal + 8) +
        40;
    w.dynamicPhases = {5ull * f + 11}; // init loop ends, recursion begins
    return w;
}

std::vector<Workload>
scaledWorkloads()
{
    // ~2M dynamic instructions each, 2x-the-ecache footprints: big
    // enough that interval simulation is the sensible way to run them,
    // small enough for the explore grid. bench_bigwork builds larger
    // instances from the generators directly.
    return {
        scaledLoopNest("scaled_loopnest", 1u << 17, 1, 11001),
        scaledPointerChase("scaled_chase", 1u << 17, 200000, 11002),
        scaledCallTree("scaled_calltree", 1u << 17, 15, 2, 11003),
    };
}

} // namespace mipsx::workload
