/**
 * @file
 * A small register-memory CISC reference machine for the path-length
 * comparison (experiment E10).
 *
 * The paper compares MIPS-X dynamic instruction counts against a VAX
 * 11/780: "MIPS-X executes about 25% more instructions but executes the
 * programs about 14 times faster" (Stanford compiler back ends; 80%
 * longer against Berkeley Pascal). The VAX and its compilers are not
 * available, so this module provides a minimal two-address,
 * memory-operand machine ("VAX-flavoured": one instruction can load,
 * compute and store) plus the same benchmarks hand-coded for it. The
 * comparison is of *dynamic path length*; absolute speed is modelled
 * with the paper's clock assumptions (experiment bench).
 */

#ifndef MIPSX_WORKLOAD_CISC_REF_HH
#define MIPSX_WORKLOAD_CISC_REF_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mipsx::workload
{

/** CISC reference opcodes. Operands can be registers or memory. */
enum class COp : std::uint8_t
{
    MovRI,  ///< r[d] = imm
    MovRR,  ///< r[d] = r[s]
    MovRM,  ///< r[d] = M[m + r[x]]
    MovMR,  ///< M[m + r[x]] = r[s]
    AddRR,  ///< r[d] += r[s]
    AddRI,  ///< r[d] += imm
    AddRM,  ///< r[d] += M[m + r[x]]   (the CISC advantage)
    SubRR,
    SubRM,
    MulRM,  ///< r[d] *= M[m + r[x]]
    CmpRR,  ///< set flags from r[d] - r[s]
    CmpRI,
    CmpRM,
    Jmp,
    Jeq,
    Jne,
    Jlt,
    Jge,
    Sob,    ///< subtract one and branch if non-zero (VAX SOBGTR style)
    Halt,
};

/** One CISC instruction. */
struct CInst
{
    COp op = COp::Halt;
    std::uint8_t rd = 0; ///< destination / compared register
    std::uint8_t rs = 0; ///< source register
    std::uint8_t rx = 0; ///< index register for memory operands
    std::int32_t imm = 0;
    addr_t mem = 0;      ///< memory-operand base
    int target = -1;     ///< branch target (instruction index)
};

/** Execution statistics of one CISC run. */
struct CiscResult
{
    std::uint64_t instructions = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    bool halted = false;
};

/** The interpreter: 16 registers, word-addressed data memory. */
class CiscVm
{
  public:
    explicit CiscVm(std::size_t mem_words = 1 << 16);

    void poke(addr_t a, word_t v) { mem_.at(a) = v; }
    word_t peek(addr_t a) const { return mem_.at(a); }

    CiscResult run(const std::vector<CInst> &program,
                   std::uint64_t max_steps = 100'000'000);

    word_t reg(unsigned r) const { return regs_.at(r); }

  private:
    std::vector<word_t> mem_;
    std::array<word_t, 16> regs_{};
    sword_t flags_ = 0; ///< last compare difference (signed)
};

/** A CISC benchmark paired with its expected checksum. */
struct CiscBenchmark
{
    std::string name;
    std::vector<CInst> program;
    std::vector<std::pair<addr_t, word_t>> init; ///< memory image
    addr_t resultAddr = 0;
    word_t expected = 0;
};

/**
 * The path-length benchmark pairs: each entry names a workload from the
 * MX32 suite that has a hand-coded CISC twin here (bubble, fib, sieve,
 * listsum).
 */
std::vector<CiscBenchmark> ciscBenchmarks();

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_CISC_REF_HH
