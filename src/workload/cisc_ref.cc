#include "workload/cisc_ref.hh"

#include <algorithm>
#include <map>

#include "common/sim_error.hh"
#include "workload/wl_util.hh"

namespace mipsx::workload
{

CiscVm::CiscVm(std::size_t mem_words) : mem_(mem_words, 0) {}

CiscResult
CiscVm::run(const std::vector<CInst> &program, std::uint64_t max_steps)
{
    CiscResult r;
    std::size_t pc = 0;
    while (r.instructions < max_steps) {
        if (pc >= program.size())
            fatal("CiscVm: fell off the program");
        const CInst &in = program[pc];
        ++r.instructions;
        std::size_t next = pc + 1;

        auto maddr = [&in, this]() { return in.mem + regs_[in.rx]; };

        switch (in.op) {
          case COp::MovRI:
            regs_[in.rd] = static_cast<word_t>(in.imm);
            break;
          case COp::MovRR:
            regs_[in.rd] = regs_[in.rs];
            break;
          case COp::MovRM:
            regs_[in.rd] = mem_.at(maddr());
            ++r.memReads;
            break;
          case COp::MovMR:
            mem_.at(maddr()) = regs_[in.rs];
            ++r.memWrites;
            break;
          case COp::AddRR:
            regs_[in.rd] += regs_[in.rs];
            break;
          case COp::AddRI:
            regs_[in.rd] += static_cast<word_t>(in.imm);
            break;
          case COp::AddRM:
            regs_[in.rd] += mem_.at(maddr());
            ++r.memReads;
            break;
          case COp::SubRR:
            regs_[in.rd] -= regs_[in.rs];
            break;
          case COp::SubRM:
            regs_[in.rd] -= mem_.at(maddr());
            ++r.memReads;
            break;
          case COp::MulRM:
            regs_[in.rd] *= mem_.at(maddr());
            ++r.memReads;
            break;
          case COp::CmpRR:
            flags_ = static_cast<sword_t>(regs_[in.rd]) -
                static_cast<sword_t>(regs_[in.rs]);
            // Exact equality matters more than overflow semantics here.
            if (regs_[in.rd] == regs_[in.rs])
                flags_ = 0;
            break;
          case COp::CmpRI:
            flags_ = static_cast<sword_t>(regs_[in.rd]) - in.imm;
            if (regs_[in.rd] == static_cast<word_t>(in.imm))
                flags_ = 0;
            break;
          case COp::CmpRM:
            flags_ = static_cast<sword_t>(regs_[in.rd]) -
                static_cast<sword_t>(mem_.at(maddr()));
            ++r.memReads;
            break;
          case COp::Jmp:
            next = static_cast<std::size_t>(in.target);
            break;
          case COp::Jeq:
            if (flags_ == 0)
                next = static_cast<std::size_t>(in.target);
            break;
          case COp::Jne:
            if (flags_ != 0)
                next = static_cast<std::size_t>(in.target);
            break;
          case COp::Jlt:
            if (flags_ < 0)
                next = static_cast<std::size_t>(in.target);
            break;
          case COp::Jge:
            if (flags_ >= 0)
                next = static_cast<std::size_t>(in.target);
            break;
          case COp::Sob:
            regs_[in.rd] -= 1;
            if (regs_[in.rd] != 0)
                next = static_cast<std::size_t>(in.target);
            break;
          case COp::Halt:
            r.halted = true;
            return r;
        }
        pc = next;
    }
    return r;
}

namespace
{

/** Tiny program builder with labels. */
class B
{
  public:
    int here() const { return static_cast<int>(code.size()); }

    void
    label(const std::string &name)
    {
        labels[name] = here();
    }

    CInst &
    emit(COp op)
    {
        CInst in;
        in.op = op;
        code.push_back(in);
        return code.back();
    }

    void
    ri(COp op, unsigned rd, std::int32_t imm)
    {
        auto &i = emit(op);
        i.rd = static_cast<std::uint8_t>(rd);
        i.imm = imm;
    }

    void
    rr(COp op, unsigned rd, unsigned rs)
    {
        auto &i = emit(op);
        i.rd = static_cast<std::uint8_t>(rd);
        i.rs = static_cast<std::uint8_t>(rs);
    }

    void
    rm(COp op, unsigned rd, addr_t mem, unsigned rx = 0)
    {
        auto &i = emit(op);
        i.rd = static_cast<std::uint8_t>(rd);
        i.rx = static_cast<std::uint8_t>(rx);
        i.mem = mem;
    }

    void
    mr(addr_t mem, unsigned rx, unsigned rs)
    {
        auto &i = emit(COp::MovMR);
        i.rs = static_cast<std::uint8_t>(rs);
        i.rx = static_cast<std::uint8_t>(rx);
        i.mem = mem;
    }

    void
    jump(COp op, const std::string &target, unsigned rd = 0)
    {
        auto &i = emit(op);
        i.rd = static_cast<std::uint8_t>(rd);
        fixups.emplace_back(here() - 1, target);
    }

    std::vector<CInst>
    finish()
    {
        for (const auto &[idx, name] : fixups) {
            auto it = labels.find(name);
            if (it == labels.end())
                fatal(strformat("cisc builder: undefined label '%s'",
                                name.c_str()));
            code[static_cast<std::size_t>(idx)].target = it->second;
        }
        return code;
    }

  private:
    std::vector<CInst> code;
    std::map<std::string, int> labels;
    std::vector<std::pair<int, std::string>> fixups;
};

/** Same data as the MX32 bubble workload (Lcg seed 7, 40 elements). */
CiscBenchmark
ciscBubble()
{
    constexpr unsigned n = 40;
    Lcg rng(7);
    std::vector<word_t> data;
    for (unsigned i = 0; i < n; ++i)
        data.push_back(static_cast<word_t>(
            static_cast<std::int32_t>(rng.next(20000)) - 10000));
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end(),
              [](word_t a, word_t b) {
                  return static_cast<sword_t>(a) < static_cast<sword_t>(b);
              });
    // Order-sensitive checksum: acc = acc*3 + a[i].
    word_t expected = 0;
    for (const auto v : sorted)
        expected = expected * 3 + v;

    CiscBenchmark bm;
    bm.name = "bubble";
    const addr_t arr = 0;
    bm.resultAddr = 100;
    for (unsigned i = 0; i < n; ++i)
        bm.init.emplace_back(arr + i, data[i]);
    bm.expected = expected;

    B b;
    b.ri(COp::MovRI, 1, n - 1); // outer count
    b.label("outer");
    b.ri(COp::MovRI, 2, 0);     // i
    b.ri(COp::MovRI, 7, n - 1); // inner count
    b.label("inner");
    b.rm(COp::MovRM, 3, arr, 2);     // a[i]
    b.rm(COp::MovRM, 4, arr + 1, 2); // a[i+1]
    b.rr(COp::CmpRR, 4, 3);
    b.jump(COp::Jge, "noswap");
    b.mr(arr, 2, 4);
    b.mr(arr + 1, 2, 3);
    b.label("noswap");
    b.ri(COp::AddRI, 2, 1);
    b.jump(COp::Sob, "inner", 7);
    b.jump(COp::Sob, "outer", 1);
    // Checksum.
    b.ri(COp::MovRI, 5, 0);
    b.ri(COp::MovRI, 2, 0);
    b.ri(COp::MovRI, 7, n);
    b.label("ck");
    b.rr(COp::MovRR, 6, 5);
    b.rr(COp::AddRR, 5, 5);
    b.rr(COp::AddRR, 5, 6);
    b.rm(COp::AddRM, 5, arr, 2);
    b.ri(COp::AddRI, 2, 1);
    b.jump(COp::Sob, "ck", 7);
    b.mr(bm.resultAddr, 0, 5);
    b.emit(COp::Halt);
    bm.program = b.finish();
    return bm;
}

/** Same computation as the MX32 fib workload (44 steps). */
CiscBenchmark
ciscFib()
{
    constexpr unsigned n = 44;
    word_t a = 0, bb = 1;
    for (unsigned i = 0; i < n; ++i) {
        const word_t t = a + bb;
        a = bb;
        bb = t;
    }

    CiscBenchmark bm;
    bm.name = "fib";
    bm.resultAddr = 0;
    bm.expected = bb;

    B b;
    b.ri(COp::MovRI, 1, 0);
    b.ri(COp::MovRI, 2, 1);
    b.ri(COp::MovRI, 3, n);
    b.label("loop");
    b.rr(COp::MovRR, 4, 1);
    b.rr(COp::AddRR, 4, 2);
    b.rr(COp::MovRR, 1, 2);
    b.rr(COp::MovRR, 2, 4);
    b.jump(COp::Sob, "loop", 3);
    b.mr(bm.resultAddr, 0, 2);
    b.emit(COp::Halt);
    bm.program = b.finish();
    return bm;
}

/** Same computation as the MX32 sieve workload (limit 400). */
CiscBenchmark
ciscSieve()
{
    constexpr unsigned limit = 400;
    unsigned count = 0;
    std::vector<bool> composite(limit, false);
    for (unsigned i = 2; i < limit; ++i) {
        if (!composite[i]) {
            ++count;
            for (unsigned j = i + i; j < limit; j += i)
                composite[j] = true;
        }
    }

    CiscBenchmark bm;
    bm.name = "sieve";
    const addr_t flags = 0;
    bm.resultAddr = limit;
    bm.expected = count;

    B b;
    b.ri(COp::MovRI, 5, 1); // the stored flag value
    b.ri(COp::MovRI, 1, 2); // i
    b.ri(COp::MovRI, 2, 0); // count
    b.label("iloop");
    b.rm(COp::MovRM, 3, flags, 1);
    b.ri(COp::CmpRI, 3, 0);
    b.jump(COp::Jne, "inext");
    b.ri(COp::AddRI, 2, 1);
    b.rr(COp::MovRR, 4, 1);
    b.rr(COp::AddRR, 4, 1); // j = 2i
    b.label("jloop");
    b.ri(COp::CmpRI, 4, limit);
    b.jump(COp::Jge, "inext", 4);
    b.mr(flags, 4, 5);
    b.rr(COp::AddRR, 4, 1);
    b.jump(COp::Jmp, "jloop");
    b.label("inext");
    b.ri(COp::AddRI, 1, 1);
    b.ri(COp::CmpRI, 1, limit);
    b.jump(COp::Jlt, "iloop", 1);
    b.mr(bm.resultAddr, 0, 2);
    b.emit(COp::Halt);
    bm.program = b.finish();
    return bm;
}

/** Same data as the MX32 listsum workload (seed 41, 80 cells). */
CiscBenchmark
ciscListSum()
{
    constexpr unsigned n = 80;
    Lcg rng(41);
    std::vector<word_t> values;
    word_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        values.push_back(static_cast<word_t>(
            static_cast<std::int32_t>(rng.next(1000)) - 500));
        sum += values.back();
    }

    CiscBenchmark bm;
    bm.name = "listsum";
    const addr_t heap = 16; // cells at [heap + 2i]; first cell = head
    bm.resultAddr = 0;
    bm.expected = sum;
    for (unsigned i = 0; i < n; ++i) {
        bm.init.emplace_back(heap + 2 * i, values[i]);
        bm.init.emplace_back(heap + 2 * i + 1,
                             i + 1 == n ? 0 : heap + 2 * (i + 1));
    }

    B b;
    b.ri(COp::MovRI, 1, static_cast<std::int32_t>(heap)); // p
    b.ri(COp::MovRI, 2, 0);                               // sum
    b.label("loop");
    b.rm(COp::AddRM, 2, 0, 1); // sum += car (memory operand!)
    b.rm(COp::MovRM, 1, 1, 1); // p = cdr
    b.ri(COp::CmpRI, 1, 0);
    b.jump(COp::Jne, "loop");
    b.mr(bm.resultAddr, 0, 2);
    b.emit(COp::Halt);
    bm.program = b.finish();
    return bm;
}

} // namespace

std::vector<CiscBenchmark>
ciscBenchmarks()
{
    return {ciscBubble(), ciscFib(), ciscSieve(), ciscListSum()};
}

} // namespace mipsx::workload
