/**
 * @file
 * The Pascal-family workloads: structured imperative programs with the
 * branch and memory profile of compiled Pascal (the paper's primary
 * benchmark language).
 */

#include "workload/workload.hh"

#include <algorithm>
#include <numeric>

#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

Workload
bubbleSort()
{
    constexpr unsigned n = 40;
    Lcg rng(7);
    std::vector<std::int64_t> data;
    for (unsigned i = 0; i < n; ++i)
        data.push_back(static_cast<std::int32_t>(rng.next(20000)) - 10000);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());

    Workload w;
    w.name = "bubble";
    w.family = Family::Pascal;
    w.description = "bubble sort of 40 signed words";
    w.source = "        .data\n" + wordData("arr", data) +
        wordData("exp", sorted) + strformat(R"(
        .text
_start: addi r11, r0, %u      ; outer passes
outer:  la   r1, arr
        addi r2, r0, %u       ; inner compares
inner:  ld   r3, 0(r1)
        ld   r4, 1(r1)
        bge  r4, r3, noswap
        st   r4, 0(r1)
        st   r3, 1(r1)
noswap: addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, inner
        addi r11, r11, -1
        bnz  r11, outer
)", n - 1, n - 1) + checkRegion("arr", "exp", n);
    return w;
}

Workload
quickSort()
{
    constexpr unsigned n = 64;
    Lcg rng(11);
    std::vector<std::int64_t> data;
    for (unsigned i = 0; i < n; ++i)
        data.push_back(static_cast<std::int32_t>(rng.next(100000)) - 50000);
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());

    Workload w;
    w.name = "qsort";
    w.family = Family::Pascal;
    w.description = "recursive quicksort (Lomuto) of 64 signed words";
    w.source = "        .data\n" + wordData("arr", data) +
        wordData("exp", sorted) + strformat(R"(
        .text
_start: la   r2, arr
        la   r3, arr+%u
        call qsort
        b    check
        ; qsort(lo=r2, hi=r3): word addresses, inclusive
qsort:  bge  r2, r3, qret
        addi sp, sp, -4
        st   ra, 0(sp)
        st   r2, 1(sp)
        st   r3, 2(sp)
        ld   r5, 0(r3)        ; pivot = M[hi]
        mov  r6, r2           ; i
        mov  r7, r2           ; j
qloop:  bge  r7, r3, qdone
        ld   r8, 0(r7)
        bge  r8, r5, qskip
        ld   r9, 0(r6)
        st   r8, 0(r6)
        st   r9, 0(r7)
        addi r6, r6, 1
qskip:  addi r7, r7, 1
        b    qloop
qdone:  ld   r8, 0(r6)
        ld   r9, 0(r3)
        st   r9, 0(r6)
        st   r8, 0(r3)
        st   r6, 3(sp)        ; save partition point
        addi r3, r6, -1
        call qsort            ; left half (r2 still lo)
        ld   r6, 3(sp)
        ld   r3, 2(sp)
        addi r2, r6, 1
        call qsort            ; right half
        ld   ra, 0(sp)
        addi sp, sp, 4
qret:   ret
)", n - 1) + checkRegion("arr", "exp", n);
    return w;
}

Workload
matMul()
{
    constexpr unsigned n = 6;
    Lcg rng(13);
    std::vector<std::int64_t> a, b;
    for (unsigned i = 0; i < n * n; ++i) {
        a.push_back(static_cast<std::int32_t>(rng.next(200)) - 100);
        b.push_back(static_cast<std::int32_t>(rng.next(200)) - 100);
    }
    std::vector<std::int64_t> c(n * n, 0);
    for (unsigned i = 0; i < n; ++i)
        for (unsigned j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (unsigned k = 0; k < n; ++k) {
                acc += static_cast<std::int32_t>(
                    static_cast<word_t>(a[i * n + k]) *
                    static_cast<word_t>(b[k * n + j]));
            }
            c[i * n + j] = static_cast<std::int32_t>(
                static_cast<word_t>(acc));
        }

    Workload w;
    w.name = "matmul";
    w.family = Family::Pascal;
    w.description =
        "6x6 integer matrix multiply via the MD multiply-step unit";
    w.source = "        .data\n" + wordData("ma", a) + wordData("mb", b) +
        "mc:     .space " + strformat("%u", n * n) + "\n" +
        wordData("exp", c) + strformat(R"(
        .text
_start: la   r10, ma          ; rowA
        la   r16, mc          ; out pointer
        addi r20, r0, %u      ; i counter
iloop:  la   r11, mb          ; colB base
        addi r21, r0, %u      ; j counter
jloop:  mov  r13, r10         ; pa
        mov  r14, r11         ; pb
        add  r15, r0, r0      ; acc
        addi r22, r0, %u      ; k counter
kloop:  ld   r2, 0(r13)
        ld   r3, 0(r14)
        call mul32
        add  r15, r15, r2
        addi r13, r13, 1
        addi r14, r14, %u
        addi r22, r22, -1
        bnz  r22, kloop
        st   r15, 0(r16)
        addi r16, r16, 1
        addi r11, r11, 1
        addi r21, r21, -1
        bnz  r21, jloop
        addi r10, r10, %u
        addi r20, r20, -1
        bnz  r20, iloop
        b    check
)", n, n, n, n, n) + mul32Routine() + checkRegion("mc", "exp", n * n);
    return w;
}

Workload
sieve()
{
    constexpr unsigned limit = 400;
    unsigned count = 0;
    std::vector<bool> composite(limit, false);
    for (unsigned i = 2; i < limit; ++i) {
        if (!composite[i]) {
            ++count;
            for (unsigned j = i + i; j < limit; j += i)
                composite[j] = true;
        }
    }

    Workload w;
    w.name = "sieve";
    w.family = Family::Pascal;
    w.description = "sieve of Eratosthenes up to 400";
    w.source = strformat(R"(
        .data
flags:  .space %u
result: .space 1
exp:    .word %u
        .text
_start: la   r10, flags
        addi r1, r0, 2        ; i
        add  r2, r0, r0       ; count
iloop:  add  r3, r10, r1
        ld   r4, 0(r3)
        bnz  r4, inext
        addi r2, r2, 1        ; a prime
        add  r5, r1, r1       ; j = 2i
jloop:  addi r6, r0, %u
        bge  r5, r6, inext
        add  r7, r10, r5
        addi r8, r0, 1
        st   r8, 0(r7)
        add  r5, r5, r1
        b    jloop
inext:  addi r1, r1, 1
        addi r6, r0, %u
        blt  r1, r6, iloop
        st   r2, result
)", limit, count, limit, limit) + checkRegion("result", "exp", 1);
    return w;
}

Workload
fib()
{
    constexpr unsigned n = 44;
    word_t a = 0, b = 1;
    for (unsigned i = 0; i < n; ++i) {
        const word_t t = a + b;
        a = b;
        b = t;
    }

    Workload w;
    w.name = "fib";
    w.family = Family::Pascal;
    w.description = "iterative Fibonacci, 44 steps (mod 2^32)";
    w.source = strformat(R"(
        .data
result: .space 1
exp:    .word %lld
        .text
_start: add  r1, r0, r0
        addi r2, r0, 1
        addi r3, r0, %u
floop:  add  r4, r1, r2
        mov  r1, r2
        mov  r2, r4
        addi r3, r3, -1
        bnz  r3, floop
        st   r2, result
)", static_cast<long long>(b), n) + checkRegion("result", "exp", 1);
    return w;
}

Workload
strSearch()
{
    // A word-per-character text with several embedded pattern copies.
    constexpr unsigned textLen = 180;
    Lcg rng(17);
    std::vector<std::int64_t> text;
    const std::vector<std::int64_t> pattern = {3, 1, 4, 1, 5};
    for (unsigned i = 0; i < textLen; ++i)
        text.push_back(rng.next(8));
    for (const unsigned pos : {12u, 60u, 61u, 130u, 170u}) {
        for (unsigned k = 0; k < pattern.size(); ++k)
            text[pos + k] = pattern[k];
    }
    unsigned matches = 0;
    for (unsigned i = 0; i + pattern.size() <= textLen; ++i) {
        bool ok = true;
        for (unsigned k = 0; k < pattern.size() && ok; ++k)
            ok = text[i + k] == pattern[k];
        if (ok)
            ++matches;
    }

    Workload w;
    w.name = "strsearch";
    w.family = Family::Pascal;
    w.description = "naive substring search over a 180-word text";
    w.source = "        .data\n" + wordData("text", text) +
        wordData("pat", pattern) + strformat(R"(
result: .space 1
exp:    .word %u
        .text
_start: la   r1, text         ; window start
        addi r2, r0, %u       ; windows to try
        add  r3, r0, r0       ; match count
wloop:  mov  r4, r1
        la   r5, pat
        addi r6, r0, %u       ; pattern length
mloop:  ld   r7, 0(r4)
        ld   r8, 0(r5)
        bne  r7, r8, wnext
        addi r4, r4, 1
        addi r5, r5, 1
        addi r6, r6, -1
        bnz  r6, mloop
        addi r3, r3, 1        ; full match
wnext:  addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, wloop
        st   r3, result
)", matches, textLen - pattern.size() + 1,
                 static_cast<unsigned>(pattern.size())) +
        checkRegion("result", "exp", 1);
    return w;
}

Workload
binSearch()
{
    constexpr unsigned tab = 128;
    std::vector<std::int64_t> table;
    for (unsigned i = 0; i < tab; ++i)
        table.push_back(3 * i + 1);
    Lcg rng(23);
    std::vector<std::int64_t> keys;
    std::int64_t expected = 0;
    for (unsigned q = 0; q < 64; ++q) {
        const std::int64_t key = rng.next(3 * tab + 4);
        keys.push_back(key);
        // mirror the search
        unsigned lo = 0, hi = tab;
        std::int64_t found = -1;
        while (lo < hi) {
            const unsigned mid = (lo + hi) / 2;
            if (table[mid] == key) {
                found = mid;
                break;
            }
            if (table[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
        expected += found;
    }

    Workload w;
    w.name = "binsearch";
    w.family = Family::Pascal;
    w.description = "64 binary searches over a 128-entry table";
    w.source = "        .data\n" + wordData("tab", table) +
        wordData("keys", keys) + strformat(R"(
result: .space 1
exp:    .word %lld
        .text
_start: la   r1, keys
        addi r2, r0, 64       ; queries
        add  r3, r0, r0       ; sum of found indices
qloop:  ld   r4, 0(r1)        ; key
        add  r5, r0, r0       ; lo
        addi r6, r0, %u       ; hi
        addi r9, r0, -1       ; found = -1
bloop:  bge  r5, r6, bdone
        add  r7, r5, r6
        srl  r7, r7, 1        ; mid
        la   r8, tab
        add  r8, r8, r7
        ld   r8, 0(r8)        ; tab[mid]
        bne  r8, r4, bne1
        mov  r9, r7
        b    bdone
bne1:   bge  r8, r4, bhi
        addi r5, r7, 1
        b    bloop
bhi:    mov  r6, r7
        b    bloop
bdone:  add  r3, r3, r9
        addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, qloop
        st   r3, result
)", static_cast<long long>(expected), tab) +
        checkRegion("result", "exp", 1);
    return w;
}

Workload
hashLoop()
{
    constexpr unsigned n = 128;
    Lcg rng(29);
    std::vector<std::int64_t> data;
    for (unsigned i = 0; i < n; ++i)
        data.push_back(static_cast<std::int64_t>(rng.next()));
    word_t h = 0x12345678u;
    for (unsigned i = 0; i < n; ++i) {
        h ^= static_cast<word_t>(data[i]);
        h = (h << 5) + (h >> 27); // rotate-ish
        h += 0x9e3779b9u;
    }

    Workload w;
    w.name = "hash";
    w.family = Family::Pascal;
    w.description = "xor/rotate hash over 128 words";
    w.source = "        .data\n" + wordData("data", data) + strformat(R"(
result: .space 1
exp:    .word %lld
        .text
_start: la   r1, data
        addi r2, r0, %u
        li   r3, 0x12345678   ; h
        li   r10, 0x9e3779b9
hloop:  ld   r4, 0(r1)
        xor  r3, r3, r4
        sll  r5, r3, 5
        srl  r6, r3, 27
        add  r3, r5, r6
        add  r3, r3, r10
        addi r1, r1, 1
        addi r2, r2, -1
        bnz  r2, hloop
        st   r3, result
)", static_cast<long long>(static_cast<std::int32_t>(h)), n) +
        checkRegion("result", "exp", 1);
    return w;
}

Workload
hanoi()
{
    constexpr unsigned n = 10;
    const std::int64_t moves = (1LL << n) - 1;

    Workload w;
    w.name = "hanoi";
    w.family = Family::Pascal;
    w.description = "towers of Hanoi (recursive), 10 discs";
    w.source = strformat(R"(
        .data
result: .space 1
exp:    .word %lld
        .text
_start: addi r2, r0, %u       ; discs
        add  r10, r0, r0      ; move counter
        call hanoi
        st   r10, result
        b    check
        ; hanoi(n = r2): count moves in r10
hanoi:  addi r3, r0, 1
        bne  r2, r3, hrec
        addi r10, r10, 1
        ret
hrec:   addi sp, sp, -2
        st   ra, 0(sp)
        st   r2, 1(sp)
        addi r2, r2, -1
        call hanoi
        addi r10, r10, 1
        ld   r2, 1(sp)
        addi r2, r2, -1
        call hanoi
        ld   ra, 0(sp)
        addi sp, sp, 2
        ret
)", static_cast<long long>(moves), n) + checkRegion("result", "exp", 1);
    return w;
}

Workload
divLoop()
{
    // Exercise the dstep divide path: sum of a[i] / b[i] and remainders.
    constexpr unsigned n = 24;
    Lcg rng(31);
    std::vector<std::int64_t> a, b;
    for (unsigned i = 0; i < n; ++i) {
        a.push_back(static_cast<std::int64_t>(rng.next()));
        b.push_back(1 + rng.next(1000));
    }
    word_t qsum = 0, rsum = 0;
    for (unsigned i = 0; i < n; ++i) {
        qsum += static_cast<word_t>(a[i]) / static_cast<word_t>(b[i]);
        rsum += static_cast<word_t>(a[i]) % static_cast<word_t>(b[i]);
    }

    const std::string div32 = "div32:  movtos md, r2\n"
                              "        add r4, r0, r0\n"
                              "        .rept 32\n"
                              "        dstep r4, r4, r3\n"
                              "        .endr\n"
                              "        movfrs r2, md\n" // quotient
                              "        ret\n"; // remainder in r4

    Workload w;
    w.name = "divide";
    w.family = Family::Pascal;
    w.description = "unsigned divide via 32 dsteps over 24 pairs";
    w.source = "        .data\n" + wordData("da", a) + wordData("db", b) +
        strformat(R"(
result: .space 2
exp:    .word %lld, %lld
        .text
_start: la   r11, da
        la   r12, db
        addi r13, r0, %u
        add  r14, r0, r0      ; qsum
        add  r15, r0, r0      ; rsum
dloop:  ld   r2, 0(r11)
        ld   r3, 0(r12)
        call div32
        add  r14, r14, r2
        add  r15, r15, r4
        addi r11, r11, 1
        addi r12, r12, 1
        addi r13, r13, -1
        bnz  r13, dloop
        st   r14, result
        st   r15, result+1
        b    check
)", static_cast<long long>(static_cast<std::int32_t>(qsum)),
                 static_cast<long long>(static_cast<std::int32_t>(rsum)),
                 n) + div32 + checkRegion("result", "exp", 2);
    return w;
}

Workload
queens()
{
    // N-queens solution count via iterative backtracking with explicit
    // column/diagonal occupancy arrays (classic Pascal benchmark).
    constexpr int n = 7;
    // Mirror: count solutions.
    unsigned count = 0;
    {
        int pos[n];
        bool col[n] = {}, d1[2 * n] = {}, d2[2 * n] = {};
        int row = 0;
        pos[0] = -1;
        while (row >= 0) {
            int c = pos[row] + 1;
            for (; c < n; ++c)
                if (!col[c] && !d1[row + c] && !d2[row - c + n])
                    break;
            if (c == n) {
                pos[row] = -1;
                --row;
                if (row >= 0) {
                    const int pc = pos[row];
                    col[pc] = d1[row + pc] = d2[row - pc + n] = false;
                }
                continue;
            }
            if (pos[row] >= 0) {
                // (never true right after descending; clear handled
                // above on backtrack)
            }
            // clear the previous placement in this row, if any
            // (pos[row] >= 0 means we are re-trying this row)
            pos[row] = c;
            col[c] = d1[row + c] = d2[row - c + n] = true;
            if (row == n - 1) {
                ++count;
                col[c] = d1[row + c] = d2[row - c + n] = false;
                continue;
            }
            ++row;
            pos[row] = -1;
        }
    }

    Workload w;
    w.name = "queens";
    w.family = Family::Pascal;
    w.description = "7-queens solution count, recursive backtracking";
    // The assembly uses straightforward recursion instead of the
    // iterative mirror (same count): place(row): for c in 0..n-1 if
    // free, mark, recurse / count, unmark.
    w.source = strformat(R"(
        .data
colA:   .space %d
d1A:    .space %d
d2A:    .space %d
result: .space 1
exp:    .word %u
        .text
_start: add  r10, r0, r0      ; solution count
        add  r2, r0, r0       ; row 0
        call place
        st   r10, result
        b    check
        ; place(row = r2); clobbers r3..r9
place:  addi sp, sp, -3
        st   ra, 0(sp)
        st   r2, 1(sp)
        add  r3, r0, r0       ; c
ploop:  addi r4, r0, %d
        bge  r3, r4, pdone
        ; occupied?
        la   r5, colA
        add  r5, r5, r3
        ld   r6, 0(r5)
        bnz  r6, pnext
        add  r7, r2, r3       ; row + c
        la   r5, d1A
        add  r5, r5, r7
        ld   r6, 0(r5)
        bnz  r6, pnext
        sub  r7, r2, r3       ; row - c + n
        addi r7, r7, %d
        la   r5, d2A
        add  r5, r5, r7
        ld   r6, 0(r5)
        bnz  r6, pnext
        ; mark
        addi r6, r0, 1
        la   r5, colA
        add  r5, r5, r3
        st   r6, 0(r5)
        add  r7, r2, r3
        la   r5, d1A
        add  r5, r5, r7
        st   r6, 0(r5)
        sub  r7, r2, r3
        addi r7, r7, %d
        la   r5, d2A
        add  r5, r5, r7
        st   r6, 0(r5)
        ; last row?
        addi r4, r0, %d
        bne  r2, r4, precur
        addi r10, r10, 1
        b    punmark
precur: st   r3, 2(sp)
        addi r2, r2, 1
        call place
        ld   r2, 1(sp)
        ld   r3, 2(sp)
punmark:
        ld   r2, 1(sp)        ; reload row (clobbered by recursion)
        la   r5, colA
        add  r5, r5, r3
        st   r0, 0(r5)
        add  r7, r2, r3
        la   r5, d1A
        add  r5, r5, r7
        st   r0, 0(r5)
        sub  r7, r2, r3
        addi r7, r7, %d
        la   r5, d2A
        add  r5, r5, r7
        st   r0, 0(r5)
pnext:  addi r3, r3, 1
        b    ploop
pdone:  ld   ra, 0(sp)
        addi sp, sp, 3
        ret
)", n, 2 * n, 2 * n, count, n, n, n, n - 1, n) +
        checkRegion("result", "exp", 1);
    return w;
}

Workload
perm()
{
    // The Stanford "perm" benchmark: generate all permutations of
    // n elements by recursive swapping, accumulating an order-sensitive
    // checksum of every permutation visited.
    constexpr unsigned n = 5;
    std::vector<word_t> arr;
    for (unsigned i = 0; i < n; ++i)
        arr.push_back(i + 1);
    word_t checksum = 0;
    // Mirror of the recursive generator below.
    auto rec = [&](auto &&self, unsigned k) -> void {
        if (k == n) {
            for (unsigned i = 0; i < n; ++i)
                checksum = checksum * 31 + arr[i];
            return;
        }
        for (unsigned i = k; i < n; ++i) {
            std::swap(arr[k], arr[i]);
            self(self, k + 1);
            std::swap(arr[k], arr[i]);
        }
    };
    rec(rec, 0);

    Workload w;
    w.name = "perm";
    w.family = Family::Pascal;
    w.description = "Stanford perm: all permutations of 5 elements";
    w.source = strformat(R"(
        .data
arr:    .word 1, 2, 3, 4, 5
result: .space 1
exp:    .word %lld
        .text
_start: add  r10, r0, r0      ; checksum
        add  r2, r0, r0       ; k = 0
        call perm
        st   r10, result
        b    check
        ; perm(k = r2); clobbers r3..r9, r11..r13
perm:   addi r3, r0, %u
        bne  r2, r3, prec
        ; k == n: fold the permutation into the checksum
        la   r4, arr
        addi r5, r0, %u
fold:   ld   r6, 0(r4)
        sll  r7, r10, 5       ; checksum*31 = (c<<5) - c
        sub  r7, r7, r10
        add  r10, r7, r6
        addi r4, r4, 1
        addi r5, r5, -1
        bnz  r5, fold
        ret
prec:   addi sp, sp, -3
        st   ra, 0(sp)
        st   r2, 1(sp)
        mov  r8, r2           ; i = k
ploop:  addi r3, r0, %u
        bge  r8, r3, pdone
        ; swap arr[k], arr[i]
        st   r8, 2(sp)
        la   r4, arr
        add  r5, r4, r2       ; &arr[k]
        add  r6, r4, r8       ; &arr[i]
        ld   r7, 0(r5)
        ld   r9, 0(r6)
        st   r9, 0(r5)
        st   r7, 0(r6)
        addi r2, r2, 1
        call perm
        ld   r2, 1(sp)        ; restore k
        ld   r8, 2(sp)        ; restore i
        ; swap back
        la   r4, arr
        add  r5, r4, r2
        add  r6, r4, r8
        ld   r7, 0(r5)
        ld   r9, 0(r6)
        st   r9, 0(r5)
        st   r7, 0(r6)
        addi r8, r8, 1
        b    ploop
pdone:  ld   ra, 0(sp)
        addi sp, sp, 3
        ret
)", static_cast<long long>(static_cast<std::int32_t>(checksum)), n, n,
                 n) + checkRegion("result", "exp", 1);
    return w;
}

} // namespace

std::vector<Workload>
pascalWorkloads()
{
    return {bubbleSort(), quickSort(), matMul(),   sieve(),  fib(),
            strSearch(),  binSearch(), hashLoop(), hanoi(),  divLoop(),
            queens(),     perm()};
}

} // namespace mipsx::workload
