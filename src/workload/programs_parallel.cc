/**
 * @file
 * Shared-memory multiprocessor workloads (see mp/multi_machine.hh).
 *
 * Convention: r25 = CPU id, r26 = CPU count (set by the MultiMachine).
 * Work is partitioned into contiguous blocks — the slice bounds are
 * computed at run time with the dstep divider — so each CPU streams its
 * own cache lines; synchronization is flag-based (every store is
 * immediately visible: the lockstep machine is sequentially consistent),
 * the idiom of the era's shared-memory codes. CPU 0 aggregates and
 * self-checks; workers halt after raising their done flags.
 */

#include "workload/workload.hh"

#include "workload/wl_util.hh"

namespace mipsx::workload
{

namespace
{

constexpr unsigned maxCpus = 16;

/**
 * Shared prologue: compute this CPU's block [r1, r3) of an @p n-word
 * array at label arr. Uses r5, r14, r15; leaves id/count intact.
 */
std::string
blockPrologue(unsigned n)
{
    std::string s = strformat(R"(
_start: li   r14, %u
        movtos md, r14        ; slice = n / ncpus (32 dsteps)
        add  r15, r0, r0
        .rept 32
        dstep r15, r15, r26
        .endr
)", n);
    s += strformat(R"(
        movfrs r14, md        ; the quotient
        add  r1, r0, r0       ; lo = id * slice
        mov  r5, r25
mullo:  bz   r5, mdone
        add  r1, r1, r14
        addi r5, r5, -1
        b    mullo
mdone:  add  r3, r1, r14      ; hi = lo + slice ...
        addi r5, r26, -1
        bne  r25, r5, bounds
        li   r3, %u           ; ... except the last CPU takes the tail
bounds: la   r4, arr
        add  r1, r4, r1
        add  r3, r4, r3
)", n);
    return s;
}

/** Shared epilogue: publish the partial, flag-barrier, aggregate. */
std::string
barrierEpilogue()
{
    return R"(
sdone:  la   r5, partials
        add  r5, r5, r25
        st   r2, 0(r5)
        la   r5, done
        add  r5, r5, r25
        addi r6, r0, 1
        st   r6, 0(r5)
        bnz  r25, workerdone   ; only CPU 0 aggregates
        add  r7, r0, r0
wloop:  bge  r7, r26, agg
        la   r5, done
        add  r5, r5, r7
        ld   r8, 0(r5)
        bz   r8, wloop         ; spin until CPU r7 is done
        addi r7, r7, 1
        b    wloop
agg:    add  r9, r0, r0
        add  r7, r0, r0
aloop:  bge  r7, r26, fin
        la   r5, partials
        add  r5, r5, r7
        ld   r10, 0(r5)
        add  r9, r9, r10
        addi r7, r7, 1
        b    aloop
fin:    st   r9, total
        b    check
workerdone:
        halt
)";
}

Workload
parallelSum()
{
    constexpr unsigned n = 8192;
    Lcg rng(83);
    std::vector<std::int64_t> data;
    word_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        data.push_back(static_cast<std::int32_t>(rng.next(100000)) -
                       50000);
        sum += static_cast<word_t>(data.back());
    }

    Workload w;
    w.name = "psum";
    w.family = Family::Pascal;
    w.description = "parallel blocked sum of 8192 words (memory-bound)";
    w.source = "        .data\n" + wordData("arr", data) + strformat(R"(
partials: .space %u
done:     .space %u
total:    .space 1
exp:      .word %lld
        .text
)", maxCpus, maxCpus,
                 static_cast<long long>(static_cast<std::int32_t>(sum))) +
        blockPrologue(n) + R"(
        add  r2, r0, r0        ; partial sum
sloop:  bge  r1, r3, sdone
        ld   r4, 0(r1)
        add  r2, r2, r4
        addi r1, r1, 1
        b    sloop
)" + barrierEpilogue() + checkRegion("total", "exp", 1);
    return w;
}

Workload
parallelPoly()
{
    // Compute-bound: out[i] = x^3 + 3x^2 + 7x + 1 (mod 2^32), repeated
    // for several sweeps over the (cache-warm) block; the partial is a
    // checksum of every sweep's outputs.
    constexpr unsigned n = 1024;
    constexpr unsigned sweeps = 6;
    Lcg rng(89);
    std::vector<std::int64_t> data;
    word_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        const word_t x = rng.next();
        data.push_back(static_cast<std::int32_t>(x));
        const word_t v = x * x * x + 3 * x * x + 7 * x + 1;
        sum += v;
    }
    sum *= sweeps;

    Workload w;
    w.name = "ppoly";
    w.family = Family::Pascal;
    w.description =
        "parallel cubic polynomial, 6 warm sweeps (compute-bound)";
    w.source = "        .data\n" + wordData("arr", data) + strformat(R"(
out:      .space %u
partials: .space %u
done:     .space %u
total:    .space 1
exp:      .word %lld
        .text
)", n, maxCpus, maxCpus,
                 static_cast<long long>(static_cast<std::int32_t>(sum))) +
        blockPrologue(n) + strformat(R"(
        add  r2, r0, r0        ; checksum across all sweeps
        addi r20, r0, %u       ; sweep counter
        mov  r21, r1           ; remember the block bounds
        mov  r22, r3
sweep:  mov  r1, r21
outer:  bge  r1, r22, snext
        ld   r12, 0(r1)        ; x
        mov  r14, r12          ; x^2
        mov  r15, r12
        call mulp
        mov  r16, r14
        mov  r15, r12          ; x^3
        call mulp
        add  r17, r16, r16     ; 3x^2
        add  r17, r17, r16
        add  r14, r14, r17
        sll  r17, r12, 3       ; 7x
        sub  r17, r17, r12
        add  r14, r14, r17
        addi r14, r14, 1
        la   r17, out
        sub  r18, r1, r4       ; element index (arr base in r4)
        add  r17, r17, r18
        st   r14, 0(r17)
        add  r2, r2, r14
        addi r1, r1, 1
        b    outer
snext:  addi r20, r20, -1
        bnz  r20, sweep
        b    sdone
        ; mulp: r14 = r14 * r15 (32 msteps), clobbers r19
mulp:   movtos md, r14
        add  r19, r0, r0
        .rept 32
        mstep r19, r19, r15
        .endr
        mov  r14, r19
        ret
)", sweeps) + barrierEpilogue() + checkRegion("total", "exp", 1);
    return w;
}

Workload
parallelScale()
{
    // Store-heavy and cache-resident: out[i] = 2*arr[i] + 1, swept four
    // times over the warm block. Half the references are stores, which
    // makes this the write-policy stress case: copy-back keeps the
    // dirty lines in the Ecache, write-through pushes every store over
    // the shared bus.
    constexpr unsigned n = 2048;
    constexpr unsigned sweeps = 4;
    Lcg rng(97);
    std::vector<std::int64_t> data;
    word_t sum = 0;
    for (unsigned i = 0; i < n; ++i) {
        const word_t x = rng.next();
        data.push_back(static_cast<std::int32_t>(x));
        sum += 2 * x + 1;
    }
    sum *= sweeps;

    Workload w;
    w.name = "pscale";
    w.family = Family::Pascal;
    w.description =
        "parallel scale out[i]=2*a[i]+1, 4 sweeps (store-heavy)";
    w.source = "        .data\n" + wordData("arr", data) + strformat(R"(
out:      .space %u
partials: .space %u
done:     .space %u
total:    .space 1
exp:      .word %lld
        .text
)", n, maxCpus, maxCpus,
                 static_cast<long long>(static_cast<std::int32_t>(sum))) +
        blockPrologue(n) + strformat(R"(
        add  r2, r0, r0
        addi r20, r0, %u       ; sweeps
        mov  r21, r1
        mov  r22, r3
sweep:  mov  r1, r21
inner:  bge  r1, r22, snext
        ld   r12, 0(r1)
        add  r12, r12, r12
        addi r12, r12, 1
        la   r17, out
        sub  r18, r1, r4
        add  r17, r17, r18
        st   r12, 0(r17)
        add  r2, r2, r12
        addi r1, r1, 1
        b    inner
snext:  addi r20, r20, -1
        bnz  r20, sweep
        b    sdone
)", sweeps) + barrierEpilogue() + checkRegion("total", "exp", 1);
    return w;
}

} // namespace

std::vector<Workload>
parallelWorkloads()
{
    return {parallelSum(), parallelPoly(), parallelScale()};
}

} // namespace mipsx::workload
