#include "workload/workload.hh"

#include "assembler/assembler.hh"
#include "common/sim_error.hh"

namespace mipsx::workload
{

const char *
familyName(Family f)
{
    switch (f) {
      case Family::Pascal: return "pascal";
      case Family::Lisp: return "lisp";
      case Family::Fp: return "fp";
    }
    return "?";
}

std::vector<Workload>
fullSuite()
{
    std::vector<Workload> all;
    for (auto &w : pascalWorkloads())
        all.push_back(std::move(w));
    for (auto &w : lispWorkloads())
        all.push_back(std::move(w));
    for (auto &w : fpWorkloads())
        all.push_back(std::move(w));
    for (auto &w : bigCodeWorkloads())
        all.push_back(std::move(w));
    return all;
}

std::string
mul32Routine()
{
    return "mul32:  movtos md, r2\n"
           "        add r4, r0, r0\n"
           "        .rept 32\n"
           "        mstep r4, r4, r3\n"
           "        .endr\n"
           "        mov r2, r4\n"
           "        ret\n";
}

WorkloadRun
runWorkload(const Workload &w, const sim::MachineConfig &machine_cfg,
            const reorg::ReorgConfig &reorg_cfg)
{
    const auto prog = assembler::assemble(w.source, w.name + ".s");

    // Functional validation of the sequential source first: a workload
    // that fails here is broken regardless of the machine model.
    {
        memory::MainMemory mem;
        const auto r = sim::runIss(prog, mem);
        if (r.reason != sim::IssStop::Halt) {
            fatal(strformat("workload '%s' failed functional validation",
                            w.name.c_str()));
        }
    }

    WorkloadRun out;
    const auto reorged = reorg::reorganize(prog, reorg_cfg, &out.reorg);

    sim::Machine machine(machine_cfg);
    machine.load(reorged);
    const auto result = machine.run();

    out.reason = result.reason;
    out.passed = result.reason == core::StopReason::Halt;
    out.pipeline = machine.cpu().stats();
    out.icacheMissRatio = machine.cpu().icache().missRatio();
    out.icacheFetchCost = machine.cpu().icache().avgFetchCost();
    out.icacheAccesses = machine.cpu().icache().accesses();
    out.icacheMisses = machine.cpu().icache().misses();
    out.ecacheMissRatio = machine.cpu().ecache().missRatio();
    out.ecacheAccesses = machine.cpu().ecache().accesses();
    return out;
}

std::map<addr_t, double>
collectProfile(const Workload &w)
{
    const auto prog = assembler::assemble(w.source, w.name + ".s");
    memory::MainMemory mem;
    mem.loadProgram(prog);
    sim::IssConfig cfg;
    sim::Iss iss(cfg, mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());

    struct Acc
    {
        std::uint64_t taken = 0;
        std::uint64_t total = 0;
    };
    std::map<addr_t, Acc> acc;
    iss.setBranchHook([&acc](const sim::BranchEvent &ev) {
        if (!ev.conditional)
            return;
        auto &a = acc[ev.pc];
        ++a.total;
        if (ev.taken)
            ++a.taken;
    });
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, 0x70000);
    if (iss.run() != sim::IssStop::Halt)
        fatal(strformat("workload '%s' failed during profiling",
                        w.name.c_str()));

    std::map<addr_t, double> out;
    for (const auto &[pc, a] : acc)
        out[pc] = static_cast<double>(a.taken) / a.total;
    return out;
}

} // namespace mipsx::workload
