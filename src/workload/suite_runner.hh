/**
 * @file
 * Run the whole workload suite — serially or on a worker pool — and
 * aggregate the statistics the paper's tables report.
 *
 * Every workload is independent (each gets its own Machine), so the
 * suite parallelises trivially; what must NOT change with the worker
 * count is the output. The runner therefore keeps one result slot per
 * workload, merges them in suite order after the join, and collects
 * failure records instead of printing from worker threads. The
 * aggregated SuiteStats (and the failure list) are bit-identical for
 * any job count, which the EXPERIMENTS tables rely on.
 */

#ifndef MIPSX_WORKLOAD_SUITE_RUNNER_HH
#define MIPSX_WORKLOAD_SUITE_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/energy.hh"
#include "trace/metrics.hh"
#include "workload/workload.hh"

namespace mipsx::workload
{

/** Aggregated statistics over a set of workloads. */
struct SuiteStats
{
    unsigned workloads = 0;
    unsigned failures = 0;
    cycle_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedNops = 0;
    std::uint64_t nopsInBranchSlots = 0;
    std::uint64_t nopsForLoadDelay = 0;
    std::uint64_t squashed = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t branchWastedSlots = 0;
    std::uint64_t jumps = 0;
    std::uint64_t jumpWastedSlots = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t icacheRefillWords = 0;
    std::uint64_t icacheStalls = 0;
    std::uint64_t ecacheAccesses = 0;
    std::uint64_t ecacheMisses = 0;
    std::uint64_t ecacheWritebacks = 0;
    std::uint64_t ecacheMemCycles = 0; ///< memory-bus traffic cycles
    std::uint64_t ecacheStalls = 0;
    // Geometry echoes for the energy model's capacity-scaled read
    // costs: configuration shared by every workload, so merge() takes
    // the maximum instead of summing.
    std::uint64_t icacheSizeWords = 0;
    std::uint64_t ecacheSizeWords = 0;
    /**
     * Instructions and cycles the stats gates excluded: ISS
     * fast-forward steps plus warm-up prefixes (plain runs' warm-up
     * gate and every interval's re-priming prefix). Accounted
     * separately — none of the headline counters above include them —
     * and exported under the "<prefix>.warmup.*" keys.
     */
    std::uint64_t warmupInstructions = 0;
    std::uint64_t warmupCycles = 0;

    bool operator==(const SuiteStats &) const = default;

    /** The aggregate event counts the energy model prices. */
    stats::EnergyCounts energyCounts() const
    {
        stats::EnergyCounts n;
        n.cycles = cycles;
        n.committed = committed;
        n.icacheAccesses = icacheAccesses;
        n.icacheMisses = icacheMisses;
        n.icacheRefillWords = icacheRefillWords;
        n.ecacheAccesses = ecacheAccesses;
        n.ecacheMisses = ecacheMisses;
        n.memTrafficCycles = ecacheMemCycles;
        n.icacheSizeWords = icacheSizeWords;
        n.ecacheSizeWords = ecacheSizeWords;
        return n;
    }

    double cpi() const
    {
        return committed ? double(cycles) / double(committed) : 0.0;
    }
    double noopFraction() const
    {
        return committed ? double(committedNops) / double(committed) : 0.0;
    }
    double cyclesPerBranch() const
    {
        return branches ? 1.0 + double(branchWastedSlots) / double(branches)
                        : 0.0;
    }
    double cyclesPerControl() const
    {
        const auto n = branches + jumps;
        return n ? 1.0 +
                double(branchWastedSlots + jumpWastedSlots) / double(n)
                 : 0.0;
    }
    double icacheMissRatio() const
    {
        return icacheAccesses ? double(icacheMisses) / double(icacheAccesses)
                              : 0.0;
    }
    double avgFetchCost() const
    {
        return icacheAccesses
            ? 1.0 + double(icacheStalls) / double(icacheAccesses)
            : 0.0;
    }
    double ecacheMissRatio() const
    {
        return ecacheAccesses ? double(ecacheMisses) / double(ecacheAccesses)
                              : 0.0;
    }
};

/** One workload that did not halt cleanly. */
struct SuiteFailure
{
    unsigned index = 0;  ///< position in the suite (failures stay sorted)
    std::string name;    ///< workload name
    std::string reason;  ///< stop reason, if the machine stopped itself
    std::string error;   ///< exception text, if the toolchain threw

    bool operator==(const SuiteFailure &) const = default;
};

/**
 * Host-side timing of one suite run, split into the two phases the
 * prepared-workload cache separates: prepare (assemble + profile +
 * reorganize + predecode — cache hits make this near zero) and
 * simulate (inside Machine::run()). Both phase times are summed over
 * workloads, so they are additive across workers and exceed wall time
 * on a parallel run.
 */
struct SuiteTiming
{
    /** Wall time of the whole run (prepare + simulate, all workers). */
    double hostSeconds = 0;
    /** Host time obtaining each workload's prepared image. */
    double prepareSeconds = 0;
    /**
     * Host time spent inside Machine::run() only. This is the number
     * to compare across simulator versions: it excludes the toolchain
     * phases, which dominate an uncached single pass over the suite.
     */
    double simSeconds = 0;
    std::uint64_t simInstructions = 0;
    unsigned jobs = 1;

    double instrPerHostSecond() const
    {
        return hostSeconds > 0 ? double(simInstructions) / hostSeconds : 0.0;
    }
    double instrPerSimSecond() const
    {
        return simSeconds > 0 ? double(simInstructions) / simSeconds : 0.0;
    }
};

/** Options for runSuite(). */
struct SuiteRunOptions
{
    sim::MachineConfig machine{};
    reorg::ReorgConfig reorg{};
    /** Reorganize with a per-branch ISS profile (Table 1's rows). */
    bool useProfiles = false;
    /** Worker threads; 0 means defaultSuiteJobs(). */
    unsigned jobs = 0;
    /** Decode each program word once at load time (see DESIGN.md). */
    bool predecode = true;
    /**
     * Serve prepared images (assembled + reorganized + predecoded)
     * from the process-wide PreparedCache; off rebuilds every workload
     * from source on each run. Purely a when-the-work-happens switch:
     * stats, failures and sweep outputs are bit-identical either way.
     */
    bool preparedCache = true;
    /**
     * Run every workload on an N-CPU shared-memory MultiMachine
     * instead of the uniprocessor Machine (all CPUs execute the same
     * self-checking program in lockstep; the aggregate counters show
     * bus contention). 0 or 1 = uniprocessor. Interval splitting
     * (machine.intervals) applies to uniprocessor runs only.
     */
    unsigned mpMachines = 0;
    /** Words between per-CPU stacks in the multiprocessor convention. */
    addr_t mpStackSpacing = 0x2000;
};

/**
 * The worker count used when SuiteRunOptions::jobs is 0: the
 * MIPSX_BENCH_JOBS environment variable if set to a positive integer,
 * otherwise std::thread::hardware_concurrency(), with a floor of 1.
 */
unsigned defaultSuiteJobs();

/** Everything one suite run produces. */
struct SuiteResult
{
    SuiteStats stats;
    std::vector<SuiteFailure> failures; ///< sorted by suite index
    SuiteTiming timing;
};

/**
 * Run every workload in @p ws and aggregate. Deterministic: the result
 * (stats and failures; not timing) is identical for every job count.
 */
SuiteResult runSuite(const std::vector<Workload> &ws,
                     const SuiteRunOptions &opts = {});

/**
 * Export the aggregated suite statistics (counts plus the derived
 * ratios the paper's tables use) into @p m under "<prefix>.".
 */
void collectMetrics(const SuiteStats &s, trace::MetricsRegistry &m,
                    const std::string &prefix = "suite");

/**
 * Export the phase-split run timing (host/prepare/simulate seconds and
 * the derived throughputs) into @p m under "<prefix>.". Kept separate
 * from collectMetrics so deterministic outputs (sweep CSV/JSON) never
 * ingest host-dependent values.
 */
void collectTiming(const SuiteTiming &t, trace::MetricsRegistry &m,
                   const std::string &prefix = "suite.timing");

/**
 * Price the aggregated cache/cycle counters of @p s with @p costs and
 * export the breakdown into @p m under "<prefix>." — the "energy.*"
 * keys every sweep row, bench file and serve suite reply carries.
 */
void collectEnergy(const SuiteStats &s, const stats::EnergyCosts &costs,
                   trace::MetricsRegistry &m,
                   const std::string &prefix = "energy");

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_SUITE_RUNNER_HH
