/**
 * @file
 * The content-addressed prepared-workload image cache.
 *
 * A full suite pass is dominated by the toolchain — assemble, profile
 * (optionally), reorganize, predecode — yet the result depends only on
 * the workload source and the ReorgConfig, both of which repeat
 * endlessly across suite runs, explore sweep points and benchmark
 * repetitions. The cache builds each (workload, config) preparation
 * exactly once, keyed by a fingerprint of the source text and the
 * canonical ReorgConfig serialization, and hands out one immutable
 * PreparedWorkload that every run shares:
 *
 *  - the reorganized Program is loaded read-only by each Machine (the
 *    Machine keeps a pointer into it, which the shared_ptr keeps
 *    alive for as long as any cache entry or caller holds it);
 *  - the DecodedImage::Snapshot is adopted copy-on-write, so a run
 *    whose program patches its own text clones the affected decode
 *    page privately and can never contaminate a concurrent run.
 *
 * Thread safety: entries are shared_futures created under the cache
 * mutex, so concurrent requests for the same key deduplicate — one
 * thread builds, the rest wait on the future — while requests for
 * different keys build in parallel. By construction the cache cannot
 * change results, only when the preparation work happens; the
 * cache-on-vs-off determinism tests assert exactly that.
 */

#ifndef MIPSX_WORKLOAD_PREPARED_HH
#define MIPSX_WORKLOAD_PREPARED_HH

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "assembler/program.hh"
#include "memory/decoded_image.hh"
#include "reorg/scheduler.hh"
#include "workload/workload.hh"

namespace mipsx::workload
{

/** One workload, fully prepared to load into a Machine or Iss. */
struct PreparedWorkload
{
    std::string name;
    assembler::Program image; ///< reorganized, pipeline-ready
    reorg::ReorgStats reorgStats;
    /** Shared predecode of image's text (copy-on-write on adoption). */
    memory::DecodedImage::Snapshot decoded;
};

using PreparedPtr = std::shared_ptr<const PreparedWorkload>;

/**
 * Assemble + (optionally) profile + reorganize + predecode @p w from
 * scratch — the cache-off path, and the builder the cache runs on a
 * miss. @p useProfiles mirrors SuiteRunOptions::useProfiles.
 */
PreparedPtr prepareWorkload(const Workload &w,
                            const reorg::ReorgConfig &rc,
                            bool useProfiles);

/**
 * Canonical serialization of every ReorgConfig field (profile map
 * included, as hex-float entries) — the config component of the cache
 * key. Two configs fingerprint equal iff reorganize() cannot tell them
 * apart.
 */
std::string reorgFingerprint(const reorg::ReorgConfig &rc);

/** FNV-1a 64-bit hash of the workload source text. */
std::uint64_t sourceFingerprint(const std::string &source);

/** Cache observability (tests, tool summaries). */
struct PreparedCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
};

/** The thread-safe content-addressed cache of PreparedWorkloads. */
class PreparedCache
{
  public:
    /**
     * The prepared image for (@p w, @p rc, @p useProfiles), building it
     * on first request. A build failure (e.g. an assembler error) is
     * cached too and rethrown to every requester — preparation is
     * deterministic, so retrying cannot change the answer.
     */
    PreparedPtr get(const Workload &w, const reorg::ReorgConfig &rc,
                    bool useProfiles);

    /** Drop every entry (tests; frees the images once runs finish). */
    void clear();

    PreparedCacheStats stats() const;

    /** The process-wide cache used by runSuite and the cosim loop. */
    static PreparedCache &global();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<PreparedPtr>>
        entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mipsx::workload

#endif // MIPSX_WORKLOAD_PREPARED_HH
