#include "trace/metrics.hh"

#include <cstdio>
#include <fstream>

namespace mipsx::trace
{

MetricsRegistry::Value &
MetricsRegistry::slot(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return entries_[it->second].second;
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, Value{});
    return entries_.back().second;
}

void
MetricsRegistry::set(const std::string &name, std::uint64_t v)
{
    Value &val = slot(name);
    val.integer = v;
    val.real = 0;
    val.isInt = true;
}

void
MetricsRegistry::set(const std::string &name, double v)
{
    Value &val = slot(name);
    val.real = v;
    val.integer = 0;
    val.isInt = false;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

double
MetricsRegistry::get(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? 0.0
                              : entries_[it->second].second.asDouble();
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, v] : other.entries_) {
        const auto it = index_.find(name);
        if (it == index_.end()) {
            index_.emplace(name, entries_.size());
            entries_.emplace_back(name, v);
            continue;
        }
        Value &mine = entries_[it->second].second;
        if (mine.isInt && v.isInt) {
            mine.integer += v.integer;
        } else {
            mine.real = mine.asDouble() + v.asDouble();
            mine.integer = 0;
            mine.isInt = false;
        }
    }
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, v] : entries_)
        out.push_back(name);
    return out;
}

std::vector<std::pair<std::string, std::string>>
MetricsRegistry::formatted() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const auto &[name, v] : entries_) {
        char buf[64];
        if (v.isInt) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(v.integer));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v.real);
        }
        out.emplace_back(name, buf);
    }
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    const auto rows = formatted();
    os << "{\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << "  \"" << jsonEscape(rows[i].first)
           << "\": " << rows[i].second
           << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "}\n";
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
        return false;
    }
    writeJson(f);
    return true;
}

} // namespace mipsx::trace
