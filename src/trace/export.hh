/**
 * @file
 * Trace exporters.
 *
 * Two consumers:
 *  - writeChromeTrace: the Chrome trace_event JSON object format
 *    (load into chrome://tracing or Perfetto). One simulated cycle maps
 *    to one microsecond of trace time; events with a duration payload
 *    (stall, imiss, emiss) become complete ("X") events, everything
 *    else an instant ("i"). Events are grouped into four lanes (tids):
 *    instructions, control, memory, coprocessor.
 *  - formatEvent / dumpTrace: fixed-width text lines with disassembly,
 *    used by --trace-out's sibling --trace printing and by the cosim
 *    divergence reporter.
 */

#ifndef MIPSX_TRACE_EXPORT_HH
#define MIPSX_TRACE_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace mipsx::trace
{

/** Presentation knobs for the Chrome exporter. */
struct ChromeTraceOptions
{
    unsigned pid = 0; ///< process id (cpu id on a multiprocessor)
    std::string processName = "mipsx";
};

/** Write @p events as a Chrome trace_event JSON object. */
void writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                      const ChromeTraceOptions &opts = {});

/** writeChromeTrace to @p path; false (with a stderr note) on error. */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<Event> &events,
                          const ChromeTraceOptions &opts = {});

/** One fixed-width text line, disassembling raw when it is a word. */
std::string formatEvent(const Event &e);

/**
 * Print the last @p last_n events of @p buf (0 = all held events) as
 * text lines, one per event.
 */
void dumpTrace(std::ostream &os, const TraceBuffer &buf,
               std::size_t last_n = 0);

} // namespace mipsx::trace

#endif // MIPSX_TRACE_EXPORT_HH
