/**
 * @file
 * A unified, named-counter metrics registry.
 *
 * The simulator's statistics were grown per component: PipelineStats on
 * the Cpu, stats::Counter members on ICache/ECache, SuiteStats on the
 * suite runner. The registry puts them all behind one flat namespace of
 * dotted names ("cpu0.pipeline.cycles", "cpu0.icache.misses",
 * "suite.committed", ...) that keeps insertion order, can be merged
 * across runs, and exports as a flat JSON object alongside the
 * BENCH_*.json files — one schema for every consumer.
 *
 * Producers live with the counters they expose: Cpu::collectMetrics,
 * Iss::collectMetrics and workload::collectMetrics fill a registry from
 * their own statistics.
 */

#ifndef MIPSX_TRACE_METRICS_HH
#define MIPSX_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mipsx::trace
{

/** Flat map of named numeric metrics; insertion-ordered for export. */
class MetricsRegistry
{
  public:
    /** Set (or overwrite) an integer-valued metric. */
    void set(const std::string &name, std::uint64_t v);
    void set(const std::string &name, unsigned v)
    {
        set(name, static_cast<std::uint64_t>(v));
    }
    /** Set (or overwrite) a real-valued metric. */
    void set(const std::string &name, double v);

    bool has(const std::string &name) const;
    /** Value of @p name, or 0 when absent. */
    double get(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /**
     * Sum @p other into this registry. New names append; matching
     * names add (a name integer on both sides stays integer).
     */
    void merge(const MetricsRegistry &other);

    /** Metric names in insertion order. */
    std::vector<std::string> names() const;

    /**
     * Every metric as (name, printed value) in insertion order, using
     * exactly the writeJson() encoding (integers exact, reals %.17g).
     * Emitters that must stay bit-identical with the JSON export (the
     * explore engine's CSV) format through this instead of get().
     */
    std::vector<std::pair<std::string, std::string>> formatted() const;

    /**
     * Write the registry as one flat JSON object, insertion order
     * preserved; integers print exactly, reals as %.17g.
     */
    void writeJson(std::ostream &os) const;
    /** writeJson to @p path; false (with a stderr note) on error. */
    bool writeJsonFile(const std::string &path) const;

  private:
    struct Value
    {
        double real = 0;
        std::uint64_t integer = 0;
        bool isInt = false;
        double asDouble() const
        {
            return isInt ? static_cast<double>(integer) : real;
        }
    };

    Value &slot(const std::string &name);

    std::vector<std::pair<std::string, Value>> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace mipsx::trace

#endif // MIPSX_TRACE_METRICS_HH
