#include "trace/trace.hh"

namespace mipsx::trace
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Fetch: return "fetch";
      case EventKind::Issue: return "issue";
      case EventKind::Stall: return "stall";
      case EventKind::Squash: return "squash";
      case EventKind::IMiss: return "imiss";
      case EventKind::IRefill: return "irefill";
      case EventKind::EMissLate: return "emiss";
      case EventKind::Coproc: return "coproc";
      case EventKind::Exception: return "exception";
      case EventKind::Restart: return "restart";
      case EventKind::Retire: return "retire";
    }
    return "?";
}

void
TraceBuffer::setCapacity(std::size_t n)
{
    buf_.assign(n, Event{});
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

void
TraceBuffer::clear()
{
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

std::vector<Event>
TraceBuffer::events() const
{
    return lastEvents(size_);
}

std::vector<Event>
TraceBuffer::lastEvents(std::size_t n) const
{
    if (n > size_)
        n = size_;
    std::vector<Event> out;
    out.reserve(n);
    // head_ is one past the newest event; walk back n slots.
    std::size_t start = (head_ + buf_.size() - n) % (buf_.empty() ? 1 : buf_.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(buf_[start]);
        start = start + 1 == buf_.size() ? 0 : start + 1;
    }
    return out;
}

} // namespace mipsx::trace
