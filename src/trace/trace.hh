/**
 * @file
 * Cycle-level event tracing.
 *
 * The paper's tradeoff studies are cycle-accounting arguments (miss
 * cycles, squash cycles, wasted branch slots); aggregate counters say
 * *how many* cycles went where but not *when* or *why*. The tracer
 * records the pipeline's micro-events — fetch, issue, stall, squash,
 * instruction-cache miss and refill, external-cache late miss,
 * coprocessor handshakes, exception entry and restart, and retires —
 * into a fixed-capacity ring buffer of POD events.
 *
 * Design constraints:
 *  - Zero overhead when disabled. Emitters hold a TraceBuffer pointer
 *    that is null when tracing is off; the only cost on the hot path is
 *    one pointer test. bench_simulator_speed asserts the suite runs no
 *    slower with tracing compiled in but disabled.
 *  - Deterministic under the parallel suite runner. Every Machine owns
 *    its own buffer; nothing is shared between workers.
 *  - Bounded memory. The ring keeps the most recent `capacity` events
 *    and counts what it dropped, so a 10^8-cycle run with a 64k-deep
 *    buffer still ends with the tail that matters (e.g. the events
 *    leading up to a cosim divergence).
 */

#ifndef MIPSX_TRACE_TRACE_HH
#define MIPSX_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.hh"

namespace mipsx::trace
{

/** What happened. See the emitters in core/cpu.cc and sim/iss.cc. */
enum class EventKind : std::uint8_t
{
    Fetch,     ///< a word entered IF; raw = instruction
    Issue,     ///< a live instruction entered ALU; raw = instruction
    Stall,     ///< the w1 clock is withheld; arg = cycles, pc = culprit
    Squash,    ///< a branch squashed its slots; raw = the branch
    IMiss,     ///< instruction-cache miss; arg = miss penalty
    IRefill,   ///< one word fetched back into the icache; pc = its addr
    EMissLate, ///< external-cache late miss; arg = stall cycles
    Coproc,    ///< coprocessor handshake; arg = cop number
    Exception, ///< exception entry; arg = PSW cause bits
    Restart,   ///< jpc re-injected a saved PC; arg = target
    Retire,    ///< an instruction retired in WB; arg = 1 if squashed
};

/** Printable name of an event kind ("fetch", "imiss", ...). */
const char *eventKindName(EventKind k);

/** One trace record. POD, fixed size, no owned storage. */
struct Event
{
    cycle_t cycle = 0;
    addr_t pc = 0;      ///< instruction PC, or the address involved
    word_t raw = 0;     ///< raw instruction word when hasInst is set
    std::uint32_t arg = 0; ///< kind-specific payload (see EventKind)
    EventKind kind = EventKind::Fetch;
    AddressSpace space = AddressSpace::User;
    bool hasInst = false; ///< raw holds a disassemblable instruction
};

static_assert(std::is_trivially_copyable_v<Event>);

/**
 * A fixed-capacity ring buffer of Events. Capacity 0 (the default)
 * means tracing is disabled: record() is a no-op and enabled() is
 * false. Emitters should keep a TraceBuffer* that is null when
 * disabled so the hot path pays only a pointer test.
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::size_t capacity) { setCapacity(capacity); }

    /** Resize (and clear) the ring. 0 disables tracing. */
    void setCapacity(std::size_t n);

    bool enabled() const { return !buf_.empty(); }
    std::size_t capacity() const { return buf_.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return size_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** Events ever recorded (size() + dropped()). */
    std::uint64_t recorded() const { return size_ + dropped_; }

    void
    record(const Event &e)
    {
        if (buf_.empty())
            return;
        buf_[head_] = e;
        head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
        if (size_ < buf_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Drop all events (capacity is kept). */
    void clear();

    /** The held events, oldest first. */
    std::vector<Event> events() const;
    /** The last @p n held events, oldest first. */
    std::vector<Event> lastEvents(std::size_t n) const;

  private:
    std::vector<Event> buf_;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace mipsx::trace

#endif // MIPSX_TRACE_TRACE_HH
