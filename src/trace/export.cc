#include "trace/export.hh"

#include <cstdio>
#include <fstream>

#include "common/sim_error.hh"
#include "isa/disasm.hh"

namespace mipsx::trace
{

namespace
{

/** Lane (Chrome tid) an event renders in. */
unsigned
laneOf(EventKind k)
{
    switch (k) {
      case EventKind::Fetch:
      case EventKind::Issue:
      case EventKind::Retire:
        return 0; // instructions
      case EventKind::Squash:
      case EventKind::Exception:
      case EventKind::Restart:
        return 1; // control
      case EventKind::Stall:
      case EventKind::IMiss:
      case EventKind::IRefill:
      case EventKind::EMissLate:
        return 2; // memory system
      case EventKind::Coproc:
        return 3; // coprocessors
    }
    return 0;
}

const char *
laneName(unsigned lane)
{
    switch (lane) {
      case 0: return "instructions";
      case 1: return "control";
      case 2: return "memory";
      case 3: return "coprocessor";
    }
    return "?";
}

/** Events whose arg is a duration in cycles. */
bool
hasDuration(EventKind k)
{
    return k == EventKind::Stall || k == EventKind::IMiss ||
        k == EventKind::EMissLate;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<Event> &events,
                 const ChromeTraceOptions &opts)
{
    os << "{\"traceEvents\":[\n";
    // Metadata: name the process and the four lanes.
    os << strformat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                    opts.pid, jsonEscape(opts.processName).c_str());
    for (unsigned lane = 0; lane < 4; ++lane) {
        os << strformat(",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                        "\"pid\":%u,\"tid\":%u,"
                        "\"args\":{\"name\":\"%s\"}}",
                        opts.pid, lane, laneName(lane));
    }
    for (const Event &e : events) {
        const unsigned lane = laneOf(e.kind);
        std::string args = strformat(
            "\"pc\":\"0x%x\",\"space\":\"%s\"", e.pc,
            e.space == AddressSpace::System ? "system" : "user");
        if (e.hasInst) {
            args += strformat(
                ",\"inst\":\"%s\"",
                jsonEscape(isa::disassemble(e.raw, e.pc, true)).c_str());
        }
        if (e.kind == EventKind::Retire && e.arg)
            args += ",\"squashed\":true";
        if (e.kind == EventKind::Exception)
            args += strformat(",\"cause\":\"0x%x\"", e.arg);
        if (e.kind == EventKind::Coproc)
            args += strformat(",\"cop\":%u", e.arg);
        if (e.kind == EventKind::Restart)
            args += strformat(",\"target\":\"0x%x\"", e.arg);
        if (e.kind == EventKind::Stall)
            args += strformat(",\"source\":\"%s\"",
                              e.raw ? "ecache" : "icache");

        if (hasDuration(e.kind)) {
            os << strformat(
                ",\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                "\"dur\":%u,\"pid\":%u,\"tid\":%u,\"args\":{%s}}",
                eventKindName(e.kind),
                static_cast<unsigned long long>(e.cycle), e.arg, opts.pid,
                lane, args.c_str());
        } else {
            os << strformat(
                ",\n{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%llu,"
                "\"s\":\"t\",\"pid\":%u,\"tid\":%u,\"args\":{%s}}",
                eventKindName(e.kind),
                static_cast<unsigned long long>(e.cycle), opts.pid, lane,
                args.c_str());
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<Event> &events,
                     const ChromeTraceOptions &opts)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "!! cannot write %s\n", path.c_str());
        return false;
    }
    writeChromeTrace(f, events, opts);
    return true;
}

std::string
formatEvent(const Event &e)
{
    std::string line = strformat(
        "[cycle %8llu] %-9s %s%05x",
        static_cast<unsigned long long>(e.cycle), eventKindName(e.kind),
        e.space == AddressSpace::System ? "S:" : "", e.pc);
    if (e.hasInst) {
        line += "  ";
        line += isa::disassemble(e.raw, e.pc, true);
    }
    switch (e.kind) {
      case EventKind::Stall:
        line += strformat("  %u cycles (%s)", e.arg,
                          e.raw ? "ecache" : "icache");
        break;
      case EventKind::IMiss:
      case EventKind::EMissLate:
        line += strformat("  %u cycles", e.arg);
        break;
      case EventKind::Exception:
        line += strformat("  cause=0x%x", e.arg);
        break;
      case EventKind::Coproc:
        line += strformat("  cop%u", e.arg);
        break;
      case EventKind::Restart:
        line += strformat("  target=%05x", e.arg);
        break;
      case EventKind::Retire:
        if (e.arg)
            line += "  [squashed]";
        break;
      default:
        break;
    }
    return line;
}

void
dumpTrace(std::ostream &os, const TraceBuffer &buf, std::size_t last_n)
{
    const auto events =
        last_n ? buf.lastEvents(last_n) : buf.events();
    for (const Event &e : events)
        os << formatEvent(e) << "\n";
    if (buf.dropped()) {
        os << strformat("(%llu older events dropped by the %zu-deep "
                        "ring)\n",
                        static_cast<unsigned long long>(buf.dropped()),
                        buf.capacity());
    }
}

} // namespace mipsx::trace
