/**
 * @file
 * The decoded-instruction record shared by the functional simulator, the
 * pipeline model and the code reorganizer.
 *
 * Decoding is deliberately trivial — the MIPS-X working document's maxim
 * ("simple decode, simple decode, simple decode") is honoured by fixed
 * fields selected purely by bits [31:30].
 */

#ifndef MIPSX_ISA_INSTRUCTION_HH
#define MIPSX_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"

namespace mipsx::isa
{

// Dense semantic-operation index (Instruction::op): every executable
// operation of the ISA gets one slot, so an execute loop can dispatch
// through a flat handler table instead of nested format/opcode switches.
// Compute ops keep their ComputeOp values; the other formats follow.
inline constexpr std::uint8_t opImmBase = 14;  ///< + ImmOp (Addi..Trap)
inline constexpr std::uint8_t opMemBase = 22;  ///< + MemOp (Ld..Ldt)
inline constexpr std::uint8_t opBranch = 30;   ///< all branch conditions
inline constexpr std::uint8_t opInvalid = 31;  ///< reserved encodings
inline constexpr std::uint8_t opCount = 32;

/**
 * The semantic ops a superblock may contain (see DecodedImage::fetchBlock
 * and the ISS block execution loop). An op is block-safe when executing
 * it can neither transfer control nor change the execution environment
 * the block's entry checks were hoisted over:
 *
 *  - control transfers (branches, jumps, traps) end a block by
 *    definition;
 *  - movtos can rewrite the PSW (mode, address space, interrupt enable),
 *    all of which the block loop samples once at block entry;
 *  - coprocessor ops are excluded: ldf/stf/aluc/movtoc reach externally
 *    attached models, and movfrc has a load-delay slot like ld — the
 *    conservative choice keeps every coprocessor interaction on the
 *    single-step path that the interface tests pin down;
 *  - invalid encodings stop the simulator.
 *
 * Exceptions inside a block (overflow from add/sub/addi) and stores that
 * invalidate predecoded text are allowed: the executor aborts the block
 * when they happen, which is why st is in the set.
 */
inline constexpr std::uint32_t blockSafeOpMask = [] {
    std::uint32_t m = 0;
    for (ComputeOp c : {ComputeOp::Add, ComputeOp::Sub, ComputeOp::And,
                        ComputeOp::Or, ComputeOp::Xor, ComputeOp::Bic,
                        ComputeOp::Sll, ComputeOp::Srl, ComputeOp::Sra,
                        ComputeOp::Fsh, ComputeOp::Mstep, ComputeOp::Dstep,
                        ComputeOp::Movfrs})
        m |= 1u << static_cast<unsigned>(c);
    for (ImmOp i : {ImmOp::Addi, ImmOp::Lih})
        m |= 1u << (opImmBase + static_cast<unsigned>(i));
    for (MemOp o : {MemOp::Ld, MemOp::Ldt, MemOp::St})
        m |= 1u << (opMemBase + static_cast<unsigned>(o));
    return m;
}();

/** True if semantic-op index @p op may appear inside a superblock. */
constexpr bool
opBlockSafe(std::uint8_t op)
{
    return (blockSafeOpMask >> op) & 1u;
}

/** Up to two general-purpose source registers. */
struct SourceRegs
{
    std::array<std::uint8_t, 2> reg{0, 0};
    unsigned count = 0;

    void
    add(std::uint8_t r)
    {
        reg[count++] = r;
    }

    bool
    contains(std::uint8_t r) const
    {
        for (unsigned i = 0; i < count; ++i)
            if (reg[i] == r)
                return true;
        return false;
    }
};

/**
 * A fully decoded instruction. Fields not applicable to the instruction's
 * format are zero.
 */
struct Instruction
{
    word_t raw = nopWord;

    Format fmt = Format::Compute;
    MemOp memOp = MemOp::Ld;
    BranchCond cond = BranchCond::Eq;
    SquashType squash = SquashType::NoSquash;
    ComputeOp compOp = ComputeOp::Add;
    ImmOp immOp = ImmOp::Addi;

    std::uint8_t rs1 = 0; ///< first source GPR
    std::uint8_t rs2 = 0; ///< second source GPR (store data for st/movtoc)
    std::uint8_t rd = 0;  ///< destination GPR (0 means "discard")
    std::int32_t imm = 0; ///< sign-extended offset / displacement / imm
    std::uint32_t uimm = 0; ///< raw (unsigned) immediate field
    std::uint16_t aux = 0;  ///< compute aux field / ldf/stf cop register

    bool valid = true; ///< false if the encoding hit a reserved slot

    // Classification computed once by classify() (decode() calls it), so
    // the pipeline's per-cycle queries are single loads of predecoded
    // state instead of switches. Every Instruction in the system comes
    // from isa::decode(); code that builds one by hand must call
    // classify() after filling the format fields.
    std::uint8_t dest = 0; ///< cached destReg()
    std::uint8_t cls = 0;  ///< cached cls* classification bits
    std::uint8_t op = 0;   ///< cached semantic-op index (op* constants)

    static constexpr std::uint8_t clsGprLoad = 1 << 0;
    static constexpr std::uint8_t clsMemAccess = 1 << 1;
    static constexpr std::uint8_t clsCoproc = 1 << 2;
    static constexpr std::uint8_t clsStore = 1 << 3;

    // -- Classification queries ------------------------------------------

    bool isMem() const { return fmt == Format::Mem; }

    /** True for instructions whose MEM stage accesses the memory system. */
    bool accessesMemory() const { return cls & clsMemAccess; }

    /** True for memory ops that address a coprocessor (memory ignores). */
    bool isCoproc() const { return cls & clsCoproc; }

    /** Loads whose GPR result arrives only at the end of MEM. */
    bool isGprLoad() const { return cls & clsGprLoad; }

    bool isStore() const { return cls & clsStore; }

    /** Fill the cached dest/cls fields from the format fields. */
    void
    classify()
    {
        std::uint8_t c = 0;
        if (fmt == Format::Mem) {
            switch (memOp) {
              case MemOp::Ld:
              case MemOp::Ldt:
                c = clsMemAccess | clsGprLoad;
                break;
              case MemOp::St:
                c = clsMemAccess | clsStore;
                break;
              case MemOp::Ldf:
                c = clsMemAccess | clsCoproc;
                break;
              case MemOp::Stf:
                c = clsMemAccess | clsCoproc | clsStore;
                break;
              case MemOp::Movfrc:
                c = clsCoproc | clsGprLoad;
                break;
              case MemOp::Movtoc:
                c = clsCoproc | clsStore;
                break;
              case MemOp::Aluc:
                c = clsCoproc;
                break;
            }
        }
        cls = c;
        dest = computeDestReg();
        op = computeOpIndex();
    }

    /** The switch behind the cached op field; classify() caches it. */
    std::uint8_t
    computeOpIndex() const
    {
        if (!valid)
            return opInvalid;
        switch (fmt) {
          case Format::Compute:
            return static_cast<std::uint8_t>(compOp); // 0..13 when valid
          case Format::Imm:
            return opImmBase + static_cast<std::uint8_t>(immOp);
          case Format::Mem:
            return opMemBase + static_cast<std::uint8_t>(memOp);
          case Format::Branch:
            return opBranch;
        }
        return opInvalid;
    }

    bool isBranch() const { return fmt == Format::Branch; }

    bool
    isJump() const
    {
        if (fmt != Format::Imm)
            return false;
        switch (immOp) {
          case ImmOp::Jmp:
          case ImmOp::Jal:
          case ImmOp::Jr:
          case ImmOp::Jalr:
          case ImmOp::Jpc:
            return true;
          default:
            return false;
        }
    }

    /** Branches, jumps and traps all disturb sequential fetch. */
    bool
    isControl() const
    {
        return isBranch() || isJump() ||
            (fmt == Format::Imm && immOp == ImmOp::Trap);
    }

    bool isTrap() const { return fmt == Format::Imm && immOp == ImmOp::Trap; }

    /** The canonical no-op (add r0, r0, r0). */
    bool isNop() const { return raw == nopWord; }

    /** True if this instruction writes the MD special register. */
    bool
    writesMd() const
    {
        if (fmt != Format::Compute)
            return false;
        return compOp == ComputeOp::Mstep || compOp == ComputeOp::Dstep ||
            (compOp == ComputeOp::Movtos &&
             aux == static_cast<std::uint16_t>(SpecialReg::Md));
    }

    /** True if this instruction reads the MD special register. */
    bool
    readsMd() const
    {
        if (fmt != Format::Compute)
            return false;
        return compOp == ComputeOp::Mstep || compOp == ComputeOp::Dstep ||
            (compOp == ComputeOp::Movfrs &&
             aux == static_cast<std::uint16_t>(SpecialReg::Md));
    }

    /** True if this instruction writes any special register (PSW, MD...). */
    bool
    writesSpecial() const
    {
        return writesMd() ||
            (fmt == Format::Compute && compOp == ComputeOp::Movtos);
    }

    // -- Register dataflow ------------------------------------------------

    /** The GPR this instruction writes back in WB, or 0 for none. */
    std::uint8_t destReg() const { return dest; }

    /** The switch behind destReg(); classify() caches its result. */
    std::uint8_t
    computeDestReg() const
    {
        switch (fmt) {
          case Format::Compute:
            switch (compOp) {
              case ComputeOp::Movtos:
                return 0;
              default:
                return rd;
            }
          case Format::Imm:
            switch (immOp) {
              case ImmOp::Addi:
              case ImmOp::Lih:
              case ImmOp::Jal:
              case ImmOp::Jalr:
                return rd;
              default:
                return 0;
            }
          case Format::Mem:
            return isGprLoad() ? rd : 0;
          case Format::Branch:
            return 0;
        }
        return 0;
    }

    bool writesGpr() const { return destReg() != 0; }

    /** GPRs read during the RF stage. r0 reads are omitted (constant). */
    SourceRegs
    srcRegs() const
    {
        SourceRegs s;
        auto addnz = [&s](std::uint8_t r) {
            if (r != 0)
                s.add(r);
        };
        switch (fmt) {
          case Format::Compute:
            switch (compOp) {
              case ComputeOp::Sll:
              case ComputeOp::Srl:
              case ComputeOp::Sra:
                addnz(rs1);
                break;
              case ComputeOp::Movfrs:
                break;
              case ComputeOp::Movtos:
                addnz(rs1);
                break;
              default:
                addnz(rs1);
                if (rs2 != rs1)
                    addnz(rs2);
                break;
            }
            break;
          case Format::Imm:
            switch (immOp) {
              case ImmOp::Addi:
              case ImmOp::Jr:
              case ImmOp::Jalr:
                addnz(rs1);
                break;
              default:
                break;
            }
            break;
          case Format::Mem:
            addnz(rs1); // base
            if (isStore() && memOp != MemOp::Stf && rs2 != rs1)
                addnz(rs2); // store data (stf data comes from the FPU)
            break;
          case Format::Branch:
            addnz(rs1);
            if (rs2 != rs1)
                addnz(rs2);
            break;
        }
        return s;
    }

    /** The coprocessor number addressed by aluc/movfrc/movtoc. */
    unsigned
    copNum() const
    {
        if (memOp == MemOp::Ldf || memOp == MemOp::Stf)
            return 1; // the special coprocessor with direct memory access
        return (uimm >> 14) & 0x7;
    }

    /** The 14-bit coprocessor-defined opcode field of aluc/movfrc/movtoc. */
    std::uint32_t copOp() const { return uimm & 0x3fff; }
};

} // namespace mipsx::isa

#endif // MIPSX_ISA_INSTRUCTION_HH
