/**
 * @file
 * Disassembler and name tables for MX32. The mnemonics here are the same
 * ones the assembler accepts, so the two stay consistent.
 */

#ifndef MIPSX_ISA_DISASM_HH
#define MIPSX_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace mipsx::isa
{

/** Register name ("r7"; ABI registers print as sp/fp/ra). */
std::string regName(unsigned r);

/** Mnemonic for a memory-format sub-opcode. */
const char *memOpName(MemOp op);

/** Mnemonic stem for a branch condition ("beq", "bne", ...). */
const char *branchName(BranchCond cond);

/** Mnemonic for a compute opcode. */
const char *computeOpName(ComputeOp op);

/** Mnemonic for an immediate-format opcode. */
const char *immOpName(ImmOp op);

/** Name of a special register ("psw", "pswold", "md", "pchain0"...). */
const char *specialRegName(SpecialReg sreg);

/**
 * Render one instruction. @p pc, when provided, lets branch and jump
 * targets print as absolute addresses.
 */
std::string disassemble(const Instruction &in, addr_t pc = 0,
                        bool have_pc = false);

/** Decode and render a raw word. */
std::string disassemble(word_t raw, addr_t pc = 0, bool have_pc = false);

} // namespace mipsx::isa

#endif // MIPSX_ISA_DISASM_HH
