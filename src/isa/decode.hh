/**
 * @file
 * The MX32 instruction decoder.
 */

#ifndef MIPSX_ISA_DECODE_HH
#define MIPSX_ISA_DECODE_HH

#include "isa/instruction.hh"

namespace mipsx::isa
{

/**
 * Decode a raw instruction word.
 *
 * Decoding never throws: reserved encodings produce an Instruction with
 * valid == false (the machine raises a simulation error if one reaches
 * execution, mirroring undefined hardware behaviour).
 */
Instruction decode(word_t raw);

} // namespace mipsx::isa

#endif // MIPSX_ISA_DECODE_HH
