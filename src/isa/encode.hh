/**
 * @file
 * Instruction encoders: build raw 32-bit MX32 words from fields.
 *
 * Encoders validate field ranges and throw SimError on overflow, so the
 * assembler and workload builders get immediate diagnostics.
 */

#ifndef MIPSX_ISA_ENCODE_HH
#define MIPSX_ISA_ENCODE_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/isa.hh"

namespace mipsx::isa
{

/** Encode a memory/coprocessor-format instruction. */
word_t encodeMem(MemOp op, unsigned rs1, unsigned rsd, std::int32_t offset);

/** Encode an aluc/movfrc/movtoc with an explicit coprocessor number. */
word_t encodeCop(MemOp op, unsigned cop_num, std::uint32_t cop_op,
                 unsigned rsd);

/** Encode a compare-and-branch. Displacement is relative to PC + 1. */
word_t encodeBranch(BranchCond cond, SquashType squash, unsigned rs1,
                    unsigned rs2, std::int32_t disp);

/** Encode a register-register compute instruction. */
word_t encodeCompute(ComputeOp op, unsigned rs1, unsigned rs2, unsigned rd,
                     unsigned aux = 0);

/** Encode a shift (sll/srl/sra) with a 5-bit amount. */
word_t encodeShift(ComputeOp op, unsigned rs1, unsigned rd, unsigned amount);

/** Encode movfrs/movtos. */
word_t encodeMovSpecial(ComputeOp op, SpecialReg sreg, unsigned gpr);

/** Encode an immediate-format instruction (addi/lih). */
word_t encodeImm(ImmOp op, unsigned rs1, unsigned rd, std::int32_t imm);

/** Encode jmp/jal with a PC-relative displacement (from PC + 1). */
word_t encodeJump(ImmOp op, unsigned rd, std::int32_t disp);

/** Encode jr/jalr with a register target plus offset. */
word_t encodeJumpReg(ImmOp op, unsigned rs1, unsigned rd,
                     std::int32_t offset);

/** Encode the PC-chain jump used in the exception return sequence. */
word_t encodeJpc();

/** Encode a trap with a 17-bit code. */
word_t encodeTrap(std::uint32_t code);

/** The canonical no-op. */
inline word_t encodeNop() { return nopWord; }

/**
 * Re-encode a decoded instruction back to its raw word.
 *
 * The round-trip law the fuzzing subsystem leans on:
 * reencode(decode(w)) == w for every valid encoding w, and
 * decode(reencode(in)) reproduces in field-for-field for every valid
 * Instruction. Throws SimError for instructions whose fields do not
 * name a representable encoding (in.valid == false included).
 */
word_t reencode(const Instruction &in);

} // namespace mipsx::isa

#endif // MIPSX_ISA_ENCODE_HH
