#include "isa/disasm.hh"

#include "common/sim_error.hh"
#include "isa/decode.hh"

namespace mipsx::isa
{

std::string
regName(unsigned r)
{
    switch (r) {
      case reg::sp:
        return "sp";
      case reg::fp:
        return "fp";
      case reg::ra:
        return "ra";
      default:
        return strformat("r%u", r);
    }
}

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::Ld: return "ld";
      case MemOp::St: return "st";
      case MemOp::Ldf: return "ldf";
      case MemOp::Stf: return "stf";
      case MemOp::Aluc: return "aluc";
      case MemOp::Movfrc: return "movfrc";
      case MemOp::Movtoc: return "movtoc";
      case MemOp::Ldt: return "ldt";
    }
    return "?";
}

const char *
branchName(BranchCond cond)
{
    switch (cond) {
      case BranchCond::Eq: return "beq";
      case BranchCond::Ne: return "bne";
      case BranchCond::Lt: return "blt";
      case BranchCond::Ge: return "bge";
      case BranchCond::Hs: return "bhs";
      case BranchCond::Lo: return "blo";
      case BranchCond::T: return "bt";
    }
    return "b?";
}

const char *
computeOpName(ComputeOp op)
{
    switch (op) {
      case ComputeOp::Add: return "add";
      case ComputeOp::Sub: return "sub";
      case ComputeOp::And: return "and";
      case ComputeOp::Or: return "or";
      case ComputeOp::Xor: return "xor";
      case ComputeOp::Bic: return "bic";
      case ComputeOp::Sll: return "sll";
      case ComputeOp::Srl: return "srl";
      case ComputeOp::Sra: return "sra";
      case ComputeOp::Fsh: return "fsh";
      case ComputeOp::Mstep: return "mstep";
      case ComputeOp::Dstep: return "dstep";
      case ComputeOp::Movfrs: return "movfrs";
      case ComputeOp::Movtos: return "movtos";
    }
    return "?";
}

const char *
immOpName(ImmOp op)
{
    switch (op) {
      case ImmOp::Addi: return "addi";
      case ImmOp::Lih: return "lih";
      case ImmOp::Jmp: return "jmp";
      case ImmOp::Jal: return "jal";
      case ImmOp::Jr: return "jr";
      case ImmOp::Jalr: return "jalr";
      case ImmOp::Jpc: return "jpc";
      case ImmOp::Trap: return "trap";
    }
    return "?";
}

const char *
specialRegName(SpecialReg sreg)
{
    switch (sreg) {
      case SpecialReg::Psw: return "psw";
      case SpecialReg::PswOld: return "pswold";
      case SpecialReg::Md: return "md";
      case SpecialReg::PcChain0: return "pchain0";
      case SpecialReg::PcChain1: return "pchain1";
      case SpecialReg::PcChain2: return "pchain2";
    }
    return "?";
}

namespace
{

std::string
target(std::int32_t disp, addr_t pc, bool have_pc)
{
    if (have_pc) {
        return strformat("0x%x",
                         static_cast<addr_t>(
                             static_cast<std::int64_t>(pc) + 1 + disp));
    }
    return strformat("%+d", disp);
}

} // namespace

std::string
disassemble(const Instruction &in, addr_t pc, bool have_pc)
{
    if (!in.valid)
        return strformat(".word 0x%08x  ; invalid", in.raw);
    if (in.isNop())
        return "nop";

    switch (in.fmt) {
      case Format::Mem:
        switch (in.memOp) {
          case MemOp::Ld:
          case MemOp::Ldt:
            return strformat("%s %s, %d(%s)", memOpName(in.memOp),
                             regName(in.rd).c_str(), in.imm,
                             regName(in.rs1).c_str());
          case MemOp::St:
            return strformat("st %s, %d(%s)", regName(in.rs2).c_str(),
                             in.imm, regName(in.rs1).c_str());
          case MemOp::Ldf:
          case MemOp::Stf:
            return strformat("%s f%u, %d(%s)", memOpName(in.memOp), in.aux,
                             in.imm, regName(in.rs1).c_str());
          case MemOp::Aluc:
            return strformat("aluc c%u, 0x%x", in.copNum(), in.copOp());
          case MemOp::Movfrc:
            return strformat("movfrc %s, c%u, 0x%x",
                             regName(in.rd).c_str(), in.copNum(),
                             in.copOp());
          case MemOp::Movtoc:
            return strformat("movtoc c%u, 0x%x, %s", in.copNum(),
                             in.copOp(), regName(in.rs2).c_str());
        }
        break;

      case Format::Branch: {
        const char *suffix = "";
        if (in.squash == SquashType::SquashNotTaken)
            suffix = ".sq";
        else if (in.squash == SquashType::SquashTaken)
            suffix = ".sqn";
        return strformat("%s%s %s, %s, %s", branchName(in.cond), suffix,
                         regName(in.rs1).c_str(), regName(in.rs2).c_str(),
                         target(in.imm, pc, have_pc).c_str());
      }

      case Format::Compute:
        switch (in.compOp) {
          case ComputeOp::Sll:
          case ComputeOp::Srl:
          case ComputeOp::Sra:
            return strformat("%s %s, %s, %u", computeOpName(in.compOp),
                             regName(in.rd).c_str(),
                             regName(in.rs1).c_str(), in.aux);
          case ComputeOp::Fsh:
            return strformat("fsh %s, %s, %s, %u", regName(in.rd).c_str(),
                             regName(in.rs1).c_str(),
                             regName(in.rs2).c_str(), in.aux);
          case ComputeOp::Movfrs:
            return strformat("movfrs %s, %s", regName(in.rd).c_str(),
                             specialRegName(
                                 static_cast<SpecialReg>(in.aux)));
          case ComputeOp::Movtos:
            return strformat("movtos %s, %s",
                             specialRegName(static_cast<SpecialReg>(in.aux)),
                             regName(in.rs1).c_str());
          default:
            return strformat("%s %s, %s, %s", computeOpName(in.compOp),
                             regName(in.rd).c_str(),
                             regName(in.rs1).c_str(),
                             regName(in.rs2).c_str());
        }
        break;

      case Format::Imm:
        switch (in.immOp) {
          case ImmOp::Addi:
            return strformat("addi %s, %s, %d", regName(in.rd).c_str(),
                             regName(in.rs1).c_str(), in.imm);
          case ImmOp::Lih:
            return strformat("lih %s, %d", regName(in.rd).c_str(), in.imm);
          case ImmOp::Jmp:
            return strformat("jmp %s", target(in.imm, pc, have_pc).c_str());
          case ImmOp::Jal:
            return strformat("jal %s, %s", regName(in.rd).c_str(),
                             target(in.imm, pc, have_pc).c_str());
          case ImmOp::Jr:
            return strformat("jr %d(%s)", in.imm, regName(in.rs1).c_str());
          case ImmOp::Jalr:
            return strformat("jalr %s, %d(%s)", regName(in.rd).c_str(),
                             in.imm, regName(in.rs1).c_str());
          case ImmOp::Jpc:
            return "jpc";
          case ImmOp::Trap:
            return strformat("trap 0x%x", in.uimm);
        }
        break;
    }
    return strformat(".word 0x%08x", in.raw);
}

std::string
disassemble(word_t raw, addr_t pc, bool have_pc)
{
    return disassemble(decode(raw), pc, have_pc);
}

} // namespace mipsx::isa
