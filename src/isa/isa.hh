/**
 * @file
 * The reconstructed MIPS-X instruction set ("MX32"): formats, opcodes and
 * encoding constants.
 *
 * The ISCA-1987 paper describes the instruction set's properties (fixed
 * 32-bit format, trivial decode, one addressing mode with a 17-bit signed
 * offset, explicit-compare branches with a squash bit, coprocessor
 * operations as a form of memory instruction) but not the binary encoding.
 * This header defines a faithful reconstruction; see DESIGN.md section 3
 * for the bit-level layout and the (documented) deviations.
 */

#ifndef MIPSX_ISA_ISA_HH
#define MIPSX_ISA_ISA_HH

#include <cstdint>

#include "common/types.hh"

namespace mipsx::isa
{

/** Major instruction format, selected by bits [31:30]. */
enum class Format : std::uint8_t
{
    Mem = 0,     ///< Memory / coprocessor operations.
    Branch = 1,  ///< Compare-and-branch.
    Compute = 2, ///< Register-register compute.
    Imm = 3,     ///< Compute-immediate and jumps.
};

/** Memory-format sub-opcodes (bits [29:27]). */
enum class MemOp : std::uint8_t
{
    Ld = 0,     ///< Load word: rd <- M[rs1 + simm17].
    St = 1,     ///< Store word: M[rs1 + simm17] <- rsd.
    Ldf = 2,    ///< Load floating: FPU reg <- M[rs1 + simm17] (cop 1).
    Stf = 3,    ///< Store floating: M[rs1 + simm17] <- FPU reg (cop 1).
    Aluc = 4,   ///< Coprocessor compute; offset rides the address pins.
    Movfrc = 5, ///< rd <- coprocessor register (data bus, memory ignores).
    Movtoc = 6, ///< coprocessor register <- rsd.
    Ldt = 7,    ///< Load through (uncached): rd <- M[rs1 + simm17].
};

/** Branch conditions (bits [29:27]). Explicit compare, no condition codes. */
enum class BranchCond : std::uint8_t
{
    Eq = 0, ///< rs1 == rs2
    Ne = 1, ///< rs1 != rs2
    Lt = 2, ///< rs1 <  rs2 (signed)
    Ge = 3, ///< rs1 >= rs2 (signed)
    Hs = 4, ///< rs1 >= rs2 (unsigned)
    Lo = 5, ///< rs1 <  rs2 (unsigned)
    T = 6,  ///< always taken
    // 7 reserved
};

/**
 * How the two branch delay slots are treated (bits [26:25]).
 *
 * Real MIPS-X encodes a single bit (NoSquash / SquashNotTaken) because
 * static prediction mostly predicts taken; we widen the field so the
 * Table-1 "always squash" ablation (which also needs squash-if-taken) is
 * expressible. The paper-faithful configuration emits only values 0 and 1.
 */
enum class SquashType : std::uint8_t
{
    NoSquash = 0,       ///< Slot instructions always execute (MIPS style).
    SquashNotTaken = 1, ///< Predict taken; squash slots on fall-through.
    SquashTaken = 2,    ///< Predict not taken; squash slots when taken.
    // 3 reserved
};

/** Compute-format opcodes (bits [29:24]). */
enum class ComputeOp : std::uint8_t
{
    Add = 0,    ///< rd <- rs1 + rs2 (traps on signed overflow if enabled)
    Sub = 1,    ///< rd <- rs1 - rs2 (traps on signed overflow if enabled)
    And = 2,    ///< rd <- rs1 & rs2
    Or = 3,     ///< rd <- rs1 | rs2
    Xor = 4,    ///< rd <- rs1 ^ rs2
    Bic = 5,    ///< rd <- rs1 & ~rs2
    Sll = 6,    ///< rd <- rs1 << aux  (via the funnel shifter)
    Srl = 7,    ///< rd <- rs1 >> aux  (logical)
    Sra = 8,    ///< rd <- rs1 >> aux  (arithmetic)
    Fsh = 9,    ///< rd <- 32 bits of {rs1:rs2} starting at bit aux
    Mstep = 10, ///< multiply step through MD (see mdu.hh)
    Dstep = 11, ///< divide step through MD
    Movfrs = 12, ///< rd <- special register aux
    Movtos = 13, ///< special register aux <- rs1
    // 14..63 reserved
};

/** Immediate/jump-format opcodes (bits [29:27]). */
enum class ImmOp : std::uint8_t
{
    Addi = 0, ///< rd <- rs1 + simm17 (traps on signed overflow if enabled)
    Lih = 1,  ///< rd <- simm17 << 15 ("load immediate high")
    Jmp = 2,  ///< PC <- PC + 1 + simm17
    Jal = 3,  ///< rd <- PC + 3; PC <- PC + 1 + simm17
    Jr = 4,   ///< PC <- rs1 + simm17
    Jalr = 5, ///< rd <- PC + 3; PC <- rs1 + simm17
    Jpc = 6,  ///< PC <- PC-chain head (exception return; system mode only)
    Trap = 7, ///< unconditional trap with 17-bit code
};

/** Special registers addressable by movfrs/movtos (compute aux field). */
enum class SpecialReg : std::uint8_t
{
    Psw = 0,
    PswOld = 1,
    Md = 2,
    PcChain0 = 3, ///< oldest saved PC
    PcChain1 = 4,
    PcChain2 = 5, ///< youngest saved PC
};

inline constexpr unsigned numSpecialRegs = 6;

/** The architectural branch delay of the MIPS-X pipeline. */
inline constexpr unsigned branchDelaySlots = 2;

/** Trap code that terminates simulation (reconstruction convention). */
inline constexpr std::uint32_t trapCodeHalt = 0x1ffff;

/** Trap code conventionally used by workloads to signal a check failure. */
inline constexpr std::uint32_t trapCodeFail = 0x1fffe;

/** Canonical no-op: add r0, r0, r0. */
inline constexpr word_t nopWord = 0x80000000u;

/**
 * PSW bit assignments (reconstruction; the paper names mode, interrupt
 * masking, overflow trap masking, PC-chain shift enable and the cause
 * bits without giving positions).
 */
namespace psw_bits
{
inline constexpr word_t mode = 1u << 0;    ///< 1 = system mode
inline constexpr word_t ie = 1u << 1;      ///< interrupt enable
inline constexpr word_t ovfe = 1u << 2;    ///< overflow trap enable
inline constexpr word_t shiftEn = 1u << 3; ///< PC-chain shifting enabled
inline constexpr word_t cOvf = 1u << 8;    ///< cause: arithmetic overflow
inline constexpr word_t cIntr = 1u << 9;   ///< cause: maskable interrupt
inline constexpr word_t cNmi = 1u << 10;   ///< cause: non-maskable intr
inline constexpr word_t cTrap = 1u << 11;  ///< cause: trap instruction
inline constexpr word_t cPriv = 1u << 12;  ///< cause: privilege violation
inline constexpr word_t cPage = 1u << 13;  ///< cause: data page fault
inline constexpr word_t causeMask =
    cOvf | cIntr | cNmi | cTrap | cPriv | cPage;
} // namespace psw_bits

/** ABI register conventions used by the assembler and workloads. */
namespace reg
{
inline constexpr unsigned zero = 0;
inline constexpr unsigned sp = 29; ///< stack pointer
inline constexpr unsigned fp = 30; ///< frame pointer
inline constexpr unsigned ra = 31; ///< return address (jal link)
} // namespace reg

} // namespace mipsx::isa

#endif // MIPSX_ISA_ISA_HH
