#include "isa/decode.hh"

#include "common/bitfield.hh"

namespace mipsx::isa
{

Instruction
decode(word_t raw)
{
    Instruction in;
    in.raw = raw;
    in.fmt = static_cast<Format>(bits(raw, 31, 30));

    switch (in.fmt) {
      case Format::Mem: {
        in.memOp = static_cast<MemOp>(bits(raw, 29, 27));
        in.rs1 = static_cast<std::uint8_t>(bits(raw, 26, 22));
        const auto rsd = static_cast<std::uint8_t>(bits(raw, 21, 17));
        in.uimm = bits(raw, 16, 0);
        in.imm = sext(in.uimm, 17);
        switch (in.memOp) {
          case MemOp::Ld:
          case MemOp::Ldt:
          case MemOp::Movfrc:
            in.rd = rsd;
            break;
          case MemOp::St:
          case MemOp::Movtoc:
            in.rs2 = rsd;
            break;
          case MemOp::Ldf:
          case MemOp::Stf:
            in.aux = rsd; // coprocessor-1 register number
            break;
          case MemOp::Aluc:
            break;
        }
        break;
      }
      case Format::Branch: {
        in.cond = static_cast<BranchCond>(bits(raw, 29, 27));
        in.squash = static_cast<SquashType>(bits(raw, 26, 25));
        in.rs1 = static_cast<std::uint8_t>(bits(raw, 24, 20));
        in.rs2 = static_cast<std::uint8_t>(bits(raw, 19, 15));
        in.uimm = bits(raw, 14, 0);
        in.imm = sext(in.uimm, 15);
        if (static_cast<unsigned>(in.cond) == 7 ||
            static_cast<unsigned>(in.squash) == 3) {
            in.valid = false;
        }
        break;
      }
      case Format::Compute: {
        in.compOp = static_cast<ComputeOp>(bits(raw, 29, 24));
        in.rs1 = static_cast<std::uint8_t>(bits(raw, 23, 19));
        in.rs2 = static_cast<std::uint8_t>(bits(raw, 18, 14));
        in.rd = static_cast<std::uint8_t>(bits(raw, 13, 9));
        in.aux = static_cast<std::uint16_t>(bits(raw, 8, 0));
        if (static_cast<unsigned>(in.compOp) > 13)
            in.valid = false;
        if ((in.compOp == ComputeOp::Movfrs ||
             in.compOp == ComputeOp::Movtos) &&
            in.aux >= numSpecialRegs) {
            in.valid = false;
        }
        break;
      }
      case Format::Imm: {
        in.immOp = static_cast<ImmOp>(bits(raw, 29, 27));
        in.rs1 = static_cast<std::uint8_t>(bits(raw, 26, 22));
        in.rd = static_cast<std::uint8_t>(bits(raw, 21, 17));
        in.uimm = bits(raw, 16, 0);
        in.imm = sext(in.uimm, 17);
        break;
      }
    }
    in.classify();
    return in;
}

} // namespace mipsx::isa
