#include "isa/encode.hh"

#include "common/bitfield.hh"
#include "common/sim_error.hh"

namespace mipsx::isa
{

namespace
{

void
checkReg(unsigned r, const char *what)
{
    if (r >= numGprs)
        fatal(strformat("encode: %s register %u out of range", what, r));
}

void
checkSigned(std::int64_t v, unsigned width, const char *what)
{
    if (!fitsSigned(v, width))
        fatal(strformat("encode: %s value %lld does not fit in %u bits",
                        what, static_cast<long long>(v), width));
}

word_t
fmtBits(Format f)
{
    return static_cast<word_t>(f) << 30;
}

} // namespace

word_t
encodeMem(MemOp op, unsigned rs1, unsigned rsd, std::int32_t offset)
{
    checkReg(rs1, "base");
    checkReg(rsd, "data");
    checkSigned(offset, 17, "memory offset");
    word_t w = fmtBits(Format::Mem);
    w = insertBits(w, 29, 27, static_cast<word_t>(op));
    w = insertBits(w, 26, 22, rs1);
    w = insertBits(w, 21, 17, rsd);
    w = insertBits(w, 16, 0, static_cast<word_t>(offset));
    return w;
}

word_t
encodeCop(MemOp op, unsigned cop_num, std::uint32_t cop_op, unsigned rsd)
{
    if (op != MemOp::Aluc && op != MemOp::Movfrc && op != MemOp::Movtoc)
        fatal("encodeCop: op is not a coprocessor operation");
    if (cop_num < 1 || cop_num > 7)
        fatal(strformat("encodeCop: coprocessor number %u out of range "
                        "(1..7)", cop_num));
    if (!fitsUnsigned(cop_op, 14))
        fatal("encodeCop: coprocessor opcode does not fit in 14 bits");
    const std::uint32_t field = (cop_num << 14) | cop_op;
    // The coprocessor instruction travels as the 17-bit offset with r0 as
    // the base, so the computed address equals the instruction word.
    return encodeMem(op, 0, rsd, sext(field, 17));
}

word_t
encodeBranch(BranchCond cond, SquashType squash, unsigned rs1, unsigned rs2,
             std::int32_t disp)
{
    checkReg(rs1, "branch source 1");
    checkReg(rs2, "branch source 2");
    checkSigned(disp, 15, "branch displacement");
    word_t w = fmtBits(Format::Branch);
    w = insertBits(w, 29, 27, static_cast<word_t>(cond));
    w = insertBits(w, 26, 25, static_cast<word_t>(squash));
    w = insertBits(w, 24, 20, rs1);
    w = insertBits(w, 19, 15, rs2);
    w = insertBits(w, 14, 0, static_cast<word_t>(disp));
    return w;
}

word_t
encodeCompute(ComputeOp op, unsigned rs1, unsigned rs2, unsigned rd,
              unsigned aux)
{
    checkReg(rs1, "source 1");
    checkReg(rs2, "source 2");
    checkReg(rd, "destination");
    if (!fitsUnsigned(aux, 9))
        fatal("encodeCompute: aux field does not fit in 9 bits");
    word_t w = fmtBits(Format::Compute);
    w = insertBits(w, 29, 24, static_cast<word_t>(op));
    w = insertBits(w, 23, 19, rs1);
    w = insertBits(w, 18, 14, rs2);
    w = insertBits(w, 13, 9, rd);
    w = insertBits(w, 8, 0, aux);
    return w;
}

word_t
encodeShift(ComputeOp op, unsigned rs1, unsigned rd, unsigned amount)
{
    if (op != ComputeOp::Sll && op != ComputeOp::Srl &&
        op != ComputeOp::Sra) {
        fatal("encodeShift: op is not a shift");
    }
    if (amount >= 32)
        fatal(strformat("encodeShift: amount %u out of range", amount));
    return encodeCompute(op, rs1, 0, rd, amount);
}

word_t
encodeMovSpecial(ComputeOp op, SpecialReg sreg, unsigned gpr)
{
    const auto s = static_cast<unsigned>(sreg);
    if (s >= numSpecialRegs)
        fatal("encodeMovSpecial: bad special register");
    if (op == ComputeOp::Movfrs)
        return encodeCompute(op, 0, 0, gpr, s);
    if (op == ComputeOp::Movtos)
        return encodeCompute(op, gpr, 0, 0, s);
    fatal("encodeMovSpecial: op is not movfrs/movtos");
}

word_t
encodeImm(ImmOp op, unsigned rs1, unsigned rd, std::int32_t imm)
{
    checkReg(rs1, "source");
    checkReg(rd, "destination");
    checkSigned(imm, 17, "immediate");
    word_t w = fmtBits(Format::Imm);
    w = insertBits(w, 29, 27, static_cast<word_t>(op));
    w = insertBits(w, 26, 22, rs1);
    w = insertBits(w, 21, 17, rd);
    w = insertBits(w, 16, 0, static_cast<word_t>(imm));
    return w;
}

word_t
encodeJump(ImmOp op, unsigned rd, std::int32_t disp)
{
    if (op != ImmOp::Jmp && op != ImmOp::Jal)
        fatal("encodeJump: op is not jmp/jal");
    return encodeImm(op, 0, op == ImmOp::Jal ? rd : 0, disp);
}

word_t
encodeJumpReg(ImmOp op, unsigned rs1, unsigned rd, std::int32_t offset)
{
    if (op != ImmOp::Jr && op != ImmOp::Jalr)
        fatal("encodeJumpReg: op is not jr/jalr");
    return encodeImm(op, rs1, op == ImmOp::Jalr ? rd : 0, offset);
}

word_t
encodeJpc()
{
    return encodeImm(ImmOp::Jpc, 0, 0, 0);
}

word_t
encodeTrap(std::uint32_t code)
{
    if (!fitsUnsigned(code, 17))
        fatal("encodeTrap: code does not fit in 17 bits");
    word_t w = fmtBits(Format::Imm);
    w = insertBits(w, 29, 27, static_cast<word_t>(ImmOp::Trap));
    w = insertBits(w, 16, 0, code);
    return w;
}

word_t
reencode(const Instruction &in)
{
    if (!in.valid)
        fatal("reencode: instruction is not a valid encoding");
    switch (in.fmt) {
      case Format::Mem:
        switch (in.memOp) {
          case MemOp::Ld:
          case MemOp::Ldt:
          case MemOp::Movfrc:
            return encodeMem(in.memOp, in.rs1, in.rd, in.imm);
          case MemOp::St:
          case MemOp::Movtoc:
            return encodeMem(in.memOp, in.rs1, in.rs2, in.imm);
          case MemOp::Ldf:
          case MemOp::Stf:
            return encodeMem(in.memOp, in.rs1, in.aux, in.imm);
          case MemOp::Aluc:
            return encodeMem(in.memOp, in.rs1, 0, in.imm);
        }
        break;
      case Format::Branch:
        return encodeBranch(in.cond, in.squash, in.rs1, in.rs2, in.imm);
      case Format::Compute:
        return encodeCompute(in.compOp, in.rs1, in.rs2, in.rd, in.aux);
      case Format::Imm: {
        word_t w = fmtBits(Format::Imm);
        w = insertBits(w, 29, 27, static_cast<word_t>(in.immOp));
        w = insertBits(w, 26, 22, in.rs1);
        w = insertBits(w, 21, 17, in.rd);
        checkSigned(in.imm, 17, "immediate");
        w = insertBits(w, 16, 0, static_cast<word_t>(in.imm));
        return w;
      }
    }
    fatal("reencode: unreachable format");
}

} // namespace mipsx::isa
