#include "coproc/coprocessor.hh"

#include "common/sim_error.hh"

namespace mipsx::coproc
{

void
CoprocessorSet::attach(unsigned num, std::unique_ptr<Coprocessor> cop)
{
    if (num < 1 || num > 7)
        fatal(strformat("coprocessor number %u out of range (1..7)", num));
    cops_[num] = std::move(cop);
}

bool
CoprocessorSet::attached(unsigned num) const
{
    return num >= 1 && num <= 7 && cops_[num] != nullptr;
}

Coprocessor &
CoprocessorSet::at(unsigned num) const
{
    if (!attached(num))
        fatal(strformat("no coprocessor attached at number %u", num));
    return *cops_[num];
}

} // namespace mipsx::coproc
