/**
 * @file
 * The external interrupt-control unit.
 *
 * Paper: "Exceptions are not vectored so the exception handler must
 * first determine the cause of the exception. On MIPS there was an
 * on-chip surprise register where this information was stored. MIPS-X
 * relies instead on a separate off-chip interrupt control unit that
 * contains this information", and "For systems requiring more complex
 * interrupt handling, an external interrupt coprocessor can be added."
 *
 * This coprocessor is that unit: devices post numbered interrupt lines;
 * the handler reads-and-acknowledges the highest pending line over the
 * coprocessor interface (movfrc), and can mask lines (movtoc/aluc).
 *
 * 14-bit operation field:
 *   movfrc op 0        read pending mask (no side effects)
 *   movfrc op 1<<10    read-and-ACK: returns the highest pending line
 *                      number (0..13) and clears it, or 0x3fff if none
 *   movtoc op 0        set the line mask from the data bus (1 = enabled)
 *   aluc   op 2<<10|n  ACK line n without reading
 */

#ifndef MIPSX_COPROC_INTR_CONTROLLER_HH
#define MIPSX_COPROC_INTR_CONTROLLER_HH

#include <functional>

#include "coproc/coprocessor.hh"

namespace mipsx::coproc
{

class IntrController : public Coprocessor
{
  public:
    static constexpr unsigned numLines = 14;
    static constexpr word_t noLine = 0x3fff;

    /**
     * @param raise invoked whenever an enabled line becomes pending —
     *        wire it to Cpu::raiseInterrupt.
     */
    explicit IntrController(std::function<void()> raise = {})
        : raise_(std::move(raise))
    {}

    /** A device posts interrupt line @p line. */
    void
    post(unsigned line)
    {
        pending_ |= 1u << (line % numLines);
        if ((pending_ & mask_) && raise_)
            raise_();
    }

    bool anyPending() const { return (pending_ & mask_) != 0; }
    word_t pending() const { return pending_; }

    void
    aluc(std::uint32_t op) override
    {
        if (((op >> 10) & 0xf) == 2)
            pending_ &= ~(1u << (op & (numLines - 1)));
    }

    word_t
    movfrc(std::uint32_t op) override
    {
        if (((op >> 10) & 0xf) == 0)
            return pending_ & mask_;
        // read-and-ACK the highest enabled pending line
        const word_t live = pending_ & mask_;
        if (!live)
            return noLine;
        unsigned line = 0;
        for (unsigned i = 0; i < numLines; ++i)
            if (live & (1u << i))
                line = i;
        pending_ &= ~(1u << line);
        if ((pending_ & mask_) && raise_)
            raise_(); // more work queued: re-raise
        return line;
    }

    void
    movtoc(std::uint32_t op, word_t data) override
    {
        (void)op;
        mask_ = data;
    }

    void loadDirect(unsigned, word_t data) override { mask_ = data; }
    word_t storeDirect(unsigned) override { return pending_ & mask_; }
    bool condition() const override { return anyPending(); }
    const char *name() const override { return "intr-controller"; }

  private:
    std::function<void()> raise_;
    word_t pending_ = 0;
    word_t mask_ = 0xffffffffu;
};

} // namespace mipsx::coproc

#endif // MIPSX_COPROC_INTR_CONTROLLER_HH
