/**
 * @file
 * The floating-point unit: the "one special coprocessor" (number 1) with
 * its own load and store instructions (ldf/stf) and direct memory access.
 *
 * The paper assumes such an FPU exists but does not define its
 * instruction set; this is a reconstruction with IEEE-754 single
 * precision values carried in 32-bit words.
 *
 * 14-bit coprocessor operation field layout (aluc):
 *
 *     [13:10] opcode   [9:5] fd   [4:0] fs
 *
 * For fadd/fsub/fmul/fdiv the second source is the FPU's accumulator
 * convention: fd <- fd op fs (two-address form keeps the field small,
 * exactly the pressure the paper describes: "there are fewer bits to
 * specify the coprocessor instructions").
 *
 * movfrc operation field: [13:10]=0 selects register [4:0]; [13:10]=1
 * reads the status register. movtoc: [13:10]=0 writes register [4:0].
 */

#ifndef MIPSX_COPROC_FPU_HH
#define MIPSX_COPROC_FPU_HH

#include <array>
#include <cstdint>

#include "coproc/coprocessor.hh"
#include "stats/stats.hh"

namespace mipsx::coproc
{

/** FPU aluc opcodes (bits [13:10] of the coprocessor field). */
enum class FpuOp : std::uint8_t
{
    Fadd = 0, ///< fd <- fd + fs
    Fsub = 1, ///< fd <- fd - fs
    Fmul = 2, ///< fd <- fd * fs
    Fdiv = 3, ///< fd <- fd / fs
    Fneg = 4, ///< fd <- -fs
    Fabs = 5, ///< fd <- |fs|
    Fmov = 6, ///< fd <- fs
    CvtSW = 7, ///< fd <- float(int(fs bits))
    CvtWS = 8, ///< fd <- int bits of round-to-nearest(fs)
    CmpLt = 9, ///< cond <- fd < fs
    CmpEq = 10, ///< cond <- fd == fs
    CmpLe = 11, ///< cond <- fd <= fs
};

/** movfrc/movtoc selector (bits [13:10]). */
enum class FpuMov : std::uint8_t
{
    Reg = 0,
    Status = 1,
};

/** Build the 14-bit coprocessor field for an FPU compute operation. */
constexpr std::uint32_t
fpuAluOp(FpuOp op, unsigned fd, unsigned fs)
{
    return (static_cast<std::uint32_t>(op) << 10) | ((fd & 31u) << 5) |
        (fs & 31u);
}

/** Build the 14-bit field for movfrc/movtoc register access. */
constexpr std::uint32_t
fpuRegOp(unsigned freg)
{
    return freg & 31u;
}

/** Build the 14-bit field for a movfrc status-register read. */
constexpr std::uint32_t
fpuStatusOp()
{
    return static_cast<std::uint32_t>(FpuMov::Status) << 10;
}

/** The coprocessor-1 floating point unit. */
class Fpu : public Coprocessor
{
  public:
    void aluc(std::uint32_t op) override;
    word_t movfrc(std::uint32_t op) override;
    void movtoc(std::uint32_t op, word_t data) override;
    void loadDirect(unsigned reg, word_t data) override;
    word_t storeDirect(unsigned reg) override;
    bool condition() const override { return cond_; }
    const char *name() const override { return "fpu"; }

    /** Direct register access for tests and result checking. */
    word_t regBits(unsigned r) const { return regs_.at(r); }
    void setRegBits(unsigned r, word_t bits) { regs_.at(r) = bits; }
    float regFloat(unsigned r) const;
    void setRegFloat(unsigned r, float v);

    /** Status register: bit 0 = condition flag. */
    word_t status() const { return cond_ ? 1u : 0u; }
    /** Fast-forward state transfer (the status register is derived). */
    void setCondition(bool c) { cond_ = c; }

    std::uint64_t opsExecuted() const { return ops_.value(); }

  private:
    std::array<word_t, 32> regs_{};
    bool cond_ = false;
    stats::Counter ops_;
};

} // namespace mipsx::coproc

#endif // MIPSX_COPROC_FPU_HH
