/**
 * @file
 * The MIPS-X coprocessor interface.
 *
 * The paper's final scheme ("The Coprocessor Interface"): coprocessor
 * instructions are a form of memory operation. The 17-bit offset constant
 * is driven down the *address pins* while a dedicated pin tells the memory
 * system to ignore the cycle; bits [16:14] select one of seven
 * coprocessors and the low 14 bits are coprocessor-defined. Data moves
 * between CPU registers and coprocessor registers over the data bus
 * (movfrc/movtoc), and one special coprocessor — assumed to be the FPU,
 * number 1 — gets dedicated load/store floating instructions (ldf/stf)
 * with direct access to memory.
 */

#ifndef MIPSX_COPROC_COPROCESSOR_HH
#define MIPSX_COPROC_COPROCESSOR_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace mipsx::coproc
{

/** Abstract coprocessor attached to the address/data buses. */
class Coprocessor
{
  public:
    virtual ~Coprocessor() = default;

    /** An aluc cycle: execute the 14-bit coprocessor operation. */
    virtual void aluc(std::uint32_t op) = 0;

    /** A movfrc cycle: decode @p op and drive the data bus. */
    virtual word_t movfrc(std::uint32_t op) = 0;

    /** A movtoc cycle: decode @p op and accept @p data from the bus. */
    virtual void movtoc(std::uint32_t op, word_t data) = 0;

    /**
     * ldf: the memory system drives @p data for this coprocessor's
     * register @p reg (only the special coprocessor ever sees this).
     */
    virtual void loadDirect(unsigned reg, word_t data) = 0;

    /** stf: supply the word register @p reg drives onto the data bus. */
    virtual word_t storeDirect(unsigned reg) = 0;

    /**
     * The single condition output that the removed branch-on-coprocessor
     * scheme would have tested; still exposed so the status-register-read
     * idiom (the final design) can be validated against it.
     */
    virtual bool condition() const { return false; }

    virtual const char *name() const = 0;
};

/**
 * The seven coprocessor attachment points (1..7). Unattached numbers
 * raise a simulation error when addressed.
 */
class CoprocessorSet
{
  public:
    void attach(unsigned num, std::unique_ptr<Coprocessor> cop);
    bool attached(unsigned num) const;
    Coprocessor &at(unsigned num) const;

  private:
    std::array<std::unique_ptr<Coprocessor>, 8> cops_;
};

} // namespace mipsx::coproc

#endif // MIPSX_COPROC_COPROCESSOR_HH
