#include "coproc/fpu.hh"

#include <cmath>
#include <cstring>

#include "common/sim_error.hh"

namespace mipsx::coproc
{

namespace
{

float
toFloat(word_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

word_t
toBits(float f)
{
    word_t w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

} // namespace

float
Fpu::regFloat(unsigned r) const
{
    return toFloat(regs_.at(r));
}

void
Fpu::setRegFloat(unsigned r, float v)
{
    regs_.at(r) = toBits(v);
}

void
Fpu::aluc(std::uint32_t op)
{
    ++ops_;
    const auto opc = static_cast<FpuOp>((op >> 10) & 0xf);
    const unsigned fd = (op >> 5) & 31;
    const unsigned fs = op & 31;
    const float a = toFloat(regs_[fd]);
    const float b = toFloat(regs_[fs]);

    switch (opc) {
      case FpuOp::Fadd:
        regs_[fd] = toBits(a + b);
        break;
      case FpuOp::Fsub:
        regs_[fd] = toBits(a - b);
        break;
      case FpuOp::Fmul:
        regs_[fd] = toBits(a * b);
        break;
      case FpuOp::Fdiv:
        regs_[fd] = toBits(a / b);
        break;
      case FpuOp::Fneg:
        regs_[fd] = toBits(-b);
        break;
      case FpuOp::Fabs:
        regs_[fd] = toBits(std::fabs(b));
        break;
      case FpuOp::Fmov:
        regs_[fd] = regs_[fs];
        break;
      case FpuOp::CvtSW:
        regs_[fd] = toBits(static_cast<float>(
            static_cast<std::int32_t>(regs_[fs])));
        break;
      case FpuOp::CvtWS:
        regs_[fd] = static_cast<word_t>(
            static_cast<std::int32_t>(std::lrintf(b)));
        break;
      case FpuOp::CmpLt:
        cond_ = a < b;
        break;
      case FpuOp::CmpEq:
        cond_ = a == b;
        break;
      case FpuOp::CmpLe:
        cond_ = a <= b;
        break;
      default:
        fatal(strformat("fpu: reserved opcode %u", (op >> 10) & 0xf));
    }
}

word_t
Fpu::movfrc(std::uint32_t op)
{
    const auto sel = static_cast<FpuMov>((op >> 10) & 0xf);
    if (sel == FpuMov::Status)
        return status();
    return regs_[op & 31];
}

void
Fpu::movtoc(std::uint32_t op, word_t data)
{
    const auto sel = static_cast<FpuMov>((op >> 10) & 0xf);
    if (sel != FpuMov::Reg)
        fatal("fpu: movtoc can only write registers");
    regs_[op & 31] = data;
}

void
Fpu::loadDirect(unsigned reg, word_t data)
{
    regs_.at(reg) = data;
}

word_t
Fpu::storeDirect(unsigned reg)
{
    return regs_.at(reg);
}

} // namespace mipsx::coproc
