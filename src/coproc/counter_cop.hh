/**
 * @file
 * A minimal test coprocessor: a counter with a threshold condition.
 * Used by the interface tests and the coprocessor example to exercise
 * aluc/movfrc/movtoc without floating-point semantics in the way.
 *
 * Operation field: [13:10] opcode, [9:0] immediate.
 *   0 = reset counter to immediate
 *   1 = add immediate
 *   2 = set condition threshold to immediate
 *   movfrc op 0 reads the counter, op (1<<10) reads the status.
 */

#ifndef MIPSX_COPROC_COUNTER_COP_HH
#define MIPSX_COPROC_COUNTER_COP_HH

#include "coproc/coprocessor.hh"

namespace mipsx::coproc
{

class CounterCop : public Coprocessor
{
  public:
    void
    aluc(std::uint32_t op) override
    {
        const unsigned opc = (op >> 10) & 0xf;
        const word_t imm = op & 0x3ff;
        switch (opc) {
          case 0:
            counter_ = imm;
            break;
          case 1:
            counter_ += imm;
            break;
          case 2:
            threshold_ = imm;
            break;
          default:
            break;
        }
    }

    word_t
    movfrc(std::uint32_t op) override
    {
        if (((op >> 10) & 0xf) == 1)
            return condition() ? 1u : 0u;
        return counter_;
    }

    void
    movtoc(std::uint32_t op, word_t data) override
    {
        (void)op;
        counter_ = data;
    }

    void loadDirect(unsigned, word_t data) override { counter_ = data; }
    word_t storeDirect(unsigned) override { return counter_; }

    bool condition() const override { return counter_ >= threshold_; }
    const char *name() const override { return "counter"; }

    word_t counter() const { return counter_; }
    word_t threshold() const { return threshold_; }
    // Fast-forward state transfer.
    void setCounter(word_t v) { counter_ = v; }
    void setThreshold(word_t v) { threshold_ = v; }

  private:
    word_t counter_ = 0;
    word_t threshold_ = 0;
};

} // namespace mipsx::coproc

#endif // MIPSX_COPROC_COUNTER_COP_HH
