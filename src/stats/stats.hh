/**
 * @file
 * Lightweight statistics primitives for the simulator: named counters,
 * derived ratios and histograms, collected into groups that can be dumped
 * in a human-readable report.
 */

#ifndef MIPSX_STATS_STATS_HH
#define MIPSX_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mipsx::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Ratio of two counters; safe against a zero denominator. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
        static_cast<double>(den);
}

inline double
ratio(const Counter &num, const Counter &den)
{
    return ratio(num.value(), den.value());
}

/** A fixed-bucket histogram over small unsigned values. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets) : buckets_(buckets, 0) {}

    /** Record one sample; values beyond the last bucket clamp into it. */
    void
    sample(std::size_t v)
    {
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++total_;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t size() const { return buckets_.size(); }
    std::uint64_t total() const { return total_; }

    /** Mean of the recorded samples (clamped values included as clamped). */
    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double sum = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            sum += static_cast<double>(i) * static_cast<double>(buckets_[i]);
        return sum / static_cast<double>(total_);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of scalar statistics, dumped as "name value" lines.
 * Components register their counters here so reports stay uniform.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void set(const std::string &key, double value) { scalars_[key] = value; }
    double get(const std::string &key) const;
    bool has(const std::string &key) const
    {
        return scalars_.count(key) != 0;
    }

    const std::string &name() const { return name_; }

    /** Dump all scalars as aligned "group.key  value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, double> scalars_;
};

} // namespace mipsx::stats

#endif // MIPSX_STATS_STATS_HH
