/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses to print the
 * same rows/series the paper's tables report.
 */

#ifndef MIPSX_STATS_TABLE_HH
#define MIPSX_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mipsx::stats
{

/** A simple column-aligned table with a title and a header row. */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> header)
        : title_(std::move(title)), header_(std::move(header))
    {}

    /** Append a row; it must have exactly as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format a percentage with @p precision decimals. */
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mipsx::stats

#endif // MIPSX_STATS_TABLE_HH
