#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/sim_error.hh"

namespace mipsx::stats
{

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        fatal(strformat("table '%s': row has %zu cells, header has %zu",
                        title_.c_str(), cells.size(), header_.size()));
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << " ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    std::size_t total = 1;
    for (auto w : width)
        total += w + 3;

    os << "\n== " << title_ << " ==\n";
    print_row(header_);
    os << std::string(total + 1, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
    os << "\n";
}

} // namespace mipsx::stats
