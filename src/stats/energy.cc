#include "stats/energy.hh"

#include <cmath>

#include "common/sim_error.hh"

namespace mipsx::stats
{

namespace
{

void
checkCost(const char *name, double v)
{
    if (!std::isfinite(v) || v < 0)
        fatal(strformat("energy: cost '%s' must be a finite non-negative "
                        "number (got %g)",
                        name, v));
}

double
u2d(std::uint64_t v)
{
    return static_cast<double>(v);
}

} // namespace

void
EnergyCosts::validate() const
{
    checkCost("icacheRead", icacheRead);
    checkCost("icacheReadPerKword", icacheReadPerKword);
    checkCost("icacheMiss", icacheMiss);
    checkCost("icacheRefillWord", icacheRefillWord);
    checkCost("ecacheRead", ecacheRead);
    checkCost("ecacheReadPerKword", ecacheReadPerKword);
    checkCost("ecacheMiss", ecacheMiss);
    checkCost("memCycle", memCycle);
    checkCost("cycleStatic", cycleStatic);
}

EnergyBreakdown
computeEnergy(const EnergyCosts &costs, const EnergyCounts &counts)
{
    EnergyBreakdown e;
    const double icacheAccess = costs.icacheRead +
        costs.icacheReadPerKword * u2d(counts.icacheSizeWords) / 1024.0;
    const double ecacheAccess = costs.ecacheRead +
        costs.ecacheReadPerKword * u2d(counts.ecacheSizeWords) / 1024.0;
    e.icache = u2d(counts.icacheAccesses) * icacheAccess +
               u2d(counts.icacheMisses) * costs.icacheMiss +
               u2d(counts.icacheRefillWords) * costs.icacheRefillWord;
    e.ecache = u2d(counts.ecacheAccesses) * ecacheAccess +
               u2d(counts.ecacheMisses) * costs.ecacheMiss;
    e.memory = u2d(counts.memTrafficCycles) * costs.memCycle;
    e.staticCost = u2d(counts.cycles) * costs.cycleStatic;
    e.total = e.icache + e.ecache + e.memory + e.staticCost;
    return e;
}

} // namespace mipsx::stats
