/**
 * @file
 * First-order cache/memory energy accounting.
 *
 * The paper's tradeoff studies read cycle costs off design-point
 * sweeps; the natural companion axis (cf. the I-cache energy and
 * DSE-tooling papers in PAPERS.md) is a first-order energy estimate:
 * every cache event the timing model already counts — reads, misses,
 * refill words, memory-bus traffic — is multiplied by a configurable
 * per-event cost, so a sweep reports energy-delay tradeoffs instead of
 * cycles alone.
 *
 * The cost table is *relative*, in arbitrary units. The defaults
 * follow the usual first-order hierarchy scaling: an on-chip SRAM read
 * is the unit, the off-chip Ecache costs an order of magnitude more,
 * and a memory-bus cycle another factor of a few — close enough to
 * rank design points, which is all the sweeps do with it. Every cost
 * is validated (finite, non-negative) at configuration time, so a bad
 * grid binding fails before any workload runs, exactly like the
 * geometry parameters.
 */

#ifndef MIPSX_STATS_ENERGY_HH
#define MIPSX_STATS_ENERGY_HH

#include <cstdint>
#include <string>

namespace mipsx::stats
{

/**
 * Per-event energy cost table (arbitrary units). All sweepable as
 * "energy.*" explore parameters; see knownParams() in explore/grid.
 */
struct EnergyCosts
{
    /** One instruction-cache access (tag + data read). */
    double icacheRead = 1.0;
    /**
     * Capacity scaling of the read cost: extra energy per access per
     * 1024 words of array (longer bit/word lines in a bigger SRAM).
     * This is what makes cache-geometry sweeps a genuine energy-delay
     * tradeoff: growing the cache buys misses back but raises the
     * price of every access.
     */
    double icacheReadPerKword = 0.5;
    /** Per-miss overhead: tag re-check, victim choice, allocate. */
    double icacheMiss = 2.0;
    /** Per word written into the array on a refill (the double fetch
     *  writes two). */
    double icacheRefillWord = 4.0;
    /** One external-cache access (off-chip SRAM read or write). */
    double ecacheRead = 12.0;
    /** Capacity scaling of the Ecache read, per 1024 words. */
    double ecacheReadPerKword = 0.05;
    /** Per-miss overhead in the Ecache beyond the bus traffic. */
    double ecacheMiss = 24.0;
    /** One cycle of main-memory bus traffic (refills, write-throughs,
     *  copy-backs — whatever the Ecache charged to the bus). */
    double memCycle = 50.0;
    /** Static (leakage/clock) cost per machine cycle. */
    double cycleStatic = 0.5;

    /**
     * Reject non-finite or negative costs with a SimError naming the
     * field. CpuConfig::validate() calls this, so a bad table fails at
     * machine-construction time; the explore parameters re-check at
     * applyParam() time so a bad grid value names the parameter.
     */
    void validate() const;

    bool operator==(const EnergyCosts &) const = default;
};

/** The event counts the model prices (all from existing counters). */
struct EnergyCounts
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0; ///< instructions, for the EPI ratio
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t icacheRefillWords = 0;
    std::uint64_t ecacheAccesses = 0;
    std::uint64_t ecacheMisses = 0;
    std::uint64_t memTrafficCycles = 0;
    // Geometry echoes for the capacity-scaled read costs — these are
    // configuration, not accumulating counters.
    std::uint64_t icacheSizeWords = 0;
    std::uint64_t ecacheSizeWords = 0;
};

/** The priced breakdown computeEnergy() returns (same units as costs). */
struct EnergyBreakdown
{
    double icache = 0;     ///< reads + miss overhead + refill words
    double ecache = 0;     ///< reads + miss overhead
    double memory = 0;     ///< memory-bus traffic
    double staticCost = 0; ///< per-cycle static/leakage
    double total = 0;

    /** Energy per committed instruction (0 when nothing committed). */
    double perInstruction(std::uint64_t committed) const
    {
        return committed ? total / static_cast<double>(committed) : 0.0;
    }
    /** The energy-delay product: total x cycles. */
    double energyDelay(std::uint64_t cycles) const
    {
        return total * static_cast<double>(cycles);
    }
};

/** Price @p counts with @p costs (closed-form; no validation here). */
EnergyBreakdown computeEnergy(const EnergyCosts &costs,
                              const EnergyCounts &counts);

/**
 * Export the priced breakdown under "<prefix>." into any registry-like
 * sink with set(name, double) — trace::MetricsRegistry in practice; a
 * template so the stats library stays at the bottom of the dependency
 * stack. These are the "energy.*" keys every sweep row, bench file and
 * serve reply carries.
 */
template <typename Registry>
void
collectEnergy(const EnergyCosts &costs, const EnergyCounts &counts,
              Registry &m, const std::string &prefix = "energy")
{
    const EnergyBreakdown e = computeEnergy(costs, counts);
    const std::string p = prefix + ".";
    m.set(p + "icache", e.icache);
    m.set(p + "ecache", e.ecache);
    m.set(p + "memory", e.memory);
    m.set(p + "static", e.staticCost);
    m.set(p + "total", e.total);
    m.set(p + "per_instruction", e.perInstruction(counts.committed));
    m.set(p + "edp", e.energyDelay(counts.cycles));
}

} // namespace mipsx::stats

#endif // MIPSX_STATS_ENERGY_HH
