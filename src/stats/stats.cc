#include "stats/stats.hh"

#include <iomanip>

#include "common/sim_error.hh"

namespace mipsx::stats
{

double
Group::get(const std::string &key) const
{
    auto it = scalars_.find(key);
    if (it == scalars_.end())
        fatal(strformat("stats group '%s' has no key '%s'",
                        name_.c_str(), key.c_str()));
    return it->second;
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[key, value] : scalars_) {
        os << std::left << std::setw(40) << (name_ + "." + key)
           << std::setprecision(6) << value << "\n";
    }
}

} // namespace mipsx::stats
