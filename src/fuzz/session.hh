/**
 * @file
 * Fuzzing sessions: generate N programs from one session seed, cosim
 * each against the configured machine point, shrink every divergence
 * and dump it as a disassembled .repro file.
 *
 * Determinism contract (an acceptance criterion, tested): the result —
 * divergence count, per-run outcomes, every .repro byte — depends only
 * on (seed, runs, maxInsns, weights, machine config). Each run's PRNG
 * seed comes from deriveSeed(session, index), so runs are independent
 * of scheduling order; workers fill per-run slots that are merged in
 * index order after the join, exactly the suite runner's recipe.
 */

#ifndef MIPSX_FUZZ_SESSION_HH
#define MIPSX_FUZZ_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/cosim.hh"
#include "fuzz/generator.hh"
#include "fuzz/schedcheck.hh"
#include "fuzz/shrink.hh"
#include "trace/metrics.hh"

namespace mipsx::fuzz
{

/** Options for one fuzzing session. */
struct FuzzOptions
{
    std::uint64_t seed = 1;      ///< session seed
    std::uint64_t runs = 100;    ///< programs to generate and compare
    unsigned maxInsns = 192;     ///< generator static budget per program
    GenWeights weights{};
    CosimOptions cosim{};
    /** Worker threads; 0 means workload::defaultSuiteJobs(). */
    unsigned jobs = 0;
    /** Shrink divergences to minimal reproducers (else keep as-is). */
    bool shrinkDivergences = true;
    unsigned shrinkMaxAttempts = 4000;
    /**
     * Fourth leg: per run, additionally generate a sequential-
     * semantics program from the same run seed and check that every
     * scheduling backend's reorganization preserves it (see
     * fuzz/schedcheck.hh). Scheduler divergences produce .repro files
     * like cosim ones, but are never shrunk.
     */
    bool schedCheck = false;
    /** Reorganizer base config for the sched-check leg. */
    reorg::ReorgConfig reorg{};
    /**
     * Directory for .repro files; empty disables writing (the repro
     * text still lands in FuzzDivergence::reproText).
     */
    std::string reproDir;
};

/** One found (and possibly shrunk) divergence. */
struct FuzzDivergence
{
    std::uint64_t runIndex = 0;
    std::uint64_t runSeed = 0;
    bool sched = false;           ///< from the scheduler-check leg
    unsigned shrunkTo = 0;        ///< non-nop insns in the reproducer
    unsigned shrinkIterations = 0;
    std::string reproText;        ///< full .repro contents
    std::string reproPath;        ///< where it was written ("" if not)
};

/** Aggregated results of a session. */
struct FuzzResult
{
    std::uint64_t programs = 0;     ///< programs generated and run
    std::uint64_t matches = 0;
    std::uint64_t inconclusive = 0; ///< budget-exhausted originals
    std::uint64_t retires = 0;      ///< retires compared across runs
    std::uint64_t shrinkIterations = 0;
    std::uint64_t schedChecks = 0;  ///< sched-check legs run
    std::uint64_t schedMatches = 0;
    std::uint64_t schedInconclusive = 0;
    std::vector<FuzzDivergence> divergences; ///< sorted by runIndex

    /** Export under "fuzz." (programs, divergences, shrink iters...). */
    void collectMetrics(trace::MetricsRegistry &m) const;
};

/** Render one divergence as the .repro file format. */
std::string formatRepro(const FuzzOptions &opts, const FuzzDivergence &d,
                        const assembler::Program &prog,
                        const CosimResult &divergence);

/** Run a fuzzing session. */
FuzzResult runFuzz(const FuzzOptions &opts);

} // namespace mipsx::fuzz

#endif // MIPSX_FUZZ_SESSION_HH
