#include "fuzz/cosim.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/sim_error.hh"
#include "coproc/fpu.hh"
#include "isa/disasm.hh"
#include "memory/decoded_image.hh"
#include "trace/export.hh"

namespace mipsx::fuzz
{

namespace
{

struct Step
{
    addr_t pc = 0;
    bool squashed = false;
    word_t raw = 0;    ///< diagnostic only, not compared
    cycle_t cycle = 0; ///< retire cycle (pipeline side only)

    bool
    operator==(const Step &o) const
    {
        return pc == o.pc && squashed == o.squashed;
    }
};

std::string
stepLine(const Step &s)
{
    return strformat("pc=%05x  %-30s%s", s.pc,
                     isa::disassemble(s.raw, s.pc, true).c_str(),
                     s.squashed ? "  [squashed]" : "");
}

/** ISS side: fresh memory, delayed semantics, FPU attached. */
struct IssRun
{
    memory::MainMemory mem;
    std::vector<Step> stream;
    sim::IssStop reason = sim::IssStop::Running;
    coproc::Fpu *fpu = nullptr;
    std::array<word_t, numGprs> gprs{};
    word_t md = 0;
    std::unique_ptr<sim::Iss> iss;
};

void
runIssSide(const assembler::Program &prog,
           const memory::DecodedImage::Snapshot &snap,
           const CosimOptions &opts, IssRun &out, bool block = false)
{
    out.mem.loadProgram(prog, &snap);
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    cfg.branchDelay = opts.issBranchDelayOverride
        ? opts.issBranchDelayOverride
        : opts.machine.cpu.branchDelay;
    // The step leg caps itself on the recorded stream length, so its
    // maxSteps never fires; the block leg records no stream and uses
    // maxSteps itself as the budget, at the same point.
    cfg.maxSteps = block ? opts.retireLimit : opts.retireLimit + 1;
    cfg.dispatch = opts.issDispatch;
    cfg.exec = block ? sim::IssExec::Block : sim::IssExec::Step;
    out.iss = std::make_unique<sim::Iss>(cfg, out.mem);
    auto fpu = std::make_unique<coproc::Fpu>();
    out.fpu = fpu.get();
    out.iss->attachCoprocessor(1, std::move(fpu));
    out.iss->reset(prog.entry);
    out.iss->setGpr(isa::reg::sp, opts.machine.stackTop);
    if (block) {
        out.iss->run();
    } else {
        while (!out.iss->stopped() &&
               out.stream.size() < opts.retireLimit) {
            out.stream.push_back({out.iss->pc(),
                                  out.iss->nextIsSquashed(),
                                  out.mem.read(AddressSpace::User,
                                               out.iss->pc()),
                                  0});
            out.iss->step();
        }
    }
    out.reason = out.iss->stopReason();
    for (unsigned r = 0; r < numGprs; ++r)
        out.gprs[r] = out.iss->gpr(r);
    out.md = out.iss->md();
}

/** Pipeline side: a Machine under the configured point. */
struct PipeRun
{
    std::unique_ptr<sim::Machine> machine;
    std::vector<Step> stream;
    core::RunResult result;
};

void
runPipeSide(const assembler::Program &prog,
            const memory::DecodedImage::Snapshot &snap,
            const CosimOptions &opts, PipeRun &out)
{
    sim::MachineConfig cfg = opts.machine;
    cfg.cpu.maxCycles = opts.maxCycles;
    // The differential needs the pipeline's own retire stream from the
    // first instruction; an inherited fast-forward config (an explore
    // sweep point) would skip exactly the region under test.
    cfg.fastForward = {};
    out.machine = std::make_unique<sim::Machine>(cfg);
    out.machine->memory().setPredecodeEnabled(opts.predecode);
    out.machine->load(prog, opts.predecode ? &snap : nullptr);
    const std::size_t limit = opts.retireLimit;
    auto &stream = out.stream;
    out.machine->cpu().setRetireHook(
        [&stream, limit](const core::Cpu::RetireEvent &ev) {
            if (stream.size() < limit)
                stream.push_back({ev.pc, ev.squashed, ev.raw, ev.cycle});
        });
    out.result = out.machine->run();
}

/**
 * Re-run the pipeline with tracing on, stopping at the diverging
 * retire's cycle, so the event ring holds what led to the divergence
 * (same recipe as the cosim test's reporter).
 */
std::string
divergenceReport(const assembler::Program &prog,
                 const memory::DecodedImage::Snapshot &snap,
                 const CosimOptions &opts, const std::vector<Step> &iss,
                 const std::vector<Step> &pipe, std::size_t i)
{
    std::ostringstream os;
    os << "retire streams diverge at step " << i << "\n"
       << "  iss      : " << stepLine(iss[i]) << "\n"
       << "  pipeline : " << stepLine(pipe[i]) << "\n";
    if (!opts.buildReport)
        return os.str();
    try {
        sim::MachineConfig cfg = opts.machine;
        cfg.traceDepth = 48;
        cfg.cpu.maxCycles = pipe[i].cycle + 1;
        cfg.fastForward = {};
        sim::Machine machine{cfg};
        machine.memory().setPredecodeEnabled(opts.predecode);
        machine.load(prog, opts.predecode ? &snap : nullptr);
        machine.run();
        os << "  pipeline events leading up to the divergence:\n";
        for (const auto &e : machine.trace().events())
            os << "    " << trace::formatEvent(e) << "\n";
    } catch (const SimError &e) {
        os << "  (trace re-run failed: " << e.what() << ")\n";
    }
    return os.str();
}

/** Compare final architectural state; empty string when equal. */
std::string
compareFinalState(const assembler::Program &prog, const IssRun &issr,
                  const PipeRun &piper)
{
    std::ostringstream os;
    const auto &cpu = piper.machine->cpu();
    for (unsigned r = 1; r < numGprs; ++r) {
        if (issr.gprs[r] != cpu.gpr(r))
            os << strformat("  %s: iss %08x pipeline %08x\n",
                            isa::regName(r).c_str(), issr.gprs[r],
                            cpu.gpr(r));
    }
    if (issr.md != cpu.md())
        os << strformat("  md: iss %08x pipeline %08x\n", issr.md,
                        cpu.md());
    auto &issFpu = *issr.fpu;
    auto &pipeFpu = piper.machine->fpu();
    for (unsigned f = 0; f < 32; ++f) {
        if (issFpu.regBits(f) != pipeFpu.regBits(f))
            os << strformat("  f%u: iss %08x pipeline %08x\n", f,
                            issFpu.regBits(f), pipeFpu.regBits(f));
    }
    if (issFpu.status() != pipeFpu.status())
        os << strformat("  fpu status: iss %x pipeline %x\n",
                        issFpu.status(), pipeFpu.status());
    for (const auto &sec : prog.sections) {
        for (addr_t a = sec.base; a < sec.end(); ++a) {
            const word_t iw = issr.mem.read(sec.space, a);
            const word_t pw = piper.machine->readWord(sec.space, a);
            if (iw != pw)
                os << strformat("  [%s:%05x]: iss %08x pipeline %08x\n",
                                sec.name.c_str(), a, iw, pw);
        }
    }
    if (os.str().empty())
        return {};
    return "final architectural state differs:\n" + os.str();
}

/**
 * Compare the block-mode ISS leg against the step-mode leg field by
 * field (the Both-mode differential). Empty string when identical. The
 * two are the same machine semantics through two execute loops, so any
 * difference at all is a block-engine bug.
 */
std::string
compareIssLegs(const IssRun &step, const IssRun &block)
{
    std::ostringstream os;
    if (step.reason != block.reason)
        os << strformat("  stop reason: step %u block %u\n",
                        static_cast<unsigned>(step.reason),
                        static_cast<unsigned>(block.reason));
    if (step.iss->stats().steps != block.iss->stats().steps)
        os << strformat("  steps executed: step %llu block %llu\n",
                        static_cast<unsigned long long>(
                            step.iss->stats().steps),
                        static_cast<unsigned long long>(
                            block.iss->stats().steps));
    for (unsigned r = 1; r < numGprs; ++r) {
        if (step.gprs[r] != block.gprs[r])
            os << strformat("  %s: step %08x block %08x\n",
                            isa::regName(r).c_str(), step.gprs[r],
                            block.gprs[r]);
    }
    if (step.md != block.md)
        os << strformat("  md: step %08x block %08x\n", step.md,
                        block.md);
    for (unsigned f = 0; f < 32; ++f) {
        if (step.fpu->regBits(f) != block.fpu->regBits(f))
            os << strformat("  f%u: step %08x block %08x\n", f,
                            step.fpu->regBits(f), block.fpu->regBits(f));
    }
    if (step.fpu->status() != block.fpu->status())
        os << strformat("  fpu status: step %x block %x\n",
                        step.fpu->status(), block.fpu->status());
    if (step.mem.snapshot() != block.mem.snapshot())
        os << "  memory snapshots differ\n";
    if (os.str().empty())
        return {};
    return "block-mode ISS diverges from step-mode ISS:\n" + os.str();
}

} // namespace

const char *
cosimIssModeName(CosimIssMode m)
{
    switch (m) {
      case CosimIssMode::Step:
        return "step";
      case CosimIssMode::Block:
        return "block";
      case CosimIssMode::Both:
        return "both";
    }
    return "?";
}

const char *
cosimOutcomeName(CosimOutcome o)
{
    switch (o) {
      case CosimOutcome::Match:
        return "match";
      case CosimOutcome::Divergence:
        return "divergence";
      case CosimOutcome::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

CosimResult
runCosim(const assembler::Program &prog, const CosimOptions &opts)
{
    CosimResult res;

    // One predecode of the program, shared by every leg below. The
    // legs adopt the same snapshot copy-on-write, so an SMC program
    // clones its pages privately per leg and the legs stay independent.
    const memory::DecodedImage::Snapshot snap =
        memory::DecodedImage::snapshotProgram(prog);

    const bool wantStep = opts.issMode != CosimIssMode::Block;
    const bool wantBlock = opts.issMode != CosimIssMode::Step;
    IssRun issr;
    IssRun blockr;
    PipeRun piper;
    try {
        if (wantStep)
            runIssSide(prog, snap, opts, issr);
        if (wantBlock)
            runIssSide(prog, snap, opts, blockr, /*block=*/true);
        runPipeSide(prog, snap, opts, piper);
    } catch (const SimError &e) {
        res.outcome = CosimOutcome::Inconclusive;
        res.report = strformat("model fatal: %s", e.what());
        return res;
    }

    if (opts.issMode == CosimIssMode::Block) {
        // No per-instruction stream in block mode: compare stop reason,
        // executed count and final architectural state. The counts line
        // up with step mode (ISS steps count every retire, squashed
        // included, exactly like the pipeline's stream), so outcomes —
        // and the budget/divergence report strings — stay byte-
        // identical to step mode on clean corpora.
        const auto &pipe = piper.stream;
        const std::uint64_t issRetires = std::min<std::uint64_t>(
            blockr.iss->stats().steps, opts.retireLimit);
        res.retires = std::min<std::uint64_t>(issRetires, pipe.size());
        const bool issHalted = blockr.reason == sim::IssStop::Halt;
        const bool pipeHalted = piper.result.halted();
        if (!issHalted || !pipeHalted) {
            const bool issBudget =
                blockr.reason == sim::IssStop::MaxSteps;
            const bool pipeBudget =
                piper.result.reason == core::StopReason::MaxCycles ||
                pipe.size() >= opts.retireLimit;
            if (issBudget || pipeBudget) {
                res.outcome = CosimOutcome::Inconclusive;
                res.report = strformat(
                    "budget exhausted (iss: %u retires, pipeline: %u)",
                    static_cast<unsigned>(issRetires),
                    static_cast<unsigned>(pipe.size()));
                return res;
            }
            res.outcome = CosimOutcome::Divergence;
            res.report =
                strformat("stop reasons differ: iss %u, pipeline %s",
                          static_cast<unsigned>(blockr.reason),
                          core::stopReasonName(piper.result.reason));
            return res;
        }
        if (issRetires != pipe.size()) {
            res.outcome = CosimOutcome::Divergence;
            res.divergeStep = res.retires;
            res.report = strformat("both halted but retire counts "
                                   "differ: iss %u, pipeline %u",
                                   static_cast<unsigned>(issRetires),
                                   static_cast<unsigned>(pipe.size()));
            return res;
        }
        auto stateDiff = compareFinalState(prog, blockr, piper);
        if (!stateDiff.empty()) {
            res.outcome = CosimOutcome::Divergence;
            res.divergeStep = res.retires;
            res.report = std::move(stateDiff);
            return res;
        }
        res.outcome = CosimOutcome::Match;
        return res;
    }

    const auto &iss = issr.stream;
    const auto &pipe = piper.stream;
    const std::size_t n = std::min(iss.size(), pipe.size());
    std::size_t i = 0;
    while (i < n && iss[i] == pipe[i])
        ++i;
    res.retires = i;

    if (i < n) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = i;
        res.report = divergenceReport(prog, snap, opts, iss, pipe, i);
        return res;
    }

    const bool issHalted = issr.reason == sim::IssStop::Halt;
    const bool pipeHalted = piper.result.halted();
    if (!issHalted || !pipeHalted) {
        // Neither stream disagreed where both retired; if either side
        // ran out of budget the program is not comparable. A non-halt
        // stop (fail trap, invalid instruction, exception) on just one
        // side *with* a clean halt on the other is a real divergence.
        const bool issBudget = issr.reason == sim::IssStop::MaxSteps ||
            iss.size() >= opts.retireLimit;
        const bool pipeBudget =
            piper.result.reason == core::StopReason::MaxCycles ||
            pipe.size() >= opts.retireLimit;
        if (issBudget || pipeBudget) {
            res.outcome = CosimOutcome::Inconclusive;
            res.report = strformat(
                "budget exhausted (iss: %u retires, pipeline: %u)",
                static_cast<unsigned>(iss.size()),
                static_cast<unsigned>(pipe.size()));
            return res;
        }
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = i;
        res.report = strformat("stop reasons differ: iss %u, pipeline %s",
                               static_cast<unsigned>(issr.reason),
                               core::stopReasonName(piper.result.reason));
        return res;
    }

    if (iss.size() != pipe.size()) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = n;
        res.report = strformat(
            "both halted but retire counts differ: iss %u, pipeline %u",
            static_cast<unsigned>(iss.size()),
            static_cast<unsigned>(pipe.size()));
        return res;
    }

    auto stateDiff = compareFinalState(prog, issr, piper);
    if (!stateDiff.empty()) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = n;
        res.report = std::move(stateDiff);
        return res;
    }

    // Both mode: the step leg matched the pipeline; now hold the block
    // leg against the step leg. Checked last so that every report the
    // step-vs-pipeline comparison can produce is identical to Step
    // mode's — this leg only adds a new way to diverge.
    if (opts.issMode == CosimIssMode::Both) {
        auto legDiff = compareIssLegs(issr, blockr);
        if (!legDiff.empty()) {
            res.outcome = CosimOutcome::Divergence;
            res.divergeStep = n;
            res.report = std::move(legDiff);
            return res;
        }
    }

    res.outcome = CosimOutcome::Match;
    return res;
}

} // namespace mipsx::fuzz
