#include "fuzz/cosim.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/sim_error.hh"
#include "coproc/fpu.hh"
#include "isa/disasm.hh"
#include "memory/decoded_image.hh"
#include "trace/export.hh"

namespace mipsx::fuzz
{

namespace
{

struct Step
{
    addr_t pc = 0;
    bool squashed = false;
    word_t raw = 0;    ///< diagnostic only, not compared
    cycle_t cycle = 0; ///< retire cycle (pipeline side only)

    bool
    operator==(const Step &o) const
    {
        return pc == o.pc && squashed == o.squashed;
    }
};

std::string
stepLine(const Step &s)
{
    return strformat("pc=%05x  %-30s%s", s.pc,
                     isa::disassemble(s.raw, s.pc, true).c_str(),
                     s.squashed ? "  [squashed]" : "");
}

/** ISS side: fresh memory, delayed semantics, FPU attached. */
struct IssRun
{
    memory::MainMemory mem;
    std::vector<Step> stream;
    sim::IssStop reason = sim::IssStop::Running;
    coproc::Fpu *fpu = nullptr;
    std::array<word_t, numGprs> gprs{};
    word_t md = 0;
    std::unique_ptr<sim::Iss> iss;
};

void
runIssSide(const assembler::Program &prog,
           const memory::DecodedImage::Snapshot &snap,
           const CosimOptions &opts, IssRun &out)
{
    out.mem.loadProgram(prog, &snap);
    sim::IssConfig cfg;
    cfg.mode = sim::IssMode::Delayed;
    cfg.branchDelay = opts.issBranchDelayOverride
        ? opts.issBranchDelayOverride
        : opts.machine.cpu.branchDelay;
    cfg.maxSteps = opts.retireLimit + 1;
    cfg.dispatch = opts.issDispatch;
    out.iss = std::make_unique<sim::Iss>(cfg, out.mem);
    auto fpu = std::make_unique<coproc::Fpu>();
    out.fpu = fpu.get();
    out.iss->attachCoprocessor(1, std::move(fpu));
    out.iss->reset(prog.entry);
    out.iss->setGpr(isa::reg::sp, opts.machine.stackTop);
    while (!out.iss->stopped() && out.stream.size() < opts.retireLimit) {
        out.stream.push_back({out.iss->pc(), out.iss->nextIsSquashed(),
                              out.mem.read(AddressSpace::User,
                                           out.iss->pc()),
                              0});
        out.iss->step();
    }
    out.reason = out.iss->stopReason();
    for (unsigned r = 0; r < numGprs; ++r)
        out.gprs[r] = out.iss->gpr(r);
    out.md = out.iss->md();
}

/** Pipeline side: a Machine under the configured point. */
struct PipeRun
{
    std::unique_ptr<sim::Machine> machine;
    std::vector<Step> stream;
    core::RunResult result;
};

void
runPipeSide(const assembler::Program &prog,
            const memory::DecodedImage::Snapshot &snap,
            const CosimOptions &opts, PipeRun &out)
{
    sim::MachineConfig cfg = opts.machine;
    cfg.cpu.maxCycles = opts.maxCycles;
    out.machine = std::make_unique<sim::Machine>(cfg);
    out.machine->memory().setPredecodeEnabled(opts.predecode);
    out.machine->load(prog, opts.predecode ? &snap : nullptr);
    const std::size_t limit = opts.retireLimit;
    auto &stream = out.stream;
    out.machine->cpu().setRetireHook(
        [&stream, limit](const core::Cpu::RetireEvent &ev) {
            if (stream.size() < limit)
                stream.push_back({ev.pc, ev.squashed, ev.raw, ev.cycle});
        });
    out.result = out.machine->run();
}

/**
 * Re-run the pipeline with tracing on, stopping at the diverging
 * retire's cycle, so the event ring holds what led to the divergence
 * (same recipe as the cosim test's reporter).
 */
std::string
divergenceReport(const assembler::Program &prog,
                 const memory::DecodedImage::Snapshot &snap,
                 const CosimOptions &opts, const std::vector<Step> &iss,
                 const std::vector<Step> &pipe, std::size_t i)
{
    std::ostringstream os;
    os << "retire streams diverge at step " << i << "\n"
       << "  iss      : " << stepLine(iss[i]) << "\n"
       << "  pipeline : " << stepLine(pipe[i]) << "\n";
    if (!opts.buildReport)
        return os.str();
    try {
        sim::MachineConfig cfg = opts.machine;
        cfg.traceDepth = 48;
        cfg.cpu.maxCycles = pipe[i].cycle + 1;
        sim::Machine machine{cfg};
        machine.memory().setPredecodeEnabled(opts.predecode);
        machine.load(prog, opts.predecode ? &snap : nullptr);
        machine.run();
        os << "  pipeline events leading up to the divergence:\n";
        for (const auto &e : machine.trace().events())
            os << "    " << trace::formatEvent(e) << "\n";
    } catch (const SimError &e) {
        os << "  (trace re-run failed: " << e.what() << ")\n";
    }
    return os.str();
}

/** Compare final architectural state; empty string when equal. */
std::string
compareFinalState(const assembler::Program &prog, const IssRun &issr,
                  const PipeRun &piper)
{
    std::ostringstream os;
    const auto &cpu = piper.machine->cpu();
    for (unsigned r = 1; r < numGprs; ++r) {
        if (issr.gprs[r] != cpu.gpr(r))
            os << strformat("  %s: iss %08x pipeline %08x\n",
                            isa::regName(r).c_str(), issr.gprs[r],
                            cpu.gpr(r));
    }
    if (issr.md != cpu.md())
        os << strformat("  md: iss %08x pipeline %08x\n", issr.md,
                        cpu.md());
    auto &issFpu = *issr.fpu;
    auto &pipeFpu = piper.machine->fpu();
    for (unsigned f = 0; f < 32; ++f) {
        if (issFpu.regBits(f) != pipeFpu.regBits(f))
            os << strformat("  f%u: iss %08x pipeline %08x\n", f,
                            issFpu.regBits(f), pipeFpu.regBits(f));
    }
    if (issFpu.status() != pipeFpu.status())
        os << strformat("  fpu status: iss %x pipeline %x\n",
                        issFpu.status(), pipeFpu.status());
    for (const auto &sec : prog.sections) {
        for (addr_t a = sec.base; a < sec.end(); ++a) {
            const word_t iw = issr.mem.read(sec.space, a);
            const word_t pw = piper.machine->readWord(sec.space, a);
            if (iw != pw)
                os << strformat("  [%s:%05x]: iss %08x pipeline %08x\n",
                                sec.name.c_str(), a, iw, pw);
        }
    }
    if (os.str().empty())
        return {};
    return "final architectural state differs:\n" + os.str();
}

} // namespace

const char *
cosimOutcomeName(CosimOutcome o)
{
    switch (o) {
      case CosimOutcome::Match:
        return "match";
      case CosimOutcome::Divergence:
        return "divergence";
      case CosimOutcome::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

CosimResult
runCosim(const assembler::Program &prog, const CosimOptions &opts)
{
    CosimResult res;

    // One predecode of the program, shared by every leg below. The
    // legs adopt the same snapshot copy-on-write, so an SMC program
    // clones its pages privately per leg and the legs stay independent.
    const memory::DecodedImage::Snapshot snap =
        memory::DecodedImage::snapshotProgram(prog);

    IssRun issr;
    PipeRun piper;
    try {
        runIssSide(prog, snap, opts, issr);
        runPipeSide(prog, snap, opts, piper);
    } catch (const SimError &e) {
        res.outcome = CosimOutcome::Inconclusive;
        res.report = strformat("model fatal: %s", e.what());
        return res;
    }

    const auto &iss = issr.stream;
    const auto &pipe = piper.stream;
    const std::size_t n = std::min(iss.size(), pipe.size());
    std::size_t i = 0;
    while (i < n && iss[i] == pipe[i])
        ++i;
    res.retires = i;

    if (i < n) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = i;
        res.report = divergenceReport(prog, snap, opts, iss, pipe, i);
        return res;
    }

    const bool issHalted = issr.reason == sim::IssStop::Halt;
    const bool pipeHalted = piper.result.halted();
    if (!issHalted || !pipeHalted) {
        // Neither stream disagreed where both retired; if either side
        // ran out of budget the program is not comparable. A non-halt
        // stop (fail trap, invalid instruction, exception) on just one
        // side *with* a clean halt on the other is a real divergence.
        const bool issBudget = issr.reason == sim::IssStop::MaxSteps ||
            iss.size() >= opts.retireLimit;
        const bool pipeBudget =
            piper.result.reason == core::StopReason::MaxCycles ||
            pipe.size() >= opts.retireLimit;
        if (issBudget || pipeBudget) {
            res.outcome = CosimOutcome::Inconclusive;
            res.report = strformat(
                "budget exhausted (iss: %u retires, pipeline: %u)",
                static_cast<unsigned>(iss.size()),
                static_cast<unsigned>(pipe.size()));
            return res;
        }
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = i;
        res.report = strformat("stop reasons differ: iss %u, pipeline %s",
                               static_cast<unsigned>(issr.reason),
                               core::stopReasonName(piper.result.reason));
        return res;
    }

    if (iss.size() != pipe.size()) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = n;
        res.report = strformat(
            "both halted but retire counts differ: iss %u, pipeline %u",
            static_cast<unsigned>(iss.size()),
            static_cast<unsigned>(pipe.size()));
        return res;
    }

    auto stateDiff = compareFinalState(prog, issr, piper);
    if (!stateDiff.empty()) {
        res.outcome = CosimOutcome::Divergence;
        res.divergeStep = n;
        res.report = std::move(stateDiff);
        return res;
    }

    res.outcome = CosimOutcome::Match;
    return res;
}

} // namespace mipsx::fuzz
