/**
 * @file
 * Seeded random MIPS-X program generator for differential fuzzing.
 *
 * Programs are *valid-by-construction*: every emitted word is produced
 * by the isa encoders (so it decodes, disassembles and round-trips),
 * every memory operation stays inside a dedicated scratch region, the
 * only backward control transfers are counted loops whose counters are
 * never touched by loop bodies, and the total loop-iteration count is
 * drawn from a fixed budget — so every generated program terminates
 * under the delayed-semantics ISS and the pipeline alike, within a
 * dynamic-instruction bound derivable from the configuration.
 *
 * The opcode mix is weighted over the corners the paper's correctness
 * story rests on: ALU traffic (including mstep/dstep through MD and the
 * funnel shifter), loads/stores/load-through, branches with both delay
 * slots and all three squash variants, forward jumps, coprocessor
 * operations on the FPU (aluc/movfrc/movtoc/ldf/stf), and
 * self-modifying stores that rewrite already-executed words inside
 * loops to exercise the predecode invalidation path.
 *
 * Determinism: the generator uses its own splitmix64 PRNG (never libc
 * or libstdc++ distributions), so one seed produces bit-identical
 * programs on every host, forever.
 */

#ifndef MIPSX_FUZZ_GENERATOR_HH
#define MIPSX_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>

#include "assembler/program.hh"
#include "common/types.hh"

namespace mipsx::fuzz
{

/**
 * splitmix64: tiny, fast, and — unlike std::uniform_int_distribution —
 * specified output, so fuzz runs reproduce bit-for-bit across
 * toolchains. Used by the generator and for per-run seed derivation.
 */
struct Rng
{
    std::uint64_t state = 0;

    explicit Rng(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform-ish value in [0, n); 0 when n == 0. */
    std::uint32_t
    below(std::uint32_t n)
    {
        return n ? static_cast<std::uint32_t>(next() % n) : 0;
    }

    /** True with probability num/den. */
    bool
    chance(unsigned num, unsigned den)
    {
        return below(den) < num;
    }
};

/** Derive the PRNG seed for run @p index of a session (order-free). */
std::uint64_t deriveSeed(std::uint64_t session, std::uint64_t index);

/**
 * Relative weights of the generator's instruction classes, plus the
 * probability (percent) that a branch uses a squash variant. Zero
 * disables a class entirely.
 */
struct GenWeights
{
    unsigned alu = 40;    ///< compute / immediate ops (incl. MD traffic)
    unsigned mem = 18;    ///< ld/ldt/st/ldf/stf on the scratch region
    unsigned branch = 14; ///< forward compare-and-branch blocks
    unsigned jump = 5;    ///< forward jmp/jal blocks
    unsigned coproc = 8;  ///< aluc/movfrc/movtoc on the FPU
    unsigned smc = 5;     ///< self-modifying store blocks
    unsigned loop = 10;   ///< counted backward-edge loops
    unsigned squash = 60; ///< % of branches with a squash variant

    bool operator==(const GenWeights &) const = default;
};

/**
 * Parse "alu=40,mem=18,squash=0" into weights over the defaults.
 * Throws SimError naming the key for unknown keys or bad values.
 */
GenWeights parseWeights(const std::string &spec);

/** Render weights back to the parseWeights() form (for .repro echo). */
std::string formatWeights(const GenWeights &w);

/** Generator configuration. */
struct GeneratorConfig
{
    std::uint64_t seed = 1;
    /** Static text-body budget, in instruction words. */
    unsigned maxInsns = 192;
    /** Total loop-iteration budget across the whole program. */
    unsigned loopIterations = 48;
    GenWeights weights{};
    /**
     * Emit a sequential-semantics program: branches carry no delay
     * slots or squash variants and self-modifying code is disabled, so
     * the result is valid reorganize() input. The body is followed by
     * an epilogue that stores every generator-writable register, MD,
     * and the FPU state into a dump area appended to the data section,
     * making the whole architectural outcome observable through a
     * memory compare (slot fills may clobber dead registers, so raw
     * GPR compares would misfire).
     */
    bool sequential = false;
};

/**
 * Generate one program. The image has a text section at the default
 * text base (entry at its first word, final word a halt trap) and a
 * data section holding the SMC donor words plus a randomized scratch
 * region all memory operations stay inside.
 */
assembler::Program generate(const GeneratorConfig &config);

/** Number of non-nop words across the program's text sections. */
unsigned nonNopTextWords(const assembler::Program &prog);

} // namespace mipsx::fuzz

#endif // MIPSX_FUZZ_GENERATOR_HH
