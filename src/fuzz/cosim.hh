/**
 * @file
 * Differential co-simulation harness for the fuzzer: run one program on
 * the delayed-semantics ISS (golden) and the cycle-accurate pipeline in
 * lockstep, compare the retire streams (pc + squash decision, the same
 * check tests/test_cosim.cc established) and then the final
 * architectural state (GPRs, MD, FPU registers, every loaded section's
 * memory words).
 *
 * Outcomes are three-valued on purpose: shrinking replaces instructions
 * with nops, which can produce programs that no longer terminate inside
 * the budget (e.g. a nopped loop-counter init) or that trip a model
 * fatal; those are Inconclusive — neither a pass nor a reproduction —
 * and the shrinker rejects such candidates.
 */

#ifndef MIPSX_FUZZ_COSIM_HH
#define MIPSX_FUZZ_COSIM_HH

#include <cstdint>
#include <string>

#include "assembler/program.hh"
#include "sim/iss.hh"
#include "sim/machine.hh"

namespace mipsx::fuzz
{

/**
 * Which ISS execute loop(s) the differential runs against the pipeline.
 *
 *  - Step: the per-instruction reference loop (the original harness).
 *  - Block: the superblock loop (sim::IssExec::Block). Retire streams
 *    cannot be recorded instruction-by-instruction in this mode, so the
 *    comparison is stop reason + executed count + final architectural
 *    state.
 *  - Both: the step leg runs against the pipeline exactly as in Step
 *    mode (reports stay byte-identical on clean runs), and a block-mode
 *    ISS run is additionally compared field-by-field against the step
 *    leg — the fuzzer's third leg, targeting the block engine itself.
 */
enum class CosimIssMode : std::uint8_t
{
    Step = 0,
    Block,
    Both,
};

const char *cosimIssModeName(CosimIssMode m);

/** Cosim configuration. */
struct CosimOptions
{
    /** Timing-side machine configuration (explore params apply here). */
    sim::MachineConfig machine{};
    /** Predecode fast path on the timing side (SMC invalidation test). */
    bool predecode = true;
    /**
     * ISS execute dispatch. Threaded (the default) runs the predecoded
     * handler table; Switch keeps the reference nested-switch path so
     * the fuzzer can differentially test the dispatch mechanisms
     * themselves.
     */
    sim::IssDispatch issDispatch = sim::IssDispatch::Threaded;
    /** ISS execute-loop leg(s); see CosimIssMode. */
    CosimIssMode issMode = CosimIssMode::Step;
    /** Retire-stream comparison budget per side. */
    std::size_t retireLimit = 100'000;
    /** Pipeline cycle budget (overrides machine.cpu.maxCycles). */
    cycle_t maxCycles = 2'000'000;
    /**
     * Testing hook: force the ISS branch delay instead of mirroring the
     * machine's. A planted mismatch (1 vs the machine's 2) makes every
     * taken branch diverge — how the shrinker tests plant a known bug.
     * 0 = mirror the machine configuration.
     */
    unsigned issBranchDelayOverride = 0;
    /**
     * Build the full divergence report (which re-runs the pipeline
     * with tracing on). The shrinker turns this off for candidate
     * runs — only the outcome matters there — and back on for the
     * final reproducer.
     */
    bool buildReport = true;
};

/** What a cosim run concluded. */
enum class CosimOutcome : std::uint8_t
{
    Match = 0,    ///< both halted; streams and final state agree
    Divergence,   ///< a reproducible disagreement
    Inconclusive, ///< budget exhausted or model fatal; not comparable
};

const char *cosimOutcomeName(CosimOutcome o);

/** Result of one differential run. */
struct CosimResult
{
    CosimOutcome outcome = CosimOutcome::Inconclusive;
    /** First diverging retire index (stream divergences only). */
    std::size_t divergeStep = 0;
    /** Retires compared on the common prefix. */
    std::uint64_t retires = 0;
    /** Human-readable explanation for Divergence / Inconclusive. */
    std::string report;
};

/** Run @p prog on both models and compare. Never throws SimError. */
CosimResult runCosim(const assembler::Program &prog,
                     const CosimOptions &opts);

} // namespace mipsx::fuzz

#endif // MIPSX_FUZZ_COSIM_HH
