/**
 * @file
 * Delta-debugging shrinker: reduce a diverging program to a minimal
 * reproducer by replacing instruction windows with nops.
 *
 * Nop replacement (rather than deletion) is the whole trick: it keeps
 * every address, branch displacement and SMC store offset intact, so no
 * relocation pass is needed and every candidate is still a well-formed
 * program. The classic ddmin window schedule applies — try to nop out
 * windows of half the remaining instructions, halve the window on a
 * fixed point, down to single instructions — accepting a candidate only
 * when it still *diverges* (Inconclusive candidates, e.g. a loop whose
 * counter init got nopped away, are rejected).
 */

#ifndef MIPSX_FUZZ_SHRINK_HH
#define MIPSX_FUZZ_SHRINK_HH

#include "assembler/program.hh"
#include "fuzz/cosim.hh"

namespace mipsx::fuzz
{

/** Shrinker configuration. */
struct ShrinkOptions
{
    /** The configuration the divergence was found under. */
    CosimOptions cosim{};
    /** Cap on candidate cosim runs (the shrink is best-effort). */
    unsigned maxAttempts = 4000;
    /**
     * Tightened budgets for candidate runs. Nopping a loop-counter
     * init turns a 50-iteration loop into a 2^32 one; such candidates
     * must hit the budget (becoming Inconclusive, hence rejected), so
     * the budget size is pure wasted time — keep it just above any
     * honest generated program's dynamic length.
     */
    std::size_t candidateRetireLimit = 16'384;
    cycle_t candidateMaxCycles = 262'144;
};

/** Result of a shrink. */
struct ShrinkResult
{
    /** The minimized program (still diverges under the options). */
    assembler::Program program;
    /** The minimized program's divergence (for the .repro report). */
    CosimResult divergence;
    /** Candidate cosim runs performed. */
    unsigned iterations = 0;
    /** Non-nop text words remaining. */
    unsigned kept = 0;
};

/**
 * Shrink @p prog, which must diverge under @p opts.cosim (throws
 * SimError if it does not — a shrink on a passing program is a caller
 * bug). Deterministic: same program + options, same result.
 */
ShrinkResult shrink(const assembler::Program &prog,
                    const ShrinkOptions &opts);

} // namespace mipsx::fuzz

#endif // MIPSX_FUZZ_SHRINK_HH
