#include "fuzz/session.hh"

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/sim_error.hh"
#include "isa/disasm.hh"
#include "isa/isa.hh"
#include "workload/suite_runner.hh"

namespace mipsx::fuzz
{

namespace
{

/** Everything one run produces; workers write only their own slot. */
struct RunSlot
{
    CosimOutcome outcome = CosimOutcome::Inconclusive;
    std::uint64_t retires = 0;
    std::uint64_t shrinkIterations = 0;
    bool diverged = false;
    FuzzDivergence divergence;
    bool schedRan = false;
    CosimOutcome schedOutcome = CosimOutcome::Inconclusive;
    std::string error; ///< SimError text, when the run itself blew up
};

/**
 * The scheduler-preservation leg: same run seed, its own sequential
 * program. Runs after the main cosim so a main-leg divergence (already
 * a reproducer) is never shadowed by a scheduler one.
 */
void
runSchedLeg(const FuzzOptions &opts, std::uint64_t index,
            std::uint64_t runSeed, RunSlot &slot)
{
    SchedCheckOptions so;
    so.machine = opts.cosim.machine;
    so.predecode = opts.cosim.predecode;
    so.reorg = opts.reorg;
    so.maxInsns = opts.maxInsns;
    so.weights = opts.weights;
    so.retireLimit = opts.cosim.retireLimit;
    so.maxCycles = opts.cosim.maxCycles;
    const auto sr = runSchedCheck(runSeed, so);
    slot.schedRan = true;
    slot.schedOutcome = sr.outcome;
    slot.retires += sr.retires;
    if (sr.outcome != CosimOutcome::Divergence)
        return;
    slot.diverged = true;
    auto &d = slot.divergence;
    d.runIndex = index;
    d.runSeed = runSeed;
    d.sched = true;
    d.reproText = sr.reproText;
}

void
runOne(const FuzzOptions &opts, std::uint64_t index, RunSlot &slot)
{
    GeneratorConfig gc;
    gc.seed = deriveSeed(opts.seed, index);
    gc.maxInsns = opts.maxInsns;
    gc.weights = opts.weights;
    const auto prog = generate(gc);

    auto result = runCosim(prog, opts.cosim);
    slot.outcome = result.outcome;
    slot.retires = result.retires;
    if (result.outcome != CosimOutcome::Divergence) {
        if (opts.schedCheck)
            runSchedLeg(opts, index, gc.seed, slot);
        return;
    }

    slot.diverged = true;
    auto &d = slot.divergence;
    d.runIndex = index;
    d.runSeed = gc.seed;

    const assembler::Program *repro = &prog;
    ShrinkResult shrunk;
    if (opts.shrinkDivergences) {
        ShrinkOptions so;
        so.cosim = opts.cosim;
        so.maxAttempts = opts.shrinkMaxAttempts;
        shrunk = shrink(prog, so);
        slot.shrinkIterations = shrunk.iterations;
        d.shrinkIterations = shrunk.iterations;
        repro = &shrunk.program;
        result = shrunk.divergence;
    }
    d.shrunkTo = nonNopTextWords(*repro);
    d.reproText = formatRepro(opts, d, *repro, result);
}

} // namespace

void
FuzzResult::collectMetrics(trace::MetricsRegistry &m) const
{
    m.set("fuzz.programs", programs);
    m.set("fuzz.matches", matches);
    m.set("fuzz.divergences",
          static_cast<std::uint64_t>(divergences.size()));
    m.set("fuzz.inconclusive", inconclusive);
    m.set("fuzz.retires", retires);
    m.set("fuzz.shrink_iterations", shrinkIterations);
    m.set("fuzz.sched_checks", schedChecks);
    m.set("fuzz.sched_matches", schedMatches);
    m.set("fuzz.sched_inconclusive", schedInconclusive);
}

std::string
formatRepro(const FuzzOptions &opts, const FuzzDivergence &d,
            const assembler::Program &prog, const CosimResult &divergence)
{
    std::ostringstream os;
    os << "# mipsx-fuzz reproducer\n";
    os << strformat("# session-seed: %llu\n",
                    static_cast<unsigned long long>(opts.seed));
    os << strformat("# run-index: %llu\n",
                    static_cast<unsigned long long>(d.runIndex));
    os << strformat("# run-seed: 0x%016llx\n",
                    static_cast<unsigned long long>(d.runSeed));
    os << "# weights: " << formatWeights(opts.weights) << "\n";
    os << strformat("# max-insns: %u\n", opts.maxInsns);
    os << strformat("# rerun: mipsx-fuzz --seed %llu --runs %llu "
                    "--max-insns %u --weights %s (plus your --config "
                    "flags)\n",
                    static_cast<unsigned long long>(opts.seed),
                    static_cast<unsigned long long>(d.runIndex + 1),
                    opts.maxInsns, formatWeights(opts.weights).c_str());
    if (d.shrinkIterations)
        os << strformat("# shrunk to %u instructions in %u candidate "
                        "runs\n",
                        d.shrunkTo, d.shrinkIterations);
    os << "# divergence:\n";
    {
        std::istringstream lines(divergence.report);
        std::string line;
        while (std::getline(lines, line))
            os << "#   " << line << "\n";
    }
    for (const auto &sec : prog.sections) {
        os << strformat("# section %s (base %05x, %u words)\n",
                        sec.name.c_str(), sec.base,
                        static_cast<unsigned>(sec.words.size()));
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            const addr_t pc = sec.base + static_cast<addr_t>(i);
            if (sec.isText) {
                os << strformat(
                    "%05x: %08x  %s\n", pc, sec.words[i],
                    isa::disassemble(sec.words[i], pc, true).c_str());
            } else {
                os << strformat("%05x: %08x\n", pc, sec.words[i]);
            }
        }
    }
    return os.str();
}

FuzzResult
runFuzz(const FuzzOptions &opts)
{
    std::vector<RunSlot> slots(opts.runs);

    const unsigned jobs = std::max(
        1u, std::min(opts.jobs ? opts.jobs
                               : workload::defaultSuiteJobs(),
                     static_cast<unsigned>(
                         std::min<std::uint64_t>(opts.runs, 1u << 16))));
    auto runSlot = [&](std::uint64_t i) {
        try {
            runOne(opts, i, slots[i]);
        } catch (const SimError &e) {
            slots[i].outcome = CosimOutcome::Inconclusive;
            slots[i].error = e.what();
        }
    };
    if (jobs <= 1 || opts.runs <= 1) {
        for (std::uint64_t i = 0; i < opts.runs; ++i)
            runSlot(i);
    } else {
        // Worker pool over an atomic index; workers write only their
        // own slots, so the merged result is order-independent.
        std::atomic<std::uint64_t> next{0};
        auto worker = [&] {
            for (std::uint64_t i = next.fetch_add(1); i < opts.runs;
                 i = next.fetch_add(1))
                runSlot(i);
        };
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    FuzzResult res;
    res.programs = opts.runs;
    for (auto &s : slots) {
        res.retires += s.retires;
        res.shrinkIterations += s.shrinkIterations;
        if (s.schedRan) {
            ++res.schedChecks;
            if (s.schedOutcome == CosimOutcome::Match)
                ++res.schedMatches;
            else if (s.schedOutcome == CosimOutcome::Inconclusive)
                ++res.schedInconclusive;
        }
        switch (s.outcome) {
          case CosimOutcome::Match:
            ++res.matches;
            break;
          case CosimOutcome::Inconclusive:
            ++res.inconclusive;
            break;
          case CosimOutcome::Divergence:
            break;
        }
        if (s.diverged)
            res.divergences.push_back(std::move(s.divergence));
    }

    if (!opts.reproDir.empty()) {
        for (auto &d : res.divergences) {
            d.reproPath = strformat(
                "%s/repro-seed%llu-run%llu%s.repro",
                opts.reproDir.c_str(),
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(d.runIndex),
                d.sched ? "-sched" : "");
            std::ofstream out(d.reproPath, std::ios::binary);
            if (!out) {
                fatal(strformat("fuzz: cannot write '%s'",
                                d.reproPath.c_str()));
            }
            out << d.reproText;
        }
    }
    return res;
}

} // namespace mipsx::fuzz
