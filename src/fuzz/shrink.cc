#include "fuzz/shrink.hh"

#include <algorithm>
#include <vector>

#include "common/sim_error.hh"
#include "fuzz/generator.hh"
#include "isa/encode.hh"

namespace mipsx::fuzz
{

namespace
{

/**
 * Indices of removable words in the text section: everything that is
 * not already a nop, except the final word (the halt trap — nopping it
 * would turn every candidate Inconclusive, so don't bother trying).
 */
std::vector<std::size_t>
removable(const assembler::Section &text)
{
    std::vector<std::size_t> out;
    const std::size_t n = text.words.size();
    for (std::size_t i = 0; i + 1 < n; ++i)
        if (text.words[i] != isa::nopWord)
            out.push_back(i);
    return out;
}

} // namespace

ShrinkResult
shrink(const assembler::Program &prog, const ShrinkOptions &opts)
{
    ShrinkResult res;
    res.program = prog;
    // Candidate runs skip the (expensive, trace-replaying) report;
    // only the final reproducer's divergence gets the full treatment.
    CosimOptions quick = opts.cosim;
    quick.buildReport = false;
    quick.retireLimit = std::min(quick.retireLimit,
                                 opts.candidateRetireLimit);
    quick.maxCycles = std::min(quick.maxCycles, opts.candidateMaxCycles);
    res.divergence = runCosim(res.program, quick);
    ++res.iterations;
    if (res.divergence.outcome != CosimOutcome::Divergence)
        fatal("shrink: program does not diverge under these options");

    auto &text = res.program.text();
    auto live = removable(text);
    std::size_t window = std::max<std::size_t>(live.size() / 2, 1);

    while (window >= 1 && res.iterations < opts.maxAttempts) {
        bool progress = false;
        for (std::size_t start = 0;
             start < live.size() && res.iterations < opts.maxAttempts;
             start += window) {
            const std::size_t end = std::min(start + window, live.size());

            // Candidate: nop out live[start..end).
            std::vector<word_t> saved;
            saved.reserve(end - start);
            for (std::size_t k = start; k < end; ++k) {
                saved.push_back(text.words[live[k]]);
                text.words[live[k]] = isa::nopWord;
            }

            const auto cand = runCosim(res.program, quick);
            ++res.iterations;
            if (cand.outcome == CosimOutcome::Divergence) {
                res.divergence = cand;
                live.erase(live.begin() +
                               static_cast<std::ptrdiff_t>(start),
                           live.begin() + static_cast<std::ptrdiff_t>(end));
                start -= window; // stay in place; erase shifted the rest
                progress = true;
            } else {
                for (std::size_t k = start; k < end; ++k)
                    text.words[live[k]] = saved[k - start];
            }
        }
        if (window == 1 && !progress)
            break;
        if (!progress)
            window = std::max<std::size_t>(window / 2, 1);
        else
            window = std::min(window,
                              std::max<std::size_t>(live.size() / 2, 1));
    }

    res.divergence = runCosim(res.program, opts.cosim);
    res.kept = nonNopTextWords(res.program);
    return res;
}

} // namespace mipsx::fuzz
