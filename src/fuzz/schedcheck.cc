#include "fuzz/schedcheck.hh"

#include <sstream>
#include <vector>

#include "common/sim_error.hh"
#include "coproc/fpu.hh"
#include "isa/disasm.hh"
#include "isa/isa.hh"

namespace mipsx::fuzz
{

namespace
{

/** One ISS run to completion; the memory holds the final state. */
struct IssLeg
{
    memory::MainMemory mem;
    sim::IssStop reason = sim::IssStop::Running;
};

void
runIssLeg(const assembler::Program &prog, sim::IssMode mode,
          const SchedCheckOptions &opts, IssLeg &out)
{
    out.mem.loadProgram(prog);
    sim::IssConfig cfg;
    cfg.mode = mode;
    cfg.branchDelay = opts.machine.cpu.branchDelay;
    cfg.maxSteps = opts.retireLimit;
    sim::Iss iss(cfg, out.mem);
    iss.attachCoprocessor(1, std::make_unique<coproc::Fpu>());
    iss.reset(prog.entry);
    iss.setGpr(isa::reg::sp, opts.machine.stackTop);
    iss.run();
    out.reason = iss.stopReason();
}

/**
 * Compare every non-text section word (the observable outcome: the
 * dump epilogue plus the scratch region). Text differs by construction
 * — the schedulers moved it. Empty string when equal.
 */
std::string
compareDataSections(const assembler::Program &prog, const IssLeg &spec,
                    const IssLeg &got)
{
    std::ostringstream os;
    for (const auto &sec : prog.sections) {
        if (sec.isText)
            continue;
        for (addr_t a = sec.base; a < sec.end(); ++a) {
            const word_t sw = spec.mem.read(sec.space, a);
            const word_t gw = got.mem.read(sec.space, a);
            if (sw != gw)
                os << strformat("  [%s:%05x]: sequential %08x "
                                "scheduled %08x\n",
                                sec.name.c_str(), a, sw, gw);
        }
    }
    if (os.str().empty())
        return {};
    return "final data memory differs from the sequential spec:\n" +
        os.str();
}

std::string
dumpProgram(const assembler::Program &prog)
{
    std::ostringstream os;
    for (const auto &sec : prog.sections) {
        os << strformat("# section %s (base %05x, %u words)\n",
                        sec.name.c_str(), sec.base,
                        static_cast<unsigned>(sec.words.size()));
        for (std::size_t i = 0; i < sec.words.size(); ++i) {
            const addr_t pc = sec.base + static_cast<addr_t>(i);
            if (sec.isText) {
                os << strformat(
                    "%05x: %08x  %s\n", pc, sec.words[i],
                    isa::disassemble(sec.words[i], pc, true).c_str());
            } else {
                os << strformat("%05x: %08x\n", pc, sec.words[i]);
            }
        }
    }
    return os.str();
}

std::string
reproText(std::uint64_t seed, const SchedCheckOptions &opts,
          const assembler::Program &prog, const std::string &report)
{
    std::ostringstream os;
    os << "# mipsx-fuzz scheduler-preservation reproducer\n";
    os << strformat("# run-seed: 0x%016llx\n",
                    static_cast<unsigned long long>(seed));
    os << "# weights: " << formatWeights(opts.weights) << "\n";
    os << strformat("# max-insns: %u\n", opts.maxInsns);
    os << "# divergence:\n";
    std::istringstream lines(report);
    std::string line;
    while (std::getline(lines, line))
        os << "#   " << line << "\n";
    os << dumpProgram(prog);
    return os.str();
}

} // namespace

SchedCheckResult
runSchedCheck(std::uint64_t seed, const SchedCheckOptions &opts)
{
    SchedCheckResult res;

    GeneratorConfig gc;
    gc.seed = seed;
    gc.maxInsns = opts.maxInsns;
    gc.loopIterations = opts.loopIterations;
    gc.weights = opts.weights;
    gc.sequential = true;
    const auto prog = generate(gc);

    // The specification: the unscheduled program under sequential
    // semantics. Generated programs terminate by construction, so a
    // non-halt here is a budget problem, never a scheduler bug.
    IssLeg spec;
    try {
        runIssLeg(prog, sim::IssMode::Sequential, opts, spec);
    } catch (const SimError &e) {
        res.report = strformat("sequential spec run: model fatal: %s",
                               e.what());
        return res;
    }
    if (spec.reason != sim::IssStop::Halt) {
        res.report = strformat("sequential spec run stopped with %u "
                               "instead of halting",
                               static_cast<unsigned>(spec.reason));
        return res;
    }

    constexpr reorg::SchedulerKind kinds[] = {
        reorg::SchedulerKind::Heuristic,
        reorg::SchedulerKind::List,
        reorg::SchedulerKind::Optimal,
    };
    for (const auto kind : kinds) {
        const char *name = reorg::schedulerKindName(kind);
        reorg::ReorgConfig rc = opts.reorg;
        rc.scheduler = kind;
        assembler::Program sched;
        try {
            sched = reorg::reorganize(prog, rc);
        } catch (const SimError &e) {
            res.outcome = CosimOutcome::Divergence;
            res.report = strformat("scheduler %s: reorganize failed: %s",
                                   name, e.what());
            res.reproText = reproText(seed, opts, prog, res.report);
            return res;
        }

        CosimOptions co;
        co.machine = opts.machine;
        co.predecode = opts.predecode;
        co.retireLimit = opts.retireLimit;
        co.maxCycles = opts.maxCycles;
        const auto cr = runCosim(sched, co);
        res.retires += cr.retires;
        if (cr.outcome == CosimOutcome::Inconclusive) {
            res.report = strformat("scheduler %s: cosim inconclusive: ",
                                   name) +
                cr.report;
            return res;
        }
        if (cr.outcome == CosimOutcome::Divergence) {
            res.outcome = CosimOutcome::Divergence;
            res.report = strformat("scheduler %s: iss/pipeline cosim "
                                   "diverged:\n",
                                   name) +
                cr.report;
            res.reproText = reproText(seed, opts, prog, res.report);
            return res;
        }

        // The cosim proved delayed-ISS == pipeline on the scheduled
        // program; now hold that outcome against the sequential spec.
        IssLeg leg;
        try {
            runIssLeg(sched, sim::IssMode::Delayed, opts, leg);
        } catch (const SimError &e) {
            res.report = strformat("scheduler %s: delayed run: model "
                                   "fatal: %s",
                                   name, e.what());
            return res;
        }
        if (leg.reason != sim::IssStop::Halt) {
            if (leg.reason == sim::IssStop::MaxSteps) {
                res.report = strformat("scheduler %s: delayed run "
                                       "exhausted the step budget",
                                       name);
                return res;
            }
            res.outcome = CosimOutcome::Divergence;
            res.report = strformat("scheduler %s: delayed run stopped "
                                   "with %u instead of halting",
                                   name,
                                   static_cast<unsigned>(leg.reason));
            res.reproText = reproText(seed, opts, prog, res.report);
            return res;
        }
        auto diff = compareDataSections(prog, spec, leg);
        if (!diff.empty()) {
            res.outcome = CosimOutcome::Divergence;
            res.report = strformat("scheduler %s: ", name) + diff;
            res.reproText = reproText(seed, opts, prog, res.report);
            return res;
        }
    }

    res.outcome = CosimOutcome::Match;
    return res;
}

} // namespace mipsx::fuzz
