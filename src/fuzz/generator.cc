#include "fuzz/generator.hh"

#include <algorithm>
#include <vector>

#include "assembler/assembler.hh"
#include "common/sim_error.hh"
#include "coproc/fpu.hh"
#include "isa/encode.hh"

namespace mipsx::fuzz
{

namespace
{

// Register conventions the generator reserves for itself. Bodies may
// read any register but only ever write the dest pool, so the base
// registers and the loop counter stay exact by construction.
constexpr unsigned rScratch = 26; ///< data/scratch base address
constexpr unsigned rText = 27;    ///< text base address (SMC stores)
constexpr unsigned rDonor = 28;   ///< donor instruction word
constexpr unsigned rCounter = 20; ///< loop counter

constexpr unsigned destPool[] = {1,  2,  3,  4,  5,  6,  7,  8, 9,
                                 10, 11, 12, 13, 14, 15, 24, 25};
constexpr unsigned srcPool[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,
                                9,  10, 11, 12, 13, 14, 15, 24, 25,
                                rScratch, rText, rDonor};

/** First scratch word offset inside the data section (0..7 = donors). */
constexpr unsigned scratchFirst = 8;
constexpr unsigned scratchWords = 56;

using namespace isa;

class Generator
{
  public:
    Generator(const GeneratorConfig &config)
        : cfg_(config), rng_(config.seed),
          loopBudget_(config.loopIterations)
    {}

    assembler::Program run();

  private:
    unsigned dest() { return destPool[rng_.below(std::size(destPool))]; }
    unsigned src() { return srcPool[rng_.below(std::size(srcPool))]; }
    unsigned scratchOff()
    {
        return scratchFirst + rng_.below(scratchWords);
    }

    void emit(word_t w) { text_.push_back(w); }

    void emitSimple();
    void emitAlu();
    void emitMem();
    void emitCoproc();
    void emitBranchBlock();
    void emitJumpBlock();
    void emitLoopBlock();
    void emitSmcBlock();
    SquashType pickSquash();

    const GeneratorConfig &cfg_;
    Rng rng_;
    unsigned loopBudget_;
    std::vector<word_t> text_;
};

SquashType
Generator::pickSquash()
{
    if (cfg_.sequential || !rng_.chance(cfg_.weights.squash, 100))
        return SquashType::NoSquash;
    return rng_.below(2) ? SquashType::SquashTaken
                         : SquashType::SquashNotTaken;
}

void
Generator::emitAlu()
{
    switch (rng_.below(16)) {
      case 0:
        emit(encodeImm(ImmOp::Addi, src(), dest(),
                       static_cast<std::int32_t>(rng_.below(60001)) -
                           30000));
        break;
      case 1:
        emit(encodeImm(ImmOp::Lih, 0, dest(),
                       static_cast<std::int32_t>(rng_.below(120001)) -
                           60000));
        break;
      case 2:
        emit(encodeCompute(ComputeOp::Add, src(), src(), dest()));
        break;
      case 3:
        emit(encodeCompute(ComputeOp::Sub, src(), src(), dest()));
        break;
      case 4:
        emit(encodeCompute(ComputeOp::And, src(), src(), dest()));
        break;
      case 5:
        emit(encodeCompute(ComputeOp::Or, src(), src(), dest()));
        break;
      case 6:
        emit(encodeCompute(ComputeOp::Xor, src(), src(), dest()));
        break;
      case 7:
        emit(encodeCompute(ComputeOp::Bic, src(), src(), dest()));
        break;
      case 8:
        emit(encodeShift(ComputeOp::Sll, src(), dest(), rng_.below(32)));
        break;
      case 9:
        emit(encodeShift(ComputeOp::Srl, src(), dest(), rng_.below(32)));
        break;
      case 10:
        emit(encodeShift(ComputeOp::Sra, src(), dest(), rng_.below(32)));
        break;
      case 11:
        emit(encodeCompute(ComputeOp::Fsh, src(), src(), dest(),
                           rng_.below(32)));
        break;
      case 12:
        emit(encodeCompute(ComputeOp::Mstep, src(), src(), dest()));
        break;
      case 13:
        emit(encodeCompute(ComputeOp::Dstep, src(), src(), dest()));
        break;
      case 14:
        emit(encodeMovSpecial(ComputeOp::Movtos, SpecialReg::Md, src()));
        break;
      default:
        emit(encodeMovSpecial(ComputeOp::Movfrs, SpecialReg::Md, dest()));
        break;
    }
}

void
Generator::emitMem()
{
    switch (rng_.below(5)) {
      case 0:
        emit(encodeMem(MemOp::Ld, rScratch, dest(), scratchOff()));
        break;
      case 1:
        emit(encodeMem(MemOp::Ldt, rScratch, dest(), scratchOff()));
        break;
      case 2:
        emit(encodeMem(MemOp::St, rScratch, src(), scratchOff()));
        break;
      case 3:
        emit(encodeMem(MemOp::Ldf, rScratch, rng_.below(8), scratchOff()));
        break;
      default:
        emit(encodeMem(MemOp::Stf, rScratch, rng_.below(8), scratchOff()));
        break;
    }
}

void
Generator::emitCoproc()
{
    switch (rng_.below(4)) {
      case 0:
        emit(encodeCop(MemOp::Aluc, 1,
                       coproc::fpuAluOp(
                           static_cast<coproc::FpuOp>(rng_.below(12)),
                           rng_.below(8), rng_.below(8)),
                       0));
        break;
      case 1:
        emit(encodeCop(MemOp::Movfrc, 1, coproc::fpuRegOp(rng_.below(8)),
                       dest()));
        break;
      case 2:
        emit(encodeCop(MemOp::Movfrc, 1, coproc::fpuStatusOp(), dest()));
        break;
      default:
        emit(encodeCop(MemOp::Movtoc, 1, coproc::fpuRegOp(rng_.below(8)),
                       src()));
        break;
    }
}

/** One straight-line instruction: never control flow, never SMC. */
void
Generator::emitSimple()
{
    const auto &w = cfg_.weights;
    const unsigned alu = std::max(w.alu, 1u);
    const unsigned total = alu + w.mem + w.coproc;
    const unsigned pick = rng_.below(total);
    if (pick < alu)
        emitAlu();
    else if (pick < alu + w.mem)
        emitMem();
    else
        emitCoproc();
}

/**
 * A forward compare-and-branch: two delay slots, then a short
 * fall-through region the taken path skips. Target = PC + 1 + disp.
 */
void
Generator::emitBranchBlock()
{
    const unsigned k = 1 + rng_.below(5);
    const auto cond = static_cast<BranchCond>(rng_.below(7));
    const unsigned slots = cfg_.sequential ? 0 : 2;
    emit(encodeBranch(cond, pickSquash(), src(), src(),
                      static_cast<std::int32_t>(slots + k)));
    for (unsigned i = 0; i < slots + k; ++i)
        emitSimple();
}

void
Generator::emitJumpBlock()
{
    const unsigned k = rng_.below(4);
    const unsigned slots = cfg_.sequential ? 0 : 2;
    // jal's link value is a text address, and the reorganizer moves
    // text — a dumped link register would differ between the original
    // and scheduled layouts by design, so sequential programs only jmp.
    if (cfg_.sequential || rng_.below(2)) {
        emit(encodeJump(ImmOp::Jmp, 0,
                        static_cast<std::int32_t>(slots + k)));
    } else {
        const unsigned rd = rng_.below(3) ? dest() : reg::ra;
        emit(encodeJump(ImmOp::Jal, rd,
                        static_cast<std::int32_t>(slots + k)));
    }
    for (unsigned i = 0; i < slots + k; ++i)
        emitSimple();
}

/**
 * A counted loop: the only backward edges in generated code. The
 * counter register is outside every write pool, its initial value is
 * drawn from the global iteration budget, and the body is pure
 * straight-line code (plus at most one self-modifying patch), so the
 * loop always terminates. The back-edge branch may squash.
 */
void
Generator::emitLoopBlock()
{
    if (loopBudget_ < 1)
        return;
    const unsigned n = 1 + rng_.below(std::min(6u, loopBudget_));
    loopBudget_ -= n;
    emit(encodeImm(ImmOp::Addi, 0, rCounter,
                   static_cast<std::int32_t>(n)));
    const std::size_t loopStart = text_.size();

    // Optional in-loop SMC: a nop patch site at the loop head, a store
    // later in the body that rewrites it with the donor word. The first
    // iteration executes the nop, later iterations the donor — only
    // correct if both models invalidate the predecoded word.
    const bool smc =
        !cfg_.sequential && cfg_.weights.smc > 0 && rng_.chance(1, 3);
    std::size_t siteIdx = 0;
    if (smc) {
        siteIdx = text_.size();
        emit(encodeNop());
    }
    const unsigned m1 = 1 + rng_.below(4);
    for (unsigned i = 0; i < m1; ++i)
        emitSimple();
    if (smc)
        emit(encodeMem(MemOp::St, rText, rDonor,
                       static_cast<std::int32_t>(siteIdx)));
    const unsigned m2 = rng_.below(4);
    for (unsigned i = 0; i < m2; ++i)
        emitSimple();

    emit(encodeImm(ImmOp::Addi, rCounter, rCounter, -1));
    const std::int32_t disp = static_cast<std::int32_t>(loopStart) -
        static_cast<std::int32_t>(text_.size() + 1);
    emit(encodeBranch(BranchCond::Ne, pickSquash(), rCounter, 0, disp));
    if (!cfg_.sequential) {
        emitSimple();
        emitSimple();
    }
}

/**
 * Straight-line SMC: store the donor word over a nop site far enough
 * ahead that the write's MEM cycle completes before the site's fetch
 * (the pipeline gives no closer coherence window — neither did the
 * real machine).
 */
void
Generator::emitSmcBlock()
{
    const unsigned gap = 5 + rng_.below(4);
    const std::size_t siteIdx = text_.size() + 1 + gap;
    emit(encodeMem(MemOp::St, rText, rDonor,
                   static_cast<std::int32_t>(siteIdx)));
    for (unsigned i = 0; i < gap; ++i)
        emitSimple();
    emit(encodeNop()); // the patch site, at siteIdx
}

assembler::Program
Generator::run()
{
    const addr_t textBase = assembler::defaultTextBase;
    const addr_t dataBase = assembler::defaultDataBase;

    // Prologue: base registers, the donor word, FPU and GPR seeds.
    emit(encodeImm(ImmOp::Addi, 0, rScratch,
                   static_cast<std::int32_t>(dataBase)));
    emit(encodeImm(ImmOp::Addi, 0, rText,
                   static_cast<std::int32_t>(textBase)));
    emit(encodeMem(MemOp::Ld, rScratch, rDonor, 0));
    for (unsigned f = 0; f < 4; ++f)
        emit(encodeMem(MemOp::Ldf, rScratch, f,
                       static_cast<std::int32_t>(scratchFirst + f)));
    for (unsigned r = 1; r <= 8; ++r) {
        emit(encodeImm(ImmOp::Lih, 0, r,
                       static_cast<std::int32_t>(rng_.below(120001)) -
                           60000));
        emit(encodeImm(ImmOp::Addi, r, r,
                       static_cast<std::int32_t>(rng_.below(60001)) -
                           30000));
    }

    // Body: weighted blocks until the static budget runs out.
    const auto &w = cfg_.weights;
    // SMC patch offsets are computed against the generated layout; the
    // reorganizer moves code, so sequential programs never self-modify.
    const unsigned smcW = cfg_.sequential ? 0u : w.smc;
    const unsigned total = std::max(
        w.alu + w.mem + w.coproc + w.branch + w.jump + smcW + w.loop, 1u);
    while (text_.size() < cfg_.maxInsns) {
        const unsigned pick = rng_.below(total);
        if (pick < w.alu + w.mem + w.coproc)
            emitSimple();
        else if (pick < w.alu + w.mem + w.coproc + w.branch)
            emitBranchBlock();
        else if (pick < w.alu + w.mem + w.coproc + w.branch + w.jump)
            emitJumpBlock();
        else if (pick <
                 w.alu + w.mem + w.coproc + w.branch + w.jump + smcW)
            emitSmcBlock();
        else
            emitLoopBlock();
    }

    // Sequential programs end with a full register/MD/FPU dump so a
    // data-memory compare observes everything the body computed.
    unsigned dumpWords = 0;
    if (cfg_.sequential) {
        unsigned off = scratchFirst + scratchWords;
        for (const unsigned r : destPool)
            emit(encodeMem(MemOp::St, rScratch, r,
                           static_cast<std::int32_t>(off++)));
        emit(encodeMem(MemOp::St, rScratch, rCounter,
                       static_cast<std::int32_t>(off++)));
        emit(encodeMovSpecial(ComputeOp::Movfrs, SpecialReg::Md, 1));
        emit(encodeMem(MemOp::St, rScratch, 1,
                       static_cast<std::int32_t>(off++)));
        emit(encodeCop(MemOp::Movfrc, 1, coproc::fpuStatusOp(), 1));
        emit(encodeMem(MemOp::St, rScratch, 1,
                       static_cast<std::int32_t>(off++)));
        for (unsigned f = 0; f < 8; ++f)
            emit(encodeMem(MemOp::Stf, rScratch, f,
                           static_cast<std::int32_t>(off++)));
        dumpWords = off - (scratchFirst + scratchWords);
    }
    emit(encodeTrap(trapCodeHalt));

    // Data: donor words first, then the randomized scratch region.
    std::vector<word_t> data(scratchFirst + scratchWords + dumpWords, 0);
    data[0] = encodeImm(ImmOp::Addi, 24, 24, 1); // the donor
    for (unsigned i = 1; i < scratchFirst; ++i)
        data[i] = encodeImm(ImmOp::Addi, 1 + i, 1 + i,
                            static_cast<std::int32_t>(i));
    for (unsigned i = 0; i < scratchWords; ++i)
        data[scratchFirst + i] = static_cast<word_t>(rng_.next());

    assembler::Program prog;
    assembler::Section textSec;
    textSec.name = ".text";
    textSec.space = AddressSpace::User;
    textSec.base = textBase;
    textSec.isText = true;
    textSec.words = std::move(text_);
    textSec.slots.assign(textSec.words.size(), 0);
    assembler::Section dataSec;
    dataSec.name = ".data";
    dataSec.space = AddressSpace::User;
    dataSec.base = dataBase;
    dataSec.words = std::move(data);
    prog.sections.push_back(std::move(textSec));
    prog.sections.push_back(std::move(dataSec));
    prog.entry = textBase;
    prog.entrySpace = AddressSpace::User;
    prog.symbols["_start"] = textBase;
    return prog;
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t session, std::uint64_t index)
{
    Rng r(session + (index + 1) * 0xd1342543de82ef95ull);
    return r.next();
}

GenWeights
parseWeights(const std::string &spec)
{
    GenWeights w;
    std::size_t start = 0;
    while (start < spec.size()) {
        const auto comma = spec.find(',', start);
        const auto end = comma == std::string::npos ? spec.size() : comma;
        const std::string item = spec.substr(start, end - start);
        const auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal(strformat("weights: want KEY=N, got '%s'",
                            item.c_str()));
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        char *endp = nullptr;
        const unsigned long v = std::strtoul(val.c_str(), &endp, 10);
        if (val.empty() || *endp != '\0' || val[0] == '-' || v > 1000)
            fatal(strformat("weights: bad value '%s' for '%s' "
                            "(want 0..1000)",
                            val.c_str(), key.c_str()));
        const unsigned u = static_cast<unsigned>(v);
        if (key == "alu")
            w.alu = u;
        else if (key == "mem")
            w.mem = u;
        else if (key == "branch")
            w.branch = u;
        else if (key == "jump")
            w.jump = u;
        else if (key == "coproc")
            w.coproc = u;
        else if (key == "smc")
            w.smc = u;
        else if (key == "loop")
            w.loop = u;
        else if (key == "squash") {
            if (u > 100)
                fatal("weights: squash is a percentage (0..100)");
            w.squash = u;
        } else {
            fatal(strformat("weights: unknown key '%s' (alu, mem, "
                            "branch, jump, coproc, smc, loop, squash)",
                            key.c_str()));
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return w;
}

std::string
formatWeights(const GenWeights &w)
{
    return strformat("alu=%u,mem=%u,branch=%u,jump=%u,coproc=%u,smc=%u,"
                     "loop=%u,squash=%u",
                     w.alu, w.mem, w.branch, w.jump, w.coproc, w.smc,
                     w.loop, w.squash);
}

assembler::Program
generate(const GeneratorConfig &config)
{
    return Generator(config).run();
}

unsigned
nonNopTextWords(const assembler::Program &prog)
{
    unsigned n = 0;
    for (const auto &sec : prog.sections) {
        if (!sec.isText)
            continue;
        for (const word_t w : sec.words)
            if (w != isa::nopWord)
                ++n;
    }
    return n;
}

} // namespace mipsx::fuzz
