/**
 * @file
 * Semantic-preservation check for the reorganizer's scheduling
 * backends — the fuzzer's fourth leg.
 *
 * One seed produces one *sequential-semantics* program (no delay
 * slots, no squash variants, no SMC — valid reorganize() input, with a
 * register/MD/FPU dump epilogue). Its sequential-ISS outcome is the
 * specification. Each scheduling backend (heuristic, list, optimal)
 * then reorganizes the program, and the result must
 *
 *  - pass the full delayed-ISS-vs-pipeline cosim (retire streams and
 *    final state identical), and
 *  - reproduce the specification's data memory exactly on the delayed
 *    ISS (slot fills may clobber dead registers, so the observable
 *    outcome is the dump area plus the scratch region, not raw GPRs).
 *
 * Any violation is a Divergence naming the scheduler; budget
 * exhaustion anywhere makes the whole check Inconclusive.
 */

#ifndef MIPSX_FUZZ_SCHEDCHECK_HH
#define MIPSX_FUZZ_SCHEDCHECK_HH

#include <cstdint>
#include <string>

#include "fuzz/cosim.hh"
#include "fuzz/generator.hh"
#include "reorg/scheduler.hh"

namespace mipsx::fuzz
{

/** Options for one scheduler-preservation check. */
struct SchedCheckOptions
{
    /** Timing-side machine configuration for the cosim legs. */
    sim::MachineConfig machine{};
    bool predecode = true;
    /**
     * Base reorganizer configuration; the scheduler field is
     * overridden per leg. slots must match machine.cpu.branchDelay.
     */
    reorg::ReorgConfig reorg{};
    unsigned maxInsns = 64;      ///< generator static budget
    unsigned loopIterations = 24;
    GenWeights weights{};
    std::size_t retireLimit = 100'000;
    cycle_t maxCycles = 2'000'000;
};

/** Result of one check (three schedulers against one program). */
struct SchedCheckResult
{
    CosimOutcome outcome = CosimOutcome::Inconclusive;
    /** Retires compared, summed over the per-scheduler cosim legs. */
    std::uint64_t retires = 0;
    /** Which scheduler failed and how (Divergence / Inconclusive). */
    std::string report;
    /** Reproducer text (the sequential program) on divergence. */
    std::string reproText;
};

/** Generate the program for @p seed and check every backend. */
SchedCheckResult runSchedCheck(std::uint64_t seed,
                               const SchedCheckOptions &opts);

} // namespace mipsx::fuzz

#endif // MIPSX_FUZZ_SCHEDCHECK_HH
