/**
 * @file
 * The PC unit's chain of saved PC values.
 *
 * The PC unit contains a displacement adder, an incrementer (both modelled
 * inline in the pipeline) and "a chain of shift registers to save the PC
 * values of the instructions currently in execution". The chain holds
 * three entries — the PCs of the instructions in the RF, ALU and MEM
 * stages. On an exception the chain freezes, preserving the addresses of
 * the instructions that must be restarted; the restart sequence reloads it
 * and performs three special jumps (jpc) that each consume one entry.
 *
 * Reconstruction note (see DESIGN.md): each entry carries a *squash flag*
 * in bit 31 of the saved word. An instruction that was squashed by a
 * branch (architecturally a no-op) must stay a no-op when the restart
 * sequence re-executes it; the flag rides along when the handler saves and
 * restores the chain with movfrs/movtos, and jpc re-applies it to the
 * instruction it re-injects. Code addresses are therefore restricted to
 * 31 bits, which the word-addressed machine has room for.
 */

#ifndef MIPSX_CORE_PC_UNIT_HH
#define MIPSX_CORE_PC_UNIT_HH

#include <array>

#include "common/types.hh"

namespace mipsx::core
{

/** The squash flag carried in a saved chain entry. */
inline constexpr word_t chainSquashBit = 0x80000000u;

/** The PC chain of the PC unit. */
class PcChain
{
  public:
    /** One shift: capture the PCs of the MEM, ALU and RF instructions. */
    void
    shift(word_t mem_entry, word_t alu_entry, word_t rf_entry)
    {
        entries_ = {mem_entry, alu_entry, rf_entry};
    }

    /**
     * The steady-state shift. The oldest entry's instruction left the RF
     * stage long ago, so its recorded value can never change again —
     * shift it down instead of re-deriving it from the MEM latch. The
     * two younger entries are re-derived because a squashing branch (or
     * a squashed fetch) may still change their flags. Equivalent to
     * shift() whenever the chain shifted the previous cycle too.
     */
    void
    shiftSteady(word_t alu_entry, word_t rf_entry)
    {
        entries_ = {entries_[1], alu_entry, rf_entry};
    }

    /** jpc: consume the oldest entry. */
    word_t
    pop()
    {
        const word_t head = entries_[0];
        entries_[0] = entries_[1];
        entries_[1] = entries_[2];
        entries_[2] = 0;
        return head;
    }

    /** movfrs pchainN. Index 0 is the oldest entry. */
    word_t read(unsigned i) const { return entries_.at(i); }

    /** movtos pchainN. */
    void write(unsigned i, word_t v) { entries_.at(i) = v; }

    static addr_t entryPc(word_t entry) { return entry & ~chainSquashBit; }
    static bool entrySquashed(word_t entry)
    {
        return entry & chainSquashBit;
    }
    static word_t
    makeEntry(addr_t pc, bool squashed)
    {
        return (pc & ~chainSquashBit) | (squashed ? chainSquashBit : 0);
    }

  private:
    std::array<word_t, pcChainDepth> entries_{};
};

} // namespace mipsx::core

#endif // MIPSX_CORE_PC_UNIT_HH
