#include "core/exec.hh"

#include "common/sim_error.hh"

namespace mipsx::core
{

namespace
{

// The table entries behind computeDispatch: each wraps one computeFor
// instantiation, so the table and any handler that names the opcode at
// compile time share one semantic definition. The table replaces the
// reference switch's compare chain with one indexed load.
template <isa::ComputeOp Op>
ComputeResult
opEntry(const isa::Instruction &in, word_t a, word_t b, word_t md)
{
    return computeFor<Op>(in, a, b, md);
}

constexpr std::array<ComputeFn, 64>
buildComputeDispatch()
{
    std::array<ComputeFn, 64> t{}; // null = no pure-execute semantics
    using isa::ComputeOp;
    const auto at = [&t](ComputeOp op) -> ComputeFn & {
        return t[static_cast<std::size_t>(op)];
    };
    at(ComputeOp::Add) = opEntry<ComputeOp::Add>;
    at(ComputeOp::Sub) = opEntry<ComputeOp::Sub>;
    at(ComputeOp::And) = opEntry<ComputeOp::And>;
    at(ComputeOp::Or) = opEntry<ComputeOp::Or>;
    at(ComputeOp::Xor) = opEntry<ComputeOp::Xor>;
    at(ComputeOp::Bic) = opEntry<ComputeOp::Bic>;
    at(ComputeOp::Sll) = opEntry<ComputeOp::Sll>;
    at(ComputeOp::Srl) = opEntry<ComputeOp::Srl>;
    at(ComputeOp::Sra) = opEntry<ComputeOp::Sra>;
    at(ComputeOp::Fsh) = opEntry<ComputeOp::Fsh>;
    at(ComputeOp::Mstep) = opEntry<ComputeOp::Mstep>;
    at(ComputeOp::Dstep) = opEntry<ComputeOp::Dstep>;
    // Movfrs/Movtos stay null: they touch machine state the caller owns.
    return t;
}

template <isa::BranchCond Cond>
bool
condEntry(word_t a, word_t b)
{
    return branchCondFor<Cond>(a, b);
}

} // namespace

const std::array<ComputeFn, 64> computeDispatch = buildComputeDispatch();

const std::array<BranchCondFn, 8> branchCondDispatch = {
    condEntry<isa::BranchCond::Eq>, condEntry<isa::BranchCond::Ne>,
    condEntry<isa::BranchCond::Lt>, condEntry<isa::BranchCond::Ge>,
    condEntry<isa::BranchCond::Hs>, condEntry<isa::BranchCond::Lo>,
    condEntry<isa::BranchCond::T>,  nullptr, // 7 reserved
};

void
computeUnhandled(const isa::Instruction &in)
{
    using isa::ComputeOp;
    if (in.compOp == ComputeOp::Movfrs || in.compOp == ComputeOp::Movtos)
        fatal("executeCompute: movfrs/movtos handled by the caller");
    fatal("executeCompute: reserved compute opcode");
}

void
branchCondUnhandled(isa::BranchCond)
{
    fatal("branchTaken: reserved condition");
}

ComputeResult
executeComputeRef(const isa::Instruction &in, word_t a, word_t b, word_t md)
{
    using isa::ComputeOp;
    switch (in.compOp) {
      case ComputeOp::Add:
        return addOverflow(a, b);
      case ComputeOp::Sub:
        return subOverflow(a, b);
      case ComputeOp::And:
        return {a & b, 0, false, false};
      case ComputeOp::Or:
        return {a | b, 0, false, false};
      case ComputeOp::Xor:
        return {a ^ b, 0, false, false};
      case ComputeOp::Bic:
        return {a & ~b, 0, false, false};
      // All shifts run through the funnel shifter, as in the real
      // datapath (a 64-to-32-bit funnel shifter plus the ALU).
      case ComputeOp::Sll:
        if (in.aux == 0)
            return {a, 0, false, false};
        return {funnelShift(a, 0, 32 - in.aux), 0, false, false};
      case ComputeOp::Srl:
        return {funnelShift(0, a, in.aux), 0, false, false};
      case ComputeOp::Sra: {
        const word_t sign = (a >> 31) ? 0xffffffffu : 0u;
        return {funnelShift(sign, a, in.aux), 0, false, false};
      }
      case ComputeOp::Fsh:
        return {funnelShift(a, b, in.aux), 0, false, false};
      case ComputeOp::Mstep:
        return mstep(a, b, md);
      case ComputeOp::Dstep:
        return dstep(a, b, md);
      case ComputeOp::Movfrs:
      case ComputeOp::Movtos:
        fatal("executeCompute: movfrs/movtos handled by the caller");
      default:
        fatal("executeCompute: reserved compute opcode");
    }
}

bool
branchTakenRef(isa::BranchCond cond, word_t a, word_t b)
{
    using isa::BranchCond;
    switch (cond) {
      case BranchCond::Eq:
        return a == b;
      case BranchCond::Ne:
        return a != b;
      case BranchCond::Lt:
        return static_cast<sword_t>(a) < static_cast<sword_t>(b);
      case BranchCond::Ge:
        return static_cast<sword_t>(a) >= static_cast<sword_t>(b);
      case BranchCond::Hs:
        return a >= b;
      case BranchCond::Lo:
        return a < b;
      case BranchCond::T:
        return true;
      default:
        fatal("branchTaken: reserved condition");
    }
}

} // namespace mipsx::core
