#include "core/exec.hh"

#include "common/sim_error.hh"

namespace mipsx::core
{

ComputeResult
addOverflow(word_t a, word_t b)
{
    ComputeResult r;
    r.value = a + b;
    // Overflow iff the operands agree in sign and the result does not.
    r.overflow = (~(a ^ b) & (a ^ r.value)) >> 31;
    return r;
}

ComputeResult
subOverflow(word_t a, word_t b)
{
    ComputeResult r;
    r.value = a - b;
    r.overflow = ((a ^ b) & (a ^ r.value)) >> 31;
    return r;
}

word_t
funnelShift(word_t hi, word_t lo, unsigned pos)
{
    const std::uint64_t both =
        (static_cast<std::uint64_t>(hi) << 32) | lo;
    return static_cast<word_t>(both >> (pos & 31));
}

ComputeResult
mstep(word_t acc, word_t b, word_t md)
{
    ComputeResult r;
    r.value = (acc << 1) + ((md >> 31) ? b : 0u);
    r.md = md << 1;
    r.writesMd = true;
    return r;
}

ComputeResult
dstep(word_t acc, word_t d, word_t md)
{
    ComputeResult r;
    word_t t = (acc << 1) | (md >> 31);
    word_t q = md << 1;
    if (t >= d && d != 0) {
        t -= d;
        q |= 1;
    }
    r.value = t;
    r.md = q;
    r.writesMd = true;
    return r;
}

ComputeResult
executeCompute(const isa::Instruction &in, word_t a, word_t b, word_t md)
{
    using isa::ComputeOp;
    switch (in.compOp) {
      case ComputeOp::Add:
        return addOverflow(a, b);
      case ComputeOp::Sub:
        return subOverflow(a, b);
      case ComputeOp::And:
        return {a & b, 0, false, false};
      case ComputeOp::Or:
        return {a | b, 0, false, false};
      case ComputeOp::Xor:
        return {a ^ b, 0, false, false};
      case ComputeOp::Bic:
        return {a & ~b, 0, false, false};
      // All shifts run through the funnel shifter, as in the real
      // datapath (a 64-to-32-bit funnel shifter plus the ALU).
      case ComputeOp::Sll:
        if (in.aux == 0)
            return {a, 0, false, false};
        return {funnelShift(a, 0, 32 - in.aux), 0, false, false};
      case ComputeOp::Srl:
        return {funnelShift(0, a, in.aux), 0, false, false};
      case ComputeOp::Sra: {
        const word_t sign = (a >> 31) ? 0xffffffffu : 0u;
        return {funnelShift(sign, a, in.aux), 0, false, false};
      }
      case ComputeOp::Fsh:
        return {funnelShift(a, b, in.aux), 0, false, false};
      case ComputeOp::Mstep:
        return mstep(a, b, md);
      case ComputeOp::Dstep:
        return dstep(a, b, md);
      case ComputeOp::Movfrs:
      case ComputeOp::Movtos:
        fatal("executeCompute: movfrs/movtos handled by the caller");
      default:
        fatal("executeCompute: reserved compute opcode");
    }
}

bool
branchTaken(isa::BranchCond cond, word_t a, word_t b)
{
    using isa::BranchCond;
    switch (cond) {
      case BranchCond::Eq:
        return a == b;
      case BranchCond::Ne:
        return a != b;
      case BranchCond::Lt:
        return static_cast<sword_t>(a) < static_cast<sword_t>(b);
      case BranchCond::Ge:
        return static_cast<sword_t>(a) >= static_cast<sword_t>(b);
      case BranchCond::Hs:
        return a >= b;
      case BranchCond::Lo:
        return a < b;
      case BranchCond::T:
        return true;
      default:
        fatal("branchTaken: reserved condition");
    }
}

} // namespace mipsx::core
