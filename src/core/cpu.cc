#include "core/cpu.hh"

#include "common/sim_error.hh"
#include "stats/stats.hh"
#include "core/exec.hh"
#include "isa/disasm.hh"
#include "trace/metrics.hh"

namespace mipsx::core
{

using isa::ComputeOp;
using isa::Format;
using isa::ImmOp;
using isa::MemOp;
using isa::SpecialReg;
using assembler::SlotKind;
namespace psw_bits = isa::psw_bits;

const char *
stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::Running: return "running";
      case StopReason::Halt: return "halt";
      case StopReason::Fail: return "fail";
      case StopReason::MaxCycles: return "max-cycles";
      case StopReason::InvalidInstruction: return "invalid-instruction";
      case StopReason::UnhandledException: return "unhandled-exception";
      case StopReason::HazardViolation: return "hazard-violation";
      case StopReason::CommitLimit: return "commit-limit";
    }
    return "?";
}

void
CpuConfig::validate() const
{
    icache.validate();
    ecache.validate();
    energy.validate();
    if (branchDelay < 1 || branchDelay > 2)
        fatal("Cpu: branchDelay must be 1 or 2");
    if (maxCycles == 0)
        fatal("Cpu: maxCycles must be non-zero");
}

Cpu::Cpu(const CpuConfig &config, memory::MainMemory &mem)
    : config_(config), ram_(mem), icache_(config.icache),
      ecache_(config.ecache)
{
    config_.validate();
}

void
Cpu::attachCoprocessor(unsigned num,
                       std::unique_ptr<coproc::Coprocessor> cop)
{
    cops_.attach(num, std::move(cop));
}

void
Cpu::setGpr(unsigned r, word_t v)
{
    if (r != 0)
        regs_.at(r) = v;
}

void
Cpu::reset(addr_t entry)
{
    regs_.fill(0);
    md_ = 0;
    psw_ = Psw(config_.initialPsw);
    pswOld_ = Psw(0);
    chain_ = PcChain{};
    for (auto &l : latches_)
        l = Latch{};
    rf_ = &latches_[0];
    alu_ = &latches_[1];
    mem_ = &latches_[2];
    wb_ = &latches_[3];
    spare_ = &latches_[4];
    fetchPc_ = entry;
    haveRedirect_ = false;
    redirectKill_ = false;
    fetchKillArmed_ = false;
    squashFetch_ = false;
    suppressFetch_ = false;
    halting_ = false;
    pendingIntr_ = pendingNmi_ = false;
    chainSteady_ = false;
    pendingCost_ = {};
    squashFsm_.reset();
    missFsm_.reset();
    stop_ = StopReason::Running;
    stats_ = PipelineStats{};
}

// ---------------------------------------------------------------------
// Operand resolution (the bypass network)
// ---------------------------------------------------------------------

word_t
Cpu::readOperand(unsigned r)
{
    if (r == 0)
        return 0;
    // Distance-1 bypass: the instruction now in MEM. Compute results
    // forward from its ALU-output latch; load data arrives only at the
    // very end of MEM and *cannot* be bypassed — the reader sees the old
    // register value (the load delay the reorganizer must respect).
    if (mem_->valid && !mem_->killed && mem_->inst.destReg() == r) {
        if (mem_->inst.isGprLoad()) {
            if (config_.detectHazards) {
                ++stats_.hazardViolations;
                if (config_.stopOnHazard)
                    stopSim(StopReason::HazardViolation);
            }
            return regs_[r]; // stale: the pre-load value
        }
        return mem_->aluOut;
    }
    // Distance >= 2: the WB-stage instruction committed at the start of
    // this cycle (write-before-read), so the register file is current.
    return regs_[r];
}

word_t
Cpu::readMd() const
{
    if (mem_->valid && !mem_->killed && mem_->writesMdOut)
        return mem_->mdOut;
    return md_;
}

word_t
Cpu::readSpecial(SpecialReg sreg) const
{
    switch (sreg) {
      case SpecialReg::Psw:
        if (mem_->valid && !mem_->killed && mem_->writesPswOut)
            return mem_->pswOut;
        return psw_.bits();
      case SpecialReg::PswOld:
        return pswOld_.bits();
      case SpecialReg::Md:
        return readMd();
      case SpecialReg::PcChain0:
        return chain_.read(0);
      case SpecialReg::PcChain1:
        return chain_.read(1);
      case SpecialReg::PcChain2:
        return chain_.read(2);
    }
    return 0;
}

unsigned
Cpu::busTransaction(unsigned duration)
{
    if (!config_.bus)
        return duration;
    return duration + config_.bus->acquire(stats_.cycles, duration);
}

// ---------------------------------------------------------------------
// WB: delayed writeback — the only cycle an instruction changes state
// ---------------------------------------------------------------------

void
Cpu::commitWb()
{
    Latch &l = *wb_;
    if (!l.valid)
        return;

    if (l.killed) {
        if (l.squashKilled) {
            // A squashed instruction retires as an architectural no-op.
            ++stats_.committed;
            ++stats_.squashed;
            if (retireHook_)
                retireHook_({stats_.cycles, l.pc, l.space, l.inst.raw,
                             true});
            if (trace_)
                emitTrace(trace::EventKind::Retire, l.pc, l.space,
                          l.inst.raw, true, 1);
        }
        // Exception-killed instructions will re-execute after restart
        // and are not counted.
        return;
    }

    ++stats_.committed;
    if (retireHook_)
        retireHook_({stats_.cycles, l.pc, l.space, l.inst.raw, false});
    if (trace_)
        emitTrace(trace::EventKind::Retire, l.pc, l.space, l.inst.raw,
                  true, 0);
    if (l.inst.isNop()) {
        ++stats_.committedNops;
        const SlotKind slot = slotOf(l);
        if (slot == SlotKind::BrNop)
            ++stats_.nopsInBranchSlots;
        else if (slot == SlotKind::LoadNop)
            ++stats_.nopsForLoadDelay;
        return;
    }

    if (const unsigned d = l.inst.destReg(); d != 0)
        regs_[d] = l.inst.isGprLoad() ? l.memData : l.aluOut;
    if (l.writesMdOut)
        md_ = l.mdOut;
    if (l.writesPswOut)
        psw_.setBits(l.pswOut);
    if (l.chainIndex >= 0) {
        chain_.write(static_cast<unsigned>(l.chainIndex), l.chainOut);
        chainSteady_ = false;
    }

    if (l.inst.isTrap()) {
        ++stats_.traps;
        if (l.inst.uimm == isa::trapCodeHalt)
            stopSim(StopReason::Halt);
        else if (l.inst.uimm == isa::trapCodeFail)
            stopSim(StopReason::Fail);
    }
}

// ---------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------

void
Cpu::takeException(word_t cause)
{
    ++stats_.exceptions;
    if (cause & (psw_bits::cIntr | psw_bits::cNmi))
        ++stats_.interrupts;
    if (trace_)
        emitTrace(trace::EventKind::Exception, mem_->pc, mem_->space,
                  0, false, cause);

    // Exception no-ops ALU and MEM; Squash no-ops IF and RF. Nothing in
    // those stages completes. The PC chain (already holding the MEM, ALU
    // and RF PCs) freezes because the new PSW clears shiftEn.
    mem_->killed = true;
    alu_->killed = true;
    rf_->killed = true;
    suppressFetch_ = true;

    pswOld_ = psw_;
    psw_ = Psw::exceptionEntry(psw_, cause);

    haveRedirect_ = true;
    redirect_ = exceptionVector;
    redirectKill_ = false;
    pendingCost_ = {};

    // Without a handler the machine would execute zeroed memory; stop
    // with a diagnostic instead.
    if (ram_.read(AddressSpace::System, exceptionVector) == 0)
        stopSim(StopReason::UnhandledException);
}

// ---------------------------------------------------------------------
// ALU stage
// ---------------------------------------------------------------------

void
Cpu::resolveControl(Latch &l)
{
    const auto &in = l.inst;

    if (in.isBranch()) {
        const bool taken = branchTaken(in.cond, l.opA, l.opB);
        ++stats_.branches;
        if (taken)
            ++stats_.branchesTaken;

        const bool squash =
            (in.squash == isa::SquashType::SquashNotTaken && !taken) ||
            (in.squash == isa::SquashType::SquashTaken && taken);

        pendingCost_.active = true;
        pendingCost_.conditional = true;
        pendingCost_.taken = taken;
        pendingCost_.squashed = squash;

        if (config_.branchDelay == 2) {
            // Slot 1 is in RF right now; slot 2 is fetched this cycle.
            accountSlot(*rf_, pendingCost_);
            if (squash) {
                rf_->killed = true;
                rf_->squashKilled = true;
            }
        }
        if (squash) {
            ++stats_.branchSquashTriggers;
            squashFetch_ = true;
            if (trace_)
                emitTrace(trace::EventKind::Squash, l.pc, l.space,
                          in.raw, true);
        }
        if (taken) {
            haveRedirect_ = true;
            redirect_ = static_cast<addr_t>(
                static_cast<std::int64_t>(l.pc) + 1 + in.imm);
        }
        return;
    }

    // Jumps (and jpc).
    ++stats_.jumps;
    pendingCost_.active = true;
    pendingCost_.conditional = false;
    pendingCost_.taken = true;
    pendingCost_.squashed = false;
    if (config_.branchDelay == 2)
        accountSlot(*rf_, pendingCost_);

    haveRedirect_ = true;
    switch (in.immOp) {
      case ImmOp::Jmp:
      case ImmOp::Jal:
        redirect_ = static_cast<addr_t>(
            static_cast<std::int64_t>(l.pc) + 1 + in.imm);
        break;
      case ImmOp::Jr:
      case ImmOp::Jalr:
        redirect_ = static_cast<addr_t>(
            static_cast<std::int64_t>(l.opA) + in.imm);
        break;
      case ImmOp::Jpc:
        // The entry was read and popped during this jpc's RF cycle (the
        // chain lives in the PC unit and needs no register operands), so
        // the three-jump restart sequence completes before re-enabled
        // chain shifting can clobber the saved entries.
        redirect_ = PcChain::entryPc(l.jpcEntry);
        redirectKill_ = PcChain::entrySquashed(l.jpcEntry);
        if (trace_)
            emitTrace(trace::EventKind::Restart, l.pc, l.space, in.raw,
                      true, redirect_);
        break;
      default:
        fatal("resolveControl: not a jump");
    }
}

void
Cpu::evaluateAlu()
{
    Latch &l = *alu_;
    if (!l.valid || l.killed)
        return;
    const auto &in = l.inst;

    if (!in.valid) {
        stopSim(StopReason::InvalidInstruction);
        return;
    }
    if (trace_)
        emitTrace(trace::EventKind::Issue, l.pc, l.space, in.raw, true);

    // Resolve operands at the ALU inputs through the bypass network.
    l.opA = readOperand(in.rs1);
    l.opB = readOperand(in.rs2);
    if (stopped())
        return; // stopOnHazard

    word_t fault = 0;
    // Privilege is judged by where the instruction was fetched from:
    // system-space code is privileged even while a PSW restore for the
    // interrupted user process is already in flight.
    const bool user = l.space == AddressSpace::User;

    switch (in.fmt) {
      case Format::Compute:
        switch (in.compOp) {
          case ComputeOp::Movfrs:
            l.aluOut = readSpecial(static_cast<SpecialReg>(in.aux));
            break;
          case ComputeOp::Movtos: {
            const auto sreg = static_cast<SpecialReg>(in.aux);
            if (sreg != SpecialReg::Md && user) {
                fault = psw_bits::cPriv;
                break;
            }
            switch (sreg) {
              case SpecialReg::Md:
                l.mdOut = l.opA;
                l.writesMdOut = true;
                break;
              case SpecialReg::Psw:
                l.pswOut = l.opA;
                l.writesPswOut = true;
                break;
              case SpecialReg::PswOld:
                // PSWold is loaded by the exception hardware only;
                // writing it is a no-op (reconstruction choice).
                break;
              case SpecialReg::PcChain0:
              case SpecialReg::PcChain1:
              case SpecialReg::PcChain2:
                l.chainIndex = static_cast<int>(in.aux) -
                    static_cast<int>(SpecialReg::PcChain0);
                l.chainOut = l.opA;
                break;
            }
            break;
          }
          default: {
            const ComputeResult r =
                executeCompute(in, l.opA, l.opB, readMd());
            l.aluOut = r.value;
            if (r.writesMd) {
                l.mdOut = r.md;
                l.writesMdOut = true;
            }
            if (r.overflow && psw_.overflowTrapEnabled())
                fault = psw_bits::cOvf;
            break;
          }
        }
        break;

      case Format::Imm:
        switch (in.immOp) {
          case ImmOp::Addi: {
            const ComputeResult r =
                addOverflow(l.opA, static_cast<word_t>(in.imm));
            l.aluOut = r.value;
            if (r.overflow && psw_.overflowTrapEnabled())
                fault = psw_bits::cOvf;
            break;
          }
          case ImmOp::Lih:
            l.aluOut = static_cast<word_t>(in.imm) << 15;
            break;
          case ImmOp::Jal:
          case ImmOp::Jalr:
            l.aluOut = l.pc + 1 + config_.branchDelay; // the link value
            [[fallthrough]];
          case ImmOp::Jmp:
          case ImmOp::Jr:
            if (config_.branchDelay == 2)
                resolveControl(l);
            break;
          case ImmOp::Jpc:
            if (user) {
                fault = psw_bits::cPriv;
                break;
            }
            if (config_.branchDelay == 2)
                resolveControl(l);
            break;
          case ImmOp::Trap:
            if (in.uimm == isa::trapCodeHalt ||
                in.uimm == isa::trapCodeFail) {
                // Simulation control: drain older instructions, squash
                // younger ones, and stop when the trap itself retires.
                halting_ = true;
                rf_->killed = true;
                suppressFetch_ = true;
            } else {
                fault = psw_bits::cTrap;
            }
            break;
        }
        break;

      case Format::Mem:
        // The ALU cycle computes the memory (or coprocessor) address.
        l.aluOut = static_cast<word_t>(
            static_cast<std::int64_t>(l.opA) + in.imm);
        break;

      case Format::Branch:
        if (config_.branchDelay == 2)
            resolveControl(l);
        break;
    }

    if (fault)
        takeException(fault);
}

// ---------------------------------------------------------------------
// MEM stage
// ---------------------------------------------------------------------

void
Cpu::executeMem()
{
    Latch &l = *mem_;
    if (!l.valid || l.killed || l.inst.fmt != Format::Mem)
        return;
    const auto &in = l.inst;
    const addr_t addr = l.aluOut;
    const AddressSpace space = l.space;
    const std::uint64_t key = memory::physKey(space, addr);

    // A miss goes to main memory over the shared bus: the late-miss
    // retry loop runs for the memory latency plus any bus arbitration.
    // Buffered write-through stores occupy the bus without stalling
    // this processor.
    auto charge = [this, &l](const memory::ECacheResult &r) {
        if (r.stallCycles) {
            const unsigned total = busTransaction(r.stallCycles);
            missFsm_.startEMiss(total);
            if (trace_) {
                emitTrace(trace::EventKind::EMissLate, l.aluOut, l.space,
                          0, false, total);
                emitTrace(trace::EventKind::Stall, l.aluOut, l.space, 1,
                          false, total);
            }
        } else if (r.busCycles && config_.bus) {
            // A buffered write-through store: the 4-deep store buffer
            // (Smith's sizing) absorbs bus backlog up to its depth;
            // beyond that the processor stalls behind its own stores.
            const unsigned wait =
                config_.bus->acquire(stats_.cycles, r.busCycles);
            const unsigned slack = 4 * r.busCycles;
            if (wait > slack)
                missFsm_.startEMiss(wait - slack);
        }
    };
    auto snoop = [this](std::uint64_t k) {
        if (config_.coherence)
            config_.coherence->writeBroadcast(&ecache_, k);
    };

    if (trace_) {
        switch (in.memOp) {
          case MemOp::Ldf:
          case MemOp::Stf:
            emitTrace(trace::EventKind::Coproc, l.pc, l.space, in.raw,
                      true, 1);
            break;
          case MemOp::Aluc:
          case MemOp::Movfrc:
          case MemOp::Movtoc:
            emitTrace(trace::EventKind::Coproc, l.pc, l.space, in.raw,
                      true, in.copNum());
            break;
          default:
            break;
        }
    }

    switch (in.memOp) {
      case MemOp::Ld:
        l.memData = ram_.read(space, addr);
        charge(ecache_.access(key, false));
        break;
      case MemOp::St:
        ram_.write(space, addr, l.opB);
        charge(ecache_.access(key, true));
        snoop(key);
        break;
      case MemOp::Ldt: {
        // Load-through: an uncached access pays a full bus round trip.
        l.memData = ram_.read(space, addr);
        const unsigned total =
            busTransaction(ecache_.config().missPenalty);
        missFsm_.startEMiss(total);
        if (trace_) {
            emitTrace(trace::EventKind::EMissLate, addr, space, 0,
                      false, total);
            emitTrace(trace::EventKind::Stall, addr, space, 1, false,
                      total);
        }
        break;
      }
      case MemOp::Ldf: {
        const word_t data = ram_.read(space, addr);
        cops_.at(1).loadDirect(in.aux, data);
        charge(ecache_.access(key, false));
        break;
      }
      case MemOp::Stf: {
        const word_t data = cops_.at(1).storeDirect(in.aux);
        ram_.write(space, addr, data);
        charge(ecache_.access(key, true));
        snoop(key);
        break;
      }
      case MemOp::Aluc:
        cops_.at(in.copNum()).aluc(in.copOp());
        break;
      case MemOp::Movfrc:
        l.memData = cops_.at(in.copNum()).movfrc(in.copOp());
        break;
      case MemOp::Movtoc:
        cops_.at(in.copNum()).movtoc(in.copOp(), l.opB);
        break;
    }
}

// ---------------------------------------------------------------------
// IF stage
// ---------------------------------------------------------------------

Cpu::Latch &
Cpu::fetch()
{
    // Fill the spare latch in place: the pipeline shift is a pointer
    // rotation, so nothing here is copied. Only the fields a stage reads
    // before (re)writing them are reset; everything else is assigned
    // below or guarded by the flags cleared here.
    Latch &l = *spare_;
    l.valid = false;
    l.killed = false;
    l.squashKilled = false;
    l.writesMdOut = false;
    l.writesPswOut = false;
    l.chainIndex = -1;
    l.pc = 0; // bubbles enter the PC chain as (0, squashed)
    if (suppressFetch_)
        return l; // bubble

    l.valid = true;
    l.pc = fetchPc_;
    l.space = psw_.space();
    l.inst = ram_.fetchDecoded(l.space, l.pc);

    const bool cacheable =
        !(config_.coprocNonCachedFetch && l.inst.isCoproc());
    const auto r = icache_.fetch(l.space, l.pc, cacheable);
    if (trace_)
        emitTrace(trace::EventKind::Fetch, l.pc, l.space, l.inst.raw,
                  true);
    if (!r.hit) {
        missFsm_.startIMiss(r.stallCycles);
        if (trace_) {
            emitTrace(trace::EventKind::IMiss, l.pc, l.space, 0, false,
                      r.stallCycles);
            emitTrace(trace::EventKind::Stall, l.pc, l.space, 0, false,
                      r.stallCycles);
        }
        // The fetch-back words come from the Ecache; a late miss there
        // extends the stall while main memory responds over the bus.
        for (unsigned i = 0; i < r.numRefills; ++i) {
            const auto refill_addr =
                static_cast<addr_t>(r.refillKeys[i]);
            const auto refill_space =
                static_cast<AddressSpace>(r.refillKeys[i] >> 32);
            if (trace_)
                emitTrace(trace::EventKind::IRefill, refill_addr,
                          refill_space, 0, false);
            const auto e = ecache_.access(r.refillKeys[i], false);
            if (!e.hit) {
                const unsigned total = busTransaction(e.stallCycles);
                missFsm_.startEMiss(total);
                if (trace_) {
                    emitTrace(trace::EventKind::EMissLate, refill_addr,
                              refill_space, 0, false, total);
                    emitTrace(trace::EventKind::Stall, refill_addr,
                              refill_space, 1, false, total);
                }
            }
        }
    }

    if (squashFetch_ || fetchKillArmed_) {
        l.killed = true;
        l.squashKilled = true;
    }
    return l;
}

// ---------------------------------------------------------------------
// The w1-clocked cycle
// ---------------------------------------------------------------------

assembler::SlotKind
Cpu::slotOf(const Latch &l)
{
    // Deferred delay-slot provenance lookup: consulted only when a nop
    // retires or a branch/jump accounts its slots, not on every fetch.
    // Lookups cluster within one section, so cache the last hit.
    if (!prog_ || !l.valid)
        return SlotKind::None;
    if (!(slotSec_ && slotSec_->space == l.space &&
          l.pc >= slotSec_->base && l.pc < slotSec_->end())) {
        slotSec_ = prog_->sectionAt(l.space, l.pc);
    }
    return slotSec_ ? slotSec_->slotAt(l.pc) : SlotKind::None;
}

void
Cpu::accountSlot(const Latch &slot, const PendingBranchCost &pb)
{
    bool wasted = false;
    if (pb.squashed || !slot.valid || slot.inst.isNop()) {
        wasted = true;
    } else {
        switch (slotOf(slot)) {
          case SlotKind::BrFromTarget:
            wasted = !pb.taken;
            break;
          case SlotKind::BrFromFall:
            wasted = pb.taken;
            break;
          default:
            wasted = false; // hoisted or unscheduled: always useful
            break;
        }
    }
    if (!wasted)
        return;
    if (pb.conditional)
        ++stats_.branchWastedSlots;
    else
        ++stats_.jumpWastedSlots;
}

void
Cpu::stepCycle()
{
    if (stopped())
        return;
    if (stats_.cycles >= config_.maxCycles) {
        stopSim(StopReason::MaxCycles);
        return;
    }

    squashFetch_ = false;
    suppressFetch_ = halting_;
    haveRedirect_ = false;
    redirectKill_ = false;

    bool exceptionThisCycle = false;

    // 1. WB commits (write-before-read within the cycle).
    commitWb();
    if (stopped())
        return;

    // 2. External exceptions are sampled first; the ALU instruction is
    //    killed with everything younger and will re-execute on restart.
    //    The exception-return sequence is atomic: while a jpc is in
    //    flight the half-consumed PC chain is not a restartable state,
    //    so interrupts wait until the reloaded user instructions fill
    //    the MEM/ALU/RF stages.
    auto is_jpc = [](const Latch &l) {
        return l.valid && l.inst.fmt == Format::Imm &&
            l.inst.immOp == ImmOp::Jpc;
    };
    // Test the (rare) pending flags before inspecting the latches.
    auto latches_known = [&] {
        return mem_->valid && alu_->valid && rf_->valid &&
            !is_jpc(*mem_) && !is_jpc(*alu_) && !is_jpc(*rf_);
    };
    if (!halting_ &&
        (pendingNmi_ || (pendingIntr_ && psw_.interruptsEnabled())) &&
        latches_known()) {
        const word_t cause =
            pendingNmi_ ? psw_bits::cNmi : psw_bits::cIntr;
        if (pendingNmi_)
            pendingNmi_ = false;
        else
            pendingIntr_ = false;
        takeException(cause);
        exceptionThisCycle = true;
    } else {
        // 3. ALU stage: compute, detect faults, resolve control (delay 2).
        const auto exceptionsBefore = stats_.exceptions;
        evaluateAlu();
        if (stopped())
            return;
        exceptionThisCycle = stats_.exceptions != exceptionsBefore;
    }

    // 4. Data page faults from the external memory system arrive just
    //    before the access would happen: the faulting instruction is in
    //    MEM and becomes the oldest saved chain entry, so the restart
    //    re-executes exactly it.
    if (!exceptionThisCycle && !halting_ && config_.pageFaultArmed &&
        mem_->valid && !mem_->killed && mem_->inst.accessesMemory() &&
        mem_->space == config_.pageFaultSpace &&
        mem_->aluOut == config_.pageFaultAddr) {
        config_.pageFaultArmed = false; // "paged in" after the fault
        takeException(psw_bits::cPage);
        exceptionThisCycle = true;
    }

    // 5. MEM stage (gated by the Exception line via the killed flag).
    executeMem();

    // 6. jpc reads and pops the PC chain during its RF cycle.
    if (rf_->valid && !rf_->killed && rf_->inst.fmt == Format::Imm &&
        rf_->inst.immOp == ImmOp::Jpc) {
        rf_->jpcEntry = chain_.pop();
        chainSteady_ = false;
    }

    // 7. Quick-compare resolution at the end of RF (branchDelay == 1).
    if (config_.branchDelay == 1 && !exceptionThisCycle && rf_->valid &&
        !rf_->killed && (rf_->inst.isBranch() || rf_->inst.isJump())) {
        // Operands resolved with the RF-stage bypass view.
        auto read_rf = [this](unsigned r) -> word_t {
            if (r == 0)
                return 0;
            if (alu_->valid && !alu_->killed && alu_->inst.destReg() == r &&
                !alu_->inst.isGprLoad()) {
                return alu_->aluOut;
            }
            if (mem_->valid && !mem_->killed && mem_->inst.destReg() == r) {
                return mem_->inst.isGprLoad() ? mem_->memData : mem_->aluOut;
            }
            return regs_[r];
        };
        rf_->opA = read_rf(rf_->inst.rs1);
        rf_->opB = read_rf(rf_->inst.rs2);
        if (rf_->inst.isJump() &&
            (rf_->inst.immOp == ImmOp::Jal ||
             rf_->inst.immOp == ImmOp::Jalr)) {
            rf_->aluOut = rf_->pc + 1 + config_.branchDelay;
        }
        resolveControl(*rf_);
    }

    // 8. The squash FSM observes this cycle's events.
    squashFsm_.tick(squashFetch_ && !exceptionThisCycle,
                    exceptionThisCycle);

    // 9. IF stage.
    Latch &fetched = fetch();
    fetchKillArmed_ = false;
    if (pendingCost_.active) {
        accountSlot(fetched, pendingCost_);
        pendingCost_ = {};
    }

    // 10. Shift the pipeline (w1 rises) by rotating the latch pointers:
    //     the retired WB latch becomes next cycle's fetch target.
    Latch *retired = wb_;
    wb_ = mem_;
    mem_ = alu_;
    alu_ = rf_;
    rf_ = &fetched;
    spare_ = retired;

    // 11. The PC chain shadows the MEM/ALU/RF PCs while shifting is
    //    enabled; an exception freezes it via the PSW.
    if (psw_.shiftEnabled()) {
        const word_t alu_entry =
            PcChain::makeEntry(alu_->pc, alu_->squashKilled || !alu_->valid);
        const word_t rf_entry =
            PcChain::makeEntry(rf_->pc, rf_->squashKilled || !rf_->valid);
        if (chainSteady_) {
            chain_.shiftSteady(alu_entry, rf_entry);
        } else {
            chain_.shift(PcChain::makeEntry(
                             mem_->pc, mem_->squashKilled || !mem_->valid),
                         alu_entry, rf_entry);
            chainSteady_ = true;
        }
    } else {
        chainSteady_ = false;
    }

    // 12. Advance the fetch PC. A jpc re-injecting a squashed chain
    //     entry arms a kill for the word fetched at the redirect target.
    if (!suppressFetch_ || haveRedirect_)
        fetchPc_ = haveRedirect_ ? redirect_ : fetchPc_ + 1;
    if (haveRedirect_ && redirectKill_)
        fetchKillArmed_ = true;

    // 13. Count the executed cycle. Stall cycles the caches caused are
    //     consumed by subsequent tick()s (the w1 clock is withheld).
    missFsm_.noteRun();
    ++stats_.cycles;
}

void
Cpu::tick()
{
    if (stopped())
        return;
    if (missFsm_.stalled()) {
        missFsm_.tick();
        ++stats_.cycles;
        return;
    }
    stepCycle();
}

void
Cpu::step()
{
    stepCycle();
    // Nothing can restart the pipeline mid-stall, so the whole service
    // time is consumed at once. (tick() keeps the cycle-by-cycle form
    // for lockstep multiprocessor runs.)
    if (!stopped() && missFsm_.stalled())
        stats_.cycles += missFsm_.drainStalls();
}

stats::EnergyCounts
Cpu::energyCounts() const
{
    stats::EnergyCounts n;
    n.cycles = stats_.cycles;
    n.committed = stats_.committed;
    n.icacheAccesses = icache_.accesses();
    n.icacheMisses = icache_.misses();
    n.icacheRefillWords = icache_.refillWords();
    n.ecacheAccesses = ecache_.accesses();
    n.ecacheMisses = ecache_.misses();
    n.memTrafficCycles = ecache_.memoryTrafficCycles();
    n.icacheSizeWords = config_.icache.totalWords();
    n.ecacheSizeWords = config_.ecache.sizeWords;
    return n;
}

void
Cpu::dumpStats(std::ostream &os) const
{
    stats::Group pipe(strformat("cpu%u.pipeline", config_.cpuId));
    pipe.set("cycles", double(stats_.cycles));
    pipe.set("instructions", double(stats_.committed));
    pipe.set("cpi", stats_.cpi());
    pipe.set("noops", double(stats_.committedNops));
    pipe.set("noop_fraction", stats_.noopFraction());
    pipe.set("noops_branch_slots", double(stats_.nopsInBranchSlots));
    pipe.set("noops_load_delay", double(stats_.nopsForLoadDelay));
    pipe.set("squashed", double(stats_.squashed));
    pipe.set("branches", double(stats_.branches));
    pipe.set("branches_taken", double(stats_.branchesTaken));
    pipe.set("cycles_per_branch", stats_.cyclesPerBranch());
    pipe.set("jumps", double(stats_.jumps));
    pipe.set("exceptions", double(stats_.exceptions));
    pipe.set("interrupts", double(stats_.interrupts));
    pipe.set("traps", double(stats_.traps));
    pipe.set("hazard_violations", double(stats_.hazardViolations));
    pipe.dump(os);

    stats::Group ic(strformat("cpu%u.icache", config_.cpuId));
    ic.set("accesses", double(icache_.accesses()));
    ic.set("misses", double(icache_.misses()));
    ic.set("miss_ratio", icache_.missRatio());
    ic.set("tag_misses", double(icache_.tagMisses()));
    ic.set("subblock_misses", double(icache_.subBlockMisses()));
    ic.set("avg_fetch_cost", icache_.avgFetchCost());
    ic.dump(os);

    stats::Group ec(strformat("cpu%u.ecache", config_.cpuId));
    ec.set("accesses", double(ecache_.accesses()));
    ec.set("misses", double(ecache_.misses()));
    ec.set("miss_ratio", ecache_.missRatio());
    ec.set("writebacks", double(ecache_.writebacks()));
    ec.set("stall_cycles", double(ecache_.stallCycles()));
    ec.set("memory_traffic_cycles",
           double(ecache_.memoryTrafficCycles()));
    ec.dump(os);

    stats::Group fsm(strformat("cpu%u.fsm", config_.cpuId));
    fsm.set("squash_run", double(squashFsm_.occupancy(SquashState::Run)));
    fsm.set("squash_branch",
            double(squashFsm_.occupancy(SquashState::BranchSquash)));
    fsm.set("squash_exception",
            double(squashFsm_.occupancy(SquashState::Exception)));
    fsm.set("miss_run", double(missFsm_.occupancy(MissState::Run)));
    fsm.set("miss_imiss", double(missFsm_.occupancy(MissState::IMiss)));
    fsm.set("miss_emiss", double(missFsm_.occupancy(MissState::EMiss)));
    fsm.dump(os);

    const auto counts = energyCounts();
    const auto e = stats::computeEnergy(config_.energy, counts);
    stats::Group en(strformat("cpu%u.energy", config_.cpuId));
    en.set("icache", e.icache);
    en.set("ecache", e.ecache);
    en.set("memory", e.memory);
    en.set("static", e.staticCost);
    en.set("total", e.total);
    en.set("per_instruction", e.perInstruction(counts.committed));
    en.set("edp", e.energyDelay(counts.cycles));
    en.dump(os);
}

void
Cpu::collectMetrics(trace::MetricsRegistry &m) const
{
    const std::string p = strformat("cpu%u.", config_.cpuId);
    m.set(p + "pipeline.cycles", stats_.cycles);
    m.set(p + "pipeline.instructions", stats_.committed);
    m.set(p + "pipeline.cpi", stats_.cpi());
    m.set(p + "pipeline.noops", stats_.committedNops);
    m.set(p + "pipeline.noop_fraction", stats_.noopFraction());
    m.set(p + "pipeline.noops_branch_slots", stats_.nopsInBranchSlots);
    m.set(p + "pipeline.noops_load_delay", stats_.nopsForLoadDelay);
    m.set(p + "pipeline.squashed", stats_.squashed);
    m.set(p + "pipeline.branches", stats_.branches);
    m.set(p + "pipeline.branches_taken", stats_.branchesTaken);
    m.set(p + "pipeline.branch_squash_triggers",
          stats_.branchSquashTriggers);
    m.set(p + "pipeline.branch_wasted_slots", stats_.branchWastedSlots);
    m.set(p + "pipeline.cycles_per_branch", stats_.cyclesPerBranch());
    m.set(p + "pipeline.jumps", stats_.jumps);
    m.set(p + "pipeline.jump_wasted_slots", stats_.jumpWastedSlots);
    m.set(p + "pipeline.traps", stats_.traps);
    m.set(p + "pipeline.exceptions", stats_.exceptions);
    m.set(p + "pipeline.interrupts", stats_.interrupts);
    m.set(p + "pipeline.hazard_violations", stats_.hazardViolations);

    m.set(p + "icache.accesses", icache_.accesses());
    m.set(p + "icache.misses", icache_.misses());
    m.set(p + "icache.miss_ratio", icache_.missRatio());
    m.set(p + "icache.tag_misses", icache_.tagMisses());
    m.set(p + "icache.subblock_misses", icache_.subBlockMisses());
    m.set(p + "icache.stall_cycles", icache_.stallCycles());
    m.set(p + "icache.refill_words", icache_.refillWords());
    m.set(p + "icache.avg_fetch_cost", icache_.avgFetchCost());

    m.set(p + "ecache.accesses", ecache_.accesses());
    m.set(p + "ecache.misses", ecache_.misses());
    m.set(p + "ecache.miss_ratio", ecache_.missRatio());
    m.set(p + "ecache.writebacks", ecache_.writebacks());
    m.set(p + "ecache.stall_cycles", ecache_.stallCycles());
    m.set(p + "ecache.memory_traffic_cycles",
          ecache_.memoryTrafficCycles());

    stats::collectEnergy(config_.energy, energyCounts(), m,
                         p + "energy");

    m.set(p + "fsm.squash_run",
          squashFsm_.occupancy(SquashState::Run));
    m.set(p + "fsm.squash_branch",
          squashFsm_.occupancy(SquashState::BranchSquash));
    m.set(p + "fsm.squash_exception",
          squashFsm_.occupancy(SquashState::Exception));
    m.set(p + "fsm.miss_run", missFsm_.occupancy(MissState::Run));
    m.set(p + "fsm.miss_imiss", missFsm_.occupancy(MissState::IMiss));
    m.set(p + "fsm.miss_emiss", missFsm_.occupancy(MissState::EMiss));

    if (trace_) {
        m.set(p + "trace.capacity",
              static_cast<std::uint64_t>(trace_->capacity()));
        m.set(p + "trace.recorded", trace_->recorded());
        m.set(p + "trace.dropped", trace_->dropped());
    }
}

RunResult
Cpu::run()
{
    while (!stopped())
        step();
    RunResult r;
    r.reason = stop_;
    r.cycles = stats_.cycles;
    r.instructions = stats_.committed;
    return r;
}

RunResult
Cpu::runUntilCommitted(std::uint64_t target)
{
    while (!stopped() && stats_.committed < target)
        step();
    RunResult r;
    r.reason = stop_;
    r.cycles = stats_.cycles;
    r.instructions = stats_.committed;
    return r;
}

} // namespace mipsx::core
